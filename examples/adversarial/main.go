// Adversarial worst cases: replay the Section 6 lower-bound constructions
// and watch each algorithm walk into its trap.
//
// For each construction the example prints the execution (bins opened, who
// holds what), the measured competitive-ratio certificate cost/OPTUpper, and
// the theoretical target it converges to.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"dvbp"
)

func main() {
	theorem5()
	theorem6()
	theorem8()
	bestFitTrap()
}

func theorem5() {
	const (
		d  = 2
		k  = 16
		mu = 10.0
	)
	in, err := dvbp.TheoremFiveInstance(d, k, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Theorem 5: any Any Fit algorithm vs (μ+1)d = %.0f ==\n", (mu+1)*d)
	fmt.Printf("instance: %d items, d=%d, μ=%.0f\n", in.List.Len(), d, mu)
	for _, p := range []dvbp.Policy{dvbp.NewFirstFit(), dvbp.NewMoveToFront(), dvbp.NewBestFit()} {
		res, err := dvbp.Simulate(in.List, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s opens %3d bins (dk = %d), cost %8.2f, certified CR >= %.2f (target %.0f)\n",
			p.Name(), res.BinsOpened, d*k, res.Cost, in.MeasuredRatio(res.Cost), in.AsymptoticRatio)
	}
	fmt.Println()
}

func theorem6() {
	const (
		d  = 2
		k  = 16
		mu = 10.0
	)
	in, err := dvbp.TheoremSixInstance(d, k, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Theorem 6: Next Fit vs 2μd = %.0f ==\n", 2*mu*d)
	nf, err := dvbp.Simulate(in.List, dvbp.NewNextFit())
	if err != nil {
		log.Fatal(err)
	}
	ff, err := dvbp.Simulate(in.List, dvbp.NewFirstFit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  NextFit  opens %3d bins (1+(k-1)d = %d), cost %8.2f, certified CR >= %.2f\n",
		nf.BinsOpened, 1+(k-1)*d, nf.Cost, in.MeasuredRatio(nf.Cost))
	fmt.Printf("  FirstFit opens %3d bins on the same sequence, cost %8.2f — the trap is Next Fit-specific\n\n",
		ff.BinsOpened, ff.Cost)
}

func theorem8() {
	const (
		n  = 32
		mu = 10.0
	)
	in, err := dvbp.TheoremEightInstance(n, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== Theorem 8: Move To Front vs 2μ = %.0f (d=1) ==\n", 2*mu)
	mtf, err := dvbp.Simulate(in.List, dvbp.NewMoveToFront())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  MoveToFront opens %3d bins (2n = %d), cost %8.2f, certified CR >= %.2f\n",
		mtf.BinsOpened, 2*n, mtf.Cost, in.MeasuredRatio(mtf.Cost))
	ff, err := dvbp.Simulate(in.List, dvbp.NewFirstFit())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  FirstFit    opens %3d bins on the same sequence, cost %8.2f\n\n", ff.BinsOpened, ff.Cost)
}

func bestFitTrap() {
	fmt.Println("== Best Fit degradation family (Theorem 7 is cited from Li–Tang–Cai) ==")
	fmt.Println("   R pillars die one per step; Best Fit strands each long sliver with the")
	fmt.Println("   biggest dying pillar, First Fit consolidates them:")
	for _, r := range []int{4, 8, 16, 32} {
		inst, err := dvbp.BestFitDegradationInstance(r)
		if err != nil {
			log.Fatal(err)
		}
		bf, err := dvbp.Simulate(inst.List, dvbp.NewBestFit())
		if err != nil {
			log.Fatal(err)
		}
		ff, err := dvbp.Simulate(inst.List, dvbp.NewFirstFit())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R=%2d: BestFit CR >= %6.2f (cost %8.0f)   FirstFit CR >= %5.2f (cost %7.0f)\n",
			r, inst.MeasuredRatio(bf.Cost), bf.Cost, inst.MeasuredRatio(ff.Cost), ff.Cost)
	}
	fmt.Println("   the Best Fit column grows without bound; the First Fit column stays flat")
}
