package persist

import (
	"encoding/binary"
	"math"
	"sort"

	"dvbp/internal/core"
)

// Snapshot payload codec: hand-rolled binary, varint integers, float64s as
// raw bits (bit-exact round-trip — the engine's determinism contract is over
// float bit patterns, so text formats are out). The decoder works over an
// untrusted byte slice: every count is validated against the bytes actually
// remaining before it sizes an allocation, and every failure is a
// *CorruptionError — never a panic. Deeper semantic validation (bin/item
// cross-references, accumulator integrity) happens in core.RestoreEngine.

// snapCodecVersion versions the snapshot payload independently of the file
// framing. Version 2 added the migration section and the Result migration
// counters (DESIGN.md §14).
const snapCodecVersion = 2

// EncodeSnapshot serialises an engine snapshot.
func EncodeSnapshot(s *core.Snapshot) []byte {
	b := &benc{}
	b.uvarint(snapCodecVersion)
	b.varint(s.EventSeq)
	b.varint(int64(s.ArrivalIdx))
	b.varint(int64(s.NextBinID))
	b.varint(int64(s.Served))
	b.varint(s.RetrySeq)
	b.varint(int64(s.Dim))
	b.varint(int64(s.Items))
	b.str(s.PolicyName)
	b.bytes(s.PolicyState)

	b.uvarint(uint64(len(s.Bins)))
	for _, bin := range s.Bins {
		b.varint(int64(bin.ID))
		b.f64(bin.OpenedAt)
		b.varint(int64(bin.Packed))
		b.uvarint(uint64(len(bin.ActiveIDs)))
		for _, id := range bin.ActiveIDs {
			b.varint(int64(id))
		}
		b.uvarint(uint64(len(bin.Acc)))
		for _, acc := range bin.Acc {
			b.bytes(acc)
		}
	}

	b.uvarint(uint64(len(s.Departures)))
	for _, d := range s.Departures {
		b.f64(d.Time)
		b.varint(d.Seq)
		b.varint(int64(d.ItemID))
		b.varint(int64(d.BinID))
	}
	b.uvarint(uint64(len(s.Crashes)))
	for _, c := range s.Crashes {
		b.f64(c.Time)
		b.varint(int64(c.BinID))
	}
	b.uvarint(uint64(len(s.Retries)))
	for _, r := range s.Retries {
		b.f64(r.Time)
		b.varint(r.Seq)
		b.varint(int64(r.ItemID))
		b.varint(int64(r.Attempt))
	}
	b.uvarint(uint64(len(s.WaitQueue)))
	for _, q := range s.WaitQueue {
		b.varint(int64(q.ItemID))
		b.varint(int64(q.Attempt))
		b.f64(q.QueuedAt)
		b.f64(q.Deadline)
	}

	// Attempts in ascending item-ID order so encoded bytes are deterministic.
	b.uvarint(uint64(len(s.Attempts)))
	ids := make([]int, 0, len(s.Attempts))
	for id := range s.Attempts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b.varint(int64(id))
		b.varint(int64(s.Attempts[id]))
	}

	encodeResult(b, s.Result)

	// Migration section, guarded by a presence flag so nil (migration
	// disabled) round-trips distinguishably from the empty state.
	b.bool(s.Migration != nil)
	if m := s.Migration; m != nil {
		b.varint(m.NextPass)
		b.f64(m.PassTime)
		b.uvarint(uint64(len(m.Pending)))
		for _, mv := range m.Pending {
			b.varint(int64(mv.ItemID))
			b.varint(int64(mv.From))
			b.varint(int64(mv.To))
		}
		b.uvarint(uint64(len(m.Redirects)))
		for _, r := range m.Redirects {
			b.varint(r.Seq)
			b.varint(int64(r.BinID))
		}
	}
	return b.buf
}

func encodeResult(b *benc, r *core.Result) {
	b.str(r.Algorithm)
	b.varint(int64(r.Dim))
	b.varint(int64(r.Items))
	b.f64(r.Cost)
	b.varint(int64(r.BinsOpened))
	b.varint(int64(r.MaxConcurrentBins))
	b.f64(r.Span)
	b.f64(r.Mu)
	b.varint(int64(r.Crashes))
	b.varint(int64(r.Evictions))
	b.varint(int64(r.Retries))
	b.varint(int64(r.ItemsLost))
	b.varint(int64(r.Rejected))
	b.varint(int64(r.TimedOut))
	b.varint(int64(r.QueuedPlaced))
	b.f64(r.QueueDelay)
	b.f64(r.LostUsageTime)
	b.varint(int64(r.Migrations))
	b.f64(r.MigrationCost)
	b.varint(int64(r.BinsDrained))

	b.uvarint(uint64(len(r.Placements)))
	for _, p := range r.Placements {
		b.varint(int64(p.ItemID))
		b.varint(int64(p.BinID))
		b.bool(p.Opened)
		b.f64(p.Time)
		b.varint(int64(p.Attempt))
	}
	b.uvarint(uint64(len(r.Bins)))
	for _, u := range r.Bins {
		b.varint(int64(u.BinID))
		b.f64(u.OpenedAt)
		b.f64(u.ClosedAt)
		b.varint(int64(u.Packed))
		b.bool(u.Crashed)
	}
	b.uvarint(uint64(len(r.Outcomes)))
	ids := make([]int, 0, len(r.Outcomes))
	for id := range r.Outcomes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b.varint(int64(id))
		b.buf = append(b.buf, byte(r.Outcomes[id]))
	}
}

// DecodeSnapshot is the inverse of EncodeSnapshot over untrusted bytes.
func DecodeSnapshot(payload []byte) (*core.Snapshot, error) {
	d := &bdec{buf: payload}
	if v := d.uvarint(); v != snapCodecVersion {
		if d.fail == nil {
			return nil, corrupt("unsupported snapshot codec version %d", v)
		}
		return nil, d.fail
	}
	s := &core.Snapshot{}
	s.EventSeq = d.varint()
	s.ArrivalIdx = d.int()
	s.NextBinID = d.int()
	s.Served = d.int()
	s.RetrySeq = d.varint()
	s.Dim = d.int()
	s.Items = d.int()
	s.PolicyName = d.str()
	s.PolicyState = d.bytes()

	// Each element consumes at least minElem bytes, so a count claiming more
	// elements than remaining bytes is rejected before any allocation.
	nBins := d.count(4)
	for i := 0; i < nBins && d.fail == nil; i++ {
		var bin core.BinSnapshot
		bin.ID = d.int()
		bin.OpenedAt = d.f64()
		bin.Packed = d.int()
		nAct := d.count(1)
		for j := 0; j < nAct && d.fail == nil; j++ {
			bin.ActiveIDs = append(bin.ActiveIDs, d.int())
		}
		nAcc := d.count(1)
		for j := 0; j < nAcc && d.fail == nil; j++ {
			bin.Acc = append(bin.Acc, d.bytes())
		}
		s.Bins = append(s.Bins, bin)
	}

	nDep := d.count(11)
	for i := 0; i < nDep && d.fail == nil; i++ {
		s.Departures = append(s.Departures, core.DepartureSnapshot{Time: d.f64(), Seq: d.varint(), ItemID: d.int(), BinID: d.int()})
	}
	nCr := d.count(9)
	for i := 0; i < nCr && d.fail == nil; i++ {
		s.Crashes = append(s.Crashes, core.CrashSnapshot{Time: d.f64(), BinID: d.int()})
	}
	nRe := d.count(11)
	for i := 0; i < nRe && d.fail == nil; i++ {
		s.Retries = append(s.Retries, core.RetrySnapshot{Time: d.f64(), Seq: d.varint(), ItemID: d.int(), Attempt: d.int()})
	}
	nQ := d.count(18)
	for i := 0; i < nQ && d.fail == nil; i++ {
		s.WaitQueue = append(s.WaitQueue, core.QueuedSnapshot{ItemID: d.int(), Attempt: d.int(), QueuedAt: d.f64(), Deadline: d.f64()})
	}
	nAt := d.count(2)
	if nAt > 0 && d.fail == nil {
		s.Attempts = make(map[int]int, nAt)
		prev := 0
		for i := 0; i < nAt && d.fail == nil; i++ {
			id := d.int()
			n := d.int()
			// Strictly ascending item IDs — the order the encoder emits — so
			// the codec stays a bijection (and duplicates are impossible).
			if i > 0 && id <= prev {
				return nil, corrupt("snapshot attempt counts out of item order at item %d", id)
			}
			prev = id
			s.Attempts[id] = n
		}
	}

	s.Result = decodeResult(d)

	if d.bool() {
		m := &core.MigrationSnapshot{}
		m.NextPass = d.varint()
		m.PassTime = d.f64()
		nMv := d.count(3)
		for i := 0; i < nMv && d.fail == nil; i++ {
			m.Pending = append(m.Pending, core.MigrationMove{ItemID: d.int(), From: d.int(), To: d.int()})
		}
		nRd := d.count(2)
		prev := int64(-1)
		for i := 0; i < nRd && d.fail == nil; i++ {
			r := core.RedirectSnapshot{Seq: d.varint(), BinID: d.int()}
			// Strictly ascending Seq — the order the encoder emits — so the
			// codec stays a bijection.
			if r.Seq <= prev {
				d.fatal("migration redirects out of sequence order at %d", r.Seq)
				break
			}
			prev = r.Seq
			m.Redirects = append(m.Redirects, r)
		}
		s.Migration = m
	}
	if d.fail != nil {
		return nil, d.fail
	}
	if len(d.buf) != 0 {
		return nil, corrupt("snapshot has %d trailing bytes", len(d.buf))
	}
	return s, nil
}

func decodeResult(d *bdec) *core.Result {
	r := &core.Result{}
	r.Algorithm = d.str()
	r.Dim = d.int()
	r.Items = d.int()
	r.Cost = d.f64()
	r.BinsOpened = d.int()
	r.MaxConcurrentBins = d.int()
	r.Span = d.f64()
	r.Mu = d.f64()
	r.Crashes = d.int()
	r.Evictions = d.int()
	r.Retries = d.int()
	r.ItemsLost = d.int()
	r.Rejected = d.int()
	r.TimedOut = d.int()
	r.QueuedPlaced = d.int()
	r.QueueDelay = d.f64()
	r.LostUsageTime = d.f64()
	r.Migrations = d.int()
	r.MigrationCost = d.f64()
	r.BinsDrained = d.int()

	nPl := d.count(6)
	for i := 0; i < nPl && d.fail == nil; i++ {
		r.Placements = append(r.Placements, core.Placement{ItemID: d.int(), BinID: d.int(), Opened: d.bool(), Time: d.f64(), Attempt: d.int()})
	}
	nB := d.count(19)
	for i := 0; i < nB && d.fail == nil; i++ {
		r.Bins = append(r.Bins, core.BinUsage{BinID: d.int(), OpenedAt: d.f64(), ClosedAt: d.f64(), Packed: d.int(), Crashed: d.bool()})
	}
	nOut := d.count(2)
	r.Outcomes = make(map[int]core.Outcome, nOut)
	prev := 0
	for i := 0; i < nOut && d.fail == nil; i++ {
		id := d.int()
		o := d.byte()
		if o > byte(core.OutcomeTimedOut) {
			d.fatal("unknown outcome %d for item %d", o, id)
			break
		}
		if i > 0 && id <= prev {
			d.fatal("outcomes out of item order at item %d", id)
			break
		}
		prev = id
		r.Outcomes[id] = core.Outcome(o)
	}
	return r
}

// benc is the append-only snapshot encoder.
type benc struct{ buf []byte }

func (b *benc) uvarint(v uint64) { b.buf = binary.AppendUvarint(b.buf, v) }
func (b *benc) varint(v int64)   { b.buf = binary.AppendVarint(b.buf, v) }
func (b *benc) f64(v float64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(v))
}
func (b *benc) bytes(p []byte) {
	b.uvarint(uint64(len(p)))
	b.buf = append(b.buf, p...)
}
func (b *benc) str(s string) { b.bytes([]byte(s)) }
func (b *benc) bool(v bool) {
	if v {
		b.buf = append(b.buf, 1)
	} else {
		b.buf = append(b.buf, 0)
	}
}

// bdec decodes the snapshot format from an untrusted slice. The first
// failure latches into fail and turns every later read into a cheap no-op,
// so call sites can decode whole structures and check fail once.
type bdec struct {
	buf  []byte
	fail *CorruptionError
}

func (d *bdec) fatal(format string, args ...any) {
	if d.fail == nil {
		d.fail = corrupt(format, args...)
	}
}

func (d *bdec) uvarint() uint64 {
	if d.fail != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fatal("truncated varint")
		return 0
	}
	var tmp [binary.MaxVarintLen64]byte
	if binary.PutUvarint(tmp[:], v) != n {
		d.fatal("non-canonical varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *bdec) varint() int64 {
	if d.fail != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fatal("truncated varint")
		return 0
	}
	var tmp [binary.MaxVarintLen64]byte
	if binary.PutVarint(tmp[:], v) != n {
		d.fatal("non-canonical varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// int decodes a varint that must fit a platform int.
func (d *bdec) int() int {
	v := d.varint()
	if int64(int(v)) != v {
		d.fatal("integer %d overflows int", v)
		return 0
	}
	return int(v)
}

func (d *bdec) f64() float64 {
	if d.fail != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fatal("truncated float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v
}

func (d *bdec) byte() byte {
	if d.fail != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fatal("truncated byte")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *bdec) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fatal("malformed bool")
		return false
	}
}

func (d *bdec) bytes() []byte {
	n := d.uvarint()
	if d.fail != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fatal("byte blob of %d bytes with %d remaining", n, len(d.buf))
		return nil
	}
	out := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	if len(out) == 0 {
		return nil
	}
	return out
}

func (d *bdec) str() string { return string(d.bytes()) }

// count decodes an element count and rejects it unless at least count *
// minElem bytes remain — the allocation guard for untrusted input.
func (d *bdec) count(minElem int) int {
	n := d.uvarint()
	if d.fail != nil {
		return 0
	}
	if n > uint64(len(d.buf))/uint64(minElem) {
		d.fatal("count %d impossible with %d bytes remaining", n, len(d.buf))
		return 0
	}
	return int(n)
}
