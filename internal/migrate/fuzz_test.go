package migrate

import (
	"errors"
	"testing"

	"dvbp/internal/core"
)

// fuzzReader decodes a ClusterState, plan and budget from arbitrary bytes.
// It is total: any input, including empty, yields some (possibly malformed)
// value — the fuzz target's job is proving ValidatePlan handles all of them
// without panicking.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// f64 decodes a float in roughly [-0.5, 1.5]: mostly in-range loads with a
// tail of out-of-range values so the validator's range checks get exercised.
func (r *fuzzReader) f64() float64 {
	return float64(r.byte())/128.0 - 0.5
}

func (r *fuzzReader) vec(d int) []float64 {
	v := make([]float64, d)
	for j := range v {
		v[j] = r.f64()
	}
	return v
}

func decodeFuzzInput(data []byte) (ClusterState, []core.MigrationMove, core.MigrationBudget, func(int) float64) {
	r := &fuzzReader{data: data}
	st := ClusterState{
		Dim:   int(r.byte()%5) - 1, // -1..3: invalid dims included
		Load:  map[int][]float64{},
		Size:  map[int][]float64{},
		BinOf: map[int]int{},
	}
	d := st.Dim
	if d < 1 {
		d = 1
	}
	nBins := int(r.byte() % 8)
	for i := 0; i < nBins; i++ {
		st.Load[int(r.byte()%8)] = r.vec(d + int(r.byte()%2)) // occasional dim mismatch
	}
	nItems := int(r.byte() % 8)
	for i := 0; i < nItems; i++ {
		id := int(r.byte() % 8)
		st.Size[id] = r.vec(d)
		if r.byte()%4 != 0 { // sometimes orphaned
			st.BinOf[id] = int(r.byte() % 8)
		}
	}
	nMoves := int(r.byte() % 8)
	plan := make([]core.MigrationMove, nMoves)
	for i := range plan {
		plan[i] = core.MigrationMove{
			ItemID: int(r.byte() % 8),
			From:   int(r.byte() % 8),
			To:     int(r.byte() % 8),
		}
	}
	budget := core.MigrationBudget{
		MaxMoves: int(r.byte()%10) - 1,
		MaxCost:  r.f64() * 10,
	}
	var costOf func(int) float64
	switch r.byte() % 3 {
	case 0:
		costOf = nil
	case 1:
		costOf = func(itemID int) float64 { return float64(itemID) }
	default:
		costOf = func(int) float64 { return -1 } // invalid costs must be rejected
	}
	return st, plan, budget, costOf
}

// FuzzMigrationPlan feeds adversarial cluster states and plans to
// ValidatePlan. Properties: it never panics, rejections are structured
// *PlanError values, and an accepted plan really is safe — independently
// re-simulating it from the original state never overflows a bin, never
// moves an unknown or twice-moved item, and respects the move budget.
func FuzzMigrationPlan(f *testing.F) {
	// A valid two-bin state with a one-move plan, byte-for-byte:
	// dim=2 → byte 3 (3%5-1=2); 2 bins; 2 items; 1 move; budget 5.
	f.Add([]byte{3, 2, 0, 192, 192, 0, 1, 224, 224, 0, 2, 0, 32, 32, 1, 0, 1, 96, 96, 1, 1, 1, 0, 0, 1, 6, 128, 0})
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Add([]byte{3, 1, 1, 128, 128, 1, 1, 128, 128, 3, 1, 1, 1, 1, 1, 2, 200})
	f.Add([]byte{4, 7, 0, 1, 2, 3, 4, 5, 6, 7, 7, 0, 1, 2, 3, 4, 5, 6, 7, 7, 0, 0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 0, 5, 5, 0, 6, 6, 0, 7, 10, 64, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, plan, budget, costOf := decodeFuzzInput(data)
		err := ValidatePlan(st, plan, budget, costOf)
		if err != nil {
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is a %T (%v), want *PlanError", err, err)
			}
			if pe.Move < -1 || pe.Move >= len(plan) {
				t.Fatalf("PlanError.Move = %d out of range for a %d-move plan", pe.Move, len(plan))
			}
			return
		}
		// Accepted: re-simulate independently and hold the validator to it.
		if len(plan) > 0 && len(plan) > budget.MaxMoves {
			t.Fatalf("accepted %d moves over budget %d", len(plan), budget.MaxMoves)
		}
		load := map[int][]float64{}
		for id, l := range st.Load {
			load[id] = append([]float64(nil), l...)
		}
		binOf := map[int]int{}
		for id, b := range st.BinOf {
			binOf[id] = b
		}
		moved := map[int]bool{}
		for i, mv := range plan {
			size, ok := st.Size[mv.ItemID]
			if !ok || moved[mv.ItemID] || mv.From == mv.To || binOf[mv.ItemID] != mv.From {
				t.Fatalf("accepted structurally invalid move %d: %+v", i, mv)
			}
			to, ok := load[mv.To]
			if !ok {
				t.Fatalf("accepted move %d into unknown bin %d", i, mv.To)
			}
			for j, s := range size {
				load[mv.From][j] -= s
				to[j] += s
				if to[j] > 1 {
					t.Fatalf("accepted plan overflows bin %d dim %d at move %d (%v)", mv.To, j, i, to[j])
				}
			}
			binOf[mv.ItemID] = mv.To
			moved[mv.ItemID] = true
		}
	})
}
