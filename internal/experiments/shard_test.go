package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"dvbp/internal/metrics"
)

// tinyFig4 is the grid used by the sharding tests: small enough that every
// worker-count variant runs in well under a second, large enough that blocks
// split unevenly across workers and stealing occurs.
func tinyFig4() Figure4Config {
	return Figure4Config{
		Ds:        []int{1, 2},
		Mus:       []int{1, 10},
		Instances: 6,
		N:         120,
		T:         120,
		B:         100,
		Policies:  []string{"MoveToFront", "FirstFit", "RandomFit"},
		Seed:      7,
	}
}

func encodeSweep[T any](t *testing.T, s *Sweep[T]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFigure4SweepByteIdenticalAcrossWorkerCounts is the determinism
// regression test: the merged JSON must not depend on scheduler parallelism.
func TestFigure4SweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	var want []byte
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := tinyFig4()
		cfg.Workers = w
		sweep, err := RunFigure4Sweep(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := encodeSweep(t, sweep)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: sweep JSON differs from workers=1", w)
		}
	}
}

// TestFigure4SliceMergeMatchesFullRun splits the sweep into slices, merges
// the parts (after a JSON round trip, as the CLI does) and requires the
// merged document to be byte-identical to a single full run.
func TestFigure4SliceMergeMatchesFullRun(t *testing.T) {
	full, err := RunFigure4Sweep(tinyFig4())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := encodeSweep(t, full)

	const m = 3
	parts := make([]*Figure4Sweep, m)
	for k := 0; k < m; k++ {
		cfg := tinyFig4()
		cfg.Workers = 1 + k
		cfg.Shard = ShardSlice{Index: k, Count: m}
		part, err := RunFigure4Sweep(cfg)
		if err != nil {
			t.Fatalf("slice %d/%d: %v", k, m, err)
		}
		if part.Complete() {
			t.Fatalf("slice %d/%d claims completeness", k, m)
		}
		if _, err := Figure4SweepResult(part); err == nil {
			t.Fatal("partial sweep folded into a result without error")
		}
		// Round-trip through the wire format.
		back, err := DecodeSweep[float64](bytes.NewReader(encodeSweep(t, part)), "figure4")
		if err != nil {
			t.Fatalf("slice %d/%d round trip: %v", k, m, err)
		}
		parts[k] = back
	}
	merged, err := MergeSweeps(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if got := encodeSweep(t, merged); !bytes.Equal(got, wantJSON) {
		t.Fatal("merged sweep JSON differs from single full run")
	}

	// Merge must reject overlapping and incomplete part sets.
	if _, err := MergeSweeps(parts[0], parts[0]); err == nil {
		t.Error("duplicate part accepted")
	}
	if _, err := MergeSweeps(parts[0], parts[1]); err == nil {
		t.Error("incomplete coverage accepted")
	}
	other := tinyFig4()
	other.Seed = 8
	otherSweep, err := RunFigure4Sweep(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSweeps(parts[0], parts[1], otherSweep); err == nil {
		t.Error("mixed-grid parts accepted")
	}
}

// TestFigure4ShardedMatchesSequential is the differential test: the
// work-stealing sharded runner must reproduce the single-goroutine reference
// implementation exactly — every cell summary bit-identical, which implies
// per-policy usage-time totals are too.
func TestFigure4ShardedMatchesSequential(t *testing.T) {
	cfg := tinyFig4()
	cfg.Workers = 4
	sharded, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := runFigure4Sequential(tinyFig4())
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.Cells) != len(seq.Cells) {
		t.Fatalf("cell count %d vs %d", len(sharded.Cells), len(seq.Cells))
	}
	for cell, want := range seq.Cells {
		got, ok := sharded.Cells[cell]
		if !ok {
			t.Fatalf("cell %+v missing from sharded result", cell)
		}
		if got != want {
			t.Errorf("cell %+v: sharded %+v != sequential %+v", cell, got, want)
		}
	}
}

// TestTable1SweepDeterminismAndMerge covers the adversarial study: byte-
// identical JSON across worker counts, slices merge to the full document,
// and rows (including ±Inf bounds) survive the wire format.
func TestTable1SweepDeterminismAndMerge(t *testing.T) {
	base := func() Table1Config {
		return Table1Config{D: 2, Mu: 5, Params: []int{2, 4, 8}, Seed: 1}
	}
	cfg := base()
	cfg.Workers = 1
	full, err := RunTable1Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := encodeSweep(t, full)

	cfg = base()
	cfg.Workers = 4
	again, err := RunTable1Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSweep(t, again), wantJSON) {
		t.Fatal("table1 sweep JSON depends on worker count")
	}

	parts := make([]*Table1Sweep, 2)
	for k := range parts {
		cfg := base()
		cfg.Shard = ShardSlice{Index: k, Count: 2}
		part, err := RunTable1Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSweep[AdversarialRow](bytes.NewReader(encodeSweep(t, part)), "table1")
		if err != nil {
			t.Fatal(err)
		}
		parts[k] = back
	}
	merged, err := MergeSweeps(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSweep(t, merged), wantJSON) {
		t.Fatal("merged table1 sweep differs from full run")
	}

	rows, err := Table1Rows(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunTable1(base())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatal("merged rows differ from direct run")
	}
}

// TestAdversarialRowJSONRoundTripsInf pins the Inf-safe wire format.
func TestAdversarialRowJSONRoundTripsInf(t *testing.T) {
	in := AdversarialRow{
		Construction: "pillars", Policy: "BestFit", Param: 4,
		MeasuredRatio: 1.25, TheoreticalTarget: math.Inf(1),
		UpperBound: math.Inf(1), Cost: 10.5, OPTUpper: 8.4, Bins: 9,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out AdversarialRow
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip changed row: %+v vs %+v", out, in)
	}
}

// TestShardSliceSemantics covers selection, validation and parsing.
func TestShardSliceSemantics(t *testing.T) {
	all := ShardSlice{}
	if !all.All() || !all.Selects(0) || !all.Selects(41) {
		t.Error("zero slice must select everything")
	}
	s := ShardSlice{Index: 1, Count: 3}
	for i := 0; i < 9; i++ {
		if s.Selects(i) != (i%3 == 1) {
			t.Errorf("slice 1/3 Selects(%d) = %v", i, s.Selects(i))
		}
	}
	for _, bad := range []ShardSlice{{Index: -1, Count: 2}, {Index: 2, Count: 2}, {Index: 0, Count: -1}, {Index: 3, Count: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("slice %+v accepted", bad)
		}
	}
	got, err := ParseShardSlice("2/5")
	if err != nil || got != (ShardSlice{Index: 2, Count: 5}) {
		t.Errorf("ParseShardSlice(2/5) = %+v, %v", got, err)
	}
	if _, err := ParseShardSlice("5/2"); err == nil {
		t.Error("out-of-range spec accepted")
	}
	if _, err := ParseShardSlice("junk"); err == nil {
		t.Error("junk spec accepted")
	}
	if got, err := ParseShardSlice(""); err != nil || !got.All() {
		t.Errorf("empty spec = %+v, %v", got, err)
	}
}

// TestShardSliceRejectedByNonMergeableExperiments pins the guard: studies
// whose results cannot be reassembled from parts refuse slice-restricted
// configs instead of silently producing partial statistics.
func TestShardSliceRejectedByNonMergeableExperiments(t *testing.T) {
	abl := AblationConfig{D: 1, N: 50, Mu: 2, T: 50, B: 100, Instances: 4, Seed: 1}
	abl.Shard = ShardSlice{Index: 0, Count: 2}
	if _, err := RunBestFitMeasureAblation(abl); err == nil {
		t.Error("sharded ablation accepted")
	}
	if _, err := RunBillingAblation(abl, 1); err == nil {
		t.Error("sharded billing ablation accepted")
	}
	if _, err := RunQuality(abl); err == nil {
		t.Error("sharded quality study accepted")
	}
	tr := DefaultTrueRatio()
	tr.Instances = 4
	tr.Shard = ShardSlice{Index: 0, Count: 2}
	if _, err := RunTrueRatio(tr); err == nil {
		t.Error("sharded true-ratio study accepted")
	}
	ub := DefaultUpperBoundCheck()
	ub.Instances = 2
	ub.Shard = ShardSlice{Index: 1, Count: 2}
	if _, _, err := RunUpperBoundCheck(ub); err == nil {
		t.Error("sharded upper-bound check accepted")
	}
}

// TestSharedCollectorScopedPerRun runs a parallel sweep against one shared
// metrics Collector and requires EXACT counter totals: every simulation must
// have received its own run-scoped view (a shared placement-matching map
// would drop or cross-pair observations under concurrency).
func TestSharedCollectorScopedPerRun(t *testing.T) {
	col := metrics.NewCollector()
	cfg := tinyFig4()
	cfg.Workers = 4
	cfg.Observer = col
	if _, err := RunFigure4(cfg); err != nil {
		t.Fatal(err)
	}
	shards := cfg.ShardCount()
	snap := col.Snapshot()
	if m, _ := snap.Find(metrics.MetricItemsPlaced); m.Value != float64(shards*cfg.N) {
		t.Errorf("items placed = %v, want %d", m.Value, shards*cfg.N)
	}
	if m, _ := snap.Find(metrics.MetricPlacementSeconds); m.Count != uint64(shards*cfg.N) {
		t.Errorf("placement observations = %d, want %d (views not per-run?)", m.Count, shards*cfg.N)
	}
	if m, _ := snap.Find(metrics.MetricOpenBins); m.Value != 0 {
		t.Errorf("open bins = %v, want 0 after all runs closed", m.Value)
	}
}

// TestConcurrentExperimentsShareNothing runs several full experiments at
// once; results must match a lone run exactly (no cross-talk through package
// state), and -race must stay silent.
func TestConcurrentExperimentsShareNothing(t *testing.T) {
	want, err := RunFigure4(tinyFig4())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := tinyFig4()
			cfg.Workers = 1 + g%3
			got, err := RunFigure4(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(got.Cells, want.Cells) {
				t.Errorf("goroutine %d: concurrent run diverged", g)
			}
		}(g)
	}
	wg.Wait()
}
