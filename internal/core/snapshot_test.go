package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// snapshotOpts is the option set the snapshot tests run under: faults with a
// retry ladder plus capped admission with a queue, so snapshots carry pending
// crashes, retries, and wait-queue entries — every piece of engine state.
func snapshotOpts() []Option {
	return []Option{
		WithFaults(hashInj{seed: 11, mean: 9}, fixedRetry{wait: 1.5}),
		WithMaxBins(3),
		WithAdmissionQueue(6),
	}
}

// stepAll drives e to completion, returning the committed records and result.
func stepAll(t *testing.T, e *Engine) ([]EventRecord, *Result) {
	t.Helper()
	var recs []EventRecord
	for {
		rec, ok, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return recs, res
}

func resultJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// TestSnapshotRestoreEveryEventIndex is the core crash-consistency contract:
// a snapshot taken between ANY two events, restored into a fresh engine (and
// fresh policy instance), must regenerate the remaining event stream bit for
// bit and finish with a byte-identical Result.
func TestSnapshotRestoreEveryEventIndex(t *testing.T) {
	l := randomList(42, 40, 2, 20)
	policies := append(append(StandardPolicies(7), NewHarmonicFit(3)), FragmentationAwarePolicies(7)...)
	for _, p := range policies {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			// Reference: uninterrupted run.
			ref, err := NewEngine(l, p, snapshotOpts()...)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			refRecs, refRes := stepAll(t, ref)
			wantJSON := resultJSON(t, refRes)

			// Second pass: snapshot before every event, restore each snapshot
			// into a fresh engine, run it out, compare.
			p2, err := NewPolicy(p.Name(), 7)
			if err != nil {
				t.Fatalf("NewPolicy: %v", err)
			}
			e, err := NewEngine(l, p2, snapshotOpts()...)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer e.Close()
			var snaps []*Snapshot
			for {
				s, err := e.Snapshot()
				if err != nil {
					t.Fatalf("Snapshot at event %d: %v", e.EventSeq(), err)
				}
				snaps = append(snaps, s)
				_, ok, err := e.Step()
				if err != nil {
					t.Fatalf("Step: %v", err)
				}
				if !ok {
					break
				}
			}
			if got, want := len(snaps), len(refRecs)+1; got != want {
				t.Fatalf("took %d snapshots, want %d", got, want)
			}
			if _, err := e.Finish(); err != nil {
				t.Fatalf("Finish: %v", err)
			}

			for k, s := range snaps {
				pk, err := NewPolicy(p.Name(), 999) // wrong seed on purpose: state codec must override it
				if err != nil {
					t.Fatalf("NewPolicy: %v", err)
				}
				re, err := RestoreEngine(l, pk, s, snapshotOpts()...)
				if err != nil {
					t.Fatalf("RestoreEngine at event %d: %v", k, err)
				}
				recs, res := stepAll(t, re)
				if got, want := len(recs), len(refRecs)-k; got != want {
					t.Fatalf("restore at %d replayed %d events, want %d", k, got, want)
				}
				for i, rec := range recs {
					if rec != refRecs[k+i] {
						t.Fatalf("restore at %d: event %d diverged:\n got %+v\nwant %+v", k, k+i, rec, refRecs[k+i])
					}
				}
				if got := resultJSON(t, res); got != wantJSON {
					t.Fatalf("restore at %d: result diverged:\n got %s\nwant %s", k, got, wantJSON)
				}
			}
		})
	}
}

// TestSnapshotRoundTripFaultFree covers the paper's fault-free model (no
// injector, no admission control) for a couple of policies.
func TestSnapshotRoundTripFaultFree(t *testing.T) {
	l := randomList(7, 60, 3, 15)
	for _, name := range []string{"FirstFit", "BestFit", "MoveToFront"} {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref := mustSimulate(t, l, p)
		want := resultJSON(t, ref)

		p2, _ := NewPolicy(name, 1)
		e, err := NewEngine(l, p2)
		if err != nil {
			t.Fatal(err)
		}
		// Step halfway, snapshot, restore, finish both ways.
		for i := 0; i < 50; i++ {
			if _, ok, err := e.Step(); err != nil || !ok {
				t.Fatalf("Step %d: ok=%v err=%v", i, ok, err)
			}
		}
		s, err := e.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		e.Close()

		p3, _ := NewPolicy(name, 1)
		re, err := RestoreEngine(l, p3, s)
		if err != nil {
			t.Fatalf("RestoreEngine: %v", err)
		}
		_, res := stepAll(t, re)
		if got := resultJSON(t, res); got != want {
			t.Fatalf("%s: restored result diverged:\n got %s\nwant %s", name, got, want)
		}
	}
}

// statefulNoCodec is a policy with per-run state and no PolicyStateCodec.
type statefulNoCodec struct {
	FirstFit
	n int
}

func (s *statefulNoCodec) Name() string { return "stateful-no-codec" }
func (s *statefulNoCodec) Select(req Request, open []*Bin) *Bin {
	s.n++
	return s.FirstFit.Select(req, open)
}

func TestSnapshotRefusesStatefulPolicyWithoutCodec(t *testing.T) {
	l := randomList(1, 10, 2, 10)
	e, err := NewEngine(l, &statefulNoCodec{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Snapshot(); err == nil || !strings.Contains(err.Error(), "PolicyStateCodec") {
		t.Fatalf("Snapshot on stateful codec-less policy: err=%v, want PolicyStateCodec error", err)
	}
}

func TestSnapshotAfterFinishFails(t *testing.T) {
	l := randomList(2, 5, 2, 10)
	e, err := NewEngine(l, NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	stepAll(t, e)
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot after Finish succeeded")
	}
}

// TestRestoreRejectsInconsistentSnapshots corrupts a valid snapshot in every
// structural way the restore path validates and checks each one surfaces as
// an error (never a panic, never a silently wrong engine).
func TestRestoreRejectsInconsistentSnapshots(t *testing.T) {
	l := randomList(5, 30, 2, 20)
	take := func(t *testing.T) *Snapshot {
		t.Helper()
		p, _ := NewPolicy("MoveToFront", 1)
		e, err := NewEngine(l, p, snapshotOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 25; i++ {
			if _, ok, err := e.Step(); err != nil || !ok {
				t.Fatalf("Step %d: ok=%v err=%v", i, ok, err)
			}
		}
		s, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Bins) == 0 || len(s.Departures) == 0 {
			t.Fatal("snapshot not interesting enough for corruption tests")
		}
		return s
	}

	cases := []struct {
		name    string
		mutate  func(*Snapshot)
		errPart string
	}{
		{"policy-mismatch", func(s *Snapshot) { s.PolicyName = "FirstFit" }, "policy mismatch"},
		{"dim-mismatch", func(s *Snapshot) { s.Dim = 3 }, "shape mismatch"},
		{"items-mismatch", func(s *Snapshot) { s.Items++ }, "shape mismatch"},
		{"nil-result", func(s *Snapshot) { s.Result = nil }, "missing partial result"},
		{"arrival-overflow", func(s *Snapshot) { s.ArrivalIdx = s.Items + 1 }, "arrival index"},
		{"negative-counter", func(s *Snapshot) { s.EventSeq = -1 }, "negative progress counter"},
		{"bins-out-of-order", func(s *Snapshot) {
			if len(s.Bins) < 2 {
				s.Bins = append(s.Bins, s.Bins[0])
			}
			s.Bins[0], s.Bins[1] = s.Bins[1], s.Bins[0]
		}, "out of order"},
		{"bin-id-overflow", func(s *Snapshot) { s.Bins[len(s.Bins)-1].ID = s.NextBinID }, "next bin ID"},
		{"unknown-active-item", func(s *Snapshot) { s.Bins[0].ActiveIDs[0] = 99999 }, "unknown item"},
		{"empty-open-bin", func(s *Snapshot) { s.Bins[0].ActiveIDs = nil }, "open but empty"},
		{"packed-undercount", func(s *Snapshot) { s.Bins[0].Packed = 0 }, "packed"},
		{"acc-dim-mismatch", func(s *Snapshot) { s.Bins[0].Acc = s.Bins[0].Acc[:1] }, "accumulator dimensions"},
		{"acc-limb-flip", func(s *Snapshot) {
			blob := s.Bins[0].Acc[0]
			blob[len(blob)-1] ^= 0x40
		}, "disagree"},
		{"acc-garbage", func(s *Snapshot) { s.Bins[0].Acc[0] = []byte{1, 2} }, "disagree"},
		{"departure-unknown-item", func(s *Snapshot) { s.Departures[0].ItemID = 99999 }, "unknown item"},
		{"retry-bad-seq", func(s *Snapshot) {
			s.Retries = append(s.Retries, RetrySnapshot{Time: 1, Seq: s.RetrySeq + 1, ItemID: l.Items[0].ID, Attempt: 1})
		}, "sequence"},
		{"queue-unknown-item", func(s *Snapshot) {
			s.WaitQueue = append(s.WaitQueue, QueuedSnapshot{ItemID: 99999, Attempt: 0})
		}, "unknown item"},
		{"attempts-unknown-item", func(s *Snapshot) { s.Attempts = map[int]int{99999: 1} }, "unknown item"},
		{"policy-state-garbage", func(s *Snapshot) { s.PolicyState = []byte{0xFF, 0xFF, 0xFF} }, "MoveToFront state"},
		{"policy-state-unknown-bin", func(s *Snapshot) {
			p, _ := NewPolicy("MoveToFront", 1)
			mf := p.(*MoveToFront)
			// A syntactically valid state naming a bin that is not open.
			mf.Reset()
			s.PolicyState = []byte{1, 0xCE, 0x10} // count=1, varint id=1063
		}, "unknown bin"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := take(t)
			tc.mutate(s)
			p, _ := NewPolicy("MoveToFront", 1)
			e, err := RestoreEngine(l, p, s, snapshotOpts()...)
			if err == nil {
				e.Close()
				t.Fatalf("RestoreEngine accepted corrupted snapshot")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
}

// TestRestoreRejectsCrashesWithoutInjector: a snapshot with pending crash
// events cannot be restored into a fault-free configuration.
func TestRestoreRejectsCrashesWithoutInjector(t *testing.T) {
	l := randomList(5, 30, 2, 20)
	p, _ := NewPolicy("FirstFit", 1)
	e, err := NewEngine(l, p, snapshotOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var s *Snapshot
	for {
		snap, err := e.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Crashes) > 0 {
			s = snap
			break
		}
		if _, ok, err := e.Step(); err != nil || !ok {
			t.Fatalf("never saw a pending crash (ok=%v err=%v)", ok, err)
		}
	}
	p2, _ := NewPolicy("FirstFit", 1)
	if _, err := RestoreEngine(l, p2, s); err == nil || !strings.Contains(err.Error(), "without fault injection") {
		t.Fatalf("RestoreEngine without injector: err=%v", err)
	}
}
