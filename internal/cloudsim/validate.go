package cloudsim

import (
	"fmt"
	"math"

	"dvbp/internal/vector"
)

// RequestError is a structured validation failure for one request, reported
// before any dispatch happens. Errors from ValidateRequests unwrap to it, so
// callers can switch on the offending field programmatically.
type RequestError struct {
	// ID is the offending request's ID (the caller's identifier).
	ID int
	// Field names the invalid field: "ID", "Arrive", "Duration" or "Demand".
	Field string
	// Detail is a human-readable description of the violation.
	Detail string
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("cloudsim: request %d: invalid %s: %s", e.ID, e.Field, e.Detail)
}

// ValidateRequests checks a request stream against a capacity vector before
// dispatch, mirroring item.List.Validate on the engine side: finite arrival,
// positive finite duration, demand vector of the right dimension with finite,
// non-negative components that fit the capacity, and unique IDs. The first
// violation is returned as a *RequestError; nil means the stream is clean.
func ValidateRequests(capacity vector.Vector, reqs []Request) error {
	d := capacity.Dim()
	ids := make(map[int]bool, len(reqs))
	for _, rq := range reqs {
		if ids[rq.ID] {
			return &RequestError{ID: rq.ID, Field: "ID", Detail: "duplicate request ID"}
		}
		ids[rq.ID] = true
		if math.IsNaN(rq.Arrive) || math.IsInf(rq.Arrive, 0) {
			return &RequestError{ID: rq.ID, Field: "Arrive", Detail: fmt.Sprintf("non-finite arrival %v", rq.Arrive)}
		}
		if math.IsNaN(rq.Duration) || math.IsInf(rq.Duration, 0) || rq.Duration <= 0 {
			return &RequestError{ID: rq.ID, Field: "Duration", Detail: fmt.Sprintf("duration %v must be finite and positive", rq.Duration)}
		}
		if rq.Demand.Dim() != d {
			return &RequestError{ID: rq.ID, Field: "Demand", Detail: fmt.Sprintf("dimension %d, want %d", rq.Demand.Dim(), d)}
		}
		for j := 0; j < d; j++ {
			v := rq.Demand[j]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &RequestError{ID: rq.ID, Field: "Demand", Detail: fmt.Sprintf("non-finite component %v in dimension %d", v, j)}
			}
			if v < 0 {
				return &RequestError{ID: rq.ID, Field: "Demand", Detail: fmt.Sprintf("negative component %v in dimension %d", v, j)}
			}
			if v/capacity[j] > 1+vector.Eps {
				return &RequestError{ID: rq.ID, Field: "Demand", Detail: fmt.Sprintf("demand %v exceeds capacity %v in dimension %d", rq.Demand, capacity, j)}
			}
		}
	}
	return nil
}
