// Package exactopt computes the exact optimal offline cost OPT(R) for small
// MinUsageTime DVBP instances.
//
// The paper's optimum may repack items at any time (Section 2.2), so by
// equation (2),
//
//	OPT(R) = ∫ OPT(R, t) dt,
//
// where OPT(R, t) is the minimum number of unit bins into which the items
// active at time t can be packed — an instance of (static) vector bin
// packing. The active set only changes at the O(n) arrival/departure events,
// so OPT(R) is a finite sum of segment-length × exact-VBP-minimum terms.
//
// Vector bin packing is NP-hard; MinBins solves it exactly with a bitmask
// dynamic program over item subsets (dp[mask] = fewest bins covering mask,
// iterating feasible submasks that contain the lowest set bit). This is
// O(3^n) per segment and therefore intentionally guarded: segments with more
// than MaxActive concurrent items are rejected with ErrTooLarge.
//
// Exact OPT turns the experiments' bracket [Lemma 1 LB, offline heuristic]
// into ground truth on small instances: true competitive ratios, tightness
// measurements for the Lemma 1 bounds, and end-to-end validation of the
// Table 1 bound checks.
package exactopt
