package core

// MoveToFront maintains the open bins in most-recently-used order: an
// arriving item is packed into the first bin in that order which can hold it,
// and the receiving bin (new or existing) immediately moves to the front
// (Section 2.2). Theorem 2 bounds its competitive ratio by (2μ+1)d + 1 —
// for d = 1, 2μ+2, nearly settling the Kamali–López-Ortiz conjecture — and
// Theorem 8 bounds it below by max{2μ, (μ+1)d}.
type MoveToFront struct {
	// order holds open-bin IDs, front (index 0) = most recently used.
	order []int
}

// NewMoveToFront returns a Move To Front policy.
func NewMoveToFront() *MoveToFront { return &MoveToFront{} }

// Name implements Policy.
func (*MoveToFront) Name() string { return "MoveToFront" }

// Reset implements Policy.
func (mf *MoveToFront) Reset() { mf.order = mf.order[:0] }

// Select implements Policy: scan bins in recency order; first fit wins.
func (mf *MoveToFront) Select(req Request, open []*Bin) *Bin {
	if len(open) == 0 {
		return nil
	}
	byID := make(map[int]*Bin, len(open))
	for _, b := range open {
		byID[b.ID] = b
	}
	for _, id := range mf.order {
		if b, ok := byID[id]; ok && b.Fits(req.Size) {
			return b
		}
	}
	return nil
}

// OnPack implements Policy: the receiving bin becomes the leader (front of
// the recency list).
func (mf *MoveToFront) OnPack(_ Request, b *Bin, opened bool) {
	mf.moveToFront(b.ID)
}

// OnClose implements Policy: drop the closed bin from the recency list.
func (mf *MoveToFront) OnClose(b *Bin) {
	for i, id := range mf.order {
		if id == b.ID {
			mf.order = append(mf.order[:i], mf.order[i+1:]...)
			return
		}
	}
}

// LeaderID returns the ID of the current leader bin (front of the list), or
// -1 when no bin is open. Exposed for the decomposition analysis in tests and
// the Theorem 2 instrumentation.
func (mf *MoveToFront) LeaderID() int {
	if len(mf.order) == 0 {
		return -1
	}
	return mf.order[0]
}

func (mf *MoveToFront) moveToFront(id int) {
	for i, x := range mf.order {
		if x == id {
			copy(mf.order[1:i+1], mf.order[:i])
			mf.order[0] = id
			return
		}
	}
	mf.order = append(mf.order, 0)
	copy(mf.order[1:], mf.order[:len(mf.order)-1])
	mf.order[0] = id
}
