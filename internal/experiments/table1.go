package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"dvbp/internal/adversary"
	"dvbp/internal/core"
	"dvbp/internal/offline"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/workload"
)

// Table1UpperBound returns the Table 1 upper bound on the competitive ratio
// of the named policy for given μ and d, or +Inf for policies with no finite
// bound (Best Fit et al.).
func Table1UpperBound(policy string, mu float64, d int) float64 {
	df := float64(d)
	switch policy {
	case "MoveToFront":
		return (2*mu+1)*df + 1 // Theorem 2
	case "FirstFit":
		return (mu+2)*df + 1 // Theorem 3
	case "NextFit":
		return 2*mu*df + 1 // Theorem 4
	default:
		return math.Inf(1)
	}
}

// Table1LowerBound returns the Table 1 lower bound on the competitive ratio
// of the named policy (d ≥ 1 column).
func Table1LowerBound(policy string, mu float64, d int) float64 {
	df := float64(d)
	switch policy {
	case "MoveToFront":
		return math.Max(2*mu, (mu+1)*df) // Theorem 8
	case "NextFit":
		return 2 * mu * df // Theorem 6
	case "BestFit":
		return math.Inf(1) // unbounded (Theorem 7)
	default: // generic Any Fit (First Fit, Worst Fit, ...)
		return (mu + 1) * df // Theorem 5
	}
}

// AdversarialRow is one measured point of the Table 1 lower-bound study.
type AdversarialRow struct {
	Construction string
	Policy       string
	// Param is the construction's size parameter (k, n or R).
	Param int
	// MeasuredRatio is cost/OPTUpper: a certified lower bound on the true
	// competitive ratio of Policy on this instance.
	MeasuredRatio float64
	// TheoreticalTarget is the bound the construction approaches as
	// Param → ∞.
	TheoreticalTarget float64
	// UpperBound is the Table 1 upper bound (must dominate MeasuredRatio).
	UpperBound float64
	// Cost and OPTUpper are the raw measurements.
	Cost, OPTUpper float64
	// Bins is the number of bins the policy opened.
	Bins int
}

// Consistent reports whether the measurement respects theory:
// ratio ≤ target (the certificate can't exceed the limit it converges to
// from below) and ratio ≤ upper bound.
func (r AdversarialRow) Consistent() bool {
	const slack = 1e-6
	return r.MeasuredRatio <= r.TheoreticalTarget+slack && r.MeasuredRatio <= r.UpperBound+slack
}

// adversarialRowJSON is the wire form of AdversarialRow. Floats travel as
// shortest-round-trip strings because several bounds are legitimately +Inf
// (Best Fit's upper bound), which plain JSON numbers cannot carry.
type adversarialRowJSON struct {
	Construction      string `json:"construction"`
	Policy            string `json:"policy"`
	Param             int    `json:"param"`
	MeasuredRatio     string `json:"measured_ratio"`
	TheoreticalTarget string `json:"theoretical_target"`
	UpperBound        string `json:"upper_bound"`
	Cost              string `json:"cost"`
	OPTUpper          string `json:"opt_upper"`
	Bins              int    `json:"bins"`
}

func ffmt(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// MarshalJSON implements json.Marshaler (Inf-safe, lossless round trip).
func (r AdversarialRow) MarshalJSON() ([]byte, error) {
	return json.Marshal(adversarialRowJSON{
		Construction:      r.Construction,
		Policy:            r.Policy,
		Param:             r.Param,
		MeasuredRatio:     ffmt(r.MeasuredRatio),
		TheoreticalTarget: ffmt(r.TheoreticalTarget),
		UpperBound:        ffmt(r.UpperBound),
		Cost:              ffmt(r.Cost),
		OPTUpper:          ffmt(r.OPTUpper),
		Bins:              r.Bins,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *AdversarialRow) UnmarshalJSON(b []byte) error {
	var w adversarialRowJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	parse := func(s string, dst *float64) error {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("experiments: bad float %q in adversarial row: %w", s, err)
		}
		*dst = v
		return nil
	}
	r.Construction, r.Policy, r.Param, r.Bins = w.Construction, w.Policy, w.Param, w.Bins
	for _, f := range []struct {
		s   string
		dst *float64
	}{
		{w.MeasuredRatio, &r.MeasuredRatio},
		{w.TheoreticalTarget, &r.TheoreticalTarget},
		{w.UpperBound, &r.UpperBound},
		{w.Cost, &r.Cost},
		{w.OPTUpper, &r.OPTUpper},
	} {
		if err := parse(f.s, f.dst); err != nil {
			return err
		}
	}
	return nil
}

// Table1Config parameterises the adversarial study.
type Table1Config struct {
	// D is the dimension for Theorem 5/6 constructions.
	D int
	// Mu is the duration ratio used by the constructions.
	Mu float64
	// Params is the sweep of size parameters (k for Thm 5/6, n for Thm 8,
	// R for the Best Fit family).
	Params []int
	// Seed feeds RandomFit (the only randomised policy).
	Seed int64
	// RunControl supplies the execution knobs (Workers, Ctx, Progress,
	// Shard, Observer); none of them affect results.
	RunControl
}

// Table1Grid is the result-affecting part of Table1Config, serialised into
// sweep documents so merge can reject parts run under different grids.
type Table1Grid struct {
	D      int     `json:"d"`
	Mu     float64 `json:"mu"`
	Params []int   `json:"params"`
	Seed   int64   `json:"seed"`
}

// Grid extracts the serialisable grid from the config.
func (c Table1Config) Grid() Table1Grid {
	return Table1Grid{D: c.D, Mu: c.Mu, Params: c.Params, Seed: c.Seed}
}

// Config rebuilds an executable config (zero RunControl) from a grid.
func (g Table1Grid) Config() Table1Config {
	return Table1Config{D: g.D, Mu: g.Mu, Params: g.Params, Seed: g.Seed}
}

// DefaultTable1 returns a sweep matching the theory section's asymptotics.
func DefaultTable1() Table1Config {
	return Table1Config{D: 2, Mu: 10, Params: []int{2, 4, 8, 16, 32, 64}, Seed: 1}
}

// table1Spec pairs one adversarial construction with the policy it targets.
type table1Spec struct {
	make   func() (*adversary.Instance, error)
	policy core.Policy
}

// table1Specs returns the per-parameter construction list. Policies are built
// fresh per call (they are stateful), so concurrent shards never share one.
func table1Specs(cfg Table1Config, k int) []table1Spec {
	return []table1Spec{
		{func() (*adversary.Instance, error) { return adversary.Theorem5(cfg.D, k, cfg.Mu) }, core.NewFirstFit()},
		{func() (*adversary.Instance, error) { return adversary.Theorem5(cfg.D, k, cfg.Mu) }, core.NewMoveToFront()},
		{func() (*adversary.Instance, error) { return adversary.Theorem5(cfg.D, k, cfg.Mu) }, core.NewWorstFit(core.MaxLoad())},
		{func() (*adversary.Instance, error) { return adversary.Theorem6(cfg.D, k, cfg.Mu) }, core.NewNextFit()},
		{func() (*adversary.Instance, error) { return adversary.Theorem8(k, cfg.Mu) }, core.NewMoveToFront()},
		{func() (*adversary.Instance, error) { return adversary.BestFitPillars(k, float64(k*k)) }, core.NewBestFit(core.MaxLoad())},
	}
}

// table1SpecCount is the number of constructions per sweep parameter.
const table1SpecCount = 6

// ShardCount returns the sweep's total shard count: one shard per
// (parameter, construction) pair, flattened as paramIdx*specCount+specIdx —
// the row order of the sequential study.
func (c Table1Config) ShardCount() int { return len(c.Params) * table1SpecCount }

func table1Shard(cfg Table1Config, shard int) (AdversarialRow, error) {
	k := cfg.Params[shard/table1SpecCount]
	if k%2 == 1 {
		k++ // Theorem 6 needs even k; keep sweeps aligned
	}
	sp := table1Specs(cfg, k)[shard%table1SpecCount]
	in, err := sp.make()
	if err != nil {
		return AdversarialRow{}, err
	}
	res, err := core.Simulate(in.List, sp.policy, cfg.observerOpts()...)
	if err != nil {
		return AdversarialRow{}, fmt.Errorf("experiments: %s on %s: %w", sp.policy.Name(), in.Name, err)
	}
	mu := in.List.Mu()
	d := in.List.Dim
	return AdversarialRow{
		Construction:      in.Name,
		Policy:            sp.policy.Name(),
		Param:             k,
		MeasuredRatio:     in.MeasuredRatio(res.Cost),
		TheoreticalTarget: in.AsymptoticRatio,
		UpperBound:        Table1UpperBound(sp.policy.Name(), mu, d),
		Cost:              res.Cost,
		OPTUpper:          in.OPTUpper,
		Bins:              res.BinsOpened,
	}, nil
}

// Table1Sweep is the sweep document for the adversarial study: one
// AdversarialRow per (parameter, construction) shard.
type Table1Sweep = Sweep[AdversarialRow]

// RunTable1Sweep executes the (possibly slice-restricted) sharded study and
// returns the rows as a serialisable sweep document.
func RunTable1Sweep(cfg Table1Config) (*Table1Sweep, error) {
	if cfg.D < 1 || cfg.Mu < 1 || len(cfg.Params) == 0 {
		return nil, fmt.Errorf("experiments: invalid Table1Config %+v", cfg)
	}
	dense, err := runShards(cfg.RunControl, cfg.ShardCount(), func(_ context.Context, s int) (AdversarialRow, error) {
		return table1Shard(cfg, s)
	})
	if err != nil {
		return nil, err
	}
	return newSweep("table1", cfg.Grid(), cfg.Shard, dense)
}

// Table1Rows folds a complete sweep back into the sequential row order.
func Table1Rows(s *Table1Sweep) ([]AdversarialRow, error) {
	if s.Experiment != "table1" {
		return nil, fmt.Errorf("experiments: sweep is %q, not table1", s.Experiment)
	}
	return s.Dense()
}

// RunTable1 measures every construction across the parameter sweep.
func RunTable1(cfg Table1Config) ([]AdversarialRow, error) {
	sweep, err := RunTable1Sweep(cfg)
	if err != nil {
		return nil, err
	}
	return Table1Rows(sweep)
}

// Table renders the adversarial study.
func AdversarialTable(rows []AdversarialRow) *report.Table {
	t := &report.Table{
		Title:   "Table 1 lower-bound constructions: measured ratio vs theoretical target",
		Headers: []string{"construction", "policy", "param", "bins", "cost", "OPT<=", "measured CR>=", "target", "upper bound", "consistent"},
	}
	for _, r := range rows {
		ub := "inf"
		if !math.IsInf(r.UpperBound, 1) {
			ub = report.F(r.UpperBound)
		}
		t.AddRow(r.Construction, r.Policy, fmt.Sprintf("%d", r.Param), fmt.Sprintf("%d", r.Bins),
			report.F(r.Cost), report.F(r.OPTUpper), report.F(r.MeasuredRatio),
			report.F(r.TheoreticalTarget), ub, fmt.Sprintf("%v", r.Consistent()))
	}
	return t
}

// UpperBoundCheckConfig parameterises the empirical validation of the
// Table 1 upper bounds on random workloads: for each instance we verify
// cost(alg) ≤ bound(μ, d) · OPTUpper, where OPTUpper is the best offline
// heuristic packing (a valid refutation test since OPT ≤ OPTUpper).
type UpperBoundCheckConfig struct {
	D, N, Mu, T, B int
	Instances      int
	Seed           int64
	// RunControl supplies the execution knobs; shard slices are not
	// supported here (the result is not reassemblable from parts).
	RunControl
}

// DefaultUpperBoundCheck uses a smaller grid than Figure 4 because the
// offline packers are O(n²).
func DefaultUpperBoundCheck() UpperBoundCheckConfig {
	return UpperBoundCheckConfig{D: 2, N: 200, Mu: 10, T: 200, B: 100, Instances: 50, Seed: 1}
}

// UpperBoundViolation describes a failed check (none are expected).
type UpperBoundViolation struct {
	Seed   int64
	Policy string
	Cost   float64
	Bound  float64
	OPTUp  float64
}

// RunUpperBoundCheck returns the violations found (expected empty) and the
// number of (instance, policy) pairs checked.
func RunUpperBoundCheck(cfg UpperBoundCheckConfig) ([]UpperBoundViolation, int, error) {
	wcfg := workload.UniformConfig{D: cfg.D, N: cfg.N, Mu: cfg.Mu, T: cfg.T, B: cfg.B}
	if err := wcfg.Validate(); err != nil {
		return nil, 0, err
	}
	if err := cfg.requireUnsharded("upperbound"); err != nil {
		return nil, 0, err
	}
	type trial struct {
		violations []UpperBoundViolation
		checked    int
	}
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) (trial, error) {
		seed := parallel.SeedFor(cfg.Seed, i)
		l, err := workload.Uniform(wcfg, seed)
		if err != nil {
			return trial{}, err
		}
		up, err := offline.BestUpperEstimate(l)
		if err != nil {
			return trial{}, err
		}
		mu := l.Mu()
		var tr trial
		for _, name := range []string{"MoveToFront", "FirstFit", "NextFit"} {
			p, err := core.NewPolicy(name, seed)
			if err != nil {
				return trial{}, err
			}
			res, err := core.Simulate(l, p, cfg.observerOpts()...)
			if err != nil {
				return trial{}, err
			}
			bound := Table1UpperBound(name, mu, cfg.D)
			tr.checked++
			if res.Cost > bound*up.Cost+1e-6 {
				tr.violations = append(tr.violations, UpperBoundViolation{
					Seed: seed, Policy: name, Cost: res.Cost, Bound: bound, OPTUp: up.Cost,
				})
			}
		}
		return tr, nil
	})
	if err != nil {
		return nil, 0, err
	}
	var out []UpperBoundViolation
	checked := 0
	for _, tr := range trials {
		out = append(out, tr.violations...)
		checked += tr.checked
	}
	return out, checked, nil
}
