package persist

import (
	"encoding/binary"
	"fmt"
	"path/filepath"

	"dvbp/internal/core"
	"dvbp/internal/vfs"
)

// File names inside a checkpoint directory.
const (
	walFile    = "wal.dvbp"
	snapPrefix = "snap-"
	snapSuffix = ".dvbp"
)

// snapName renders the snapshot file name for a checkpoint at eventSeq.
func snapName(eventSeq int64) string {
	return fmt.Sprintf("%s%016d%s", snapPrefix, eventSeq, snapSuffix)
}

// AuxCodec lets a subsystem outside the engine (the metrics registry) ride
// along in snapshots: Marshal captures its state at a checkpoint, Unmarshal
// restores it before replay. The contract mirrors the engine's: aux state
// captured at event k, plus replay of events k+1..n through the subsystem's
// ordinary observer callbacks, must equal the uninterrupted state at n.
type AuxCodec interface {
	// AuxKey names the blob inside snapshot files; keys must be unique
	// within a session.
	AuxKey() string
	MarshalAux() ([]byte, error)
	UnmarshalAux(data []byte) error
}

// Config shapes a persistence session.
type Config struct {
	// Dir is the checkpoint directory (created if missing).
	Dir string
	// Label names the run for error reporting — the tenant name in a
	// multi-tenant directory layout. Every *CorruptionError that recovery
	// detects or tolerates carries it, so logs say whose WAL was truncated
	// rather than just which file.
	Label string
	// Every takes an automatic checkpoint after this many events; 0 disables
	// automatic checkpoints (the WAL alone still recovers via full replay).
	Every int64
	// SyncEvery batches WAL fsyncs (default 64 records; SyncManual disables
	// auto-sync so only explicit barriers reach the device).
	SyncEvery int
	// Aux subsystems checkpointed alongside the engine.
	Aux []AuxCodec
	// FS is the filesystem seam every file operation goes through; nil means
	// the real filesystem. Tests inject vfs.Mem or a vfs.Injector here.
	FS vfs.FS
	// Compact truncates the WAL prefix after each successful automatic
	// checkpoint (and prunes snapshots below the new base), bounding on-disk
	// size by the snapshot interval instead of the run length. See
	// Session.Compact and DESIGN.md §15.
	Compact bool
}

// IOStats counts the I/O weather a session rode through: transient failures
// it absorbed (to be retried by later barriers), checkpoints it skipped, and
// the compactions it completed. TakeIOStats drains them; the server exports
// them as metrics.
type IOStats struct {
	// SyncFailures counts recoverable WAL auto-sync failures that were
	// absorbed: the records stayed buffered and a later Sync retried them.
	SyncFailures int64
	// CheckpointsSkipped counts automatic checkpoints skipped on recoverable
	// I/O errors; the next interval tries again.
	CheckpointsSkipped int64
	// Compactions counts completed WAL compactions.
	Compactions int64
	// ReclaimedBytes sums the on-disk bytes compaction reclaimed (WAL prefix
	// plus pruned snapshots).
	ReclaimedBytes int64
}

// Session couples a stepping engine to its write-ahead log: every committed
// event is appended to the WAL before the next one runs, and checkpoints
// capture engine + aux state between events. The caller owns the engine's
// lifecycle through the session (Step/Finish/Close), never directly.
type Session struct {
	cfg    Config
	fsys   vfs.FS
	meta   RunMeta
	engine *core.Engine
	wal    *Writer
	buf    []byte
	logged int64 // events in the WAL (lifetime count, compaction included)

	walBase  int64 // events truncated away by compaction (WAL holds base+1..logged)
	lastSnap int64 // event seq of the newest durable snapshot this session took
	stats    IOStats
}

// Begin starts persisting a fresh run: it creates the directory, the WAL
// (truncating any previous run in the directory), and an initial checkpoint
// at event 0 when cfg.Every > 0.
func Begin(e *core.Engine, meta RunMeta, cfg Config) (*Session, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: no checkpoint directory configured")
	}
	if !core.CheckpointablePolicy(e.Policy()) {
		return nil, fmt.Errorf("persist: policy %s carries state but implements no PolicyStateCodec", e.Policy().Name())
	}
	if err := checkAuxKeys(cfg.Aux); err != nil {
		return nil, err
	}
	fsys := vfs.OrOS(cfg.FS)
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, ioErr("mkdir", cfg.Dir, err)
	}
	// Remove checkpoints from any earlier run in the directory: they would
	// otherwise be mistaken for this run's on recovery.
	old, err := listSnapshots(fsys, cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, f := range old {
		if err := fsys.Remove(filepath.Join(cfg.Dir, f.name)); err != nil {
			return nil, ioErr("remove", f.name, err)
		}
	}
	wal, err := Create(fsys, filepath.Join(cfg.Dir, walFile), KindWAL, cfg.SyncEvery)
	if err != nil {
		return nil, err
	}
	s := &Session{cfg: cfg, fsys: fsys, meta: meta, engine: e, wal: wal}
	if err := wal.Append(encodeMeta(meta)); err != nil {
		wal.Close()
		return nil, err
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return nil, err
	}
	if err := syncDir(fsys, cfg.Dir); err != nil {
		wal.Close()
		return nil, err
	}
	if cfg.Every > 0 {
		if err := s.Checkpoint(); err != nil {
			wal.Close()
			return nil, err
		}
	}
	return s, nil
}

// Engine exposes the engine the session is persisting.
func (s *Session) Engine() *core.Engine { return s.engine }

// Logged returns the number of events appended to the WAL over the session's
// lifetime (compaction does not reduce it).
func (s *Session) Logged() int64 { return s.logged }

// WALSize returns the WAL's current size, buffered bytes included — the
// quantity compaction bounds.
func (s *Session) WALSize() int64 { return s.wal.Size() }

// TakeIOStats returns and resets the session's I/O counters.
func (s *Session) TakeIOStats() IOStats {
	st := s.stats
	s.stats = IOStats{}
	return st
}

// Step commits one engine event and appends it to the WAL, then takes an
// automatic checkpoint (and, with cfg.Compact, a WAL compaction) when the
// configured interval elapses. ok=false means the run is complete (call
// Finish).
//
// Recoverable I/O errors (transient EIO, a full disk) on the auto-sync,
// checkpoint, and compaction paths are absorbed and counted in IOStats, not
// returned: the appended records stay buffered and the next barrier retries
// them, a skipped checkpoint just means the next interval tries again. An
// error from Step is therefore always corruption or fatal.
func (s *Session) Step() (rec core.EventRecord, ok bool, err error) {
	rec, ok, err = s.engine.Step()
	if err != nil || !ok {
		return rec, ok, err
	}
	s.buf = AppendEventRecord(s.buf[:0], rec)
	if err := s.wal.Append(s.buf); err != nil {
		if !Recoverable(err) {
			return rec, false, err
		}
		s.stats.SyncFailures++ // records stay buffered; a later Sync retries
	}
	s.logged++
	if s.cfg.Every > 0 && s.logged%s.cfg.Every == 0 {
		if err := s.Checkpoint(); err != nil {
			if !Recoverable(err) {
				return rec, false, err
			}
			s.stats.CheckpointsSkipped++
		} else if s.cfg.Compact {
			if err := s.Compact(); err != nil && !Recoverable(err) {
				return rec, false, err
			}
		}
	}
	return rec, true, nil
}

// Sync forces every appended WAL record down to the device — the group-commit
// barrier a server runs between stepping a batch and acknowledging it, so no
// client ever holds an acknowledgement for an event a crash can undo. Unlike
// Step's automatic paths, Sync reports recoverable errors to the caller: the
// barrier is exactly where honesty about durability is due.
func (s *Session) Sync() error {
	return s.wal.Sync()
}

// Checkpoint captures the engine and aux state at the current event boundary
// into an atomically-written snapshot file. The WAL is synced first so the
// snapshot never gets ahead of the durable log.
func (s *Session) Checkpoint() error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	snap, err := s.engine.Snapshot()
	if err != nil {
		return err
	}
	content := appendHeader(nil, KindSnapshot)
	content = appendRecord(content, encodeMeta(s.meta))
	content = appendRecord(content, EncodeSnapshot(snap))
	for _, aux := range s.cfg.Aux {
		blob, err := aux.MarshalAux()
		if err != nil {
			return fmt.Errorf("persist: aux %q: %w", aux.AuxKey(), err)
		}
		content = appendRecord(content, encodeAux(aux.AuxKey(), blob))
	}
	if err := writeFileAtomic(s.fsys, filepath.Join(s.cfg.Dir, snapName(snap.EventSeq)), content); err != nil {
		return err
	}
	s.lastSnap = snap.EventSeq
	return nil
}

// Finish syncs and closes the WAL and seals the engine into its Result.
func (s *Session) Finish() (*core.Result, error) {
	if err := s.wal.Close(); err != nil {
		s.engine.Close()
		return nil, err
	}
	return s.engine.Finish()
}

// Close abandons the session: the WAL is synced so everything logged
// survives, and the engine's policy guard is released. A later Recover picks
// the run back up.
func (s *Session) Close() error {
	err := s.wal.Close()
	s.engine.Close()
	return err
}

// Run drives the session to completion: Step until the event stream drains,
// then Finish.
func (s *Session) Run() (*core.Result, error) {
	for {
		_, ok, err := s.Step()
		if err != nil {
			s.Close()
			return nil, err
		}
		if !ok {
			break
		}
	}
	return s.Finish()
}

// Aux record payload: uvarint key length | key | blob.
func encodeAux(key string, blob []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(key)))
	out = append(out, key...)
	return append(out, blob...)
}

func decodeAux(payload []byte) (key string, blob []byte, err error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(len(payload)-w) {
		return "", nil, corrupt("malformed aux record")
	}
	return string(payload[w : w+int(n)]), payload[w+int(n):], nil
}

func checkAuxKeys(aux []AuxCodec) error {
	seen := make(map[string]bool, len(aux))
	for _, a := range aux {
		k := a.AuxKey()
		if k == "" {
			return fmt.Errorf("persist: empty aux key")
		}
		if seen[k] {
			return fmt.Errorf("persist: duplicate aux key %q", k)
		}
		seen[k] = true
	}
	return nil
}
