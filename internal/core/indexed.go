package core

import (
	"fmt"

	"dvbp/internal/binindex"
)

// BinIndex is the engine-owned indexed bin store over the open bins (see
// internal/binindex). The engine maintains it on every open, pack, departure
// and close; policies only query it through SelectIndexed.
type BinIndex = binindex.Store[*Bin]

// IndexProfile declares how a policy keys the indexed bin store. Exactly one
// of Key and Recency is set: Key maps a bin to the composite sort key whose
// leftmost feasible entry is the policy's choice, while Recency selects the
// store's front-key discipline (InsertFront on open, PromoteFront after every
// pack) for most-recently-used orders.
//
// Rekey, when non-nil, re-establishes the policy's order after a checkpoint
// restore: the engine first inserts every open bin (ascending ID), then hands
// the index to Rekey to promote bins into the policy's true order. It must
// fail — not guess — when the policy's restored state does not cover the
// index exactly, so corrupt snapshots surface as errors rather than silently
// diverging runs.
type IndexProfile struct {
	Key     func(b *Bin) (kf float64, ks int64)
	Recency bool
	Rekey   func(ix *BinIndex) error
}

// IndexedPolicy is the optional Policy extension the sub-linear Select path
// is built on. The engine uses SelectIndexed instead of Select whenever the
// policy implements it (unless WithLinearSelect forces the scan); the
// contract, specified in DESIGN.md §11 and enforced by the differential
// suites, is bit-identical decisions:
//
//	SelectIndexed(req, ix) == Select(req, open)
//
// for every reachable engine state, where ix indexes exactly the bins in
// open. Policies remain stateless with respect to the index — it is passed
// as an argument and owned by the engine, so a zero-sized policy stays
// zero-sized and the concurrent-reuse guard semantics are unchanged.
//
// Next Fit does not implement IndexedPolicy: its Select is already O(1)
// (it probes only its current bin). Harmonic Fit keeps the linear path too;
// it is not an Any Fit policy, and its per-class discipline is outside the
// single-key-order model.
type IndexedPolicy interface {
	Policy
	// IndexProfile returns the policy's keying discipline. It must be
	// constant for the life of the policy.
	IndexProfile() IndexProfile
	// SelectIndexed answers Select through the index. Like Select it must
	// not mutate the bins; it must not mutate the index either.
	SelectIndexed(req Request, ix *BinIndex) *Bin
}

// selectDrawsRandomness marks policies whose Select consumes RNG draws, so
// the audit-mode per-decision oracle (which would run Select a second time)
// skips them; whole-run differentials against WithLinearSelect cover them
// instead.
type selectDrawsRandomness interface {
	selectDrawsRandomness()
}

// binIDKey is the opening-order key (0, +binID): ascending key order is
// ascending bin ID, the order First Fit scans and Random Fit enumerates.
func binIDKey(b *Bin) (kf float64, ks int64) { return 0, int64(b.ID) }

// IndexProfile implements IndexedPolicy: First Fit keys by opening order.
func (*FirstFit) IndexProfile() IndexProfile { return IndexProfile{Key: binIDKey} }

// SelectIndexed implements IndexedPolicy: the leftmost feasible entry under
// (0, +binID) is the lowest-ID fitting bin.
func (*FirstFit) SelectIndexed(req Request, ix *BinIndex) *Bin {
	b, _ := ix.FirstFeasible(req.Size)
	return b
}

// IndexProfile implements IndexedPolicy: Last Fit keys by reverse opening
// order (0, -binID).
func (*LastFit) IndexProfile() IndexProfile {
	return IndexProfile{Key: func(b *Bin) (float64, int64) { return 0, -int64(b.ID) }}
}

// SelectIndexed implements IndexedPolicy: the leftmost feasible entry under
// (0, -binID) is the highest-ID fitting bin.
func (*LastFit) SelectIndexed(req Request, ix *BinIndex) *Bin {
	b, _ := ix.FirstFeasible(req.Size)
	return b
}

// IndexProfile implements IndexedPolicy: Best Fit keys by (-w(bin), binID).
// Negating the measure is exact for float64 and order-reversing, so ascending
// key order is descending load; the ID in the low word reproduces the linear
// scan's strictly-greater tie-break (lowest ID among the argmax).
func (bf *BestFit) IndexProfile() IndexProfile {
	eval := bf.measure.eval
	return IndexProfile{Key: func(b *Bin) (float64, int64) { return -eval(b), int64(b.ID) }}
}

// SelectIndexed implements IndexedPolicy: the leftmost feasible entry under
// (-w(bin), binID) is the most-loaded fitting bin, ties to the lowest ID.
func (*BestFit) SelectIndexed(req Request, ix *BinIndex) *Bin {
	b, _ := ix.FirstFeasible(req.Size)
	return b
}

// IndexProfile implements IndexedPolicy: Worst Fit keys by (+w(bin), binID) —
// ascending load, ties to the lowest ID (the linear scan's strictly-less
// rule).
func (wf *WorstFit) IndexProfile() IndexProfile {
	eval := wf.measure.eval
	return IndexProfile{Key: func(b *Bin) (float64, int64) { return eval(b), int64(b.ID) }}
}

// SelectIndexed implements IndexedPolicy: the leftmost feasible entry under
// (+w(bin), binID) is the least-loaded fitting bin, ties to the lowest ID.
func (*WorstFit) SelectIndexed(req Request, ix *BinIndex) *Bin {
	b, _ := ix.FirstFeasible(req.Size)
	return b
}

// IndexProfile implements IndexedPolicy: Move To Front uses the recency
// discipline — the engine inserts fresh bins at the front and promotes the
// receiving bin after every pack, mirroring the policy's own list.
func (mf *MoveToFront) IndexProfile() IndexProfile {
	return IndexProfile{Recency: true, Rekey: mf.rekeyIndex}
}

// SelectIndexed implements IndexedPolicy: the leftmost feasible entry in
// recency-key order is the most recently used fitting bin.
func (*MoveToFront) SelectIndexed(req Request, ix *BinIndex) *Bin {
	b, _ := ix.FirstFeasible(req.Size)
	return b
}

// rekeyIndex promotes every indexed bin into the policy's recency order
// after a restore (least recent first, so the true leader ends up at the
// front). The recency list and the index must cover exactly the same bins;
// any mismatch means the snapshot's policy state was inconsistent with its
// open-bin set.
func (mf *MoveToFront) rekeyIndex(ix *BinIndex) error {
	ids := make([]int, 0, ix.Len())
	for i := mf.head; i != -1; i = mf.nodes[i].next {
		ids = append(ids, mf.nodes[i].bin.ID)
	}
	if len(ids) != ix.Len() {
		return fmt.Errorf("recency list covers %d bins, index holds %d", len(ids), ix.Len())
	}
	// The list is duplicate-free (pos is keyed by ID), so equal cardinality
	// plus membership makes this a bijection.
	for k := len(ids) - 1; k >= 0; k-- {
		if _, ok := ix.Get(ids[k]); !ok {
			return fmt.Errorf("recency list bin %d is not indexed", ids[k])
		}
		ix.PromoteFront(ids[k])
	}
	return nil
}

// selectDrawsRandomness marks Random Fit: its Select advances the seeded RNG
// once per fitting bin, so running it a second time as an oracle would
// consume draws the real decision path needs.
func (*RandomFit) selectDrawsRandomness() {}

// IndexProfile implements IndexedPolicy: Random Fit keys by opening order and
// samples over the feasible entries.
func (*RandomFit) IndexProfile() IndexProfile { return IndexProfile{Key: binIDKey} }

// SelectIndexed implements IndexedPolicy: reservoir sampling over
// AscendFeasible. The enumeration visits fitting bins in ascending ID order —
// exactly the order the linear scan probes them — so the RNG draw sequence,
// and therefore the chosen bin, is bit-identical to Select's.
func (rf *RandomFit) SelectIndexed(req Request, ix *BinIndex) *Bin {
	var chosen *Bin
	n := 0
	ix.AscendFeasible(req.Size, func(b *Bin) bool {
		n++
		if rf.rng.Intn(n) == 0 {
			chosen = b
		}
		return true
	})
	return chosen
}
