package parallel

import (
	"context"
	"runtime"
)

// Options configures a parallel map.
type Options struct {
	// Workers is the number of concurrent workers; <= 0 means GOMAXPROCS.
	Workers int
	// Context cancels outstanding work early; nil means Background.
	Context context.Context
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Map runs fn(i) for i in [0, n) across workers and returns the results in
// index order. It is MapShards without the context parameter, for trial
// functions that do not poll cancellation mid-shard; the scheduler still
// stops claiming new indices once the context is cancelled or any invocation
// fails.
func Map[T any](n int, fn func(i int) (T, error), opts Options) ([]T, error) {
	return MapShards(n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	}, RunOptions{Workers: opts.Workers, Context: opts.Context})
}

// Reduce folds results in index order: deterministic regardless of execution
// order. It is a convenience over Map + sequential fold.
func Reduce[T, A any](n int, fn func(i int) (T, error), fold func(acc A, v T) A, init A, opts Options) (A, error) {
	vs, err := Map(n, fn, opts)
	if err != nil {
		var zero A
		return zero, err
	}
	acc := init
	for _, v := range vs {
		acc = fold(acc, v)
	}
	return acc, nil
}

// SeedFor derives the per-trial RNG seed used throughout the experiment
// harness: a SplitMix64 step over (base, index), so neighbouring trials get
// decorrelated streams and the mapping is stable across releases.
func SeedFor(base int64, index int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(index+1)
	return int64(mix64(z))
}
