package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/vfs"
)

// The operation log (KindOpLog) is a dynamic run's durable input stream: one
// record per admitted client operation, appended and fsynced BEFORE the
// operation's engine events may reach the WAL. That ordering is the
// multi-tenant recovery invariant — every event a durable WAL can hold
// references an item a durable op log already carries, so rebuilding the item
// list from the op log and replaying the WAL against it always lines up.
//
// Record payload layouts (after the shared meta record):
//
//	item    : 'i' | arrival float64 LE | departure float64 LE | size d×float64 LE
//	advance : 'a' | to float64 LE
//
// Item IDs are implicit: the k-th item record is item k, matching the IDs
// core.Engine.AppendArrival assigns.

// OpKind labels one op-log record.
type OpKind byte

// The op-log record kinds.
const (
	// OpItem admits one item: it arrives at Arrival, departs at Departure,
	// and its ID is its zero-based position among the log's item records.
	OpItem OpKind = 'i'
	// OpAdvance moves the run's logical clock forward to To, committing
	// every pending engine event at or before it (departures included).
	OpAdvance OpKind = 'a'
)

// Op is one decoded op-log record.
type Op struct {
	Kind               OpKind
	Arrival, Departure float64       // OpItem
	Size               vector.Vector // OpItem
	To                 float64       // OpAdvance
}

// AppendItemOp serialises an item-admission record onto dst.
func AppendItemOp(dst []byte, arrival, departure float64, size vector.Vector) []byte {
	dst = append(dst, byte(OpItem))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(arrival))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(departure))
	for _, s := range size {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s))
	}
	return dst
}

// AppendAdvanceOp serialises a clock-advance record onto dst.
func AppendAdvanceOp(dst []byte, to float64) []byte {
	dst = append(dst, byte(OpAdvance))
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(to))
}

// DecodeOp is the inverse of the Append*Op encoders for a d-dimensional run.
// Malformed payloads of any shape return a *CorruptionError, never panic.
func DecodeOp(payload []byte, d int) (Op, error) {
	var op Op
	if len(payload) < 1 {
		return op, corrupt("empty op record")
	}
	op.Kind = OpKind(payload[0])
	p := payload[1:]
	switch op.Kind {
	case OpItem:
		if len(p) != (2+d)*8 {
			return op, corrupt("item op has %d payload bytes, want %d for d=%d", len(p), (2+d)*8, d)
		}
		op.Arrival = math.Float64frombits(binary.LittleEndian.Uint64(p))
		op.Departure = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		op.Size = vector.New(d)
		for i := 0; i < d; i++ {
			op.Size[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[16+8*i:]))
		}
	case OpAdvance:
		if len(p) != 8 {
			return op, corrupt("advance op has %d payload bytes, want 8", len(p))
		}
		op.To = math.Float64frombits(binary.LittleEndian.Uint64(p))
		if math.IsNaN(op.To) {
			return op, corrupt("advance op to NaN")
		}
	default:
		return op, corrupt("unknown op kind %#x", payload[0])
	}
	return op, nil
}

// OpLogData is a recovered operation log: the run identity, the rebuilt item
// list, and the admission watermark the run must resume at.
type OpLogData struct {
	// Meta is the run's identity (the log's first record).
	Meta RunMeta
	// List is the item list rebuilt from the item records, in log order —
	// exactly the list the run's WAL replays against.
	List *item.List
	// Ops is the full decoded operation stream.
	Ops []Op
	// Watermark is the run's admission floor: the largest arrival or advance
	// target in the log. New arrivals below it would rewrite history.
	Watermark float64
	// MaxAdvance is the largest advance target (0 when none was logged);
	// recovery re-runs the clock to it so acknowledged departures stay
	// committed.
	MaxAdvance float64
	// ValidSize is the byte prefix covered by intact records; Torn describes
	// the discarded tail, nil when the file is clean.
	ValidSize int64
	Torn      *CorruptionError
}

// ReadOpLog reads and validates an operation log. Like WAL recovery, a torn
// or checksum-damaged tail only truncates — the intact prefix is returned and
// the defect reported in Torn — while a damaged header or meta record is
// fatal. label names the run in every reported corruption. fsys nil means the
// real filesystem.
func ReadOpLog(fsys vfs.FS, path, label string) (*OpLogData, error) {
	fd, err := ReadFile(fsys, path)
	if err != nil {
		if ce, ok := err.(*CorruptionError); ok {
			ce.Run = label
		}
		return nil, err
	}
	if fd.Kind != KindOpLog {
		return nil, &CorruptionError{Run: label, Path: path, Offset: -1, Record: -1, Reason: fmt.Sprintf("expected an op log, found kind %d", fd.Kind)}
	}
	if fd.Torn != nil {
		fd.Torn.Run = label
	}
	if len(fd.Records) == 0 {
		return nil, &CorruptionError{Run: label, Path: path, Offset: headerSize, Record: 0, Reason: "no run meta record survived"}
	}
	meta, err := decodeMeta(fd.Records[0])
	if err != nil {
		ce := err.(*CorruptionError)
		ce.Run, ce.Path, ce.Offset, ce.Record = label, path, fd.Offsets[0], 0
		return nil, ce
	}
	if !meta.Dynamic {
		return nil, &CorruptionError{Run: label, Path: path, Offset: fd.Offsets[0], Record: 0, Reason: "op log belongs to a non-dynamic run"}
	}
	out := &OpLogData{Meta: meta, List: item.NewList(meta.Dim), ValidSize: fd.ValidSize, Torn: fd.Torn}
	for i, payload := range fd.Records[1:] {
		op, err := DecodeOp(payload, meta.Dim)
		if err != nil {
			// An undecodable record truncates the log there, like a torn WAL
			// tail: everything after it is unordered against the lost op.
			ce := err.(*CorruptionError)
			ce.Run, ce.Path, ce.Offset, ce.Record = label, path, fd.Offsets[i+1], i+1
			out.Torn = ce
			out.ValidSize = fd.Offsets[i+1]
			break
		}
		switch op.Kind {
		case OpItem:
			id := out.List.Add(op.Arrival, op.Departure, op.Size)
			if err := out.List.Items[id].Validate(meta.Dim); err != nil {
				ce := corrupt("invalid item op: %v", err)
				ce.Run, ce.Path, ce.Offset, ce.Record = label, path, fd.Offsets[i+1], i+1
				return nil, ce
			}
			if op.Arrival < out.Watermark {
				ce := corrupt("item op at arrival %g regresses below watermark %g", op.Arrival, out.Watermark)
				ce.Run, ce.Path, ce.Offset, ce.Record = label, path, fd.Offsets[i+1], i+1
				return nil, ce
			}
			out.Watermark = op.Arrival
		case OpAdvance:
			if op.To < out.Watermark {
				ce := corrupt("advance op to %g regresses below watermark %g", op.To, out.Watermark)
				ce.Run, ce.Path, ce.Offset, ce.Record = label, path, fd.Offsets[i+1], i+1
				return nil, ce
			}
			out.Watermark = op.To
			if op.To > out.MaxAdvance {
				out.MaxAdvance = op.To
			}
		}
		out.Ops = append(out.Ops, op)
	}
	return out, nil
}

// CreateOpLog creates (truncating) an op log for the given dynamic run and
// durably writes its meta record. fsys nil means the real filesystem.
func CreateOpLog(fsys vfs.FS, path string, meta RunMeta, syncEvery int) (*Writer, error) {
	if !meta.Dynamic {
		return nil, fmt.Errorf("persist: op logs record dynamic runs; meta is static")
	}
	w, err := Create(fsys, path, KindOpLog, syncEvery)
	if err != nil {
		return nil, err
	}
	if err := w.Append(encodeMeta(meta)); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// ReopenOpLog reopens a recovered op log for appending, truncating the torn
// tail ReadOpLog reported (validSize is OpLogData.ValidSize). fsys nil means
// the real filesystem.
func ReopenOpLog(fsys vfs.FS, path string, validSize int64, syncEvery int) (*Writer, error) {
	return openAppend(vfs.OrOS(fsys), path, validSize, syncEvery)
}
