# Developer entry points. `make ci` is the full gate: formatting, vet,
# and the test suite under the race detector.

GO ?= go

.PHONY: ci fmt vet test race build bench

ci: fmt vet race

# gofmt -l prints offending files; fail when the list is non-empty.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
