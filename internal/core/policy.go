package core

import (
	"dvbp/internal/vector"
)

// Request is the information an online, non-clairvoyant algorithm sees when
// an item arrives (Section 2.1: "when an item arrives the algorithm does not
// have any knowledge of when it will depart").
//
// Departure is populated only when the engine runs with WithClairvoyance —
// the clairvoyant DVBP variant the paper lists as future work. Policies that
// need it must check HasDeparture and fail fast otherwise.
type Request struct {
	ID      int
	SeqNo   int
	Arrival float64
	Size    vector.Vector

	Departure    float64
	HasDeparture bool

	// Attempt is 0 on the item's first dispatch and k when the item is
	// being re-dispatched after its k-th eviction (fault injection only).
	// Arrival is the current dispatch time, not the original arrival.
	Attempt int
}

// Policy chooses among open bins. Implementations hold any per-run state they
// need (Move To Front's recency list, Next Fit's current bin) and must be
// reset between runs via Reset.
//
// The engine guarantees:
//   - open is the list of currently open bins in opening order (ascending ID);
//   - Select is called once per arriving item;
//   - OnPack is called after every successful placement, with opened=true when
//     the engine had to open a fresh bin (policy returned nil);
//   - OnClose is called when a bin's last item departs, before any subsequent
//     Select.
//
// Policies must return either nil or a bin from open that Fits the request's
// size. Returning an unfit bin is a policy bug; the engine reports it as an
// error rather than packing infeasibly.
type Policy interface {
	// Name returns a stable identifier, e.g. "FirstFit".
	Name() string
	// Reset clears all per-run state. Engines call it before a run, so a
	// single Policy value can be reused across simulations.
	Reset()
	// Select returns the open bin to pack the request into, or nil to open a
	// new bin. Select must not mutate the bins.
	Select(req Request, open []*Bin) *Bin
	// OnPack observes a completed placement.
	OnPack(req Request, b *Bin, opened bool)
	// OnClose observes a bin closing (all items departed).
	OnClose(b *Bin)
}
