package metrics

import (
	"sync"
	"time"
)

// Clock supplies monotonic elapsed time since an arbitrary epoch. The engine
// instrumentation only ever subtracts two readings, so the epoch is
// irrelevant; what matters is that readings never go backwards.
type Clock interface {
	// Now returns the elapsed time since the clock's epoch.
	Now() time.Duration
}

// NewWallClock returns a Clock backed by the runtime's monotonic clock
// (readings are immune to wall-clock adjustments).
func NewWallClock() Clock { return &wallClock{base: time.Now()} }

type wallClock struct{ base time.Time }

func (c *wallClock) Now() time.Duration { return time.Since(c.base) }

// Manual is a hand-advanced Clock for deterministic tests: Now returns
// whatever the test has accumulated via Advance. The zero value starts at 0
// and is ready to use.
type Manual struct {
	mu sync.Mutex
	t  time.Duration
}

// Now implements Clock.
func (m *Manual) Now() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Advance moves the clock forward by d. Negative d panics: clocks are
// monotonic.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("metrics: Manual clock moved backwards")
	}
	m.mu.Lock()
	m.t += d
	m.mu.Unlock()
}
