package experiments

import (
	"context"
	"fmt"

	"dvbp/internal/clairvoyant"
	"dvbp/internal/core"
	"dvbp/internal/lowerbound"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
	"dvbp/internal/workload"
)

// AblationConfig parameterises the reproduction's own design-space studies,
// which use the Figure 4 workload model.
type AblationConfig struct {
	D, N, Mu, T, B int
	Instances      int
	Seed           int64
	// RunControl supplies the execution knobs; shard slices are not
	// supported here (the result is not reassemblable from parts).
	RunControl
}

// DefaultAblation matches one Figure 4 cell (d=2, μ=100) at reduced instance
// count.
func DefaultAblation() AblationConfig {
	return AblationConfig{D: 2, N: 1000, Mu: 100, T: 1000, B: 100, Instances: 100, Seed: 1}
}

func (c AblationConfig) workloadConfig() workload.UniformConfig {
	return workload.UniformConfig{D: c.D, N: c.N, Mu: c.Mu, T: c.T, B: c.B}
}

// runPolicySet measures mean cost/LB for a fixed list of policy factories.
func runPolicySet(cfg AblationConfig, names []string, mk func(name string, seed int64) (core.Policy, error), opts ...core.Option) (map[string]stats.Summary, error) {
	wcfg := cfg.workloadConfig()
	if err := wcfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireUnsharded("ablation"); err != nil {
		return nil, err
	}
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) ([]float64, error) {
		// Observer scoping is per shard: views minted here are never shared
		// between concurrent shards.
		opts := append(cfg.observerOpts(), opts...)
		seed := parallel.SeedFor(cfg.Seed, i)
		l, err := workload.Uniform(wcfg, seed)
		if err != nil {
			return nil, err
		}
		lb := lowerbound.IntegralBound(l)
		out := make([]float64, len(names))
		for pi, n := range names {
			p, err := mk(n, seed)
			if err != nil {
				return nil, err
			}
			res, err := core.Simulate(l, p, opts...)
			if err != nil {
				return nil, err
			}
			out[pi] = res.Cost / lb
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	accs := make([]stats.Accumulator, len(names))
	for _, tr := range trials {
		for pi, r := range tr {
			accs[pi].Add(r)
		}
	}
	out := make(map[string]stats.Summary, len(names))
	for pi, n := range names {
		out[n] = accs[pi].Summarize()
	}
	return out, nil
}

// RunBestFitMeasureAblation compares Best Fit under L∞, L1 and L2 load
// measures (the design choice Section 2.2 leaves open for d ≥ 2).
func RunBestFitMeasureAblation(cfg AblationConfig) (map[string]stats.Summary, error) {
	names := []string{"BestFit", "BestFit-L1", "BestFit-Lp2"}
	return runPolicySet(cfg, names, core.NewPolicy)
}

// RunClairvoyanceAblation compares the non-clairvoyant winners against the
// clairvoyant extensions on the same instances (paper §8 future work).
func RunClairvoyanceAblation(cfg AblationConfig) (map[string]stats.Summary, error) {
	names := []string{"MoveToFront", "FirstFit", "DurationClassFit", "WindowedClassFit", "AlignedBestFit"}
	mk := func(name string, seed int64) (core.Policy, error) {
		if p, err := clairvoyant.New(name); err == nil {
			return p, nil
		}
		return core.NewPolicy(name, seed)
	}
	return runPolicySet(cfg, names, mk, core.WithClairvoyance())
}

// BillingRow is one policy's usage vs billed cost under a billing quantum.
type BillingRow struct {
	Policy      string
	MeanUsage   float64
	MeanBilled  float64
	BilledRatio float64 // billed / usage
}

// RunBillingAblation measures how much pay-per-started-quantum billing
// inflates the exact MinUsageTime objective for each policy. Policies that
// open many short-lived bins (Worst Fit) suffer the most rounding overhead.
func RunBillingAblation(cfg AblationConfig, quantum float64) ([]BillingRow, error) {
	if quantum <= 0 {
		return nil, fmt.Errorf("experiments: quantum must be positive")
	}
	wcfg := cfg.workloadConfig()
	if err := wcfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireUnsharded("billing"); err != nil {
		return nil, err
	}
	names := core.PolicyNames()
	type trial struct{ usage, billed []float64 }
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) (trial, error) {
		seed := parallel.SeedFor(cfg.Seed, i)
		l, err := workload.Uniform(wcfg, seed)
		if err != nil {
			return trial{}, err
		}
		tr := trial{usage: make([]float64, len(names)), billed: make([]float64, len(names))}
		for pi, n := range names {
			p, err := core.NewPolicy(n, seed)
			if err != nil {
				return trial{}, err
			}
			res, err := core.Simulate(l, p, cfg.observerOpts()...)
			if err != nil {
				return trial{}, err
			}
			tr.usage[pi] = res.Cost
			for _, b := range res.Bins {
				q := b.Usage() / quantum
				whole := float64(int(q))
				if q > whole+1e-9 {
					whole++
				}
				tr.billed[pi] += whole * quantum
			}
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]BillingRow, len(names))
	for pi, n := range names {
		var u, b stats.Accumulator
		for _, tr := range trials {
			u.Add(tr.usage[pi])
			b.Add(tr.billed[pi])
		}
		rows[pi] = BillingRow{Policy: n, MeanUsage: u.Mean(), MeanBilled: b.Mean(), BilledRatio: b.Mean() / u.Mean()}
	}
	return rows, nil
}

// SummaryTable renders a name -> Summary map deterministically (in the given
// name order).
func SummaryTable(title string, names []string, m map[string]stats.Summary) *report.Table {
	t := &report.Table{Title: title, Headers: []string{"policy", "mean cost/LB", "stddev", "min", "max", "n"}}
	for _, n := range names {
		s := m[n]
		t.AddRow(n, report.F(s.Mean), report.F(s.StdDev), report.F(s.Min), report.F(s.Max), fmt.Sprintf("%d", s.N))
	}
	return t
}

// BillingTable renders the billing ablation.
func BillingTable(rows []BillingRow, quantum float64) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Billing ablation: exact usage vs per-started-quantum billing (quantum=%g)", quantum),
		Headers: []string{"policy", "mean usage", "mean billed", "billed/usage"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, report.F(r.MeanUsage), report.F(r.MeanBilled), report.F(r.BilledRatio))
	}
	return t
}
