package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// This file implements the work-stealing shard scheduler underneath the
// experiment harness. A sweep is decomposed into n independent shards
// (indices 0..n-1); each worker owns a contiguous block of indices and, when
// its block runs dry, steals the upper half of the largest remaining block.
// Compared to feeding indices through a channel, block stealing touches one
// atomic word per claim instead of a channel handoff, so millions of
// sub-millisecond shards schedule without contention.
//
// Determinism contract: the scheduler decides only *when and where* a shard
// runs, never what it computes. Shard functions receive their index, derive
// all randomness from it (see SeedFor and Derive), and results are collected
// by index — so the outcome is bit-identical for any worker count, steal
// pattern, or completion order. The same holds for errors: the reported
// failure is always the one with the smallest shard index.

// PanicError wraps a panic that escaped a shard function. The scheduler
// converts panics into ordinary errors so one faulty shard cannot take down
// the whole process; Stack holds the goroutine stack captured at recovery.
type PanicError struct {
	// Shard is the index of the shard whose function panicked.
	Shard int
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted stack trace captured by debug.Stack.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("shard %d panicked: %v", e.Shard, e.Value)
}

// ProgressFunc observes scheduler progress: done shards out of total have
// completed. It is called once per completed shard, from worker goroutines,
// with done strictly increasing — implementations must be safe for concurrent
// use and cheap (a counter increment, not I/O per call).
type ProgressFunc func(done, total int)

// RunOptions configures a work-stealing run.
type RunOptions struct {
	// Workers is the number of concurrent workers; <= 0 means GOMAXPROCS.
	Workers int
	// Context cancels outstanding shards early; nil means Background. The
	// shard function receives a context derived from it that is additionally
	// cancelled as soon as any shard fails or panics.
	Context context.Context
	// OnProgress, when non-nil, is invoked after every completed shard.
	OnProgress ProgressFunc
}

func (o RunOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o RunOptions) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// block is one worker's claimable index range [next, end), packed into a
// single atomic word so both the owner's claim and a thief's split are plain
// CAS operations. The padding keeps each block on its own cache line.
type block struct {
	v atomic.Int64
	_ [7]int64
}

func packRange(next, end int32) int64 { return int64(next)<<32 | int64(uint32(end)) }
func unpackRange(v int64) (next, end int32) {
	return int32(v >> 32), int32(uint32(v))
}

// claim pops the next index from b, returning ok=false when b is empty.
func (b *block) claim() (idx int32, ok bool) {
	for {
		v := b.v.Load()
		next, end := unpackRange(v)
		if next >= end {
			return 0, false
		}
		if b.v.CompareAndSwap(v, packRange(next+1, end)) {
			return next, true
		}
	}
}

// stealFrom removes the upper half (rounded up) of b's remaining range,
// returning it for installation into the thief's own block.
func (b *block) stealFrom() (lo, hi int32, ok bool) {
	for {
		v := b.v.Load()
		next, end := unpackRange(v)
		n := end - next
		if n <= 0 {
			return 0, 0, false
		}
		mid := end - (n+1)/2
		if b.v.CompareAndSwap(v, packRange(next, mid)) {
			return mid, end, true
		}
	}
}

// remaining returns the number of unclaimed indices in b.
func (b *block) remaining() int32 {
	next, end := unpackRange(b.v.Load())
	if next >= end {
		return 0
	}
	return end - next
}

// Run executes fn(ctx, i) for every i in [0, n) across a work-stealing worker
// pool. It returns the first error by shard index, converting panics into
// *PanicError; on error (or parent-context cancellation) the shared context
// is cancelled so in-flight shards can bail out early. See the package
// comment for the determinism contract.
func Run(n int, fn func(ctx context.Context, i int) error, opts RunOptions) error {
	if n < 0 {
		return fmt.Errorf("parallel: negative n %d", n)
	}
	if n == 0 {
		return opts.context().Err()
	}
	if n > 1<<31-1 {
		return fmt.Errorf("parallel: n %d exceeds the scheduler's 31-bit shard space", n)
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(opts.context())
	defer cancel()

	// Block-distribute [0, n) across the workers' deques.
	blocks := make([]block, workers)
	per, extra := n/workers, n%workers
	lo := 0
	for w := range blocks {
		hi := lo + per
		if w < extra {
			hi++
		}
		blocks[w].v.Store(packRange(int32(lo), int32(hi)))
		lo = hi
	}

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
		claimed  atomic.Int64
		done     atomic.Int64
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	runShard := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				record(i, &PanicError{Shard: i, Value: r, Stack: debug.Stack()})
			}
		}()
		if err := fn(ctx, i); err != nil {
			record(i, err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			own := &blocks[self]
			for {
				// Drain the worker's own block first.
				for {
					if ctx.Err() != nil {
						return
					}
					i, ok := own.claim()
					if !ok {
						break
					}
					claimed.Add(1)
					runShard(int(i))
					if d := done.Add(1); opts.OnProgress != nil {
						opts.OnProgress(int(d), n)
					}
				}
				// Steal the upper half of the largest remaining block. The
				// scan is racy by design — a block can move mid-scan — so a
				// failed round only proves nothing was *visible*; the claimed
				// counter decides whether unassigned work still exists.
				if ctx.Err() != nil {
					return
				}
				victim, best := -1, int32(0)
				for v := range blocks {
					if v == self {
						continue
					}
					if r := blocks[v].remaining(); r > best {
						victim, best = v, r
					}
				}
				if victim >= 0 {
					if lo, hi, ok := blocks[victim].stealFrom(); ok {
						own.v.Store(packRange(lo, hi))
						continue
					}
				}
				if claimed.Load() >= int64(n) {
					return // every index is claimed; nothing left to steal
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()

	if firstErr != nil {
		return fmt.Errorf("parallel: shard %d: %w", firstIdx, firstErr)
	}
	return opts.context().Err()
}

// MapShards runs fn over [0, n) with work stealing and returns the results in
// index order — Run plus index-ordered collection. Like Map, the output is
// bit-identical regardless of worker count or completion order.
func MapShards[T any](n int, fn func(ctx context.Context, i int) (T, error), opts RunOptions) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative n %d", n)
	}
	results := make([]T, n)
	err := Run(n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		results[i] = v
		return nil
	}, opts)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Derive folds labels into base with chained SplitMix64 steps, producing a
// decorrelated seed for a hierarchically-identified stream: a shard keyed by
// (cell, instance) uses Derive(root, cell, instance). Three properties the
// experiment harness relies on:
//
//   - Derive(base, i) == SeedFor(base, int(i)), so single-level derivations
//     are exactly the historical per-trial seeds;
//   - Derive(Derive(s, a), b) == Derive(s, a, b), so hierarchies may derive
//     level by level (cell seed first, then per-instance seeds from it);
//   - the chain is order-sensitive: Derive(s, a, b) != Derive(s, b, a).
//
// The mapping is stable across releases: experiment outputs keyed to a root
// seed stay reproducible.
func Derive(base int64, labels ...int64) int64 {
	z := uint64(base)
	for _, l := range labels {
		z = mix64(z + 0x9E3779B97F4A7C15*(uint64(l)+1))
	}
	return int64(z)
}
