package core

import (
	"fmt"
	"sort"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// SimulateReference is a deliberately naive, from-scratch implementation of
// Algorithm 1 used as a differential-testing oracle for Simulate. At every
// arrival it recomputes the set of open bins and their loads directly from
// the ground-truth item intervals — no incremental state, no event queue —
// at O(n²) cost. Policies are driven through the same Policy interface with
// the same callback ordering, so for every deterministic policy the two
// engines must produce identical Results.
//
// It intentionally shares no bookkeeping code with Simulate; keep it that
// way, or the oracle stops being independent.
func SimulateReference(l *item.List, p Policy) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	p.Reset()

	arrivals := l.SortedByArrival()
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}

	type refBin struct {
		bin      *Bin // the policy-facing view (load kept in sync)
		itemIDs  []int
		closedAt float64 // +Inf while open
		closed   bool
	}
	var bins []*refBin
	res := &Result{Algorithm: p.Name(), Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu()}

	// closeTime recomputes a bin's close time from its items.
	closeTime := func(rb *refBin) float64 {
		last := 0.0
		for _, id := range rb.itemIDs {
			if d := itemByID[id].Departure; d > last {
				last = d
			}
		}
		return last
	}

	// syncLoads rebuilds every open bin's policy-facing active set from the
	// ground-truth intervals for time t and re-derives the load from scratch
	// through the exact accumulator. The accumulator's rounding is a pure
	// function of the active multiset, so this from-scratch rebuild is
	// bit-identical to the engine's incrementally-maintained load — the
	// reference stays independent in bookkeeping while sharing only the
	// summation arithmetic.
	syncLoads := func(t float64) {
		for _, rb := range bins {
			if rb.closed {
				continue
			}
			active := make(map[int]vector.Vector)
			for _, id := range rb.itemIDs {
				it := itemByID[id]
				if it.ActiveAt(t) {
					active[id] = it.Size
				}
			}
			rb.bin.active = active
			rb.bin.refreshLoadFromActive()
		}
	}

	processCloses := func(upTo float64) {
		// Close bins whose last departure is <= upTo, in (closeTime, binID)
		// order.
		type closing struct {
			rb *refBin
			t  float64
		}
		var cs []closing
		for _, rb := range bins {
			if rb.closed {
				continue
			}
			if ct := closeTime(rb); ct <= upTo {
				cs = append(cs, closing{rb: rb, t: ct})
			}
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].t != cs[j].t {
				return cs[i].t < cs[j].t
			}
			return cs[i].rb.bin.ID < cs[j].rb.bin.ID
		})
		for _, c := range cs {
			c.rb.closed = true
			c.rb.closedAt = c.t
			res.Bins = append(res.Bins, BinUsage{
				BinID: c.rb.bin.ID, OpenedAt: c.rb.bin.OpenedAt, ClosedAt: c.t, Packed: len(c.rb.itemIDs),
			})
			res.Cost += c.t - c.rb.bin.OpenedAt
			p.OnClose(c.rb.bin)
		}
	}

	for _, it := range arrivals {
		processCloses(it.Arrival)
		syncLoads(it.Arrival)

		var open []*Bin
		for _, rb := range bins {
			if !rb.closed {
				open = append(open, rb.bin)
			}
		}

		req := Request{ID: it.ID, SeqNo: it.SeqNo, Arrival: it.Arrival, Size: it.Size}
		chosen := p.Select(req, open)
		opened := false
		var target *refBin
		if chosen == nil {
			opened = true
			nb := newBin(len(bins), l.Dim, it.Arrival)
			target = &refBin{bin: nb}
			bins = append(bins, target)
		} else {
			for _, rb := range bins {
				if !rb.closed && rb.bin.ID == chosen.ID {
					target = rb
					break
				}
			}
			if target == nil {
				return nil, fmt.Errorf("core: reference: policy %s returned unknown bin %d", p.Name(), chosen.ID)
			}
			if !target.bin.Fits(it.Size) {
				return nil, fmt.Errorf("core: reference: policy %s chose unfit bin %d", p.Name(), chosen.ID)
			}
		}
		target.itemIDs = append(target.itemIDs, it.ID)
		target.bin.active[it.ID] = it.Size
		target.bin.packed++
		target.bin.refreshLoadFromActive()
		p.OnPack(req, target.bin, opened)

		res.Placements = append(res.Placements, Placement{ItemID: it.ID, BinID: target.bin.ID, Opened: opened, Time: it.Arrival})
		openCount := 0
		for _, rb := range bins {
			if !rb.closed {
				openCount++
			}
		}
		if openCount > res.MaxConcurrentBins {
			res.MaxConcurrentBins = openCount
		}
	}
	processCloses(l.Hull().Hi)

	res.BinsOpened = len(bins)
	res.sortBins()
	return res, nil
}
