package vfs

import (
	"io/fs"
	"os"
)

// OS is the production FS: a direct passthrough to the operating system.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadDir implements FS.
func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// Stat implements FS.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir implements FS: open the directory and fsync it, the standard dance
// that makes renames and creations within it survive a crash.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
