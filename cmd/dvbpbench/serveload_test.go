package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/metrics"
	"dvbp/internal/server"
)

// TestServeLoadVerifyRoundTrip runs the load driver and the auditor against
// an in-process server: every recorded acknowledgement must verify, a rerun
// of the load continues the same tenants (409 tolerated), and a forged ack
// must make the audit fail.
func TestServeLoadVerifyRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	store, err := server.OpenStore(t.TempDir(), server.Limits{}, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(store.Close)
	ts := httptest.NewServer(server.New(store, reg))
	t.Cleanup(ts.Close)

	acks := filepath.Join(t.TempDir(), "acks.jsonl")
	if err := runServeLoad(ts.URL, acks, 2, 40, 2, 3); err != nil {
		t.Fatalf("serve-load: %v", err)
	}
	data, err := os.ReadFile(acks)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 2*40 {
		t.Fatalf("recorded %d acks, want %d", lines, 2*40)
	}
	if err := runServeVerify(ts.URL, acks); err != nil {
		t.Fatalf("serve-verify: %v", err)
	}

	// The audit is idempotent: re-running it consumes nothing.
	if err := runServeVerify(ts.URL, acks); err != nil {
		t.Fatalf("serve-verify (second audit): %v", err)
	}

	// Forge an acknowledgement the server never issued: the audit must fail.
	forged, err := json.Marshal(serveAck{Tenant: "load0", Item: 9999, Bin: 1, Time: 0})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(acks, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(forged, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := runServeVerify(ts.URL, acks); err == nil {
		t.Fatalf("serve-verify accepted a forged acknowledgement")
	} else if !strings.Contains(err.Error(), "lost or changed") {
		t.Fatalf("unexpected verify error: %v", err)
	}
}
