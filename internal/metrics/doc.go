// Package metrics is a zero-dependency observability layer for the packing
// engine: counters, gauges, fixed-boundary histograms, and a monotonic clock
// abstraction, collected into a Registry whose snapshots render as JSON or
// Prometheus text exposition.
//
// The package exists because the paper's evaluation — and the follow-up
// studies it cites — judge Any Fit policies by empirical behaviour. A final
// core.Result says how a run ended; the metrics here say how it unfolded:
// how many fit checks each Select performed, how the open-bin population
// rose and fell, how usage time accrued over the event sweep, and how long
// individual placements took.
//
// # Instruments
//
// Three instrument kinds cover the engine's needs:
//
//   - Counter: a monotonically increasing uint64 (items placed, bins
//     opened, fit checks).
//   - Gauge: an arbitrary float64 with Set/Add/SetMax (open bins,
//     high-water marks, accrued usage time).
//   - Histogram: observations bucketed by fixed, ascending upper bounds
//     chosen at construction time (placement latency, fit checks per
//     Select). Fixed boundaries keep snapshots mergeable and the text
//     exposition stable.
//
// All instruments are safe for concurrent use.
//
// # Clocks
//
// Wall-time measurements go through the Clock interface. NewWallClock
// returns a monotonic clock for production use; Manual is a hand-advanced
// clock so tests asserting on timing histograms stay deterministic.
//
// # Collector
//
// Collector implements core.Observer (and the optional core.SelectObserver
// extension) and records a per-run series into its Registry. Attach it with
// core.WithObserver:
//
//	col := metrics.NewCollector()
//	res, err := core.Simulate(l, core.NewFirstFit(), core.WithObserver(col))
//	...
//	fmt.Println(col.Snapshot().Prometheus())
//
// On a single run the collector's counters match the run's Result exactly:
// dvbp_items_placed_total == Result.Items, dvbp_bins_opened_total ==
// Result.BinsOpened, dvbp_open_bins_peak == Result.MaxConcurrentBins and
// dvbp_usage_time_total == Result.Cost (up to float formatting).
//
// To share one Collector across concurrent simulations, give each run its own
// view via ForRun (Collector implements RunScoper; the experiment harness
// scopes shared observers automatically). Views feed the same registry —
// counters and gauges aggregate across runs, dvbp_open_bins_peak becomes the
// concurrent high-water mark — but each view matches BeforePack/AfterPack
// pairs privately, so the placement-latency histogram stays exact even when
// runs carry items with identical identifiers. Attaching the Collector itself
// to concurrent runs is safe but cross-pairs those timestamps, corrupting the
// latency histogram.
package metrics
