package metrics

import (
	"sync"
	"testing"
	"time"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

func counterValue(t *testing.T, s Snapshot, name string) float64 {
	t.Helper()
	m, ok := s.Find(name)
	if !ok {
		t.Fatalf("metric %s missing from snapshot", name)
	}
	return m.Value
}

func TestCollectorMatchesResult(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 400, Mu: 10, T: 200, B: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.StandardPolicies(3) {
		col := NewCollector()
		res, err := core.Simulate(l, p, core.WithObserver(col))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		s := col.Snapshot()
		if got := counterValue(t, s, MetricItemsPlaced); got != float64(len(res.Placements)) {
			t.Errorf("%s: items placed = %g, want %d", p.Name(), got, len(res.Placements))
		}
		if got := counterValue(t, s, MetricBinsOpened); got != float64(res.BinsOpened) {
			t.Errorf("%s: bins opened = %g, want %d", p.Name(), got, res.BinsOpened)
		}
		// Every bin closes by the end of the sweep.
		if got := counterValue(t, s, MetricBinsClosed); got != float64(res.BinsOpened) {
			t.Errorf("%s: bins closed = %g, want %d", p.Name(), got, res.BinsOpened)
		}
		if got := counterValue(t, s, MetricOpenBins); got != 0 {
			t.Errorf("%s: open bins after drain = %g", p.Name(), got)
		}
		if got := counterValue(t, s, MetricOpenBinsPeak); got != float64(res.MaxConcurrentBins) {
			t.Errorf("%s: peak = %g, want %d", p.Name(), got, res.MaxConcurrentBins)
		}
		// The collector accrues t - OpenedAt per close in the same order the
		// engine does, so the float sums are bit-identical.
		if got := counterValue(t, s, MetricUsageTime); got != res.Cost {
			t.Errorf("%s: usage time = %g, want %g", p.Name(), got, res.Cost)
		}
		hist, ok := s.Find(MetricFitChecksPerSelect)
		if !ok {
			t.Fatal("fit-check histogram missing")
		}
		if hist.Count != uint64(len(res.Placements)) {
			t.Errorf("%s: %d Select observations, want %d", p.Name(), hist.Count, len(res.Placements))
		}
		if got := counterValue(t, s, MetricFitChecks); got != hist.Sum {
			t.Errorf("%s: fit-check counter %g != histogram sum %g", p.Name(), got, hist.Sum)
		}
	}
}

func TestCollectorFitChecksHandComputed(t *testing.T) {
	// First Fit on d=1: item sizes 0.6, 0.6, 0.3, 0.5 arriving in order,
	// all departing at 10. Linear-scan fit checks per Select: 0 (no open
	// bins), 1 (bin0 fails), 1 (bin0 fits), 2 (bin0 and bin1 fail).
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.6))
	l.Add(1, 10, vector.Of(0.6))
	l.Add(2, 10, vector.Of(0.3))
	l.Add(3, 10, vector.Of(0.5))

	col := NewCollector()
	if _, err := core.Simulate(l, core.NewFirstFit(), core.WithObserver(col), core.WithLinearSelect()); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	if got := counterValue(t, s, MetricFitChecks); got != 4 {
		t.Errorf("linear fit checks = %g, want 4", got)
	}

	// The indexed path counts the store's feasibility evaluations instead:
	// 0 (empty index), 1 (single-node probe on bin0), 1 (bin0 at the root
	// fits), 1 (bin0 at the root fails and the 0.5 item's residual bucket
	// mask prunes bin1's subtree in O(1), which is not a load evaluation).
	col = NewCollector()
	if _, err := core.Simulate(l, core.NewFirstFit(), core.WithObserver(col)); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, col.Snapshot(), MetricFitChecks); got != 3 {
		t.Errorf("indexed fit checks = %g, want 3", got)
	}
}

// sequencedClock advances a Manual clock by a fixed step on every reading,
// making placement durations deterministic through the engine.
type sequencedClock struct {
	m    Manual
	step time.Duration
}

func (c *sequencedClock) Now() time.Duration {
	c.m.Advance(c.step)
	return c.m.Now()
}

func TestCollectorPlacementTimingDeterministic(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 5, vector.Of(0.5))
	l.Add(1, 6, vector.Of(0.5))

	// Each placement reads the clock twice (BeforePack, AfterPack), so with
	// a 1ms step every placement lasts exactly 1ms.
	col := NewCollector(WithClock(&sequencedClock{step: time.Millisecond}))
	if _, err := core.Simulate(l, core.NewFirstFit(), core.WithObserver(col)); err != nil {
		t.Fatal(err)
	}
	hist, ok := col.Snapshot().Find(MetricPlacementSeconds)
	if !ok {
		t.Fatal("placement histogram missing")
	}
	if hist.Count != 2 {
		t.Fatalf("placement observations = %d, want 2", hist.Count)
	}
	if hist.Sum != 0.002 {
		t.Errorf("placement sum = %g s, want 0.002", hist.Sum)
	}
}

func TestCollectorSharedAcrossConcurrentRuns(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 1, N: 200, Mu: 5, T: 100, B: 50}, 11)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}

	const runs = 8
	col := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := core.Simulate(l, core.NewFirstFit(), core.WithObserver(col)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	s := col.Snapshot()
	if got := counterValue(t, s, MetricItemsPlaced); got != float64(runs*len(single.Placements)) {
		t.Errorf("shared items placed = %g, want %d", got, runs*len(single.Placements))
	}
	if got := counterValue(t, s, MetricBinsOpened); got != float64(runs*single.BinsOpened) {
		t.Errorf("shared bins opened = %g, want %d", got, runs*single.BinsOpened)
	}
	if got := counterValue(t, s, MetricOpenBins); got != 0 {
		t.Errorf("open bins after all runs = %g", got)
	}
}
