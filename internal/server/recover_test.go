package server

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"dvbp/internal/metrics"
)

// TestStoreRecoverAcknowledgedPlacements is the package-level crash story:
// acknowledged placements survive a crash byte-identically, even when the
// crash tears the files mid-append. It feeds several tenants, abandons the
// store without a graceful drain, appends garbage to every WAL and op log
// (the torn tail a SIGKILL mid-write leaves), reopens the store, and then
// requires every acknowledged placement back, identical, with the watermark
// intact and the tenants accepting new work. The process-level version — a
// literal SIGKILL under HTTP load — lives in cmd/dvbpserver.
func TestStoreRecoverAcknowledgedPlacements(t *testing.T) {
	root := t.TempDir()
	reg := metrics.NewRegistry()
	store, err := OpenStore(root, Limits{SyncEvery: 1}, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	// No Cleanup-close: this store is "crashed" below.
	srv := New(store, reg)

	type ack struct {
		place PlaceResult
	}
	tenants := []TenantConfig{
		{Name: "alpha", Dim: 2, Policy: "FirstFit", Seed: 1, CheckpointEvery: 16},
		{Name: "beta", Dim: 2, Policy: "MoveToFront", Seed: 2}, // no snapshots: full replay
		{Name: "gamma", Dim: 2, Policy: "RandomFit", Seed: 3, CheckpointEvery: 8},
	}
	acked := make(map[string][]ack)
	watermarks := make(map[string]float64)
	hts := newLocalServer(t, srv)
	for _, cfg := range tenants {
		mustStatus(t, http.StatusCreated, call(t, "POST", hts+"/v1/tenants", cfg, nil), "create")
		items := stream(2, 70, int(cfg.Seed)*11)
		for _, it := range items {
			var pr PlaceResult
			mustStatus(t, http.StatusOK, call(t, "POST", hts+"/v1/tenants/"+cfg.Name+"/place",
				placeBody{Arrival: f(it.arrival), Departure: f(it.departure), Size: it.size}, &pr), "place")
			acked[cfg.Name] = append(acked[cfg.Name], ack{place: pr})
		}
		var adv AdvanceResult
		mustStatus(t, http.StatusOK, call(t, "POST", hts+"/v1/tenants/"+cfg.Name+"/advance",
			advanceBody{To: 40}, &adv), "advance")
		watermarks[cfg.Name] = 40
	}

	// Crash: no drain, no close. Every acknowledged response above was
	// preceded by its fsync barriers, so the durable state covers them all.
	// Then tear every persist file the way an interrupted append would.
	for _, cfg := range tenants {
		for _, name := range []string{"wal.dvbp", "ops.dvbp"} {
			path := filepath.Join(root, cfg.Name, name)
			fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatalf("open %s: %v", path, err)
			}
			if _, err := fh.Write([]byte{0x13, 0x37, 0x00}); err != nil {
				t.Fatalf("tear %s: %v", path, err)
			}
			fh.Close()
		}
	}

	// Restart: a fresh registry and store over the same directory.
	reg2 := metrics.NewRegistry()
	store2, err := OpenStore(root, Limits{SyncEvery: 1}, reg2)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	srv2 := New(store2, reg2)
	hts2 := newLocalServer(t, srv2)
	t.Cleanup(store2.Close)

	if got, _ := reg2.Snapshot().Find("dvbp_server_recovered_tenants_total"); got.Value != 3 {
		t.Fatalf("recovered %g tenants, want 3", got.Value)
	}
	if got, _ := reg2.Snapshot().Find("dvbp_server_recovery_corruptions_total"); got.Value == 0 {
		t.Fatalf("torn tails went unreported")
	}
	mustStatus(t, http.StatusOK, call(t, "GET", hts2+"/readyz", nil, nil), "readyz after recovery")

	for _, cfg := range tenants {
		var got PlacementsResult
		mustStatus(t, http.StatusOK, call(t, "GET", hts2+"/v1/tenants/"+cfg.Name+"/placements", nil, &got), "placements")
		want := acked[cfg.Name]
		if len(got.Placements) != len(want) {
			t.Fatalf("%s: %d placements after recovery, want %d", cfg.Name, len(got.Placements), len(want))
		}
		for i, a := range want {
			rec := PlacementRecord{Item: a.place.Item, Bin: a.place.Bin, Time: a.place.Time}
			if got.Placements[i] != rec {
				t.Fatalf("%s: placement %d = %+v, want acknowledged %+v", cfg.Name, i, got.Placements[i], rec)
			}
		}
		var st TenantStatus
		mustStatus(t, http.StatusOK, call(t, "GET", hts2+"/v1/tenants/"+cfg.Name, nil, &st), "status")
		if st.Watermark != watermarks[cfg.Name] {
			t.Fatalf("%s: watermark %g after recovery, want %g", cfg.Name, st.Watermark, watermarks[cfg.Name])
		}
		// The tenant keeps serving: a fresh placement past the watermark.
		var pr PlaceResult
		mustStatus(t, http.StatusOK, call(t, "POST", hts2+"/v1/tenants/"+cfg.Name+"/place",
			placeBody{Arrival: f(45), Departure: f(46), Size: []float64{0.5, 0.5}}, &pr), "place after recovery")
		if pr.Item != len(want) {
			t.Fatalf("%s: post-recovery item ID %d, want %d", cfg.Name, pr.Item, len(want))
		}
	}
}

// TestStoreRecoverRefusesForeignIdentity pins the fail-closed path: when a
// tenant's on-disk identity disagrees with the manifest (a copied directory,
// a hand-edited manifest), the store refuses to open rather than serve a
// tenant whose acknowledged history it cannot vouch for.
func TestStoreRecoverRefusesForeignIdentity(t *testing.T) {
	root := t.TempDir()
	reg := metrics.NewRegistry()
	store, err := OpenStore(root, Limits{}, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if _, aerr := store.Create(TenantConfig{Name: "a", Dim: 2, Policy: "ff", Seed: 1}); aerr != nil {
		t.Fatalf("Create: %v", aerr)
	}
	store.Close()

	// Rewrite the manifest to claim a different policy for the same data.
	manifest := filepath.Join(root, manifestFile)
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	edited := []byte(string(data[:0]) + `[{"name":"a","dim":2,"policy":"bf","seed":1}]`)
	if err := os.WriteFile(manifest, edited, 0o644); err != nil {
		t.Fatalf("write manifest: %v", err)
	}
	if _, err := OpenStore(root, Limits{}, metrics.NewRegistry()); err == nil {
		t.Fatalf("OpenStore accepted a manifest that disagrees with the op log")
	}
}
