package persist

import (
	"io"
	"os"
	"path/filepath"

	"dvbp/internal/vfs"
)

// defaultSyncEvery is the fsync batch size: the writer fsyncs after this many
// appended records (and always on Sync/Close). Batching amortises the fsync
// cost over a window of events; a crash can lose at most the current batch,
// which recovery treats as an ordinary torn tail.
const defaultSyncEvery = 64

// SyncManual disables automatic fsyncs entirely: records accumulate in the
// writer's buffer until an explicit Sync (or Rollback). The server's op-log
// writers use it so a group commit is all-or-nothing — no auto-sync can make
// half a batch durable behind the barrier's back.
const SyncManual = -1

// Writer appends checksummed records to a persist-format file. Appends land
// in an owned in-process buffer and reach the filesystem only on Sync, which
// is retryable: a failed write or fsync leaves the buffer intact, so the next
// Sync resumes where the device gave up (tracking any partial write), and
// Rollback abandons the buffered suffix by truncating back to the last
// durable size. A Writer is single-goroutine, like the engine it records.
type Writer struct {
	fsys      vfs.FS
	f         vfs.File
	path      string
	buf       []byte // bytes appended since the last successful Sync
	flushed   int    // prefix of buf already written to the file (not yet fsynced)
	scratch   []byte
	syncEvery int
	pending   int
	size      int64 // logical size including buffered bytes
	synced    int64 // size the device has durably acknowledged
	discarded bool
}

// Create creates (truncating) a persist file of the given kind, writes its
// header durably, and fsyncs the parent directory so the file's entry — not
// just its contents — survives a crash. syncEvery: 0 selects the default
// batch size, SyncManual disables auto-sync. fsys nil means the real
// filesystem.
func Create(fsys vfs.FS, path string, kind FileKind, syncEvery int) (*Writer, error) {
	fsys = vfs.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, ioErr("create", path, err)
	}
	w := newWriter(fsys, f, path, syncEvery)
	w.buf = appendHeader(w.buf, kind)
	w.size = headerSize
	if err := w.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	// A crash here must not lose the directory entry of a file whose header
	// is already durable: sync the parent like the rename path does.
	if err := syncDir(fsys, filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openAppend reopens an existing persist file for appending after truncating
// it to validSize — the recovery path that discards a torn tail and continues
// the log in place.
func openAppend(fsys vfs.FS, path string, validSize int64, syncEvery int) (*Writer, error) {
	fsys = vfs.OrOS(fsys)
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, ioErr("open", path, err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, ioErr("truncate", path, err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, ioErr("seek", path, err)
	}
	w := newWriter(fsys, f, path, syncEvery)
	w.size = validSize
	if err := w.Sync(); err != nil { // persist the truncation itself
		f.Close()
		return nil, err
	}
	return w, nil
}

func newWriter(fsys vfs.FS, f vfs.File, path string, syncEvery int) *Writer {
	if syncEvery == 0 {
		syncEvery = defaultSyncEvery
	}
	return &Writer{fsys: fsys, f: f, path: path, syncEvery: syncEvery}
}

// Append frames one record into the writer's buffer; the payload is copied
// before Append returns. The buffered record cannot be lost to an I/O error —
// only a Sync moves bytes to the device. When the auto-sync batch fills,
// Append attempts that Sync and reports its error; the record itself remains
// buffered either way, so a recoverable error here may be tolerated and the
// sync retried later.
func (w *Writer) Append(payload []byte) error {
	if w.discarded {
		return errDiscarded
	}
	w.scratch = appendRecord(w.scratch[:0], payload)
	w.buf = append(w.buf, w.scratch...)
	w.size += int64(len(w.scratch))
	w.pending++
	if w.syncEvery > 0 && w.pending >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// Sync writes the buffered bytes to the file and fsyncs it. On failure the
// buffer is kept (minus the prefix the device already took, which the next
// attempt skips) and the error is retryable; nothing is acknowledged until a
// Sync returns nil.
func (w *Writer) Sync() error {
	if w.discarded {
		return errDiscarded
	}
	for w.flushed < len(w.buf) {
		n, err := w.f.Write(w.buf[w.flushed:])
		w.flushed += n
		if err != nil {
			return ioErr("write", w.path, err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return ioErr("sync", w.path, err)
	}
	w.synced = w.size
	w.buf = w.buf[:0]
	w.flushed = 0
	w.pending = 0
	return nil
}

// Rollback abandons every record appended since the last successful Sync:
// the buffer is dropped and — when a failed Sync already pushed a partial
// prefix to the file — the file is truncated back to its durable size. After
// a nil return the writer is exactly at its last durable state; an error here
// means even the truncation failed and the on-disk tail is unknown, which the
// caller must treat as fatal.
func (w *Writer) Rollback() error {
	if w.discarded {
		return errDiscarded
	}
	if w.flushed > 0 {
		if err := w.f.Truncate(w.synced); err != nil {
			return ioErr("truncate", w.path, err)
		}
		if _, err := w.f.Seek(w.synced, io.SeekStart); err != nil {
			return ioErr("seek", w.path, err)
		}
	}
	w.buf = w.buf[:0]
	w.flushed = 0
	w.pending = 0
	w.size = w.synced
	return nil
}

// Size returns the file size including any still-buffered bytes.
func (w *Writer) Size() int64 { return w.size }

// Synced returns the durably acknowledged size.
func (w *Writer) Synced() int64 { return w.synced }

// Buffered reports whether records are waiting for a Sync.
func (w *Writer) Buffered() bool { return len(w.buf) > 0 }

// Close syncs and closes the file.
func (w *Writer) Close() error {
	if w.discarded {
		return nil
	}
	syncErr := w.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return ioErr("close", w.path, closeErr)
	}
	return nil
}

// Discard closes the descriptor without syncing — for a writer whose file was
// just atomically replaced (compaction): its inode is unlinked, so syncing it
// would be wasted and confusing. Any further use of the writer fails.
func (w *Writer) Discard() {
	if w.discarded {
		return
	}
	w.discarded = true
	w.f.Close()
}

// FileData is the decoded content of one persist file.
type FileData struct {
	Kind FileKind
	// Records holds every intact payload, in file order.
	Records [][]byte
	// Offsets[i] is the byte offset of Records[i]'s frame.
	Offsets []int64
	// Size is the file's full size; ValidSize the prefix covered by the
	// header and intact records (== Size when the file is clean).
	Size      int64
	ValidSize int64
	// Torn describes the first defect in the record region, nil when clean.
	// A torn file is still usable up to ValidSize.
	Torn *CorruptionError
}

// ReadFile reads and validates a persist file. A damaged header (or an
// unreadable file) is fatal and returned as the error; damaged records only
// truncate: the intact prefix comes back in FileData with Torn describing
// the defect. The returned payloads are private copies. fsys nil means the
// real filesystem.
func ReadFile(fsys vfs.FS, path string) (*FileData, error) {
	data, err := vfs.OrOS(fsys).ReadFile(path)
	if err != nil {
		return nil, ioErr("read", path, err)
	}
	kind, herr := parseHeader(data)
	if herr != nil {
		herr.Path = path
		return nil, herr
	}
	recs, offs, torn := scanRecords(data[headerSize:], headerSize)
	if torn != nil {
		torn.Path = path
	}
	fd := &FileData{Kind: kind, Records: recs, Offsets: offs, Size: int64(len(data)), ValidSize: int64(len(data)), Torn: torn}
	if torn != nil {
		fd.ValidSize = torn.Offset
	}
	return fd, nil
}

// syncDir fsyncs a directory so renames and creations within it survive a
// crash (the standard create-temp / rename / fsync-dir dance).
func syncDir(fsys vfs.FS, dir string) error {
	if err := vfs.OrOS(fsys).SyncDir(dir); err != nil {
		return ioErr("syncdir", dir, err)
	}
	return nil
}

// WriteFileAtomic writes content to path via a temp file + rename + directory
// sync, so a crash never leaves a half-written file under the final name. The
// server layer uses it for its tenant manifest; snapshots go through it too.
// fsys nil means the real filesystem.
func WriteFileAtomic(fsys vfs.FS, path string, content []byte) error {
	return writeFileAtomic(vfs.OrOS(fsys), path, content)
}

// writeFileAtomic writes content to path via a temp file + rename + directory
// sync, so a crash never leaves a half-written file under the final name.
func writeFileAtomic(fsys vfs.FS, path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return ioErr("createtemp", dir, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	if _, err := tmp.Write(content); err != nil {
		cleanup()
		return ioErr("write", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return ioErr("sync", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return ioErr("close", tmpName, err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return ioErr("rename", path, err)
	}
	return syncDir(fsys, dir)
}
