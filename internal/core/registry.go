package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NewPolicy constructs a policy from its canonical name. Recognised names
// (case-insensitive):
//
//	FirstFit | ff
//	NextFit | nf
//	BestFit | bf            (L∞ load, as in the paper's experiments)
//	BestFit-L1 | BestFit-Lp<p>
//	WorstFit | wf           (L∞ load)
//	WorstFit-L1 | WorstFit-Lp<p>
//	LastFit | lf
//	RandomFit | rf          (seeded with the given seed)
//	MoveToFront | mtf | mf
//	HarmonicFit-<K>         (classical Harmonic baseline, K >= 1 classes)
//
// seed only affects RandomFit.
func NewPolicy(name string, seed int64) (Policy, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	switch n {
	case "firstfit", "ff":
		return NewFirstFit(), nil
	case "nextfit", "nf":
		return NewNextFit(), nil
	case "bestfit", "bf", "bestfit-linf":
		return NewBestFit(MaxLoad()), nil
	case "bestfit-l1":
		return NewBestFit(SumLoad()), nil
	case "worstfit", "wf", "worstfit-linf":
		return NewWorstFit(MaxLoad()), nil
	case "worstfit-l1":
		return NewWorstFit(SumLoad()), nil
	case "lastfit", "lf":
		return NewLastFit(), nil
	case "randomfit", "rf":
		return NewRandomFit(seed), nil
	case "movetofront", "mtf", "mf":
		return NewMoveToFront(), nil
	}
	if p, ok := strings.CutPrefix(n, "bestfit-lp"); ok {
		if x, err := strconv.ParseFloat(p, 64); err == nil && x >= 1 {
			return NewBestFit(PNormLoad(x)), nil
		}
	}
	if p, ok := strings.CutPrefix(n, "worstfit-lp"); ok {
		if x, err := strconv.ParseFloat(p, 64); err == nil && x >= 1 {
			return NewWorstFit(PNormLoad(x)), nil
		}
	}
	if p, ok := strings.CutPrefix(n, "harmonicfit-"); ok {
		if k, err := strconv.Atoi(p); err == nil && k >= 1 {
			return NewHarmonicFit(k), nil
		}
	}
	return nil, fmt.Errorf("core: unknown policy %q (known: %s)", name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames returns the canonical names of the seven policies studied in
// the paper's experimental section, in the paper's presentation order.
func PolicyNames() []string {
	return []string{
		"MoveToFront",
		"FirstFit",
		"BestFit",
		"NextFit",
		"LastFit",
		"RandomFit",
		"WorstFit",
	}
}

// StandardPolicies returns fresh instances of all seven experiment policies.
// RandomFit uses the given seed.
func StandardPolicies(seed int64) []Policy {
	ps := make([]Policy, 0, 7)
	for _, n := range PolicyNames() {
		p, err := NewPolicy(n, seed)
		if err != nil {
			panic("core: registry inconsistency: " + err.Error())
		}
		ps = append(ps, p)
	}
	return ps
}

// SortedPolicyNames returns all canonical names in lexicographic order.
func SortedPolicyNames() []string {
	ns := PolicyNames()
	out := make([]string, len(ns))
	copy(out, ns)
	sort.Strings(out)
	return out
}

// PolicySpellings returns one line per canonical policy name, in sorted
// order, listing the aliases and parameterised forms NewPolicy accepts
// (case-insensitive). CLIs print it from -list so the help text and the
// parser cannot drift apart: every spelling shown here is matched by a
// registry round-trip test.
func PolicySpellings() []string {
	return []string{
		"BestFit | bf | BestFit-Linf   (also BestFit-L1, BestFit-Lp<p> with p >= 1)",
		"FirstFit | ff",
		"LastFit | lf",
		"MoveToFront | mtf | mf",
		"NextFit | nf",
		"RandomFit | rf                (seeded with -seed)",
		"WorstFit | wf | WorstFit-Linf (also WorstFit-L1, WorstFit-Lp<p> with p >= 1)",
		"HarmonicFit-<K>               (classical Harmonic baseline, K >= 1 classes)",
	}
}

// PolicyFlagUsage is the shared help text for CLI -policy flags: the
// canonical spellings in sorted order, with a pointer to the full alias
// listing.
func PolicyFlagUsage() string {
	return "packing policy: " + strings.Join(SortedPolicyNames(), ", ") +
		", or HarmonicFit-<K>; 'dvbpsim -list' shows aliases and measures"
}
