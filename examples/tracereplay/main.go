// Trace replay: generate a flash-crowd trace, persist it as CSV, re-load it,
// and replay it bit-for-bit under every policy — the archive/replay workflow
// used to compare dispatch policies on production traces.
//
//	go run ./examples/tracereplay [trace.csv]
//
// With an argument, the file is replayed instead of generating a trace.
package main

import (
	"fmt"
	"log"
	"os"

	"dvbp"
	"dvbp/internal/workload"
)

func main() {
	path := "flashcrowd.csv"
	generated := false
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		if err := generate(path); err != nil {
			log.Fatal(err)
		}
		generated = true
		defer os.Remove(path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := workload.ReadCSV(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	if generated {
		fmt.Printf("generated and re-loaded %s\n", path)
	}
	fmt.Printf("trace: %d items, d=%d, span=%.1f, mu=%.1f\n\n",
		trace.Len(), trace.Dim, trace.Span(), trace.Mu())

	lb := dvbp.LowerBounds(trace)
	fmt.Printf("%-12s %10s %10s %8s\n", "policy", "cost", "cost/LB", "bins")
	for _, p := range dvbp.StandardPolicies(1) {
		res, err := dvbp.Simulate(trace, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.1f %10.4f %8d\n", p.Name(), res.Cost, res.Cost/lb.Best(), res.BinsOpened)
	}

	// Replays are deterministic: running again gives identical numbers.
	a, _ := dvbp.Simulate(trace, dvbp.NewMoveToFront())
	b, _ := dvbp.Simulate(trace, dvbp.NewMoveToFront())
	fmt.Printf("\nreplay determinism: run1=%.4f run2=%.4f identical=%v\n",
		a.Cost, b.Cost, a.Cost == b.Cost)
}

func generate(path string) error {
	trace, err := workload.Spike(workload.SpikeConfig{
		D: 2, Horizon: 300, BaseRate: 1,
		Spikes: 3, SpikeWidth: 10, SpikeFactor: 8,
		MeanDuration: 8, MinDuration: 1, MaxDuration: 60,
		MaxSize: 0.4,
	}, 42)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return workload.WriteCSV(f, trace)
}
