package core

import "fmt"

// HarmonicFit adapts the classical Harmonic online bin packing algorithm
// (Lee–Lee) to the MinUsageTime DVBP setting, as an extension baseline from
// the classical literature the paper's related-work section surveys. Items
// are classified by their L∞ size into harmonic classes — class j holds
// items with ‖s‖∞ ∈ (1/(j+1), 1/j] for j < K, and the residue class K holds
// everything with ‖s‖∞ ≤ 1/K — and each bin only ever receives items of its
// own class (First Fit within the class).
//
// In classical bin packing Harmonic trades a bounded number of per-class
// partially-filled bins for simple O(1) placement; in the MinUsageTime
// setting the segregation mostly *hurts* (more open bins means more usage
// time), which makes it a useful negative baseline: it shows that classical
// space-efficiency machinery does not transfer to the time objective.
//
// HarmonicFit is not an Any Fit algorithm (it opens a class bin while bins
// of other classes could hold the item), so none of the paper's Any Fit
// bounds apply to it.
type HarmonicFit struct {
	// K is the number of harmonic classes (>= 1). Classic choices are 3–7.
	K int

	classOfBin map[int]int
}

// NewHarmonicFit returns a Harmonic Fit policy with K classes. It panics if
// K < 1 (a programming error, mirroring PNormLoad).
func NewHarmonicFit(k int) *HarmonicFit {
	if k < 1 {
		panic("core: HarmonicFit needs K >= 1")
	}
	return &HarmonicFit{K: k}
}

// Name implements Policy.
func (h *HarmonicFit) Name() string { return fmt.Sprintf("HarmonicFit-%d", h.K) }

// Reset implements Policy.
func (h *HarmonicFit) Reset() { h.classOfBin = make(map[int]int) }

// class returns the harmonic class of a size: the largest j <= K with
// ‖s‖∞ <= 1/j.
func (h *HarmonicFit) class(norm float64) int {
	for j := h.K; j >= 2; j-- {
		if norm <= 1/float64(j) {
			return j
		}
	}
	return 1
}

// Select implements Policy: first fit among same-class bins.
func (h *HarmonicFit) Select(req Request, open []*Bin) *Bin {
	c := h.class(req.Size.MaxNorm())
	for _, b := range open {
		if h.classOfBin[b.ID] == c && b.Fits(req.Size) {
			return b
		}
	}
	return nil
}

// OnPack implements Policy.
func (h *HarmonicFit) OnPack(req Request, b *Bin, opened bool) {
	if opened {
		h.classOfBin[b.ID] = h.class(req.Size.MaxNorm())
	}
}

// OnClose implements Policy.
func (h *HarmonicFit) OnClose(b *Bin) { delete(h.classOfBin, b.ID) }
