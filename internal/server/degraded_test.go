package server

import (
	"net/http"
	"syscall"
	"testing"
	"time"

	"dvbp/internal/metrics"
	"dvbp/internal/vfs"
)

// metricValue reads one counter/gauge from the server's JSON metrics
// snapshot, failing the test when the metric is not exported.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	var snap metrics.Snapshot
	mustStatus(t, http.StatusOK, call(t, "GET", base+"/metrics?format=json", nil, &snap), "metrics json")
	m, ok := snap.Find(name)
	if !ok {
		t.Fatalf("metric %s not exported", name)
	}
	return m.Value
}

// TestServerDegradedModeSickDisk drives a tenant across a full disk-sickness
// arc: healthy placements, a persistent-EIO window (exhausting the transient
// retries), a read-only degraded plateau where reads still serve and /readyz
// flags the tenant, an ENOSPC window (no retries, immediate degrade), and
// recovery — after which every acknowledged placement must match the
// single-threaded reference and the tenant must NOT be poisoned.
func TestServerDegradedModeSickDisk(t *testing.T) {
	inj := vfs.NewInjector(vfs.OS{})
	ts, _ := newTestServer(t, t.TempDir(), Limits{
		FS:           inj,
		RetryBackoff: 50 * time.Microsecond,
	})
	cfg := TenantConfig{Name: "sick", Dim: 2, Policy: "FirstFit", Seed: 3, CheckpointEvery: 8}
	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants", cfg, nil), "create")

	items := stream(2, 40, 5)
	acked := items[:0:0]
	place := func(it streamItem) (int, errorBody) {
		var e errorBody
		code := call(t, "POST", ts.URL+"/v1/tenants/sick/place",
			placeBody{Arrival: f(it.arrival), Departure: f(it.departure), Size: it.size}, &e)
		if code == http.StatusOK {
			acked = append(acked, it)
		}
		return code, e
	}

	// Healthy phase: placements land, readiness is green.
	for _, it := range items[:8] {
		if code, e := place(it); code != http.StatusOK {
			t.Fatalf("healthy place: status %d code %q", code, e.Code)
		}
	}
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/readyz", nil, nil), "readyz healthy")

	// Persistent EIO: the worker retries the transient error, gives up, rolls
	// the op log back, and degrades instead of poisoning the tenant.
	inj.SetSticky(syscall.EIO, vfs.FaultSync)
	if code, e := place(items[8]); code != http.StatusServiceUnavailable || e.Code != "degraded" {
		t.Fatalf("place on sick disk: status %d code %q, want 503 degraded", code, e.Code)
	}
	if got := metricValue(t, ts.URL, "dvbp_server_io_retries_total"); got < 3 {
		t.Fatalf("io_retries_total %v after exhausting retries, want >= 3", got)
	}
	if got := metricValue(t, ts.URL, "dvbp_server_degraded_tenants"); got != 1 {
		t.Fatalf("degraded_tenants %v, want 1", got)
	}

	// Degraded is read-only, not down: status and placements still serve,
	// mutations refuse, readiness names the tenant.
	var st TenantStatus
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/sick", nil, &st), "status while degraded")
	if !st.Degraded {
		t.Fatalf("status while degraded: %+v", st)
	}
	var pl PlacementsResult
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/sick/placements", nil, &pl), "placements while degraded")
	if pl.Total != len(acked) {
		t.Fatalf("placements while degraded: total %d, want %d acked", pl.Total, len(acked))
	}
	var ready struct {
		Status   string   `json:"status"`
		Degraded []string `json:"degraded"`
	}
	if code := call(t, "GET", ts.URL+"/readyz", nil, &ready); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: status %d", code)
	}
	if ready.Status != "degraded" || len(ready.Degraded) != 1 || ready.Degraded[0] != "sick" {
		t.Fatalf("readyz body %+v", ready)
	}
	if code, e := place(items[9]); code != http.StatusServiceUnavailable || e.Code != "degraded" {
		t.Fatalf("second place while sick: status %d code %q", code, e.Code)
	}

	// Heal: the next mutation makes the worker probe, resume, and serve.
	inj.ClearSticky()
	if code, e := place(items[10]); code != http.StatusOK {
		t.Fatalf("place after heal: status %d code %q", code, e.Code)
	}
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/readyz", nil, nil), "readyz after heal")
	if got := metricValue(t, ts.URL, "dvbp_server_degraded_tenants"); got != 0 {
		t.Fatalf("degraded_tenants %v after heal, want 0", got)
	}

	// ENOSPC is not retried — a full disk degrades on the first refusal.
	retriesBefore := metricValue(t, ts.URL, "dvbp_server_io_retries_total")
	inj.SetSticky(syscall.ENOSPC, vfs.FaultSync)
	if code, e := place(items[11]); code != http.StatusServiceUnavailable || e.Code != "degraded" {
		t.Fatalf("place on full disk: status %d code %q", code, e.Code)
	}
	inj.ClearSticky()
	if got := metricValue(t, ts.URL, "dvbp_server_io_retries_total"); got != retriesBefore {
		t.Fatalf("ENOSPC was retried: io_retries_total %v -> %v", retriesBefore, got)
	}

	// Full recovery: drive the rest of the stream, with advances mixed in so
	// the op log accumulates compactable records.
	for i, it := range items[11:] {
		if code, e := place(it); code != http.StatusOK {
			t.Fatalf("place %d after second heal: status %d code %q", i, code, e.Code)
		}
		if i%4 == 3 {
			mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/sick/advance",
				advanceBody{To: it.arrival}, nil), "advance")
		}
	}

	// Every acknowledged placement — and only those — must match the
	// single-threaded reference over the acked stream; refused requests left
	// no trace.
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/sick/placements", nil, &pl), "final placements")
	want := referencePlacements(t, cfg, acked)
	if len(pl.Placements) != len(want) {
		t.Fatalf("%d final placements, want %d", len(pl.Placements), len(want))
	}
	for i := range want {
		if pl.Placements[i] != want[i] {
			t.Fatalf("placement %d = %+v, want %+v", i, pl.Placements[i], want[i])
		}
	}
	// Fresh struct: Degraded is omitempty, so decoding into the struct used
	// during the degraded window would keep the stale true.
	var healthy TenantStatus
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/sick", nil, &healthy), "final status")
	if healthy.Degraded {
		t.Fatalf("tenant still degraded after recovery: %+v", healthy)
	}

	// The sickness window must not have poisoned compaction either: with
	// CheckpointEvery set and advances logged, both compaction paths ran.
	if got := metricValue(t, ts.URL, "dvbp_server_compactions_total"); got < 1 {
		t.Fatalf("compactions_total %v, want >= 1", got)
	}
	if got := metricValue(t, ts.URL, "dvbp_server_compaction_reclaimed_bytes_total"); got <= 0 {
		t.Fatalf("compaction_reclaimed_bytes_total %v, want > 0", got)
	}
}

// TestServerDegradedRecoversAcrossRestart: a tenant degraded mid-run, with
// acknowledged-but-unacked-to-WAL state rolled back, must recover on a fresh
// store with every acknowledged placement intact — the two-barrier protocol's
// contract under a sick disk plus a crash.
func TestServerDegradedRecoversAcrossRestart(t *testing.T) {
	root := t.TempDir()
	inj := vfs.NewInjector(vfs.OS{})
	limits := Limits{FS: inj, RetryBackoff: 50 * time.Microsecond}

	reg := metrics.NewRegistry()
	store, err := OpenStore(root, limits, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	base := newLocalServer(t, New(store, reg))
	cfg := TenantConfig{Name: "ph", Dim: 1, Policy: "BestFit", Seed: 9, CheckpointEvery: 4}
	mustStatus(t, http.StatusCreated, call(t, "POST", base+"/v1/tenants", cfg, nil), "create")

	items := stream(1, 20, 2)
	acked := items[:0:0]
	for i, it := range items {
		if i == 12 {
			inj.SetSticky(syscall.EIO, vfs.FaultSync)
		}
		if i == 15 {
			inj.ClearSticky()
		}
		var e errorBody
		code := call(t, "POST", base+"/v1/tenants/ph/place",
			placeBody{Arrival: f(it.arrival), Departure: f(it.departure), Size: it.size}, &e)
		switch code {
		case http.StatusOK:
			acked = append(acked, it)
		case http.StatusServiceUnavailable:
			if e.Code != "degraded" {
				t.Fatalf("place %d: 503 with code %q", i, e.Code)
			}
		default:
			t.Fatalf("place %d: status %d code %q", i, code, e.Code)
		}
	}
	// Crash: no drain, no close — the store is abandoned and its directory
	// reopened cold, exactly like a process that died degraded.
	_ = store

	reg2 := metrics.NewRegistry()
	store2, err := OpenStore(root, Limits{}, reg2)
	if err != nil {
		t.Fatalf("reopen after degraded run: %v", err)
	}
	defer store2.Close()
	base2 := newLocalServer(t, New(store2, reg2))

	var pl PlacementsResult
	mustStatus(t, http.StatusOK, call(t, "GET", base2+"/v1/tenants/ph/placements", nil, &pl), "placements after restart")
	want := referencePlacements(t, cfg, acked)
	if len(pl.Placements) != len(want) {
		t.Fatalf("recovered %d placements, want %d acked", len(pl.Placements), len(want))
	}
	for i := range want {
		if pl.Placements[i] != want[i] {
			t.Fatalf("recovered placement %d = %+v, want %+v", i, pl.Placements[i], want[i])
		}
	}
}
