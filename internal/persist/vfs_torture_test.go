package persist

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vfs"
)

// This file is the disk-fault torture wall (DESIGN.md §15): every test runs
// the persistence stack over vfs.Mem, whose power-loss model only keeps what
// was explicitly fsynced, and sweeps EVERY mutating filesystem operation as a
// crash point. The invariant under test is total: for each op index i, a
// power loss at i followed by recovery must reach a final result
// byte-identical to the uninterrupted run — including crashes that land in
// the middle of a checkpoint rename, a WAL compaction swap, or an op-log
// rewrite.

// tortureCrashOK reports whether a recovery failure is the one legitimate
// kind: the crash predates the first durable run meta, so there is no run to
// recover and starting fresh loses nothing (nothing was ever acknowledged).
func tortureCrashOK(err error) bool {
	if errors.Is(err, iofs.ErrNotExist) {
		return true
	}
	var ce *CorruptionError
	return errors.As(err, &ce) && strings.Contains(ce.Reason, "no run meta record survived")
}

// staticTortureCfg is the session shape shared by the static sweep: automatic
// checkpoints, WAL compaction behind them, frequent fsync batching so crash
// points land between records as well as inside batches.
func staticTortureCfg(fsys vfs.FS) Config {
	return Config{Dir: "run", Every: 8, SyncEvery: 2, FS: fsys, Compact: true}
}

// runStaticTorture drives one fresh static run to completion on fsys.
func runStaticTorture(t *testing.T, l *item.List, fsys vfs.FS) (*core.Result, error) {
	t.Helper()
	e, err := core.NewEngine(l, newTestPolicy(t, "MoveToFront"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Begin(e, NewRunMeta(l, "MoveToFront", 1, "test"), staticTortureCfg(fsys))
	if err != nil {
		e.Close()
		return nil, err
	}
	return s.Run()
}

// TestDiskTortureCrashPointsStatic records how many mutating FS operations an
// uninterrupted compacting run performs, then replays the run once per
// operation index with a simulated power loss at exactly that operation —
// cycling lost/flushed/torn crash modes — recovers, finishes, and demands the
// byte-identical result every single time.
func TestDiskTortureCrashPointsStatic(t *testing.T) {
	l := testList(t, 40)

	base := vfs.NewMem()
	res, err := runStaticTorture(t, l, base)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	want := resultJSON(t, res)
	total := base.Ops()
	if total < 50 {
		t.Fatalf("baseline run performed only %d mutating FS ops — the sweep would prove nothing", total)
	}

	fallbacks, recovered := 0, 0
	for i := int64(1); i <= total; i++ {
		m := vfs.NewMem()
		m.SetCrashPoint(i, vfs.CrashMode(i%3), 1+7*i)
		_, err := runStaticTorture(t, l, m)
		if err == nil {
			t.Fatalf("crash point %d/%d never fired", i, total)
		}
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crash point %d: run died of %v, want ErrCrashed", i, err)
		}
		if !m.Crashed() {
			t.Fatalf("crash point %d: error without a crash", i)
		}
		m.Restart()

		var got string
		rec, rerr := Recover(l, staticTortureCfg(m), faultOpts()...)
		if rerr != nil {
			if !tortureCrashOK(rerr) {
				t.Fatalf("crash point %d/%d (mode %s): recovery failed: %v", i, total, vfs.CrashMode(i%3), rerr)
			}
			// Nothing durable survived; a fresh run is the honest restart.
			res, err := runStaticTorture(t, l, m)
			if err != nil {
				t.Fatalf("crash point %d: fresh restart failed: %v", i, err)
			}
			got = resultJSON(t, res)
			fallbacks++
		} else {
			res, err := rec.Session.Run()
			if err != nil {
				t.Fatalf("crash point %d/%d: resumed run failed: %v", i, total, err)
			}
			got = resultJSON(t, res)
			recovered++
		}
		if got != want {
			t.Fatalf("crash point %d/%d (mode %s): result diverged\n got %s\nwant %s",
				i, total, vfs.CrashMode(i%3), got, want)
		}
	}
	if recovered == 0 {
		t.Fatalf("all %d crash points fell back to fresh runs — recovery was never exercised", total)
	}
	t.Logf("swept %d crash points: %d recovered, %d legitimate fresh restarts", total, recovered, fallbacks)
}

// dynTortureMeta is the dynamic sweep's run identity.
func dynTortureMeta() RunMeta { return NewDynamicRunMeta(2, "firstfit", 11, "") }

// driveDynamicTorture runs the tenant-shaped two-barrier protocol over fsys:
// op durable (barrier 1) before the engine steps, WAL durable (barrier 2)
// before the next item, an advance every third item, a WAL compaction behind
// every checkpoint, and an op-log compaction every tenth item. fresh=false
// resumes from whatever the directory durably holds, exactly like the
// server's recoverTenant: rebuild the list from the op log, replay the WAL,
// re-run the clock to the last durable advance, then feed the remaining
// suffix of items (identified positionally — the op log's item count is the
// resume cursor).
func driveDynamicTorture(t *testing.T, items []item.Item, fsys vfs.FS, fresh bool) (*core.Result, error) {
	t.Helper()
	const dir = "tenant"
	path := filepath.Join(dir, "ops.dvbp")
	meta := dynTortureMeta()
	cfg := Config{Dir: dir, Label: "dyn", Every: 8, SyncEvery: 2, FS: fsys, Compact: true}

	var s *Session
	var ops *Writer
	from := 0
	if fresh {
		if err := vfs.OrOS(fsys).MkdirAll(dir, 0o755); err != nil {
			return nil, ioErr("mkdir", dir, err)
		}
		var err error
		ops, err = CreateOpLog(fsys, path, meta, SyncManual)
		if err != nil {
			return nil, err
		}
		e, err := core.NewEngine(item.NewList(2), newTestPolicy(t, "firstfit"), core.WithDynamicArrivals())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err = Begin(e, meta, cfg)
		if err != nil {
			e.Close()
			ops.Discard()
			return nil, err
		}
	} else {
		logged, err := ReadOpLog(fsys, path, "dyn")
		if err != nil {
			return nil, err
		}
		if logged.Meta != meta {
			t.Fatalf("op log identity drifted: %+v", logged.Meta)
		}
		rec, err := Recover(logged.List, cfg, core.WithDynamicArrivals())
		if err != nil {
			if logged.List.Len() > 0 {
				t.Fatalf("op log holds %d items but WAL recovery failed: %v", logged.List.Len(), err)
			}
			return nil, err
		}
		s = rec.Session
		for {
			tt, ok := s.Engine().PeekTime()
			if !ok || tt > logged.MaxAdvance {
				break
			}
			if _, ok, err := s.Step(); err != nil {
				s.Close()
				return nil, err
			} else if !ok {
				break
			}
		}
		if err := s.Sync(); err != nil {
			s.Close()
			return nil, err
		}
		ops, err = ReopenOpLog(fsys, path, logged.ValidSize, SyncManual)
		if err != nil {
			s.Close()
			return nil, err
		}
		from = logged.List.Len()
	}

	fail := func(err error) (*core.Result, error) {
		s.Close()
		ops.Discard()
		return nil, err
	}
	for i := from; i < len(items); i++ {
		it := items[i]
		if err := ops.Append(AppendItemOp(nil, it.Arrival, it.Departure, it.Size)); err != nil {
			return fail(err)
		}
		adv := i%3 == 2
		if adv {
			if err := ops.Append(AppendAdvanceOp(nil, it.Arrival)); err != nil {
				return fail(err)
			}
		}
		if err := ops.Sync(); err != nil { // barrier 1: admission durable
			return fail(err)
		}
		id, err := s.Engine().AppendArrival(it.Arrival, it.Departure, it.Size)
		if err != nil {
			t.Fatalf("AppendArrival(%g): %v", it.Arrival, err)
		}
		for {
			rec, ok, err := s.Step()
			if err != nil {
				return fail(err)
			}
			if !ok {
				t.Fatalf("stream drained before arrival of item %d committed", id)
			}
			if rec.Class == core.EventArrival && rec.ItemID == id {
				break
			}
		}
		if adv {
			for {
				tt, ok := s.Engine().PeekTime()
				if !ok || tt > it.Arrival {
					break
				}
				if _, ok, err := s.Step(); err != nil {
					return fail(err)
				} else if !ok {
					break
				}
			}
		}
		if err := s.Sync(); err != nil { // barrier 2: events durable
			return fail(err)
		}
		if i%10 == 9 {
			w, _, err := CompactOpLog(fsys, path, "dyn", SyncManual)
			if err != nil {
				return fail(err)
			}
			if w != nil {
				ops.Discard()
				ops = w
			}
		}
	}
	if err := ops.Close(); err != nil {
		s.Close()
		return nil, err
	}
	return s.Run()
}

// TestDiskTortureCrashPointsDynamic is the dynamic-run (multi-tenant-shaped)
// crash-point sweep: the two-barrier op-log + WAL protocol, with both
// compaction paths active, killed at every FS operation in turn and resumed
// through the same recovery the server uses. The final packing must come out
// byte-identical at every crash point — that is the acknowledged-placements
// contract made exhaustive.
func TestDiskTortureCrashPointsDynamic(t *testing.T) {
	items := dynItems(45)

	base := vfs.NewMem()
	res, err := driveDynamicTorture(t, items, base, true)
	if err != nil {
		t.Fatalf("baseline drive: %v", err)
	}
	want := resultJSON(t, res)
	total := base.Ops()
	if total < 100 {
		t.Fatalf("baseline drive performed only %d mutating FS ops", total)
	}

	fallbacks, recovered := 0, 0
	for i := int64(1); i <= total; i++ {
		m := vfs.NewMem()
		m.SetCrashPoint(i, vfs.CrashMode(i%3), 3+11*i)
		_, err := driveDynamicTorture(t, items, m, true)
		if err == nil {
			t.Fatalf("crash point %d/%d never fired", i, total)
		}
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crash point %d: drive died of %v, want ErrCrashed", i, err)
		}
		m.Restart()

		res, rerr := driveDynamicTorture(t, items, m, false)
		if rerr != nil {
			if !tortureCrashOK(rerr) {
				t.Fatalf("crash point %d/%d (mode %s): resume failed: %v", i, total, vfs.CrashMode(i%3), rerr)
			}
			// Crash predates any durable admission: fresh start is honest.
			if res, rerr = driveDynamicTorture(t, items, m, true); rerr != nil {
				t.Fatalf("crash point %d: fresh restart failed: %v", i, rerr)
			}
			fallbacks++
		} else {
			recovered++
		}
		if got := resultJSON(t, res); got != want {
			t.Fatalf("crash point %d/%d (mode %s): result diverged\n got %s\nwant %s",
				i, total, vfs.CrashMode(i%3), got, want)
		}
	}
	if recovered == 0 {
		t.Fatalf("all %d crash points fell back to fresh runs", total)
	}
	t.Logf("swept %d crash points: %d recovered, %d legitimate fresh restarts", total, recovered, fallbacks)
}

// TestCompactionBoundsWALSize proves the point of compaction: over many
// snapshot intervals, a compacting session's WAL stays bounded by the
// interval while the uncompacted twin grows with the run — and both reach the
// same result.
func TestCompactionBoundsWALSize(t *testing.T) {
	l := testList(t, 80)
	const every = 8

	run := func(compact bool) (string, int64, IOStats) {
		m := vfs.NewMem()
		e, err := core.NewEngine(l, newTestPolicy(t, "MoveToFront"), faultOpts()...)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := Begin(e, NewRunMeta(l, "MoveToFront", 1, "test"),
			Config{Dir: "run", Every: every, SyncEvery: 1, FS: m, Compact: compact})
		if err != nil {
			e.Close()
			t.Fatalf("Begin: %v", err)
		}
		maxWAL := s.WALSize()
		for {
			_, ok, err := s.Step()
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if sz := s.WALSize(); sz > maxWAL {
				maxWAL = sz
			}
			if !ok {
				break
			}
		}
		st := s.TakeIOStats()
		res, err := s.Finish()
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return resultJSON(t, res), maxWAL, st
	}

	plainRes, plainMax, _ := run(false)
	compactRes, compactMax, st := run(true)
	if plainRes != compactRes {
		t.Fatalf("compaction changed the result\nplain   %s\ncompact %s", plainRes, compactRes)
	}
	if st.Compactions < 10 {
		t.Fatalf("only %d compactions over the run; want >= 10 snapshot intervals exercised", st.Compactions)
	}
	if st.ReclaimedBytes <= 0 {
		t.Fatalf("compaction reclaimed %d bytes", st.ReclaimedBytes)
	}
	if compactMax*3 > plainMax {
		t.Fatalf("compacted WAL peak %d is not < 1/3 of uncompacted peak %d", compactMax, plainMax)
	}
}

// TestRecoverCompactedWALRefusesScratch pins the one fallback compaction
// forbids: with the WAL prefix gone, a from-scratch replay cannot exist, so
// recovery with every snapshot deleted must fail loudly instead of silently
// rebuilding a different history.
func TestRecoverCompactedWALRefusesScratch(t *testing.T) {
	l := testList(t, 80)
	m := vfs.NewMem()
	e, err := core.NewEngine(l, newTestPolicy(t, "MoveToFront"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := staticTortureCfg(m)
	s, err := Begin(e, NewRunMeta(l, "MoveToFront", 1, "test"), cfg)
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < 40; i++ {
		if _, ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	if s.walBase == 0 {
		t.Fatalf("run never compacted; the test is vacuous")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, err := listSnapshots(m, cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, sf := range snaps {
		if err := m.Remove(filepath.Join(cfg.Dir, sf.name)); err != nil {
			t.Fatal(err)
		}
	}
	_, err = Recover(l, cfg, faultOpts()...)
	var ce *CorruptionError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "compacted") {
		t.Fatalf("recovery of a compacted WAL without snapshots returned %v; want a compaction corruption error", err)
	}
}

// TestCompactOpLogCollapsesAdvances checks the op-log rewrite directly: item
// records and the recovered state (list, watermark, max advance) are
// untouched, advance spam collapses to one record, and the returned writer
// continues the log.
func TestCompactOpLogCollapsesAdvances(t *testing.T) {
	m := vfs.NewMem()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	path := "d/ops.dvbp"
	meta := dynTortureMeta()
	w, err := CreateOpLog(m, path, meta, SyncManual)
	if err != nil {
		t.Fatalf("CreateOpLog: %v", err)
	}
	items := dynItems(12)
	for i, it := range items {
		if err := w.Append(AppendItemOp(nil, it.Arrival, it.Departure, it.Size)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if err := w.Append(AppendAdvanceOp(nil, it.Arrival)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := ReadOpLog(m, path, "dyn")
	if err != nil {
		t.Fatal(err)
	}

	w2, reclaimed, err := CompactOpLog(m, path, "dyn", SyncManual)
	if err != nil {
		t.Fatalf("CompactOpLog: %v", err)
	}
	if w2 == nil || reclaimed <= 0 {
		t.Fatalf("compaction was a no-op (writer %v, reclaimed %d) on a log with 6 advances", w2, reclaimed)
	}
	after, err := ReadOpLog(m, path, "dyn")
	if err != nil {
		t.Fatalf("rewritten log unreadable: %v", err)
	}
	if after.List.Len() != before.List.Len() {
		t.Fatalf("compaction changed the item count: %d != %d", after.List.Len(), before.List.Len())
	}
	for i, b := range before.List.Items {
		a := after.List.Items[i]
		if a.Arrival != b.Arrival || a.Departure != b.Departure || !a.Size.Equal(b.Size, 0) {
			t.Fatalf("compaction changed item %d: %+v != %+v", i, a, b)
		}
	}
	if after.Watermark != before.Watermark || after.MaxAdvance != before.MaxAdvance {
		t.Fatalf("compaction moved the watermark: %g/%g != %g/%g",
			after.Watermark, after.MaxAdvance, before.Watermark, before.MaxAdvance)
	}
	advances := 0
	for _, op := range after.Ops {
		if op.Kind == OpAdvance {
			advances++
		}
	}
	if advances != 1 {
		t.Fatalf("rewritten log holds %d advances, want 1", advances)
	}

	// The returned writer continues the log.
	if err := w2.Append(AppendItemOp(nil, after.Watermark+1, after.Watermark+2, items[0].Size)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := ReadOpLog(m, path, "dyn")
	if err != nil {
		t.Fatal(err)
	}
	if final.List.Len() != before.List.Len()+1 {
		t.Fatalf("append after compaction lost: %d items", final.List.Len())
	}

	// A log with a single advance has nothing to collapse.
	if w3, _, err := CompactOpLog(m, path, "dyn", SyncManual); err != nil || w3 != nil {
		t.Fatalf("second compaction: writer %v err %v, want no-op", w3, err)
	}
}

// TestWriterRollbackAndRetry exercises the writer's two recovery paths after
// a failed barrier: retry the sync (the buffered records must survive the
// failure, partial flush included), and roll back (the file must truncate to
// its last durable size even when a partial flush already landed).
func TestWriterRollbackAndRetry(t *testing.T) {
	mem := vfs.NewMem()
	if err := mem.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	inj := vfs.NewInjector(mem)
	w, err := Create(inj, "d/f.dvbp", KindWAL, SyncManual)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}

	// Retry path: the write lands, the fsync fails, the retry syncs the same
	// bytes without duplicating them.
	if err := w.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	inj.SetSticky(syscall.EIO, vfs.FaultSync)
	if err := w.Sync(); err == nil {
		t.Fatalf("sync succeeded under sticky EIO")
	} else if Classify(err) != ClassTransient {
		t.Fatalf("sync error class %s, want transient", Classify(err))
	}
	inj.ClearSticky()
	if err := w.Sync(); err != nil {
		t.Fatalf("retried sync: %v", err)
	}
	fd, err := ReadFile(inj, "d/f.dvbp")
	if err != nil || len(fd.Records) != 1 || string(fd.Records[0]) != "one" {
		t.Fatalf("after retry: records %q err %v", fd.Records, err)
	}

	// Rollback path: a partial flush (write ok, fsync refused) is truncated
	// away and the writer is back at its durable size.
	if err := w.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	inj.SetSticky(syscall.ENOSPC, vfs.FaultSync)
	if err := w.Sync(); Classify(err) != ClassDiskFull {
		t.Fatalf("sync error class %s, want disk_full", Classify(err))
	}
	inj.ClearSticky()
	if err := w.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if w.Size() != w.Synced() {
		t.Fatalf("rollback left size %d != synced %d", w.Size(), w.Synced())
	}
	if err := w.Append([]byte("three")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fd, err = ReadFile(inj, "d/f.dvbp")
	if err != nil || len(fd.Records) != 2 {
		t.Fatalf("after rollback: %d records err %v", len(fd.Records), err)
	}
	if string(fd.Records[0]) != "one" || string(fd.Records[1]) != "three" {
		t.Fatalf("rollback kept the wrong records: %q", fd.Records)
	}
	if fd.Torn != nil {
		t.Fatalf("rollback left a torn tail: %v", fd.Torn)
	}
}

// TestCreateSyncsParentDir pins the fix for the unsynced-directory-entry bug:
// a freshly created WAL must survive a power loss immediately after Create
// returns, which requires the parent directory fsync.
func TestCreateSyncsParentDir(t *testing.T) {
	m := vfs.NewMem()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := Create(m, "d/wal.dvbp", KindWAL, 0)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	m.CrashNow(vfs.CrashLost)
	m.Restart()
	fd, err := ReadFile(m, "d/wal.dvbp")
	if err != nil {
		t.Fatalf("the created file did not survive a crash right after Create: %v", err)
	}
	if fd.Kind != KindWAL || len(fd.Records) != 0 || fd.Torn != nil {
		t.Fatalf("surviving file is damaged: kind %d, %d records, torn %v", fd.Kind, len(fd.Records), fd.Torn)
	}
	w.Discard()
}

// TestRecoverSweepsOrphanTempFiles: a crash between CreateTemp and Rename
// leaves ".tmp-" orphans; Recover must delete them and say how many.
func TestRecoverSweepsOrphanTempFiles(t *testing.T) {
	l := testList(t, 40)
	dir := t.TempDir()
	referenceRun(t, l, "MoveToFront", dir, 16)
	for _, name := range []string{"snap-0000000000000016.dvbp.tmp-1", "wal.dvbp.tmp-9"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := Recover(l, Config{Dir: dir, Every: 16}, faultOpts()...)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Session.Close()
	if rec.SweptTemp != 2 {
		t.Fatalf("swept %d temp orphans, want 2", rec.SweptTemp)
	}
	entries, err := vfs.OS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("orphan %s survived recovery", e.Name())
		}
	}
}

// TestErrorClassification pins the taxonomy the server's fail/degrade/retry
// state machine dispatches on (satellite of DESIGN.md §15).
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"nil", nil, ClassNone},
		{"corruption", corrupt("bad record"), ClassCorruption},
		{"corruption-wrapping-errno", &CorruptionError{Reason: "x", Err: syscall.ENOSPC}, ClassCorruption},
		{"corruption-wrapped", fmt.Errorf("recovering: %w", corrupt("bad")), ClassCorruption},
		{"enospc", ioErr("write", "f", syscall.ENOSPC), ClassDiskFull},
		{"edquot", ioErr("sync", "f", syscall.EDQUOT), ClassDiskFull},
		{"eio", ioErr("sync", "f", syscall.EIO), ClassTransient},
		{"open-error", ioErr("open", "f", errors.New("weird")), ClassTransient},
		{"simulated-crash", ioErr("write", "f", vfs.ErrCrashed), ClassFatal},
		{"discarded", errDiscarded, ClassFatal},
		{"naked", errors.New("who knows"), ClassFatal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %s, want %s", tc.name, got, tc.want)
		}
		wantRec := tc.want == ClassDiskFull || tc.want == ClassTransient
		if got := Recoverable(tc.err); got != wantRec {
			t.Errorf("%s: Recoverable = %v, want %v", tc.name, got, wantRec)
		}
	}
}
