package vfs

import (
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// createFlag marks an OpenFile call as a creation for fault-kind counting.
const createFlag = os.O_CREATE

// FaultKind names one class of filesystem operation the Injector can fail.
type FaultKind string

// The injectable operation classes. "create" covers OpenFile-with-O_CREATE
// and CreateTemp; "open" covers plain reopens.
const (
	FaultOpen     FaultKind = "open"
	FaultCreate   FaultKind = "create"
	FaultWrite    FaultKind = "write"
	FaultSync     FaultKind = "sync"
	FaultTruncate FaultKind = "truncate"
	FaultRename   FaultKind = "rename"
	FaultRemove   FaultKind = "remove"
	FaultSyncDir  FaultKind = "syncdir"
)

// Fault is one planned failure: the Nth operation of the given kind (1-based,
// counted over the Injector's lifetime) returns Err instead of executing.
type Fault struct {
	Kind FaultKind
	Nth  int64
	Err  error
}

func (f Fault) String() string {
	return fmt.Sprintf("%s:%d:%s", f.Kind, f.Nth, errnoName(f.Err))
}

func errnoName(err error) string {
	switch err {
	case syscall.EIO:
		return "eio"
	case syscall.ENOSPC:
		return "enospc"
	default:
		return err.Error()
	}
}

// ParsePlan parses a comma-separated fault plan: each element is
// "kind:n:errno" with kind one of open/create/write/sync/truncate/rename/
// remove/syncdir, n a positive occurrence index, and errno "eio" or "enospc".
// The empty string is the empty plan.
func ParsePlan(spec string) ([]Fault, error) {
	if spec == "" {
		return nil, nil
	}
	var plan []Fault
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("vfs: fault %q: want kind:n:errno", part)
		}
		kind := FaultKind(fields[0])
		switch kind {
		case FaultOpen, FaultCreate, FaultWrite, FaultSync, FaultTruncate, FaultRename, FaultRemove, FaultSyncDir:
		default:
			return nil, fmt.Errorf("vfs: fault %q: unknown kind %q", part, fields[0])
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("vfs: fault %q: occurrence must be a positive integer", part)
		}
		var errno error
		switch fields[2] {
		case "eio":
			errno = syscall.EIO
		case "enospc":
			errno = syscall.ENOSPC
		default:
			return nil, fmt.Errorf("vfs: fault %q: errno must be eio or enospc", part)
		}
		plan = append(plan, Fault{Kind: kind, Nth: n, Err: errno})
	}
	return plan, nil
}

// PlanString renders a plan back into ParsePlan's grammar.
func PlanString(plan []Fault) string {
	parts := make([]string, len(plan))
	for i, f := range plan {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// stickyDefault is the operation set SetSticky poisons when no kinds are
// given: everything a full disk or dying device refuses.
var stickyDefault = []FaultKind{FaultCreate, FaultWrite, FaultSync, FaultRename, FaultSyncDir}

// Injector wraps an FS and fails chosen operations deterministically: a
// plan of one-shot faults (the Nth write fails with ENOSPC) plus sticky
// per-kind errors a test can toggle to hold a disk sick over a window.
// Reads always pass through — a sick disk still serves what it has.
type Injector struct {
	inner FS

	mu     sync.Mutex
	counts map[FaultKind]int64
	plan   []Fault
	sticky map[FaultKind]error
}

// NewInjector wraps inner with the given fault plan.
func NewInjector(inner FS, plan ...Fault) *Injector {
	return &Injector{
		inner:  inner,
		counts: make(map[FaultKind]int64),
		plan:   append([]Fault(nil), plan...),
		sticky: make(map[FaultKind]error),
	}
}

// SetSticky makes every operation of the given kinds fail with err until
// ClearSticky. No kinds selects the full write-path set (create, write, sync,
// rename, syncdir) — "the disk is full".
func (in *Injector) SetSticky(err error, kinds ...FaultKind) {
	if len(kinds) == 0 {
		kinds = stickyDefault
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, k := range kinds {
		in.sticky[k] = err
	}
}

// ClearSticky heals the disk: all sticky errors are removed.
func (in *Injector) ClearSticky() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sticky = make(map[FaultKind]error)
}

// Counts returns the operation counts per kind, for plan construction and
// assertions.
func (in *Injector) Counts() map[FaultKind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[FaultKind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// check counts one operation of the kind and returns the injected error, if
// any fires.
func (in *Injector) check(kind FaultKind) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[kind]++
	if err := in.sticky[kind]; err != nil {
		return err
	}
	n := in.counts[kind]
	for _, f := range in.plan {
		if f.Kind == kind && f.Nth == n {
			return f.Err
		}
	}
	return nil
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	kind := FaultOpen
	if flag&createFlag != 0 {
		kind = FaultCreate
	}
	if err := in.check(kind); err != nil {
		return nil, &fs.PathError{Op: string(kind), Path: name, Err: err}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{File: f, in: in}, nil
}

// CreateTemp implements FS.
func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.check(FaultCreate); err != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{File: f, in: in}, nil
}

// ReadFile implements FS (never injected).
func (in *Injector) ReadFile(name string) ([]byte, error) { return in.inner.ReadFile(name) }

// ReadDir implements FS (never injected).
func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.inner.ReadDir(name) }

// Stat implements FS (never injected).
func (in *Injector) Stat(name string) (fs.FileInfo, error) { return in.inner.Stat(name) }

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.check(FaultRename); err != nil {
		return &fs.PathError{Op: "rename", Path: newpath, Err: err}
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if err := in.check(FaultRemove); err != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.inner.Remove(name)
}

// RemoveAll implements FS.
func (in *Injector) RemoveAll(path string) error {
	if err := in.check(FaultRemove); err != nil {
		return &fs.PathError{Op: "removeall", Path: path, Err: err}
	}
	return in.inner.RemoveAll(path)
}

// MkdirAll implements FS (never injected: directory creation happens once per
// tenant, before any data exists to lose).
func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return in.inner.MkdirAll(path, perm)
}

// SyncDir implements FS.
func (in *Injector) SyncDir(dir string) error {
	if err := in.check(FaultSyncDir); err != nil {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return in.inner.SyncDir(dir)
}

// injFile wraps a handle so write-path operations consult the plan.
type injFile struct {
	File
	in *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	if err := f.in.check(FaultWrite); err != nil {
		return 0, &fs.PathError{Op: "write", Path: f.Name(), Err: err}
	}
	return f.File.Write(p)
}

func (f *injFile) Sync() error {
	if err := f.in.check(FaultSync); err != nil {
		return &fs.PathError{Op: "sync", Path: f.Name(), Err: err}
	}
	return f.File.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if err := f.in.check(FaultTruncate); err != nil {
		return &fs.PathError{Op: "truncate", Path: f.Name(), Err: err}
	}
	return f.File.Truncate(size)
}

// SortedKinds lists the injectable kinds in stable order (flag help text).
func SortedKinds() []string {
	out := []string{string(FaultOpen), string(FaultCreate), string(FaultWrite), string(FaultSync),
		string(FaultTruncate), string(FaultRename), string(FaultRemove), string(FaultSyncDir)}
	sort.Strings(out)
	return out
}
