// Package core implements the paper's primary contribution: an event-driven
// simulation engine for the online MinUsageTime Dynamic Vector Bin Packing
// (DVBP) problem together with the family of Any Fit packing algorithms it
// analyses.
//
// # Model
//
// Items arrive online (List order breaks ties among simultaneous arrivals)
// and must immediately and irrevocably be packed into a bin whose residual
// capacity dominates the item's size vector in every dimension; bins have
// unit capacity 1^d. A bin is open while it contains at least one active
// item. The cost of a packing is the total usage time of the bins — for each
// bin, the length of the interval from its opening to the departure of its
// last item (Section 2.1, equation (1)). Once a bin closes it is never
// reused; the engine enforces this, matching the paper's w.l.o.g. assumption
// that each bin's usage period is a single interval.
//
// # Any Fit skeleton and policies
//
// Algorithm 1 of the paper is realised by Engine: a policy is consulted only
// to choose among open bins; if the policy returns no bin, the engine opens a
// new one. Policies are non-clairvoyant: the Request they see carries no
// departure time unless the engine is explicitly configured for the
// clairvoyant variant (a paper §8 extension).
//
// Implemented policies: First Fit, Next Fit, Best Fit (L∞, L1 or Lp load),
// Worst Fit, Last Fit, Random Fit, and Move To Front — the full set studied
// in Sections 2.2 and 7.
package core
