package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

func randomList(seed int64, n, d int, maxDur float64) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 60)
		dur := 1 + math.Floor(r.Float64()*maxDur)
		size := vector.New(d)
		for j := range size {
			size[j] = (1 + math.Floor(r.Float64()*100)) / 100
		}
		l.Add(a, a+dur, size)
	}
	return l
}

func TestFFDTrivialConsolidation(t *testing.T) {
	l := item.NewList(1)
	for i := 0; i < 5; i++ {
		l.Add(0, 10, v(0.2))
	}
	p, err := FirstFitDecreasing(l)
	if err != nil {
		t.Fatal(err)
	}
	if p.BinCount != 1 {
		t.Errorf("BinCount = %d, want 1", p.BinCount)
	}
	if math.Abs(p.Cost-10) > 1e-9 {
		t.Errorf("Cost = %v, want 10", p.Cost)
	}
}

func TestFFDRespectsTemporalConflicts(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, v(0.6))
	l.Add(5, 15, v(0.6)) // overlaps on [5,10): cannot share
	p, err := FirstFitDecreasing(l)
	if err != nil {
		t.Fatal(err)
	}
	if p.BinCount != 2 {
		t.Errorf("BinCount = %d, want 2", p.BinCount)
	}
	l2 := item.NewList(1)
	l2.Add(0, 5, v(0.6))
	l2.Add(5, 10, v(0.6)) // disjoint: can share one bin
	p2, err := FirstFitDecreasing(l2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.BinCount != 1 {
		t.Errorf("disjoint items: BinCount = %d, want 1", p2.BinCount)
	}
}

func TestDurationClassesSeparatesClasses(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.3))   // duration 1 -> class 0
	l.Add(0, 100, v(0.3)) // duration 100 -> higher class
	p, err := DurationClasses(l)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignment[0] == p.Assignment[1] {
		t.Error("different duration classes must not share bins")
	}
}

func TestDurationClassesAlignmentWins(t *testing.T) {
	// Mixed instance where class separation helps: pairs of (short, long)
	// arrive together; FFD by utilisation packs long+short together, holding
	// bins open; class packing puts longs with longs.
	l := item.NewList(1)
	for i := 0; i < 8; i++ {
		a := float64(i)
		l.Add(a, a+1, v(0.5))   // short
		l.Add(a, a+100, v(0.5)) // long
	}
	dc, err := DurationClasses(l)
	if err != nil {
		t.Fatal(err)
	}
	verifyCost, err := Verify(l, dc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(verifyCost-dc.Cost) > 1e-9 {
		t.Errorf("Verify cost %v != packing cost %v", verifyCost, dc.Cost)
	}
}

func TestGreedyExtensionPrefersCheapExtension(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, v(0.5)) // bin A, span [0,10)
	l.Add(0, 2, v(0.5))  // fits bin A with zero extension
	p, err := GreedyExtension(l)
	if err != nil {
		t.Fatal(err)
	}
	if p.BinCount != 1 {
		t.Errorf("BinCount = %d, want 1", p.BinCount)
	}
	if math.Abs(p.Cost-10) > 1e-9 {
		t.Errorf("Cost = %v, want 10", p.Cost)
	}
}

func TestGreedyExtensionOpensWhenCheaper(t *testing.T) {
	// Item [20,21) would extend bin A ([0,10)) by 11; a new bin costs 1.
	l := item.NewList(1)
	l.Add(0, 10, v(0.5))
	l.Add(20, 21, v(0.5))
	p, err := GreedyExtension(l)
	if err != nil {
		t.Fatal(err)
	}
	if p.BinCount != 2 {
		t.Errorf("BinCount = %d, want 2", p.BinCount)
	}
	if math.Abs(p.Cost-11) > 1e-9 {
		t.Errorf("Cost = %v, want 11", p.Cost)
	}
}

func TestVerifyCatchesBadPacking(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, v(0.6))
	l.Add(0, 10, v(0.6))
	bad := &Packing{Algorithm: "bad", Assignment: map[int]int{0: 0, 1: 0}, BinCount: 1}
	if _, err := Verify(l, bad); err == nil {
		t.Error("overloaded packing accepted")
	}
	missing := &Packing{Algorithm: "bad", Assignment: map[int]int{0: 0}, BinCount: 1}
	if _, err := Verify(l, missing); err == nil {
		t.Error("incomplete packing accepted")
	}
}

func TestInvalidInputs(t *testing.T) {
	empty := item.NewList(1)
	if _, err := FirstFitDecreasing(empty); err == nil {
		t.Error("FFD accepted empty list")
	}
	if _, err := DurationClasses(empty); err == nil {
		t.Error("DurationClasses accepted empty list")
	}
	if _, err := GreedyExtension(empty); err == nil {
		t.Error("GreedyExtension accepted empty list")
	}
}

// Property: every heuristic yields a feasible packing whose cost lies in
// [LB, online-FirstFit-cost·(something)] — specifically cost ≥ LB and Verify
// agrees with the claimed cost.
func TestHeuristicsFeasibleAndBracketOPT(t *testing.T) {
	packers := []func(*item.List) (*Packing, error){FirstFitDecreasing, DurationClasses, GreedyExtension}
	f := func(seedRaw uint16, dRaw uint8) bool {
		d := int(dRaw%3) + 1
		l := randomList(int64(seedRaw), 60, d, 12)
		lb := lowerbound.Compute(l).Best()
		for _, pk := range packers {
			p, err := pk(l)
			if err != nil {
				return false
			}
			got, err := Verify(l, p)
			if err != nil {
				t.Logf("%s infeasible: %v", p.Algorithm, err)
				return false
			}
			if math.Abs(got-p.Cost) > 1e-6 {
				t.Logf("%s: Verify %v != Cost %v", p.Algorithm, got, p.Cost)
				return false
			}
			if p.Cost < lb-1e-6 {
				t.Logf("%s: cost %v below LB %v", p.Algorithm, p.Cost, lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the best offline estimate is never worse than online First Fit
// by more than a small factor — and OPT bracket is consistent:
// LB <= BestUpperEstimate <= FirstFit cost is NOT guaranteed in general, but
// the bracket LB <= min(offline, online) always holds; check both orderings.
func TestBestUpperEstimate(t *testing.T) {
	l := randomList(3, 120, 2, 10)
	best, err := BestUpperEstimate(l)
	if err != nil {
		t.Fatal(err)
	}
	lb := lowerbound.Compute(l).Best()
	if best.Cost < lb-1e-6 {
		t.Errorf("best estimate %v below LB %v", best.Cost, lb)
	}
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	// The offline estimate should usually beat the online cost; it must never
	// be dramatically worse than FF (sanity threshold 1.5x).
	if best.Cost > 1.5*res.Cost {
		t.Errorf("offline best %v far worse than online FF %v", best.Cost, res.Cost)
	}
}

func BenchmarkFirstFitDecreasing(b *testing.B) {
	l := randomList(1, 500, 2, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FirstFitDecreasing(l); err != nil {
			b.Fatal(err)
		}
	}
}
