// Package cloudsim is the cloud-operations substrate around the packing
// engine: servers with multi-dimensional capacities, VM/session requests in
// native resource units, online dispatch through any packing policy, and
// pay-as-you-go billing of server usage time.
//
// It models the two applications the paper's introduction describes — VM
// placement on physical servers (provider view) and renting cloud servers
// for workloads such as cloud gaming (user view). The MinUsageTime objective
// is exactly the rental bill at per-second granularity; the Billing type also
// models coarser "per started hour" billing, which the ablation experiments
// compare against.
package cloudsim
