package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLength(t *testing.T) {
	cases := []struct {
		iv   Interval
		want float64
	}{
		{New(0, 1), 1},
		{New(2, 2), 0},
		{New(3, 2), 0}, // inverted = empty
		{New(1.5, 4), 2.5},
	}
	for _, c := range cases {
		if got := c.iv.Length(); got != c.want {
			t.Errorf("Length(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestEmpty(t *testing.T) {
	if !New(1, 1).Empty() || !New(2, 1).Empty() {
		t.Error("degenerate intervals should be empty")
	}
	if New(1, 2).Empty() {
		t.Error("[1,2) should not be empty")
	}
}

func TestContains(t *testing.T) {
	iv := New(1, 2)
	if !iv.Contains(1) {
		t.Error("left endpoint should be contained (half-open)")
	}
	if iv.Contains(2) {
		t.Error("right endpoint should not be contained (half-open)")
	}
	if !iv.Contains(1.5) || iv.Contains(0.5) || iv.Contains(2.5) {
		t.Error("interior/exterior misclassified")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b Interval
		want Interval
	}{
		{New(0, 2), New(1, 3), New(1, 2)},
		{New(0, 1), New(1, 2), New(1, 1)}, // abutting -> empty
		{New(0, 1), New(2, 3), New(2, 1)}, // disjoint -> empty
		{New(0, 4), New(1, 2), New(1, 2)}, // nested
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Length() != c.want.Length() || (!got.Empty() && got != c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlapsTouches(t *testing.T) {
	if New(0, 1).Overlaps(New(1, 2)) {
		t.Error("abutting intervals do not overlap")
	}
	if !New(0, 1).Touches(New(1, 2)) {
		t.Error("abutting intervals touch")
	}
	if !New(0, 2).Overlaps(New(1, 3)) {
		t.Error("overlapping intervals should overlap")
	}
	if New(0, 0).Overlaps(New(0, 1)) || New(0, 0).Touches(New(0, 1)) {
		t.Error("empty interval overlaps/touches nothing")
	}
}

func TestHull(t *testing.T) {
	got := New(0, 1).Hull(New(3, 4))
	if got != New(0, 4) {
		t.Errorf("Hull = %v, want [0,4)", got)
	}
	if got := New(0, 1).Hull(New(2, 2)); got != New(0, 1) {
		t.Errorf("Hull with empty = %v, want [0,1)", got)
	}
	if got := (Interval{}).Hull(New(1, 2)); got != New(1, 2) {
		t.Errorf("empty Hull = %v", got)
	}
}

func TestString(t *testing.T) {
	if got := New(0.5, 2).String(); got != "[0.5, 2)" {
		t.Errorf("String = %q", got)
	}
}

func TestMerge(t *testing.T) {
	cases := []struct {
		name string
		in   Set
		want Set
	}{
		{"empty", Set{}, Set{}},
		{"single", Set{New(0, 1)}, Set{New(0, 1)}},
		{"disjoint sorted", Set{New(0, 1), New(2, 3)}, Set{New(0, 1), New(2, 3)}},
		{"disjoint unsorted", Set{New(2, 3), New(0, 1)}, Set{New(0, 1), New(2, 3)}},
		{"overlap", Set{New(0, 2), New(1, 3)}, Set{New(0, 3)}},
		{"abut", Set{New(0, 1), New(1, 2)}, Set{New(0, 2)}},
		{"nested", Set{New(0, 4), New(1, 2)}, Set{New(0, 4)}},
		{"with empties", Set{New(0, 1), New(5, 5), New(3, 2)}, Set{New(0, 1)}},
		{"chain", Set{New(0, 1), New(1, 2), New(2, 3), New(5, 6)}, Set{New(0, 3), New(5, 6)}},
	}
	for _, c := range cases {
		got := c.in.Merge()
		if len(got) != len(c.want) {
			t.Errorf("%s: Merge = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: Merge[%d] = %v, want %v", c.name, i, got[i], c.want[i])
			}
		}
	}
}

func TestMergeDoesNotMutate(t *testing.T) {
	in := Set{New(2, 3), New(0, 1)}
	_ = in.Merge()
	if in[0] != New(2, 3) || in[1] != New(0, 1) {
		t.Error("Merge mutated its receiver")
	}
}

func TestSpan(t *testing.T) {
	cases := []struct {
		in   Set
		want float64
	}{
		{Set{}, 0},
		{Set{New(0, 1)}, 1},
		{Set{New(0, 2), New(1, 3)}, 3},
		{Set{New(0, 1), New(2, 3)}, 2}, // gap doesn't count
		{Set{New(0, 10), New(1, 2), New(3, 4)}, 10},
	}
	for i, c := range cases {
		if got := c.in.Span(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Span = %v, want %v", i, got, c.want)
		}
	}
}

func TestSetHull(t *testing.T) {
	s := Set{New(3, 4), New(0, 1)}
	if got := s.Hull(); got != New(0, 4) {
		t.Errorf("Hull = %v", got)
	}
}

func TestCovers(t *testing.T) {
	s := Set{New(0, 2), New(2, 5)}
	if !s.Covers(New(0, 5)) {
		t.Error("merged set should cover [0,5)")
	}
	if !s.Covers(New(1, 3)) {
		t.Error("should cover sub-interval")
	}
	if s.Covers(New(0, 6)) {
		t.Error("should not cover beyond Hi")
	}
	if !s.Covers(New(3, 3)) {
		t.Error("empty target is always covered")
	}
	gappy := Set{New(0, 1), New(2, 3)}
	if gappy.Covers(New(0, 3)) {
		t.Error("gappy set should not cover the hull")
	}
}

func TestSetContains(t *testing.T) {
	s := Set{New(0, 1), New(2, 3)}
	if !s.Contains(0.5) || s.Contains(1.5) || !s.Contains(2) || s.Contains(3) {
		t.Error("Set.Contains misclassified")
	}
}

// Property: Span is invariant under permutation and splitting of intervals.
func TestSpanInvariantUnderSplit(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		var s Set
		for i := 0; i < n; i++ {
			lo := r.Float64() * 10
			s = append(s, New(lo, lo+r.Float64()*5))
		}
		// Split each interval in half; span must not change.
		var split Set
		for _, iv := range s {
			mid := (iv.Lo + iv.Hi) / 2
			split = append(split, New(iv.Lo, mid), New(mid, iv.Hi))
		}
		return math.Abs(s.Span()-split.Span()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Span ≤ sum of lengths, and Span ≤ Hull length.
func TestSpanBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(nRaw uint8) bool {
		n := int(nRaw%10) + 1
		var s Set
		sumLen := 0.0
		for i := 0; i < n; i++ {
			lo := r.Float64() * 10
			iv := New(lo, lo+r.Float64()*5)
			s = append(s, iv)
			sumLen += iv.Length()
		}
		sp := s.Span()
		return sp <= sumLen+1e-9 && sp <= s.Hull().Length()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merged sets are sorted, disjoint and non-abutting.
func TestMergeNormalForm(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	f := func(nRaw uint8) bool {
		n := int(nRaw % 12)
		var s Set
		for i := 0; i < n; i++ {
			lo := r.Float64() * 10
			s = append(s, New(lo, lo+r.Float64()*3))
		}
		m := s.Merge()
		for i := range m {
			if m[i].Empty() {
				return false
			}
			if i > 0 && m[i-1].Hi >= m[i].Lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerge(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s := make(Set, 1000)
	for i := range s {
		lo := r.Float64() * 1000
		s[i] = New(lo, lo+r.Float64()*10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Merge()
	}
}
