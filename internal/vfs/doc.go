// Package vfs is the filesystem seam under the persistence layer: a small
// interface over exactly the operations internal/persist and internal/server
// perform (open/create/write/fsync/truncate/rename/remove, plus directory
// fsync), with three implementations.
//
//   - OS is the production passthrough onto the real filesystem.
//   - Mem is a deterministic in-memory filesystem that models durability the
//     way a disk does: written bytes and directory entries are volatile until
//     the corresponding fsync (File.Sync for contents, SyncDir for entries),
//     and a simulated power loss discards everything after the last sync
//     barrier. Every mutating operation is counted, so a test can re-run a
//     recorded workload and cut power at filesystem-op N for every N — the
//     exhaustive crash-point torture behind `make disk-smoke`.
//   - Injector wraps any FS and fails chosen operations deterministically:
//     a parsed plan ("write:3:enospc" fails the 3rd write with ENOSPC) for
//     seeded single-fault runs, and sticky errors for tests that hold a disk
//     sick (ENOSPC) over a window and then heal it.
//
// The durability model Mem enforces is the contract the persist layer is
// written against: creating or renaming a file does not survive a crash until
// its parent directory is fsynced, file writes do not survive until File.Sync,
// and a crash may additionally tear the unsynced tail (a prefix of the
// unflushed bytes survives) or — the other legal outcome — flush it entirely.
// Directory creation is modeled as immediately durable, matching
// metadata-journaling filesystems. See DESIGN.md §15.
package vfs
