package cloudsim

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/vector"
)

func TestValidateRequestsStructuredErrors(t *testing.T) {
	cap2 := vector.Of(4, 8)
	good := Request{ID: 1, Arrive: 0, Duration: 5, Demand: vector.Of(2, 4)}
	cases := []struct {
		name  string
		reqs  []Request
		field string
		id    int
	}{
		{"duplicate-id", []Request{good, {ID: 1, Arrive: 1, Duration: 2, Demand: vector.Of(1, 1)}}, "ID", 1},
		{"nan-arrive", []Request{{ID: 2, Arrive: math.NaN(), Duration: 5, Demand: vector.Of(1, 1)}}, "Arrive", 2},
		{"inf-arrive", []Request{{ID: 3, Arrive: math.Inf(1), Duration: 5, Demand: vector.Of(1, 1)}}, "Arrive", 3},
		{"zero-duration", []Request{{ID: 4, Arrive: 0, Duration: 0, Demand: vector.Of(1, 1)}}, "Duration", 4},
		{"nan-duration", []Request{{ID: 5, Arrive: 0, Duration: math.NaN(), Demand: vector.Of(1, 1)}}, "Duration", 5},
		{"dim-mismatch", []Request{{ID: 6, Arrive: 0, Duration: 5, Demand: vector.Of(1)}}, "Demand", 6},
		{"nan-demand", []Request{{ID: 7, Arrive: 0, Duration: 5, Demand: vector.Of(math.NaN(), 1)}}, "Demand", 7},
		{"negative-demand", []Request{{ID: 8, Arrive: 0, Duration: 5, Demand: vector.Of(-1, 1)}}, "Demand", 8},
		{"oversized-demand", []Request{{ID: 9, Arrive: 0, Duration: 5, Demand: vector.Of(5, 1)}}, "Demand", 9},
	}
	for _, c := range cases {
		err := ValidateRequests(cap2, c.reqs)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		var re *RequestError
		if !errors.As(err, &re) {
			t.Errorf("%s: error %v is not a *RequestError", c.name, err)
			continue
		}
		if re.Field != c.field || re.ID != c.id {
			t.Errorf("%s: got (id=%d, field=%s), want (id=%d, field=%s): %v",
				c.name, re.ID, re.Field, c.id, c.field, err)
		}
	}
	if err := ValidateRequests(cap2, []Request{good}); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestRunRejectsInvalidStreamBeforeDispatch(t *testing.T) {
	cfg := Config{Capacity: vector.Of(4), Policy: core.NewFirstFit(), Billing: Billing{PricePerUnit: 1}}
	_, err := Run(cfg, []Request{{ID: 1, Arrive: 0, Duration: 5, Demand: vector.Of(math.NaN())}})
	var re *RequestError
	if !errors.As(err, &re) {
		t.Fatalf("Run should surface *RequestError, got %v", err)
	}
}

func TestRunFiniteFleetRejects(t *testing.T) {
	cfg := Config{
		Capacity: vector.Of(4), Policy: core.NewFirstFit(),
		Billing: Billing{PricePerUnit: 1}, MaxServers: 1,
	}
	reqs := []Request{
		{ID: 10, Arrive: 0, Duration: 10, Demand: vector.Of(4)},
		{ID: 20, Arrive: 1, Duration: 5, Demand: vector.Of(4)},
	}
	rep, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.RejectedIDs, []int{20}) {
		t.Errorf("RejectedIDs = %v, want [20]", rep.RejectedIDs)
	}
	if rep.PeakServers != 1 || rep.ServersRented != 1 {
		t.Errorf("fleet cap violated: %+v", rep)
	}
	if rep.Failed() != 1 {
		t.Errorf("Failed() = %d, want 1", rep.Failed())
	}
}

func TestRunFiniteFleetQueues(t *testing.T) {
	cfg := Config{
		Capacity: vector.Of(4), Policy: core.NewFirstFit(),
		Billing: Billing{PricePerUnit: 1}, MaxServers: 1, Queue: true, QueueDeadline: 100,
	}
	reqs := []Request{
		{ID: 10, Arrive: 0, Duration: 4, Demand: vector.Of(4)},
		{ID: 20, Arrive: 1, Duration: 9, Demand: vector.Of(4)},
	}
	rep, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.QueuedPlaced != 1 || rep.QueueDelay != 3 {
		t.Errorf("queue accounting: %+v", rep)
	}
	if len(rep.RejectedIDs) != 0 || len(rep.TimedOutIDs) != 0 {
		t.Errorf("no request should fail: %+v", rep)
	}
	// Request 20 waits from t=1 to t=4; its departure stays at t=10, so the
	// queue delay eats into the session: usage is 4 + 6, not 4 + 9.
	if rep.UsageTime != 10 {
		t.Errorf("UsageTime = %v, want 10", rep.UsageTime)
	}
}

func TestRunQueueConfigValidation(t *testing.T) {
	base := Config{Capacity: vector.Of(4), Policy: core.NewFirstFit()}
	reqs := []Request{{ID: 1, Arrive: 0, Duration: 1, Demand: vector.Of(1)}}
	for _, cfg := range []Config{
		{Capacity: base.Capacity, Policy: base.Policy, Queue: true, QueueDeadline: 5},                 // queue without cap
		{Capacity: base.Capacity, Policy: base.Policy, MaxServers: 1, Queue: true, QueueDeadline: -1}, // negative deadline
		{Capacity: base.Capacity, Policy: base.Policy, MaxServers: -2},                                // negative cap
	} {
		if _, err := Run(cfg, reqs); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestRunWithCrashSchedule(t *testing.T) {
	tr, err := faults.NewTrace([]faults.TraceEvent{{BinID: 0, At: 4}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Capacity: vector.Of(4), Policy: core.NewFirstFit(),
		Billing: Billing{PricePerUnit: 1},
		Faults:  tr, Retry: faults.Immediate{},
	}
	reqs := []Request{{ID: 7, Arrive: 0, Duration: 10, Demand: vector.Of(2)}}
	rep, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes != 1 || rep.Evictions != 1 || rep.Retries != 1 {
		t.Fatalf("failure accounting: %+v", rep)
	}
	if !rep.Servers[0].Crashed || rep.Servers[1].Crashed {
		t.Errorf("Crashed flags: %+v", rep.Servers)
	}
	// The session migrated: PlacementOf records the final server.
	if rep.PlacementOf[7] != 1 {
		t.Errorf("PlacementOf[7] = %d, want 1 (re-placed after crash)", rep.PlacementOf[7])
	}
	if rep.UsageTime != 10 || rep.BilledCost != 10 {
		t.Errorf("usage/billing: %+v", rep)
	}
}

func TestRunLostSessionAccounting(t *testing.T) {
	tr, err := faults.NewTrace([]faults.TraceEvent{{BinID: 0, At: 4}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Capacity: vector.Of(4), Policy: core.NewFirstFit(),
		Faults: tr, Retry: faults.Fixed{Wait: 100},
	}
	reqs := []Request{{ID: 7, Arrive: 0, Duration: 10, Demand: vector.Of(2)}}
	rep, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.LostIDs, []int{7}) {
		t.Errorf("LostIDs = %v, want [7]", rep.LostIDs)
	}
	if rep.LostUsageTime != 6 {
		t.Errorf("LostUsageTime = %v, want 6 (crash at 4 of a 10-long session)", rep.LostUsageTime)
	}
}

// TestRunFaultyDeterminism: identical config and stream → identical reports.
func TestRunFaultyDeterminism(t *testing.T) {
	cfg := Config{
		Capacity: vector.Of(8, 16), Policy: core.NewBestFit(core.MaxLoad()),
		Billing:    Billing{PricePerUnit: 2},
		MaxServers: 3, Queue: true, QueueDeadline: 5,
		Faults: faults.MTBF{Mean: 12, Seed: 9}, Retry: faults.Backoff{Base: 0.5, Cap: 4},
	}
	var reqs []Request
	for i := 0; i < 60; i++ {
		reqs = append(reqs, Request{
			ID: i, Arrive: float64(i % 17), Duration: 3 + float64(i%7),
			Demand: vector.Of(float64(1+i%8), float64(2+i%15)),
		})
	}
	a, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("non-deterministic reports:\n%+v\n%+v", a, b)
	}
	if a.Crashes == 0 {
		t.Error("schedule exercised no crashes")
	}
}
