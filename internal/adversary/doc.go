// Package adversary builds the worst-case instances from Section 6 of the
// paper — the lower-bound constructions for Any Fit algorithms (Theorem 5),
// Next Fit (Theorem 6) and Move To Front (Theorem 8) — plus a synthesised
// family certifying Best Fit's degradation (Theorem 7 cites Li–Tang–Cai [22];
// see the Best Fit note below and DESIGN.md §5).
//
// Each construction returns the instance together with a constructive upper
// bound on OPT (exhibited by an explicit feasible offline packing), so the
// measured ratio cost/OPTUpper is a certified lower bound on the true
// competitive ratio of the algorithm on that instance.
package adversary
