package experiments

import (
	"context"
	"errors"
	"fmt"

	"dvbp/internal/core"
	"dvbp/internal/exactopt"
	"dvbp/internal/lowerbound"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
	"dvbp/internal/workload"
)

// TrueRatioConfig parameterises the exact-OPT study: small instances where
// OPT(R) = ∫ minBins(active(t)) dt is computed exactly (internal/exactopt),
// giving *true* competitive ratios instead of lower-bound-normalised ones.
type TrueRatioConfig struct {
	D, N, Mu, T, B int
	Instances      int
	Seed           int64
	// MaxActive guards the exponential DP; instances whose peak concurrency
	// exceeds it are skipped (and counted).
	MaxActive int
	// RunControl supplies the execution knobs; shard slices are not
	// supported here (the result is not reassemblable from parts).
	RunControl
}

// DefaultTrueRatio keeps the expected peak concurrency ~ N·μ̄/T well under
// the DP limit.
func DefaultTrueRatio() TrueRatioConfig {
	return TrueRatioConfig{D: 2, N: 40, Mu: 5, T: 100, B: 100, Instances: 200, Seed: 1, MaxActive: exactopt.DefaultMaxActive}
}

// TrueRatioRow summarises one policy's exact competitive behaviour.
type TrueRatioRow struct {
	Policy string
	// TrueRatio is cost/OPT across instances.
	TrueRatio stats.Summary
	// LBRatio is cost/LB(i) across the same instances (the Figure 4 metric),
	// for comparing the two normalisations.
	LBRatio stats.Summary
}

// TrueRatioResult is the study outcome.
type TrueRatioResult struct {
	Config TrueRatioConfig
	Rows   []TrueRatioRow
	// LBTightness summarises OPT/LB(i): how much the paper's experimental
	// normalisation overstates ratios (1.0 = the lower bound is exact).
	LBTightness stats.Summary
	// Skipped counts instances rejected because their peak concurrency
	// exceeded MaxActive.
	Skipped int
}

// RunTrueRatio executes the study.
func RunTrueRatio(cfg TrueRatioConfig) (*TrueRatioResult, error) {
	wcfg := workload.UniformConfig{D: cfg.D, N: cfg.N, Mu: cfg.Mu, T: cfg.T, B: cfg.B}
	if err := wcfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("experiments: Instances = %d", cfg.Instances)
	}
	names := core.PolicyNames()

	type trial struct {
		skipped bool
		opt, lb float64
		costs   []float64
	}
	if err := cfg.requireUnsharded("trueratio"); err != nil {
		return nil, err
	}
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) (trial, error) {
		seed := parallel.SeedFor(cfg.Seed, i)
		l, err := workload.Uniform(wcfg, seed)
		if err != nil {
			return trial{}, err
		}
		if exactopt.PeakActive(l) > cfg.MaxActive {
			return trial{skipped: true}, nil
		}
		opt, err := exactopt.Opt(l, exactopt.Options{MaxActive: cfg.MaxActive})
		if err != nil {
			if errors.Is(err, exactopt.ErrTooLarge) {
				return trial{skipped: true}, nil
			}
			return trial{}, err
		}
		tr := trial{opt: opt, lb: lowerbound.IntegralBound(l), costs: make([]float64, len(names))}
		for pi, n := range names {
			p, err := core.NewPolicy(n, seed)
			if err != nil {
				return trial{}, err
			}
			res, err := core.Simulate(l, p, cfg.observerOpts()...)
			if err != nil {
				return trial{}, err
			}
			tr.costs[pi] = res.Cost
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}

	res := &TrueRatioResult{Config: cfg}
	trueAccs := make([]stats.Accumulator, len(names))
	lbAccs := make([]stats.Accumulator, len(names))
	var tight stats.Accumulator
	for _, tr := range trials {
		if tr.skipped {
			res.Skipped++
			continue
		}
		tight.Add(tr.opt / tr.lb)
		for pi, c := range tr.costs {
			trueAccs[pi].Add(c / tr.opt)
			lbAccs[pi].Add(c / tr.lb)
		}
	}
	if tight.N() == 0 {
		return nil, fmt.Errorf("experiments: every instance exceeded MaxActive=%d; lower N or raise T", cfg.MaxActive)
	}
	res.LBTightness = tight.Summarize()
	for pi, n := range names {
		res.Rows = append(res.Rows, TrueRatioRow{
			Policy:    n,
			TrueRatio: trueAccs[pi].Summarize(),
			LBRatio:   lbAccs[pi].Summarize(),
		})
	}
	return res, nil
}

// Table renders the study.
func (r *TrueRatioResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("True competitive ratios via exact OPT (d=%d n=%d mu=%d, %d instances, %d skipped); OPT/LB tightness %.4f ± %.4f",
			r.Config.D, r.Config.N, r.Config.Mu, r.LBTightness.N, r.Skipped, r.LBTightness.Mean, r.LBTightness.StdDev),
		Headers: []string{"policy", "mean cost/OPT", "max cost/OPT", "mean cost/LB"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy, report.F(row.TrueRatio.Mean), report.F(row.TrueRatio.Max), report.F(row.LBRatio.Mean))
	}
	return t
}
