package core

import (
	"testing"
)

func TestHarmonicFitClassBoundaries(t *testing.T) {
	h := NewHarmonicFit(4)
	cases := []struct {
		norm float64
		want int
	}{
		{1.0, 1}, // (1/2, 1] -> class 1
		{0.51, 1},
		{0.5, 2}, // (1/3, 1/2] -> class 2
		{0.34, 2},
		{1.0 / 3, 3}, // (1/4, 1/3] -> class 3
		{0.26, 3},
		{0.25, 4}, // residue: <= 1/4
		{0.01, 4},
	}
	for _, c := range cases {
		if got := h.class(c.norm); got != c.want {
			t.Errorf("class(%v) = %d, want %d", c.norm, got, c.want)
		}
	}
}

func TestHarmonicFitSegregatesClasses(t *testing.T) {
	// A big (class 1) and a small (residue) item co-active: classes never
	// share bins even though they'd fit together.
	l := list(t, 1,
		[]float64{0, 10, 0.6},
		[]float64{0, 10, 0.1},
	)
	p := NewHarmonicFit(3)
	res := mustSimulate(t, l, p)
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2 (class segregation)", res.BinsOpened)
	}
}

func TestHarmonicFitPacksWithinClass(t *testing.T) {
	// Four class-2 items (size 0.4..0.5]: two per bin.
	l := list(t, 1,
		[]float64{0, 10, 0.45},
		[]float64{0, 10, 0.45},
		[]float64{0, 10, 0.45},
		[]float64{0, 10, 0.45},
	)
	res := mustSimulate(t, l, NewHarmonicFit(3))
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res.BinsOpened)
	}
}

func TestHarmonicFitK1IsFirstFit(t *testing.T) {
	// With one class, Harmonic Fit degenerates to First Fit.
	l := randomList(42, 200, 2, 15)
	hf := mustSimulate(t, l, NewHarmonicFit(1))
	ff := mustSimulate(t, l, NewFirstFit())
	if hf.Cost != ff.Cost || hf.BinsOpened != ff.BinsOpened {
		t.Errorf("HarmonicFit-1 (%v/%d) != FirstFit (%v/%d)",
			hf.Cost, hf.BinsOpened, ff.Cost, ff.BinsOpened)
	}
}

func TestHarmonicFitCostDominatesSpan(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		l := randomList(seed, 150, 2, 10)
		for _, k := range []int{2, 3, 5} {
			res := mustSimulate(t, l, NewHarmonicFit(k))
			if res.Cost < res.Span-1e-9 {
				t.Errorf("K=%d seed=%d: cost %v < span %v", k, seed, res.Cost, res.Span)
			}
		}
	}
}

func TestHarmonicFitIsWorseBaselineOnUniform(t *testing.T) {
	// Segregation should cost more than First Fit on the paper's workload —
	// the negative-baseline property documented in the type comment.
	var hfTotal, ffTotal float64
	for seed := int64(0); seed < 5; seed++ {
		l := randomList(seed, 300, 2, 20)
		hfTotal += mustSimulate(t, l, NewHarmonicFit(4)).Cost
		ffTotal += mustSimulate(t, l, NewFirstFit()).Cost
	}
	if hfTotal <= ffTotal {
		t.Errorf("HarmonicFit total %v unexpectedly beats FirstFit %v", hfTotal, ffTotal)
	}
}

func TestNewHarmonicFitPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewHarmonicFit(0)
}

func TestHarmonicFitRegistryName(t *testing.T) {
	p, err := NewPolicy("harmonicfit-4", 0)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if p.Name() != "HarmonicFit-4" {
		t.Errorf("Name = %q", p.Name())
	}
	if _, err := NewPolicy("harmonicfit-0", 0); err == nil {
		t.Error("harmonicfit-0 accepted")
	}
}
