package analysis

import (
	"fmt"
	"math"
	"sort"

	"dvbp/internal/core"
	"dvbp/internal/interval"
)

// LeaderSegment is a maximal interval during which one bin was the Move To
// Front leader. BinID is -1 while no bin is open.
type LeaderSegment struct {
	Interval interval.Interval
	BinID    int
}

// MTFDecomposition is a core.Observer that reconstructs the leader timeline
// of a Move To Front run. Attach with core.WithObserver and pass the SAME
// policy instance that core.Simulate runs.
type MTFDecomposition struct {
	core.BaseObserver
	policy *core.MoveToFront

	times   []float64
	leaders []int
	started bool
}

// NewMTFDecomposition returns an observer bound to the given policy.
func NewMTFDecomposition(p *core.MoveToFront) *MTFDecomposition {
	return &MTFDecomposition{policy: p}
}

func (d *MTFDecomposition) record(t float64) {
	leader := d.policy.LeaderID()
	if d.started && len(d.leaders) > 0 && d.leaders[len(d.leaders)-1] == leader {
		return // no transition
	}
	d.started = true
	d.times = append(d.times, t)
	d.leaders = append(d.leaders, leader)
}

// AfterPack implements core.Observer: packing always moves the receiving bin
// to the front, possibly changing the leader.
func (d *MTFDecomposition) AfterPack(req core.Request, b *core.Bin, opened bool) {
	d.record(req.Arrival)
}

// BinClosed implements core.Observer: when the leader closes, the next bin
// in recency order (or none) becomes leader.
func (d *MTFDecomposition) BinClosed(b *core.Bin, t float64) {
	d.record(t)
}

// Segments returns the leader timeline as maximal constant segments in time
// order.
func (d *MTFDecomposition) Segments() []LeaderSegment {
	var out []LeaderSegment
	for i := range d.times {
		end := math.Inf(1)
		if i+1 < len(d.times) {
			end = d.times[i+1]
		}
		out = append(out, LeaderSegment{Interval: interval.New(d.times[i], end), BinID: d.leaders[i]})
	}
	// The final segment must be a leaderless one at the end of the run
	// (every bin eventually closes), making all real segments finite.
	if n := len(out); n > 0 && out[n-1].BinID == -1 {
		out = out[:n-1]
	}
	return out
}

// LeadingTime returns the total time the given bin spent as leader.
func (d *MTFDecomposition) LeadingTime(binID int) float64 {
	total := 0.0
	for _, s := range d.Segments() {
		if s.BinID == binID {
			total += s.Interval.Length()
		}
	}
	return total
}

// TotalLeadingTime returns Σ_i Σ_j ℓ(P_{i,j}) — the total length of all
// leading intervals, which Claim 1 proves equals span(R).
func (d *MTFDecomposition) TotalLeadingTime() float64 {
	total := 0.0
	for _, s := range d.Segments() {
		if s.BinID >= 0 {
			total += s.Interval.Length()
		}
	}
	return total
}

// NonLeadingCost returns Σ_i Σ_j ℓ(Q_{i,j}) = cost − Σ ℓ(P): the part of
// Move To Front's cost charged to the (2μ+1)d term in Theorem 2.
func (d *MTFDecomposition) NonLeadingCost(res *core.Result) float64 {
	return res.Cost - d.TotalLeadingTime()
}

// Verify checks Claim 1 numerically against the run's Result:
// the leading intervals are disjoint, cover exactly the active span, and
// each bin's leading time is within its usage time.
func (d *MTFDecomposition) Verify(res *core.Result) error {
	segs := d.Segments()
	for i := 1; i < len(segs); i++ {
		if segs[i].Interval.Lo < segs[i-1].Interval.Hi-1e-9 {
			return fmt.Errorf("analysis: overlapping leader segments %v and %v", segs[i-1], segs[i])
		}
	}
	if got := d.TotalLeadingTime(); math.Abs(got-res.Span) > 1e-6 {
		return fmt.Errorf("analysis: Claim 1 violated: Σℓ(P) = %g, span = %g", got, res.Span)
	}
	usage := make(map[int]float64, len(res.Bins))
	for _, b := range res.Bins {
		usage[b.BinID] = b.Usage()
	}
	for id, u := range usage {
		if lt := d.LeadingTime(id); lt > u+1e-6 {
			return fmt.Errorf("analysis: bin %d leading time %g exceeds usage %g", id, lt, u)
		}
	}
	return nil
}

// FFBinDecomposition is the Theorem 3 split of one First Fit bin's usage
// interval I_i into P_i (overlap with earlier bins still open) and Q_i (the
// exclusive tail).
type FFBinDecomposition struct {
	BinID int
	P, Q  interval.Interval
}

// FFDecompose splits each bin of a First Fit result per the Theorem 3 proof:
// with bins indexed by opening time, t_i = max(I_i⁻, max_{j<i} I_j⁺),
// P_i = [I_i⁻, min(I_i⁺, t_i)) and Q_i = [min(I_i⁺, t_i), I_i⁺).
func FFDecompose(res *core.Result) []FFBinDecomposition {
	bins := make([]core.BinUsage, len(res.Bins))
	copy(bins, res.Bins)
	sort.Slice(bins, func(i, j int) bool {
		if bins[i].OpenedAt != bins[j].OpenedAt {
			return bins[i].OpenedAt < bins[j].OpenedAt
		}
		return bins[i].BinID < bins[j].BinID
	})
	out := make([]FFBinDecomposition, 0, len(bins))
	maxCloseBefore := math.Inf(-1)
	for _, b := range bins {
		ti := math.Max(b.OpenedAt, maxCloseBefore)
		mid := math.Min(b.ClosedAt, ti)
		out = append(out, FFBinDecomposition{
			BinID: b.BinID,
			P:     interval.New(b.OpenedAt, mid),
			Q:     interval.New(mid, b.ClosedAt),
		})
		if b.ClosedAt > maxCloseBefore {
			maxCloseBefore = b.ClosedAt
		}
	}
	return out
}

// VerifyFFDecomposition checks Claim 4 numerically: Σ ℓ(Q_i) = span(R), and
// P_i ∪ Q_i tiles each bin's usage interval.
func VerifyFFDecomposition(res *core.Result) error {
	decomp := FFDecompose(res)
	usage := make(map[int]core.BinUsage, len(res.Bins))
	for _, b := range res.Bins {
		usage[b.BinID] = b
	}
	sumQ := 0.0
	for _, d := range decomp {
		b := usage[d.BinID]
		if math.Abs(d.P.Length()+d.Q.Length()-b.Usage()) > 1e-9 {
			return fmt.Errorf("analysis: bin %d decomposition does not tile usage", d.BinID)
		}
		sumQ += d.Q.Length()
	}
	if math.Abs(sumQ-res.Span) > 1e-6 {
		return fmt.Errorf("analysis: Claim 4 violated: Σℓ(Q) = %g, span = %g", sumQ, res.Span)
	}
	return nil
}

// CostSplit summarises where an algorithm's cost went.
type CostSplit struct {
	// Covering is the part of the cost that any algorithm must pay
	// (= span(R) for a single-interval activity hull).
	Covering float64
	// Overhead is cost − Covering: the bins-open-in-parallel surplus that
	// competitive analysis charges against μ and d.
	Overhead float64
}

// SplitCost returns the covering/overhead split for any result.
func SplitCost(res *core.Result) CostSplit {
	return CostSplit{Covering: res.Span, Overhead: res.Cost - res.Span}
}
