package eventq

import "container/heap"

// Event carries a payload scheduled at a point in time. When two events share
// a Time, the one with the smaller Seq is delivered first.
type Event[T any] struct {
	Time    float64
	Seq     int64
	Payload T
}

// Queue is a min-heap of events. The zero value is an empty queue ready to
// use.
type Queue[T any] struct {
	h eventHeap[T]
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push schedules an event.
func (q *Queue[T]) Push(e Event[T]) { heap.Push(&q.h, e) }

// PushAt is shorthand for Push with the given fields.
func (q *Queue[T]) PushAt(t float64, seq int64, payload T) {
	q.Push(Event[T]{Time: t, Seq: seq, Payload: payload})
}

// Peek returns the earliest event without removing it. ok is false when the
// queue is empty.
func (q *Queue[T]) Peek() (e Event[T], ok bool) {
	if len(q.h) == 0 {
		return e, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty.
func (q *Queue[T]) Pop() (e Event[T], ok bool) {
	if len(q.h) == 0 {
		return e, false
	}
	return heap.Pop(&q.h).(Event[T]), true
}

// PopUntil removes and returns, in order, every event with Time <= t.
func (q *Queue[T]) PopUntil(t float64) []Event[T] {
	var out []Event[T]
	for {
		e, ok := q.Peek()
		if !ok || e.Time > t {
			return out
		}
		q.Pop()
		out = append(out, e)
	}
}

type eventHeap[T any] []Event[T]

func (h eventHeap[T]) Len() int { return len(h) }

func (h eventHeap[T]) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].Seq < h[j].Seq
}

func (h eventHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap[T]) Push(x any) { *h = append(*h, x.(Event[T])) }

func (h *eventHeap[T]) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
