package item

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dvbp/internal/interval"
	"dvbp/internal/vector"
)

// Item is one job/request. Items are compared and deduplicated by ID;
// SeqNo orders simultaneous arrivals (the paper's constructions rely on
// items "arriving in that order" at the same time instant).
type Item struct {
	// ID identifies the item within its list. IDs are unique, non-negative,
	// and stable across serialisation.
	ID int
	// SeqNo breaks ties among items with equal arrival time: lower SeqNo
	// arrives first. List.Normalize assigns SeqNos from list order.
	SeqNo int
	// Arrival is a(r), the time the item arrives and must be packed.
	Arrival float64
	// Departure is e(r), the time the item departs. Hidden from
	// non-clairvoyant policies.
	Departure float64
	// Size is s(r) ∈ [0,1]^d.
	Size vector.Vector
}

// Interval returns the active interval I(r) = [a(r), e(r)).
func (it Item) Interval() interval.Interval {
	return interval.New(it.Arrival, it.Departure)
}

// Duration returns ℓ(I(r)) = e(r) - a(r).
func (it Item) Duration() float64 { return it.Departure - it.Arrival }

// ActiveAt reports whether the item is active at time t (t ∈ [a, e)).
func (it Item) ActiveAt(t float64) bool { return t >= it.Arrival && t < it.Departure }

// Validate checks the item is well-formed for a d-dimensional instance:
// non-negative times, strictly positive duration, size in [0,1]^d with the
// right dimension.
func (it Item) Validate(d int) error {
	switch {
	case math.IsNaN(it.Arrival) || math.IsNaN(it.Departure):
		return fmt.Errorf("item %d: NaN time", it.ID)
	case it.Arrival < 0:
		return fmt.Errorf("item %d: negative arrival %g", it.ID, it.Arrival)
	case it.Departure <= it.Arrival:
		return fmt.Errorf("item %d: departure %g not after arrival %g", it.ID, it.Departure, it.Arrival)
	case it.Size.Dim() != d:
		return fmt.Errorf("item %d: dimension %d, want %d", it.ID, it.Size.Dim(), d)
	case !it.Size.NonNegative():
		return fmt.Errorf("item %d: negative or NaN size %v", it.ID, it.Size)
	case !it.Size.LeqCapacity():
		return fmt.Errorf("item %d: size %v exceeds unit capacity", it.ID, it.Size)
	}
	return nil
}

// String renders a compact single-line description.
func (it Item) String() string {
	return fmt.Sprintf("item{id=%d, [%g,%g), s=%v}", it.ID, it.Arrival, it.Departure, it.Size)
}

// List is an ordered collection of items. Order matters: simultaneous
// arrivals are processed in list order (via SeqNo after Normalize).
type List struct {
	Dim   int
	Items []Item
}

// NewList returns an empty list for d-dimensional items.
func NewList(d int) *List { return &List{Dim: d} }

// Add appends an item, assigning the next ID and SeqNo, and returns its ID.
func (l *List) Add(arrival, departure float64, size vector.Vector) int {
	id := len(l.Items)
	l.Items = append(l.Items, Item{
		ID:        id,
		SeqNo:     id,
		Arrival:   arrival,
		Departure: departure,
		Size:      size,
	})
	return id
}

// Len returns the number of items.
func (l *List) Len() int { return len(l.Items) }

// Normalize assigns SeqNos from current list order and re-checks IDs are
// unique, returning an error otherwise. Call after bulk-loading items.
func (l *List) Normalize() error {
	seen := make(map[int]bool, len(l.Items))
	for i := range l.Items {
		it := &l.Items[i]
		if seen[it.ID] {
			return fmt.Errorf("item list: duplicate id %d", it.ID)
		}
		seen[it.ID] = true
		it.SeqNo = i
	}
	return nil
}

// Validate checks every item (see Item.Validate) and the list as a whole.
func (l *List) Validate() error {
	if len(l.Items) == 0 {
		return errors.New("item list: empty")
	}
	return l.ValidateDynamic()
}

// ValidateDynamic is Validate for lists that grow while a run is in progress
// (the engine's dynamic-arrival mode): the same per-item and uniqueness
// checks, but an empty list is legal — a dynamic run begins before its first
// item exists.
func (l *List) ValidateDynamic() error {
	if l.Dim <= 0 {
		return errors.New("item list: dimension must be positive")
	}
	seen := make(map[int]bool, len(l.Items))
	for _, it := range l.Items {
		if err := it.Validate(l.Dim); err != nil {
			return err
		}
		if seen[it.ID] {
			return fmt.Errorf("item list: duplicate id %d", it.ID)
		}
		seen[it.ID] = true
	}
	return nil
}

// MinDuration returns the shortest item duration (0 for an empty list).
func (l *List) MinDuration() float64 {
	if len(l.Items) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, it := range l.Items {
		if d := it.Duration(); d < m {
			m = d
		}
	}
	return m
}

// MaxDuration returns the longest item duration (0 for an empty list).
func (l *List) MaxDuration() float64 {
	m := 0.0
	for _, it := range l.Items {
		if d := it.Duration(); d > m {
			m = d
		}
	}
	return m
}

// Mu returns μ = max duration / min duration, the parameter that all the
// competitive-ratio bounds in the paper are stated in. For an empty list it
// returns 0.
func (l *List) Mu() float64 {
	minD := l.MinDuration()
	if minD == 0 {
		return 0
	}
	return l.MaxDuration() / minD
}

// Span returns span(R): the measure of the union of all active intervals.
func (l *List) Span() float64 {
	ivs := make(interval.Set, len(l.Items))
	for i, it := range l.Items {
		ivs[i] = it.Interval()
	}
	return ivs.Span()
}

// Hull returns the smallest interval [min a(r), max e(r)) covering all
// activity.
func (l *List) Hull() interval.Interval {
	ivs := make(interval.Set, len(l.Items))
	for i, it := range l.Items {
		ivs[i] = it.Interval()
	}
	return ivs.Hull()
}

// TotalSize returns s(R) = Σ_r s(r).
func (l *List) TotalSize() vector.Vector {
	s := vector.New(l.Dim)
	for _, it := range l.Items {
		s.AddInPlace(it.Size)
	}
	return s
}

// ActiveAt returns the items active at time t, in SeqNo order.
func (l *List) ActiveAt(t float64) []Item {
	var out []Item
	for _, it := range l.Items {
		if it.ActiveAt(t) {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SeqNo < out[j].SeqNo })
	return out
}

// LoadAt returns s(R, t) = Σ_{r active at t} s(r) (Section 2.3).
func (l *List) LoadAt(t float64) vector.Vector {
	s := vector.New(l.Dim)
	for _, it := range l.Items {
		if it.ActiveAt(t) {
			s.AddInPlace(it.Size)
		}
	}
	return s
}

// SortedByArrival returns the items sorted by (Arrival, SeqNo): the exact
// order in which an online algorithm sees them. The receiver is unchanged.
func (l *List) SortedByArrival() []Item {
	out := make([]Item, len(l.Items))
	copy(out, l.Items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].SeqNo < out[j].SeqNo
	})
	return out
}

// Clone returns a deep copy of the list.
func (l *List) Clone() *List {
	c := &List{Dim: l.Dim, Items: make([]Item, len(l.Items))}
	for i, it := range l.Items {
		it.Size = it.Size.Clone()
		c.Items[i] = it
	}
	return c
}

// ScaleDurations multiplies every item's duration by f, keeping arrivals
// fixed. Used by experiment sweeps to vary μ on a fixed arrival pattern.
func (l *List) ScaleDurations(f float64) {
	for i := range l.Items {
		it := &l.Items[i]
		it.Departure = it.Arrival + it.Duration()*f
	}
}

// TimeSpaceUtilization returns Σ_r ‖s(r)‖∞ · ℓ(I(r)), the numerator of the
// Lemma 1(ii) lower bound.
func (l *List) TimeSpaceUtilization() float64 {
	u := 0.0
	for _, it := range l.Items {
		u += it.Size.MaxNorm() * it.Duration()
	}
	return u
}
