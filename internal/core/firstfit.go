package core

// FirstFit packs an arriving item into the earliest-opened bin that can hold
// it (Section 2.2). Theorem 3 bounds its competitive ratio by (μ+2)d + 1;
// Theorem 5 bounds it below by (μ+1)d.
type FirstFit struct{}

// NewFirstFit returns a First Fit policy.
func NewFirstFit() *FirstFit { return &FirstFit{} }

// Name implements Policy.
func (*FirstFit) Name() string { return "FirstFit" }

// Reset implements Policy. First Fit is stateless: the engine's opening-order
// bin list is exactly the order it scans.
func (*FirstFit) Reset() {}

// Select implements Policy: the lowest-ID (earliest-opened) bin that fits.
func (*FirstFit) Select(req Request, open []*Bin) *Bin {
	for _, b := range open {
		if b.Fits(req.Size) {
			return b
		}
	}
	return nil
}

// OnPack implements Policy.
func (*FirstFit) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*FirstFit) OnClose(*Bin) {}

// LastFit packs an arriving item into the most recently opened bin that can
// hold it — the mirror image of First Fit, included in the paper's
// experimental study (Section 7).
type LastFit struct{}

// NewLastFit returns a Last Fit policy.
func NewLastFit() *LastFit { return &LastFit{} }

// Name implements Policy.
func (*LastFit) Name() string { return "LastFit" }

// Reset implements Policy.
func (*LastFit) Reset() {}

// Select implements Policy: the highest-ID (latest-opened) bin that fits.
func (*LastFit) Select(req Request, open []*Bin) *Bin {
	for i := len(open) - 1; i >= 0; i-- {
		if open[i].Fits(req.Size) {
			return open[i]
		}
	}
	return nil
}

// OnPack implements Policy.
func (*LastFit) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*LastFit) OnClose(*Bin) {}
