package metrics

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// populatedRegistry builds a registry with one instrument of every kind and
// some non-trivial state in each.
func populatedRegistry() *Registry {
	r := &Registry{}
	c := r.Counter("events_total", "events")
	g := r.Gauge("bins_open", "open bins")
	h := r.Histogram("latency", "latency", 0.5, 1, 2)
	c.Add(42)
	g.Set(7.25)
	for _, v := range []float64{0.1, 0.75, 0.75, 1.5, 99} {
		h.Observe(v)
	}
	return r
}

// sameRegistry registers the same instruments without populating them.
func sameShapeRegistry() *Registry {
	r := &Registry{}
	r.Counter("events_total", "events")
	r.Gauge("bins_open", "open bins")
	r.Histogram("latency", "latency", 0.5, 1, 2)
	return r
}

func TestRegistryRestoreRoundTrip(t *testing.T) {
	src := populatedRegistry()
	dst := sameShapeRegistry()
	if err := dst.Restore(src.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got, want := dst.Snapshot(), src.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored snapshot differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestRegistryAuxRoundTrip(t *testing.T) {
	src := populatedRegistry()
	if src.AuxKey() != "metrics" {
		t.Fatalf("AuxKey = %q", src.AuxKey())
	}
	blob, err := src.MarshalAux()
	if err != nil {
		t.Fatalf("MarshalAux: %v", err)
	}
	dst := sameShapeRegistry()
	if err := dst.UnmarshalAux(blob); err != nil {
		t.Fatalf("UnmarshalAux: %v", err)
	}
	if got, want := dst.Snapshot(), src.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("aux round-trip differs:\n got %+v\nwant %+v", got, want)
	}
	// Restore must survive extreme float values through JSON.
	src.Gauge("bins_open", "").Set(math.Nextafter(1, 2))
	blob, _ = src.MarshalAux()
	if err := dst.UnmarshalAux(blob); err != nil {
		t.Fatalf("UnmarshalAux after nextafter: %v", err)
	}
	if got := dst.Gauge("bins_open", "").Value(); got != math.Nextafter(1, 2) {
		t.Fatalf("gauge lost precision: %v", got)
	}
}

func TestRegistryRestoreRejectsMismatches(t *testing.T) {
	base := populatedRegistry().Snapshot()
	cases := []struct {
		name   string
		reg    func() *Registry
		mutate func(*Snapshot)
		want   string
	}{
		{
			name: "missing metric",
			reg: func() *Registry {
				r := sameShapeRegistry()
				r.Counter("extra_total", "")
				return r
			},
			want: "registry has",
		},
		{
			name: "unregistered metric",
			reg: func() *Registry {
				r := &Registry{}
				r.Counter("events_total", "")
				r.Gauge("bins_open", "")
				r.Counter("other", "")
				return r
			},
			want: "not registered",
		},
		{
			name: "kind mismatch",
			reg: func() *Registry {
				r := &Registry{}
				r.Gauge("events_total", "")
				r.Gauge("bins_open", "")
				r.Histogram("latency", "", 0.5, 1, 2)
				return r
			},
			want: "registered as",
		},
		{
			name:   "fractional counter",
			reg:    sameShapeRegistry,
			mutate: func(s *Snapshot) { s.Metrics[0].Value = 1.5 },
			want:   "non-integer",
		},
		{
			name:   "negative counter",
			reg:    sameShapeRegistry,
			mutate: func(s *Snapshot) { s.Metrics[0].Value = -1 },
			want:   "non-integer",
		},
		{
			name: "bounds mismatch",
			reg: func() *Registry {
				r := &Registry{}
				r.Counter("events_total", "")
				r.Gauge("bins_open", "")
				r.Histogram("latency", "", 0.5, 1, 3)
				return r
			},
			want: "differs from configured",
		},
		{
			name: "bucket count mismatch",
			reg: func() *Registry {
				r := &Registry{}
				r.Counter("events_total", "")
				r.Gauge("bins_open", "")
				r.Histogram("latency", "", 0.5, 1)
				return r
			},
			want: "snapshot buckets",
		},
		{
			name:   "decreasing cumulative counts",
			reg:    sameShapeRegistry,
			mutate: func(s *Snapshot) { s.Metrics[2].Buckets[1].Count = 0 },
			want:   "decrease",
		},
		{
			name:   "count disagrees with +Inf bucket",
			reg:    sameShapeRegistry,
			mutate: func(s *Snapshot) { s.Metrics[2].Count++ },
			want:   "+Inf bucket holds",
		},
		{
			name:   "last bound not +Inf",
			reg:    sameShapeRegistry,
			mutate: func(s *Snapshot) { s.Metrics[2].Buckets[3].UpperBound = 9 },
			want:   "want +Inf",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.Metrics = append([]Metric(nil), base.Metrics...)
			for i := range s.Metrics {
				s.Metrics[i].Buckets = append([]Bucket(nil), base.Metrics[i].Buckets...)
			}
			if tc.mutate != nil {
				tc.mutate(&s)
			}
			r := tc.reg()
			err := r.Restore(s)
			if err == nil {
				t.Fatalf("Restore accepted a %s snapshot", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// A rejected snapshot must leave the registry untouched.
			if got := r.Snapshot(); !snapshotIsZero(got) {
				t.Fatalf("rejected restore mutated the registry: %+v", got)
			}
		})
	}
}

func snapshotIsZero(s Snapshot) bool {
	for _, m := range s.Metrics {
		if m.Value != 0 || m.Count != 0 || m.Sum != 0 {
			return false
		}
		for _, b := range m.Buckets {
			if b.Count != 0 {
				return false
			}
		}
	}
	return true
}

func TestRegistryUnmarshalAuxRejectsGarbage(t *testing.T) {
	r := sameShapeRegistry()
	if err := r.UnmarshalAux([]byte("{not json")); err == nil {
		t.Fatal("UnmarshalAux accepted garbage")
	}
	if err := r.UnmarshalAux([]byte(`{"metrics":[]}`)); err == nil {
		t.Fatal("UnmarshalAux accepted an empty snapshot against a populated registry")
	}
}
