// Package parallel provides the deterministic fan-out machinery the
// experiment harness uses to run thousands of independent simulation trials
// across CPU cores.
//
// Determinism contract: MapReduce assigns each trial an index-derived seed
// and collects results by index, so the outcome is bit-identical regardless
// of GOMAXPROCS or scheduling order. Errors cancel the remaining work and the
// first error (by trial index) is returned, again deterministically.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Options configures a parallel map.
type Options struct {
	// Workers is the number of concurrent workers; <= 0 means GOMAXPROCS.
	Workers int
	// Context cancels outstanding work early; nil means Background.
	Context context.Context
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Map runs fn(i) for i in [0, n) across workers and returns the results in
// index order. If any invocation fails, Map cancels the rest and returns the
// error with the smallest index (deterministic even under races).
func Map[T any](n int, fn func(i int) (T, error), opts Options) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative n %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers := opts.workers()
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(opts.context())
	defer cancel()

	type failure struct {
		idx int
		err error
	}
	var (
		mu       sync.Mutex
		firstErr *failure
	)
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < firstErr.idx {
			firstErr = &failure{idx: i, err: err}
		}
		cancel()
	}

	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				if ctx.Err() != nil {
					return
				}
				v, err := fn(i)
				if err != nil {
					record(i, err)
					return
				}
				results[i] = v
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(indices)
	wg.Wait()

	if firstErr != nil {
		return nil, fmt.Errorf("parallel: trial %d: %w", firstErr.idx, firstErr.err)
	}
	if err := opts.context().Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Reduce folds results in index order: deterministic regardless of execution
// order. It is a convenience over Map + sequential fold.
func Reduce[T, A any](n int, fn func(i int) (T, error), fold func(acc A, v T) A, init A, opts Options) (A, error) {
	vs, err := Map(n, fn, opts)
	if err != nil {
		var zero A
		return zero, err
	}
	acc := init
	for _, v := range vs {
		acc = fold(acc, v)
	}
	return acc, nil
}

// SeedFor derives the per-trial RNG seed used throughout the experiment
// harness: a SplitMix64 step over (base, index), so neighbouring trials get
// decorrelated streams and the mapping is stable across releases.
func SeedFor(base int64, index int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
