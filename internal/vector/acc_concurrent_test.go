package vector

import (
	"sync"
	"testing"
)

// TestAccConcurrentReads pins the documented read contract: Round (and
// IsZero) only read the accumulator and write locals, so any number of
// goroutines may round one Acc concurrently — the experiment runner's shards
// read bin loads while other readers snapshot them. Writes (Add/Sub/Reset)
// still require external synchronisation. Run under -race.
func TestAccConcurrentReads(t *testing.T) {
	var a Acc
	// A mix that exercises multiple limbs and cancellation.
	for i := 0; i < 1000; i++ {
		a.Add(1.0 / 3.0)
		a.Add(1e-12)
		a.Sub(0.25)
	}
	want := a.Round()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 2000; k++ {
				if got := a.Round(); got != want {
					t.Errorf("concurrent Round = %v, want %v", got, want)
					return
				}
				if a.IsZero() {
					t.Error("IsZero = true on non-zero accumulator")
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := a.Round(); got != want {
		t.Errorf("Round after concurrent reads = %v, want %v", got, want)
	}
}
