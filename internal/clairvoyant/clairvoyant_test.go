package clairvoyant

import (
	"math"
	"math/rand"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

func TestRequiresClairvoyance(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.5))
	for _, p := range []core.Policy{NewDurationClassFit(0), NewAlignedBestFit()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic without clairvoyance", p.Name())
				}
			}()
			_, _ = core.Simulate(l, p) // no WithClairvoyance
		}()
	}
}

func TestDurationClassFitSeparatesClasses(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.2))   // class 0
	l.Add(0, 100, v(0.2)) // class 7
	res, err := core.Simulate(l, NewDurationClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2 (classes must not mix)", res.BinsOpened)
	}
	p0, _ := res.PlacementOf(0)
	p1, _ := res.PlacementOf(1)
	if p0.BinID == p1.BinID {
		t.Error("different classes share a bin")
	}
}

func TestDurationClassFitPacksWithinClass(t *testing.T) {
	l := item.NewList(1)
	for i := 0; i < 4; i++ {
		l.Add(0, 10, v(0.2)) // all same class
	}
	res, err := core.Simulate(l, NewDurationClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 1 {
		t.Errorf("BinsOpened = %d, want 1", res.BinsOpened)
	}
}

func TestAlignedBestFitPrefersAlignedBin(t *testing.T) {
	// Bin 0 closes at t=10, bin 1 at t=100. An item departing at 11 should
	// join bin 0 even though bin 1 is more loaded.
	l := item.NewList(1)
	l.Add(0, 10, v(0.3))  // bin 0
	l.Add(0, 100, v(0.5)) // doesn't fit? 0.3+0.5=0.8 fits! Need conflict.
	res, err := core.Simulate(l, NewAlignedBestFit(), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Build a forced two-bin configuration instead.
	l2 := item.NewList(1)
	l2.Add(0, 10, v(0.6))  // bin 0, closes 10
	l2.Add(0, 100, v(0.6)) // bin 1, closes 100
	l2.Add(1, 11, v(0.3))  // aligned with bin 0
	res2, err := core.Simulate(l2, NewAlignedBestFit(), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res2.PlacementOf(2)
	if p.BinID != 0 {
		t.Errorf("aligned item in bin %d, want 0", p.BinID)
	}
	// And an item departing at 99 should join bin 1.
	l2.Add(1, 99, v(0.3))
	res3, err := core.Simulate(l2, NewAlignedBestFit(), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	p3, _ := res3.PlacementOf(3)
	if p3.BinID != 1 {
		t.Errorf("late item in bin %d, want 1", p3.BinID)
	}
}

func TestNewRegistry(t *testing.T) {
	for _, n := range []string{"DurationClassFit", "WindowedClassFit", "AlignedBestFit"} {
		p, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// mixedDurations builds a workload with strongly bimodal durations where
// alignment matters: short (1) and long (64) items interleaved.
func mixedDurations(seed int64, n int) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(1)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 200)
		dur := 1.0
		if r.Intn(2) == 0 {
			dur = 64
		}
		l.Add(a, a+dur, v((1+math.Floor(r.Float64()*30))/100))
	}
	return l
}

// TestClairvoyanceHelpsOnInterleavedBursts: deterministic alignment
// scenario. Each burst interleaves short (duration 1) and long (duration 64)
// items of size 0.5: First Fit pairs each short with a long, holding two bins
// open for 64 per burst; DurationClassFit pairs shorts with shorts and longs
// with longs, paying 1 + 64 per burst.
func TestClairvoyanceHelpsOnInterleavedBursts(t *testing.T) {
	l := item.NewList(1)
	for burst := 0; burst < 5; burst++ {
		a := float64(burst * 1000) // far apart: bursts independent
		l.Add(a, a+1, v(0.5))
		l.Add(a, a+64, v(0.5))
		l.Add(a, a+1, v(0.5))
		l.Add(a, a+64, v(0.5))
	}
	ff, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	dc, err := core.Simulate(l, NewDurationClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ff.Cost-5*128) > 1e-9 {
		t.Errorf("FirstFit cost = %v, want %v", ff.Cost, 5*128)
	}
	if math.Abs(dc.Cost-5*65) > 1e-9 {
		t.Errorf("DurationClassFit cost = %v, want %v", dc.Cost, 5*65)
	}
	if dc.Cost >= ff.Cost {
		t.Errorf("DurationClassFit (%v) should beat FirstFit (%v) here", dc.Cost, ff.Cost)
	}
}

// TestClairvoyantCostsRespectLowerBounds: extensions still obey LB ≤ cost.
func TestClairvoyantCostsRespectLowerBounds(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		l := mixedDurations(seed, 200)
		lb := lowerbound.Compute(l).Best()
		for _, p := range []core.Policy{NewDurationClassFit(0), NewAlignedBestFit()} {
			res, err := core.Simulate(l, p, core.WithClairvoyance())
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < lb-1e-6 {
				t.Errorf("%s: cost %v below LB %v", p.Name(), res.Cost, lb)
			}
		}
	}
}
