package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dvbp/internal/cli"
	"dvbp/internal/core"
)

// buildBinary compiles the package at dir into a temp binary once per test.
func buildBinary(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", dir, err, out)
	}
	return bin
}

func buildServer(t *testing.T) string { return buildBinary(t, ".", "dvbpserver") }

// runningServer is one dvbpserver child process plus its captured streams.
type runningServer struct {
	cmd    *exec.Cmd
	base   string // http://host:port
	stderr *bytes.Buffer
}

// startServer launches the built binary on addr (may be "127.0.0.1:0") over
// data and waits for the listening line; the bound URL comes from stdout so
// port 0 works.
func startServer(t *testing.T, bin, addr, data string, extra ...string) *runningServer {
	t.Helper()
	args := append([]string{"-addr", addr, "-data", data}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	rs := &runningServer{cmd: cmd, stderr: &bytes.Buffer{}}
	cmd.Stderr = rs.stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	br := bufio.NewReader(stdout)
	lineCh := make(chan string, 1)
	go func() {
		line, _ := br.ReadString('\n')
		lineCh <- line
		io.Copy(io.Discard, br) // keep the pipe drained
	}()
	select {
	case line := <-lineCh:
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("no listening line from dvbpserver: %q\nstderr: %s", line, rs.stderr)
		}
		rs.base = strings.Fields(line[i:])[0]
	case <-time.After(30 * time.Second):
		t.Fatalf("dvbpserver produced no listening line\nstderr: %s", rs.stderr)
	}
	return rs
}

// stop sends sig and returns the exit code.
func (rs *runningServer) stop(t *testing.T, sig os.Signal) int {
	t.Helper()
	if err := rs.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	err := rs.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("wait: %v", err)
	return -1
}

// httpJSON performs one request and decodes the JSON response into out (when
// non-nil), returning the status code.
func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// TestServeSmoke is the end-to-end happy path make serve-smoke pins: boot on
// an ephemeral port, create a tenant, place an item, read it back, and drain
// cleanly on SIGTERM with exit 0.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildServer(t)
	data := t.TempDir()
	rs := startServer(t, bin, "127.0.0.1:0", data)

	if code := httpJSON(t, "GET", rs.base+"/healthz", nil, nil); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if code := httpJSON(t, "GET", rs.base+"/readyz", nil, nil); code != 200 {
		t.Fatalf("readyz: %d", code)
	}
	cfg := map[string]any{"name": "smoke", "dim": 2, "policy": "MoveToFront"}
	if code := httpJSON(t, "POST", rs.base+"/v1/tenants", cfg, nil); code != 201 {
		t.Fatalf("create tenant: %d", code)
	}
	var place struct {
		Item int `json:"item"`
		Bin  int `json:"bin"`
	}
	body := map[string]any{"arrival": 0.0, "departure": 2.0, "size": []float64{0.4, 0.3}}
	if code := httpJSON(t, "POST", rs.base+"/v1/tenants/smoke/place", body, &place); code != 200 {
		t.Fatalf("place: %d", code)
	}
	if place.Item != 0 {
		t.Fatalf("first item acked as %d", place.Item)
	}
	var got struct {
		Total int `json:"total"`
	}
	if code := httpJSON(t, "GET", rs.base+"/v1/tenants/smoke/placements", nil, &got); code != 200 || got.Total != 1 {
		t.Fatalf("placements: code %d total %d", code, got.Total)
	}

	if code := rs.stop(t, syscall.SIGTERM); code != cli.ExitOK {
		t.Fatalf("SIGTERM exit %d, want %d\nstderr: %s", code, cli.ExitOK, rs.stderr)
	}
	if !strings.Contains(rs.stderr.String(), "draining") || !strings.Contains(rs.stderr.String(), "drained") {
		t.Fatalf("drain notices missing from stderr: %s", rs.stderr)
	}

	// Restart over the same data directory: the tenant and its acknowledged
	// placement must be back, identically, before /readyz said so.
	rs2 := startServer(t, bin, "127.0.0.1:0", data)
	if code := httpJSON(t, "GET", rs2.base+"/readyz", nil, nil); code != 200 {
		t.Fatalf("readyz after restart: %d", code)
	}
	var after struct {
		Total      int `json:"total"`
		Placements []struct {
			Item int `json:"item"`
			Bin  int `json:"bin"`
		} `json:"placements"`
	}
	if code := httpJSON(t, "GET", rs2.base+"/v1/tenants/smoke/placements", nil, &after); code != 200 {
		t.Fatalf("placements after restart: %d", code)
	}
	if after.Total != 1 || after.Placements[0].Item != place.Item || after.Placements[0].Bin != place.Bin {
		t.Fatalf("recovered placements %+v do not match acknowledged item=%d bin=%d", after, place.Item, place.Bin)
	}
	if code := rs2.stop(t, syscall.SIGTERM); code != cli.ExitOK {
		t.Fatalf("restarted server SIGTERM exit %d\nstderr: %s", code, rs2.stderr)
	}
}

// TestListPolicySpellingsRoundTrip pins the CLI surface to the engine's
// vocabulary: -list prints exactly core.PolicySpellings, and every printed
// spelling round-trips through the server's create-tenant admission.
func TestListPolicySpellingsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildServer(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(out), "\n"), "\n")
	if want := core.PolicySpellings(); !equalStrings(lines, want) {
		t.Fatalf("-list printed %v, want core.PolicySpellings() = %v", lines, want)
	}

	// Each line is "Spelling | alias | alias (note)"; every spelling outside
	// the note must be accepted verbatim by create-tenant. Placeholders such
	// as HarmonicFit-<K> get a concrete parameter substituted.
	var spellings []string
	for _, line := range lines {
		if i := strings.Index(line, "("); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Split(line, "|") {
			tok = strings.TrimSpace(tok)
			tok = strings.ReplaceAll(tok, "<K>", "4")
			tok = strings.ReplaceAll(tok, "<p>", "2")
			if tok != "" {
				spellings = append(spellings, tok)
			}
		}
	}

	rs := startServer(t, bin, "127.0.0.1:0", t.TempDir())
	for i, spelling := range spellings {
		cfg := map[string]any{"name": fmt.Sprintf("p%d", i), "dim": 2, "policy": spelling, "seed": 1}
		if code := httpJSON(t, "POST", rs.base+"/v1/tenants", cfg, nil); code != 201 {
			t.Fatalf("spelling %q from -list refused by create-tenant: %d", spelling, code)
		}
	}
	if code := httpJSON(t, "POST", rs.base+"/v1/tenants",
		map[string]any{"name": "bogus", "dim": 2, "policy": "NoSuchFit"}, nil); code != 400 {
		t.Fatalf("bogus policy: %d, want 400", code)
	}
	if code := rs.stop(t, syscall.SIGTERM); code != cli.ExitOK {
		t.Fatalf("SIGTERM exit %d\nstderr: %s", code, rs.stderr)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// freeAddr reserves an ephemeral port and releases it, so a restarted server
// can reuse the same address.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestSIGKILLRestartUnderLoad is the process-level torture: dvbpbench
// -serve-load drives several tenants while the server is SIGKILLed mid-load
// and restarted on the same address and data directory. The load driver
// rides through the outage on retries and must finish cleanly; -serve-verify
// then audits that every acknowledgement handed out — before or after the
// kill — names a placement the restarted server still serves identically.
func TestSIGKILLRestartUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	srvBin := buildServer(t)
	benchBin := buildBinary(t, "../dvbpbench", "dvbpbench")
	data := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr
	acks := filepath.Join(t.TempDir(), "acks.jsonl")

	rs := startServer(t, srvBin, addr, data, "-sync-every", "8")

	load := exec.Command(benchBin,
		"-serve-load", base, "-serve-acks", acks,
		"-serve-tenants", "3", "-serve-items", "200", "-seed", "7")
	var loadOut bytes.Buffer
	load.Stdout, load.Stderr = &loadOut, &loadOut
	if err := load.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		load.Process.Kill()
		load.Wait()
	}()

	// Let the driver get a meaningful way in, then kill without ceremony.
	waitForAcks(t, acks, 60)
	rs.cmd.Process.Kill()
	rs.cmd.Wait()

	rs2 := startServer(t, srvBin, addr, data, "-sync-every", "8")
	if err := load.Wait(); err != nil {
		t.Fatalf("load driver failed across the restart: %v\n%s", err, &loadOut)
	}
	if !strings.Contains(loadOut.String(), "acknowledgements across 3 tenants") {
		t.Fatalf("load driver summary missing:\n%s", &loadOut)
	}

	verify := exec.Command(benchBin, "-serve-verify", base, "-serve-acks", acks)
	out, err := verify.CombinedOutput()
	if err != nil {
		t.Fatalf("serve-verify failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "intact") {
		t.Fatalf("serve-verify did not report success:\n%s", out)
	}

	if code := rs2.stop(t, syscall.SIGTERM); code != cli.ExitOK {
		t.Fatalf("restarted server SIGTERM exit %d\nstderr: %s", code, rs2.stderr)
	}
}

// waitForAcks blocks until the acks file holds at least n lines.
func waitForAcks(t *testing.T, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil {
			if bytes.Count(data, []byte{'\n'}) >= n {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("acks file %s never reached %d lines", path, n)
}
