package core

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// BinResolver maps a bin ID to the live *Bin of the engine being restored.
// It returns nil for IDs that are not currently open.
type BinResolver func(id int) *Bin

// PolicyStateCodec is the optional checkpointing extension of Policy. A
// policy that carries per-run state beyond its construction parameters
// (Move To Front's recency order, Next Fit's cursor, Random Fit's RNG
// position, Harmonic Fit's class index) must implement it to participate in
// engine Snapshot/Restore; the engine refuses to snapshot a stateful policy
// that does not.
//
// MarshalPolicyState serialises the state reached at an event boundary;
// UnmarshalPolicyState rebuilds exactly that state on a freshly Reset
// policy, resolving bin IDs against the restored engine's open set. The
// contract is behavioural bit-identity: after restore, the policy must make
// the same decisions as the original would from the same point. Codecs must
// treat their input as untrusted (checkpoints can be corrupted on disk) and
// return an error — never panic — on malformed bytes.
//
// Policies whose fields are pure configuration (Best/Worst Fit's load
// measure, Harmonic Fit's K) need not serialise them: restore reconstructs
// the policy from its registry Name first, which round-trips configuration
// (see TestRegistryRoundTrip).
type PolicyStateCodec interface {
	MarshalPolicyState() ([]byte, error)
	UnmarshalPolicyState(data []byte, resolve BinResolver) error
}

// statelessPolicy marks policies that carry no per-run state at all, so the
// snapshot layer can accept them without a codec even though their type has
// configuration fields (Best/Worst Fit's measure is config, not state).
type statelessPolicy interface {
	policyIsStateless()
}

// CheckpointablePolicy reports whether p can participate in engine
// Snapshot/Restore: it implements PolicyStateCodec, is marked stateless, or
// has a zero-sized type (no fields, hence no state).
func CheckpointablePolicy(p Policy) bool {
	if _, ok := p.(PolicyStateCodec); ok {
		return true
	}
	if _, ok := p.(statelessPolicy); ok {
		return true
	}
	return !guardable(p)
}

// marshalPolicyState extracts p's serialised state (nil for stateless
// policies), failing for stateful policies without a codec.
func marshalPolicyState(p Policy) ([]byte, error) {
	if c, ok := p.(PolicyStateCodec); ok {
		return c.MarshalPolicyState()
	}
	if !CheckpointablePolicy(p) {
		return nil, fmt.Errorf("core: policy %s carries per-run state but implements no PolicyStateCodec; it cannot be checkpointed", p.Name())
	}
	return nil, nil
}

// unmarshalPolicyState applies serialised state to a freshly Reset p.
func unmarshalPolicyState(p Policy, data []byte, resolve BinResolver) error {
	if c, ok := p.(PolicyStateCodec); ok {
		return c.UnmarshalPolicyState(data, resolve)
	}
	if len(data) != 0 {
		return fmt.Errorf("core: snapshot carries %d bytes of policy state but %s implements no PolicyStateCodec", len(data), p.Name())
	}
	if !CheckpointablePolicy(p) {
		return fmt.Errorf("core: policy %s carries per-run state but implements no PolicyStateCodec; it cannot be restored", p.Name())
	}
	return nil
}

// (*BestFit) and (*WorstFit) hold only their load measure — configuration
// that NewPolicy(Name()) reconstructs — so they are stateless for
// checkpointing purposes.
func (*BestFit) policyIsStateless()  {}
func (*WorstFit) policyIsStateless() {}

// consumeVarint reads one varint from data, returning the value and the
// remainder; ok=false on truncated or oversized input.
func consumeVarint(data []byte) (v int64, rest []byte, ok bool) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, false
	}
	return v, data[n:], true
}

// consumeUvarint is consumeVarint for unsigned values.
func consumeUvarint(data []byte) (v uint64, rest []byte, ok bool) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, false
	}
	return v, data[n:], true
}

// MarshalPolicyState implements PolicyStateCodec: the open-bin IDs in
// recency order, front (most recently used) first.
func (mf *MoveToFront) MarshalPolicyState() ([]byte, error) {
	var ids []int64
	for i := mf.head; i != -1; i = mf.nodes[i].next {
		ids = append(ids, int64(mf.nodes[i].bin.ID))
	}
	out := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		out = binary.AppendVarint(out, id)
	}
	return out, nil
}

// UnmarshalPolicyState implements PolicyStateCodec.
func (mf *MoveToFront) UnmarshalPolicyState(data []byte, resolve BinResolver) error {
	mf.Reset()
	n, data, ok := consumeUvarint(data)
	if !ok {
		return fmt.Errorf("core: MoveToFront state: truncated length")
	}
	if n > uint64(len(data)) { // every ID takes >= 1 byte
		return fmt.Errorf("core: MoveToFront state: %d IDs in %d bytes", n, len(data))
	}
	ids := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		var id int64
		id, data, ok = consumeVarint(data)
		if !ok {
			return fmt.Errorf("core: MoveToFront state: truncated ID %d/%d", i, n)
		}
		ids = append(ids, int(id))
	}
	if len(data) != 0 {
		return fmt.Errorf("core: MoveToFront state: %d trailing bytes", len(data))
	}
	// Rebuild back-to-front so pushFront reproduces the recency order.
	for i := len(ids) - 1; i >= 0; i-- {
		b := resolve(ids[i])
		if b == nil {
			return fmt.Errorf("core: MoveToFront state references unknown bin %d", ids[i])
		}
		if _, dup := mf.pos[b.ID]; dup {
			return fmt.Errorf("core: MoveToFront state lists bin %d twice", b.ID)
		}
		mf.nodes = append(mf.nodes, mtfNode{bin: b})
		idx := len(mf.nodes) - 1
		mf.pos[b.ID] = idx
		mf.pushFront(idx)
	}
	return nil
}

// MarshalPolicyState implements PolicyStateCodec: the current-bin cursor.
func (nf *NextFit) MarshalPolicyState() ([]byte, error) {
	return binary.AppendVarint(nil, int64(nf.currentID)), nil
}

// UnmarshalPolicyState implements PolicyStateCodec. The cursor may name a
// bin that has already closed (Next Fit notices lazily on its next Select),
// so the ID is not resolved against the open set.
func (nf *NextFit) UnmarshalPolicyState(data []byte, _ BinResolver) error {
	nf.Reset()
	id, rest, ok := consumeVarint(data)
	if !ok || len(rest) != 0 {
		return fmt.Errorf("core: NextFit state: malformed cursor (%d bytes)", len(data))
	}
	if id < -1 {
		return fmt.Errorf("core: NextFit state: invalid cursor %d", id)
	}
	nf.currentID = int(id)
	return nil
}

// MarshalPolicyState implements PolicyStateCodec: the seed and the number of
// RNG draws consumed so far. Restore re-seeds and fast-forwards, which
// reproduces the generator state exactly (each draw advances the underlying
// source by one step regardless of how it is consumed).
func (rf *RandomFit) MarshalPolicyState() ([]byte, error) {
	out := binary.AppendVarint(nil, rf.seed)
	return binary.AppendUvarint(out, rf.src.draws), nil
}

// UnmarshalPolicyState implements PolicyStateCodec.
func (rf *RandomFit) UnmarshalPolicyState(data []byte, _ BinResolver) error {
	seed, data, ok := consumeVarint(data)
	if !ok {
		return fmt.Errorf("core: RandomFit state: truncated seed")
	}
	draws, rest, ok := consumeUvarint(data)
	if !ok || len(rest) != 0 {
		return fmt.Errorf("core: RandomFit state: malformed draw count")
	}
	rf.seed = seed
	rf.Reset()
	for i := uint64(0); i < draws; i++ {
		rf.src.Uint64()
	}
	rf.src.draws = draws
	return nil
}

// MarshalPolicyState implements PolicyStateCodec: (bin ID, class) pairs in
// ascending bin-ID order.
func (h *HarmonicFit) MarshalPolicyState() ([]byte, error) {
	ids := make([]int, 0, len(h.classOfBin))
	for id := range h.classOfBin {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		out = binary.AppendVarint(out, int64(id))
		out = binary.AppendVarint(out, int64(h.classOfBin[id]))
	}
	return out, nil
}

// UnmarshalPolicyState implements PolicyStateCodec.
func (h *HarmonicFit) UnmarshalPolicyState(data []byte, resolve BinResolver) error {
	h.Reset()
	n, data, ok := consumeUvarint(data)
	if !ok {
		return fmt.Errorf("core: HarmonicFit state: truncated length")
	}
	if n > uint64(len(data)) { // every pair takes >= 2 bytes
		return fmt.Errorf("core: HarmonicFit state: %d pairs in %d bytes", n, len(data))
	}
	for i := uint64(0); i < n; i++ {
		var id, class int64
		id, data, ok = consumeVarint(data)
		if !ok {
			return fmt.Errorf("core: HarmonicFit state: truncated pair %d/%d", i, n)
		}
		class, data, ok = consumeVarint(data)
		if !ok {
			return fmt.Errorf("core: HarmonicFit state: truncated pair %d/%d", i, n)
		}
		if resolve(int(id)) == nil {
			return fmt.Errorf("core: HarmonicFit state references unknown bin %d", id)
		}
		if class < 1 || class > int64(h.K) {
			return fmt.Errorf("core: HarmonicFit state: bin %d has class %d outside [1, %d]", id, class, h.K)
		}
		if _, dup := h.classOfBin[int(id)]; dup {
			return fmt.Errorf("core: HarmonicFit state lists bin %d twice", id)
		}
		h.classOfBin[int(id)] = int(class)
	}
	if len(data) != 0 {
		return fmt.Errorf("core: HarmonicFit state: %d trailing bytes", len(data))
	}
	return nil
}
