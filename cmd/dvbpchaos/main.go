// Command dvbpchaos runs policy comparisons under failure: server crashes
// from deterministic schedules (seeded MTBF or explicit traces), eviction and
// retry of displaced items, and finite fleets with rejection or an admission
// queue. For every policy it simulates the same workload twice — once clean,
// once under the fault plan — and reports the robustness overhead next to
// the failure accounting.
//
// All schedules are pure functions of their seeds: the same flags produce
// byte-identical output, so runs are replayable and diffable.
//
// Examples:
//
//	dvbpchaos -d 2 -n 1000 -mtbf 50 -retry backoff:1:30 -all
//	dvbpchaos -trace trace.csv -crash-trace '0@5,2+1.5' -policy ff
//	dvbpchaos -n 500 -mtbf 20 -max-servers 10 -queue-deadline 5 -json
//	dvbpchaos -all -mtbf 30 -metrics -timeout 30s
//	dvbpchaos -mtbf 40 -migrate drain-emptiest -migrate-period 5 -migrate-moves 4
//	dvbpchaos -mtbf 50 -checkpoint-dir /tmp/ck -disk-faults 'sync:2:eio,write:5:enospc'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dvbp/internal/cli"
	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/migrate"
	"dvbp/internal/persist"
	"dvbp/internal/report"
	"dvbp/internal/vfs"
	"dvbp/internal/workload"
)

// run is one policy's clean-vs-faulty comparison, shaped for JSON output.
type run struct {
	Policy        string  `json:"policy"`
	CleanCost     float64 `json:"clean_cost"`
	FaultyCost    float64 `json:"faulty_cost"`
	Overhead      float64 `json:"overhead"`
	Crashes       int     `json:"crashes"`
	Evictions     int     `json:"evictions"`
	Retries       int     `json:"retries"`
	ItemsLost     int     `json:"items_lost"`
	Migrations    int     `json:"migrations,omitempty"`
	MigrationCost float64 `json:"migration_cost,omitempty"`
	BinsDrained   int     `json:"bins_drained,omitempty"`
	Rejected      int     `json:"rejected"`
	TimedOut      int     `json:"timed_out"`
	QueuedPlaced  int     `json:"queued_placed"`
	QueueDelay    float64 `json:"queue_delay"`
	LostUsageTime float64 `json:"lost_usage_time"`
	Served        int     `json:"served"`
}

type output struct {
	Dim       int     `json:"d"`
	Items     int     `json:"items"`
	Span      float64 `json:"span"`
	Mu        float64 `json:"mu"`
	Faults    string  `json:"faults"`
	Migration string  `json:"migration,omitempty"`
	Runs      []run   `json:"runs"`
	// Partial is set when a -timeout cancelled the sweep before every
	// policy finished; Runs holds the completed prefix.
	Partial bool `json:"partial,omitempty"`
}

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (.csv or .json); overrides the generator flags")
		d         = flag.Int("d", 2, "dimensions (generator)")
		n         = flag.Int("n", 1000, "items (generator)")
		mu        = flag.Int("mu", 10, "max item duration (generator)")
		horizon   = flag.Int("T", 1000, "span (generator)")
		binSize   = flag.Int("B", 100, "bin capacity granularity (generator)")
		seed      = flag.Int64("seed", 1, "generator / RandomFit seed")
		policy    = flag.String("policy", "MoveToFront", core.PolicyFlagUsage())
		all       = flag.Bool("all", false, "run the seven standard policies plus the fragmentation-aware family")
		jsonOut   = flag.Bool("json", false, "emit the comparison as JSON instead of a table")
		metricsF  = flag.Bool("metrics", false, "dump JSON + Prometheus metric snapshots per policy")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = none); partial results are flushed on expiry")
		ckptDir   = flag.String("checkpoint-dir", "", "persist the faulty run (WAL + snapshots) into this directory; single policy only")
		ckptEvery = flag.Int64("checkpoint-every", 64, "events between automatic snapshots when -checkpoint-dir is set (0 = WAL only)")
		restoreF  = flag.Bool("restore", false, "resume the faulty run persisted in -checkpoint-dir instead of starting fresh")
		killAt    = flag.Int64("kill-at", -1, "crash on purpose (exit 3, no cleanup) once this many events are persisted; requires -checkpoint-dir")
		compactF  = flag.Bool("compact", false, "compact the WAL after each automatic snapshot; requires -checkpoint-dir")
		diskF     = flag.String("disk-faults", "", "inject disk faults into the persisted run: comma-separated kind:n:errno triples (kinds "+strings.Join(vfs.SortedKinds(), "/")+", errnos eio/enospc), e.g. 'sync:2:eio,write:5:enospc'; requires -checkpoint-dir")
	)
	var spec faults.Spec
	spec.Register(flag.CommandLine, "")
	var mig migrate.Config
	mig.Register(flag.CommandLine, "")
	flag.Parse()

	plan, err := spec.Plan()
	if err != nil {
		fatal(err)
	}
	migOpt, err := mig.Option()
	if err != nil {
		fatal(err)
	}
	if !plan.Active() {
		fatal(fmt.Errorf("no fault plan configured: set -mtbf, -crash-trace or -max-servers (this command exists to run chaos; for fault-free runs use dvbpsim)"))
	}
	if (*killAt >= 0 || *restoreF || *diskF != "" || *compactF) && *ckptDir == "" {
		fatal(fmt.Errorf("-kill-at, -restore, -disk-faults and -compact act on a persisted run: set -checkpoint-dir"))
	}
	diskPlan, err := vfs.ParsePlan(*diskF)
	if err != nil {
		fatal(err)
	}
	if *ckptDir != "" && *all {
		fatal(fmt.Errorf("-checkpoint-dir persists a single run; it cannot be combined with -all"))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	l, err := loadInstance(*tracePath, *d, *n, *mu, *horizon, *binSize, *seed)
	if err != nil {
		fatal(err)
	}

	var policies []core.Policy
	if *all {
		policies = append(core.StandardPolicies(*seed), core.FragmentationAwarePolicies(*seed)...)
	} else {
		p, err := core.NewPolicy(*policy, *seed)
		if err != nil {
			fatal(err)
		}
		policies = []core.Policy{p}
	}

	out := output{Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu(),
		Faults: plan.String(), Migration: mig.String()}
	collectors := make(map[string]*metrics.Collector)
	for _, p := range policies {
		if ctx.Err() != nil {
			out.Partial = true
			break
		}
		// Migration, unlike the fault plan, applies to both legs: the
		// overhead column then isolates the cost of failures alone.
		clean, err := core.Simulate(l, p, migOpt)
		if err != nil {
			fatal(err)
		}
		p.Reset()
		opts := append(plan.Options(), migOpt)
		if *metricsF {
			// A manual clock keeps the snapshot free of wall-time noise:
			// chaos runs care about simulated time, and the output stays
			// byte-identical across replays.
			col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
			collectors[p.Name()] = col
			opts = append(opts, core.WithObserver(col))
		}
		var col *metrics.Collector
		if *metricsF {
			col = collectors[p.Name()]
		}
		faulty, err := faultyRun(ctx, l, p, opts, chaosRun{
			dir: *ckptDir, every: *ckptEvery, compact: *compactF, restore: *restoreF, killAt: *killAt,
			seed: *seed, faults: plan.String(), migration: mig.String(), col: col, diskPlan: diskPlan,
		})
		if err != nil {
			fatal(err)
		}
		served := 0
		for _, o := range faulty.Outcomes {
			if o == core.OutcomeServed {
				served++
			}
		}
		out.Runs = append(out.Runs, run{
			Policy:        faulty.Algorithm,
			CleanCost:     clean.Cost,
			FaultyCost:    faulty.Cost,
			Overhead:      faulty.Cost / clean.Cost,
			Crashes:       faulty.Crashes,
			Evictions:     faulty.Evictions,
			Retries:       faulty.Retries,
			ItemsLost:     faulty.ItemsLost,
			Migrations:    faulty.Migrations,
			MigrationCost: faulty.MigrationCost,
			BinsDrained:   faulty.BinsDrained,
			Rejected:      faulty.Rejected,
			TimedOut:      faulty.TimedOut,
			QueuedPlaced:  faulty.QueuedPlaced,
			QueueDelay:    faulty.QueueDelay,
			LostUsageTime: faulty.LostUsageTime,
			Served:        served,
		})
	}

	if err := flush(out, *jsonOut); err != nil {
		fatal(err)
	}
	if *metricsF {
		for _, p := range policies {
			col, ok := collectors[p.Name()]
			if !ok {
				continue
			}
			label := ""
			if len(policies) > 1 {
				label = p.Name()
			}
			if err := report.WriteMetrics(os.Stdout, label, col.Snapshot()); err != nil {
				fatal(err)
			}
		}
	}
	if out.Partial {
		fmt.Fprintf(os.Stderr, "dvbpchaos: timeout after %v: %d/%d policies completed (partial results above)\n",
			*timeout, len(out.Runs), len(policies))
		os.Exit(cli.ExitTimeout)
	}
}

// chaosRun shapes the faulty leg of one comparison: plain in-memory
// simulation, or one persisted through internal/persist — which is what
// -kill-at crashes mid-flight and -restore brings back.
type chaosRun struct {
	dir       string
	every     int64
	compact   bool
	restore   bool
	killAt    int64
	seed      int64
	faults    string
	migration string
	col       *metrics.Collector
	diskPlan  []vfs.Fault
}

// faultyRun executes the faulty leg. In checkpoint mode every committed event
// is appended to the WAL before the next one runs; -kill-at then dies with
// os.Exit, deliberately skipping every flush and sync, so the directory is
// left exactly as a SIGKILL would leave it.
func faultyRun(ctx context.Context, l *item.List, p core.Policy, opts []core.Option, rc chaosRun) (*core.Result, error) {
	if rc.dir == "" {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return core.Simulate(l, p, opts...)
	}
	pcfg := persist.Config{Dir: rc.dir, Every: rc.every, Compact: rc.compact}
	if rc.col != nil {
		pcfg.Aux = []persist.AuxCodec{rc.col.Registry()}
	}
	var inj *vfs.Injector
	if len(rc.diskPlan) > 0 {
		// Disk chaos rides the same seam the tests use: an injector over the
		// real filesystem fails the planned operations, and the persist
		// layer's absorb-and-retry machinery has to ride them out. The final
		// result must be byte-identical to a clean run — the plan summary on
		// stderr shows what was survived.
		inj = vfs.NewInjector(vfs.OS{}, rc.diskPlan...)
		pcfg.FS = inj
	}
	var s *persist.Session
	if rc.restore {
		rec, err := persist.Recover(l, pcfg, opts...)
		if err != nil {
			return nil, err
		}
		for _, ce := range rec.Corruptions {
			fmt.Fprintln(os.Stderr, "dvbpchaos: tolerated:", ce)
		}
		fmt.Fprintf(os.Stderr, "dvbpchaos: resumed at event %d (snapshot %d + %d replayed)\n",
			rec.Session.Logged(), rec.SnapshotSeq, rec.Replayed)
		s = rec.Session
	} else {
		e, err := core.NewEngine(l, p, opts...)
		if err != nil {
			return nil, err
		}
		meta := persist.NewRunMeta(l, p.Name(), rc.seed, rc.faults)
		meta.Migration = rc.migration
		s, err = persist.Begin(e, meta, pcfg)
		if err != nil {
			e.Close()
			return nil, err
		}
	}
	for {
		if rc.killAt >= 0 && s.Logged() >= rc.killAt {
			fmt.Fprintf(os.Stderr, "dvbpchaos: kill-at %d reached: dying without cleanup\n", rc.killAt)
			os.Exit(cli.ExitKilled)
		}
		if err := ctx.Err(); err != nil {
			s.Close()
			return nil, err
		}
		_, ok, err := s.Step()
		if err != nil {
			s.Close()
			return nil, err
		}
		if !ok {
			if inj != nil || rc.compact {
				st := s.TakeIOStats()
				fmt.Fprintf(os.Stderr, "dvbpchaos: disk weather: %d absorbed sync failures, %d skipped checkpoints, %d compactions, %d bytes reclaimed\n",
					st.SyncFailures, st.CheckpointsSkipped, st.Compactions, st.ReclaimedBytes)
			}
			return s.Finish()
		}
	}
}

// flush writes the comparison, as JSON or as the human-readable header+table.
func flush(out output, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("instance: d=%d items=%d span=%.4g mu=%.4g\n", out.Dim, out.Items, out.Span, out.Mu)
	fmt.Printf("faults: %s\n", out.Faults)
	if out.Migration != "" {
		fmt.Printf("migration: %s\n", out.Migration)
	}
	headers := []string{
		"policy", "clean cost", "faulty cost", "overhead",
		"crashes", "evict", "retry", "lost",
	}
	if out.Migration != "" {
		headers = append(headers, "migr", "drained", "migr cost")
	}
	headers = append(headers, "reject", "timeout", "served")
	t := &report.Table{Headers: headers}
	for _, r := range out.Runs {
		row := []string{r.Policy,
			fmt.Sprintf("%.4f", r.CleanCost), fmt.Sprintf("%.4f", r.FaultyCost),
			fmt.Sprintf("%.4fx", r.Overhead),
			fmt.Sprintf("%d", r.Crashes), fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.ItemsLost),
		}
		if out.Migration != "" {
			row = append(row, fmt.Sprintf("%d", r.Migrations),
				fmt.Sprintf("%d", r.BinsDrained), fmt.Sprintf("%.4f", r.MigrationCost))
		}
		row = append(row, fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.TimedOut),
			fmt.Sprintf("%d/%d", r.Served, out.Items))
		t.AddRow(row...)
	}
	fmt.Print(t.Render())
	return nil
}

func loadInstance(path string, d, n, mu, horizon, binSize int, seed int64) (*item.List, error) {
	if path == "" {
		return workload.Uniform(workload.UniformConfig{D: d, N: n, Mu: mu, T: horizon, B: binSize}, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return workload.ReadJSON(f)
	}
	return workload.ReadCSV(f)
}

func fatal(err error) {
	cli.Fatal("dvbpchaos", err)
}
