package persist

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// corpusSeeds builds the committed seed inputs for both fuzzers: a valid
// encoding of every payload family plus a few deliberately damaged ones. The
// same bytes are written to testdata/fuzz/ by TestFuzzCorpusCommitted so `go
// test -fuzz` starts from meaningful structures, not just empty input.
func walCorpusSeeds() [][]byte {
	rec := AppendEventRecord(nil, core.EventRecord{
		Seq: 7, Class: core.EventArrival, Time: 3.5, ItemID: 12, BinID: 2, Placed: true, Opened: true,
	})
	crash := AppendEventRecord(nil, core.EventRecord{Seq: 9, Class: core.EventCrash, Time: 11.25, ItemID: -1, BinID: 4})
	l := item.NewList(2)
	l.Add(0, 4, vector.Vector{0.5, 0.25})
	meta := encodeMeta(NewRunMeta(l, "FirstFit", 1, "mtbf(20)"))
	aux := encodeAux("metrics", []byte(`{"metrics":[]}`))
	return [][]byte{
		rec,
		crash,
		meta,
		aux,
		rec[:len(rec)-2],     // truncated
		append(rec, 1, 2, 3), // trailing bytes
		{0xFF, 0x00, 0x01},   // junk
		{},                   // empty
	}
}

func snapshotCorpusSeeds() [][]byte {
	l := item.NewList(2)
	l.Add(0, 6, vector.Vector{0.5, 0.25})
	l.Add(1, 3, vector.Vector{0.25, 0.5})
	l.Add(2, 5, vector.Vector{0.125, 0.125})
	p, err := core.NewPolicy("MoveToFront", 1)
	if err != nil {
		panic(err)
	}
	e, err := core.NewEngine(l, p)
	if err != nil {
		panic(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		if _, ok, err := e.Step(); err != nil || !ok {
			panic(fmt.Sprintf("seed engine step %d: ok=%v err=%v", i, ok, err))
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		panic(err)
	}
	enc := EncodeSnapshot(snap)
	return [][]byte{
		enc,
		enc[:len(enc)/2],  // truncated
		append(enc, 0xAA), // trailing byte
		{0x01},            // bare version byte
		{},                // empty
	}
}

func opLogCorpusSeeds() [][]byte {
	itemOp := AppendItemOp(nil, 2.5, 7.75, vector.Vector{0.5, 0.125})
	advance := AppendAdvanceOp(nil, 9.5)
	marker := encodeCompactMarker(40)
	return [][]byte{
		itemOp,
		advance,
		marker,
		itemOp[:len(itemOp)-3],           // truncated item
		append(advance, 0xEE),            // trailing byte
		AppendAdvanceOp(nil, math.NaN()), // NaN advance must be rejected
		{byte(OpItem)},                   // kind byte only
		{0x7A, 0x01, 0x02},               // unknown kind
		{},                               // empty
		append([]byte{compactMarkerByte}, 0x80, 2), // non-canonical varint
	}
}

// FuzzOpLogDecode: the op-log record codec and the compaction marker parser
// must survive arbitrary bytes — no panic, only *CorruptionError — and any
// accepted payload must re-encode bit-identically (the bijection CompactOpLog
// relies on when it rewrites item records positionally).
func FuzzOpLogDecode(f *testing.F) {
	for _, seed := range opLogCorpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, d := range []int{1, 2, 4} {
			op, err := DecodeOp(data, d)
			if err != nil {
				var ce *CorruptionError
				if !errors.As(err, &ce) {
					t.Fatalf("DecodeOp(d=%d): non-corruption error %T: %v", d, err, err)
				}
				continue
			}
			var got []byte
			switch op.Kind {
			case OpItem:
				got = AppendItemOp(nil, op.Arrival, op.Departure, op.Size)
			case OpAdvance:
				got = AppendAdvanceOp(nil, op.To)
			default:
				t.Fatalf("DecodeOp(d=%d) accepted unknown kind %#x", d, op.Kind)
			}
			if string(got) != string(data) {
				t.Fatalf("re-encode mismatch (d=%d): % x -> %+v -> % x", d, data, op, got)
			}
		}
		if base, err := decodeCompactMarker(data); err == nil {
			if got := encodeCompactMarker(base); string(got) != string(data) {
				t.Fatalf("marker re-encode mismatch: % x -> %d -> % x", data, base, got)
			}
		} else {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("decodeCompactMarker: non-corruption error %T: %v", err, err)
			}
		}
	})
}

// FuzzWALDecode: every decoder that consumes WAL record payloads must survive
// arbitrary bytes — no panic, no runaway allocation, and any failure surfaced
// as a structured *CorruptionError.
func FuzzWALDecode(f *testing.F) {
	for _, seed := range walCorpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if rec, err := DecodeEventRecord(data); err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("DecodeEventRecord: non-corruption error %T: %v", err, err)
			}
		} else {
			// A successful decode must re-encode to the same bytes: the codec
			// is a bijection on its valid domain.
			if got := AppendEventRecord(nil, rec); string(got) != string(data) {
				t.Fatalf("re-encode mismatch: % x -> %+v -> % x", data, rec, got)
			}
		}
		if _, err := decodeMeta(data); err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("decodeMeta: non-corruption error %T: %v", err, err)
			}
		}
		if _, _, err := decodeAux(data); err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("decodeAux: non-corruption error %T: %v", err, err)
			}
		}
	})
}

// FuzzSnapshotDecode: the snapshot codec must survive arbitrary bytes — no
// panic, only *CorruptionError — and anything it does accept must re-encode
// to the identical payload.
func FuzzSnapshotDecode(f *testing.F) {
	for _, seed := range snapshotCorpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("DecodeSnapshot: non-corruption error %T: %v", err, err)
			}
			return
		}
		if got := EncodeSnapshot(snap); string(got) != string(data) {
			t.Fatalf("re-encode mismatch on %d-byte accepted payload", len(data))
		}
	})
}

// TestFuzzCorpusCommitted keeps the committed seed corpus under testdata/fuzz
// in sync with the generators above: any drift (format change, new seed)
// rewrites the files and fails once, so the refreshed corpus gets committed.
func TestFuzzCorpusCommitted(t *testing.T) {
	write := func(fuzzName string, seeds [][]byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			// Go's seed corpus file format, version 1.
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			old, err := os.ReadFile(path)
			if err == nil && string(old) == content {
				continue
			}
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Errorf("%s: corpus file rewritten; commit the update", path)
		}
	}
	write("FuzzOpLogDecode", opLogCorpusSeeds())
	write("FuzzWALDecode", walCorpusSeeds())
	write("FuzzSnapshotDecode", snapshotCorpusSeeds())
}
