package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// SessionConfig models cloud-gaming / VM-request sessions: a Poisson arrival
// process over a horizon, durations from a bounded heavy-tailed distribution
// (most sessions short, a few long — the regime where μ is large), and sizes
// drawn per "instance type" with one dominant resource plus correlated
// secondary demands.
type SessionConfig struct {
	// D is the number of resource dimensions.
	D int
	// Horizon is the length of the arrival window.
	Horizon float64
	// Rate is the Poisson arrival rate (expected sessions per unit time).
	Rate float64
	// MeanDuration is the mean session length; durations are Pareto-like
	// with shape Alpha, truncated to [MinDuration, MaxDuration].
	MeanDuration float64
	// Alpha is the Pareto tail index (>1); 2–3 is typical for session data.
	Alpha float64
	// MinDuration and MaxDuration truncate the duration distribution.
	MinDuration, MaxDuration float64
	// Types are the instance types to draw from. If empty, DefaultTypes(D)
	// is used.
	Types []InstanceType
}

// InstanceType describes a request class: a nominal demand vector and a
// jitter fraction applied independently per dimension.
type InstanceType struct {
	Name string
	// Demand is the nominal size vector (components in (0,1]).
	Demand vector.Vector
	// Jitter is the relative uniform perturbation (0 = exact sizes).
	Jitter float64
	// Weight is the sampling weight among types.
	Weight float64
}

// DefaultTypes returns a small catalogue modelled on cloud instance families:
// compute-heavy, memory-heavy, GPU/accelerator-heavy, and balanced-small.
// Demands are laid out over d dimensions by rotating the dominant axis.
func DefaultTypes(d int) []InstanceType {
	if d < 1 {
		panic("workload: DefaultTypes needs d >= 1")
	}
	mk := func(name string, dom int, high, low float64, w float64) InstanceType {
		v := vector.Uniform(d, low)
		v[dom%d] = high
		return InstanceType{Name: name, Demand: v, Jitter: 0.2, Weight: w}
	}
	return []InstanceType{
		mk("compute.large", 0, 0.45, 0.10, 3),
		mk("memory.large", 1, 0.40, 0.08, 2),
		mk("gpu.xlarge", 2, 0.70, 0.15, 1),
		{Name: "balanced.small", Demand: vector.Uniform(d, 0.08), Jitter: 0.5, Weight: 4},
	}
}

// Validate checks the configuration, rejecting non-finite parameters so a
// NaN/Inf cannot propagate into sampler draws.
func (c SessionConfig) Validate() error {
	for name, x := range map[string]float64{
		"Horizon": c.Horizon, "Rate": c.Rate, "MeanDuration": c.MeanDuration,
		"Alpha": c.Alpha, "MinDuration": c.MinDuration, "MaxDuration": c.MaxDuration,
	} {
		if !finite(x) {
			return fmt.Errorf("workload: %s = %g is not finite", name, x)
		}
	}
	switch {
	case c.D < 1:
		return fmt.Errorf("workload: D = %d, want >= 1", c.D)
	case c.Horizon <= 0:
		return fmt.Errorf("workload: Horizon = %g, want > 0", c.Horizon)
	case c.Rate <= 0:
		return fmt.Errorf("workload: Rate = %g, want > 0", c.Rate)
	case c.Alpha <= 1:
		return fmt.Errorf("workload: Alpha = %g, want > 1", c.Alpha)
	case c.MinDuration <= 0 || c.MaxDuration < c.MinDuration:
		return fmt.Errorf("workload: duration range [%g,%g] invalid", c.MinDuration, c.MaxDuration)
	case c.MeanDuration < c.MinDuration || c.MeanDuration > c.MaxDuration:
		return fmt.Errorf("workload: MeanDuration %g outside [%g,%g]", c.MeanDuration, c.MinDuration, c.MaxDuration)
	}
	for i, tp := range c.Types {
		if tp.Demand.Dim() != c.D {
			return fmt.Errorf("workload: type %d dimension %d, want %d", i, tp.Demand.Dim(), c.D)
		}
		if tp.Weight <= 0 {
			return fmt.Errorf("workload: type %d non-positive weight", i)
		}
		if !finite(tp.Jitter) || tp.Jitter < 0 || tp.Jitter > 1 {
			return fmt.Errorf("workload: type %d jitter %g, want [0,1]", i, tp.Jitter)
		}
		for j, s := range tp.Demand {
			if !finite(s) || s <= 0 || s > 1 {
				return fmt.Errorf("workload: type %d demand[%d] = %g, want (0,1]", i, j, s)
			}
		}
	}
	return nil
}

// Sessions generates a session trace. It is deterministic in (cfg, seed).
func Sessions(cfg SessionConfig, seed int64) (*item.List, error) {
	if cfg.D < 1 {
		return nil, fmt.Errorf("workload: D = %d, want >= 1", cfg.D)
	}
	if cfg.Types == nil {
		cfg.Types = DefaultTypes(cfg.D)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	totalW := 0.0
	for _, tp := range cfg.Types {
		totalW += tp.Weight
	}

	l := item.NewList(cfg.D)
	t := 0.0
	for {
		t += r.ExpFloat64() / cfg.Rate
		if t >= cfg.Horizon {
			break
		}
		dur := boundedPareto(r, cfg.Alpha, cfg.MinDuration, cfg.MaxDuration, cfg.MeanDuration)
		tp := pickType(r, cfg.Types, totalW)
		size := vector.New(cfg.D)
		for j := range size {
			jit := 1 + tp.Jitter*(2*r.Float64()-1)
			size[j] = clamp01(tp.Demand[j] * jit)
		}
		if err := checkItem(l.Len(), t, dur, size); err != nil {
			return nil, err
		}
		l.Add(t, t+dur, size)
	}
	if l.Len() == 0 {
		// Degenerate draw (tiny horizon·rate); add one deterministic session
		// so downstream code never sees an empty instance.
		tp := cfg.Types[0]
		l.Add(0, cfg.MinDuration, tp.Demand.Clone())
	}
	return l, nil
}

// boundedPareto draws a Pareto(alpha) sample scaled to hit roughly the target
// mean, truncated to [lo, hi].
func boundedPareto(r *rand.Rand, alpha, lo, hi, mean float64) float64 {
	// Unbounded Pareto with x_m chosen so E[X] = mean: x_m = mean(α-1)/α.
	xm := mean * (alpha - 1) / alpha
	if xm < lo {
		xm = lo
	}
	x := xm / math.Pow(1-r.Float64(), 1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

func pickType(r *rand.Rand, types []InstanceType, totalW float64) InstanceType {
	x := r.Float64() * totalW
	for _, tp := range types {
		if x < tp.Weight {
			return tp
		}
		x -= tp.Weight
	}
	return types[len(types)-1]
}

func clamp01(x float64) float64 {
	if x < 1e-6 {
		return 1e-6
	}
	if x > 1 {
		return 1
	}
	return x
}

// DiurnalConfig superimposes a day/night modulation on the Poisson arrival
// rate, modelling the load cycles that motivate usage-time billing studies.
type DiurnalConfig struct {
	Session SessionConfig
	// Period is the cycle length (e.g. 24 "hours").
	Period float64
	// PeakFactor scales the rate at the peak relative to the configured
	// average (>= 1). The trough gets the mirror-image factor so the mean
	// rate is preserved.
	PeakFactor float64
}

// Diurnal generates a session trace whose arrival intensity follows
// rate·(1 + (PeakFactor-1)·sin²(πt/Period)) via thinning.
func Diurnal(cfg DiurnalConfig, seed int64) (*item.List, error) {
	if !finite(cfg.Period) || !finite(cfg.PeakFactor) || cfg.Period <= 0 || cfg.PeakFactor < 1 {
		return nil, fmt.Errorf("workload: diurnal Period %g / PeakFactor %g invalid", cfg.Period, cfg.PeakFactor)
	}
	if cfg.Session.D < 1 {
		return nil, fmt.Errorf("workload: D = %d, want >= 1", cfg.Session.D)
	}
	if cfg.Session.Types == nil {
		cfg.Session.Types = DefaultTypes(cfg.Session.D)
	}
	if err := cfg.Session.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	sc := cfg.Session
	maxRate := sc.Rate * cfg.PeakFactor
	totalW := 0.0
	for _, tp := range sc.Types {
		totalW += tp.Weight
	}
	l := item.NewList(sc.D)
	t := 0.0
	for {
		t += r.ExpFloat64() / maxRate
		if t >= sc.Horizon {
			break
		}
		intensity := sc.Rate * (1 + (cfg.PeakFactor-1)*sq(math.Sin(math.Pi*t/cfg.Period)))
		if r.Float64()*maxRate > intensity {
			continue // thinned
		}
		dur := boundedPareto(r, sc.Alpha, sc.MinDuration, sc.MaxDuration, sc.MeanDuration)
		tp := pickType(r, sc.Types, totalW)
		size := vector.New(sc.D)
		for j := range size {
			jit := 1 + tp.Jitter*(2*r.Float64()-1)
			size[j] = clamp01(tp.Demand[j] * jit)
		}
		if err := checkItem(l.Len(), t, dur, size); err != nil {
			return nil, err
		}
		l.Add(t, t+dur, size)
	}
	if l.Len() == 0 {
		tp := sc.Types[0]
		l.Add(0, sc.MinDuration, tp.Demand.Clone())
	}
	return l, nil
}

func sq(x float64) float64 { return x * x }
