// Package faults provides deterministic fault-injection schedules and retry
// policies for the packing engine (core.WithFaults) and the cloud simulator.
//
// The paper's model assumes a perfectly reliable, unbounded fleet. This
// package relaxes the reliability half: it decides when bins (servers) crash
// and how evicted items are re-dispatched. Everything here is a pure
// function of explicit configuration — no wall clock, no global RNG — so a
// run with the same workload seed and the same fault schedule is bit-for-bit
// reproducible.
//
// Two schedule families are provided:
//
//   - MTBF: every opened bin draws a time-to-failure from a seeded
//     exponential distribution (memoryless, the classic mean-time-between-
//     failures model). The draw depends only on (Seed, bin ID), so two
//     engines replaying the same run see identical crash times.
//   - Trace: an explicit list of crash events, absolute or relative to bin
//     opening, for scripted chaos experiments and regression tests.
//
// Retry policies cover the standard ladder: Immediate, Fixed delay, and
// capped exponential Backoff. ParseRetry and ParseTrace give the commands a
// shared flag syntax.
package faults
