package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", errors.New("boom"), ExitError},
		{"deadline", context.DeadlineExceeded, ExitTimeout},
		{"canceled", context.Canceled, ExitTimeout},
		{"wrapped deadline", fmt.Errorf("sweep: %w", context.DeadlineExceeded), ExitTimeout},
		{"deeply wrapped", fmt.Errorf("a: %w", fmt.Errorf("b: %w", context.Canceled)), ExitTimeout},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestExitCodesAreDistinct(t *testing.T) {
	codes := map[int]string{ExitOK: "ok", ExitError: "error", ExitTimeout: "timeout", ExitKilled: "killed"}
	if len(codes) != 4 {
		t.Fatalf("exit codes collide: %v", codes)
	}
}
