// Package vector implements the d-dimensional non-negative size vectors used
// throughout the MinUsageTime Dynamic Vector Bin Packing (DVBP) system.
//
// Items and bins have sizes in R^d (Section 2 of the paper). Bins are
// normalised to unit capacity 1^d, so a set of items fits in a bin exactly
// when the component-wise sum of their sizes is at most 1 in every dimension.
// The package provides the arithmetic the packing engine and the lower-bound
// machinery need: component-wise add/subtract, capacity ("fits") checks, and
// the L∞, L1 and Lp norms that define the Best Fit load measures and the
// Lemma 1 bounds.
//
// All operations treat vectors as immutable unless the method name says
// otherwise (AddInPlace, SubInPlace); in-place variants exist because the
// packing engine updates bin loads on the hot path.
package vector
