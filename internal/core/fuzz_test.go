package core

import (
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// FuzzSimulate decodes a byte string into an item list and checks the engine
// invariants hold for every policy: no error on valid input, cost ≥ span,
// every item placed exactly once, bin records consistent.
func FuzzSimulate(f *testing.F) {
	f.Add([]byte{10, 1, 5, 3, 20, 2, 7, 9, 50, 10, 1, 1})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		l := decodeInstance(data)
		if l == nil {
			return
		}
		for _, p := range append(StandardPolicies(1), FragmentationAwarePolicies(1)...) {
			res, err := Simulate(l, p)
			if err != nil {
				t.Fatalf("%s: %v on %v", p.Name(), err, l.Items)
			}
			if res.Cost < res.Span-1e-9 {
				t.Fatalf("%s: cost %v < span %v", p.Name(), res.Cost, res.Span)
			}
			if len(res.Placements) != l.Len() {
				t.Fatalf("%s: %d placements for %d items", p.Name(), len(res.Placements), l.Len())
			}
			if len(res.Bins) != res.BinsOpened {
				t.Fatalf("%s: bin record mismatch", p.Name())
			}
		}
	})
}

// FuzzSimulateFaulty decodes an item list plus a fault configuration from the
// byte string and differentially tests the fast engine against the naive
// faulty reference: identical Results (including failure accounting), item
// conservation, and structural bin invariants under crash/evict/retry and
// admission control.
func FuzzSimulateFaulty(f *testing.F) {
	f.Add([]byte{3, 9, 1, 2, 10, 1, 5, 3, 20, 2, 7, 9, 50, 10, 1, 1})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		seed := int64(data[0])
		mean := 1 + float64(data[1]%24)
		retryWait := float64(data[2]%8) / 2
		maxBins := int(data[3] % 5) // 0 = unbounded
		queue := data[3]&0x80 != 0
		l := decodeInstance(data[4:])
		if l == nil {
			return
		}
		opts := []Option{WithFaults(hashInj{seed: seed, mean: mean}, fixedRetry{wait: retryWait})}
		if maxBins > 0 {
			opts = append(opts, WithMaxBins(maxBins))
			if queue {
				opts = append(opts, WithAdmissionQueue(float64(data[1]%10)))
			}
		}
		for _, p := range append(StandardPolicies(seed), FragmentationAwarePolicies(seed)...) {
			res, err := Simulate(l, p, opts...)
			if err != nil {
				t.Fatalf("%s: %v on %v", p.Name(), err, l.Items)
			}
			ref, err := SimulateFaultyReference(l, p, opts...)
			if err != nil {
				t.Fatalf("%s: reference: %v on %v", p.Name(), err, l.Items)
			}
			faultyResultsEqual(t, p.Name(), res, ref)
			checkFaultStructure(t, p.Name(), res, maxBins)
		}
	})
}

// checkFaultStructure asserts the structural invariants any faulty run must
// satisfy: interval sanity per bin, placements inside their bin's lifetime,
// fleet cap respected, and conservation of items across terminal outcomes.
func checkFaultStructure(t *testing.T, label string, res *Result, maxBins int) {
	t.Helper()
	if len(res.Bins) != res.BinsOpened {
		t.Fatalf("%s: %d bin records for %d opened", label, len(res.Bins), res.BinsOpened)
	}
	byID := make(map[int]BinUsage, len(res.Bins))
	for i, b := range res.Bins {
		if b.ClosedAt < b.OpenedAt {
			t.Fatalf("%s: bin %d closed before it opened: %+v", label, b.BinID, b)
		}
		if i > 0 && res.Bins[i-1].BinID >= b.BinID {
			t.Fatalf("%s: bin records not ascending by ID", label)
		}
		if i > 0 && res.Bins[i-1].OpenedAt > b.OpenedAt {
			t.Fatalf("%s: bin %d opened before its predecessor", label, b.BinID)
		}
		byID[b.BinID] = b
	}
	for _, p := range res.Placements {
		b, ok := byID[p.BinID]
		if !ok {
			t.Fatalf("%s: placement into unknown bin %d", label, p.BinID)
		}
		if p.Time < b.OpenedAt || p.Time > b.ClosedAt {
			t.Fatalf("%s: placement at %v outside bin %d lifetime [%v,%v]",
				label, p.Time, p.BinID, b.OpenedAt, b.ClosedAt)
		}
	}
	if maxBins > 0 && res.MaxConcurrentBins > maxBins {
		t.Fatalf("%s: peak %d bins exceeds cap %d", label, res.MaxConcurrentBins, maxBins)
	}
	counts := map[Outcome]int{}
	for _, o := range res.Outcomes {
		counts[o]++
	}
	if got := counts[OutcomeServed] + res.ItemsLost + res.Rejected + res.TimedOut; got != res.Items {
		t.Fatalf("%s: conservation violated: %d terminal items of %d", label, got, res.Items)
	}
}

// decodeInstance maps fuzz bytes onto a small valid instance: groups of four
// bytes become (arrival, duration, size0, size1) with all values scaled into
// range. Returns nil when the input is too short.
func decodeInstance(data []byte) *item.List {
	if len(data) < 4 {
		return nil
	}
	l := item.NewList(2)
	for i := 0; i+3 < len(data) && l.Len() < 64; i += 4 {
		arrival := float64(data[i] % 32)
		duration := 1 + float64(data[i+1]%16)
		s0 := float64(1+data[i+2]%100) / 100
		s1 := float64(1+data[i+3]%100) / 100
		l.Add(arrival, arrival+duration, vector.Of(s0, s1))
	}
	return l
}
