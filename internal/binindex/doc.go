// Package binindex implements the sub-linear indexed bin store behind the
// engine's Any Fit policies: a self-balancing order-statistic tree over the
// open bins, augmented with residual-capacity pruning metadata, that answers
// every policy's Select as a single "leftmost feasible entry in key order"
// query.
//
// # One query, seven policies
//
// Each Any Fit policy of the source paper reduces its Select to a
// feasibility-filtered extremum over the open bins, and every such extremum
// is the *first feasible entry* under a policy-specific total order:
//
//	First Fit      key (0, +binID)       — earliest-opened feasible bin
//	Last Fit       key (0, -binID)       — latest-opened feasible bin
//	Best Fit (w)   key (-w(bin), binID)  — max load measure, ties to lowest ID
//	Worst Fit (w)  key (+w(bin), binID)  — min load measure, ties to lowest ID
//	Move To Front  recency keys          — most recently packed feasible bin
//	Random Fit     key (0, +binID)       — reservoir sample over AscendFeasible
//
// Keys are (float64, int64) pairs compared lexicographically. Because bin IDs
// are unique, keys are unique, and the first feasible entry in key order is
// exactly the bin the policy's linear scan would have chosen — including its
// tie-breaking — so indexed and scanned decisions are bit-identical (the
// contract DESIGN.md §11 specifies and the differential suites enforce).
//
// # Structure and complexity
//
// The store is an AVL tree in a flat node arena (int32 links, free-list
// recycling), so steady-state Insert/Remove/Update/queries allocate nothing.
// Every node carries order-statistic counts plus two pruning augmentations
// over its subtree:
//
//   - minLoad: the component-wise minimum load vector. A subtree can contain
//     a feasible bin only if minLoad itself fits the item; because float64
//     rounding is monotone, this prune is exact — it never skips a feasible
//     bin (DESIGN.md §11 gives the argument).
//   - a 64-bucket residual-capacity bitmask: bins are bucketed by their
//     maximum per-dimension residual, and a subtree whose occupied buckets
//     all lie below the item's largest component cannot fit it. The mask is
//     a conservative O(1) pre-filter in front of the O(d) minLoad check.
//
// FirstFeasible therefore runs in O(d·log n) guaranteed for d = 1 (the
// minLoad prune is exact and sufficient in one dimension) and degrades
// gracefully for d ≥ 2, where component-wise pruning can admit false
// positives: worst case O(d·n), in practice near-logarithmic (the fleet
// benchmarks in BENCH_core.json pin the measured behaviour).
//
// The engine owns index maintenance (insert on open, update on pack/depart,
// remove on close/crash, rebuild on checkpoint restore); policies only issue
// queries. See core.IndexedPolicy for the binding contract.
package binindex
