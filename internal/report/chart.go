package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one line on a Chart: points (X[i], Y[i]) with optional symmetric
// error bars YErr[i] (nil for none).
type Series struct {
	Name string
	X    []float64
	Y    []float64
	YErr []float64
}

// Chart is a line chart with optional log-scaled x axis (the paper's Figure 4
// sweeps μ over {1,2,5,10,100,200}, best viewed in log-x).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	LogX   bool
	// Width and Height are the SVG canvas size; zero means 720x480.
	Width, Height int
}

// palette holds distinguishable stroke colours for up to ten series.
var palette = []string{
	"#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
	"#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
}

// SVG renders the chart as a standalone SVG document.
func (c *Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 480
	}
	const (
		padL = 64.0
		padR = 150.0
		padT = 40.0
		padB = 48.0
	)
	plotW := float64(w) - padL - padR
	plotH := float64(h) - padT - padB

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := c.tx(s.X[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			lo, hi := s.Y[i], s.Y[i]
			if s.YErr != nil {
				lo -= s.YErr[i]
				hi += s.YErr[i]
			}
			if lo < ymin {
				ymin = lo
			}
			if hi > ymax {
				ymax = hi
			}
		}
	}
	if math.IsInf(xmin, 1) { // no data
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little y headroom.
	yr := ymax - ymin
	ymin -= 0.05 * yr
	ymax += 0.05 * yr

	px := func(x float64) float64 { return padL + (c.tx(x)-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return padT + (ymax-y)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="24" font-size="16" font-weight="bold">%s</text>`+"\n", padL, esc(c.Title))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", padL, padT, padL, padT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", padL, padT+plotH, padL+plotW, padT+plotH)
	// Y ticks (5).
	for i := 0; i <= 5; i++ {
		y := ymin + float64(i)/5*(ymax-ymin)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", padL, py(y), padL+plotW, py(y))
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%.3g</text>`+"\n", padL-6, py(y)+4, y)
	}
	// X ticks from union of series X values (dedup).
	ticks := c.xTicks()
	for _, x := range ticks {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%g</text>`+"\n", px(x), padT+plotH+16, x)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", px(x), padT+plotH, px(x), padT+plotH+4)
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", padL+plotW/2, float64(h)-8, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="16" y="%g" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
			padT+plotH/2, padT+plotH/2, esc(c.YLabel))
	}

	for si, s := range c.Series {
		col := palette[si%len(palette)]
		// Error bars first (under the line).
		if s.YErr != nil {
			for i := range s.X {
				x := px(s.X[i])
				fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-opacity="0.5"/>`+"\n",
					x, py(s.Y[i]-s.YErr[i]), x, py(s.Y[i]+s.YErr[i]), col)
			}
		}
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.Join(pts, " "), col)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), col)
		}
		// Legend.
		ly := padT + float64(si)*18
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n",
			padL+plotW+10, ly, padL+plotW+34, ly, col)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", padL+plotW+40, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// tx applies the x-axis transform.
func (c *Chart) tx(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return 0
		}
		return math.Log10(x)
	}
	return x
}

// xTicks returns the sorted deduplicated union of series x values.
func (c *Chart) xTicks() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range c.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
