package core

import (
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// FuzzSimulate decodes a byte string into an item list and checks the engine
// invariants hold for every policy: no error on valid input, cost ≥ span,
// every item placed exactly once, bin records consistent.
func FuzzSimulate(f *testing.F) {
	f.Add([]byte{10, 1, 5, 3, 20, 2, 7, 9, 50, 10, 1, 1})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		l := decodeInstance(data)
		if l == nil {
			return
		}
		for _, p := range StandardPolicies(1) {
			res, err := Simulate(l, p)
			if err != nil {
				t.Fatalf("%s: %v on %v", p.Name(), err, l.Items)
			}
			if res.Cost < res.Span-1e-9 {
				t.Fatalf("%s: cost %v < span %v", p.Name(), res.Cost, res.Span)
			}
			if len(res.Placements) != l.Len() {
				t.Fatalf("%s: %d placements for %d items", p.Name(), len(res.Placements), l.Len())
			}
			if len(res.Bins) != res.BinsOpened {
				t.Fatalf("%s: bin record mismatch", p.Name())
			}
		}
	})
}

// decodeInstance maps fuzz bytes onto a small valid instance: groups of four
// bytes become (arrival, duration, size0, size1) with all values scaled into
// range. Returns nil when the input is too short.
func decodeInstance(data []byte) *item.List {
	if len(data) < 4 {
		return nil
	}
	l := item.NewList(2)
	for i := 0; i+3 < len(data) && l.Len() < 64; i += 4 {
		arrival := float64(data[i] % 32)
		duration := 1 + float64(data[i+1]%16)
		s0 := float64(1+data[i+2]%100) / 100
		s1 := float64(1+data[i+3]%100) / 100
		l.Add(arrival, arrival+duration, vector.Of(s0, s1))
	}
	return l
}
