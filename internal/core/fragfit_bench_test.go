package core

import (
	"testing"

	"dvbp/internal/workload"
)

// BenchmarkFragmentationSweep tracks the fragmentation-aware policies'
// end-to-end throughput on the paper's workload model, indexed (the
// AscendFeasible feasibility-pruned path) against the linear oracle. Results
// feed BENCH_core.json (make bench-json).
func BenchmarkFragmentationSweep(b *testing.B) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 2000, Mu: 100, T: 1000, B: 100}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range FragmentationAwareNames() {
		for _, mode := range []struct {
			label string
			opts  []Option
		}{
			{"indexed", nil},
			{"linear", []Option{WithLinearSelect()}},
		} {
			b.Run(name+"/"+mode.label, func(b *testing.B) {
				p, err := NewPolicy(name, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				var cost float64
				for i := 0; i < b.N; i++ {
					res, err := Simulate(l, p, mode.opts...)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						cost = res.Cost
					} else if res.Cost != cost {
						b.Fatalf("cost drifted across runs: %g vs %g", res.Cost, cost)
					}
				}
				events := float64(2 * l.Len())
				b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}
