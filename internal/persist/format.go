package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// File layout
//
//	header  : magic [8] | version uint32 LE | kind uint32 LE
//	records : ( length uint32 LE | crc32c(payload) uint32 LE | payload )*
//
// The magic pins the file family, the version the record-level format, and
// the kind what the payloads mean (WAL vs snapshot). Every payload is guarded
// by its own CRC-32/Castagnoli, so a torn tail or a bit flip is detected at
// the first damaged record and everything before it remains trustworthy.

const (
	// formatVersion is the on-disk record format version.
	formatVersion = 1

	headerSize = 8 + 4 + 4
	frameSize  = 4 + 4

	// maxPayload bounds a single record so a corrupted length field cannot
	// drive a multi-gigabyte allocation before the checksum gets a chance to
	// reject it.
	maxPayload = 1 << 28
)

// magic identifies persist-layer files.
var magic = [8]byte{'D', 'V', 'B', 'P', 'P', 'E', 'R', 'S'}

// FileKind distinguishes the persisted file types.
type FileKind uint32

// The persisted file kinds.
const (
	// KindWAL is the write-ahead event log: a meta record followed by one
	// record per committed engine event.
	KindWAL FileKind = 1
	// KindSnapshot is a checkpoint: a meta record, the engine snapshot, and
	// any auxiliary state records.
	KindSnapshot FileKind = 2
	// KindOpLog is a dynamic run's operation log: a meta record followed by
	// one record per admitted client operation (item arrival or clock
	// advance). It is the durable source of the run's item list — the WAL
	// references items by ID, the op log holds their content.
	KindOpLog FileKind = 3
)

// castagnoli is the CRC-32/Castagnoli table (iSCSI polynomial; hardware
// accelerated on the platforms the runner targets).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendHeader appends the file header for the given kind.
func appendHeader(dst []byte, kind FileKind) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, formatVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(kind))
	return dst
}

// parseHeader validates the 16-byte file header.
func parseHeader(data []byte) (FileKind, *CorruptionError) {
	if len(data) < headerSize {
		return 0, &CorruptionError{Offset: 0, Record: -1, Reason: fmt.Sprintf("file is %d bytes, shorter than the %d-byte header", len(data), headerSize)}
	}
	if [8]byte(data[:8]) != magic {
		return 0, &CorruptionError{Offset: 0, Record: -1, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != formatVersion {
		return 0, &CorruptionError{Offset: 8, Record: -1, Reason: fmt.Sprintf("unsupported format version %d (supported: %d)", v, formatVersion)}
	}
	kind := FileKind(binary.LittleEndian.Uint32(data[12:16]))
	if kind != KindWAL && kind != KindSnapshot && kind != KindOpLog {
		return 0, &CorruptionError{Offset: 12, Record: -1, Reason: fmt.Sprintf("unknown file kind %d", uint32(kind))}
	}
	return kind, nil
}

// appendRecord frames one payload onto dst.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// scanRecords decodes the record region of a file (everything after the
// header). It returns every intact record with its byte offset, and — when
// the tail is torn or checksum-damaged — a CorruptionError describing the
// first defect. The returned payloads alias data.
func scanRecords(data []byte, base int64) (payloads [][]byte, offsets []int64, torn *CorruptionError) {
	off := int64(0)
	rec := 0
	for len(data) > 0 {
		if len(data) < frameSize {
			return payloads, offsets, &CorruptionError{Offset: base + off, Record: rec, Reason: fmt.Sprintf("torn frame: %d trailing bytes", len(data))}
		}
		n := binary.LittleEndian.Uint32(data)
		if n > maxPayload {
			return payloads, offsets, &CorruptionError{Offset: base + off, Record: rec, Reason: fmt.Sprintf("record length %d exceeds limit %d", n, maxPayload)}
		}
		if int(n) > len(data)-frameSize {
			return payloads, offsets, &CorruptionError{Offset: base + off, Record: rec, Reason: fmt.Sprintf("torn record: %d-byte payload, %d bytes left", n, len(data)-frameSize)}
		}
		want := binary.LittleEndian.Uint32(data[4:])
		payload := data[frameSize : frameSize+int(n)]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return payloads, offsets, &CorruptionError{Offset: base + off, Record: rec, Reason: fmt.Sprintf("checksum mismatch: stored %08x, computed %08x", want, got)}
		}
		payloads = append(payloads, payload)
		offsets = append(offsets, base+off)
		data = data[frameSize+int(n):]
		off += int64(frameSize + int(n))
		rec++
	}
	return payloads, offsets, nil
}
