package migrate

import (
	"math"
	"sort"

	"dvbp/internal/core"
	"dvbp/internal/metrics"
	"dvbp/internal/vector"
)

// pass is the shared scratch state of one planning pass: simulated bin loads
// that accumulate the plan's moves, the running budget, and the emitted plan.
// Feasibility is checked against plain-float simulated loads with no epsilon
// slack (load + size <= 1 exactly), strictly tighter than the engine's
// Eps-tolerant exact check, so a plan the simulation accepts cannot overflow
// when the engine applies it against the exact accumulator loads.
type pass struct {
	view   core.MigrationView
	budget core.MigrationBudget

	load     map[int][]float64 // bin ID -> simulated load
	received map[int]int       // bin ID -> staged moves into it
	moves    []core.MigrationMove
	cost     float64
}

func newPass(view core.MigrationView, budget core.MigrationBudget) *pass {
	p := &pass{
		view:     view,
		budget:   budget,
		load:     make(map[int][]float64, len(view.Bins)),
		received: make(map[int]int),
	}
	for _, b := range view.Bins {
		l := make([]float64, view.Dim)
		for j := range l {
			l[j] = b.LoadAt(j)
		}
		p.load[b.ID] = l
	}
	return p
}

// fits reports whether size fits the simulated residual of bin id.
func (p *pass) fits(id int, size vector.Vector) bool {
	l := p.load[id]
	for j, s := range size {
		if l[j]+s > 1 {
			return false
		}
	}
	return true
}

// moveCost is the budgeted cost of relocating itemID at the pass instant.
func (p *pass) moveCost(itemID int) float64 {
	return core.MigrationMoveCost(p.view.Size(itemID), p.view.Departure(itemID)-p.view.Now)
}

// withinBudget reports whether n more moves of total cost c still fit.
func (p *pass) withinBudget(n int, c float64) bool {
	if len(p.moves)+n > p.budget.MaxMoves {
		return false
	}
	return p.budget.MaxCost <= 0 || p.cost+c <= p.budget.MaxCost
}

// apply records a move and updates the simulated loads.
func (p *pass) apply(mv core.MigrationMove, cost float64) {
	size := p.view.Size(mv.ItemID)
	from, to := p.load[mv.From], p.load[mv.To]
	for j, s := range size {
		from[j] -= s
		to[j] += s
	}
	p.moves = append(p.moves, mv)
	p.received[mv.To]++
	p.cost += cost
}

// binItems returns a bin's active items, largest L1 size first (ties by
// ascending ID) — the order every planner tries to relocate them in, so the
// hardest item to place gets the most residual headroom.
func binItems(p *pass, b *core.Bin) []int {
	ids := b.ActiveItemIDs()
	sort.SliceStable(ids, func(i, j int) bool {
		si, sj := p.view.Size(ids[i]).SumNorm(), p.view.Size(ids[j]).SumNorm()
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// loadSum is the simulated L1 load of bin id.
func (p *pass) loadSum(id int) float64 {
	s := 0.0
	for _, v := range p.load[id] {
		s += v
	}
	return s
}

// drainMoves plans the full relocation of src's active items into the target
// set chosen by pickTarget, honouring the remaining budget. It returns
// ok=false (and leaves the pass untouched) when any item fits no target or
// the drain would blow the budget; on success the moves are applied to the
// pass. Draining is all-or-nothing because a partial drain closes nothing:
// the usage-time saving only materialises when the source empties.
func (p *pass) drainMoves(src *core.Bin, pickTarget func(itemID int, exclude map[int]bool) (int, bool), exclude map[int]bool) bool {
	items := binItems(p, src)
	if len(items) == 0 {
		return false
	}
	staged := make([]core.MigrationMove, 0, len(items))
	for _, id := range items {
		// apply() has already folded earlier staged moves into p.moves and
		// p.cost, so each step only asks for one more move's headroom.
		c := p.moveCost(id)
		if !p.withinBudget(1, c) {
			p.revert(staged)
			return false
		}
		to, ok := pickTarget(id, exclude)
		if !ok {
			p.revert(staged)
			return false
		}
		mv := core.MigrationMove{ItemID: id, From: src.ID, To: to}
		p.apply(mv, c)
		staged = append(staged, mv)
	}
	return true
}

// revert undoes staged moves applied by an abandoned drain attempt.
func (p *pass) revert(staged []core.MigrationMove) {
	for i := len(staged) - 1; i >= 0; i-- {
		mv := staged[i]
		size := p.view.Size(mv.ItemID)
		from, to := p.load[mv.From], p.load[mv.To]
		for j, s := range size {
			from[j] += s
			to[j] -= s
		}
		p.received[mv.To]--
		p.cost -= p.movesCost(mv)
	}
	p.moves = p.moves[:len(p.moves)-len(staged)]
}

func (p *pass) movesCost(mv core.MigrationMove) float64 { return p.moveCost(mv.ItemID) }

// DrainEmptiest consolidates by draining the emptiest bins first: sources are
// considered in ascending L1-load order, and each source is drained entirely
// (or skipped) into the fullest bins that fit — best-fit-decreasing in
// reverse. Every completed drain closes a bin at the pass instant instead of
// at its last departure, which is exactly the usage-time saving migration
// exists for.
type DrainEmptiest struct{}

// Name implements core.MigrationPlanner.
func (DrainEmptiest) Name() string { return "drain-emptiest" }

// PlanPass implements core.MigrationPlanner.
func (DrainEmptiest) PlanPass(view core.MigrationView, budget core.MigrationBudget) ([]core.MigrationMove, error) {
	if len(view.Bins) < 2 {
		return nil, nil
	}
	p := newPass(view, budget)
	sources := sortedBins(p, func(a, b *core.Bin) bool {
		sa, sb := p.loadSum(a.ID), p.loadSum(b.ID)
		if sa != sb {
			return sa < sb
		}
		return a.ID < b.ID
	})
	pickFullest := func(itemID int, exclude map[int]bool) (int, bool) {
		size := view.Size(itemID)
		best, bestSum, found := 0, -1.0, false
		for _, b := range view.Bins {
			if exclude[b.ID] || !p.fits(b.ID, size) {
				continue
			}
			if s := p.loadSum(b.ID); s > bestSum || (s == bestSum && b.ID < best) {
				best, bestSum, found = b.ID, s, true
			}
		}
		return best, found
	}
	drainGreedy(p, sources, pickFullest)
	return p.moves, nil
}

// FARBScore consolidates like DrainEmptiest but places each relocated item
// into the fitting bin minimising the FARB composite score of the
// post-placement residual (0.5·spread + 0.3·mean + 0.2·L2/√d — the same
// weights as the FARB packing policy), so drains also steer receiving bins
// toward balanced residual shapes.
type FARBScore struct{}

// Name implements core.MigrationPlanner.
func (FARBScore) Name() string { return "farb-score" }

// PlanPass implements core.MigrationPlanner.
func (FARBScore) PlanPass(view core.MigrationView, budget core.MigrationBudget) ([]core.MigrationMove, error) {
	if len(view.Bins) < 2 {
		return nil, nil
	}
	p := newPass(view, budget)
	sources := sortedBins(p, func(a, b *core.Bin) bool {
		sa, sb := p.loadSum(a.ID), p.loadSum(b.ID)
		if sa != sb {
			return sa < sb
		}
		return a.ID < b.ID
	})
	pickMinFARB := func(itemID int, exclude map[int]bool) (int, bool) {
		size := view.Size(itemID)
		best, bestScore, found := 0, 0.0, false
		for _, b := range view.Bins {
			if exclude[b.ID] || !p.fits(b.ID, size) {
				continue
			}
			s := farbScoreOf(p.load[b.ID], size)
			if !found || s < bestScore || (s == bestScore && b.ID < best) {
				best, bestScore, found = b.ID, s, true
			}
		}
		return best, found
	}
	drainGreedy(p, sources, pickMinFARB)
	return p.moves, nil
}

// farbScoreOf scores placing size into a bin with the given simulated load:
// the FARB composite over the post-placement residual vector.
func farbScoreOf(load []float64, size vector.Vector) float64 {
	minR, maxR := 2.0, -2.0
	sum, sumSq := 0.0, 0.0
	for j, s := range size {
		r := 1 - load[j] - s
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		sum += r
		sumSq += r * r
	}
	fd := float64(len(size))
	return 0.5*(maxR-minR) + 0.3*(sum/fd) + 0.2*math.Sqrt(sumSq/fd)
}

// Stranded consolidates stranded capacity away: sources are ranked by their
// metrics.FragOf per-bin stranded total (most stranded first), and each is
// drained into the fitting bins whose post-placement stranded capacity is
// smallest. Bins with no stranded capacity are never victims.
type Stranded struct{}

// Name implements core.MigrationPlanner.
func (Stranded) Name() string { return "stranded" }

// PlanPass implements core.MigrationPlanner.
func (Stranded) PlanPass(view core.MigrationView, budget core.MigrationBudget) ([]core.MigrationMove, error) {
	if len(view.Bins) < 2 {
		return nil, nil
	}
	p := newPass(view, budget)
	// Rank victims by the exact per-bin stranded recompute the §13 metrics
	// layer defines; a bin whose headroom is perfectly usable stays put.
	strandedOf := make(map[int]float64, len(view.Bins))
	one := make([]*core.Bin, 1)
	for _, b := range view.Bins {
		one[0] = b
		snap := metrics.FragOf(view.Dim, one)
		s := 0.0
		for _, v := range snap.Stranded {
			s += v
		}
		strandedOf[b.ID] = s
	}
	sources := sortedBins(p, func(a, b *core.Bin) bool {
		sa, sb := strandedOf[a.ID], strandedOf[b.ID]
		if sa != sb {
			return sa > sb
		}
		return a.ID < b.ID
	})
	victims := sources[:0]
	for _, b := range sources {
		if strandedOf[b.ID] > 0 {
			victims = append(victims, b)
		}
	}
	pickLeastStranded := func(itemID int, exclude map[int]bool) (int, bool) {
		size := view.Size(itemID)
		best, bestS, found := 0, 0.0, false
		for _, b := range view.Bins {
			if exclude[b.ID] || !p.fits(b.ID, size) {
				continue
			}
			s := strandedAfter(p.load[b.ID], size)
			if !found || s < bestS || (s == bestS && b.ID < best) {
				best, bestS, found = b.ID, s, true
			}
		}
		return best, found
	}
	drainGreedy(p, victims, pickLeastStranded)
	return p.moves, nil
}

// strandedAfter is the per-bin stranded capacity (Σ_d residual_d − min_j
// residual_j) of a simulated load after placing size.
func strandedAfter(load []float64, size vector.Vector) float64 {
	usable := 2.0
	for j, s := range size {
		if r := 1 - load[j] - s; r < usable {
			usable = r
		}
	}
	if usable < 0 {
		usable = 0
	}
	total := 0.0
	for j, s := range size {
		if r := 1 - load[j] - s; r > usable {
			total += r - usable
		}
	}
	return total
}

// sortedBins returns the view's bins reordered by less (stable, so the
// caller's tie-breaks fully determine the order).
func sortedBins(p *pass, less func(a, b *core.Bin) bool) []*core.Bin {
	out := append([]*core.Bin(nil), p.view.Bins...)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// drainGreedy drains sources in order until the budget is exhausted. Chosen
// sources are excluded as targets for the rest of the pass: they close when
// their last staged move applies, so a later move into one would land in a
// closed bin. Conversely, a bin that already received a staged move is no
// longer a drain candidate — draining it would undo the pass's own work, and
// its membership list (read from the live bins) would miss the staged
// arrivals.
func drainGreedy(p *pass, sources []*core.Bin, pickTarget func(itemID int, exclude map[int]bool) (int, bool)) {
	exclude := make(map[int]bool, len(sources))
	for _, src := range sources {
		if len(p.moves) >= p.budget.MaxMoves {
			return
		}
		if p.received[src.ID] > 0 {
			continue
		}
		exclude[src.ID] = true
		if !p.drainMoves(src, pickTarget, exclude) {
			delete(exclude, src.ID)
		}
	}
}
