package core

import (
	"fmt"
	"math"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// WithDynamicArrivals puts the engine in dynamic-arrival mode: the run may
// start from an empty item list and grow it mid-run with AppendArrival. This
// is the mode the placement server (internal/server) runs tenants in — the
// workload is not known up front, it is the stream of client requests.
//
// Determinism is preserved by an admission discipline, not by luck: every
// appended arrival must be at or after the time of the latest committed event
// (and at or after every earlier arrival), so the committed event sequence of
// an incrementally-grown run is bit-identical to a from-scratch run over the
// final list. That equivalence is what lets the persistence layer recover a
// dynamic run by ordinary WAL replay against the list rebuilt from the
// tenant's op log.
func WithDynamicArrivals() Option {
	return func(c *config) { c.dynamic = true }
}

// validateList applies the list validation appropriate to the run mode:
// dynamic runs may (and usually do) start empty.
func validateList(l *item.List, dynamic bool) error {
	var err error
	if dynamic {
		err = l.ValidateDynamic()
	} else {
		err = l.Validate()
	}
	if err != nil {
		return fmt.Errorf("core: invalid input: %w", err)
	}
	return nil
}

// AppendArrival admits one more item into a dynamic run and returns its
// assigned ID (the next list index). The arrival must not be in the engine's
// past: it has to be at or after both the previous arrival and the most
// recent committed event, so the grown run replays identically from scratch.
// The item is not dispatched here — step the engine (through its session)
// until the arrival event commits to learn the placement.
func (e *Engine) AppendArrival(arrival, departure float64, size vector.Vector) (int, error) {
	if !e.cfg.dynamic {
		return 0, fmt.Errorf("core: AppendArrival on a static run (missing WithDynamicArrivals)")
	}
	if e.err != nil {
		return 0, fmt.Errorf("core: cannot append to a failed engine: %w", e.err)
	}
	if e.finished {
		return 0, fmt.Errorf("core: cannot append to a finished engine")
	}
	id := len(e.list.Items)
	it := item.Item{ID: id, SeqNo: id, Arrival: arrival, Departure: departure, Size: size.Clone()}
	if err := it.Validate(e.list.Dim); err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	if n := len(e.arrivals); n > 0 && arrival < e.arrivals[n-1].Arrival {
		return 0, fmt.Errorf("core: arrival %g is before the previously admitted arrival %g", arrival, e.arrivals[n-1].Arrival)
	}
	if arrival < e.lastTime {
		return 0, fmt.Errorf("core: arrival %g is in the engine's past (last committed event at %g)", arrival, e.lastTime)
	}
	e.list.Items = append(e.list.Items, it)
	e.arrivals = append(e.arrivals, it)
	e.itemsByID[id] = it
	e.res.Items = e.list.Len()
	return id, nil
}

// PeekTime returns the time of the earliest pending event, ok=false when the
// engine is idle (no departures, crashes, retries, or unconsumed arrivals).
// Dynamic callers use it to commit exactly the events that are due — stepping
// past the last admitted arrival would fire future departures early.
func (e *Engine) PeekTime() (float64, bool) {
	if e.err != nil || e.finished {
		return 0, false
	}
	if len(e.pendingMoves) > 0 {
		// A staged migration pass commits ahead of every other event.
		return e.passTime, true
	}
	t, any := math.Inf(1), false
	if ev, ok := e.departures.Peek(); ok {
		t, any = ev.Time, true
	}
	if ev, ok := e.crashes.Peek(); ok && ev.Time < t {
		t, any = ev.Time, true
	}
	if ev, ok := e.retries.Peek(); ok && ev.Time < t {
		t, any = ev.Time, true
	}
	if e.ai < len(e.arrivals) && (e.arrivals[e.ai].Arrival < t || !any) {
		t, any = e.arrivals[e.ai].Arrival, true
	}
	return t, any
}

// EngineStats is a cheap point-in-time view of a running engine, sized for a
// status endpoint: counters and aggregates only, no per-item data. For the
// full decision record use Snapshot (its Result is a deep copy).
type EngineStats struct {
	// EventSeq is the number of committed events; Clock the time of the most
	// recent one (0 before the first).
	EventSeq int64
	Clock    float64
	// Items is the number of items admitted to the run so far.
	Items int
	// ArrivalsPending counts admitted items whose arrival event has not
	// committed yet.
	ArrivalsPending int
	// Placements counts committed placements (re-placements after eviction
	// included); Served counts items that have departed normally.
	Placements int
	Served     int
	// OpenBins is the number of currently open bins; BinsOpened the total
	// ever opened.
	OpenBins   int
	BinsOpened int
	// CostClosed is the usage-time cost of already-closed bins; OpenedAtSum
	// the sum of the open bins' opening times, so the accrued cost at time t
	// is CostAt(t) = CostClosed + OpenBins·t − OpenedAtSum.
	CostClosed  float64
	OpenedAtSum float64
	// OpenLoad is the per-dimension total load across open bins.
	OpenLoad []float64
	// Stranded is the per-dimension stranded open capacity (DESIGN.md §13):
	// for each open bin, headroom beyond its binding dimension's usable
	// headroom — residual_d − min_j residual_j, summed over open bins. It is
	// capacity that exists in dimension d but cannot host any item shaped
	// like the bin's scarcest dimension. The deprecated dominant-dimension
	// heuristic (OpenBins − max_d OpenLoad[d]) undercounts mixed-imbalance
	// bins; Stranded is per-bin and per-dimension exact.
	Stranded []float64
	// Failure/admission accounting (zero on a fault-free, uncapped run).
	Rejected  int
	TimedOut  int
	ItemsLost int
	QueueLen  int
}

// CostAt returns the usage-time cost accrued by time t >= Clock: closed bins
// in full, open bins up to t.
func (s EngineStats) CostAt(t float64) float64 {
	return s.CostClosed + float64(s.OpenBins)*t - s.OpenedAtSum
}

// Stats captures an EngineStats view of the current state. Unlike Snapshot it
// works on finished engines too and never fails; on a poisoned engine it
// reports the state at the failure point.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		EventSeq:        e.eventSeq,
		Clock:           e.lastTime,
		Items:           e.list.Len(),
		ArrivalsPending: len(e.arrivals) - e.ai,
		Placements:      len(e.res.Placements),
		Served:          e.served,
		OpenBins:        len(e.open) - e.holes,
		BinsOpened:      e.nextBinID,
		CostClosed:      e.res.Cost,
		OpenLoad:        make([]float64, e.list.Dim),
		Stranded:        make([]float64, e.list.Dim),
		Rejected:        e.res.Rejected,
		TimedOut:        e.res.TimedOut,
		ItemsLost:       e.res.ItemsLost,
		QueueLen:        len(e.waitq),
	}
	for _, b := range e.open {
		if b == nil {
			continue
		}
		s.OpenedAtSum += b.OpenedAt
		usable := math.Inf(1)
		for d, v := range b.load {
			s.OpenLoad[d] += v
			if r := 1 - v; r < usable {
				usable = r
			}
		}
		if usable < 0 {
			usable = 0
		}
		for d, v := range b.load {
			if r := 1 - v; r > usable {
				s.Stranded[d] += r - usable
			}
		}
	}
	return s
}
