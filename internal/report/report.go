package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row. Rows shorter than Headers are padded with "".
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned, boxed ASCII.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func() {
		for _, w := range widths {
			b.WriteByte('+')
			b.WriteString(strings.Repeat("-", w+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", w, c)
		}
		b.WriteString("|\n")
	}
	line()
	writeRow(t.Headers)
	line()
	for _, row := range t.Rows {
		writeRow(row)
	}
	line()
	return b.String()
}

// Markdown returns the table as GitHub-flavoured markdown (used to paste
// results into EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Headers))
		copy(cells, row)
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

// WriteCSV writes headers and rows as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float compactly for table cells.
func F(x float64) string { return fmt.Sprintf("%.4g", x) }
