// Package experiments defines the runnable experiments that regenerate the
// paper's evaluation: Figure 4 (average-case study of Any Fit algorithms),
// the Table 1 bound checks (adversarial lower bounds and upper-bound
// validation), and this reproduction's own ablations (Best Fit load
// measures, clairvoyant extensions, billing granularity).
//
// Every experiment is deterministic in its configuration and seed, and runs
// trials in parallel with per-trial derived seeds (see internal/parallel).
package experiments

import (
	"context"
	"fmt"
	"sort"

	"dvbp/internal/core"
	"dvbp/internal/lowerbound"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
	"dvbp/internal/workload"
)

// Figure4Config parameterises the Section 7 experiment. The zero value is not
// valid; use DefaultFigure4 for the paper's Table 2 grid.
type Figure4Config struct {
	// Ds are the dimension panels (paper: 1, 2, 5).
	Ds []int
	// Mus are the maximum-duration sweep values (paper: 1,2,5,10,100,200).
	Mus []int
	// Instances is the number of random instances per (d, μ) cell
	// (paper: 1000).
	Instances int
	// N, T, B are the remaining Table 2 parameters (1000, 1000, 100).
	N, T, B int
	// Policies are the canonical policy names to evaluate (default: the
	// seven from the paper).
	Policies []string
	// Seed derives all per-trial seeds.
	Seed int64
	// Workers bounds parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Observer, when non-nil, is attached to every simulation the
	// experiment runs (via core.WithObserver). Trials execute in parallel,
	// so the observer must be safe for concurrent use; a shared
	// metrics.Collector qualifies and aggregates counters across the whole
	// experiment. The observer does not affect packing results.
	Observer core.Observer
	// Ctx cancels outstanding trials early (e.g. a command -timeout); nil
	// means Background. On cancellation the run returns the context error.
	Ctx context.Context
}

// observerOpts converts an optional shared observer into Simulate options.
func observerOpts(o core.Observer) []core.Option {
	if o == nil {
		return nil
	}
	return []core.Option{core.WithObserver(o)}
}

// DefaultFigure4 returns the paper's exact experimental grid.
func DefaultFigure4() Figure4Config {
	return Figure4Config{
		Ds:        []int{1, 2, 5},
		Mus:       []int{1, 2, 5, 10, 100, 200},
		Instances: 1000,
		N:         1000,
		T:         1000,
		B:         100,
		Policies:  core.PolicyNames(),
		Seed:      1,
	}
}

// Validate checks the configuration.
func (c Figure4Config) Validate() error {
	if len(c.Ds) == 0 || len(c.Mus) == 0 || len(c.Policies) == 0 {
		return fmt.Errorf("experiments: empty sweep in Figure4Config")
	}
	if c.Instances < 1 {
		return fmt.Errorf("experiments: Instances = %d", c.Instances)
	}
	for _, d := range c.Ds {
		for _, mu := range c.Mus {
			if err := (workload.UniformConfig{D: d, N: c.N, Mu: mu, T: c.T, B: c.B}).Validate(); err != nil {
				return err
			}
		}
	}
	for _, p := range c.Policies {
		if _, err := core.NewPolicy(p, 0); err != nil {
			return err
		}
	}
	return nil
}

// Cell identifies one point of the Figure 4 grid.
type Cell struct {
	D      int
	Mu     int
	Policy string
}

// Figure4Result holds, per cell, the summary of cost/LB ratios across
// instances (mean ± stddev, as plotted in the paper with error bars).
type Figure4Result struct {
	Config Figure4Config
	Cells  map[Cell]stats.Summary
}

// RunFigure4 executes the experiment. For each (d, μ) it generates Instances
// random instances; each instance is normalised by the Lemma 1(i) lower
// bound and every policy's cost/LB ratio is folded into its cell summary.
func RunFigure4(cfg Figure4Config) (*Figure4Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Figure4Result{Config: cfg, Cells: make(map[Cell]stats.Summary)}
	for _, d := range cfg.Ds {
		for _, mu := range cfg.Mus {
			cellSummaries, err := runFigure4Cell(cfg, d, mu)
			if err != nil {
				return nil, fmt.Errorf("experiments: d=%d mu=%d: %w", d, mu, err)
			}
			for p, s := range cellSummaries {
				res.Cells[Cell{D: d, Mu: mu, Policy: p}] = s
			}
		}
	}
	return res, nil
}

// trialRatios holds one instance's cost/LB ratio per policy, in
// cfg.Policies order.
type trialRatios []float64

func runFigure4Cell(cfg Figure4Config, d, mu int) (map[string]stats.Summary, error) {
	wcfg := workload.UniformConfig{D: d, N: cfg.N, Mu: mu, T: cfg.T, B: cfg.B}
	base := cfg.Seed ^ (int64(d) << 32) ^ (int64(mu) << 16)

	trials, err := parallel.Map(cfg.Instances, func(i int) (trialRatios, error) {
		seed := parallel.SeedFor(base, i)
		l, err := workload.Uniform(wcfg, seed)
		if err != nil {
			return nil, err
		}
		lb := lowerbound.IntegralBound(l)
		if lb <= 0 {
			return nil, fmt.Errorf("non-positive lower bound")
		}
		out := make(trialRatios, len(cfg.Policies))
		for pi, name := range cfg.Policies {
			p, err := core.NewPolicy(name, seed)
			if err != nil {
				return nil, err
			}
			r, err := core.Simulate(l, p, observerOpts(cfg.Observer)...)
			if err != nil {
				return nil, err
			}
			out[pi] = r.Cost / lb
		}
		return out, nil
	}, parallel.Options{Workers: cfg.Workers, Context: cfg.Ctx})
	if err != nil {
		return nil, err
	}

	accs := make([]stats.Accumulator, len(cfg.Policies))
	for _, tr := range trials {
		for pi, ratio := range tr {
			accs[pi].Add(ratio)
		}
	}
	out := make(map[string]stats.Summary, len(cfg.Policies))
	for pi, name := range cfg.Policies {
		out[name] = accs[pi].Summarize()
	}
	return out, nil
}

// Table renders the result for one dimension panel as a μ × policy grid of
// "mean ± stddev" cells.
func (r *Figure4Result) Table(d int) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 4 (d=%d): mean cost / Lemma-1(i) lower bound over %d instances", d, r.Config.Instances),
		Headers: append([]string{"mu"}, r.Config.Policies...),
	}
	for _, mu := range r.Config.Mus {
		row := []string{fmt.Sprintf("%d", mu)}
		for _, p := range r.Config.Policies {
			s := r.Cells[Cell{D: d, Mu: mu, Policy: p}]
			row = append(row, fmt.Sprintf("%.4f ± %.4f", s.Mean, s.StdDev))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Chart renders the result for one dimension panel as an SVG line chart
// (ratio vs μ, one series per policy, error bars = stddev) — the shape of
// one Figure 4 panel.
func (r *Figure4Result) Chart(d int) *report.Chart {
	c := &report.Chart{
		Title:  fmt.Sprintf("Average-case performance, d=%d", d),
		XLabel: "mu (max item duration)",
		YLabel: "cost / lower bound",
		LogX:   true,
	}
	for _, p := range r.Config.Policies {
		s := report.Series{Name: p}
		for _, mu := range r.Config.Mus {
			sum := r.Cells[Cell{D: d, Mu: mu, Policy: p}]
			s.X = append(s.X, float64(mu))
			s.Y = append(s.Y, sum.Mean)
			s.YErr = append(s.YErr, sum.StdDev)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Ranking returns the policies sorted by mean ratio (best first) for one
// (d, μ) cell.
func (r *Figure4Result) Ranking(d, mu int) []string {
	ps := make([]string, len(r.Config.Policies))
	copy(ps, r.Config.Policies)
	sort.SliceStable(ps, func(i, j int) bool {
		return r.Cells[Cell{D: d, Mu: mu, Policy: ps[i]}].Mean < r.Cells[Cell{D: d, Mu: mu, Policy: ps[j]}].Mean
	})
	return ps
}
