package metrics

import (
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/workload"
)

// TestCollectorMatchesResultUnderFaults: every failure-path series must agree
// exactly with the engine's own Result accounting — counters integer-exact,
// the two simulated-time gauges bit-identical (same accumulation order).
func TestCollectorMatchesResultUnderFaults(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 400, Mu: 10, T: 200, B: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{
		Injector:   faults.MTBF{Mean: 15, Seed: 4},
		Retry:      faults.Backoff{Base: 0.5, Cap: 4},
		MaxServers: 12, Queue: true, QueueDeadline: 3,
	}
	for _, p := range core.StandardPolicies(3) {
		col := NewCollector()
		opts := append(plan.Options(), core.WithObserver(col))
		res, err := core.Simulate(l, p, opts...)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Crashes == 0 || res.Evictions == 0 {
			t.Fatalf("%s: fault paths not exercised (%s)", p.Name(), res)
		}
		s := col.Snapshot()
		for name, want := range map[string]float64{
			MetricBinsCrashed:   float64(res.Crashes),
			MetricItemsEvicted:  float64(res.Evictions),
			MetricItemsRetried:  float64(res.Retries),
			MetricItemsLost:     float64(res.ItemsLost),
			MetricItemsRejected: float64(res.Rejected),
			MetricItemsTimedOut: float64(res.TimedOut),
			MetricItemsDequeued: float64(res.QueuedPlaced),
			MetricQueueDelay:    res.QueueDelay,
			MetricLostUsage:     res.LostUsageTime,
			MetricItemsPlaced:   float64(len(res.Placements)),
			MetricBinsOpened:    float64(res.BinsOpened),
			MetricBinsClosed:    float64(res.BinsOpened),
			MetricUsageTime:     res.Cost,
			MetricOpenBins:      0,
		} {
			if got := counterValue(t, s, name); got != want {
				t.Errorf("%s: %s = %g, want %g", p.Name(), name, got, want)
			}
		}
		// Queued dispatches either come back out or expire.
		queued := counterValue(t, s, MetricItemsQueued)
		if deq := float64(res.QueuedPlaced + res.TimedOut); queued < deq {
			t.Errorf("%s: queued %g < dequeued+expired %g", p.Name(), queued, deq)
		}
	}
}

// TestCollectorStartsMapDrainsUnderAdmissionControl: dispatches that are
// queued or rejected must not leak pending placement timestamps.
func TestCollectorStartsMapDrainsUnderAdmissionControl(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 300, Mu: 8, T: 150, B: 100}, 11)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	res, err := core.Simulate(l, core.NewFirstFit(),
		core.WithFaults(faults.MTBF{Mean: 10, Seed: 2}, faults.Fixed{Wait: 1}),
		core.WithMaxBins(6), core.WithAdmissionQueue(2),
		core.WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected+res.TimedOut == 0 {
		t.Fatalf("admission paths not exercised: %s", res)
	}
	col.mu.Lock()
	pending := len(col.starts)
	col.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d placement timestamps leaked", pending)
	}
}
