package offline

import (
	"fmt"
	"math"
	"sort"

	"dvbp/internal/interval"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// Packing is a feasible offline assignment of items to bins.
type Packing struct {
	// Algorithm names the heuristic that produced the packing.
	Algorithm string
	// Cost is the MinUsageTime objective: Σ_bins span(items in bin).
	Cost float64
	// Assignment maps item ID -> bin index.
	Assignment map[int]int
	// BinCount is the number of bins used.
	BinCount int
}

// offBin is a bin under construction: the items assigned so far.
type offBin struct {
	items []item.Item
	span  interval.Set
}

// canAdd reports whether adding it keeps the bin feasible at every instant of
// its active interval. The load only changes at arrival/departure points of
// items already in the bin, so checking at those points (plus a(it)) inside
// I(it) suffices.
func (b *offBin) canAdd(it item.Item, d int) bool {
	pts := []float64{it.Arrival}
	for _, o := range b.items {
		if o.Arrival > it.Arrival && o.Arrival < it.Departure {
			pts = append(pts, o.Arrival)
		}
	}
	for _, t := range pts {
		load := vector.New(d)
		for _, o := range b.items {
			if o.ActiveAt(t) {
				load.AddInPlace(o.Size)
			}
		}
		if !load.FitsWithin(it.Size) {
			return false
		}
	}
	return true
}

func (b *offBin) add(it item.Item) {
	b.items = append(b.items, it)
	b.span = append(b.span, it.Interval())
}

func (b *offBin) cost() float64 { return b.span.Span() }

// extensionCost returns how much the bin's usage time grows if it is added.
func (b *offBin) extensionCost(it item.Item) float64 {
	before := b.span.Span()
	after := append(append(interval.Set{}, b.span...), it.Interval()).Span()
	return after - before
}

func finish(name string, bins []*offBin) *Packing {
	p := &Packing{Algorithm: name, Assignment: make(map[int]int), BinCount: len(bins)}
	for bi, b := range bins {
		p.Cost += b.cost()
		for _, it := range b.items {
			p.Assignment[it.ID] = bi
		}
	}
	return p
}

// FirstFitDecreasing packs items in order of decreasing time–space
// utilisation into the first feasible bin.
func FirstFitDecreasing(l *item.List) (*Packing, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	items := make([]item.Item, len(l.Items))
	copy(items, l.Items)
	sort.SliceStable(items, func(i, j int) bool {
		ui := items[i].Size.MaxNorm() * items[i].Duration()
		uj := items[j].Size.MaxNorm() * items[j].Duration()
		if ui != uj {
			return ui > uj
		}
		return items[i].ID < items[j].ID
	})
	bins := packFirstFeasible(items, l.Dim, nil)
	return finish("FirstFitDecreasing", bins), nil
}

// DurationClasses packs each ⌈log₂(duration)⌉ class separately with FFD.
// Class-local packing aligns departures, the mechanism behind clairvoyant
// O(√log μ) algorithms (Azar–Vainstein), at the price of never mixing
// classes.
func DurationClasses(l *item.List) (*Packing, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	minD := l.MinDuration()
	classOf := func(it item.Item) int {
		return int(math.Ceil(math.Log2(it.Duration() / minD)))
	}
	classes := make(map[int][]item.Item)
	var keys []int
	for _, it := range l.Items {
		c := classOf(it)
		if _, ok := classes[c]; !ok {
			keys = append(keys, c)
		}
		classes[c] = append(classes[c], it)
	}
	sort.Ints(keys)
	var all []*offBin
	for _, c := range keys {
		items := classes[c]
		sort.SliceStable(items, func(i, j int) bool {
			ui := items[i].Size.MaxNorm() * items[i].Duration()
			uj := items[j].Size.MaxNorm() * items[j].Duration()
			if ui != uj {
				return ui > uj
			}
			return items[i].ID < items[j].ID
		})
		all = append(all, packFirstFeasible(items, l.Dim, nil)...)
	}
	return finish("DurationClasses", all), nil
}

// GreedyExtension packs items in arrival order into the feasible bin with the
// smallest usage-time extension (ties: earliest bin), opening a new bin when
// the extension of every feasible bin exceeds the item's duration.
func GreedyExtension(l *item.List) (*Packing, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	items := l.SortedByArrival()
	var bins []*offBin
	for _, it := range items {
		bestIdx := -1
		bestExt := it.Duration() // opening a new bin costs exactly this
		for bi, b := range bins {
			if !b.canAdd(it, l.Dim) {
				continue
			}
			if ext := b.extensionCost(it); ext < bestExt-1e-12 {
				bestIdx, bestExt = bi, ext
			}
		}
		if bestIdx < 0 {
			nb := &offBin{}
			nb.add(it)
			bins = append(bins, nb)
		} else {
			bins[bestIdx].add(it)
		}
	}
	return finish("GreedyExtension", bins), nil
}

// packFirstFeasible is the shared first-feasible insertion loop. seed allows
// chaining (nil starts fresh).
func packFirstFeasible(items []item.Item, d int, seed []*offBin) []*offBin {
	bins := seed
	for _, it := range items {
		placed := false
		for _, b := range bins {
			if b.canAdd(it, d) {
				b.add(it)
				placed = true
				break
			}
		}
		if !placed {
			nb := &offBin{}
			nb.add(it)
			bins = append(bins, nb)
		}
	}
	return bins
}

// Verify checks that a packing is feasible for the instance: every item
// assigned exactly once and no bin overloaded at any event point. It returns
// the recomputed cost.
func Verify(l *item.List, p *Packing) (float64, error) {
	if len(p.Assignment) != l.Len() {
		return 0, fmt.Errorf("offline: %d assignments for %d items", len(p.Assignment), l.Len())
	}
	binItems := make(map[int][]item.Item)
	for _, it := range l.Items {
		bi, ok := p.Assignment[it.ID]
		if !ok {
			return 0, fmt.Errorf("offline: item %d unassigned", it.ID)
		}
		binItems[bi] = append(binItems[bi], it)
	}
	cost := 0.0
	for bi, its := range binItems {
		var spans interval.Set
		for _, it := range its {
			spans = append(spans, it.Interval())
			// Check feasibility at the arrival of each item in the bin.
			load := vector.New(l.Dim)
			for _, o := range its {
				if o.ID != it.ID && o.ActiveAt(it.Arrival) {
					load.AddInPlace(o.Size)
				}
			}
			if !load.FitsWithin(it.Size) {
				return 0, fmt.Errorf("offline: bin %d overloaded at t=%g by item %d", bi, it.Arrival, it.ID)
			}
		}
		cost += spans.Span()
	}
	return cost, nil
}

// BestUpperEstimate runs all heuristics and returns the cheapest feasible
// packing.
func BestUpperEstimate(l *item.List) (*Packing, error) {
	packers := []func(*item.List) (*Packing, error){FirstFitDecreasing, DurationClasses, GreedyExtension}
	var best *Packing
	for _, f := range packers {
		p, err := f(l)
		if err != nil {
			return nil, err
		}
		if best == nil || p.Cost < best.Cost {
			best = p
		}
	}
	return best, nil
}
