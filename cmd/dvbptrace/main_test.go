package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/workload"
)

func TestReadDispatchesOnExtension(t *testing.T) {
	dir := t.TempDir()
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 10, Mu: 3, T: 10, B: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}

	csvPath := filepath.Join(dir, "t.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteCSV(f, l); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jsonPath := filepath.Join(dir, "t.json")
	f, err = os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteJSON(f, l); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, p := range []string{csvPath, jsonPath} {
		got, err := read(p)
		if err != nil {
			t.Errorf("read(%s): %v", p, err)
			continue
		}
		if got.Len() != l.Len() || got.Dim != l.Dim {
			t.Errorf("read(%s): shape %dx%d", p, got.Dim, got.Len())
		}
	}
	if _, err := read(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGenInspectConvertSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.csv")
	cmdGen([]string{"-model", "uniform", "-d", "2", "-n", "20", "-mu", "4", "-o", out})
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("gen did not write: %v", err)
	}
	cmdInspect([]string{out})

	conv := filepath.Join(dir, "g.json")
	cmdConvert([]string{out, conv})
	b, err := os.ReadFile(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"items"`) {
		t.Error("converted json missing items")
	}

	for _, model := range []string{"sessions", "diurnal"} {
		p := filepath.Join(dir, model+".csv")
		cmdGen([]string{"-model", model, "-d", "2", "-horizon", "50", "-rate", "1", "-o", p})
		if _, err := os.Stat(p); err != nil {
			t.Errorf("gen %s did not write: %v", model, err)
		}
	}
}
