package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// --- op codec ---

func TestOpLogCodecRoundTrip(t *testing.T) {
	d := 3
	ops := []Op{
		{Kind: OpItem, Arrival: 0, Departure: 4.5, Size: vector.Vector{0.25, 0.5, 0.125}},
		{Kind: OpAdvance, To: 2},
		{Kind: OpItem, Arrival: 2, Departure: 3, Size: vector.Vector{1, 0, 0.75}},
		{Kind: OpAdvance, To: 10},
	}
	for i, want := range ops {
		var buf []byte
		if want.Kind == OpItem {
			buf = AppendItemOp(nil, want.Arrival, want.Departure, want.Size)
		} else {
			buf = AppendAdvanceOp(nil, want.To)
		}
		got, err := DecodeOp(buf, d)
		if err != nil {
			t.Fatalf("op %d: decode: %v", i, err)
		}
		if got.Kind != want.Kind || got.Arrival != want.Arrival || got.Departure != want.Departure || got.To != want.To {
			t.Fatalf("op %d: got %+v want %+v", i, got, want)
		}
		if want.Kind == OpItem && !got.Size.Equal(want.Size, 0) {
			t.Fatalf("op %d: size %v want %v", i, got.Size, want.Size)
		}
	}
}

func TestOpLogCodecRejectsGarbage(t *testing.T) {
	d := 2
	cases := map[string][]byte{
		"empty":            {},
		"unknown kind":     {0x7f, 0, 0, 0, 0, 0, 0, 0, 0},
		"short item":       AppendItemOp(nil, 1, 2, vector.Vector{0.5})[:10],
		"wrong dim":        AppendItemOp(nil, 1, 2, vector.Vector{0.5, 0.5, 0.5}),
		"long advance":     append(AppendAdvanceOp(nil, 3), 0),
		"short advance":    AppendAdvanceOp(nil, 3)[:5],
		"trailing on item": append(AppendItemOp(nil, 1, 2, vector.Vector{0.5, 0.5}), 0xAA),
	}
	for name, payload := range cases {
		if _, err := DecodeOp(payload, d); err == nil {
			t.Errorf("%s: decoded without error", name)
		} else if _, ok := err.(*CorruptionError); !ok {
			t.Errorf("%s: error %T, want *CorruptionError", name, err)
		}
	}
	nan := AppendAdvanceOp(nil, 0)
	for i := 1; i < 9; i++ {
		nan[i] = 0xff
	}
	if _, err := DecodeOp(nan, d); err == nil {
		t.Errorf("NaN advance decoded without error")
	}
}

// --- op log files ---

func TestOpLogFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.dvbp")
	meta := NewDynamicRunMeta(2, "firstfit", 7, "")

	w, err := CreateOpLog(nil, path, meta, 1)
	if err != nil {
		t.Fatalf("CreateOpLog: %v", err)
	}
	if err := w.Append(AppendItemOp(nil, 0, 5, vector.Vector{0.5, 0.25})); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Append(AppendItemOp(nil, 1, 2, vector.Vector{0.125, 0.5})); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Append(AppendAdvanceOp(nil, 3)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	data, err := ReadOpLog(nil, path, "tenant-a")
	if err != nil {
		t.Fatalf("ReadOpLog: %v", err)
	}
	if data.Torn != nil {
		t.Fatalf("unexpected torn tail: %v", data.Torn)
	}
	if !data.Meta.equal(meta) {
		t.Fatalf("meta %+v, want %+v", data.Meta, meta)
	}
	if len(data.Ops) != 3 || data.List.Len() != 2 {
		t.Fatalf("got %d ops, %d items; want 3, 2", len(data.Ops), data.List.Len())
	}
	if data.List.Items[1].ID != 1 || data.List.Items[1].Arrival != 1 {
		t.Fatalf("item 1 rebuilt wrong: %+v", data.List.Items[1])
	}
	if data.Watermark != 3 || data.MaxAdvance != 3 {
		t.Fatalf("watermark=%g maxAdvance=%g, want 3, 3", data.Watermark, data.MaxAdvance)
	}

	// Static meta must be refused at create time and read time.
	if _, err := CreateOpLog(nil, filepath.Join(dir, "bad.dvbp"), NewRunMeta(testList(t, 5), "firstfit", 1, ""), 1); err == nil {
		t.Fatalf("CreateOpLog accepted a static run meta")
	}
}

func TestOpLogTornTailTruncatesAndReopens(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ops.dvbp")
	meta := NewDynamicRunMeta(1, "nextfit", 1, "")
	w, err := CreateOpLog(nil, path, meta, 1)
	if err != nil {
		t.Fatalf("CreateOpLog: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(AppendItemOp(nil, float64(i), float64(i)+1, vector.Vector{0.5})); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the file mid-record, as a crash during an append would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	data, err := ReadOpLog(nil, path, "tenant-b")
	if err != nil {
		t.Fatalf("ReadOpLog after tear: %v", err)
	}
	if data.Torn == nil {
		t.Fatalf("torn tail not reported")
	}
	if data.Torn.Run != "tenant-b" {
		t.Fatalf("torn corruption not labeled: %v", data.Torn)
	}
	if data.List.Len() != 3 {
		t.Fatalf("rebuilt %d items after tear, want 3", data.List.Len())
	}

	// Reopen at the valid prefix and continue; the log must read back whole.
	w2, err := ReopenOpLog(nil, path, data.ValidSize, 1)
	if err != nil {
		t.Fatalf("ReopenOpLog: %v", err)
	}
	if err := w2.Append(AppendItemOp(nil, 9, 11, vector.Vector{0.25})); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	data2, err := ReadOpLog(nil, path, "tenant-b")
	if err != nil {
		t.Fatalf("ReadOpLog after reopen: %v", err)
	}
	if data2.Torn != nil || data2.List.Len() != 4 || data2.Watermark != 9 {
		t.Fatalf("after reopen: torn=%v items=%d watermark=%g", data2.Torn, data2.List.Len(), data2.Watermark)
	}
}

func TestOpLogRejectsSemanticCorruption(t *testing.T) {
	dir := t.TempDir()
	build := func(name string, ops ...[]byte) string {
		path := filepath.Join(dir, name)
		w, err := CreateOpLog(nil, path, NewDynamicRunMeta(1, "firstfit", 1, ""), 1)
		if err != nil {
			t.Fatalf("CreateOpLog: %v", err)
		}
		for _, op := range ops {
			if err := w.Append(op); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return path
	}

	cases := map[string]string{
		"regressing arrival": build("regress.dvbp",
			AppendItemOp(nil, 5, 6, vector.Vector{0.5}),
			AppendItemOp(nil, 4, 6, vector.Vector{0.5})),
		"regressing advance": build("advance.dvbp",
			AppendAdvanceOp(nil, 5),
			AppendAdvanceOp(nil, 4)),
		"invalid item": build("invalid.dvbp",
			AppendItemOp(nil, 2, 1, vector.Vector{0.5})),
	}
	for name, path := range cases {
		_, err := ReadOpLog(nil, path, "tenant-c")
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		var ce *CorruptionError
		if !errors.As(err, &ce) || ce.Run != "tenant-c" {
			t.Errorf("%s: error %v not a labeled *CorruptionError", name, err)
		}
	}

	// A WAL is not an op log.
	wal := filepath.Join(dir, "wal.dvbp")
	w, err := Create(nil, wal, KindWAL, 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	w.Close()
	if _, err := ReadOpLog(nil, wal, "tenant-c"); err == nil {
		t.Fatalf("ReadOpLog accepted a WAL file")
	}
}

// --- corruption labeling across recovery ---

func TestRecoverLabelsCorruptionWithRun(t *testing.T) {
	l := testList(t, 60)
	dir := t.TempDir()
	cfg := Config{Dir: dir, Label: "tenant-a", Every: 20, SyncEvery: 1}
	meta := NewRunMeta(l, "bestfit", 3, "")
	e, err := core.NewEngine(l, newTestPolicy(t, "bestfit"))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Begin(e, meta, cfg)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Flip a byte mid-WAL: recovery tolerates the truncation but must name
	// the tenant in the corruption it reports.
	walPath := filepath.Join(dir, walFile)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	raw[len(raw)-20] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	rec, err := Recover(l, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rec.Session.Close()
	if len(rec.Corruptions) == 0 {
		t.Fatalf("no corruption reported for a damaged WAL")
	}
	for _, ce := range rec.Corruptions {
		if ce.Run != "tenant-a" {
			t.Errorf("corruption missing run label: %v", ce)
		}
		if !strings.Contains(ce.Error(), `run "tenant-a"`) {
			t.Errorf("corruption message does not name the run: %v", ce)
		}
	}

	// A fatally damaged WAL header must also carry the label.
	raw[0] ^= 0xff
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err = Recover(l, cfg)
	var ce *CorruptionError
	if !errors.As(err, &ce) || ce.Run != "tenant-a" {
		t.Fatalf("header corruption not labeled: %v", err)
	}
}

// --- dynamic runs through the session layer ---

// dynFeed appends one item to a dynamic session's engine, logs it to the op
// log first (the durability ordering the server relies on), and steps the
// session until the item's arrival event commits.
func dynFeed(t *testing.T, ops *Writer, s *Session, arrival, departure float64, size vector.Vector) {
	t.Helper()
	if ops != nil {
		if err := ops.Append(AppendItemOp(nil, arrival, departure, size)); err != nil {
			t.Fatalf("op append: %v", err)
		}
		if err := ops.Sync(); err != nil {
			t.Fatalf("op sync: %v", err)
		}
	}
	id, err := s.Engine().AppendArrival(arrival, departure, size)
	if err != nil {
		t.Fatalf("AppendArrival(%g): %v", arrival, err)
	}
	for {
		rec, ok, err := s.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !ok {
			t.Fatalf("stream drained before arrival of item %d committed", id)
		}
		if rec.Class == core.EventArrival && rec.ItemID == id {
			return
		}
	}
}

// dynItems is a deterministic dynamic workload: non-decreasing arrivals with
// simultaneous bursts and varied durations.
func dynItems(n int) []item.Item {
	out := make([]item.Item, n)
	for i := 0; i < n; i++ {
		arr := float64(i / 3)
		out[i] = item.Item{
			Arrival:   arr,
			Departure: arr + 1 + float64((i*7)%5),
			Size:      vector.Vector{0.1 + float64(i%4)*0.2, 0.15 + float64(i%3)*0.25},
		}
	}
	return out
}

func TestDynamicSessionKillRecoverResume(t *testing.T) {
	const n, killAt = 90, 60
	items := dynItems(n)
	meta := NewDynamicRunMeta(2, "firstfit", 11, "")

	// Uninterrupted reference: same stream, no crash.
	runAll := func(dir string) string {
		e, err := core.NewEngine(item.NewList(2), newTestPolicy(t, "firstfit"), core.WithDynamicArrivals())
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := Begin(e, meta, Config{Dir: dir, Every: 25, SyncEvery: 1})
		if err != nil {
			t.Fatalf("Begin: %v", err)
		}
		for _, it := range items {
			dynFeed(t, nil, s, it.Arrival, it.Departure, it.Size)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return resultJSON(t, res)
	}
	want := runAll(t.TempDir())

	// Interrupted run: feed killAt items with an op log riding along, then
	// abandon the session (Close syncs, standing in for the crash survivor
	// state — torture_test covers literal torn tails).
	dir := t.TempDir()
	cfg := Config{Dir: dir, Label: "tenant-dyn", Every: 25, SyncEvery: 1}
	opsPath := filepath.Join(dir, "ops.dvbp")
	ops, err := CreateOpLog(nil, opsPath, meta, 1)
	if err != nil {
		t.Fatalf("CreateOpLog: %v", err)
	}
	e, err := core.NewEngine(item.NewList(2), newTestPolicy(t, "firstfit"), core.WithDynamicArrivals())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Begin(e, meta, cfg)
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for _, it := range items[:killAt] {
		dynFeed(t, ops, s, it.Arrival, it.Departure, it.Size)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ops.Close(); err != nil {
		t.Fatalf("ops close: %v", err)
	}

	// Recover: rebuild the list from the op log, then replay the WAL against
	// it. The snapshot taken mid-stream covers a strict prefix of the op-log
	// list; recovery must accept it and replay the rest.
	logged, err := ReadOpLog(nil, opsPath, "tenant-dyn")
	if err != nil {
		t.Fatalf("ReadOpLog: %v", err)
	}
	if logged.List.Len() != killAt {
		t.Fatalf("op log rebuilt %d items, want %d", logged.List.Len(), killAt)
	}
	rec, err := Recover(logged.List, cfg, core.WithDynamicArrivals())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.SnapshotSeq == 0 {
		t.Fatalf("recovery used no snapshot despite checkpoints every 25 events")
	}
	ops2, err := ReopenOpLog(nil, opsPath, logged.ValidSize, 1)
	if err != nil {
		t.Fatalf("ReopenOpLog: %v", err)
	}
	for _, it := range items[killAt:] {
		dynFeed(t, ops2, rec.Session, it.Arrival, it.Departure, it.Size)
	}
	res, err := rec.Session.Run()
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if err := ops2.Close(); err != nil {
		t.Fatalf("ops close: %v", err)
	}
	if got := resultJSON(t, res); got != want {
		t.Fatalf("recovered dynamic run diverged from uninterrupted run\ngot:  %s\nwant: %s", got, want)
	}

	// The whole stream must also have made it into the op log.
	final, err := ReadOpLog(nil, opsPath, "tenant-dyn")
	if err != nil {
		t.Fatalf("final ReadOpLog: %v", err)
	}
	if final.List.Len() != n {
		t.Fatalf("final op log holds %d items, want %d", final.List.Len(), n)
	}
}
