package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/experiments"
	"dvbp/internal/report"
)

func TestParseMus(t *testing.T) {
	got := parseMus("1,2, 5")
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("parseMus = %v", got)
	}
}

func TestWriteCSVAndFile(t *testing.T) {
	dir := t.TempDir()
	tbl := &report.Table{Headers: []string{"a"}, Rows: [][]string{{"1"}}}
	writeCSV(dir, "x.csv", tbl)
	b, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "a\n1\n") {
		t.Errorf("csv content = %q", b)
	}
	writeFile(dir, "y.svg", "<svg/>")
	b, err = os.ReadFile(filepath.Join(dir, "y.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "<svg/>" {
		t.Errorf("file content = %q", b)
	}
}

func TestAblationCfgCapsInstances(t *testing.T) {
	cfg := ablationCfg(5, 9, 2)
	if cfg.Instances != 5 || cfg.Seed != 9 || cfg.Workers != 2 {
		t.Errorf("ablationCfg = %+v", cfg)
	}
	big := ablationCfg(10_000, 1, 0)
	if big.Instances > 10_000 {
		t.Errorf("instances not capped sanely: %d", big.Instances)
	}
}

// TestFigure4SliceMergeCLI exercises the full shard-and-merge workflow:
// two -shard invocations write part files, runMerge reassembles them, and the
// merged document is byte-identical to the one a single full run writes.
func TestFigure4SliceMergeCLI(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	runFigure4(1, 2, "1,5", 1, 0, experiments.ShardSlice{}, full, "")
	p0 := filepath.Join(dir, "p0.json")
	p1 := filepath.Join(dir, "p1.json")
	runFigure4(1, 2, "1,5", 1, 1, experiments.ShardSlice{Index: 0, Count: 2}, p0, "")
	runFigure4(1, 2, "1,5", 1, 4, experiments.ShardSlice{Index: 1, Count: 2}, p1, "")
	merged := filepath.Join(dir, "merged.json")
	if err := runMerge(p0+","+p1, merged); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged sweep differs from full-run sweep:\n%s\nvs\n%s", got, want)
	}
}

func TestTable1SliceMergeCLI(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.json")
	runTable1(1, 0, experiments.ShardSlice{}, full, "")
	var parts []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, "part"+string(rune('0'+i))+".json")
		runTable1(1, 2, experiments.ShardSlice{Index: i, Count: 3}, p, "")
		parts = append(parts, p)
	}
	merged := filepath.Join(dir, "merged.json")
	if err := runMerge(strings.Join(parts, ","), merged); err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(full)
	got, _ := os.ReadFile(merged)
	if !bytes.Equal(got, want) {
		t.Errorf("merged table1 sweep differs from full-run sweep")
	}
}

func TestRunMergeRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"hello":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runMerge(bad, ""); err == nil || !strings.Contains(err.Error(), "not a dvbp sweep") {
		t.Errorf("merge of non-sweep file: err = %v", err)
	}
	if err := runMerge(filepath.Join(dir, "missing.json"), ""); err == nil {
		t.Error("merge of missing file succeeded")
	}
	// An incomplete partition must be rejected, not silently folded.
	p0 := filepath.Join(dir, "p0.json")
	runTable1(1, 0, experiments.ShardSlice{Index: 0, Count: 2}, p0, "")
	if err := runMerge(p0, filepath.Join(dir, "out.json")); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("merge of partial coverage: err = %v", err)
	}
}

// TestRunExperimentsSmoke drives the top-level run functions with tiny
// parameters to make sure the wiring works end to end.
func TestRunExperimentsSmoke(t *testing.T) {
	dir := t.TempDir()
	runFigure4(1, 2, "1,5", 1, 0, experiments.ShardSlice{}, "", dir)
	runTable1(1, 0, experiments.ShardSlice{}, "", dir)
	runUBCheck(2, 1, 0)
	runAblationBestFit(2, 1, 0, dir)
	runAblationClairvoyant(2, 1, 0, dir)
	runAblationBilling(2, 1, 0, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Errorf("expected artefacts in %s, found %d", dir, len(entries))
	}
}
