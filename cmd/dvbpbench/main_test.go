package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/report"
)

func TestParseMus(t *testing.T) {
	got := parseMus("1,2, 5")
	if len(got) != 3 || got[0] != 1 || got[2] != 5 {
		t.Errorf("parseMus = %v", got)
	}
}

func TestWriteCSVAndFile(t *testing.T) {
	dir := t.TempDir()
	tbl := &report.Table{Headers: []string{"a"}, Rows: [][]string{{"1"}}}
	writeCSV(dir, "x.csv", tbl)
	b, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "a\n1\n") {
		t.Errorf("csv content = %q", b)
	}
	writeFile(dir, "y.svg", "<svg/>")
	b, err = os.ReadFile(filepath.Join(dir, "y.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "<svg/>" {
		t.Errorf("file content = %q", b)
	}
}

func TestAblationCfgCapsInstances(t *testing.T) {
	cfg := ablationCfg(5, 9, 2)
	if cfg.Instances != 5 || cfg.Seed != 9 || cfg.Workers != 2 {
		t.Errorf("ablationCfg = %+v", cfg)
	}
	big := ablationCfg(10_000, 1, 0)
	if big.Instances > 10_000 {
		t.Errorf("instances not capped sanely: %d", big.Instances)
	}
}

// TestRunExperimentsSmoke drives the top-level run functions with tiny
// parameters to make sure the wiring works end to end.
func TestRunExperimentsSmoke(t *testing.T) {
	dir := t.TempDir()
	runFigure4(1, 2, "1,5", 1, 0, dir)
	runTable1(1, dir)
	runUBCheck(2, 1, 0)
	runAblationBestFit(2, 1, 0, dir)
	runAblationClairvoyant(2, 1, 0, dir)
	runAblationBilling(2, 1, 0, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Errorf("expected artefacts in %s, found %d", dir, len(entries))
	}
}
