package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Errorf("Value = %g, want 2", got)
	}
	g.SetMax(1) // below current: no-op
	if got := g.Value(); got != 2 {
		t.Errorf("SetMax lowered the gauge to %g", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Errorf("SetMax = %g, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+100; got != want {
		t.Errorf("Sum = %g, want %g", got, want)
	}
	// Cumulative: le=1 -> {0.5, 1}; le=2 -> +{1.5, 2}; le=4 -> +{3, 4};
	// +Inf -> +{100}.
	want := []uint64{2, 4, 6, 7}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Buckets[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHistogramSortsAndDedupsBounds(t *testing.T) {
	h := NewHistogram(4, 1, 2, 2, 1)
	if got := h.Bounds(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Errorf("Bounds = %v, want [1 2 4]", got)
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	var (
		c  Counter
		g  Gauge
		h  = NewHistogram(10, 20)
		wg sync.WaitGroup
	)
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 30))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("Gauge = %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("Histogram count = %d, want %d", got, workers*per)
	}
}

func TestRegistrySnapshotOrderAndReuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Inc()
	r.Gauge("a_gauge", "first").Set(1.5)
	if c2 := r.Counter("b_total", "second"); c2.Value() != 1 {
		t.Error("re-registering a counter did not return the existing instrument")
	}
	s := r.Snapshot()
	if len(s.Metrics) != 2 || s.Metrics[0].Name != "b_total" || s.Metrics[1].Name != "a_gauge" {
		t.Errorf("snapshot order = %v, want registration order", s.Metrics)
	}
	if m, ok := s.Find("a_gauge"); !ok || m.Value != 1.5 {
		t.Errorf("Find(a_gauge) = %+v, %v", m, ok)
	}
}

func TestRegistryPanicsOnBadNameOrKindClash(t *testing.T) {
	r := NewRegistry()
	mustPanic(t, func() { r.Counter("bad name", "") })
	r.Counter("x_total", "")
	mustPanic(t, func() { r.Gauge("x_total", "") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "things").Add(3)
	h := r.Histogram("lat", "latency", 1, 2)
	h.Observe(0.5)
	h.Observe(10)

	var decoded struct {
		Metrics []struct {
			Name    string  `json:"name"`
			Kind    string  `json:"kind"`
			Value   float64 `json:"value"`
			Count   uint64  `json:"count"`
			Buckets []struct {
				Le    json.RawMessage `json:"le"`
				Count uint64          `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(decoded.Metrics) != 2 {
		t.Fatalf("decoded %d metrics, want 2", len(decoded.Metrics))
	}
	if m := decoded.Metrics[0]; m.Name != "n_total" || m.Kind != "counter" || m.Value != 3 {
		t.Errorf("counter decoded as %+v", m)
	}
	hist := decoded.Metrics[1]
	if hist.Count != 2 || len(hist.Buckets) != 3 {
		t.Fatalf("histogram decoded as %+v", hist)
	}
	if string(hist.Buckets[2].Le) != `"+Inf"` {
		t.Errorf("last bucket le = %s, want \"+Inf\"", hist.Buckets[2].Le)
	}
	if hist.Buckets[2].Count != 2 || hist.Buckets[0].Count != 1 {
		t.Errorf("cumulative bucket counts wrong: %+v", hist.Buckets)
	}
}

func TestSnapshotPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dvbp_things_total", "how many things").Add(5)
	r.Gauge("dvbp_level", "").Set(2.25)
	h := r.Histogram("dvbp_lat_seconds", "latency", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	text := r.Snapshot().Prometheus()
	for _, want := range []string{
		"# HELP dvbp_things_total how many things",
		"# TYPE dvbp_things_total counter",
		"dvbp_things_total 5",
		"# TYPE dvbp_level gauge",
		"dvbp_level 2.25",
		"# TYPE dvbp_lat_seconds histogram",
		`dvbp_lat_seconds_bucket{le="0.1"} 1`,
		`dvbp_lat_seconds_bucket{le="1"} 2`,
		`dvbp_lat_seconds_bucket{le="+Inf"} 3`,
		"dvbp_lat_seconds_sum 5.55",
		"dvbp_lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// A gauge with no help string must not emit a HELP line.
	if strings.Contains(text, "# HELP dvbp_level") {
		t.Error("HELP line emitted for empty help")
	}
}

func TestManualClock(t *testing.T) {
	var m Manual
	if m.Now() != 0 {
		t.Error("zero Manual clock not at 0")
	}
	m.Advance(3 * time.Second)
	m.Advance(2 * time.Second)
	if got := m.Now(); got != 5*time.Second {
		t.Errorf("Now = %v, want 5s", got)
	}
	mustPanic(t, func() { m.Advance(-time.Second) })
}

func TestWallClockMonotone(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestHistogramRejectsNonFiniteBounds(t *testing.T) {
	mustPanic(t, func() { NewHistogram(math.Inf(1)) })
	mustPanic(t, func() { NewHistogram(math.NaN()) })
}
