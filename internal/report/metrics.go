package report

import (
	"fmt"
	"io"

	"dvbp/internal/metrics"
)

// MetricsTable renders a metrics snapshot as a table: counters and gauges
// one per row with their value, histograms with count / mean / max-bucket
// summaries. The commands embed it next to their result tables so a run's
// engine telemetry reads like any other report artefact.
func MetricsTable(title string, s metrics.Snapshot) *Table {
	t := &Table{Title: title, Headers: []string{"metric", "kind", "value", "help"}}
	for _, m := range s.Metrics {
		switch m.Kind {
		case metrics.KindHistogram:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Sum / float64(m.Count)
			}
			t.AddRow(m.Name, string(m.Kind),
				fmt.Sprintf("count=%d mean=%s sum=%s", m.Count, F(mean), F(m.Sum)), m.Help)
		default:
			t.AddRow(m.Name, string(m.Kind), F(m.Value), m.Help)
		}
	}
	return t
}

// WriteMetrics writes all three renderings of a snapshot — aligned table,
// JSON, and Prometheus text exposition — to w. label distinguishes several
// dumps in one program run (e.g. one per policy); it may be empty.
func WriteMetrics(w io.Writer, label string, s metrics.Snapshot) error {
	suffix := ""
	if label != "" {
		suffix = ": " + label
	}
	_, err := fmt.Fprintf(w, "%s== metrics (json)%s ==\n%s\n== metrics (prometheus)%s ==\n%s",
		MetricsTable("== metrics"+suffix+" ==", s).Render(), suffix, s.JSON(), suffix, s.Prometheus())
	return err
}

// FragRow is one policy's entry in a fragmentation head-to-head table.
type FragRow struct {
	Label string
	// Ratio is the usage-time cost over the instance lower bound.
	Ratio   float64
	Summary metrics.FragSummary
}

// FragTable renders a waste/fragmentation comparison in the FARB evaluation's
// terms: per policy, the cost ratio, the share of rented capacity·time no
// item used (waste%), the share of free capacity·time locked behind a
// binding dimension (frag%), the time-weighted mean residual imbalance, and
// the total stranded capacity·time.
func FragTable(title string, rows []FragRow) *Table {
	t := &Table{Title: title, Headers: []string{"policy", "cost/LB", "waste%", "frag%", "imbalance", "stranded·time"}}
	for _, r := range rows {
		stranded := 0.0
		for _, x := range r.Summary.StrandedTime {
			stranded += x
		}
		t.AddRow(r.Label, F(r.Ratio), F(r.Summary.WastePct), F(r.Summary.FragPct),
			F(r.Summary.MeanImbalance), F(stranded))
	}
	return t
}
