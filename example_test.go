package dvbp_test

import (
	"fmt"
	"log"

	"dvbp"
)

// ExampleSimulate shows the minimal packing workflow: build an instance,
// choose a policy, run, and read the cost.
func ExampleSimulate() {
	l := dvbp.NewList(2)
	l.Add(0, 10, dvbp.Vec(0.5, 0.3))
	l.Add(1, 4, dvbp.Vec(0.4, 0.6))
	l.Add(2, 9, dvbp.Vec(0.3, 0.3))

	res, err := dvbp.Simulate(l, dvbp.NewMoveToFront())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost=%.0f bins=%d\n", res.Cost, res.BinsOpened)
	// Output: cost=17 bins=2
}

// ExampleLowerBounds brackets the optimum: Lemma 1 lower bounds below,
// offline heuristics above.
func ExampleLowerBounds() {
	l := dvbp.NewList(1)
	l.Add(0, 2, dvbp.Vec(0.8))
	l.Add(1, 3, dvbp.Vec(0.8))

	lb := dvbp.LowerBounds(l)
	up, err := dvbp.OfflineBestEstimate(l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPT in [%.0f, %.0f]\n", lb.Best(), up.Cost)
	// Output: OPT in [4, 4]
}

// ExampleTheoremEightInstance replays the Theorem 8 worst case for Move To
// Front and reports the certified competitive-ratio lower bound.
func ExampleTheoremEightInstance() {
	in, err := dvbp.TheoremEightInstance(8, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dvbp.Simulate(in.List, dvbp.NewMoveToFront())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bins=%d certified CR >= %.2f (target 2mu = %.0f)\n",
		res.BinsOpened, in.MeasuredRatio(res.Cost), in.AsymptoticRatio)
	// Output: bins=16 certified CR >= 8.89 (target 2mu = 20)
}

// ExampleRunCloud dispatches VM requests onto billed servers.
func ExampleRunCloud() {
	cfg := dvbp.CloudConfig{
		Capacity: dvbp.Vec(64, 256), // 64 vCPU, 256 GiB
		Policy:   dvbp.NewMoveToFront(),
		Billing:  dvbp.CloudBilling{Quantum: 1, PricePerUnit: 3},
	}
	reqs := []dvbp.CloudRequest{
		{ID: 1, Arrive: 0, Duration: 2.5, Demand: dvbp.Vec(32, 128)},
		{ID: 2, Arrive: 1, Duration: 1.0, Demand: dvbp.Vec(32, 128)},
	}
	rep, err := dvbp.RunCloud(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("servers=%d usage=%.1fh bill=$%.0f\n", rep.ServersRented, rep.UsageTime, rep.BilledCost)
	// Output: servers=1 usage=2.5h bill=$9
}

// ExampleSimulate_clairvoyant enables the clairvoyant extension: departure
// times become visible to the policy.
func ExampleSimulate_clairvoyant() {
	l := dvbp.NewList(1)
	l.Add(0, 1, dvbp.Vec(0.5))  // short
	l.Add(0, 64, dvbp.Vec(0.5)) // long
	res, err := dvbp.Simulate(l, dvbp.NewDurationClassFit(), dvbp.WithClairvoyance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bins=%d (classes kept apart)\n", res.BinsOpened)
	// Output: bins=2 (classes kept apart)
}

// ExampleWithFaults crashes a server mid-run: the item is evicted, retried
// immediately, and finishes its session on a replacement bin.
func ExampleWithFaults() {
	l := dvbp.NewList(1)
	l.Add(0, 10, dvbp.Vec(0.6))

	trace, err := dvbp.NewCrashTrace([]dvbp.CrashEvent{{BinID: 0, At: 4}})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dvbp.Simulate(l, dvbp.NewFirstFit(),
		dvbp.WithFaults(trace, dvbp.RetryImmediate{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost=%.0f bins=%d crashes=%d retries=%d outcome=%s\n",
		res.Cost, res.BinsOpened, res.Crashes, res.Retries, res.Outcomes[0])
	// Output: cost=10 bins=2 crashes=1 retries=1 outcome=served
}

// ExampleUniformWorkload generates the paper's Table 2 experimental model.
func ExampleUniformWorkload() {
	l, err := dvbp.UniformWorkload(dvbp.UniformConfig{D: 2, N: 100, Mu: 10, T: 100, B: 100}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("items=%d d=%d\n", l.Len(), l.Dim)
	// Output: items=100 d=2
}
