package core

import (
	"fmt"
	"sort"

	"dvbp/internal/vector"
)

// Bin is an open server/bin during simulation. Policies receive bins
// read-only: they may inspect load and metadata but must mutate nothing; all
// packing goes through the engine.
type Bin struct {
	// ID numbers bins by opening order, starting at 0. A smaller ID means an
	// earlier opening time (First Fit's order).
	ID int
	// OpenedAt is the time the bin received its first item.
	OpenedAt float64

	load   vector.Vector
	active map[int]vector.Vector // item ID -> size, for departure handling
	packed int                   // total items ever packed into this bin

	// openIdx is the bin's current index in the engine's open slice, kept
	// up to date by the engine so closing a bin needs no linear scan.
	openIdx int
	// probe, when armed by the engine around Policy.Select, counts Fits
	// evaluations for the SelectObserver instrumentation seam.
	probe *fitProbe
}

// fitProbe counts Bin.Fits evaluations while armed. The engine shares one
// probe across all of a run's bins and arms it only for the duration of
// Policy.Select, so the engine's own feasibility re-check inside pack is
// never counted.
type fitProbe struct {
	armed bool
	n     int
}

func newBin(id int, d int, openedAt float64) *Bin {
	return &Bin{
		ID:       id,
		OpenedAt: openedAt,
		load:     vector.New(d),
		active:   make(map[int]vector.Vector),
	}
}

// Load returns the current total size vector of the active items. The
// returned vector is a copy; policies may keep it.
func (b *Bin) Load() vector.Vector { return b.load.Clone() }

// LoadNorm returns ‖load‖∞ without allocating.
func (b *Bin) LoadNorm() float64 { return b.load.MaxNorm() }

// LoadSum returns ‖load‖1 without allocating.
func (b *Bin) LoadSum() float64 { return b.load.SumNorm() }

// LoadPNorm returns ‖load‖p without allocating a copy.
func (b *Bin) LoadPNorm(p float64) float64 { return b.load.PNorm(p) }

// Fits reports whether an item of the given size fits in the bin's residual
// capacity in every dimension.
func (b *Bin) Fits(size vector.Vector) bool {
	if b.probe != nil && b.probe.armed {
		b.probe.n++
	}
	return b.load.FitsWithin(size)
}

// ActiveItems returns the number of currently active items.
func (b *Bin) ActiveItems() int { return len(b.active) }

// PackedItems returns the number of items ever packed into the bin.
func (b *Bin) PackedItems() int { return b.packed }

// ActiveItemIDs returns the IDs of the active items in ascending order.
func (b *Bin) ActiveItemIDs() []int {
	ids := make([]int, 0, len(b.active))
	for id := range b.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Empty reports whether the bin has no active items (and should close).
func (b *Bin) Empty() bool { return len(b.active) == 0 }

func (b *Bin) pack(itemID int, size vector.Vector) error {
	if !b.Fits(size) {
		return fmt.Errorf("bin %d: item %d of size %v does not fit load %v", b.ID, itemID, size, b.load)
	}
	if _, dup := b.active[itemID]; dup {
		return fmt.Errorf("bin %d: item %d already packed", b.ID, itemID)
	}
	b.active[itemID] = size
	b.packed++
	b.recomputeLoad()
	return nil
}

func (b *Bin) remove(itemID int) error {
	if _, ok := b.active[itemID]; !ok {
		return fmt.Errorf("bin %d: item %d not active", b.ID, itemID)
	}
	delete(b.active, itemID)
	b.recomputeLoad()
	return nil
}

// recomputeLoad rebuilds the load as the sum of active item sizes in
// ascending item-ID order. Summing in a canonical order (rather than
// incrementally adding and subtracting) keeps the load bit-identical no
// matter which sequence of packs and departures produced the active set —
// floating-point addition is not associative, and load-driven policies such
// as Best Fit compare loads exactly, so representation drift would make
// otherwise-identical states behave differently.
func (b *Bin) recomputeLoad() {
	ids := make([]int, 0, len(b.active))
	for id := range b.active {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	load := vector.New(b.load.Dim())
	for _, id := range ids {
		load.AddInPlace(b.active[id])
	}
	b.load = load
}

// String renders a compact description for debugging.
func (b *Bin) String() string {
	return fmt.Sprintf("bin{id=%d, opened=%g, load=%v, active=%d}", b.ID, b.OpenedAt, b.load, len(b.active))
}
