package core

// Decision is one audited packing step: the arriving request, the bin chosen,
// whether a new bin was opened, and — for invariant checking — which of the
// then-open bins could have held the item.
type Decision struct {
	Req    Request
	BinID  int
	Opened bool
	// OpenBinIDs lists the bins open when the item arrived (before any new
	// bin was created), in opening order.
	OpenBinIDs []int
	// FittingBinIDs lists the subset of OpenBinIDs whose residual capacity
	// could hold the item.
	FittingBinIDs []int
	// LoadsLinf records ‖load‖∞ of each open bin at decision time, parallel
	// to OpenBinIDs.
	LoadsLinf []float64
}

// Audit accumulates Decisions during a run (attach with WithAudit). It exists
// for tests and analysis tooling: the Any Fit property, First Fit's
// lowest-index rule, Best/Worst Fit's argmax/argmin rule and Next Fit's
// single-current-bin discipline are all checkable from the recorded data.
type Audit struct {
	Decisions []Decision
}

// record is called by the engine before the item is packed, so every load
// and fit flag reflects exactly what the policy saw.
func (a *Audit) record(req Request, chosen *Bin, opened bool, open []*Bin) {
	d := Decision{Req: req, BinID: chosen.ID, Opened: opened}
	for _, b := range open {
		if b.ID == chosen.ID && opened {
			// The freshly opened bin is already in the engine's open list;
			// exclude it from the "was open on arrival" snapshot.
			continue
		}
		d.OpenBinIDs = append(d.OpenBinIDs, b.ID)
		d.LoadsLinf = append(d.LoadsLinf, b.LoadNorm())
		if b.Fits(req.Size) {
			d.FittingBinIDs = append(d.FittingBinIDs, b.ID)
		}
	}
	a.Decisions = append(a.Decisions, d)
}

// NewBinOpenings returns the number of decisions that opened a new bin.
func (a *Audit) NewBinOpenings() int {
	n := 0
	for _, d := range a.Decisions {
		if d.Opened {
			n++
		}
	}
	return n
}
