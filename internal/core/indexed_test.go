package core

import (
	"strings"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// indexedDiffPolicies returns the policy set the scan-vs-index differentials
// run over: all seven experiment policies (the six IndexedPolicy
// implementations plus Next Fit, whose Select is already O(1) and must be
// untouched by the option) and a Harmonic Fit baseline.
func indexedDiffPolicies(seed int64) []Policy {
	return append(StandardPolicies(seed), NewHarmonicFit(3))
}

// TestIndexedSelectMatchesLinearScan is the core bit-identity contract of
// DESIGN.md §11: for every policy and instance, the default indexed Select
// path and the WithLinearSelect scan produce byte-identical results —
// identical placements, bins, cost, and counters.
func TestIndexedSelectMatchesLinearScan(t *testing.T) {
	for seed := int64(400); seed < 406; seed++ {
		for _, d := range []int{1, 2, 3} {
			l := randomList(seed, 300, d, 25)
			for _, name := range policyNamesWith(t) {
				want := resultJSON(t, mustSimulate(t, l, newPolicyT(t, name, seed), WithLinearSelect()))
				got := resultJSON(t, mustSimulate(t, l, newPolicyT(t, name, seed)))
				if got != want {
					t.Errorf("%s seed=%d d=%d: indexed result diverges from linear scan", name, seed, d)
				}
			}
		}
	}
}

// TestIndexedSelectMatchesLinearScanUnderFaults extends the bit-identity
// contract to the failure paths: crashes evict items mid-run, retries
// re-dispatch them, admission is capped with a wait queue — and the indexed
// engine must still follow the linear scan decision for decision.
func TestIndexedSelectMatchesLinearScanUnderFaults(t *testing.T) {
	for seed := int64(500); seed < 505; seed++ {
		l := randomList(seed, 250, 2, 20)
		for _, name := range policyNamesWith(t) {
			want := resultJSON(t, mustSimulate(t, l, newPolicyT(t, name, seed),
				append(snapshotOpts(), WithLinearSelect())...))
			got := resultJSON(t, mustSimulate(t, l, newPolicyT(t, name, seed), snapshotOpts()...))
			if got != want {
				t.Errorf("%s seed=%d: indexed result diverges from linear scan under faults", name, seed)
			}
		}
	}
}

// TestIndexedSelectMatchesLinearAcrossRestore closes the loop with the
// persistence layer: an indexed engine snapshotted mid-run and restored into
// a fresh engine (index rebuilt from the snapshot, never serialised) must
// finish with the same result as an uninterrupted linear-scan run.
func TestIndexedSelectMatchesLinearAcrossRestore(t *testing.T) {
	l := randomList(600, 200, 2, 20)
	for _, name := range policyNamesWith(t) {
		want := resultJSON(t, mustSimulate(t, l, newPolicyT(t, name, 600),
			append(snapshotOpts(), WithLinearSelect())...))

		for _, cut := range []int{0, 1, 37, 150} {
			e, err := NewEngine(l, newPolicyT(t, name, 600), snapshotOpts()...)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			for k := 0; k < cut; k++ {
				if _, ok, err := e.Step(); err != nil {
					t.Fatalf("%s: Step %d: %v", name, k, err)
				} else if !ok {
					break
				}
			}
			s, err := e.Snapshot()
			if err != nil {
				t.Fatalf("%s: Snapshot at %d: %v", name, cut, err)
			}
			e.Close()
			re, err := RestoreEngine(l, newPolicyT(t, name, 999), s, snapshotOpts()...)
			if err != nil {
				t.Fatalf("%s: RestoreEngine at %d: %v", name, cut, err)
			}
			_, res := stepAll(t, re)
			if got := resultJSON(t, res); got != want {
				t.Errorf("%s: restored-at-%d indexed run diverges from linear scan", name, cut)
			}
		}
	}
}

// TestIndexedAuditOracle arms the per-decision oracle: under WithAudit the
// engine re-derives every indexed decision with the linear scan and
// re-validates the store's structural invariants after every mutation, so a
// single run per policy sweeps thousands of equivalence checks. Random Fit
// is skipped by the oracle (Select draws randomness) but still validated.
func TestIndexedAuditOracle(t *testing.T) {
	for seed := int64(700); seed < 703; seed++ {
		l := randomList(seed, 300, 2, 25)
		for _, p := range indexedDiffPolicies(seed) {
			var a Audit
			mustSimulate(t, l, p, WithAudit(&a), snapshotOpts()[0])
		}
	}
}

// TestIndexedCrashRetrySameEvent is the regression test for the
// crash-eviction reorder case: a crashed bin's evicted items retry with zero
// delay, so they re-dispatch inside the same event that removed the crashed
// bin from the index — and the later retries land in the bin the earlier
// retries just opened. The index must see the removal before the insert and
// serve the re-packs from a consistent tree; audit mode cross-checks every
// one of those decisions against the linear scan.
func TestIndexedCrashRetrySameEvent(t *testing.T) {
	// Three small items share bin 0; it crashes at t=4 while all are
	// resident. With nil RetryPolicy the evictions retry immediately: the
	// first retry opens bin 1 (indexed mid-event), the remaining two must
	// be packed into that same just-opened bin.
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.3))
	l.Add(0, 10, vector.Of(0.3))
	l.Add(0, 10, vector.Of(0.3))

	for _, name := range policyNamesWith(t) {
		var a Audit
		res := mustSimulate(t, l, newPolicyT(t, name, 1), WithAudit(&a), WithFaults(traceInj{0: 4}, nil))
		if res.Crashes != 1 || res.Evictions != 3 || res.Retries != 3 || res.ItemsLost != 0 {
			t.Fatalf("%s: counters: crashes=%d evictions=%d retries=%d lost=%d",
				name, res.Crashes, res.Evictions, res.Retries, res.ItemsLost)
		}
		want := resultJSON(t, mustSimulate(t, l, newPolicyT(t, name, 1),
			WithLinearSelect(), WithFaults(traceInj{0: 4}, nil)))
		if got := resultJSON(t, res); got != want {
			t.Errorf("%s: same-event crash-retry result diverges from linear scan", name)
		}
	}
}

// TestLinearSelectOptionForcesScan pins WithLinearSelect's contract: the
// engine must not build an index at all, so fit-check accounting reverts to
// the policy's own probe counts.
func TestLinearSelectOptionForcesScan(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.6))
	l.Add(1, 10, vector.Of(0.6))
	e, err := NewEngine(l, NewFirstFit(), WithLinearSelect())
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.idx != nil || e.ip != nil {
		t.Fatal("WithLinearSelect must suppress the bin index")
	}
}

// policyNamesWith lists the canonical registry names the differentials run
// over, including both Best/Worst Fit load measures (their keys exercise the
// float word of the composite key, unlike the ID-keyed policies) and the
// fragmentation-aware family (item-dependent scores over AscendFeasible).
func policyNamesWith(t *testing.T) []string {
	t.Helper()
	return append(append(PolicyNames(), "BestFit-L1", "WorstFit-L1", "HarmonicFit-3"),
		FragmentationAwareNames()...)
}

// newPolicyT constructs a registry policy or fails the test.
func newPolicyT(t *testing.T, name string, seed int64) Policy {
	t.Helper()
	p, err := NewPolicy(name, seed)
	if err != nil {
		t.Fatalf("NewPolicy(%q): %v", name, err)
	}
	return p
}

// TestIndexProfileValidated pins the constructor guard: a policy declaring
// both or neither of Key and Recency is a programming error the engine
// refuses to run with.
func TestIndexProfileValidated(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, vector.Of(0.1))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("want panic for invalid IndexProfile")
		}
		if !strings.Contains(r.(string), "IndexProfile") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	_, _ = NewEngine(l, badProfilePolicy{NewFirstFit()})
}

// badProfilePolicy declares an IndexProfile with neither Key nor Recency.
type badProfilePolicy struct{ *FirstFit }

func (badProfilePolicy) IndexProfile() IndexProfile { return IndexProfile{} }
