package search

import (
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/exactopt"
	"dvbp/internal/experiments"
)

func smallCfg(policy string) Config {
	return Config{
		Policy: policy, D: 1, Items: 8,
		MaxMu: 6, TimeRange: 8,
		Restarts: 3, Steps: 60, Seed: 1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg("FirstFit").Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Policy: "FirstFit", D: 0, Items: 4, MaxMu: 2, TimeRange: 4, Restarts: 1, Steps: 1},
		{Policy: "FirstFit", D: 1, Items: 1, MaxMu: 2, TimeRange: 4, Restarts: 1, Steps: 1},
		{Policy: "FirstFit", D: 1, Items: 4, MaxMu: 0.5, TimeRange: 4, Restarts: 1, Steps: 1},
		{Policy: "FirstFit", D: 1, Items: 4, MaxMu: 2, TimeRange: 0, Restarts: 1, Steps: 1},
		{Policy: "FirstFit", D: 1, Items: 4, MaxMu: 2, TimeRange: 4, Restarts: 0, Steps: 1},
		{Policy: "Nope", D: 1, Items: 4, MaxMu: 2, TimeRange: 4, Restarts: 1, Steps: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSearchFindsNontrivialWitness(t *testing.T) {
	w, err := Run(smallCfg("NextFit"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Ratio <= 1.05 {
		t.Errorf("search found only ratio %v; expected a nontrivial Next Fit witness", w.Ratio)
	}
	if w.Evaluations < 10 {
		t.Errorf("suspiciously few evaluations: %d", w.Evaluations)
	}
	if err := w.List.Validate(); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
}

// TestWitnessIsReproducible: replaying the witness gives exactly the reported
// cost, OPT and ratio.
func TestWitnessIsReproducible(t *testing.T) {
	cfg := smallCfg("FirstFit")
	w, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPolicy(cfg.Policy, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(w.List, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != w.Cost {
		t.Errorf("replayed cost %v != reported %v", res.Cost, w.Cost)
	}
	opt, err := exactopt.Opt(w.List, exactopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt != w.Opt {
		t.Errorf("replayed OPT %v != reported %v", opt, w.Opt)
	}
}

func TestSearchDeterminism(t *testing.T) {
	a, err := Run(smallCfg("MoveToFront"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg("MoveToFront"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || a.Cost != b.Cost || a.Opt != b.Opt {
		t.Errorf("same seed, different witnesses: %v vs %v", a.Ratio, b.Ratio)
	}
}

// TestSearchRespectsUpperBounds: no machine-found witness may exceed the
// Table 1 upper bound of its policy — a strong end-to-end consistency check
// between the search, the exact OPT and the theory.
func TestSearchRespectsUpperBounds(t *testing.T) {
	for _, policy := range []string{"MoveToFront", "FirstFit", "NextFit"} {
		cfg := smallCfg(policy)
		w, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mu := w.List.Mu()
		bound := experiments.Table1UpperBound(policy, mu, cfg.D)
		if w.Ratio > bound+1e-9 {
			t.Errorf("%s: witness ratio %v exceeds Table 1 bound %v (mu=%v) — bug or disproof!",
				policy, w.Ratio, bound, mu)
		}
	}
}

// TestSearchBeatsRandomSampling: hill climbing should do at least as well as
// its own first evaluations; we check the returned ratio is the max over a
// re-run with zero steps (restarts only).
func TestSearchBeatsRandomSampling(t *testing.T) {
	full := smallCfg("NextFit")
	randOnly := full
	randOnly.Steps = 1
	w1, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Run(randOnly)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Ratio < w2.Ratio-1e-9 {
		t.Errorf("hill climbing (%v) worse than near-random sampling (%v)", w1.Ratio, w2.Ratio)
	}
}

func TestSearchAllPoliciesSmoke(t *testing.T) {
	for _, name := range core.PolicyNames() {
		cfg := smallCfg(name)
		cfg.Restarts, cfg.Steps = 2, 20
		w, err := Run(cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.Ratio < 1-1e-9 {
			t.Errorf("%s: ratio %v < 1", name, w.Ratio)
		}
	}
}

func BenchmarkSearchNextFit(b *testing.B) {
	cfg := smallCfg("NextFit")
	cfg.Restarts, cfg.Steps = 1, 20
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		w, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = w.Ratio
	}
	b.ReportMetric(ratio, "best-ratio")
}
