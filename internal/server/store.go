package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/persist"
	"dvbp/internal/vfs"
)

// Store directory layout:
//
//	root/tenants.json       manifest: []TenantConfig, atomically replaced
//	root/<tenant>/ops.dvbp  the tenant's op log (persist.KindOpLog)
//	root/<tenant>/wal.dvbp  the tenant's write-ahead log
//	root/<tenant>/snap-*    the tenant's checkpoints
const (
	manifestFile = "tenants.json"
	opsFile      = "ops.dvbp"
)

// tenantName pins the tenant-name grammar: path-safe, no dots, no
// separators, bounded length.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// storeMetrics is the instrument set a Store maintains in the server's
// metrics registry.
type storeMetrics struct {
	tenants        *metrics.Gauge
	queueDepth     *metrics.Gauge
	batchSize      *metrics.Histogram
	backpressure   *metrics.Counter
	deadlines      *metrics.Counter
	items          *metrics.Counter
	events         *metrics.Counter
	tenantFailures *metrics.Counter
	recoveries     *metrics.Counter
	corruptions    *metrics.Counter
	ioRetries      *metrics.Counter
	degraded       *metrics.Gauge
	compactions    *metrics.Counter
	reclaimed      *metrics.Counter
}

func newStoreMetrics(reg *metrics.Registry) *storeMetrics {
	return &storeMetrics{
		tenants:        reg.Gauge("dvbp_server_tenants", "live tenants"),
		queueDepth:     reg.Gauge("dvbp_server_queue_depth", "requests currently queued across tenants"),
		batchSize:      reg.Histogram("dvbp_server_batch_size", "requests per group commit", 1, 2, 4, 8, 16, 32, 64, 128),
		backpressure:   reg.Counter("dvbp_server_backpressure_total", "requests refused with 429 because a tenant queue was full"),
		deadlines:      reg.Counter("dvbp_server_deadline_total", "requests expired in queue and refused with 503"),
		items:          reg.Counter("dvbp_server_items_total", "items placed across tenants"),
		events:         reg.Counter("dvbp_server_events_total", "engine events committed across tenants"),
		tenantFailures: reg.Counter("dvbp_server_tenant_failures_total", "tenants poisoned by a persistence failure"),
		recoveries:     reg.Counter("dvbp_server_recovered_tenants_total", "tenants recovered from disk at startup"),
		corruptions:    reg.Counter("dvbp_server_recovery_corruptions_total", "corruptions tolerated during tenant recovery (torn tails, skipped snapshots)"),
		ioRetries:      reg.Counter("dvbp_server_io_retries_total", "transient I/O failures retried or absorbed instead of poisoning a tenant"),
		degraded:       reg.Gauge("dvbp_server_degraded_tenants", "tenants currently in read-only degraded mode"),
		compactions:    reg.Counter("dvbp_server_compactions_total", "WAL and op-log compactions completed across tenants"),
		reclaimed:      reg.Counter("dvbp_server_compaction_reclaimed_bytes_total", "on-disk bytes reclaimed by compaction"),
	}
}

// Store owns the multi-tenant data directory: the manifest, one subdirectory
// per tenant, and the live Tenant workers. All methods are safe for
// concurrent use.
type Store struct {
	root   string
	limits Limits
	fs     vfs.FS
	m      *storeMetrics

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool
}

// OpenStore opens (creating if needed) the data directory at root and
// recovers every tenant in the manifest. Recovery is all-or-nothing per
// store: a tenant whose data is damaged beyond the persist layer's tolerance
// fails the open, because silently dropping a tenant would break the
// acknowledged-placements contract.
func OpenStore(root string, limits Limits, reg *metrics.Registry) (*Store, error) {
	if root == "" {
		return nil, fmt.Errorf("server: no data directory configured")
	}
	fsys := vfs.OrOS(limits.FS)
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Store{
		root:    root,
		limits:  limits.withDefaults(),
		fs:      fsys,
		m:       newStoreMetrics(reg),
		tenants: make(map[string]*Tenant),
	}
	cfgs, err := s.readManifest()
	if err != nil {
		return nil, err
	}
	for _, cfg := range cfgs {
		t, err := s.recoverTenant(cfg)
		if err != nil {
			for _, live := range s.tenants {
				live.close()
			}
			return nil, fmt.Errorf("server: recovering tenant %q: %w", cfg.Name, err)
		}
		s.tenants[cfg.Name] = t
		s.m.recoveries.Inc()
	}
	s.m.tenants.Set(float64(len(s.tenants)))
	return s, nil
}

// readManifest loads the tenant list; a missing manifest is an empty store.
func (s *Store) readManifest() ([]TenantConfig, error) {
	data, err := s.fs.ReadFile(filepath.Join(s.root, manifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var cfgs []TenantConfig
	if err := json.Unmarshal(data, &cfgs); err != nil {
		return nil, fmt.Errorf("server: corrupt manifest %s: %w", manifestFile, err)
	}
	return cfgs, nil
}

// writeManifest atomically replaces the manifest with the current tenant
// set. Caller holds s.mu.
func (s *Store) writeManifest() error {
	cfgs := make([]TenantConfig, 0, len(s.tenants))
	for _, t := range s.tenants {
		cfgs = append(cfgs, t.cfg)
	}
	sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].Name < cfgs[j].Name })
	data, err := json.MarshalIndent(cfgs, "", "  ")
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	return persist.WriteFileAtomic(s.fs, filepath.Join(s.root, manifestFile), append(data, '\n'))
}

// checkConfig validates a tenant config at admission time.
func checkConfig(cfg TenantConfig) *apiError {
	if !tenantName.MatchString(cfg.Name) {
		return errf(http.StatusBadRequest, "bad_name",
			"tenant name %q must match %s", cfg.Name, tenantName.String())
	}
	if cfg.Dim < 1 || cfg.Dim > 64 {
		return errf(http.StatusBadRequest, "bad_dim", "dim %d outside [1, 64]", cfg.Dim)
	}
	if cfg.CheckpointEvery < 0 {
		return errf(http.StatusBadRequest, "bad_checkpoint", "checkpoint_every %d is negative", cfg.CheckpointEvery)
	}
	if _, err := core.NewPolicy(cfg.Policy, cfg.Seed); err != nil {
		return errf(http.StatusBadRequest, "bad_policy", "%v", err)
	}
	return nil
}

// Create provisions a fresh tenant: directory, op log, WAL, worker. The
// manifest is updated only after the tenant's files are durably in place.
func (s *Store) Create(cfg TenantConfig) (*Tenant, *apiError) {
	if aerr := checkConfig(cfg); aerr != nil {
		return nil, aerr
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errDraining
	}
	if _, dup := s.tenants[cfg.Name]; dup {
		return nil, errf(http.StatusConflict, "tenant_exists", "tenant %q already exists", cfg.Name)
	}
	dir := filepath.Join(s.root, cfg.Name)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, errf(http.StatusInternalServerError, "io", "creating tenant directory: %v", err)
	}
	meta := persist.NewDynamicRunMeta(cfg.Dim, cfg.Policy, cfg.Seed, "")
	// The op log writer syncs only at the group-commit barrier (SyncManual):
	// a failed barrier can then roll the whole batch back, all-or-nothing,
	// with no auto-sync having leaked half of it to the device.
	ops, err := persist.CreateOpLog(s.fs, filepath.Join(dir, opsFile), meta, persist.SyncManual)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "io", "creating op log: %v", err)
	}
	p, err := core.NewPolicy(cfg.Policy, cfg.Seed)
	if err != nil {
		ops.Close()
		return nil, errf(http.StatusBadRequest, "bad_policy", "%v", err)
	}
	engine, err := core.NewEngine(item.NewList(cfg.Dim), p, core.WithDynamicArrivals())
	if err != nil {
		ops.Close()
		return nil, errf(http.StatusInternalServerError, "engine", "%v", err)
	}
	session, err := persist.Begin(engine, meta, persist.Config{
		Dir: dir, Label: cfg.Name, Every: cfg.CheckpointEvery, SyncEvery: s.limits.SyncEvery,
		FS: s.fs, Compact: cfg.CheckpointEvery > 0,
	})
	if err != nil {
		engine.Close()
		ops.Close()
		return nil, errf(http.StatusInternalServerError, "io", "starting session: %v", err)
	}
	t := newTenant(cfg, dir, s.limits, s.m)
	t.start(session, ops, 0)
	s.tenants[cfg.Name] = t
	if err := s.writeManifest(); err != nil {
		delete(s.tenants, cfg.Name)
		t.close()
		return nil, errf(http.StatusInternalServerError, "io", "writing manifest: %v", err)
	}
	s.m.tenants.Set(float64(len(s.tenants)))
	return t, nil
}

// recoverTenant rebuilds one tenant from its directory: item list and
// watermark from the op log, engine state from snapshot + verified WAL
// replay, then the clock re-run to the last durable advance target so
// acknowledged departures stay committed.
func (s *Store) recoverTenant(cfg TenantConfig) (*Tenant, error) {
	if aerr := checkConfig(cfg); aerr != nil {
		return nil, aerr
	}
	dir := filepath.Join(s.root, cfg.Name)
	logged, err := persist.ReadOpLog(s.fs, filepath.Join(dir, opsFile), cfg.Name)
	if err != nil {
		return nil, err
	}
	if logged.Torn != nil {
		s.m.corruptions.Inc()
	}
	if want := persist.NewDynamicRunMeta(cfg.Dim, cfg.Policy, cfg.Seed, ""); logged.Meta != want {
		return nil, fmt.Errorf("op log identity %+v disagrees with manifest %+v", logged.Meta, want)
	}
	rec, err := persist.Recover(logged.List, persist.Config{
		Dir: dir, Label: cfg.Name, Every: cfg.CheckpointEvery, SyncEvery: s.limits.SyncEvery,
		FS: s.fs, Compact: cfg.CheckpointEvery > 0,
	}, core.WithDynamicArrivals())
	if err != nil {
		return nil, err
	}
	s.m.corruptions.Add(uint64(len(rec.Corruptions)))

	// An advance op can be durable while the events it committed are not
	// (crash between the two barriers). Re-run the clock to the last logged
	// advance; determinism makes this produce the lost events verbatim.
	for {
		tt, ok := rec.Session.Engine().PeekTime()
		if !ok || tt > logged.MaxAdvance {
			break
		}
		if _, ok, err := rec.Session.Step(); err != nil {
			rec.Session.Close()
			return nil, fmt.Errorf("re-advancing to %g: %w", logged.MaxAdvance, err)
		} else if !ok {
			break
		}
	}
	if err := rec.Session.Sync(); err != nil {
		rec.Session.Close()
		return nil, err
	}
	ops, err := persist.ReopenOpLog(s.fs, filepath.Join(dir, opsFile), logged.ValidSize, persist.SyncManual)
	if err != nil {
		rec.Session.Close()
		return nil, err
	}
	t := newTenant(cfg, dir, s.limits, s.m)
	t.start(rec.Session, ops, logged.Watermark)
	return t, nil
}

// Get returns the named live tenant.
func (s *Store) Get(name string) (*Tenant, *apiError) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tenants[name]; ok {
		return t, nil
	}
	return nil, errf(http.StatusNotFound, "no_such_tenant", "no tenant %q", name)
}

// List returns the tenant configs, sorted by name.
func (s *Store) List() []TenantConfig {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TenantConfig, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, t.cfg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete drains and removes a tenant: worker stopped, manifest updated,
// directory deleted.
func (s *Store) Delete(name string) *apiError {
	s.mu.Lock()
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return errf(http.StatusNotFound, "no_such_tenant", "no tenant %q", name)
	}
	delete(s.tenants, name)
	merr := s.writeManifest()
	s.m.tenants.Set(float64(len(s.tenants)))
	s.mu.Unlock()

	t.close()
	if err := s.fs.RemoveAll(t.dir); err != nil {
		return errf(http.StatusInternalServerError, "io", "removing tenant data: %v", err)
	}
	if merr != nil {
		return errf(http.StatusInternalServerError, "io", "writing manifest: %v", merr)
	}
	return nil
}

// Degraded lists the names of tenants currently in read-only degraded mode,
// sorted; /readyz reports them.
func (s *Store) Degraded() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for name, t := range s.tenants {
		if t.degradedFlag.Load() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Close drains every tenant: intake stops, queued batches finish and are
// acknowledged, WALs and op logs sync and close. The store refuses new
// tenants afterwards.
func (s *Store) Close() {
	s.mu.Lock()
	s.closed = true
	live := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		live = append(live, t)
	}
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, t := range live {
		wg.Add(1)
		go func(t *Tenant) {
			defer wg.Done()
			t.close()
		}(t)
	}
	wg.Wait()
}
