package analysis

import (
	"math"
	"math/rand"
	"testing"

	"dvbp/internal/adversary"
	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func randomList(seed int64, n, d int, maxDur float64) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 100)
		dur := 1 + math.Floor(r.Float64()*maxDur)
		size := vector.New(d)
		for j := range size {
			size[j] = (1 + math.Floor(r.Float64()*100)) / 100
		}
		l.Add(a, a+dur, size)
	}
	return l
}

func runMTF(t *testing.T, l *item.List) (*core.Result, *MTFDecomposition) {
	t.Helper()
	p := core.NewMoveToFront()
	d := NewMTFDecomposition(p)
	res, err := core.Simulate(l, p, core.WithObserver(d))
	if err != nil {
		t.Fatal(err)
	}
	return res, d
}

func TestMTFDecompositionSingleBin(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 5, vector.Of(0.5))
	res, d := runMTF(t, l)
	segs := d.Segments()
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	if segs[0].BinID != 0 || segs[0].Interval.Lo != 0 || segs[0].Interval.Hi != 5 {
		t.Errorf("segment = %+v", segs[0])
	}
	if err := d.Verify(res); err != nil {
		t.Error(err)
	}
	if got := d.NonLeadingCost(res); math.Abs(got) > 1e-9 {
		t.Errorf("NonLeadingCost = %v, want 0", got)
	}
}

func TestMTFDecompositionLeaderHandoff(t *testing.T) {
	// Bin 0 leads on [0,1); bin 1 opens at 1 and leads until its close at 3;
	// bin 0 still holds its item until 5 and resumes leadership on [3,5).
	l := item.NewList(1)
	l.Add(0, 5, vector.Of(0.6)) // bin 0
	l.Add(1, 3, vector.Of(0.6)) // bin 1 (forces new bin, becomes leader)
	res, d := runMTF(t, l)
	if got := d.LeadingTime(0); math.Abs(got-3) > 1e-9 {
		t.Errorf("bin 0 leading time = %v, want 3 ([0,1) and [3,5))", got)
	}
	if got := d.LeadingTime(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("bin 1 leading time = %v, want 2", got)
	}
	if err := d.Verify(res); err != nil {
		t.Error(err)
	}
	// cost = 5 + 2 = 7; leading total = span = 5; non-leading = 2.
	if got := d.NonLeadingCost(res); math.Abs(got-2) > 1e-9 {
		t.Errorf("NonLeadingCost = %v, want 2", got)
	}
}

func TestMTFDecompositionWithGaps(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, vector.Of(0.5))
	l.Add(10, 12, vector.Of(0.5))
	res, d := runMTF(t, l)
	if err := d.Verify(res); err != nil {
		t.Error(err)
	}
	if got := d.TotalLeadingTime(); math.Abs(got-3) > 1e-9 {
		t.Errorf("TotalLeadingTime = %v, want span 3", got)
	}
}

// TestClaim1OnRandomInstances: Σℓ(P) = span(R) across random workloads.
func TestClaim1OnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		l := randomList(seed, 300, 2, 25)
		res, d := runMTF(t, l)
		if err := d.Verify(res); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestClaim1OnAdversarialInstance: the decomposition also holds on the
// Theorem 8 worst case, where non-leading cost dominates.
func TestClaim1OnAdversarialInstance(t *testing.T) {
	in, err := adversary.Theorem8(16, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, d := runMTF(t, in.List)
	if err := d.Verify(res); err != nil {
		t.Error(err)
	}
	// span = mu = 10; cost = 2n*mu = 320; non-leading = 310.
	if got := d.NonLeadingCost(res); math.Abs(got-310) > 1e-6 {
		t.Errorf("NonLeadingCost = %v, want 310", got)
	}
}

func TestFFDecomposeTheoremExample(t *testing.T) {
	// Bin 0: [0,10); bin 1: [2,12). t_1 = 10, so P_1 = [2,10), Q_1 = [10,12).
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.6))
	l.Add(2, 12, vector.Of(0.6))
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	dec := FFDecompose(res)
	if len(dec) != 2 {
		t.Fatalf("decompositions = %d", len(dec))
	}
	if dec[0].P.Length() != 0 || dec[0].Q.Length() != 10 {
		t.Errorf("bin 0: P=%v Q=%v", dec[0].P, dec[0].Q)
	}
	if math.Abs(dec[1].P.Length()-8) > 1e-9 || math.Abs(dec[1].Q.Length()-2) > 1e-9 {
		t.Errorf("bin 1: P=%v Q=%v", dec[1].P, dec[1].Q)
	}
	if err := VerifyFFDecomposition(res); err != nil {
		t.Error(err)
	}
}

// TestClaim4OnRandomInstances: Σℓ(Q) = span for First Fit results — and
// since the identity is purely geometric (bins sorted by opening), for every
// other policy too.
func TestClaim4OnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		l := randomList(seed, 300, 2, 25)
		for _, p := range core.StandardPolicies(seed) {
			res, err := core.Simulate(l, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyFFDecomposition(res); err != nil {
				t.Errorf("%s seed %d: %v", p.Name(), seed, err)
			}
		}
	}
}

func TestSplitCost(t *testing.T) {
	res := &core.Result{Cost: 12, Span: 5}
	s := SplitCost(res)
	if s.Covering != 5 || s.Overhead != 7 {
		t.Errorf("SplitCost = %+v", s)
	}
}

// TestTheorem2BoundViaDecomposition: the decomposition certifies the
// structure of the Theorem 2 bound on every instance:
// cost = Σℓ(P) + Σℓ(Q) with Σℓ(P) = span ≤ OPT.
func TestTheorem2BoundViaDecomposition(t *testing.T) {
	for seed := int64(20); seed < 25; seed++ {
		l := randomList(seed, 200, 2, 20)
		res, d := runMTF(t, l)
		lead := d.TotalLeadingTime()
		nonLead := d.NonLeadingCost(res)
		if math.Abs(lead+nonLead-res.Cost) > 1e-6 {
			t.Errorf("seed %d: P+Q = %v != cost %v", seed, lead+nonLead, res.Cost)
		}
		if nonLead < -1e-9 {
			t.Errorf("seed %d: negative non-leading cost %v", seed, nonLead)
		}
	}
}
