package dvbp_test

import (
	"bytes"
	"math"
	"testing"

	"dvbp"
	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/lowerbound"
	"dvbp/internal/offline"
	"dvbp/internal/workload"
)

// TestEndToEndPipeline drives the whole system the way cmd/dvbpbench does:
// generate -> serialise -> reload -> pack under every policy -> bracket OPT
// -> cross-check every invariant between subsystems.
func TestEndToEndPipeline(t *testing.T) {
	cfg := workload.UniformConfig{D: 3, N: 400, Mu: 20, T: 400, B: 100}
	l, err := workload.Uniform(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}

	// Serialise and reload: the replay must be bit-identical.
	var buf bytes.Buffer
	if err := workload.WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	reloaded, err := workload.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	lb := lowerbound.Compute(l)
	up, err := offline.BestUpperEstimate(l)
	if err != nil {
		t.Fatal(err)
	}
	if lb.Best() > up.Cost+1e-9 {
		t.Fatalf("OPT bracket inverted: [%v, %v]", lb.Best(), up.Cost)
	}

	for _, p := range core.StandardPolicies(99) {
		orig, err := core.Simulate(l, p)
		if err != nil {
			t.Fatal(err)
		}
		replay, err := core.Simulate(reloaded, p)
		if err != nil {
			t.Fatal(err)
		}
		if orig.Cost != replay.Cost || orig.BinsOpened != replay.BinsOpened {
			t.Errorf("%s: replay diverged: %v/%d vs %v/%d",
				p.Name(), orig.Cost, orig.BinsOpened, replay.Cost, replay.BinsOpened)
		}
		if orig.Cost < lb.Best()-1e-6 {
			t.Errorf("%s: cost %v below lower bound %v", p.Name(), orig.Cost, lb.Best())
		}
		// Every bound from the theory must hold with the offline certificate.
		mu := l.Mu()
		var bound float64
		switch p.Name() {
		case "MoveToFront":
			bound = (2*mu+1)*float64(cfg.D) + 1
		case "FirstFit":
			bound = (mu+2)*float64(cfg.D) + 1
		case "NextFit":
			bound = 2*mu*float64(cfg.D) + 1
		default:
			continue
		}
		if orig.Cost > bound*up.Cost+1e-6 {
			t.Errorf("%s: cost %v exceeds bound %v * OPTUpper %v", p.Name(), orig.Cost, bound, up.Cost)
		}
	}
}

// TestEndToEndTheoremDecompositions runs the proof instrumentation on a
// realistic workload end to end.
func TestEndToEndTheoremDecompositions(t *testing.T) {
	l, err := workload.Spike(workload.SpikeConfig{
		D: 2, Horizon: 150, BaseRate: 1,
		Spikes: 3, SpikeWidth: 5, SpikeFactor: 6,
		MeanDuration: 6, MinDuration: 1, MaxDuration: 40,
		MaxSize: 0.5,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	mtf := core.NewMoveToFront()
	obs := analysis.NewMTFDecomposition(mtf)
	res, err := core.Simulate(l, mtf, core.WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Verify(res); err != nil {
		t.Errorf("Claim 1 on spike workload: %v", err)
	}
	ff, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.VerifyFFDecomposition(ff); err != nil {
		t.Errorf("Claim 4 on spike workload: %v", err)
	}
}

// TestEndToEndCloudBillingMatchesEngineCost: at per-second billing with unit
// price the cloud bill must equal the engine's MinUsageTime cost exactly.
func TestEndToEndCloudBillingMatchesEngineCost(t *testing.T) {
	l, err := workload.Sessions(workload.SessionConfig{
		D: 2, Horizon: 100, Rate: 2,
		MeanDuration: 5, Alpha: 2.3, MinDuration: 1, MaxDuration: 50,
	}, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Convert to cloud requests in native units (capacity 10 per dim).
	cap := dvbp.Vec(10, 10)
	var reqs []dvbp.CloudRequest
	for _, it := range l.Items {
		reqs = append(reqs, dvbp.CloudRequest{
			ID:       it.ID,
			Arrive:   it.Arrival,
			Duration: it.Duration(),
			Demand:   dvbp.Vec(it.Size[0]*10, it.Size[1]*10),
		})
	}
	rep, err := dvbp.RunCloud(dvbp.CloudConfig{
		Capacity: cap,
		Policy:   dvbp.NewFirstFit(),
		Billing:  dvbp.CloudBilling{Quantum: 0, PricePerUnit: 1},
	}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.UsageTime-res.Cost) > 1e-6 || math.Abs(rep.BilledCost-res.Cost) > 1e-6 {
		t.Errorf("cloud usage %v / bill %v != engine cost %v", rep.UsageTime, rep.BilledCost, res.Cost)
	}
	if rep.ServersRented != res.BinsOpened {
		t.Errorf("servers %d != bins %d", rep.ServersRented, res.BinsOpened)
	}
}

// TestEndToEndAdversarialAgainstOfflinePackers: on the Theorem 5 instance the
// offline heuristics should get close to the OPT certificate, confirming the
// certificate is not vacuously loose.
func TestEndToEndAdversarialAgainstOfflinePackers(t *testing.T) {
	in, err := dvbp.TheoremFiveInstance(2, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	up, err := offline.BestUpperEstimate(in.List)
	if err != nil {
		t.Fatal(err)
	}
	// The heuristics won't necessarily find the proof's packing, but they
	// must stay within a small factor of it, and never beat it by more than
	// the certificate's own slack.
	if up.Cost > 5*in.OPTUpper {
		t.Errorf("offline estimate %v far above certificate %v", up.Cost, in.OPTUpper)
	}
	lb := lowerbound.Compute(in.List).Best()
	if up.Cost < lb-1e-9 {
		t.Errorf("offline estimate %v below lower bound %v", up.Cost, lb)
	}
}
