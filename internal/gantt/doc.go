// Package gantt renders packings as SVG timelines: one lane per bin, one
// rectangle per item, with optional overlays. It regenerates the paper's
// illustrative figures from *actual runs*:
//
//   - Figure 1: the usage periods of Move To Front bins decomposed into
//     leading (thick) and non-leading (thin) intervals;
//   - Figure 2: the First Fit P_i/Q_i decomposition;
//   - Figure 3: the per-bin load evolution on the Theorem 5 instance.
//
// The renderer has no dependencies beyond the standard library and the
// repository's own packages.
package gantt
