// Package dvbp is the public API of this MinUsageTime Dynamic Vector Bin
// Packing (DVBP) library — a full reproduction of
//
//	Murhekar, Arbour, Mai, Rao.
//	"Dynamic Vector Bin Packing for Online Resource Allocation in the Cloud."
//	SPAA 2023 (Brief Announcement).
//
// Items with d-dimensional resource demands arrive online and must be packed
// immediately and irrevocably into unit-capacity bins; the objective is the
// total bin usage time (server rental cost). The package exposes:
//
//   - the seven Any Fit packing policies the paper studies (Move To Front,
//     First Fit, Best Fit, Next Fit, Last Fit, Random Fit, Worst Fit) plus
//     clairvoyant extensions, all running on a deterministic event-driven
//     simulation engine;
//   - the Lemma 1 lower bounds on OPT and offline heuristic upper estimates;
//   - workload generators (the paper's uniform model and cloud-session
//     models) with CSV/JSON trace round-tripping;
//   - the Section 6 adversarial constructions with competitive-ratio
//     certificates;
//   - a cloud-billing simulation layer (servers, VM requests, pay-as-you-go
//     tariffs);
//   - a fault-injection and failure-recovery layer: deterministic crash
//     schedules (seeded MTBF or explicit traces), eviction with retry
//     backoff, and finite fleets with admission control (see cmd/dvbpchaos);
//   - the experiment harness that regenerates every table and figure of the
//     paper (see cmd/dvbpbench).
//
// Quick start:
//
//	l := dvbp.NewList(2)                   // 2 resource dimensions
//	l.Add(0, 10, dvbp.Vec(0.5, 0.25))      // arrive, depart, size
//	l.Add(1, 4, dvbp.Vec(0.5, 0.5))
//	res, err := dvbp.Simulate(l, dvbp.NewMoveToFront())
//	if err != nil { ... }
//	fmt.Println(res.Cost, res.BinsOpened)
//
// The subsystem packages under internal/ hold the implementations; this
// package re-exports the stable surface.
package dvbp

import (
	"dvbp/internal/adversary"
	"dvbp/internal/clairvoyant"
	"dvbp/internal/cloudsim"
	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/offline"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// Vector is a d-dimensional non-negative size/demand vector.
type Vector = vector.Vector

// Vec builds a Vector from components.
func Vec(xs ...float64) Vector { return vector.Of(xs...) }

// Item is one online job/request: arrival, departure and size vector.
type Item = item.Item

// List is an ordered DVBP instance; order breaks ties among simultaneous
// arrivals.
type List = item.List

// NewList returns an empty instance with d resource dimensions.
func NewList(d int) *List { return item.NewList(d) }

// Policy decides which open bin receives each arriving item. All policies in
// this package are safe to reuse across simulations (the engine resets them).
type Policy = core.Policy

// Request is the non-clairvoyant view of an arriving item that policies see.
type Request = core.Request

// Bin is an open bin as exposed to policies (read-only).
type Bin = core.Bin

// Result is a simulation outcome: total usage-time cost, bins opened,
// placements and per-bin usage records.
type Result = core.Result

// Option configures Simulate (e.g. WithClairvoyance, WithAudit).
type Option = core.Option

// Audit records packing decisions for invariant checking.
type Audit = core.Audit

// Simulate runs the online packing of l under policy p and returns the
// resulting packing and cost. See core.Simulate for event-ordering semantics.
func Simulate(l *List, p Policy, opts ...Option) (*Result, error) {
	return core.Simulate(l, p, opts...)
}

// WithClairvoyance exposes departure times to the policy (clairvoyant DVBP).
func WithClairvoyance() Option { return core.WithClairvoyance() }

// WithAudit records every packing decision into a, for invariant checking.
func WithAudit(a *Audit) Option { return core.WithAudit(a) }

// WithLinearSelect forces the O(n) linear policy scan instead of the default
// indexed bin store (DESIGN.md §11). Decisions are bit-identical either way;
// the scan survives as the differential oracle and for apples-to-apples
// measurements against the indexed path.
func WithLinearSelect() Option { return core.WithLinearSelect() }

// Observer receives engine lifecycle callbacks during a simulation
// (BeforePack, AfterPack, BinClosed). Attaching one never changes results.
// internal/metrics.Collector is the ready-made implementation that turns the
// callbacks into counters, gauges and histograms.
type Observer = core.Observer

// BaseObserver is a no-op Observer for embedding, so implementations only
// override the callbacks they care about.
type BaseObserver = core.BaseObserver

// WithObserver attaches an Observer to a simulation.
func WithObserver(o Observer) Option { return core.WithObserver(o) }

// NewMoveToFront returns the Move To Front policy — the paper's recommended
// algorithm (competitive ratio ≤ (2μ+1)d + 1, best average-case behaviour).
func NewMoveToFront() Policy { return core.NewMoveToFront() }

// NewFirstFit returns the First Fit policy (competitive ratio ≤ (μ+2)d + 1).
func NewFirstFit() Policy { return core.NewFirstFit() }

// NewNextFit returns the Next Fit policy (competitive ratio ≤ 2μd + 1).
func NewNextFit() Policy { return core.NewNextFit() }

// NewBestFit returns Best Fit under the L∞ ("max load") measure, as in the
// paper's experiments. Its competitive ratio is unbounded but its
// average-case behaviour is close to First Fit.
func NewBestFit() Policy { return core.NewBestFit(core.MaxLoad()) }

// NewWorstFit returns Worst Fit under the L∞ measure.
func NewWorstFit() Policy { return core.NewWorstFit(core.MaxLoad()) }

// NewLastFit returns Last Fit (most recently opened bin first).
func NewLastFit() Policy { return core.NewLastFit() }

// NewRandomFit returns Random Fit driven by the given seed.
func NewRandomFit(seed int64) Policy { return core.NewRandomFit(seed) }

// NewPolicy constructs a policy by canonical name (see core.NewPolicy for
// the accepted names, e.g. "MoveToFront", "ff", "BestFit-L1").
func NewPolicy(name string, seed int64) (Policy, error) { return core.NewPolicy(name, seed) }

// PolicyNames lists the seven Any Fit policies from the paper's experiments.
func PolicyNames() []string { return core.PolicyNames() }

// StandardPolicies returns fresh instances of all seven experiment policies.
func StandardPolicies(seed int64) []Policy { return core.StandardPolicies(seed) }

// NewDurationClassFit returns the clairvoyant duration-class policy
// (requires WithClairvoyance).
func NewDurationClassFit() Policy { return clairvoyant.NewDurationClassFit(0) }

// NewAlignedBestFit returns the clairvoyant alignment-aware Best Fit
// (requires WithClairvoyance).
func NewAlignedBestFit() Policy { return clairvoyant.NewAlignedBestFit() }

// NewWindowedClassFit returns the clairvoyant windowed duration-class policy:
// class-c bins accept items only during their first 2^c time units, capping
// every bin's span below twice its class window (requires WithClairvoyance).
func NewWindowedClassFit() Policy { return clairvoyant.NewWindowedClassFit(0) }

// Bounds holds the Lemma 1 lower bounds on the optimal offline cost.
type Bounds = lowerbound.Bounds

// LowerBounds computes the three Lemma 1 lower bounds on OPT(l).
func LowerBounds(l *List) Bounds { return lowerbound.Compute(l) }

// OfflinePacking is a feasible offline packing (an upper estimate of OPT).
type OfflinePacking = offline.Packing

// OfflineBestEstimate returns the cheapest packing among the offline
// heuristics — together with LowerBounds it brackets OPT.
func OfflineBestEstimate(l *List) (*OfflinePacking, error) { return offline.BestUpperEstimate(l) }

// UniformConfig is the paper's Table 2 workload model.
type UniformConfig = workload.UniformConfig

// UniformWorkload generates one instance of the paper's experimental model.
func UniformWorkload(cfg UniformConfig, seed int64) (*List, error) {
	return workload.Uniform(cfg, seed)
}

// SessionConfig is the cloud-session workload model (Poisson arrivals,
// heavy-tailed durations, typed demands).
type SessionConfig = workload.SessionConfig

// SessionWorkload generates a cloud-session trace.
func SessionWorkload(cfg SessionConfig, seed int64) (*List, error) {
	return workload.Sessions(cfg, seed)
}

// AdversarialInstance is a worst-case instance with a competitive-ratio
// certificate.
type AdversarialInstance = adversary.Instance

// TheoremFiveInstance builds the Theorem 5 sequence forcing any Any Fit
// algorithm toward ratio (μ+1)d.
func TheoremFiveInstance(d, k int, mu float64) (*AdversarialInstance, error) {
	return adversary.Theorem5(d, k, mu)
}

// TheoremSixInstance builds the Theorem 6 sequence forcing Next Fit toward
// ratio 2μd.
func TheoremSixInstance(d, k int, mu float64) (*AdversarialInstance, error) {
	return adversary.Theorem6(d, k, mu)
}

// TheoremEightInstance builds the Theorem 8 sequence forcing Move To Front
// toward ratio 2μ in one dimension.
func TheoremEightInstance(n int, mu float64) (*AdversarialInstance, error) {
	return adversary.Theorem8(n, mu)
}

// BestFitDegradationInstance builds the pillar/sliver family on which Best
// Fit's competitive ratio grows without bound (≈ 2R/3 at L = R²) while First
// Fit and Move To Front stay flat — the library's certified substitute for
// the Li–Tang–Cai construction cited by Theorem 7.
func BestFitDegradationInstance(r int) (*AdversarialInstance, error) {
	return adversary.BestFitPillars(r, float64(r*r))
}

// FailureInjector decides, per opened bin, whether and when it crashes.
// Implementations must be deterministic functions of their configuration —
// internal/faults provides seeded MTBF schedules and explicit traces.
type FailureInjector = core.FailureInjector

// RetryPolicy maps an eviction's attempt number to a re-dispatch delay.
type RetryPolicy = core.RetryPolicy

// FailureObserver extends Observer with failure-path callbacks (crashes,
// evictions, losses, admission rejections, queueing).
type FailureObserver = core.FailureObserver

// BaseFailureObserver is a no-op FailureObserver for embedding.
type BaseFailureObserver = core.BaseFailureObserver

// Outcome classifies how the engine disposed of one item under faults and
// admission control (served, lost, rejected, timed out).
type Outcome = core.Outcome

// Outcome values, mirrored from internal/core.
const (
	OutcomeServed   = core.OutcomeServed
	OutcomeLost     = core.OutcomeLost
	OutcomeRejected = core.OutcomeRejected
	OutcomeTimedOut = core.OutcomeTimedOut
)

// WithFaults injects a deterministic crash schedule into a simulation: bins
// crash per inj, evicted items re-dispatch per retry (nil = immediately).
func WithFaults(inj FailureInjector, retry RetryPolicy) Option {
	return core.WithFaults(inj, retry)
}

// WithMaxBins caps the fleet at n concurrently open bins; dispatches that
// find no room are rejected (or queued, with WithAdmissionQueue).
func WithMaxBins(n int) Option { return core.WithMaxBins(n) }

// WithAdmissionQueue holds dispatches that the full fleet cannot place and
// retries them as capacity frees, abandoning them after deadline time units.
func WithAdmissionQueue(deadline float64) Option { return core.WithAdmissionQueue(deadline) }

// MTBFSchedule is a seeded exponential (memoryless) crash schedule: each bin
// draws its time-to-failure from its (Seed, BinID) stream, so runs replay
// bit-identically.
type MTBFSchedule = faults.MTBF

// CrashTrace is an explicit, validated list of bin-crash events.
type CrashTrace = faults.Trace

// CrashEvent is one entry of a CrashTrace: a bin and its crash time,
// absolute or relative to the bin's opening.
type CrashEvent = faults.TraceEvent

// NewCrashTrace validates events and builds a CrashTrace.
func NewCrashTrace(events []CrashEvent) (*CrashTrace, error) { return faults.NewTrace(events) }

// RetryImmediate re-dispatches evicted items at the crash instant.
type RetryImmediate = faults.Immediate

// RetryFixed re-dispatches evicted items after a constant wait.
type RetryFixed = faults.Fixed

// RetryBackoff re-dispatches with exponential backoff (Base·Factor^(k−1),
// capped at Cap).
type RetryBackoff = faults.Backoff

// ParseRetry parses a retry-policy spec such as "immediate", "fixed:2" or
// "backoff:0.5:30:2" (the CLI -retry syntax).
func ParseRetry(s string) (RetryPolicy, error) { return faults.ParseRetry(s) }

// ParseCrashTrace parses a compact crash-trace spec such as "0@5,2+1.5"
// (bin@absolute-time, bin+time-after-open — the CLI -crash-trace syntax).
func ParseCrashTrace(s string) (*CrashTrace, error) { return faults.ParseTrace(s) }

// FaultPlan bundles an injector, retry policy and fleet limits into the
// Option set a chaos run needs; see cmd/dvbpchaos for the CLI counterpart.
type FaultPlan = faults.Plan

// CloudConfig configures the cloud-billing simulation layer.
type CloudConfig = cloudsim.Config

// CloudRequest is a VM/session request in native resource units.
type CloudRequest = cloudsim.Request

// CloudBilling is a pay-as-you-go tariff (quantum + unit price).
type CloudBilling = cloudsim.Billing

// CloudReport is the outcome of a cloud simulation.
type CloudReport = cloudsim.Report

// RunCloud dispatches cloud requests online and reports usage and billing.
func RunCloud(cfg CloudConfig, reqs []CloudRequest) (*CloudReport, error) {
	return cloudsim.Run(cfg, reqs)
}

// CompareCloud runs the same request stream under several policies.
func CompareCloud(cfg CloudConfig, reqs []CloudRequest, policies []Policy) ([]*CloudReport, error) {
	return cloudsim.Compare(cfg, reqs, policies)
}
