// Command dvbpsearch hunts for empirically bad instances: hill-climbing over
// small instances to maximise a policy's cost / exact-OPT ratio, and
// comparing the machine-found witness with the paper's analytic bounds.
//
//	dvbpsearch -policy NextFit -mu 6 -items 10 -restarts 20 -steps 500
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dvbp/internal/core"
	"dvbp/internal/experiments"
	"dvbp/internal/search"
	"dvbp/internal/workload"
)

func main() {
	var (
		policy    = flag.String("policy", "NextFit", "policy to attack; "+core.PolicyFlagUsage())
		d         = flag.Int("d", 1, "dimensions")
		items     = flag.Int("items", 10, "items per candidate instance")
		mu        = flag.Float64("mu", 6, "max duration (min is 1)")
		timeRange = flag.Float64("trange", 10, "arrival window")
		restarts  = flag.Int("restarts", 10, "hill-climbing restarts")
		steps     = flag.Int("steps", 300, "steps per restart")
		seed      = flag.Int64("seed", 1, "seed")
		outTrace  = flag.String("o", "", "write the witness instance as CSV")
	)
	flag.Parse()

	cfg := search.Config{
		Policy: *policy, D: *d, Items: *items,
		MaxMu: *mu, TimeRange: *timeRange,
		Restarts: *restarts, Steps: *steps, Seed: *seed,
	}
	w, err := search.Run(cfg)
	if err != nil {
		fatal(err)
	}

	instMu := w.List.Mu()
	fmt.Printf("policy:        %s (d=%d)\n", *policy, *d)
	fmt.Printf("evaluations:   %d\n", w.Evaluations)
	fmt.Printf("witness:       %d items, mu=%.3g\n", w.List.Len(), instMu)
	fmt.Printf("cost:          %.4f\n", w.Cost)
	fmt.Printf("exact OPT:     %.4f\n", w.Opt)
	fmt.Printf("TRUE ratio:    %.4f\n", w.Ratio)
	lb := experiments.Table1LowerBound(*policy, instMu, *d)
	ub := experiments.Table1UpperBound(*policy, instMu, *d)
	if math.IsInf(lb, 1) {
		fmt.Printf("theory:        CR unbounded for %s\n", *policy)
	} else {
		fmt.Printf("theory:        %.4f <= CR <= %s at this mu\n", lb, fmtBound(ub))
	}
	for _, it := range w.List.SortedByArrival() {
		fmt.Printf("  %s\n", it)
	}

	// Cross-check: how do the other policies fare on the witness?
	fmt.Println("\ncross-policy costs on the witness:")
	for _, p := range core.StandardPolicies(*seed) {
		res, err := core.Simulate(w.List, p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  %-12s cost=%.4f ratio=%.4f\n", p.Name(), res.Cost, res.Cost/w.Opt)
	}

	if *outTrace != "" {
		f, err := os.Create(*outTrace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := workload.WriteCSV(f, w.List); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwitness written to %s\n", *outTrace)
	}
}

func fmtBound(b float64) string {
	if math.IsInf(b, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.4f", b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpsearch:", err)
	os.Exit(1)
}
