package core

import (
	"math"
	"reflect"
	"testing"
)

// traceInj is a minimal test FailureInjector: absolute crash times by bin ID.
// (core tests cannot import internal/faults — that would be an import cycle —
// so the tests carry their own tiny injectors.)
type traceInj map[int]float64

func (tr traceInj) BinOpened(binID int, _ float64) (float64, bool) {
	at, ok := tr[binID]
	return at, ok
}

// hashInj derives a crash offset from (seed, binID) with a SplitMix64 step —
// a stateless stand-in for the faults.MTBF schedule.
type hashInj struct {
	seed int64
	mean float64
}

func (h hashInj) BinOpened(binID int, openedAt float64) (float64, bool) {
	z := uint64(h.seed) + 0x9E3779B97F4A7C15*uint64(binID+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53)
	return openedAt + math.Max(1e-6, -h.mean*math.Log(1-u)), true
}

type fixedRetry struct{ wait float64 }

func (f fixedRetry) Name() string      { return "fixed-test" }
func (f fixedRetry) Delay(int) float64 { return f.wait }

func TestCrashEvictImmediateRetry(t *testing.T) {
	l := list(t, 1, []float64{0, 10, 0.5})
	res := mustSimulate(t, l, NewFirstFit(), WithFaults(traceInj{0: 4}, nil))
	if res.Crashes != 1 || res.Evictions != 1 || res.Retries != 1 || res.ItemsLost != 0 {
		t.Fatalf("counters: %+v", res)
	}
	if res.BinsOpened != 2 {
		t.Errorf("BinsOpened = %d, want 2 (crash forces a fresh bin)", res.BinsOpened)
	}
	// Usage accrues up to the crash on bin 0 and from the immediate
	// re-placement to departure on bin 1: 4 + 6 = 10.
	if res.Cost != 10 {
		t.Errorf("Cost = %v, want 10", res.Cost)
	}
	if res.LostUsageTime != 0 {
		t.Errorf("LostUsageTime = %v, want 0 under immediate retry", res.LostUsageTime)
	}
	if !res.Bins[0].Crashed || res.Bins[1].Crashed {
		t.Errorf("Crashed flags wrong: %+v", res.Bins)
	}
	if got := res.Outcomes[l.Items[0].ID]; got != OutcomeServed {
		t.Errorf("Outcome = %v, want served", got)
	}
	if len(res.Placements) != 2 || res.Placements[0].Attempt != 0 || res.Placements[1].Attempt != 1 {
		t.Errorf("Placements = %+v", res.Placements)
	}
	if res.Placements[1].Time != 4 {
		t.Errorf("re-placement time = %v, want 4", res.Placements[1].Time)
	}
}

func TestCrashWithDelayedRetryLosesUsage(t *testing.T) {
	l := list(t, 1, []float64{0, 10, 0.5})
	res := mustSimulate(t, l, NewFirstFit(), WithFaults(traceInj{0: 4}, fixedRetry{wait: 2}))
	if res.Retries != 1 || res.ItemsLost != 0 {
		t.Fatalf("counters: %+v", res)
	}
	if res.LostUsageTime != 2 {
		t.Errorf("LostUsageTime = %v, want 2", res.LostUsageTime)
	}
	// 4 on the crashed bin, then 6..10 on the replacement.
	if res.Cost != 8 {
		t.Errorf("Cost = %v, want 8", res.Cost)
	}
}

func TestCrashLosesItemWhenRetryPassesDeparture(t *testing.T) {
	l := list(t, 1, []float64{0, 8, 0.5})
	res := mustSimulate(t, l, NewFirstFit(), WithFaults(traceInj{0: 4}, fixedRetry{wait: 10}))
	if res.Crashes != 1 || res.Evictions != 1 || res.Retries != 0 || res.ItemsLost != 1 {
		t.Fatalf("counters: %+v", res)
	}
	if res.LostUsageTime != 4 {
		t.Errorf("LostUsageTime = %v, want 4 (crash at 4, departure at 8)", res.LostUsageTime)
	}
	if res.Cost != 4 {
		t.Errorf("Cost = %v, want 4", res.Cost)
	}
	if got := res.Outcomes[l.Items[0].ID]; got != OutcomeLost {
		t.Errorf("Outcome = %v, want lost", got)
	}
}

func TestCrashAfterNaturalCloseIsNoop(t *testing.T) {
	l := list(t, 1, []float64{0, 3, 0.5})
	res := mustSimulate(t, l, NewFirstFit(), WithFaults(traceInj{0: 5}, nil))
	if res.Crashes != 0 || res.Evictions != 0 {
		t.Fatalf("stale crash fired: %+v", res)
	}
	if res.Cost != 3 || res.Bins[0].Crashed {
		t.Errorf("fault-free outcome disturbed: %+v", res)
	}
}

func TestCrashAtOrBeforeOpenIgnored(t *testing.T) {
	l := list(t, 1, []float64{2, 5, 0.5})
	for _, at := range []float64{0, 2, math.NaN()} {
		res := mustSimulate(t, l, NewFirstFit(), WithFaults(traceInj{0: at}, nil))
		if res.Crashes != 0 {
			t.Errorf("crash at %v (bin opened at 2) should be ignored", at)
		}
	}
}

func TestEvictionOrderIsAscendingItemID(t *testing.T) {
	// Three items in one bin; crash evicts all; with a fixed delay they
	// re-dispatch in ascending item-ID order (retrySeq follows eviction order).
	l := list(t, 1,
		[]float64{0, 10, 0.3},
		[]float64{0, 10, 0.3},
		[]float64{0, 10, 0.3},
	)
	res := mustSimulate(t, l, NewFirstFit(), WithFaults(traceInj{0: 5}, fixedRetry{wait: 1}))
	if res.Evictions != 3 || res.Retries != 3 {
		t.Fatalf("counters: %+v", res)
	}
	var retried []int
	for _, p := range res.Placements {
		if p.Attempt > 0 {
			retried = append(retried, p.ItemID)
		}
	}
	want := []int{l.Items[0].ID, l.Items[1].ID, l.Items[2].ID}
	if !reflect.DeepEqual(retried, want) {
		t.Errorf("retry order = %v, want %v", retried, want)
	}
}

func TestMaxBinsRejects(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 10, 0.9},
		[]float64{1, 5, 0.9},
	)
	res := mustSimulate(t, l, NewFirstFit(), WithMaxBins(1))
	if res.Rejected != 1 || res.BinsOpened != 1 {
		t.Fatalf("want 1 rejection on a full fleet: %+v", res)
	}
	if got := res.Outcomes[l.Items[1].ID]; got != OutcomeRejected {
		t.Errorf("Outcome = %v, want rejected", got)
	}
	if res.Cost != 10 {
		t.Errorf("Cost = %v, want 10", res.Cost)
	}
}

func TestAdmissionQueuePlacesOnDeparture(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 4, 0.9},
		[]float64{1, 10, 0.9},
	)
	res := mustSimulate(t, l, NewFirstFit(), WithMaxBins(1), WithAdmissionQueue(100))
	if res.QueuedPlaced != 1 || res.TimedOut != 0 || res.Rejected != 0 {
		t.Fatalf("counters: %+v", res)
	}
	if res.QueueDelay != 3 {
		t.Errorf("QueueDelay = %v, want 3 (queued at 1, placed at 4)", res.QueueDelay)
	}
	p, ok := res.PlacementOf(l.Items[1].ID)
	if !ok || p.Time != 4 {
		t.Errorf("queued item placement = %+v, want Time=4", p)
	}
	// Item 2 still departs at its own departure time: cost 4 + 6.
	if res.Cost != 10 {
		t.Errorf("Cost = %v, want 10", res.Cost)
	}
}

func TestAdmissionQueueTimesOut(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 10, 0.9},
		[]float64{1, 5, 0.9},
	)
	res := mustSimulate(t, l, NewFirstFit(), WithMaxBins(1), WithAdmissionQueue(1))
	if res.TimedOut != 1 || res.QueuedPlaced != 0 {
		t.Fatalf("counters: %+v", res)
	}
	if got := res.Outcomes[l.Items[1].ID]; got != OutcomeTimedOut {
		t.Errorf("Outcome = %v, want timed-out", got)
	}
}

// failureLog records FailureObserver callbacks to check sequencing and
// agreement with Result counters.
type failureLog struct {
	BaseObserver
	BaseFailureObserver
	crashes, evictions, lost, rejected, timedOut, queued, dequeued int
	lostUsage, queueDelay                                          float64
}

func (f *failureLog) BinCrashed(b *Bin, t float64, evicted int) { f.crashes++ }
func (f *failureLog) ItemEvicted(req Request, from *Bin, t, resumeAt float64) {
	f.evictions++
	f.lostUsage += resumeAt - t
}
func (f *failureLog) ItemLost(Request, float64) { f.lost++ }
func (f *failureLog) ItemRejected(req Request, t float64, timedOut bool) {
	if timedOut {
		f.timedOut++
	} else {
		f.rejected++
	}
}
func (f *failureLog) ItemQueued(Request, float64) { f.queued++ }
func (f *failureLog) ItemDequeued(req Request, queuedAt, t float64) {
	f.dequeued++
	f.queueDelay += t - queuedAt
}

func TestFailureObserverMatchesResult(t *testing.T) {
	l := randomList(7, 120, 2, 20)
	obs := &failureLog{}
	res := mustSimulate(t, l, NewFirstFit(),
		WithFaults(hashInj{seed: 3, mean: 12}, fixedRetry{wait: 1}),
		WithMaxBins(4), WithAdmissionQueue(5),
		WithObserver(obs))
	if obs.crashes != res.Crashes || obs.evictions != res.Evictions ||
		obs.lost != res.ItemsLost || obs.rejected != res.Rejected ||
		obs.timedOut != res.TimedOut || obs.dequeued != res.QueuedPlaced {
		t.Errorf("observer %+v disagrees with result %s", obs, res)
	}
	if obs.lostUsage != res.LostUsageTime {
		t.Errorf("observer lost usage %v != result %v", obs.lostUsage, res.LostUsageTime)
	}
	if obs.queueDelay != res.QueueDelay {
		t.Errorf("observer queue delay %v != result %v", obs.queueDelay, res.QueueDelay)
	}
	if res.Crashes == 0 || res.Evictions == 0 {
		t.Fatalf("instance exercised no failure paths: %s", res)
	}
}

func TestFaultyRunDeterminism(t *testing.T) {
	l := randomList(11, 150, 2, 25)
	run := func() *Result {
		return mustSimulate(t, l, NewRandomFit(99),
			WithFaults(hashInj{seed: 5, mean: 10}, fixedRetry{wait: 0.5}),
			WithMaxBins(5), WithAdmissionQueue(3))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed + schedule produced different results:\n%s\n%s", a, b)
	}
}

func TestOutcomeConservation(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		l := randomList(seed, 100, 2, 15)
		res := mustSimulate(t, l, NewBestFit(MaxLoad()),
			WithFaults(hashInj{seed: seed, mean: 8}, fixedRetry{wait: 2}),
			WithMaxBins(3), WithAdmissionQueue(4))
		if len(res.Outcomes) != l.Len() {
			t.Fatalf("seed %d: %d outcomes for %d items", seed, len(res.Outcomes), l.Len())
		}
		counts := map[Outcome]int{}
		for _, o := range res.Outcomes {
			counts[o]++
		}
		if counts[OutcomeLost] != res.ItemsLost || counts[OutcomeRejected] != res.Rejected ||
			counts[OutcomeTimedOut] != res.TimedOut {
			t.Errorf("seed %d: outcome histogram %v vs result %s", seed, counts, res)
		}
	}
}

// faultyResultsEqual extends resultsEqual with the failure accounting.
func faultyResultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	resultsEqual(t, label, a, b)
	if a.Crashes != b.Crashes || a.Evictions != b.Evictions || a.Retries != b.Retries ||
		a.ItemsLost != b.ItemsLost || a.Rejected != b.Rejected || a.TimedOut != b.TimedOut ||
		a.QueuedPlaced != b.QueuedPlaced {
		t.Errorf("%s: failure counters disagree:\n%s\n%s", label, a, b)
	}
	if a.QueueDelay != b.QueueDelay || a.LostUsageTime != b.LostUsageTime {
		t.Errorf("%s: QueueDelay/LostUsageTime %v/%v vs %v/%v",
			label, a.QueueDelay, a.LostUsageTime, b.QueueDelay, b.LostUsageTime)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Errorf("%s: outcome maps disagree", label)
	}
}

// TestFaultyReferenceAgreesOnHandCases pins the oracle to the same targeted
// scenarios the engine tests use.
func TestFaultyReferenceAgreesOnHandCases(t *testing.T) {
	type tc struct {
		name string
		rows [][]float64
		opts []Option
	}
	cases := []tc{
		{"crash-retry", [][]float64{{0, 10, 0.5}}, []Option{WithFaults(traceInj{0: 4}, nil)}},
		{"crash-lost", [][]float64{{0, 8, 0.5}}, []Option{WithFaults(traceInj{0: 4}, fixedRetry{wait: 10})}},
		{"multi-evict", [][]float64{{0, 10, 0.3}, {0, 10, 0.3}, {0, 10, 0.3}}, []Option{WithFaults(traceInj{0: 5}, fixedRetry{wait: 1})}},
		{"reject", [][]float64{{0, 10, 0.9}, {1, 5, 0.9}}, []Option{WithMaxBins(1)}},
		{"queue", [][]float64{{0, 4, 0.9}, {1, 10, 0.9}}, []Option{WithMaxBins(1), WithAdmissionQueue(100)}},
		{"queue-timeout", [][]float64{{0, 10, 0.9}, {1, 5, 0.9}}, []Option{WithMaxBins(1), WithAdmissionQueue(1)}},
	}
	for _, c := range cases {
		l := list(t, 1, c.rows...)
		fast := mustSimulate(t, l, NewFirstFit(), c.opts...)
		ref, err := SimulateFaultyReference(l, NewFirstFit(), c.opts...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		faultyResultsEqual(t, c.name, fast, ref)
	}
}

// TestFaultyReferenceAgreesOnRandomInstances is the faulty-path analogue of
// the fault-free differential test: every standard policy, random workloads,
// seeded crash schedules, finite fleets with and without queues.
func TestFaultyReferenceAgreesOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		l := randomList(seed, 120, 2, 20)
		for _, withQueue := range []bool{false, true} {
			opts := []Option{
				WithFaults(hashInj{seed: seed, mean: 9}, fixedRetry{wait: 1.5}),
				WithMaxBins(4),
			}
			if withQueue {
				opts = append(opts, WithAdmissionQueue(6))
			}
			for _, p := range StandardPolicies(seed) {
				fast := mustSimulate(t, l, p, opts...)
				ref, err := SimulateFaultyReference(l, p, opts...)
				if err != nil {
					t.Fatalf("%s seed=%d queue=%v: %v", p.Name(), seed, withQueue, err)
				}
				faultyResultsEqual(t, p.Name(), fast, ref)
				if fast.Crashes == 0 {
					t.Fatalf("seed %d: no crashes exercised", seed)
				}
			}
		}
	}
}
