package interval

import (
	"fmt"
	"sort"
)

// Interval is a half-open interval [Lo, Hi). Empty intervals (Hi <= Lo) have
// zero length and behave as the empty set.
type Interval struct {
	Lo, Hi float64
}

// New returns the interval [lo, hi).
func New(lo, hi float64) Interval { return Interval{Lo: lo, Hi: hi} }

// Length returns Hi - Lo, or 0 for empty intervals.
func (iv Interval) Length() float64 {
	if iv.Hi <= iv.Lo {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether t ∈ [Lo, Hi).
func (iv Interval) Contains(t float64) bool { return t >= iv.Lo && t < iv.Hi }

// Intersect returns the intersection of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo := iv.Lo
	if other.Lo > lo {
		lo = other.Lo
	}
	hi := iv.Hi
	if other.Hi < hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Overlaps reports whether iv and other share at least one point.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Empty() && !other.Empty() && iv.Lo < other.Hi && other.Lo < iv.Hi
}

// Touches reports whether iv and other overlap or abut (share an endpoint),
// i.e. whether their union is a single interval.
func (iv Interval) Touches(other Interval) bool {
	return !iv.Empty() && !other.Empty() && iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Hull returns the smallest interval containing both iv and other. Empty
// operands are ignored; the hull of two empty intervals is empty.
func (iv Interval) Hull(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	lo := iv.Lo
	if other.Lo < lo {
		lo = other.Lo
	}
	hi := iv.Hi
	if other.Hi > hi {
		hi = other.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// String renders the interval as "[lo, hi)".
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g)", iv.Lo, iv.Hi) }

// Set is a collection of intervals. It need not be normalised; Merge and the
// measure operations normalise on the fly.
type Set []Interval

// Span returns the measure of the union of the intervals in s — the paper's
// span(R) when s holds the active intervals of the items of R. It is not the
// hull length: gaps between intervals do not count.
func (s Set) Span() float64 {
	merged := s.Merge()
	total := 0.0
	for _, iv := range merged {
		total += iv.Length()
	}
	return total
}

// Hull returns the smallest single interval covering every non-empty interval
// in s (empty if s has no non-empty member).
func (s Set) Hull() Interval {
	var h Interval
	for _, iv := range s {
		h = h.Hull(iv)
	}
	return h
}

// Merge returns the normalised form of s: non-empty, pairwise disjoint,
// non-abutting intervals in increasing order whose union equals the union of
// s. The receiver is not modified.
func (s Set) Merge() Set {
	in := make(Set, 0, len(s))
	for _, iv := range s {
		if !iv.Empty() {
			in = append(in, iv)
		}
	}
	if len(in) == 0 {
		return Set{}
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].Lo != in[j].Lo {
			return in[i].Lo < in[j].Lo
		}
		return in[i].Hi < in[j].Hi
	})
	out := Set{in[0]}
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi { // overlap or abut: extend
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Covers reports whether the union of s covers the whole interval target.
func (s Set) Covers(target Interval) bool {
	if target.Empty() {
		return true
	}
	for _, iv := range s.Merge() {
		if iv.Lo <= target.Lo && target.Hi <= iv.Hi {
			return true
		}
	}
	return false
}

// Contains reports whether t lies in the union of s.
func (s Set) Contains(t float64) bool {
	for _, iv := range s {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}
