package binindex_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dvbp/internal/binindex"
	"dvbp/internal/vector"
)

// refEntry mirrors one indexed bin in the naive reference model.
type refEntry struct {
	kf   float64
	ks   int64
	id   int
	load vector.Vector
}

// refModel is the linear-scan oracle: a plain slice re-sorted on every query.
type refModel struct {
	entries []refEntry
}

func (m *refModel) sorted() []refEntry {
	out := append([]refEntry(nil), m.entries...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].kf != out[j].kf {
			return out[i].kf < out[j].kf
		}
		return out[i].ks < out[j].ks
	})
	return out
}

func (m *refModel) firstFeasible(size vector.Vector) (int, bool) {
	for _, e := range m.sorted() {
		if e.load.FitsWithin(size) {
			return e.id, true
		}
	}
	return 0, false
}

func (m *refModel) ascendFeasible(size vector.Vector) []int {
	var ids []int
	for _, e := range m.sorted() {
		if e.load.FitsWithin(size) {
			ids = append(ids, e.id)
		}
	}
	return ids
}

func (m *refModel) find(id int) *refEntry {
	for i := range m.entries {
		if m.entries[i].id == id {
			return &m.entries[i]
		}
	}
	return nil
}

func (m *refModel) remove(id int) {
	for i := range m.entries {
		if m.entries[i].id == id {
			m.entries = append(m.entries[:i], m.entries[i+1:]...)
			return
		}
	}
}

func randLoad(r *rand.Rand, d int) vector.Vector {
	v := vector.New(d)
	for j := range v {
		v[j] = float64(r.Intn(100)) / 100
	}
	return v
}

func randSize(r *rand.Rand, d int) vector.Vector {
	v := vector.New(d)
	for j := range v {
		v[j] = float64(1+r.Intn(100)) / 100
	}
	return v
}

// checkAgainstRef cross-checks every query the engine issues against the
// naive model: structural invariants, first-feasible answers for a spread of
// item sizes, and the full feasible enumeration order.
func checkAgainstRef(t *testing.T, s *binindex.Store[int], m *refModel, r *rand.Rand, d int) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(m.entries) {
		t.Fatalf("store has %d entries, reference %d", s.Len(), len(m.entries))
	}
	for q := 0; q < 8; q++ {
		size := randSize(r, d)
		gotID, gotOK := s.FirstFeasible(size)
		wantID, wantOK := m.firstFeasible(size)
		if gotOK != wantOK || (gotOK && gotID != wantID) {
			t.Fatalf("FirstFeasible(%v) = (%d, %v), reference (%d, %v)", size, gotID, gotOK, wantID, wantOK)
		}
		var asc []int
		s.AscendFeasible(size, func(id int) bool {
			asc = append(asc, id)
			return true
		})
		want := m.ascendFeasible(size)
		if len(asc) != len(want) {
			t.Fatalf("AscendFeasible(%v) yielded %v, reference %v", size, asc, want)
		}
		for i := range asc {
			if asc[i] != want[i] {
				t.Fatalf("AscendFeasible(%v) yielded %v, reference %v", size, asc, want)
			}
		}
	}
}

// TestStoreMatchesLinearScanKeyed drives a keyed store (the Best Fit
// discipline: key (-‖load‖∞, id), re-keyed on every load change) through a
// random churn history and checks every answer against the naive model.
func TestStoreMatchesLinearScanKeyed(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		r := rand.New(rand.NewSource(int64(100 + d)))
		s := binindex.New[int](d)
		m := &refModel{}
		key := func(load vector.Vector, id int) (float64, int64) {
			return -load.MaxNorm(), int64(id)
		}
		nextID := 0
		for op := 0; op < 2000; op++ {
			switch {
			case len(m.entries) == 0 || r.Intn(3) == 0: // insert
				load := randLoad(r, d)
				kf, ks := key(load, nextID)
				s.Insert(kf, ks, nextID, load, nextID)
				m.entries = append(m.entries, refEntry{kf: kf, ks: ks, id: nextID, load: load.Clone()})
				nextID++
			case r.Intn(2) == 0: // update (load change re-keys)
				e := &m.entries[r.Intn(len(m.entries))]
				load := randLoad(r, d)
				kf, ks := key(load, e.id)
				s.Update(e.id, kf, ks, load)
				e.kf, e.ks = kf, ks
				copy(e.load, load)
			default: // remove
				id := m.entries[r.Intn(len(m.entries))].id
				s.Remove(id)
				m.remove(id)
			}
			if op%17 == 0 {
				checkAgainstRef(t, s, m, r, d)
			}
		}
		checkAgainstRef(t, s, m, r, d)
	}
}

// TestStoreMatchesLinearScanRecency drives a recency-keyed store (the Move To
// Front discipline: InsertFront / PromoteFront / UpdateLoad) and checks that
// the store's key order always equals the model's explicit recency list.
func TestStoreMatchesLinearScanRecency(t *testing.T) {
	const d = 2
	r := rand.New(rand.NewSource(7))
	s := binindex.New[int](d)
	// front-first list of IDs plus loads by ID
	var order []int
	loads := map[int]vector.Vector{}
	nextID := 0
	promote := func(id int) {
		for i, x := range order {
			if x == id {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append([]int{id}, order...)
	}
	for op := 0; op < 2000; op++ {
		switch {
		case len(order) == 0 || r.Intn(4) == 0: // insert at front
			load := randLoad(r, d)
			s.InsertFront(nextID, load, nextID)
			loads[nextID] = load
			order = append([]int{nextID}, order...)
			nextID++
		case r.Intn(3) == 0: // promote
			id := order[r.Intn(len(order))]
			s.PromoteFront(id)
			promote(id)
		case r.Intn(2) == 0: // load change without re-ordering
			id := order[r.Intn(len(order))]
			load := randLoad(r, d)
			s.UpdateLoad(id, load)
			copy(loads[id], load)
		default: // remove
			i := r.Intn(len(order))
			id := order[i]
			s.Remove(id)
			order = append(order[:i], order[i+1:]...)
			delete(loads, id)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		var got []int
		s.Ascend(func(id int) bool {
			got = append(got, id)
			return true
		})
		if len(got) != len(order) {
			t.Fatalf("op %d: store order %v, want %v", op, got, order)
		}
		for i := range got {
			if got[i] != order[i] {
				t.Fatalf("op %d: store order %v, want %v", op, got, order)
			}
		}
		if op%13 == 0 {
			size := randSize(r, d)
			gotID, gotOK := s.FirstFeasible(size)
			wantOK := false
			wantID := 0
			for _, id := range order {
				if loads[id].FitsWithin(size) {
					wantID, wantOK = id, true
					break
				}
			}
			if gotOK != wantOK || (gotOK && gotID != wantID) {
				t.Fatalf("op %d: FirstFeasible(%v) = (%d, %v), want (%d, %v)", op, size, gotID, gotOK, wantID, wantOK)
			}
		}
	}
}

// TestStoreChecksCounting pins the feasibility-evaluation counter: a query
// over a single-node store performs exactly one evaluation, and ResetChecks
// zeroes the counter.
func TestStoreChecksCounting(t *testing.T) {
	s := binindex.New[int](1)
	s.Insert(0, 0, 0, vector.Of(0.5), 0)
	s.ResetChecks()
	if _, ok := s.FirstFeasible(vector.Of(0.4)); !ok {
		t.Fatal("item should fit")
	}
	if got := s.Checks(); got != 1 {
		t.Errorf("checks = %d, want 1", got)
	}
	s.ResetChecks()
	if got := s.Checks(); got != 0 {
		t.Errorf("checks after reset = %d, want 0", got)
	}
}

// TestStoreSteadyStateAllocs pins the hot path: with the arena warmed up,
// queries, load updates, re-keying updates, promotions and remove/insert
// cycles must not allocate.
func TestStoreSteadyStateAllocs(t *testing.T) {
	const d, n = 2, 256
	s := binindex.New[int](d)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		s.Insert(-float64(i%10)/10, int64(i), i, randLoad(r, d), i)
	}
	// Warm the free list so a remove/insert cycle recycles instead of growing.
	s.Remove(0)
	s.Insert(0, 0, 0, vector.Of(0.1, 0.1), 0)

	size := vector.Of(0.3, 0.3)
	load := vector.Of(0.25, 0.4)
	if a := testing.AllocsPerRun(100, func() {
		s.FirstFeasible(size)
	}); a != 0 {
		t.Errorf("FirstFeasible allocates %v per call, want 0", a)
	}
	kf := 0.0
	if a := testing.AllocsPerRun(100, func() {
		kf -= 0.001
		s.Update(7, kf, 7, load) // key changes: remove + insert path
	}); a != 0 {
		t.Errorf("re-keying Update allocates %v per call, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		s.UpdateLoad(9, load)
	}); a != 0 {
		t.Errorf("UpdateLoad allocates %v per call, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		s.Remove(5)
		s.Insert(-0.42, 5, 5, load, 5)
	}); a != 0 {
		t.Errorf("Remove+Insert cycle allocates %v per call, want 0", a)
	}

	rec := binindex.New[int](d)
	for i := 0; i < n; i++ {
		rec.InsertFront(i, randLoad(r, d), i)
	}
	i := 0
	if a := testing.AllocsPerRun(100, func() {
		i = (i + 97) % n
		rec.PromoteFront(i)
	}); a != 0 {
		t.Errorf("PromoteFront allocates %v per call, want 0", a)
	}
}

// TestStorePanicsOnMisuse pins the engine-facing contract: duplicate inserts
// and operations on unindexed IDs are programming errors, not silent no-ops.
func TestStorePanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	s := binindex.New[int](1)
	s.Insert(0, 0, 0, vector.Of(0.5), 0)
	mustPanic("duplicate insert", func() { s.Insert(1, 1, 0, vector.Of(0.1), 0) })
	mustPanic("remove missing", func() { s.Remove(42) })
	mustPanic("update missing", func() { s.Update(42, 0, 0, vector.Of(0.1)) })
	mustPanic("promote missing", func() { s.PromoteFront(42) })
	mustPanic("dimension mismatch", func() { s.Insert(2, 2, 1, vector.Of(0.1, 0.2), 1) })
}

// TestStoreGetAndClear covers the remaining surface.
func TestStoreGetAndClear(t *testing.T) {
	s := binindex.New[string](1)
	s.Insert(0, 1, 1, vector.Of(0.2), "a")
	s.Insert(0, 2, 2, vector.Of(0.4), "b")
	if v, ok := s.Get(2); !ok || v != "b" {
		t.Errorf("Get(2) = (%q, %v)", v, ok)
	}
	if _, ok := s.Get(3); ok {
		t.Error("Get(3) should miss")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len after Clear = %d", s.Len())
	}
	if _, ok := s.Get(1); ok {
		t.Error("Get(1) after Clear should miss")
	}
	s.Insert(0, 1, 1, vector.Of(0.2), "c")
	if v, ok := s.Get(1); !ok || v != "c" {
		t.Errorf("reuse after Clear: Get(1) = (%q, %v)", v, ok)
	}
}

// TestStoreShapeHistoryIndependent pins the treap's canonical-shape
// guarantee: any operation sequence reaching the same (key, id, load) set
// produces bit-identical tree structure. This is what makes the store's
// check counts — and therefore the fit-check metrics — reproducible when a
// checkpoint restore rebuilds the index from scratch instead of replaying
// the mutation history that grew the live tree.
func TestStoreShapeHistoryIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const d = 2
	for trial := 0; trial < 20; trial++ {
		// Grow a store through a random churn history.
		live := binindex.New[int](d)
		type entry struct {
			kf   float64
			ks   int64
			id   int
			load vector.Vector
		}
		alive := map[int]entry{}
		next := 0
		for op := 0; op < 400; op++ {
			switch {
			case len(alive) == 0 || r.Float64() < 0.45:
				e := entry{kf: -randLoad(r, d).MaxNorm(), ks: int64(next), id: next, load: randLoad(r, d)}
				live.Insert(e.kf, e.ks, e.id, e.load, e.id)
				alive[e.id] = e
				next++
			case r.Float64() < 0.5:
				for id, e := range alive {
					e.kf, e.load = -randLoad(r, d).MaxNorm(), randLoad(r, d)
					live.Update(id, e.kf, e.ks, e.load)
					alive[id] = e
					break
				}
			default:
				for id := range alive {
					live.Remove(id)
					delete(alive, id)
					break
				}
			}
		}
		// Rebuild from scratch in ascending-ID order (the restore path's
		// discipline) and in a second, shuffled order.
		ids := make([]int, 0, len(alive))
		for id := range alive {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		rebuilt := binindex.New[int](d)
		for _, id := range ids {
			e := alive[id]
			rebuilt.Insert(e.kf, e.ks, e.id, e.load, e.id)
		}
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		shuffled := binindex.New[int](d)
		for _, id := range ids {
			e := alive[id]
			shuffled.Insert(e.kf, e.ks, e.id, e.load, e.id)
		}
		want := live.Shape()
		for name, s := range map[string]*binindex.Store[int]{"rebuilt": rebuilt, "shuffled": shuffled} {
			if err := s.Validate(); err != nil {
				t.Fatalf("trial %d: %s invalid: %v", trial, name, err)
			}
			if got := s.Shape(); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: %s shape diverges from live tree", trial, name)
			}
		}
		// Shape equality implies identical query descent, hence identical
		// check counts — assert it directly on a few probes anyway.
		for probe := 0; probe < 4; probe++ {
			size := randSize(r, d)
			live.ResetChecks()
			rebuilt.ResetChecks()
			lb, lok := live.FirstFeasible(size)
			rb, rok := rebuilt.FirstFeasible(size)
			if lok != rok || lb != rb {
				t.Fatalf("trial %d: FirstFeasible diverges", trial)
			}
			if live.Checks() != rebuilt.Checks() {
				t.Fatalf("trial %d: check counts diverge: live %d, rebuilt %d", trial, live.Checks(), rebuilt.Checks())
			}
		}
	}
}

// TestTotalLoadTracksMutations drives a random mutation sequence (insert,
// update, re-key, remove, clear) against an exact-summation oracle: after
// every operation TotalLoad must equal a fresh superaccumulator sum over the
// surviving loads — the order-independence AdaptiveHybrid's regime switch
// depends on. Validate cross-checks the same invariant internally.
func TestTotalLoadTracksMutations(t *testing.T) {
	const d = 3
	r := rand.New(rand.NewSource(11))
	s := binindex.New[int](d)
	live := map[int]vector.Vector{}
	nextID := 0
	randLoad := func() vector.Vector {
		v := vector.New(d)
		for j := range v {
			v[j] = float64(r.Intn(1000)) / 1000
		}
		return v
	}
	check := func(op string) {
		t.Helper()
		var fresh [d]vector.Acc
		for _, l := range live {
			for j, x := range l {
				fresh[j].Add(x)
			}
		}
		got := vector.New(d)
		s.TotalLoad(got)
		for j := range got {
			if want := fresh[j].Round(); got[j] != want {
				t.Fatalf("after %s: TotalLoad[%d] = %v, want %v", op, j, got[j], want)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("after %s: %v", op, err)
		}
	}
	ids := func() []int {
		out := make([]int, 0, len(live))
		for id := range live {
			out = append(out, id)
		}
		sort.Ints(out)
		return out
	}
	for step := 0; step < 2000; step++ {
		switch op := r.Intn(10); {
		case op < 4 || len(live) == 0: // insert
			l := randLoad()
			s.Insert(r.Float64(), int64(nextID), nextID, l, nextID)
			live[nextID] = l
			nextID++
			check("insert")
		case op < 6: // in-place load update
			id := ids()[r.Intn(len(live))]
			l := randLoad()
			s.UpdateLoad(id, l)
			live[id] = l
			check("update-load")
		case op < 8: // re-keying update
			id := ids()[r.Intn(len(live))]
			l := randLoad()
			s.Update(id, r.Float64(), int64(id), l)
			live[id] = l
			check("update")
		case op < 9: // remove
			id := ids()[r.Intn(len(live))]
			s.Remove(id)
			delete(live, id)
			check("remove")
		default:
			s.Clear()
			live = map[int]vector.Vector{}
			check("clear")
		}
	}
}
