package persist

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/migrate"
	"dvbp/internal/vector"
)

// migList is the canonical consolidation workload (see internal/migrate):
// pairs of a big short-lived and a small long-lived item, all at t=0.
// FirstFit leaves `pairs` lightly-loaded bins after the bigs depart at 1.5;
// the first consolidation pass at t=2 then drains most of them in one
// multi-move plan — exactly the pass the SIGKILL sweep must land inside.
// The small size is skewed so the drain-emptiest and farb-score planners
// pick different targets (the option-mismatch test needs plans to differ).
func migList(pairs int) *item.List {
	l := item.NewList(2)
	for i := 0; i < pairs; i++ {
		l.Add(0, 1.5, vector.Vector{0.7, 0.7})
		l.Add(0, 100, vector.Vector{0.25, 0.05})
	}
	return l
}

// migCfg is the migration configuration of the torture runs; its String()
// lands in RunMeta.Migration like a fault plan's display string.
var migCfg = migrate.Config{Planner: "drain-emptiest", Period: 2, MaxMoves: 16}

func migOpts(t *testing.T) []core.Option {
	t.Helper()
	opt, err := migCfg.Option()
	if err != nil {
		t.Fatalf("migration option: %v", err)
	}
	return []core.Option{opt}
}

func migMeta(l *item.List) RunMeta {
	m := NewRunMeta(l, "FirstFit", 1, "")
	m.Migration = migCfg.String()
	return m
}

// TestTortureMigrationKillAndRecover SIGKILLs a migrating persisted run after
// every event index — including every boundary inside the multi-move
// consolidation pass — and requires recovery to resume to a byte-identical
// result with byte-identical metrics. Moves are replayed from the WAL and
// re-verified against the re-planned pass, never half-applied.
func TestTortureMigrationKillAndRecover(t *testing.T) {
	l := migList(8)
	const every = 4

	// Uninterrupted reference run.
	refCol := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), append(migOpts(t), core.WithObserver(refCol))...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	refDir := t.TempDir()
	s, err := Begin(e, migMeta(l), Config{Dir: refDir, Every: every, Aux: []AuxCodec{refCol.Registry()}})
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	var refRecs []core.EventRecord
	for {
		rec, ok, err := s.Step()
		if err != nil {
			t.Fatalf("reference step: %v", err)
		}
		if !ok {
			break
		}
		refRecs = append(refRecs, rec)
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatalf("reference finish: %v", err)
	}
	wantRes := resultJSON(t, res)
	wantMet, err := refCol.Registry().MarshalAux()
	if err != nil {
		t.Fatalf("metrics marshal: %v", err)
	}
	if res.Migrations < 2 || res.BinsDrained == 0 {
		t.Fatalf("reference run migrated %d items (drained %d) — not a migration torture", res.Migrations, res.BinsDrained)
	}
	midPass := 0 // boundaries strictly between two moves of one pass
	for i := 0; i+1 < len(refRecs); i++ {
		if refRecs[i].Class == core.EventMigration && refRecs[i+1].Class == core.EventMigration {
			midPass++
		}
	}
	if midPass == 0 {
		t.Fatal("no multi-move pass in the reference run; the kill sweep would never land mid-pass")
	}

	// Kill after every event index (0 = before any event), then recover.
	for kill := 0; kill <= len(refRecs); kill++ {
		dir := t.TempDir()
		col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), append(migOpts(t), core.WithObserver(col))...)
		if err != nil {
			t.Fatalf("kill=%d NewEngine: %v", kill, err)
		}
		s, err := Begin(e, migMeta(l), Config{Dir: dir, Every: every, SyncEvery: 1, Aux: []AuxCodec{col.Registry()}})
		if err != nil {
			e.Close()
			t.Fatalf("kill=%d Begin: %v", kill, err)
		}
		for i := 0; i < kill; i++ {
			rec, ok, err := s.Step()
			if err != nil || !ok {
				t.Fatalf("kill=%d step %d: ok=%v err=%v", kill, i, ok, err)
			}
			if rec != refRecs[i] {
				t.Fatalf("kill=%d: event %d diverged before the kill:\n got %+v\nwant %+v", kill, i, rec, refRecs[i])
			}
		}
		// SIGKILL: drop the handles, no clean shutdown.
		s.wal.f.Close()
		s.engine.Close()

		col2 := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		rec, err := Recover(l, Config{Dir: dir, Every: every, SyncEvery: 1, Aux: []AuxCodec{col2.Registry()}},
			append(migOpts(t), core.WithObserver(col2))...)
		if err != nil {
			t.Fatalf("kill=%d recover: %v", kill, err)
		}
		if rec.Meta.Migration != migCfg.String() {
			t.Fatalf("kill=%d: recovered meta migration %q, want %q", kill, rec.Meta.Migration, migCfg.String())
		}
		res, err := rec.Session.Run()
		if err != nil {
			t.Fatalf("kill=%d resume: %v", kill, err)
		}
		if got := resultJSON(t, res); got != wantRes {
			t.Fatalf("kill=%d: result diverged\n got %s\nwant %s", kill, got, wantRes)
		}
		mj, err := col2.Registry().MarshalAux()
		if err != nil {
			t.Fatalf("kill=%d metrics marshal: %v", kill, err)
		}
		if string(mj) != string(wantMet) {
			t.Fatalf("kill=%d: metrics diverged\n got %s\nwant %s", kill, mj, wantMet)
		}
	}
}

// TestTortureMigrationTornWAL cuts a completed migrating run's WAL at random
// byte offsets — mid-record, mid-migration-event — and requires recovery to
// re-derive the byte-identical final result from the surviving prefix.
func TestTortureMigrationTornWAL(t *testing.T) {
	l := migList(8)
	const every = 4

	refDir := t.TempDir()
	refCol := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), append(migOpts(t), core.WithObserver(refCol))...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Begin(e, migMeta(l), Config{Dir: refDir, Every: every, Aux: []AuxCodec{refCol.Registry()}})
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantRes := resultJSON(t, res)

	refWAL, err := os.ReadFile(filepath.Join(refDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := ReadFile(nil, filepath.Join(refDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	metaEnd := fd.Offsets[1]

	rng := rand.New(rand.NewSource(24680))
	for trial := 0; trial < 24; trial++ {
		dir := t.TempDir()
		copyRun(t, refDir, dir)
		cut := metaEnd + rng.Int63n(int64(len(refWAL))-metaEnd+1)
		truncate(t, filepath.Join(dir, walFile), cut)
		if trial%2 == 1 {
			deleteRandomSnapshots(t, rng, dir)
		}

		col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		rec, err := Recover(l, Config{Dir: dir, Every: every, Aux: []AuxCodec{col.Registry()}},
			append(migOpts(t), core.WithObserver(col))...)
		if err != nil {
			t.Fatalf("trial %d (cut %d): recover: %v", trial, cut, err)
		}
		res, err := rec.Session.Run()
		if err != nil {
			t.Fatalf("trial %d (cut %d): resume: %v", trial, cut, err)
		}
		if got := resultJSON(t, res); got != wantRes {
			t.Fatalf("trial %d (cut %d): result diverged\n got %s\nwant %s", trial, cut, got, wantRes)
		}
	}
}

// TestTortureMigrationOptionMismatch: recovering a migrating run without
// re-supplying WithMigration (or with a different planner) must fail loudly
// — either at snapshot restore (migration state present, option absent) or
// at replay verification (regenerated events diverge) — never silently
// produce a different packing. The run is killed mid-pass with snapshotting
// effectively off, so recovery must re-plan the pass from the WAL's events:
// that is the path a wrong planner poisons.
func TestTortureMigrationOptionMismatch(t *testing.T) {
	l := migList(8)
	dir := t.TempDir()
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), migOpts(t)...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := Config{Dir: dir, Every: 1 << 30, SyncEvery: 1}
	s, err := Begin(e, migMeta(l), cfg)
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	migs := 0
	for migs < 2 {
		rec, ok, err := s.Step()
		if err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v (migrations so far: %d)", ok, err, migs)
		}
		if rec.Class == core.EventMigration {
			migs++
		}
	}
	s.wal.f.Close()
	s.engine.Close()

	if _, err := Recover(l, cfg); err == nil {
		t.Fatal("recovered a migrating run without WithMigration")
	}
	other, err := migrate.NewPlanner("farb-score")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Recover(l, cfg,
		core.WithMigration(other, 2, core.MigrationBudget{MaxMoves: 16}))
	if err == nil {
		t.Fatal("recovered with a mismatched planner and no divergence")
	}
}
