// Package persist is the crash-consistent checkpoint/restore layer for the
// packing engine: a write-ahead log of committed engine events plus periodic
// full-state snapshots, both stored in a versioned, CRC-checksummed,
// length-prefixed record format.
//
// The design leans on the engine's determinism contract: the event stream is
// a pure function of (instance, policy, options), so recovery does not need
// to re-apply logged events as mutations. Instead it restores the newest
// valid snapshot and re-steps the engine, verifying that every regenerated
// event is bit-identical to the logged suffix — the WAL tells recovery how
// far the run had progressed and doubles as an end-to-end determinism check.
//
// Corruption never panics. Torn or bit-flipped tails are truncated at the
// first bad checksum, damaged snapshots are skipped in favour of older ones
// (or a from-scratch replay), and every tolerated defect is surfaced as a
// structured *CorruptionError in the recovery report.
package persist

import (
	"fmt"
)

// CorruptionError describes one detected defect in a persisted file: a torn
// record, a failed checksum, an undecodable payload, or a semantic
// inconsistency (an event out of sequence, a snapshot disagreeing with the
// instance). Recovery returns the defects it tolerated in its report and
// wraps the ones it cannot get past.
type CorruptionError struct {
	// Path is the offending file ("" for in-memory decodes).
	Path string
	// Offset is the byte offset of the defect within the file, -1 if unknown.
	Offset int64
	// Record is the zero-based record index of the defect, -1 if unknown.
	Record int
	// Reason is a human-readable description of the defect.
	Reason string
	// Err is the underlying cause, when one exists.
	Err error
}

// Error implements error.
func (e *CorruptionError) Error() string {
	s := "persist: corrupt"
	if e.Path != "" {
		s += " " + e.Path
	}
	if e.Record >= 0 {
		s += fmt.Sprintf(" record %d", e.Record)
	}
	if e.Offset >= 0 {
		s += fmt.Sprintf(" at byte %d", e.Offset)
	}
	s += ": " + e.Reason
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// corrupt builds a CorruptionError with no file position.
func corrupt(reason string, args ...any) *CorruptionError {
	return &CorruptionError{Offset: -1, Record: -1, Reason: fmt.Sprintf(reason, args...)}
}
