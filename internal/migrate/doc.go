// Package migrate implements budgeted defragmentation for the DVBP engine:
// consolidation planners that periodically relocate active items between open
// bins to drain lightly-used bins (closing them early and saving usage-time
// cost) or to reduce stranded capacity, under a hard per-pass budget on both
// the move count and the moved size × remaining-duration migration cost.
//
// The package supplies the standard core.MigrationPlanner implementations —
// drain-emptiest, FARB-score-driven and stranded-capacity-driven (the latter
// ranked by metrics.FragOf) — plus ValidatePlan, a structural validator over
// plain-data cluster states that rejects malformed or adversarial plans with
// structured *PlanError values (never a panic), and Config, the CLI/experiment
// wiring that resolves a planner by name into a core.WithMigration option.
//
// Every planner is a deterministic pure function of the migration view and
// budget, the property the engine's WAL-replay recovery depends on
// (DESIGN.md §14). Plans never exceed the budget and never overflow a target
// bin; the engine re-verifies both against its exact accumulator loads when
// the moves apply.
package migrate
