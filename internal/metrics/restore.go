package metrics

import (
	"encoding/json"
	"fmt"
	"math"
)

// Checkpoint support: a Registry can freeze itself into a Snapshot (it always
// could) and now also re-install a Snapshot with Restore, so the persistence
// layer can carry metrics across a crash. The contract matches the engine's:
// metrics restored from a checkpoint at event k, then fed the replayed events
// k+1..n through the ordinary observer callbacks, equal the uninterrupted
// metrics at event n — when the collector uses a deterministic clock (see
// Manual), byte for byte.
//
// The AuxKey/MarshalAux/UnmarshalAux triple implements persist.AuxCodec
// structurally; metrics does not import persist.

// restore installs an absolute counter value.
func (c *Counter) restore(v uint64) { c.v.Store(v) }

// restore installs absolute histogram state. perBucket is aligned with the
// internal buckets: one entry per configured bound plus the +Inf catch-all.
func (h *Histogram) restore(count uint64, sum float64, perBucket []uint64) {
	for i := range h.buckets {
		h.buckets[i].Store(perBucket[i])
	}
	h.count.Store(count)
	h.sumBits.Store(math.Float64bits(sum))
}

// Restore re-installs a snapshot into the registry. Every snapshot metric
// must already be registered with the same kind (registration happens at
// collector construction, before restore), and histogram bucket bounds must
// match exactly; any disagreement aborts with an error before instruments
// are touched, leaving the registry unchanged. Metrics registered but absent
// from the snapshot are an error too — a half-restored registry would break
// the checkpoint-equals-replay contract silently.
func (r *Registry) Restore(s Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	if len(s.Metrics) != len(r.ordered) {
		return fmt.Errorf("metrics: snapshot has %d metrics, registry has %d", len(s.Metrics), len(r.ordered))
	}
	// Validate everything first so a bad snapshot cannot leave the registry
	// half-restored.
	plans := make([]func(), 0, len(s.Metrics))
	for _, m := range s.Metrics {
		m := m
		reg, ok := r.byName[m.Name]
		if !ok {
			return fmt.Errorf("metrics: snapshot metric %s is not registered", m.Name)
		}
		if reg.kind != m.Kind {
			return fmt.Errorf("metrics: %s is a %s in the snapshot but registered as %s", m.Name, m.Kind, reg.kind)
		}
		switch m.Kind {
		case KindCounter:
			v := m.Value
			if v < 0 || v != math.Trunc(v) || v > (1<<53) {
				return fmt.Errorf("metrics: counter %s has non-integer snapshot value %v", m.Name, v)
			}
			c := reg.counter
			plans = append(plans, func() { c.restore(uint64(v)) })
		case KindGauge:
			g := reg.gauge
			plans = append(plans, func() { g.Set(m.Value) })
		case KindHistogram:
			h := reg.histogram
			perBucket, err := planHistogram(m, h)
			if err != nil {
				return err
			}
			plans = append(plans, func() { h.restore(m.Count, m.Sum, perBucket) })
		default:
			return fmt.Errorf("metrics: %s has unknown kind %q", m.Name, m.Kind)
		}
	}
	for _, apply := range plans {
		apply()
	}
	return nil
}

// planHistogram validates one histogram snapshot against its registered
// instrument and inverts the cumulative bucket counts into per-bucket counts.
func planHistogram(m Metric, h *Histogram) ([]uint64, error) {
	if len(m.Buckets) != len(h.bounds)+1 {
		return nil, fmt.Errorf("metrics: histogram %s has %d snapshot buckets, instrument has %d", m.Name, len(m.Buckets), len(h.bounds)+1)
	}
	for i, b := range m.Buckets {
		if i == len(h.bounds) {
			if !math.IsInf(b.UpperBound, 1) {
				return nil, fmt.Errorf("metrics: histogram %s: last snapshot bucket bound is %v, want +Inf", m.Name, b.UpperBound)
			}
			continue
		}
		if b.UpperBound != h.bounds[i] {
			return nil, fmt.Errorf("metrics: histogram %s: bucket %d bound %v differs from configured %v", m.Name, i, b.UpperBound, h.bounds[i])
		}
	}
	perBucket := make([]uint64, len(m.Buckets))
	var prev uint64
	for i, b := range m.Buckets {
		if b.Count < prev {
			return nil, fmt.Errorf("metrics: histogram %s: cumulative bucket counts decrease at bucket %d", m.Name, i)
		}
		perBucket[i] = b.Count - prev
		prev = b.Count
	}
	if prev != m.Count {
		return nil, fmt.Errorf("metrics: histogram %s: +Inf bucket holds %d but count is %d", m.Name, prev, m.Count)
	}
	return perBucket, nil
}

// AuxKey implements the persistence layer's aux-codec seam.
func (r *Registry) AuxKey() string { return "metrics" }

// MarshalAux serialises the registry state (its Snapshot as JSON — float64
// values round-trip bit-exactly through Go's shortest-form formatting).
func (r *Registry) MarshalAux() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// UnmarshalAux is the inverse of MarshalAux. Malformed input returns an
// error and leaves the registry unchanged.
func (r *Registry) UnmarshalAux(data []byte) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("metrics: undecodable aux state: %w", err)
	}
	return r.Restore(s)
}
