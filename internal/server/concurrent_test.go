package server

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestConcurrentTenantsDeterministic drives N tenants concurrently — one
// client goroutine per tenant, all interleaving arrivals and clock advances
// through the shared HTTP front end — and checks every tenant's placement
// stream is byte-identical to the same event stream run single-threaded
// through a bare engine. This is the isolation contract: tenants share the
// process, the mux, and the metrics registry, but never each other's state.
// Run under -race (make stress repeats it).
func TestConcurrentTenantsDeterministic(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir(), Limits{QueueDepth: 512})
	policies := []string{"FirstFit", "BestFit", "NextFit", "MoveToFront", "RandomFit", "WorstFit"}
	const perTenant = 150

	type tenantRun struct {
		cfg   TenantConfig
		items []streamItem
	}
	runs := make([]tenantRun, len(policies))
	for i, p := range policies {
		runs[i] = tenantRun{
			cfg:   TenantConfig{Name: fmt.Sprintf("t%d", i), Dim: 2, Policy: p, Seed: int64(i + 1), CheckpointEvery: 40},
			items: stream(2, perTenant, i*13),
		}
		mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants", runs[i].cfg, nil), "create")
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(runs))
	for _, run := range runs {
		wg.Add(1)
		go func(run tenantRun) {
			defer wg.Done()
			base := ts.URL + "/v1/tenants/" + run.cfg.Name
			for i, it := range run.items {
				var pr PlaceResult
				body := placeBody{Arrival: f(it.arrival), Departure: f(it.departure), Size: it.size}
				// The bounded queue may push back under the interleaved
				// load; backpressure asks the client to retry, so retry.
				for {
					code := call(t, "POST", base+"/place", body, &pr)
					if code == http.StatusOK {
						break
					}
					if code != http.StatusTooManyRequests {
						errs <- fmt.Errorf("%s item %d: status %d", run.cfg.Name, i, code)
						return
					}
				}
				if pr.Item != i {
					errs <- fmt.Errorf("%s: item %d acked as %d", run.cfg.Name, i, pr.Item)
					return
				}
				// Sprinkle same-instant advances through the stream; they
				// commit due departures without moving past the arrivals.
				if i%17 == 0 {
					if code := call(t, "POST", base+"/advance", advanceBody{To: it.arrival}, nil); code != http.StatusOK {
						errs <- fmt.Errorf("%s advance at %d: status %d", run.cfg.Name, i, code)
						return
					}
				}
			}
		}(run)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, run := range runs {
		var got PlacementsResult
		mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/"+run.cfg.Name+"/placements", nil, &got), "placements")
		want := referencePlacements(t, run.cfg, run.items)
		if len(got.Placements) != len(want) {
			t.Fatalf("%s: %d placements, want %d", run.cfg.Name, len(got.Placements), len(want))
		}
		for i := range want {
			if got.Placements[i] != want[i] {
				t.Fatalf("%s: placement %d = %+v, want %+v", run.cfg.Name, i, got.Placements[i], want[i])
			}
		}
	}
}
