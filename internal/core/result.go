package core

import (
	"fmt"
	"sort"
	"strings"
)

// Placement records where one item was packed. Under fault injection an
// item may have several placements (one per dispatch that succeeded).
type Placement struct {
	ItemID int
	BinID  int
	// Opened reports whether packing this item opened a new bin.
	Opened bool
	// Time is the packing (dispatch) time.
	Time float64
	// Attempt is 0 for the first placement and k for the re-placement after
	// the item's k-th eviction.
	Attempt int
}

// BinUsage summarises one bin's lifetime: a single usage interval, per the
// paper's w.l.o.g. normalisation.
type BinUsage struct {
	BinID    int
	OpenedAt float64
	ClosedAt float64
	// Packed is the number of items the bin ever held.
	Packed int
	// Crashed reports that the bin was forcibly closed by fault injection
	// rather than by its last item departing.
	Crashed bool
}

// Usage returns the bin's contribution to the packing cost.
func (u BinUsage) Usage() float64 { return u.ClosedAt - u.OpenedAt }

// Result is the outcome of one simulation run.
type Result struct {
	// Algorithm is the policy name.
	Algorithm string
	// Dim is the number of resource dimensions.
	Dim int
	// Items is the number of items packed.
	Items int
	// Cost is the MinUsageTime objective: Σ_bins (closed - opened).
	Cost float64
	// BinsOpened is the total number of bins ever opened.
	BinsOpened int
	// MaxConcurrentBins is the peak number of simultaneously open bins.
	MaxConcurrentBins int
	// Placements maps each item (by index in input order of IDs) to its bin.
	Placements []Placement
	// Bins holds per-bin usage records, ascending by BinID.
	Bins []BinUsage
	// Span is span(R) for the input, recorded for convenience (cost of an
	// idealised single-bin packing; also the Lemma 1(iii) lower bound).
	Span float64
	// Mu is the max/min duration ratio of the input.
	Mu float64

	// Failure and admission accounting. All fields below are zero on a
	// fault-free, uncapped run (the paper's model).

	// Crashes is the number of bins forcibly closed by fault injection.
	Crashes int
	// Evictions counts item displacements caused by crashes (an item
	// evicted twice counts twice).
	Evictions int
	// Retries counts successful re-placements of evicted items.
	Retries int
	// ItemsLost counts evicted items that could not be re-dispatched before
	// their own departure time.
	ItemsLost int
	// Rejected counts dispatches dropped because the fleet was at WithMaxBins
	// capacity and no admission queue was configured.
	Rejected int
	// TimedOut counts admission-queue entries dropped because their deadline
	// or their own departure passed before capacity freed.
	TimedOut int
	// QueuedPlaced counts placements that came out of the admission queue.
	QueuedPlaced int
	// QueueDelay is the total simulated time QueuedPlaced items spent
	// waiting in the admission queue.
	QueueDelay float64
	// LostUsageTime is the total usage time lost to crashes: for every
	// eviction, the gap between the crash and the item's re-dispatch (or its
	// departure, when the item is lost).
	LostUsageTime float64

	// Migration accounting (DESIGN.md §14). All fields are zero unless the
	// run was configured with WithMigration and a positive budget.

	// Migrations counts applied migration moves.
	Migrations int
	// MigrationCost is the total move cost Σ MigrationMoveCost (moved L1
	// size × remaining duration at the pass instant). It is reported beside
	// Cost, not folded into it: Cost stays the paper's usage-time objective.
	MigrationCost float64
	// BinsDrained counts bins closed because a migration move emptied them.
	BinsDrained int

	// Outcomes maps every input item ID to its terminal state.
	Outcomes map[int]Outcome
}

// Outcome is the terminal state of one input item.
type Outcome uint8

// The four terminal states. Every item reaches exactly one.
const (
	// OutcomeServed: the item departed normally (possibly after one or more
	// eviction/re-placement cycles).
	OutcomeServed Outcome = iota
	// OutcomeLost: the item was evicted by a crash and could not resume
	// before its departure.
	OutcomeLost
	// OutcomeRejected: a dispatch of the item was dropped at admission with
	// no queue configured.
	OutcomeRejected
	// OutcomeTimedOut: the item waited in the admission queue until its
	// deadline (or departure) passed.
	OutcomeTimedOut
)

// String renders the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeLost:
		return "lost"
	case OutcomeRejected:
		return "rejected"
	case OutcomeTimedOut:
		return "timed-out"
	}
	return "unknown"
}

// PlacementOf returns the first placement record for an item ID (ok=false
// if the item was never placed). Under fault injection later placements of
// the same item are found by scanning Placements directly.
func (r *Result) PlacementOf(itemID int) (Placement, bool) {
	for _, p := range r.Placements {
		if p.ItemID == itemID {
			return p, true
		}
	}
	return Placement{}, false
}

// BinItems returns, for each bin ID, the item IDs packed into it in packing
// order.
func (r *Result) BinItems() map[int][]int {
	m := make(map[int][]int)
	for _, p := range r.Placements {
		m[p.BinID] = append(m[p.BinID], p.ItemID)
	}
	return m
}

// NormalizedCost returns Cost / lb, the experimental performance measure the
// paper plots in Figure 4 (lb is a lower bound on OPT). It panics if lb <= 0.
func (r *Result) NormalizedCost(lb float64) float64 {
	if lb <= 0 {
		panic("core: non-positive lower bound")
	}
	return r.Cost / lb
}

// String renders a human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: d=%d items=%d bins=%d peak=%d cost=%.4f span=%.4f",
		r.Algorithm, r.Dim, r.Items, r.BinsOpened, r.MaxConcurrentBins, r.Cost, r.Span)
	if r.Crashes > 0 || r.Rejected > 0 || r.TimedOut > 0 {
		fmt.Fprintf(&b, " crashes=%d evict=%d retry=%d lost=%d reject=%d timeout=%d",
			r.Crashes, r.Evictions, r.Retries, r.ItemsLost, r.Rejected, r.TimedOut)
	}
	if r.Migrations > 0 {
		fmt.Fprintf(&b, " migrations=%d migcost=%.4f drained=%d",
			r.Migrations, r.MigrationCost, r.BinsDrained)
	}
	return b.String()
}

// sortBins normalises Bins/Placements ordering for deterministic output.
func (r *Result) sortBins() {
	sort.Slice(r.Bins, func(i, j int) bool { return r.Bins[i].BinID < r.Bins[j].BinID })
	sort.Slice(r.Placements, func(i, j int) bool {
		if r.Placements[i].Time != r.Placements[j].Time {
			return r.Placements[i].Time < r.Placements[j].Time
		}
		return r.Placements[i].ItemID < r.Placements[j].ItemID
	})
}
