# Developer entry points. `make ci` is the full gate: formatting, vet,
# the test suite under the race detector, a repeated-run concurrency stress
# pass, a seeded kill-and-recover torture pass over the persistence layer,
# and a short fuzz pass over the engine, fault-schedule, and on-disk-format
# fuzzers.

GO ?= go
FUZZTIME ?= 5s
# stress repeats the concurrency/determinism tests to shake out rare
# interleavings; raise for soak runs (e.g. STRESSCOUNT=50).
STRESSCOUNT ?= 5
# bench-json knobs: raise for quieter numbers (e.g. BENCHTIME=30x BENCHCOUNT=5).
BENCHTIME ?= 10x
BENCHCOUNT ?= 3

.PHONY: ci fmt vet test race stress torture-smoke serve-smoke frag-smoke defrag-smoke disk-smoke build bench bench-smoke bench-json fuzz-smoke docs-check

ci: fmt vet docs-check race stress torture-smoke serve-smoke frag-smoke defrag-smoke disk-smoke bench-smoke fuzz-smoke

# gofmt -l prints offending files; fail when the list is non-empty.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Repeated-run concurrency stress under the race detector: the scheduler,
# sharded-sweep determinism, run-scoped metrics, the engine's policy-reuse
# guard, and concurrent-read contracts. GOMAXPROCS is forced above the core
# count so goroutines interleave even on small machines.
stress:
	GOMAXPROCS=4 $(GO) test -race -count=$(STRESSCOUNT) \
		-run='Concurrent|Stress|Steal|Sweep|Shard|Slice|ForRun|Progress|Cancellation|Panic|WorkerCounts|Migration|Planners' \
		./internal/parallel ./internal/experiments ./internal/metrics \
		./internal/core ./internal/faults ./internal/vector ./internal/server \
		./internal/migrate

# Seeded kill-and-recover torture: random WAL truncations, snapshot
# deletions, and bit flips at the package level, plus real process kills
# (-kill-at hard exits and SIGKILL) at the CLI level — every recovery must be
# byte-identical to an uninterrupted run. Runs under the race detector.
# cmd/dvbpserver contributes the restart-under-load server torture: SIGKILL
# mid-load, restart, every acknowledged placement still served identically.
# internal/persist contributes the mid-migration tortures (TestTortureMigration*):
# kills landing between a drain's moves must recover byte-identically.
torture-smoke:
	$(GO) test -race -run='Torture|KillAt|SIGKILL|Recover|Restore' \
		./internal/persist ./internal/server ./cmd/dvbpchaos ./cmd/dvbpsim ./cmd/dvbpserver

# End-to-end smoke for the placement service: boot dvbpserver, create a
# tenant, place, drain on SIGTERM; plus the policy-spelling round-trip and
# the dvbpbench -serve-load / -serve-verify audit loop.
serve-smoke:
	$(GO) test -run='ServeSmoke|ListPolicySpellings|ServeLoadVerify' \
		./cmd/dvbpserver ./cmd/dvbpbench

# Fragmentation gate (DESIGN.md §13): the metric's recompute and reorder
# invariants, the scored policies' hand-worked decisions and registry
# round-trips, the datacenter trace generators' degenerate-draw audit, the
# head-to-head experiment, the server's per-dimension stranded accounting,
# and the ranking-flip figure.
frag-smoke:
	$(GO) test -run='Frag|Datacenter|Stranded|CheckItem' \
		./internal/metrics ./internal/core ./internal/workload \
		./internal/experiments ./internal/server ./cmd/dvbpfigs

# Defragmentation gate (DESIGN.md §14): planner/budget/plan-validation
# invariants, the budget-0 differential identity (disabled migration is
# byte-identical to no migration), engine migration invariants and hostile-plan
# rejection, mid-migration kill-and-recover, and the budgeted-defragmentation
# study with its azure acceptance property. Runs under the race detector
# because the differential and kill-and-recover checks must hold there too.
defrag-smoke:
	$(GO) test -race -run='Migration|Planner|ValidatePlan|Defrag' \
		./internal/migrate ./internal/core ./internal/persist ./internal/experiments

# Disk-fault gate (DESIGN.md §15): the vfs crash/fault model itself, the
# exhaustive crash-point sweeps (power loss at EVERY filesystem operation of
# a static and a dynamic run, recovery byte-identical), the compaction
# invariants (bounded WAL, no from-scratch fallback past the compaction
# base), the writer rollback/retry paths, the error taxonomy, the server's
# degraded read-only mode, and the CLI-level -disk-faults/-compact runs.
disk-smoke:
	$(GO) test -race -run='Vfs|Mem|Injector|Crash|DiskTorture|Compact|Rollback|SyncsParent|SweepsOrphan|Classification|Degraded|SickDisk|DiskFault' \
		./internal/vfs ./internal/persist ./internal/server ./cmd/dvbpchaos ./cmd/dvbpbench

bench:
	$(GO) test -bench=. -benchmem

# Run every benchmark exactly once so bench code can never rot unnoticed:
# compiles all benchmarks and executes each for a single iteration. -short
# keeps the fleet-scale Select benchmarks at n=10^4 (the 10^5/10^6 rungs
# build million-bin fleets; bench-json runs the full ladder).
bench-smoke:
	$(GO) test -short -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable perf trajectory: run the core hot-path benchmarks, the
# sharded-sweep throughput benchmark (shards/sec at 1 and 8 workers) and the
# placement-server benchmark (req/sec with p50/p99 latency at 1 and 8
# clients), then write BENCH_core.json (benchstat-comparable names, mean
# ns/op, B/op, allocs/op). When artifacts/bench/BENCH_core_pre.txt exists (the pre-change
# capture), it is embedded as the document's baseline section so the
# before/after pair travels together.
bench-json:
	@mkdir -p artifacts/bench
	$(GO) test ./internal/core -run='^$$' -bench='ChurnHotPath|SimulateUniform|BinChurnClose|FleetSelect|FragmentationSweep' \
		-benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) | tee artifacts/bench/BENCH_core_cur.txt
	$(GO) test . -run='^$$' -bench='Figure4SweepThroughput' \
		-benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) | tee -a artifacts/bench/BENCH_core_cur.txt
	$(GO) test ./internal/server -run='^$$' -bench='ServerPlaceThroughput' \
		-benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) | tee -a artifacts/bench/BENCH_core_cur.txt
	$(GO) run ./cmd/dvbpbench -benchjson artifacts/bench/BENCH_core_cur.txt \
		$(if $(wildcard artifacts/bench/BENCH_core_pre.txt),-benchjson-baseline artifacts/bench/BENCH_core_pre.txt) \
		-benchjson-out BENCH_core.json
	@echo "wrote BENCH_core.json"

# Documentation gate: every internal package must carry a doc.go overview,
# and every "DESIGN.md §N" reference in the top-level docs must point at a
# "## N." section DESIGN.md actually has.
docs-check:
	@missing=""; for d in internal/*/; do \
		[ -f "$$d"doc.go ] || missing="$$missing $$d"; \
	done; \
	if [ -n "$$missing" ]; then echo "docs-check: missing doc.go in:$$missing"; exit 1; fi
	@bad=""; for n in $$(grep -ho 'DESIGN\.md §[0-9][0-9]*' README.md EXPERIMENTS.md ROADMAP.md 2>/dev/null \
			| grep -o '[0-9][0-9]*$$' | sort -un); do \
		grep -q "^## $$n\." DESIGN.md || bad="$$bad $$n"; \
	done; \
	if [ -n "$$bad" ]; then echo "docs-check: broken DESIGN.md section references:$$bad"; exit 1; fi
	@echo "docs-check ok"

# Short differential-fuzz pass: the clean engine, the engine under fault
# injection, the fault-schedule parsers, and the persistence layer's WAL and
# snapshot decoders (seed corpus committed under internal/persist/testdata).
# Each fuzzer gets FUZZTIME.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzSimulate$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzSimulateFaulty$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/faults
	$(GO) test -run='^$$' -fuzz='^FuzzMigrationPlan$$' -fuzztime=$(FUZZTIME) ./internal/migrate
	$(GO) test -run='^$$' -fuzz='^FuzzWALDecode$$' -fuzztime=$(FUZZTIME) ./internal/persist
	$(GO) test -run='^$$' -fuzz='^FuzzOpLogDecode$$' -fuzztime=$(FUZZTIME) ./internal/persist
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotDecode$$' -fuzztime=$(FUZZTIME) ./internal/persist
