package core

import (
	"math/rand"
	"testing"

	"dvbp/internal/vector"
)

// recencyIDs walks the intrusive recency list front to back.
func (mf *MoveToFront) recencyIDs() []int {
	var ids []int
	for i := mf.head; i != -1; i = mf.nodes[i].next {
		ids = append(ids, mf.nodes[i].bin.ID)
	}
	return ids
}

// mtfModel is the obviously-correct slice model of the recency order: pack
// promotes (or inserts at) the front, close deletes wherever the bin sits.
type mtfModel struct{ order []int }

func (m *mtfModel) pack(id int) {
	for i, x := range m.order {
		if x == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.order = append([]int{id}, m.order...)
}

func (m *mtfModel) close(id int) {
	for i, x := range m.order {
		if x == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			return
		}
	}
}

// TestMoveToFrontRecencyOrder drives the index-backed list through random
// open/promote/close sequences — closes hit arbitrary list positions, exactly
// what a crash does to a non-leader bin — and checks the full recency order
// against the slice model after every operation.
func TestMoveToFrontRecencyOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mf := NewMoveToFront()
	var model mtfModel
	req := Request{Size: vector.Of(0.1)}

	bins := make(map[int]*Bin)
	nextID := 0
	openIDs := func() []int {
		ids := make([]int, 0, len(bins))
		for id := range bins {
			ids = append(ids, id)
		}
		return ids
	}

	for step := 0; step < 5000; step++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(bins) == 0: // open a new bin
			b := newBin(nextID, 1, 0)
			nextID++
			bins[b.ID] = b
			mf.OnPack(req, b, true)
			model.pack(b.ID)
		case r < 8: // promote an existing bin (pack into it)
			ids := openIDs()
			id := ids[rng.Intn(len(ids))]
			mf.OnPack(req, bins[id], false)
			model.pack(id)
		default: // close an arbitrary bin (departure-close or crash)
			ids := openIDs()
			id := ids[rng.Intn(len(ids))]
			mf.OnClose(bins[id])
			model.close(id)
			delete(bins, id)
		}

		got := mf.recencyIDs()
		if len(got) != len(model.order) {
			t.Fatalf("step %d: recency list has %d bins, model %d", step, len(got), len(model.order))
		}
		for i := range got {
			if got[i] != model.order[i] {
				t.Fatalf("step %d: recency order %v, model %v", step, got, model.order)
			}
		}
		wantLeader := -1
		if len(model.order) > 0 {
			wantLeader = model.order[0]
		}
		if mf.LeaderID() != wantLeader {
			t.Fatalf("step %d: LeaderID = %d, model %d", step, mf.LeaderID(), wantLeader)
		}
	}
}

// TestMoveToFrontSelectScansRecencyOrder pins the Select contract: bins are
// probed strictly in recency order and the first fitting bin wins, even when
// fresher bins are full.
func TestMoveToFrontSelectScansRecencyOrder(t *testing.T) {
	mf := NewMoveToFront()
	req := Request{Size: vector.Of(0.1)}

	full := newBin(0, 1, 0)
	if err := full.pack(100, vector.Of(0.95)); err != nil {
		t.Fatal(err)
	}
	roomy := newBin(1, 1, 0)
	spare := newBin(2, 1, 0)
	// Recency: full (leader), then roomy, then spare.
	mf.OnPack(req, spare, true)
	mf.OnPack(req, roomy, true)
	mf.OnPack(req, full, true)

	open := []*Bin{full, roomy, spare}
	if got := mf.Select(req, open); got != roomy {
		t.Fatalf("Select chose bin %v, want roomy bin 1 (leader full, next in recency order)", got)
	}
	// Closing the leader promotes roomy; spare stays behind it.
	mf.OnClose(full)
	if mf.LeaderID() != roomy.ID {
		t.Fatalf("leader after close = %d, want %d", mf.LeaderID(), roomy.ID)
	}
	if got := mf.Select(req, []*Bin{roomy, spare}); got != roomy {
		t.Fatalf("Select chose %v, want roomy", got)
	}
}

// TestMoveToFrontReset pins that Reset reclaims all nodes and a reused policy
// behaves like a fresh one.
func TestMoveToFrontReset(t *testing.T) {
	mf := NewMoveToFront()
	req := Request{Size: vector.Of(0.1)}
	for i := 0; i < 8; i++ {
		mf.OnPack(req, newBin(i, 1, 0), true)
	}
	mf.Reset()
	if mf.LeaderID() != -1 {
		t.Fatalf("LeaderID after Reset = %d, want -1", mf.LeaderID())
	}
	if got := mf.Select(req, nil); got != nil {
		t.Fatalf("Select after Reset = %v, want nil", got)
	}
	b := newBin(99, 1, 0)
	mf.OnPack(req, b, true)
	if mf.LeaderID() != 99 {
		t.Fatalf("LeaderID = %d, want 99", mf.LeaderID())
	}
}
