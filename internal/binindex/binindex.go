package binindex

import (
	"fmt"

	"dvbp/internal/vector"
)

// nilNode marks an absent child link in the node arena.
const nilNode int32 = -1

// bucketCount is the resolution of the residual-capacity histogram: bins are
// bucketed by their maximum per-dimension residual into 64 equal slices of
// the unit capacity, one bit each, so a subtree's occupancy is a single
// uint64 OR.
const bucketCount = 64

// maskSlack absorbs the rounding error of computing residuals as 1 - load:
// bucket assignment rounds the residual *up* by this margin so the bucket
// prune stays conservative (never prunes a feasible bin). The slack is far
// above float64 ulp scale and far below vector.Eps, so it cannot flip a
// genuine feasibility decision either way.
const maskSlack = 1e-12

// node is one open bin in the arena. Links are arena indices, not pointers:
// the tree stays compact, nodes recycle through a free list, and the
// per-node load/minLoad slices are reused across generations so steady-state
// churn allocates nothing.
type node[P any] struct {
	// kf/ks form the sort key, compared lexicographically (kf first). Bin
	// IDs make ks unique within every policy's keying discipline.
	kf float64
	ks int64
	// id is the bin ID the engine addresses updates and removals by.
	id      int
	payload P

	// prio is the treap heap priority: a fixed hash of id, so the tree's
	// shape is a pure function of the indexed (key, id) set — independent of
	// the order of inserts, removals and re-keyings that produced it. That
	// history independence is what makes a checkpoint-restore rebuild
	// reproduce not just the store's answers but its exact structure (and
	// hence its per-query feasibility-check counts, which instrumentation
	// reports).
	prio uint64

	left, right int32
	// count is the subtree size (order-statistic augmentation).
	count int32

	// load is this bin's current load vector (a copy owned by the arena).
	load []float64
	// minLoad is the component-wise minimum load over the subtree rooted
	// here (including this node) — the exact feasibility prune.
	minLoad []float64
	// selfMask is this bin's residual bucket bit; mask is the OR over the
	// subtree — the O(1) residual-capacity prune.
	selfMask uint64
	mask     uint64
}

// Store is the indexed bin store: a treap (randomised order-statistic tree
// with deterministic, hash-derived priorities) over open bins in a
// policy-chosen key order, with residual-capacity pruning augmentations.
// The zero Store is not ready to use; construct with New. A Store is not
// safe for concurrent use — like the engine that owns it, it is
// single-goroutine.
type Store[P any] struct {
	d     int
	root  int32
	nodes []node[P]
	free  []int32
	byID  map[int]int32

	// nextFront is the next recency key InsertFront/PromoteFront will
	// assign; it only ever decreases, so the freshest entry sorts first.
	nextFront int64

	// checks counts feasibility evaluations (per-entry fit checks and
	// subtree prune checks) since the last ResetChecks — the quantity the
	// engine reports through the SelectObserver seam.
	checks int

	// totals holds the exact per-dimension sum of all indexed loads, on the
	// same order-independent superaccumulator the bins themselves use, so
	// TotalLoad is bit-identical to a fresh summation over the indexed
	// multiset no matter what mutation history produced it (the property
	// AdaptiveHybrid's regime switch relies on).
	totals []vector.Acc
}

// New returns an empty store for d-dimensional loads.
func New[P any](d int) *Store[P] {
	if d < 0 {
		panic("binindex: negative dimension")
	}
	return &Store[P]{d: d, root: nilNode, byID: make(map[int]int32), totals: make([]vector.Acc, d)}
}

// prioOf is the deterministic priority hash (the splitmix64 finaliser). It
// is a bijection on uint64, so distinct bin IDs always get distinct
// priorities and the treap shape is unique.
func prioOf(id int) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of indexed bins.
func (s *Store[P]) Len() int {
	if s.root == nilNode {
		return 0
	}
	return int(s.nodes[s.root].count)
}

// Checks returns the feasibility evaluations performed since the last
// ResetChecks.
func (s *Store[P]) Checks() int { return s.checks }

// TotalLoad writes the exact per-dimension sum of every indexed bin's load
// into dst (len(dst) must equal the store dimension). The sum is maintained
// on vector.Acc, so it is a pure function of the indexed load multiset —
// independent of insertion, update and removal order.
func (s *Store[P]) TotalLoad(dst vector.Vector) {
	if len(dst) != s.d {
		panic(fmt.Sprintf("binindex: TotalLoad dst dimension %d, store dimension %d", len(dst), s.d))
	}
	for j := range s.totals {
		dst[j] = s.totals[j].Round()
	}
}

// totalsAdd folds a load vector into the running totals with the given sign.
func (s *Store[P]) totalsAdd(load []float64, sign int) {
	if sign > 0 {
		for j, x := range load {
			s.totals[j].Add(x)
		}
	} else {
		for j, x := range load {
			s.totals[j].Sub(x)
		}
	}
}

// ResetChecks zeroes the feasibility-evaluation counter.
func (s *Store[P]) ResetChecks() { s.checks = 0 }

// Get returns the payload stored for the given bin ID.
func (s *Store[P]) Get(id int) (P, bool) {
	if n, ok := s.byID[id]; ok {
		return s.nodes[n].payload, true
	}
	var zero P
	return zero, false
}

// Insert adds a bin under the given key. It panics if the ID is already
// indexed — the engine inserts every bin exactly once per open.
func (s *Store[P]) Insert(kf float64, ks int64, id int, load vector.Vector, payload P) {
	if _, dup := s.byID[id]; dup {
		panic(fmt.Sprintf("binindex: bin %d already indexed", id))
	}
	n := s.alloc(kf, ks, id, load, payload)
	s.byID[id] = n
	s.totalsAdd(s.nodes[n].load, +1)
	s.root = s.insertRec(s.root, n)
}

// InsertFront adds a bin under a fresh recency key that sorts before every
// existing entry (Move To Front's discipline: a freshly packed bin leads).
func (s *Store[P]) InsertFront(id int, load vector.Vector, payload P) {
	k := s.nextFront
	s.nextFront--
	s.Insert(0, k, id, load, payload)
}

// PromoteFront re-keys an indexed bin to a fresh front key, making it the
// first entry in key order while preserving the relative order of the rest.
func (s *Store[P]) PromoteFront(id int) {
	n, ok := s.byID[id]
	if !ok {
		panic(fmt.Sprintf("binindex: promote of unindexed bin %d", id))
	}
	nd := &s.nodes[n]
	s.root = s.removeRec(s.root, nd.kf, nd.ks)
	nd.kf = 0
	nd.ks = s.nextFront
	s.nextFront--
	s.root = s.insertRec(s.root, n)
}

// Update refreshes a bin's load and key after a pack or departure. When the
// key is unchanged (First/Last/Random Fit key by immutable bin ID) only the
// pruning augmentations on the root path are recomputed; a changed key
// (Best/Worst Fit key by load measure) relocates the node.
func (s *Store[P]) Update(id int, kf float64, ks int64, load vector.Vector) {
	n, ok := s.byID[id]
	if !ok {
		panic(fmt.Sprintf("binindex: update of unindexed bin %d", id))
	}
	nd := &s.nodes[n]
	if nd.kf == kf && nd.ks == ks {
		s.UpdateLoad(id, load)
		return
	}
	s.root = s.removeRec(s.root, nd.kf, nd.ks)
	nd.kf, nd.ks = kf, ks
	s.totalsAdd(nd.load, -1)
	copy(nd.load, load)
	s.totalsAdd(nd.load, +1)
	nd.selfMask = residMask(nd.load)
	s.root = s.insertRec(s.root, n)
}

// UpdateLoad refreshes a bin's load without re-keying it (the recency
// discipline: load changes never reorder Move To Front's list).
func (s *Store[P]) UpdateLoad(id int, load vector.Vector) {
	n, ok := s.byID[id]
	if !ok {
		panic(fmt.Sprintf("binindex: update of unindexed bin %d", id))
	}
	nd := &s.nodes[n]
	s.totalsAdd(nd.load, -1)
	copy(nd.load, load)
	s.totalsAdd(nd.load, +1)
	nd.selfMask = residMask(nd.load)
	s.refreshPath(s.root, nd.kf, nd.ks)
}

// Remove drops a bin from the index (bin closed or crashed).
func (s *Store[P]) Remove(id int) {
	n, ok := s.byID[id]
	if !ok {
		panic(fmt.Sprintf("binindex: remove of unindexed bin %d", id))
	}
	nd := &s.nodes[n]
	s.totalsAdd(nd.load, -1)
	s.root = s.removeRec(s.root, nd.kf, nd.ks)
	delete(s.byID, id)
	var zero P
	nd.payload = zero // release the bin to the GC; slices stay for reuse
	s.free = append(s.free, n)
}

// Clear empties the store, keeping the arena for reuse.
func (s *Store[P]) Clear() {
	var zero P
	for i := range s.nodes {
		s.nodes[i].payload = zero
	}
	s.nodes = s.nodes[:0]
	s.free = s.free[:0]
	s.root = nilNode
	clear(s.byID)
	s.nextFront = 0
	for j := range s.totals {
		s.totals[j].Reset()
	}
}

// FirstFeasible returns the first entry in key order whose bin fits an item
// of the given size — for each policy's key discipline, exactly the bin its
// linear scan would choose. ok is false when no indexed bin fits.
func (s *Store[P]) FirstFeasible(size vector.Vector) (P, bool) {
	fm := feasMask(size)
	if n := s.firstFeasible(s.root, size, fm); n != nilNode {
		return s.nodes[n].payload, true
	}
	var zero P
	return zero, false
}

// AscendFeasible calls yield for every feasible bin in ascending key order,
// stopping early when yield returns false. Random Fit reservoir-samples over
// it with the same draw sequence as its linear scan.
func (s *Store[P]) AscendFeasible(size vector.Vector, yield func(P) bool) {
	fm := feasMask(size)
	s.ascendFeasible(s.root, size, fm, yield)
}

// --- queries ---

// subtreeFeasible reports whether the subtree rooted at n can contain a
// feasible bin: the residual-bucket mask first (O(1), conservative), then
// the component-wise minimum load (O(d), exact: rounding is monotone, so if
// minLoad+size overflows capacity in some dimension, every bin in the
// subtree overflows it there too).
func (s *Store[P]) subtreeFeasible(n int32, size vector.Vector, fm uint64) bool {
	nd := &s.nodes[n]
	if nd.mask&fm == 0 {
		return false
	}
	s.checks++
	return vector.Vector(nd.minLoad).FitsWithin(size)
}

func (s *Store[P]) firstFeasible(n int32, size vector.Vector, fm uint64) int32 {
	for n != nilNode {
		nd := &s.nodes[n]
		if l := nd.left; l != nilNode && s.subtreeFeasible(l, size, fm) {
			if r := s.firstFeasible(l, size, fm); r != nilNode {
				return r
			}
		}
		s.checks++
		if vector.Vector(nd.load).FitsWithin(size) {
			return n
		}
		r := nd.right
		if r == nilNode || !s.subtreeFeasible(r, size, fm) {
			return nilNode
		}
		n = r
	}
	return nilNode
}

func (s *Store[P]) ascendFeasible(n int32, size vector.Vector, fm uint64, yield func(P) bool) bool {
	if n == nilNode || !s.subtreeFeasible(n, size, fm) {
		return true
	}
	nd := &s.nodes[n]
	if !s.ascendFeasible(nd.left, size, fm, yield) {
		return false
	}
	s.checks++
	if vector.Vector(nd.load).FitsWithin(size) {
		if !yield(nd.payload) {
			return false
		}
	}
	return s.ascendFeasible(nd.right, size, fm, yield)
}

// --- residual-capacity bucketing ---

// residMask returns the bucket bit for a bin's maximum per-dimension
// residual, rounded up by maskSlack so the bucket prune stays conservative.
func residMask(load []float64) uint64 {
	maxResid := 0.0
	for _, x := range load {
		if r := 1 - x; r > maxResid {
			maxResid = r
		}
	}
	b := int((maxResid + maskSlack) * bucketCount)
	if b >= bucketCount {
		b = bucketCount - 1
	}
	if b < 0 {
		b = 0
	}
	return 1 << uint(b)
}

// feasMask returns the buckets that could hold a bin fitting an item of the
// given size: a bin fits only if its maximum residual covers the item's
// largest component (up to vector.Eps), so buckets whose upper bound falls
// below that are excluded. The top bucket is unbounded and never excluded.
func feasMask(size []float64) uint64 {
	m := 0.0
	for _, x := range size {
		if x > m {
			m = x
		}
	}
	k := int((m - vector.Eps) * bucketCount)
	if k <= 0 {
		return ^uint64(0)
	}
	if k >= bucketCount {
		k = bucketCount - 1
	}
	return ^uint64(0) << uint(k)
}

// --- tree mechanics ---

// lessKey orders arena nodes by (kf, ks) lexicographically.
func (s *Store[P]) lessKey(kf float64, ks int64, n int32) bool {
	nd := &s.nodes[n]
	return kf < nd.kf || (kf == nd.kf && ks < nd.ks)
}

func (s *Store[P]) alloc(kf float64, ks int64, id int, load vector.Vector, payload P) int32 {
	if len(load) != s.d {
		panic(fmt.Sprintf("binindex: load dimension %d, store dimension %d", len(load), s.d))
	}
	var n int32
	if k := len(s.free); k > 0 {
		n = s.free[k-1]
		s.free = s.free[:k-1]
	} else {
		s.nodes = append(s.nodes, node[P]{load: make([]float64, s.d), minLoad: make([]float64, s.d)})
		n = int32(len(s.nodes) - 1)
	}
	nd := &s.nodes[n]
	nd.kf, nd.ks, nd.id, nd.payload = kf, ks, id, payload
	nd.prio = prioOf(id)
	nd.left, nd.right = nilNode, nilNode
	copy(nd.load, load)
	nd.selfMask = residMask(nd.load)
	return n
}

// pull recomputes n's count, minLoad and mask from its children.
func (s *Store[P]) pull(n int32) {
	nd := &s.nodes[n]
	nd.count = 1
	copy(nd.minLoad, nd.load)
	nd.mask = nd.selfMask
	for _, c := range [2]int32{nd.left, nd.right} {
		if c == nilNode {
			continue
		}
		cd := &s.nodes[c]
		nd.count += cd.count
		nd.mask |= cd.mask
		for j, x := range cd.minLoad {
			if x < nd.minLoad[j] {
				nd.minLoad[j] = x
			}
		}
	}
}

// insertRec inserts the detached node x into the subtree at n, rotating x up
// while its priority beats its parent's (the treap invariant), and returns
// the new subtree root with augmentations recomputed along the path.
func (s *Store[P]) insertRec(n, x int32) int32 {
	if n == nilNode {
		// x may be a just-detached node being re-keyed (Update,
		// PromoteFront); drop whatever children it had in its old position.
		s.nodes[x].left, s.nodes[x].right = nilNode, nilNode
		s.pull(x)
		return x
	}
	xd := &s.nodes[x]
	nd := &s.nodes[n]
	if s.lessKey(xd.kf, xd.ks, n) {
		l := s.insertRec(nd.left, x)
		nd.left = l
		if s.nodes[l].prio > nd.prio {
			// Rotate right: l up, n down as l's right child.
			nd.left = s.nodes[l].right
			s.nodes[l].right = n
			s.pull(n)
			s.pull(l)
			return l
		}
	} else {
		r := s.insertRec(nd.right, x)
		nd.right = r
		if s.nodes[r].prio > nd.prio {
			// Rotate left: r up, n down as r's left child.
			nd.right = s.nodes[r].left
			s.nodes[r].left = n
			s.pull(n)
			s.pull(r)
			return r
		}
	}
	s.pull(n)
	return n
}

// removeRec unlinks the node with the given key from the subtree at n and
// returns the new subtree root. The node itself is left intact for the
// caller to re-key, recycle, or relink.
func (s *Store[P]) removeRec(n int32, kf float64, ks int64) int32 {
	if n == nilNode {
		panic("binindex: remove of missing key")
	}
	nd := &s.nodes[n]
	switch {
	case s.lessKey(kf, ks, n):
		nd.left = s.removeRec(nd.left, kf, ks)
	case kf == nd.kf && ks == nd.ks:
		return s.merge(nd.left, nd.right)
	default:
		nd.right = s.removeRec(nd.right, kf, ks)
	}
	s.pull(n)
	return n
}

// merge joins two treaps where every key in a precedes every key in b,
// picking roots by priority so the result is the unique canonical shape.
func (s *Store[P]) merge(a, b int32) int32 {
	if a == nilNode {
		return b
	}
	if b == nilNode {
		return a
	}
	if s.nodes[a].prio > s.nodes[b].prio {
		s.nodes[a].right = s.merge(s.nodes[a].right, b)
		s.pull(a)
		return a
	}
	s.nodes[b].left = s.merge(a, s.nodes[b].left)
	s.pull(b)
	return b
}

// refreshPath recomputes the pruning augmentations along the root-to-key
// path after an in-place load change. The shape is untouched.
func (s *Store[P]) refreshPath(n int32, kf float64, ks int64) {
	if n == nilNode {
		panic("binindex: refresh of missing key")
	}
	nd := &s.nodes[n]
	switch {
	case s.lessKey(kf, ks, n):
		s.refreshPath(nd.left, kf, ks)
	case kf == nd.kf && ks == nd.ks:
		// target reached; pull below refreshes it
	default:
		s.refreshPath(nd.right, kf, ks)
	}
	s.pull(n)
}

// --- introspection for tests and the differential oracle ---

// Ascend calls yield for every entry in ascending key order (no feasibility
// filter), stopping early when yield returns false.
func (s *Store[P]) Ascend(yield func(P) bool) {
	s.ascend(s.root, yield)
}

func (s *Store[P]) ascend(n int32, yield func(P) bool) bool {
	if n == nilNode {
		return true
	}
	nd := &s.nodes[n]
	if !s.ascend(nd.left, yield) {
		return false
	}
	if !yield(nd.payload) {
		return false
	}
	return s.ascend(nd.right, yield)
}

// Shape returns a canonical preorder encoding of the tree structure
// ((id, depth) pairs). Tests use it to verify history independence: any
// operation sequence reaching the same (key, id, load) set must produce the
// same shape — the property that makes instrumentation counts reproducible
// across checkpoint restore.
func (s *Store[P]) Shape() []int {
	var out []int
	var walk func(n int32, depth int)
	walk = func(n int32, depth int) {
		if n == nilNode {
			return
		}
		out = append(out, s.nodes[n].id, depth)
		walk(s.nodes[n].left, depth+1)
		walk(s.nodes[n].right, depth+1)
	}
	walk(s.root, 0)
	return out
}

// Validate checks every structural invariant of the store — key ordering,
// the treap heap property, order-statistic counts, augmentation consistency,
// and the byID map — returning the first violation found. Tests call it
// after every mutation burst; it is O(n·d).
func (s *Store[P]) Validate() error {
	seen := 0
	var prevSet bool
	var prevKf float64
	var prevKs int64
	var walk func(n int32) (c int32, err error)
	walk = func(n int32) (int32, error) {
		if n == nilNode {
			return 0, nil
		}
		nd := &s.nodes[n]
		lc, err := walk(nd.left)
		if err != nil {
			return 0, err
		}
		if prevSet && !(prevKf < nd.kf || (prevKf == nd.kf && prevKs < nd.ks)) {
			return 0, fmt.Errorf("binindex: key order violated at bin %d", nd.id)
		}
		prevSet, prevKf, prevKs = true, nd.kf, nd.ks
		seen++
		if got, ok := s.byID[nd.id]; !ok || got != n {
			return 0, fmt.Errorf("binindex: byID inconsistent for bin %d", nd.id)
		}
		if nd.prio != prioOf(nd.id) {
			return 0, fmt.Errorf("binindex: priority stale at bin %d", nd.id)
		}
		rc, err := walk(nd.right)
		if err != nil {
			return 0, err
		}
		if nd.count != lc+rc+1 {
			return 0, fmt.Errorf("binindex: count %d != %d at bin %d", nd.count, lc+rc+1, nd.id)
		}
		wantMask := nd.selfMask
		wantMin := append([]float64(nil), nd.load...)
		for _, c := range [2]int32{nd.left, nd.right} {
			if c == nilNode {
				continue
			}
			cd := &s.nodes[c]
			if cd.prio > nd.prio {
				return 0, fmt.Errorf("binindex: heap property violated at bin %d", nd.id)
			}
			wantMask |= cd.mask
			for j, x := range cd.minLoad {
				if x < wantMin[j] {
					wantMin[j] = x
				}
			}
		}
		if nd.mask != wantMask {
			return 0, fmt.Errorf("binindex: mask stale at bin %d", nd.id)
		}
		if nd.selfMask != residMask(nd.load) {
			return 0, fmt.Errorf("binindex: self mask stale at bin %d", nd.id)
		}
		for j := range wantMin {
			if nd.minLoad[j] != wantMin[j] {
				return 0, fmt.Errorf("binindex: minLoad stale at bin %d dim %d", nd.id, j)
			}
		}
		return lc + rc + 1, nil
	}
	if _, err := walk(s.root); err != nil {
		return err
	}
	if seen != len(s.byID) {
		return fmt.Errorf("binindex: tree has %d nodes, byID has %d", seen, len(s.byID))
	}
	fresh := make([]vector.Acc, s.d)
	for _, n := range s.byID {
		for j, x := range s.nodes[n].load {
			fresh[j].Add(x)
		}
	}
	for j := range fresh {
		if got, want := s.totals[j].Round(), fresh[j].Round(); got != want {
			return fmt.Errorf("binindex: total load stale in dim %d: %v != %v", j, got, want)
		}
	}
	return nil
}
