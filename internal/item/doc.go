// Package item defines the items (jobs/VM requests) of the MinUsageTime DVBP
// problem and operations on item lists.
//
// Each item r is the tuple (a(r), e(r), s(r)) from Section 2.1: arrival time,
// departure time, and a d-dimensional size vector in [0,1]^d (bins have unit
// capacity after normalisation). The active interval I(r) = [a(r), e(r)) is
// half-open: at time e(r) the item has departed.
//
// Algorithms in this system are non-clairvoyant — they must never read
// Departure when deciding where to pack. The packing engine enforces this by
// handing policies a view without departure information; this package merely
// stores the ground truth the simulator needs to generate departure events
// and meter cost.
package item
