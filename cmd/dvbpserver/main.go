// Command dvbpserver serves MinUsageTime DVBP placement as a crash-tolerant
// multi-tenant HTTP service (DESIGN.md §12).
//
// Each tenant is an independent online packing run — its own Any Fit policy,
// dimension, seed, op log, WAL and snapshots under -data/<tenant>/ — driven
// through a JSON API:
//
//	POST /v1/tenants                    create a tenant
//	GET  /v1/tenants                    list tenants
//	GET  /v1/tenants/{name}             status: watermark, cost, open bins
//	DELETE /v1/tenants/{name}           drain and remove a tenant
//	POST /v1/tenants/{name}/place       place an item (acknowledged = durable)
//	POST /v1/tenants/{name}/advance     advance the tenant clock
//	GET  /v1/tenants/{name}/placements  the acknowledged placement stream
//	GET  /healthz, /readyz, /metrics    liveness, readiness, Prometheus/JSON
//
// Every acknowledged placement survives SIGKILL: the op log is fsynced before
// the engine steps and the WAL before the client hears back. On restart the
// store replays every manifest tenant and /readyz turns 200 only once all of
// them are byte-identically recovered.
//
// SIGTERM and SIGINT drain gracefully: /readyz flips to 503, mutating
// endpoints refuse with a Retry-After, queued batches finish and fsync, then
// the process exits 0.
//
// Examples:
//
//	dvbpserver -data /var/lib/dvbp
//	dvbpserver -addr 127.0.0.1:0 -data ./state -queue-depth 512 -deadline 2s
//	dvbpserver -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dvbp/internal/cli"
	"dvbp/internal/core"
	"dvbp/internal/metrics"
	"dvbp/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (use port 0 to pick a free port; the bound address is printed)")
		dataDir    = flag.String("data", "", "data directory holding the tenant manifest, op logs, WALs and snapshots (required)")
		queueDepth = flag.Int("queue-depth", 0, "per-tenant request queue bound; a full queue answers 429 (0 = default 256)")
		batchMax   = flag.Int("batch-max", 0, "max requests per group commit (0 = default 64)")
		deadline   = flag.Duration("deadline", 0, "per-request budget from enqueue; expired requests answer 503 (0 = none)")
		syncEvery  = flag.Int("sync-every", 0, "persist-layer fsync batching between the durability barriers (0 = default 64)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "budget for the graceful drain on SIGTERM/SIGINT")
		ioRetries  = flag.Int("io-retries", 0, "transient I/O failure retries at each durability barrier before the tenant degrades to read-only (0 = default 3, negative = none)")
		ioBackoff  = flag.Duration("io-backoff", 0, "sleep before the first I/O retry, doubling per attempt up to 100ms (0 = default 2ms)")
		list       = flag.Bool("list", false, "list accepted tenant policy spellings and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(core.PolicySpellings(), "\n"))
		return
	}
	if *dataDir == "" {
		fatal(errors.New("-data directory is required"))
	}

	reg := metrics.NewRegistry()
	store, err := server.OpenStore(*dataDir, server.Limits{
		QueueDepth:    *queueDepth,
		BatchMax:      *batchMax,
		Deadline:      *deadline,
		SyncEvery:     *syncEvery,
		RetryAttempts: *ioRetries,
		RetryBackoff:  *ioBackoff,
	}, reg)
	if err != nil {
		fatal(err)
	}
	srv := server.New(store, reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		store.Close()
		fatal(err)
	}
	// The bound address goes to stdout as the first line so wrappers (and the
	// restart-under-load harness) can drive -addr :0 servers.
	fmt.Printf("dvbpserver: listening on http://%s data=%s tenants=%d\n",
		ln.Addr(), *dataDir, len(store.List()))

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		store.Close()
		fatal(fmt.Errorf("serving: %w", err))
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "dvbpserver: %s: draining\n", sig)
	}

	// Graceful shutdown: stop admitting mutations, finish and fsync what is
	// queued, then close every tenant's session. A second signal or an
	// expired budget abandons the drain with the timeout exit code — the
	// on-disk state is still consistent (that is the whole durability story),
	// only unacknowledged work is dropped.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	done := make(chan struct{})
	go func() {
		httpSrv.Shutdown(ctx)
		store.Close()
		close(done)
	}()
	select {
	case <-done:
		fmt.Fprintln(os.Stderr, "dvbpserver: drained")
	case <-ctx.Done():
		fatal(fmt.Errorf("drain: %w", context.DeadlineExceeded))
	case sig := <-sigs:
		fatal(fmt.Errorf("drain interrupted by %s: %w", sig, context.Canceled))
	}
}

func fatal(err error) {
	cli.Fatal("dvbpserver", err)
}
