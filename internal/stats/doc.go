// Package stats provides the statistical accumulation used by the experiment
// harness: streaming mean/variance, min/max and percentiles.
//
// Accumulator computes running summaries with Welford's algorithm, which is
// numerically stable over the hundreds of thousands of ratio samples the
// paper grid produces; its zero value is ready to use. Summarize freezes an
// Accumulator into a Summary (N, Mean, StdDev, Min, Max) for reporting.
//
// Percentile operates on explicit samples when the full distribution is
// needed (e.g. the packing-quality studies), using linear interpolation
// between order statistics.
//
// Nothing in this package is concurrency-safe; the experiment harness
// accumulates per-worker and merges results on the coordinating goroutine.
package stats
