package workload

import (
	"math"
	"strings"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func TestDescribeHandCase(t *testing.T) {
	l := item.NewList(2)
	l.Add(0, 2, vector.Of(0.5, 0.1)) // dur 2, |s|=0.5
	l.Add(1, 5, vector.Of(0.2, 0.8)) // dur 4, |s|=0.8
	d, err := Describe(l)
	if err != nil {
		t.Fatal(err)
	}
	if d.Items != 2 || d.Dim != 2 {
		t.Errorf("shape %d/%d", d.Items, d.Dim)
	}
	if d.Mu != 2 {
		t.Errorf("Mu = %v", d.Mu)
	}
	if d.Span != 5 {
		t.Errorf("Span = %v", d.Span)
	}
	if math.Abs(d.Durations.Mean-3) > 1e-12 {
		t.Errorf("mean duration = %v", d.Durations.Mean)
	}
	if math.Abs(d.SizeMaxNorm.Mean-0.65) > 1e-12 {
		t.Errorf("mean size = %v", d.SizeMaxNorm.Mean)
	}
	if d.PeakConcurrency != 2 {
		t.Errorf("peak = %d", d.PeakConcurrency)
	}
	// Concurrency: 1 on [0,1), 2 on [1,2), 1 on [2,5): area = 1+2+3 = 6 over 5.
	if math.Abs(d.MeanConcurrency-6.0/5) > 1e-12 {
		t.Errorf("mean concurrency = %v", d.MeanConcurrency)
	}
	if math.Abs(d.ArrivalRate-2.0/5) > 1e-12 {
		t.Errorf("arrival rate = %v", d.ArrivalRate)
	}
	if d.DurationP50 != 3 || d.DurationP99 < d.DurationP90 {
		t.Errorf("percentiles: p50=%v p90=%v p99=%v", d.DurationP50, d.DurationP90, d.DurationP99)
	}
	out := d.String()
	for _, want := range []string{"items:", "concurrency:", "percentiles"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q", want)
		}
	}
}

func TestDescribeRejectsInvalid(t *testing.T) {
	if _, err := Describe(item.NewList(1)); err == nil {
		t.Error("empty list accepted")
	}
}

func TestDescribeOnGeneratedTraces(t *testing.T) {
	l, err := Uniform(PaperDefaults(2, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Describe(l)
	if err != nil {
		t.Fatal(err)
	}
	if d.PeakConcurrency < 1 || d.MeanConcurrency <= 0 {
		t.Errorf("concurrency implausible: %+v", d)
	}
	if d.Durations.Min < 1 || d.Durations.Max > 10 {
		t.Errorf("duration range wrong: %v..%v", d.Durations.Min, d.Durations.Max)
	}
	if d.Mu > 10 {
		t.Errorf("Mu = %v > configured 10", d.Mu)
	}
}
