package workload

import (
	"math"
	"testing"

	"dvbp/internal/vector"
)

func TestDatacenterGeneratesValidTrace(t *testing.T) {
	for name, cfg := range map[string]DatacenterConfig{
		"azure":  AzureLike(2),
		"google": GoogleLike(2),
	} {
		l, err := Datacenter(cfg, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: invalid trace: %v", name, err)
		}
		if l.Len() < 100 {
			t.Errorf("%s: only %d items over horizon %g·rate %g", name, l.Len(), cfg.Horizon, cfg.Rate)
		}
		for _, it := range l.Items {
			if d := it.Duration(); d < cfg.MinDuration-1e-9 || d > cfg.MaxDuration+1e-9 {
				t.Fatalf("%s: duration %v outside [%v,%v]", name, d, cfg.MinDuration, cfg.MaxDuration)
			}
		}
	}
}

func TestDatacenterDeterminism(t *testing.T) {
	cfg := AzureLike(3)
	a, _ := Datacenter(cfg, 5)
	b, _ := Datacenter(cfg, 5)
	if a.Len() != b.Len() {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Items {
		if a.Items[i].Arrival != b.Items[i].Arrival || !a.Items[i].Size.Equal(b.Items[i].Size, 0) {
			t.Fatalf("same seed, item %d differs", i)
		}
	}
	c, _ := Datacenter(cfg, 6)
	if c.Len() == a.Len() && c.Items[0].Arrival == a.Items[0].Arrival {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// TestDatacenterCorrelation checks the Corr knob does what it claims: the
// Azure-like preset (Corr 0.85) must produce a markedly higher cross-dimension
// sample correlation than the Google-like one (Corr 0.35).
func TestDatacenterCorrelation(t *testing.T) {
	corr := func(cfg DatacenterConfig) float64 {
		cfg.Horizon = 2000
		l, err := Datacenter(cfg, 17)
		if err != nil {
			t.Fatal(err)
		}
		var sx, sy, sxx, syy, sxy float64
		n := float64(l.Len())
		for _, it := range l.Items {
			x, y := it.Size[0], it.Size[1]
			sx += x
			sy += y
			sxx += x * x
			syy += y * y
			sxy += x * y
		}
		cov := sxy/n - sx/n*sy/n
		return cov / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	}
	// The family mix itself is anti-correlated (compute-heavy vs
	// memory-heavy shapes), so the marginal correlation sits well below the
	// within-family Corr knob; the presets must still be far apart.
	az, gg := corr(AzureLike(2)), corr(GoogleLike(2))
	if az <= gg+0.3 {
		t.Errorf("Azure-like correlation %.3f not clearly above Google-like %.3f", az, gg)
	}
	if az < 0.3 {
		t.Errorf("Azure-like correlation %.3f too weak for Corr=0.85", az)
	}
}

// TestDatacenterBursts checks the Markov modulation actually clusters
// arrivals: with bursts on, the variance of per-window arrival counts must
// exceed the Poisson-like variance of the same config with bursts disabled.
func TestDatacenterBursts(t *testing.T) {
	dispersion := func(factor float64) float64 {
		cfg := GoogleLike(2)
		cfg.Horizon = 2000
		cfg.BurstFactor = factor
		l, err := Datacenter(cfg, 23)
		if err != nil {
			t.Fatal(err)
		}
		const win = 5.0
		counts := make([]float64, int(cfg.Horizon/win))
		for _, it := range l.Items {
			counts[int(it.Arrival/win)]++
		}
		var mean, m2 float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			m2 += (c - mean) * (c - mean)
		}
		return m2 / float64(len(counts)) / mean // index of dispersion
	}
	bursty, flat := dispersion(6), dispersion(1)
	if bursty < 2*flat {
		t.Errorf("burst dispersion %.2f not clearly above non-burst %.2f", bursty, flat)
	}
}

func TestDatacenterValidation(t *testing.T) {
	base := AzureLike(2)
	mutate := func(f func(*DatacenterConfig)) DatacenterConfig {
		c := base
		c.Families = append([]InstanceFamily(nil), base.Families...)
		f(&c)
		return c
	}
	bad := map[string]DatacenterConfig{
		"nan horizon":    mutate(func(c *DatacenterConfig) { c.Horizon = math.NaN() }),
		"inf rate":       mutate(func(c *DatacenterConfig) { c.Rate = math.Inf(1) }),
		"alpha<=1":       mutate(func(c *DatacenterConfig) { c.SizeAlpha = 1 }),
		"zero burst on":  mutate(func(c *DatacenterConfig) { c.BurstOn = 0 }),
		"corr>1":         mutate(func(c *DatacenterConfig) { c.Corr = 1.5 }),
		"size mean low":  mutate(func(c *DatacenterConfig) { c.SizeMean = c.SizeMin / 2 }),
		"bad family dim": mutate(func(c *DatacenterConfig) { c.Families[0].Shape = vector.Of(0.5) }),
		"nan shape": mutate(func(c *DatacenterConfig) {
			c.Families[0].Shape = vector.Of(math.NaN(), 0.5)
		}),
		"zero duration": mutate(func(c *DatacenterConfig) { c.MinDuration = 0 }),
	}
	for name, c := range bad {
		if _, err := Datacenter(c, 1); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDatacenterNeverEmpty(t *testing.T) {
	cfg := AzureLike(2)
	cfg.Horizon = 1e-6
	l, err := Datacenter(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() == 0 {
		t.Error("degenerate config produced empty list")
	}
	if err := l.Validate(); err != nil {
		t.Errorf("fallback item invalid: %v", err)
	}
}

// TestCheckItemRejectsDegenerateDraws pins the degenerate-draw audit itself:
// NaN/Inf sizes, non-positive durations and negative arrivals must all error.
func TestCheckItemRejectsDegenerateDraws(t *testing.T) {
	ok := vector.Of(0.5, 0.5)
	cases := map[string]error{
		"good":         checkItem(0, 1, 2, ok),
		"nan arrival":  checkItem(0, math.NaN(), 2, ok),
		"neg arrival":  checkItem(0, -1, 2, ok),
		"zero dur":     checkItem(0, 1, 0, ok),
		"neg dur":      checkItem(0, 1, -3, ok),
		"inf dur":      checkItem(0, 1, math.Inf(1), ok),
		"nan size":     checkItem(0, 1, 2, vector.Of(math.NaN(), 0.5)),
		"inf size":     checkItem(0, 1, 2, vector.Of(math.Inf(1), 0.5)),
		"zero size":    checkItem(0, 1, 2, vector.Of(0, 0.5)),
		"oversize dim": checkItem(0, 1, 2, vector.Of(1.5, 0.5)),
	}
	for name, err := range cases {
		if name == "good" {
			if err != nil {
				t.Errorf("good item rejected: %v", err)
			}
		} else if err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSessionConfigRejectsNonFinite covers the sampler audit on the existing
// generators: non-finite parameters and demands must be rejected up front.
func TestSessionConfigRejectsNonFinite(t *testing.T) {
	good := SessionConfig{D: 2, Horizon: 10, Rate: 1, MeanDuration: 2, Alpha: 2, MinDuration: 1, MaxDuration: 5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	nanRate := good
	nanRate.Rate = math.NaN()
	if err := nanRate.Validate(); err == nil {
		t.Error("NaN rate accepted")
	}
	infMean := good
	infMean.MeanDuration = math.Inf(1)
	if err := infMean.Validate(); err == nil {
		t.Error("Inf mean duration accepted")
	}
	badDemand := good
	badDemand.Types = []InstanceType{{Name: "x", Demand: vector.Of(math.NaN(), 0.5), Jitter: 0.1, Weight: 1}}
	if err := badDemand.Validate(); err == nil {
		t.Error("NaN demand accepted")
	}
	badJitter := good
	badJitter.Types = []InstanceType{{Name: "x", Demand: vector.Of(0.5, 0.5), Jitter: math.Inf(1), Weight: 1}}
	if err := badJitter.Validate(); err == nil {
		t.Error("Inf jitter accepted")
	}
	if _, err := Diurnal(DiurnalConfig{Session: good, Period: math.NaN(), PeakFactor: 2}, 1); err == nil {
		t.Error("NaN diurnal period accepted")
	}
}
