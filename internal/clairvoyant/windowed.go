package clairvoyant

import (
	"math"

	"dvbp/internal/core"
)

// WindowedClassFit is the windowed refinement of DurationClassFit used by
// clairvoyant algorithms in the literature: items are classified by
// ⌈log₂(duration)⌉, and a class-c bin accepts new items only during the
// first W_c = 2^c·minDuration time units after it opens. Together with the
// class bound on item durations this caps every bin's total span below
// 2·W_c, so no bin is ever held open long by a straggler far shorter than
// the bin's own age — the alignment mechanism behind the clairvoyant
// O(√log μ)-competitive algorithms (which add further machinery on top).
//
// Requires core.WithClairvoyance().
type WindowedClassFit struct {
	// MinDuration scales the classes (0 -> 1.0).
	MinDuration float64

	classOfBin map[int]int
	openedAt   map[int]float64
}

// NewWindowedClassFit returns a WindowedClassFit policy.
func NewWindowedClassFit(minDuration float64) *WindowedClassFit {
	return &WindowedClassFit{MinDuration: minDuration}
}

// Name implements core.Policy.
func (*WindowedClassFit) Name() string { return "WindowedClassFit" }

// Reset implements core.Policy.
func (p *WindowedClassFit) Reset() {
	p.classOfBin = make(map[int]int)
	p.openedAt = make(map[int]float64)
}

func (p *WindowedClassFit) minD() float64 {
	if p.MinDuration > 0 {
		return p.MinDuration
	}
	return 1
}

func (p *WindowedClassFit) class(req core.Request) int {
	if !req.HasDeparture {
		panic("clairvoyant: WindowedClassFit needs core.WithClairvoyance()")
	}
	dur := req.Departure - req.Arrival
	if dur <= p.minD() {
		return 0
	}
	return int(math.Ceil(math.Log2(dur / p.minD())))
}

// window returns W_c for class c.
func (p *WindowedClassFit) window(c int) float64 {
	return math.Ldexp(p.minD(), c) // minD · 2^c
}

// Select implements core.Policy: first fit among same-class bins whose
// acceptance window is still open.
func (p *WindowedClassFit) Select(req core.Request, open []*core.Bin) *core.Bin {
	c := p.class(req)
	w := p.window(c)
	for _, b := range open {
		if p.classOfBin[b.ID] != c {
			continue
		}
		if req.Arrival-p.openedAt[b.ID] >= w {
			continue // window expired
		}
		if b.Fits(req.Size) {
			return b
		}
	}
	return nil
}

// OnPack implements core.Policy.
func (p *WindowedClassFit) OnPack(req core.Request, b *core.Bin, opened bool) {
	if opened {
		p.classOfBin[b.ID] = p.class(req)
		p.openedAt[b.ID] = req.Arrival
	}
}

// OnClose implements core.Policy.
func (p *WindowedClassFit) OnClose(b *core.Bin) {
	delete(p.classOfBin, b.ID)
	delete(p.openedAt, b.ID)
}
