// Command dvbpfigs regenerates the paper's illustrative figures as SVG from
// real simulation runs:
//
//	Figure 1 — Move To Front usage periods decomposed into leading and
//	           non-leading intervals (Section 3's decomposition);
//	Figure 2 — First Fit usage periods decomposed into P_i and Q_i
//	           (Section 4's decomposition);
//	Figure 3 — per-bin loads over time on the Theorem 5 adversarial
//	           instance (Section 6's illustration);
//	plus a packing Gantt chart of any instance.
//
//	dvbpfigs -out figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dvbp/internal/adversary"
	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/gantt"
	"dvbp/internal/workload"
)

func main() {
	var (
		outDir = flag.String("out", "figures", "output directory")
		seed   = flag.Int64("seed", 11, "workload seed for figures 1/2")
		n      = flag.Int("n", 24, "items in the random instance for figures 1/2")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	l, err := workload.Uniform(workload.UniformConfig{D: 1, N: *n, Mu: 8, T: 40, B: 10}, *seed)
	if err != nil {
		fatal(err)
	}

	// Figure 1: MTF leading/non-leading decomposition.
	mtf := core.NewMoveToFront()
	dec := analysis.NewMTFDecomposition(mtf)
	resMTF, err := core.Simulate(l, mtf, core.WithObserver(dec))
	if err != nil {
		fatal(err)
	}
	if err := dec.Verify(resMTF); err != nil {
		fatal(err)
	}
	write(*outDir, "figure1_mtf_decomposition.svg",
		gantt.MTFFigure1(l, resMTF, dec, gantt.Options{Title: "Figure 1: Move To Front leading/non-leading decomposition"}))

	// Figure 2: FF P/Q decomposition.
	resFF, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		fatal(err)
	}
	if err := analysis.VerifyFFDecomposition(resFF); err != nil {
		fatal(err)
	}
	write(*outDir, "figure2_ff_decomposition.svg",
		gantt.FFFigure2(l, resFF, gantt.Options{Title: "Figure 2: First Fit P/Q decomposition"}))

	// Figure 3: loads on the Theorem 5 instance at t=0.5 (R0 packed),
	// t just after R1 lands, and deep in the long phase.
	in, err := adversary.Theorem5(2, 3, 5)
	if err != nil {
		fatal(err)
	}
	resAdv, err := core.Simulate(in.List, core.NewFirstFit())
	if err != nil {
		fatal(err)
	}
	write(*outDir, "figure3_theorem5_loads.svg",
		gantt.LoadFigure3(in.List, resAdv, []float64{0.5, 0.9995, 3}, gantt.Options{
			Title: "Figure 3: bin loads on the Theorem 5 instance (d=2, k=3, mu=5)",
		}))

	// Bonus: packing Gantt of the random instance under MTF.
	write(*outDir, "packing_gantt.svg",
		gantt.Packing(l, resMTF, gantt.Options{Title: "Move To Front packing", ShowItemIDs: true}))

	fmt.Printf("wrote 4 figures to %s/\n", *outDir)
}

func write(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpfigs:", err)
	os.Exit(1)
}
