package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dvbp/internal/core"
	"dvbp/internal/item"
)

// Recovery reports how a run was brought back: which snapshot seeded the
// engine, how many WAL events were verified by replay, and every corruption
// that was detected and tolerated along the way.
type Recovery struct {
	// Session is the resumed session, positioned exactly where the durable
	// log ends; Step/Run continue the run, Finish seals it.
	Session *Session
	// Meta is the recovered run's identity.
	Meta RunMeta
	// SnapshotSeq is the event sequence of the snapshot the engine was
	// restored from (0 = no usable snapshot, replayed from scratch).
	SnapshotSeq int64
	// SnapshotPath is the file the engine was restored from ("" for scratch).
	SnapshotPath string
	// Replayed is the number of WAL events re-stepped and verified.
	Replayed int64
	// Corruptions lists every defect recovery tolerated: torn WAL tails,
	// out-of-sequence log records, and snapshots it had to skip. Recovery
	// only fails outright when nothing consistent remains.
	Corruptions []*CorruptionError
}

// Recover resumes the persisted run in cfg.Dir against the given instance.
// The opts must reproduce the original run's configuration (injector, retry,
// admission control, observers) — the engine is deterministic in them, and
// replay verification catches a mismatch as a divergence.
//
// Recovery: read the WAL, truncating at the first torn or out-of-sequence
// record; restore the newest snapshot that decodes cleanly, matches the run,
// and is not ahead of the durable log (older snapshots, then a fresh engine,
// are the fallbacks); re-step the engine through the logged suffix, checking
// every regenerated event against the log bit for bit; then reopen the WAL
// for appending, with any torn tail truncated away.
func Recover(l *item.List, cfg Config, opts ...core.Option) (*Recovery, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: no checkpoint directory configured")
	}
	if err := checkAuxKeys(cfg.Aux); err != nil {
		return nil, err
	}
	rec := &Recovery{}
	// Every corruption detected below carries the run's identity, so
	// multi-tenant recovery logs name the damaged tenant, not just a path.
	brand := func(ce *CorruptionError) *CorruptionError {
		if ce.Run == "" {
			ce.Run = cfg.Label
		}
		return ce
	}

	// 1. The write-ahead log: meta record + one record per event.
	walPath := filepath.Join(cfg.Dir, walFile)
	fd, err := ReadFile(walPath)
	if err != nil {
		var ce *CorruptionError
		if errors.As(err, &ce) {
			brand(ce)
		}
		return nil, fmt.Errorf("recovering %s: %w", cfg.Dir, err)
	}
	if fd.Kind != KindWAL {
		return nil, brand(&CorruptionError{Path: walPath, Offset: -1, Record: -1, Reason: fmt.Sprintf("expected a WAL file, found kind %d", fd.Kind)})
	}
	if fd.Torn != nil {
		rec.Corruptions = append(rec.Corruptions, brand(fd.Torn))
	}
	if len(fd.Records) == 0 {
		return nil, brand(&CorruptionError{Path: walPath, Offset: headerSize, Record: 0, Reason: "no run meta record survived"})
	}
	meta, err := decodeMeta(fd.Records[0])
	if err != nil {
		ce := err.(*CorruptionError)
		ce.Path, ce.Offset, ce.Record = walPath, fd.Offsets[0], 0
		return nil, brand(ce)
	}
	if err := meta.check(l); err != nil {
		if cfg.Label != "" {
			return nil, fmt.Errorf("run %q: %w", cfg.Label, err)
		}
		return nil, err
	}
	rec.Meta = meta

	// Decode the event suffix, truncating at the first undecodable or
	// out-of-sequence record (a valid checksum does not guarantee the run
	// that wrote it agreed with this one about numbering).
	events := make([]core.EventRecord, 0, len(fd.Records)-1)
	validSize := fd.ValidSize
	for i, payload := range fd.Records[1:] {
		ev, err := DecodeEventRecord(payload)
		if err == nil && ev.Seq != int64(len(events)+1) {
			err = corrupt("event out of sequence: record claims seq %d, expected %d", ev.Seq, len(events)+1)
		}
		if err != nil {
			ce := err.(*CorruptionError)
			ce.Path, ce.Offset, ce.Record = walPath, fd.Offsets[i+1], i+1
			rec.Corruptions = append(rec.Corruptions, brand(ce))
			validSize = fd.Offsets[i+1]
			break
		}
		events = append(events, ev)
	}

	// 2. The newest usable snapshot. Damaged or over-eager candidates (a
	// snapshot ahead of the durable log after a tail truncation) are skipped,
	// not fatal: an older snapshot or a from-scratch replay always remains.
	engine, err := restoreNewest(l, meta, cfg, opts, int64(len(events)), rec)
	if err != nil {
		return nil, err
	}

	// 3. Replay with verification: the deterministic engine must regenerate
	// the logged suffix exactly.
	for int64(len(events)) > engine.EventSeq() {
		want := events[engine.EventSeq()]
		got, ok, err := engine.Step()
		if err != nil {
			engine.Close()
			return nil, fmt.Errorf("persist: replay failed at event %d: %w", want.Seq, err)
		}
		if !ok {
			engine.Close()
			return nil, brand(&CorruptionError{Path: walPath, Offset: -1, Record: -1,
				Reason: fmt.Sprintf("log has %d events but the run ends after %d — wrong instance or options", len(events), engine.EventSeq())})
		}
		if got != want {
			engine.Close()
			return nil, brand(&CorruptionError{Path: walPath, Offset: -1, Record: -1,
				Reason: fmt.Sprintf("replay divergence at event %d: engine regenerated %+v, log holds %+v — corrupt log or mismatched run options", want.Seq, got, want)})
		}
		rec.Replayed++
	}

	// 4. Reopen the log for appending, truncated to its verified prefix.
	wal, err := openAppend(walPath, validSize, cfg.SyncEvery)
	if err != nil {
		engine.Close()
		return nil, err
	}
	rec.Session = &Session{cfg: cfg, meta: meta, engine: engine, wal: wal, logged: int64(len(events))}
	return rec, nil
}

// snapFile is one discovered snapshot file.
type snapFile struct {
	name string
	seq  int64
}

// listSnapshots finds snapshot files in dir, ascending by event sequence.
func listSnapshots(dir string) ([]snapFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var out []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil || seq < 0 {
			continue // foreign file that happens to match the shape
		}
		out = append(out, snapFile{name: name, seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// restoreNewest restores the engine from the newest usable snapshot at or
// below walEvents, falling back through older snapshots to a fresh engine.
// Skipped snapshots are recorded in rec.Corruptions.
func restoreNewest(l *item.List, meta RunMeta, cfg Config, opts []core.Option, walEvents int64, rec *Recovery) (*core.Engine, error) {
	snaps, err := listSnapshots(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		sf := snaps[i]
		path := filepath.Join(cfg.Dir, sf.name)
		skip := func(why string, cause error) {
			ce := &CorruptionError{Run: cfg.Label, Path: path, Offset: -1, Record: -1, Reason: why, Err: cause}
			rec.Corruptions = append(rec.Corruptions, ce)
		}
		if sf.seq > walEvents {
			skip(fmt.Sprintf("snapshot at event %d is ahead of the %d-event durable log", sf.seq, walEvents), nil)
			continue
		}
		engine, err := restoreSnapshotFile(path, l, meta, cfg, opts)
		if err != nil {
			skip("unusable snapshot", err)
			continue
		}
		if engine.EventSeq() != sf.seq {
			engine.Close()
			skip(fmt.Sprintf("snapshot content is at event %d but file name claims %d", engine.EventSeq(), sf.seq), nil)
			continue
		}
		rec.SnapshotSeq = sf.seq
		rec.SnapshotPath = path
		return engine, nil
	}
	// From scratch: a fresh engine replays the whole log.
	p, err := core.NewPolicy(meta.Policy, meta.Seed)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	engine, err := core.NewEngine(l, p, opts...)
	if err != nil {
		return nil, err
	}
	return engine, nil
}

// restoreSnapshotFile loads one snapshot file into a restored engine and
// applies its aux blobs.
func restoreSnapshotFile(path string, l *item.List, meta RunMeta, cfg Config, opts []core.Option) (*core.Engine, error) {
	fd, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	if fd.Kind != KindSnapshot {
		return nil, corrupt("expected a snapshot file, found kind %d", fd.Kind)
	}
	if fd.Torn != nil {
		// Unlike the WAL, a snapshot is all-or-nothing: a torn tail may have
		// taken aux records with it, and partial aux state breaks the
		// checkpoint-equals-replay contract.
		return nil, fd.Torn
	}
	if len(fd.Records) < 2 {
		return nil, corrupt("snapshot file has %d records, want meta + snapshot", len(fd.Records))
	}
	fileMeta, err := decodeMeta(fd.Records[0])
	if err != nil {
		return nil, err
	}
	if !fileMeta.equal(meta) {
		return nil, corrupt("snapshot belongs to a different run (meta %+v, want %+v)", fileMeta, meta)
	}
	snap, err := DecodeSnapshot(fd.Records[1])
	if err != nil {
		return nil, err
	}
	p, err := core.NewPolicy(meta.Policy, meta.Seed)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	engine, err := core.RestoreEngine(l, p, snap, opts...)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string][]byte)
	for _, payload := range fd.Records[2:] {
		key, blob, err := decodeAux(payload)
		if err != nil {
			engine.Close()
			return nil, err
		}
		if _, dup := byKey[key]; dup {
			engine.Close()
			return nil, corrupt("duplicate aux record %q", key)
		}
		byKey[key] = blob
	}
	for _, aux := range cfg.Aux {
		blob, ok := byKey[aux.AuxKey()]
		if !ok {
			engine.Close()
			return nil, corrupt("snapshot carries no aux record %q", aux.AuxKey())
		}
		if err := aux.UnmarshalAux(blob); err != nil {
			engine.Close()
			return nil, &CorruptionError{Path: path, Offset: -1, Record: -1, Reason: fmt.Sprintf("aux %q rejected its blob", aux.AuxKey()), Err: err}
		}
	}
	return engine, nil
}
