package core

import (
	"sync"
	"testing"

	"dvbp/internal/vector"
)

// fragBin builds an open bin with the given load for direct Select tests.
func fragBin(t *testing.T, id int, load ...float64) *Bin {
	t.Helper()
	b := newBin(id, len(load), 0)
	if err := b.pack(1000+id, vector.Of(load...)); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFragmentationPolicyDecisions pins each score formula with hand-worked
// placements: two bins, one residual-aligned with the item and one not.
func TestFragmentationPolicyDecisions(t *testing.T) {
	// Bin 0 residual (0.1, 0.7): CPU-starved. Bin 1 residual (0.5, 0.4):
	// balanced headroom. The item wants (0.4, 0.1) — CPU-heavy.
	open := []*Bin{fragBin(t, 0, 0.9, 0.3), fragBin(t, 1, 0.5, 0.6)}
	req := Request{ID: 1, Size: vector.Of(0.4, 0.1)}

	// DotProduct: bin0 aligns 0.1·0.4+0.7·0.1 = 0.11; bin1 0.5·0.4+0.4·0.1
	// = 0.24. Bin 1 wins (bin 0 cannot even hold it, but alignment agrees).
	if got := NewDotProduct().Select(req, open); got != open[1] {
		t.Errorf("DotProduct chose bin %v", got)
	}
	// L2Residual: post-residuals bin1 (0.1, 0.3) → 0.10; bin 0 infeasible.
	if got := NewL2Residual().Select(req, open); got != open[1] {
		t.Errorf("L2Residual chose bin %v", got)
	}
	if got := NewFARB().Select(req, open); got != open[1] {
		t.Errorf("FARB chose bin %v", got)
	}

	// Balance discrimination: item (0.2, 0.2) fits both. Bin 0 leaves
	// residual (−) no: bin0 residual (0.1,0.7) can't take 0.2 in dim 0.
	// Use fresh bins: bin 0 residual (0.3, 0.9), bin 1 residual (0.6, 0.6).
	open = []*Bin{fragBin(t, 0, 0.7, 0.1), fragBin(t, 1, 0.4, 0.4)}
	req = Request{ID: 2, Size: vector.Of(0.2, 0.2)}
	// FARB post-residuals: bin0 (0.1, 0.7) spread 0.6; bin1 (0.4, 0.4)
	// spread 0 — bin 1 despite being emptier.
	if got := NewFARB().Select(req, open); got != open[1] {
		t.Errorf("FARB ignored balance, chose bin %v", got)
	}
	// L2Residual: bin0 ‖(0.1,0.7)‖² = 0.50 > bin1 0.32 — bin 1.
	if got := NewL2Residual().Select(req, open); got != open[1] {
		t.Errorf("L2Residual chose bin %v", got)
	}
	// DotProduct: bin0 dot = 0.3·0.2+0.9·0.2 = 0.24 = bin1 0.6·0.2+0.6·0.2.
	// Exact tie — earliest-opened bin wins, the loadfit.go rule.
	if got := NewDotProduct().Select(req, open); got != open[0] {
		t.Errorf("DotProduct tie-break chose bin %v, want earliest", got)
	}
}

// TestAdaptiveHybridRegimes pins the regime switch: balanced+empty clusters
// score by DotProduct, imbalanced ones by FARB, uniformly full ones by Best
// Fit.
func TestAdaptiveHybridRegimes(t *testing.T) {
	ah := NewAdaptiveHybrid()
	cases := []struct {
		name string
		n    int
		tot  vector.Vector
		want int
	}{
		{"balanced low util", 10, vector.Of(3.0, 3.5), hybridModeDot},
		{"imbalanced", 10, vector.Of(2.0, 5.0), hybridModeFARB},
		{"uniformly full", 10, vector.Of(7.0, 7.5), hybridModeBest},
		{"imbalance beats fullness", 10, vector.Of(5.0, 9.0), hybridModeFARB},
		{"d=1 never FARB", 10, vector.Of(9.0), hybridModeBest},
		{"d=1 low util", 10, vector.Of(3.0), hybridModeDot},
	}
	for _, tc := range cases {
		if got := ah.mode(tc.n, tc.tot); got != tc.want {
			t.Errorf("%s: mode %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestFragmentationAwareRegistry checks the four policies round-trip through
// the registry under canonical names and aliases.
func TestFragmentationAwareRegistry(t *testing.T) {
	for _, name := range FragmentationAwareNames() {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	for alias, want := range map[string]string{
		"dot": "DotProduct", "DP": "DotProduct",
		"l2": "L2Residual", "farb": "FARB", "BALANCEFIT": "FARB",
		"hybrid": "AdaptiveHybrid", "ah": "AdaptiveHybrid",
	} {
		p, err := NewPolicy(alias, 1)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", alias, err)
		}
		if p.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", alias, p.Name(), want)
		}
	}
}

// TestConcurrentFragmentationPolicies runs distinct instances of every
// fragmentation-aware policy concurrently on one shared instance list (the
// make-stress race check for AdaptiveHybrid's Select-local scratch) and
// requires all runs of a policy to agree bit-for-bit.
func TestConcurrentFragmentationPolicies(t *testing.T) {
	l := randomList(99, 60, 2, 30)
	for _, name := range FragmentationAwareNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const runs = 8
			var wg sync.WaitGroup
			costs := make([]float64, runs)
			errs := make([]error, runs)
			for i := 0; i < runs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					p, err := NewPolicy(name, 1)
					if err != nil {
						errs[i] = err
						return
					}
					res, err := Simulate(l, p)
					if err != nil {
						errs[i] = err
						return
					}
					costs[i] = res.Cost
				}(i)
			}
			wg.Wait()
			for i := 0; i < runs; i++ {
				if errs[i] != nil {
					t.Fatalf("run %d: %v", i, errs[i])
				}
				if costs[i] != costs[0] {
					t.Fatalf("run %d cost %v != run 0 cost %v", i, costs[i], costs[0])
				}
			}
		})
	}
}
