package lowerbound

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

func TestIntegralBoundSingleItem(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 5, v(0.3))
	// One item active on [0,5): ⌈0.3⌉=1 bin the whole time.
	if got := IntegralBound(l); math.Abs(got-5) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 5", got)
	}
}

func TestIntegralBoundStacksLoad(t *testing.T) {
	l := item.NewList(1)
	// Three items of size 0.8 active together on [0,1): need ⌈2.4⌉=3 bins.
	for i := 0; i < 3; i++ {
		l.Add(0, 1, v(0.8))
	}
	if got := IntegralBound(l); math.Abs(got-3) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 3", got)
	}
}

func TestIntegralBoundPiecewise(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 2, v(0.8)) // [0,2): alone -> 1 bin
	l.Add(1, 3, v(0.8)) // [1,2): 1.6 -> 2 bins; [2,3): alone -> 1 bin
	// Segments: [0,1): 1, [1,2): 2, [2,3): 1 => total 4.
	if got := IntegralBound(l); math.Abs(got-4) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 4", got)
	}
}

func TestIntegralBoundGap(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.5))
	l.Add(3, 4, v(0.5))
	// Idle [1,3) contributes nothing.
	if got := IntegralBound(l); math.Abs(got-2) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 2", got)
	}
}

func TestIntegralBoundMultiDimUsesMaxDimension(t *testing.T) {
	l := item.NewList(2)
	// Dimension 1 carries the load: two items with 0.9 in dim 1.
	l.Add(0, 1, v(0.1, 0.9))
	l.Add(0, 1, v(0.1, 0.9))
	// ‖(0.2, 1.8)‖∞ = 1.8 -> 2 bins for [0,1).
	if got := IntegralBound(l); math.Abs(got-2) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 2", got)
	}
}

func TestIntegralBoundDeparturesBeforeArrivals(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.9))
	l.Add(1, 2, v(0.9)) // arrives exactly when first departs
	// Load never exceeds 0.9: 1 bin on [0,2).
	if got := IntegralBound(l); math.Abs(got-2) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 2", got)
	}
}

func TestIntegralBoundCeilingRounding(t *testing.T) {
	l := item.NewList(1)
	// Ten items of 0.2: float sum may be 2.0000000000000004; must need 2, not 3.
	for i := 0; i < 10; i++ {
		l.Add(0, 1, v(0.2))
	}
	if got := IntegralBound(l); math.Abs(got-2) > 1e-9 {
		t.Errorf("IntegralBound = %v, want 2", got)
	}
}

func TestUtilizationBound(t *testing.T) {
	l := item.NewList(2)
	l.Add(0, 2, v(0.5, 0.25)) // ‖·‖∞=0.5, ℓ=2 -> 1.0
	l.Add(0, 4, v(0.1, 0.3))  // 0.3·4 = 1.2
	want := (1.0 + 1.2) / 2
	if got := UtilizationBound(l); math.Abs(got-want) > 1e-12 {
		t.Errorf("UtilizationBound = %v, want %v", got, want)
	}
}

func TestBoundsBestPicksLargest(t *testing.T) {
	b := Bounds{Integral: 3, Utilization: 5, Span: 1}
	if b.Best() != 5 {
		t.Errorf("Best = %v, want 5", b.Best())
	}
}

func TestBinDemandAt(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 2, v(0.8))
	l.Add(1, 3, v(0.8))
	cases := []struct {
		t    float64
		want int
	}{
		{-1, 0}, {0, 1}, {0.5, 1}, {1, 2}, {1.5, 2}, {2, 1}, {2.5, 1}, {3, 0},
	}
	for _, c := range cases {
		if got := BinDemandAt(l, c.t); got != c.want {
			t.Errorf("BinDemandAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func randomList(seed int64, n, d int, maxDur float64) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 100)
		dur := 1 + math.Floor(r.Float64()*maxDur)
		size := vector.New(d)
		for j := range size {
			size[j] = (1 + math.Floor(r.Float64()*100)) / 100
		}
		l.Add(a, a+dur, size)
	}
	return l
}

// Property (Lemma 1): Integral dominates Utilization and Span.
func TestIntegralIsTightest(t *testing.T) {
	f := func(seedRaw uint16, dRaw, nRaw uint8) bool {
		d := int(dRaw%4) + 1
		n := int(nRaw%50) + 1
		l := randomList(int64(seedRaw), n, d, 20)
		b := Compute(l)
		const slack = 1e-9
		return b.Integral >= b.Utilization-slack && b.Integral >= b.Span-slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every Any Fit algorithm's cost is >= every lower bound
// (cost ≥ OPT ≥ LB).
func TestAlgorithmCostDominatesBounds(t *testing.T) {
	f := func(seedRaw uint16, dRaw uint8) bool {
		d := int(dRaw%3) + 1
		l := randomList(int64(seedRaw), 80, d, 15)
		b := Compute(l)
		for _, p := range core.StandardPolicies(int64(seedRaw)) {
			res, err := core.Simulate(l, p)
			if err != nil {
				return false
			}
			if res.Cost < b.Best()-1e-6 {
				t.Logf("%s: cost %v < LB %v (seed %d)", p.Name(), res.Cost, b.Best(), seedRaw)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: IntegralBound equals a brute-force Riemann-style evaluation on
// integral-grid instances.
func TestIntegralBoundAgainstBruteForce(t *testing.T) {
	f := func(seedRaw uint16) bool {
		r := rand.New(rand.NewSource(int64(seedRaw)))
		l := item.NewList(2)
		horizon := 30
		for i := 0; i < 25; i++ {
			a := float64(r.Intn(horizon - 1))
			dur := float64(1 + r.Intn(5))
			l.Add(a, a+dur, v(float64(1+r.Intn(10))/10, float64(1+r.Intn(10))/10))
		}
		// All breakpoints are integers, so evaluating at t+0.5 per unit cell
		// is exact.
		brute := 0.0
		for tt := 0; tt < horizon+10; tt++ {
			brute += float64(BinDemandAt(l, float64(tt)+0.5))
		}
		return math.Abs(brute-IntegralBound(l)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIntegralBound(b *testing.B) {
	l := randomList(1, 1000, 2, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = IntegralBound(l)
	}
}
