package analysis

import (
	"math"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

func TestQualitySingleFullBin(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(1.0))
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quality(l, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.AvgUtilization-1) > 1e-9 {
		t.Errorf("AvgUtilization = %v, want 1", q.AvgUtilization)
	}
	if q.StragglerFraction != 0 {
		t.Errorf("StragglerFraction = %v, want 0", q.StragglerFraction)
	}
	if math.Abs(q.BinTime-10) > 1e-9 {
		t.Errorf("BinTime = %v, want 10", q.BinTime)
	}
}

func TestQualityStragglerDetection(t *testing.T) {
	// Bin holds 0.9 load on [0,1) then a 0.1 leftover on [1,10): 9 of 10
	// time units are straggler time (0.1 < 0.9/2).
	l := item.NewList(1)
	l.Add(0, 1, vector.Of(0.9))
	l.Add(0, 10, vector.Of(0.1))
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quality(l, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.StragglerFraction-0.9) > 1e-9 {
		t.Errorf("StragglerFraction = %v, want 0.9", q.StragglerFraction)
	}
	wantUtil := (1*1.0 + 9*0.1) / 10
	if math.Abs(q.AvgUtilization-wantUtil) > 1e-9 {
		t.Errorf("AvgUtilization = %v, want %v", q.AvgUtilization, wantUtil)
	}
}

func TestQualityMultiDimVolume(t *testing.T) {
	// Load (0.8, 0.2): L∞ = 0.8, volume = 0.5.
	l := item.NewList(2)
	l.Add(0, 4, vector.Of(0.8, 0.2))
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	q, err := Quality(l, res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.AvgUtilization-0.8) > 1e-9 {
		t.Errorf("AvgUtilization = %v", q.AvgUtilization)
	}
	if math.Abs(q.AvgVolumeUtilization-0.5) > 1e-9 {
		t.Errorf("AvgVolumeUtilization = %v", q.AvgVolumeUtilization)
	}
}

func TestQualityBinTimeEqualsCost(t *testing.T) {
	l := randomList(1, 200, 2, 20)
	for _, p := range core.StandardPolicies(1) {
		res, err := core.Simulate(l, p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Quality(l, res)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(q.BinTime-res.Cost) > 1e-6 {
			t.Errorf("%s: BinTime %v != cost %v", p.Name(), q.BinTime, res.Cost)
		}
		if q.AvgUtilization <= 0 || q.AvgUtilization > 1+1e-9 {
			t.Errorf("%s: utilisation %v out of (0,1]", p.Name(), q.AvgUtilization)
		}
		if q.StragglerFraction < 0 || q.StragglerFraction > 1 {
			t.Errorf("%s: straggler %v out of [0,1]", p.Name(), q.StragglerFraction)
		}
		if q.AvgVolumeUtilization > q.AvgUtilization+1e-9 {
			t.Errorf("%s: volume util %v above L∞ util %v", p.Name(), q.AvgVolumeUtilization, q.AvgUtilization)
		}
	}
}

// TestQualityReproducesSection7Explanation: on the paper's workload,
// Worst Fit packs loosest, Best Fit packs at least as tight as Worst Fit by a
// clear margin, and Next Fit has no more straggler time than Worst Fit
// (it abandons bins instead of topping them up).
func TestQualityReproducesSection7Explanation(t *testing.T) {
	var bf, wf, nf, mtf QualityMetrics
	trials := 10
	for seed := int64(0); seed < int64(trials); seed++ {
		l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 500, Mu: 50, T: 500, B: 100}, seed)
		if err != nil {
			t.Fatal(err)
		}
		add := func(dst *QualityMetrics, p core.Policy) {
			res, err := core.Simulate(l, p)
			if err != nil {
				t.Fatal(err)
			}
			q, err := Quality(l, res)
			if err != nil {
				t.Fatal(err)
			}
			dst.AvgUtilization += q.AvgUtilization / float64(trials)
			dst.StragglerFraction += q.StragglerFraction / float64(trials)
		}
		add(&bf, core.NewBestFit(core.MaxLoad()))
		add(&wf, core.NewWorstFit(core.MaxLoad()))
		add(&nf, core.NewNextFit())
		add(&mtf, core.NewMoveToFront())
	}
	if bf.AvgUtilization <= wf.AvgUtilization {
		t.Errorf("BestFit util %v should exceed WorstFit %v (packing)", bf.AvgUtilization, wf.AvgUtilization)
	}
	if mtf.AvgUtilization <= wf.AvgUtilization {
		t.Errorf("MTF util %v should exceed WorstFit %v", mtf.AvgUtilization, wf.AvgUtilization)
	}
	t.Logf("util: BF=%.4f MTF=%.4f NF=%.4f WF=%.4f", bf.AvgUtilization, mtf.AvgUtilization, nf.AvgUtilization, wf.AvgUtilization)
	t.Logf("straggler: BF=%.4f MTF=%.4f NF=%.4f WF=%.4f", bf.StragglerFraction, mtf.StragglerFraction, nf.StragglerFraction, wf.StragglerFraction)
}

func TestQualityErrors(t *testing.T) {
	l := randomList(1, 10, 1, 5)
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	other := randomList(2, 20, 1, 5)
	if _, err := Quality(other, res); err == nil {
		t.Error("mismatched list accepted")
	}
	if res.String() == "" {
		t.Error("sanity")
	}
}
