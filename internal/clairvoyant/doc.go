// Package clairvoyant implements clairvoyant DVBP policies — algorithms that
// know each item's departure time on arrival. The paper studies the
// non-clairvoyant setting and lists the clairvoyant variant as future work
// (Section 8); these policies make that extension concrete and are compared
// against the Any Fit family in the ablation experiments.
//
// Both policies implement core.Policy and REQUIRE the engine to run with
// core.WithClairvoyance(); Select panics otherwise, since running a
// clairvoyant policy without departures is a programming error, not an input
// condition.
//
//   - DurationClassFit packs items into bins dedicated to their duration
//     class (⌈log₂ duration⌉, relative to a configured minimum duration):
//     items that die together live together, the alignment mechanism behind
//     the O(√log μ) clairvoyant algorithms of Azar–Vainstein.
//   - AlignedBestFit packs an item into the fitting bin whose projected
//     closing time is nearest the item's own departure (ties: most loaded),
//     trading a little packing efficiency for alignment.
package clairvoyant
