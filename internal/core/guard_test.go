package core

import (
	"strings"
	"sync"
	"testing"

	"dvbp/internal/item"
)

// blockingPolicy parks inside Select until released, so a test can hold one
// policy instance mid-simulation while probing the engine from outside.
type blockingPolicy struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (p *blockingPolicy) Name() string { return "Blocking" }
func (p *blockingPolicy) Reset()       {}
func (p *blockingPolicy) Select(req Request, open []*Bin) *Bin {
	p.once.Do(func() {
		close(p.entered)
		<-p.release
	})
	return nil
}
func (p *blockingPolicy) OnPack(req Request, b *Bin, opened bool) {}
func (p *blockingPolicy) OnClose(b *Bin)                          {}

func guardList(t *testing.T) *item.List {
	t.Helper()
	l := item.NewList(1)
	l.Add(0, 1, []float64{0.5})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSimulateRejectsConcurrentPolicyReuse(t *testing.T) {
	l := guardList(t)
	p := &blockingPolicy{entered: make(chan struct{}), release: make(chan struct{})}

	done := make(chan error, 1)
	go func() {
		_, err := Simulate(l, p)
		done <- err
	}()
	<-p.entered // first run is now mid-simulation, holding p

	if _, err := Simulate(l, p); err == nil || !strings.Contains(err.Error(), "concurrent simulation") {
		t.Errorf("concurrent reuse: err = %v, want concurrent-simulation rejection", err)
	}

	close(p.release)
	if err := <-done; err != nil {
		t.Fatalf("first simulation failed: %v", err)
	}

	// After the first run finishes the instance is free again: sequential
	// reuse must keep working (Simulate resets the policy on entry).
	if _, err := Simulate(l, p); err != nil {
		t.Errorf("sequential reuse after release: %v", err)
	}
}

func TestSimulateAllowsSharedStatelessPolicy(t *testing.T) {
	// Zero-sized policies (First Fit, Last Fit) have no mutable state, and Go
	// aliases all their allocations anyway — sharing one across concurrent
	// runs is safe and must not trip the guard.
	l := guardList(t)
	p := NewFirstFit()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Simulate(l, p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
}

func TestSimulateAllowsDistinctPolicyInstancesConcurrently(t *testing.T) {
	l := guardList(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Simulate(l, NewFirstFit())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
}
