package experiments

import (
	"math"
	"strings"
	"testing"
)

// smallFig4 is a scaled-down Figure 4 grid that keeps tests fast while
// preserving the qualitative ordering.
func smallFig4() Figure4Config {
	return Figure4Config{
		Ds:        []int{1, 2},
		Mus:       []int{1, 10, 100},
		Instances: 30,
		N:         300,
		T:         300,
		B:         100,
		Policies:  []string{"MoveToFront", "FirstFit", "BestFit", "NextFit", "WorstFit"},
		Seed:      1,
	}
}

func TestFigure4ConfigValidate(t *testing.T) {
	if err := DefaultFigure4().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := smallFig4()
	bad.Policies = []string{"Nope"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	bad2 := smallFig4()
	bad2.Instances = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero instances accepted")
	}
	bad3 := smallFig4()
	bad3.Ds = nil
	if err := bad3.Validate(); err == nil {
		t.Error("empty Ds accepted")
	}
}

func TestRunFigure4ShapeAndSanity(t *testing.T) {
	cfg := smallFig4()
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(cfg.Ds)*len(cfg.Mus)*len(cfg.Policies) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for cell, s := range res.Cells {
		if s.N != cfg.Instances {
			t.Errorf("%+v: n = %d, want %d", cell, s.N, cfg.Instances)
		}
		if s.Mean < 1-1e-9 {
			t.Errorf("%+v: mean ratio %v below 1 (cost below lower bound?)", cell, s.Mean)
		}
		if s.Mean > 50 {
			t.Errorf("%+v: mean ratio %v implausibly high", cell, s.Mean)
		}
		if s.StdDev < 0 {
			t.Errorf("%+v: negative stddev", cell)
		}
	}
}

// TestFigure4QualitativeShape reproduces the paper's Section 7 findings on a
// reduced grid:
//   - Move To Front has the best (or statistically tied best) mean ratio;
//   - Worst Fit is the worst;
//   - Next Fit degrades as μ grows.
func TestFigure4QualitativeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := smallFig4()
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range cfg.Ds {
		for _, mu := range []int{10, 100} {
			mtf := res.Cells[Cell{D: d, Mu: mu, Policy: "MoveToFront"}]
			wf := res.Cells[Cell{D: d, Mu: mu, Policy: "WorstFit"}]
			nf := res.Cells[Cell{D: d, Mu: mu, Policy: "NextFit"}]
			ff := res.Cells[Cell{D: d, Mu: mu, Policy: "FirstFit"}]
			if mtf.Mean > ff.Mean+0.02 {
				t.Errorf("d=%d mu=%d: MTF (%.4f) should be <= FF (%.4f) + eps", d, mu, mtf.Mean, ff.Mean)
			}
			if wf.Mean < ff.Mean {
				t.Errorf("d=%d mu=%d: WorstFit (%.4f) should be worst, FF is %.4f", d, mu, wf.Mean, ff.Mean)
			}
			if nf.Mean < mtf.Mean {
				t.Errorf("d=%d mu=%d: NextFit (%.4f) should trail MTF (%.4f)", d, mu, nf.Mean, mtf.Mean)
			}
		}
		// Next Fit degrades with mu.
		nf1 := res.Cells[Cell{D: d, Mu: 1, Policy: "NextFit"}]
		nf100 := res.Cells[Cell{D: d, Mu: 100, Policy: "NextFit"}]
		if nf100.Mean <= nf1.Mean {
			t.Errorf("d=%d: NextFit should degrade with mu: mu=1 %.4f, mu=100 %.4f", d, nf1.Mean, nf100.Mean)
		}
	}
}

func TestFigure4Determinism(t *testing.T) {
	cfg := smallFig4()
	cfg.Instances = 10
	cfg.Mus = []int{5}
	cfg.Ds = []int{2}
	a, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	b, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cell, sa := range a.Cells {
		sb := b.Cells[cell]
		if math.Abs(sa.Mean-sb.Mean) > 1e-12 {
			t.Errorf("%+v: mean differs across worker counts: %v vs %v", cell, sa.Mean, sb.Mean)
		}
	}
}

func TestFigure4TableAndChart(t *testing.T) {
	cfg := smallFig4()
	cfg.Instances = 5
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table(1).Render()
	if !strings.Contains(tbl, "MoveToFront") || !strings.Contains(tbl, "±") {
		t.Errorf("table missing content:\n%s", tbl)
	}
	svg := res.Chart(2).SVG()
	if !strings.Contains(svg, "polyline") {
		t.Error("chart missing series")
	}
	rank := res.Ranking(1, 10)
	if len(rank) != len(cfg.Policies) {
		t.Errorf("ranking size %d", len(rank))
	}
}

func TestTable1Bounds(t *testing.T) {
	if got := Table1UpperBound("MoveToFront", 10, 2); got != (2*10+1)*2+1 {
		t.Errorf("MTF UB = %v", got)
	}
	if got := Table1UpperBound("FirstFit", 10, 2); got != (10+2)*2+1 {
		t.Errorf("FF UB = %v", got)
	}
	if got := Table1UpperBound("NextFit", 10, 2); got != 2*10*2+1 {
		t.Errorf("NF UB = %v", got)
	}
	if !math.IsInf(Table1UpperBound("BestFit", 10, 2), 1) {
		t.Error("BF UB should be inf")
	}
	if got := Table1LowerBound("MoveToFront", 10, 1); got != 20 {
		t.Errorf("MTF LB d=1 = %v, want 2mu", got)
	}
	if got := Table1LowerBound("MoveToFront", 10, 3); got != 33 {
		t.Errorf("MTF LB d=3 = %v, want (mu+1)d", got)
	}
	if got := Table1LowerBound("NextFit", 10, 2); got != 40 {
		t.Errorf("NF LB = %v", got)
	}
	if got := Table1LowerBound("FirstFit", 10, 2); got != 22 {
		t.Errorf("FF LB = %v", got)
	}
	if !math.IsInf(Table1LowerBound("BestFit", 10, 2), 1) {
		t.Error("BF LB should be inf (unbounded)")
	}
}

func TestRunTable1(t *testing.T) {
	cfg := Table1Config{D: 2, Mu: 5, Params: []int{4, 16}, Seed: 1}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*6 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if !r.Consistent() {
			t.Errorf("inconsistent row: %+v", r)
		}
		if r.MeasuredRatio <= 0 {
			t.Errorf("non-positive ratio: %+v", r)
		}
	}
	// Ratios must grow with the parameter for the Theorem 5 + FirstFit rows.
	var t5ff []AdversarialRow
	for _, r := range rows {
		if strings.HasPrefix(r.Construction, "Theorem5") && r.Policy == "FirstFit" {
			t5ff = append(t5ff, r)
		}
	}
	if len(t5ff) != 2 || t5ff[1].MeasuredRatio <= t5ff[0].MeasuredRatio {
		t.Errorf("Theorem5/FF ratios not increasing: %+v", t5ff)
	}
	tbl := AdversarialTable(rows).Render()
	if !strings.Contains(tbl, "Theorem5") || !strings.Contains(tbl, "true") {
		t.Errorf("table missing content:\n%s", tbl)
	}
}

func TestRunTable1Validation(t *testing.T) {
	if _, err := RunTable1(Table1Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestRunUpperBoundCheck(t *testing.T) {
	cfg := UpperBoundCheckConfig{D: 2, N: 80, Mu: 5, T: 80, B: 100, Instances: 10, Seed: 1}
	viol, checked, err := RunUpperBoundCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if checked != 30 {
		t.Errorf("checked = %d, want 30", checked)
	}
	if len(viol) != 0 {
		t.Errorf("found %d upper-bound violations: %+v", len(viol), viol)
	}
}

func TestRunBestFitMeasureAblation(t *testing.T) {
	cfg := AblationConfig{D: 3, N: 200, Mu: 20, T: 200, B: 100, Instances: 10, Seed: 1}
	m, err := RunBestFitMeasureAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("measures = %d", len(m))
	}
	for name, s := range m {
		if s.Mean < 1 {
			t.Errorf("%s: ratio %v < 1", name, s.Mean)
		}
	}
	tbl := SummaryTable("bf", []string{"BestFit", "BestFit-L1", "BestFit-Lp2"}, m).Render()
	if !strings.Contains(tbl, "BestFit-L1") {
		t.Error("table missing row")
	}
}

func TestRunClairvoyanceAblation(t *testing.T) {
	cfg := AblationConfig{D: 2, N: 200, Mu: 50, T: 200, B: 100, Instances: 10, Seed: 1}
	m, err := RunClairvoyanceAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 5 {
		t.Fatalf("policies = %d", len(m))
	}
	for name, s := range m {
		if s.Mean < 1 {
			t.Errorf("%s: ratio %v < 1", name, s.Mean)
		}
	}
}

func TestRunBillingAblation(t *testing.T) {
	cfg := AblationConfig{D: 2, N: 200, Mu: 10, T: 200, B: 100, Instances: 5, Seed: 1}
	rows, err := RunBillingAblation(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BilledRatio < 1-1e-9 {
			t.Errorf("%s: billed ratio %v < 1 (rounding up can't shrink cost)", r.Policy, r.BilledRatio)
		}
	}
	if _, err := RunBillingAblation(cfg, 0); err == nil {
		t.Error("zero quantum accepted")
	}
	tbl := BillingTable(rows, 5).Render()
	if !strings.Contains(tbl, "billed/usage") {
		t.Error("billing table missing header")
	}
}

func TestRunTrueRatio(t *testing.T) {
	cfg := TrueRatioConfig{D: 2, N: 25, Mu: 4, T: 80, B: 100, Instances: 20, Seed: 1, MaxActive: 14}
	res, err := RunTrueRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.LBTightness.Mean < 1-1e-9 {
		t.Errorf("OPT/LB tightness %v < 1 (LB would exceed OPT)", res.LBTightness.Mean)
	}
	for _, row := range res.Rows {
		if row.TrueRatio.Mean < 1-1e-9 {
			t.Errorf("%s: true ratio %v < 1", row.Policy, row.TrueRatio.Mean)
		}
		// cost/OPT <= cost/LB since OPT >= LB.
		if row.TrueRatio.Mean > row.LBRatio.Mean+1e-9 {
			t.Errorf("%s: true ratio %v exceeds LB ratio %v", row.Policy, row.TrueRatio.Mean, row.LBRatio.Mean)
		}
	}
	tbl := res.Table().Render()
	if !strings.Contains(tbl, "cost/OPT") {
		t.Error("table missing header")
	}
}

func TestRunTrueRatioRejectsBadConfig(t *testing.T) {
	if _, err := RunTrueRatio(TrueRatioConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	// All instances skipped -> explicit error.
	cfg := TrueRatioConfig{D: 1, N: 200, Mu: 50, T: 60, B: 100, Instances: 3, Seed: 1, MaxActive: 5}
	if _, err := RunTrueRatio(cfg); err == nil {
		t.Error("all-skipped run should error")
	}
}

func TestRunQuality(t *testing.T) {
	cfg := AblationConfig{D: 2, N: 200, Mu: 20, T: 200, B: 100, Instances: 5, Seed: 1}
	rows, err := RunQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]QualityRow{}
	for _, r := range rows {
		if r.Utilization.Mean <= 0 || r.Utilization.Mean > 1 {
			t.Errorf("%s: utilisation %v out of (0,1]", r.Policy, r.Utilization.Mean)
		}
		if r.Straggler.Mean < 0 || r.Straggler.Mean > 1 {
			t.Errorf("%s: straggler %v out of [0,1]", r.Policy, r.Straggler.Mean)
		}
		byName[r.Policy] = r
	}
	// Section 7: Next Fit's packing (utilisation) is the weakest of the
	// bounded-CR trio because it keeps only one bin open.
	if byName["NextFit"].Utilization.Mean >= byName["MoveToFront"].Utilization.Mean {
		t.Errorf("NextFit utilisation %v should trail MoveToFront %v",
			byName["NextFit"].Utilization.Mean, byName["MoveToFront"].Utilization.Mean)
	}
	tbl := QualityTable(rows).Render()
	if !strings.Contains(tbl, "straggler") {
		t.Error("table missing header")
	}
}
