package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/persist"
	"dvbp/internal/vector"
	"dvbp/internal/vfs"
)

// TenantConfig is one tenant's identity: the part that goes into the
// manifest and must survive restarts.
type TenantConfig struct {
	// Name identifies the tenant; it is also its directory name under the
	// store root.
	Name string `json:"name"`
	// Dim is the resource dimension of the tenant's items.
	Dim int `json:"dim"`
	// Policy is the Any Fit policy, in any spelling core.NewPolicy accepts.
	Policy string `json:"policy"`
	// Seed seeds the policy (RandomFit; ignored by the others).
	Seed int64 `json:"seed"`
	// CheckpointEvery takes an automatic snapshot after this many engine
	// events; 0 disables snapshots (recovery replays the whole WAL).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
}

// Limits bounds every tenant's admission front end. The zero value selects
// the defaults below.
type Limits struct {
	// QueueDepth caps the per-tenant request queue; a full queue answers 429.
	QueueDepth int
	// BatchMax caps how many queued requests one group commit covers.
	BatchMax int
	// Deadline is the per-request time budget measured from enqueue; a
	// request still queued past it answers 503. 0 means no deadline.
	Deadline time.Duration
	// SyncEvery batches persist-layer fsyncs between the explicit barriers.
	SyncEvery int
	// RetryAttempts is how many times a transient I/O failure (EIO) is
	// retried at a commit barrier before the tenant degrades; disk-full
	// errors skip the retries (waiting microseconds for space is pointless).
	// Negative disables retrying.
	RetryAttempts int
	// RetryBackoff is the sleep before the first retry; it doubles per
	// attempt, capped at 100ms.
	RetryBackoff time.Duration
	// FS is the filesystem seam the store and every tenant run their file
	// operations through; nil means the real filesystem. Tests inject
	// vfs.Mem or a vfs.Injector here.
	FS vfs.FS
}

func (l Limits) withDefaults() Limits {
	if l.QueueDepth <= 0 {
		l.QueueDepth = 256
	}
	if l.BatchMax <= 0 {
		l.BatchMax = 64
	}
	if l.SyncEvery <= 0 {
		l.SyncEvery = 64
	}
	if l.RetryAttempts == 0 {
		l.RetryAttempts = 3
	}
	if l.RetryBackoff <= 0 {
		l.RetryBackoff = 2 * time.Millisecond
	}
	return l
}

// maxRetryBackoff caps the exponential retry sleep.
const maxRetryBackoff = 100 * time.Millisecond

// apiError is an error with an HTTP status, rendered as the structured JSON
// error body.
type apiError struct {
	Status int
	Code   string
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{Status: status, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Sentinel API errors the front end maps to backpressure statuses.
var (
	errBusy     = &apiError{Status: http.StatusTooManyRequests, Code: "queue_full", Msg: "tenant queue is full, retry later"}
	errDraining = &apiError{Status: http.StatusServiceUnavailable, Code: "draining", Msg: "server is draining, not accepting work"}
	errDeadline = &apiError{Status: http.StatusServiceUnavailable, Code: "deadline", Msg: "request deadline expired before processing"}
)

type reqKind uint8

const (
	reqPlace reqKind = iota
	reqAdvance
	reqStats
	reqPlacements
)

// request is one unit of work on a tenant's queue.
type request struct {
	kind     reqKind
	deadline time.Time // zero = none

	// place
	arrival     float64
	arrivalSet  bool
	departure   float64
	duration    float64
	durationSet bool
	size        vector.Vector

	// advance
	to float64

	// placements
	from int

	reply chan response
}

type response struct {
	err        *apiError
	place      *PlaceResult
	advance    *AdvanceResult
	stats      *TenantStatus
	placements *PlacementsResult
}

// PlaceResult acknowledges one placement. By the time a client reads it, the
// item's admission is in the fsynced op log and its placement event in the
// fsynced WAL.
type PlaceResult struct {
	Tenant string  `json:"tenant"`
	Item   int     `json:"item"`
	Bin    int     `json:"bin"`
	Opened bool    `json:"opened"`
	Time   float64 `json:"time"`
}

// AdvanceResult acknowledges a clock advance.
type AdvanceResult struct {
	Tenant string  `json:"tenant"`
	To     float64 `json:"to"`
	Events int     `json:"events"`
	Served int     `json:"served"`
}

// TenantStatus is the stats view of one tenant: its identity, the engine's
// counters, and derived cost/fragmentation figures.
type TenantStatus struct {
	TenantConfig
	Watermark float64 `json:"watermark"`
	// Degraded is true while the tenant is read-only because its disk is
	// refusing writes (ENOSPC or persistent EIO); mutations answer 503 and
	// the worker probes for recovery at every batch.
	Degraded bool `json:"degraded,omitempty"`
	// Engine counters (see core.EngineStats).
	EventSeq   int64   `json:"event_seq"`
	Clock      float64 `json:"clock"`
	Items      int     `json:"items"`
	Served     int     `json:"served"`
	Placements int     `json:"placements"`
	OpenBins   int     `json:"open_bins"`
	BinsOpened int     `json:"bins_opened"`
	// Cost is the usage-time objective accrued through the watermark.
	Cost float64 `json:"cost"`
	// OpenLoad is the per-dimension total load across open bins.
	OpenLoad []float64 `json:"open_load"`
	// StrandedPerDim is the per-dimension stranded open capacity: free
	// capacity in dimension d that cannot be used because some other
	// dimension has less headroom, summed over open bins (core.EngineStats
	// Stranded; DESIGN.md §13). StrandedCapacity is its dimension sum.
	StrandedPerDim   []float64 `json:"stranded_per_dim"`
	StrandedCapacity float64   `json:"stranded_capacity"`
	// StrandedBins is the legacy dominant-dimension heuristic
	// OpenBins − max_d OpenLoad[d].
	//
	// Deprecated: it undercounts mixed-imbalance fleets — a bin free in
	// dimension 0 next to a bin free in dimension 1 strands capacity in
	// both, but the fleet-level max sees neither. Kept for JSON
	// compatibility; read StrandedPerDim / StrandedCapacity instead.
	StrandedBins float64 `json:"stranded_bins"`
}

// PlacementRecord is one acknowledged placement in a placements listing.
type PlacementRecord struct {
	Item int     `json:"item"`
	Bin  int     `json:"bin"`
	Time float64 `json:"time"`
}

// PlacementsResult lists a tenant's committed placements from index From.
type PlacementsResult struct {
	Tenant     string            `json:"tenant"`
	From       int               `json:"from"`
	Total      int               `json:"total"`
	Placements []PlacementRecord `json:"placements"`
}

// Tenant is one independent run behind the server: a dynamic engine, its
// persistence session, its op log, and the single worker goroutine that owns
// all three. Everything mutable belongs to the worker; the front end only
// enqueues.
type Tenant struct {
	cfg    TenantConfig
	limits Limits
	dir    string
	fs     vfs.FS
	m      *storeMetrics

	// degradedFlag mirrors the worker-owned degraded state for readers on
	// other goroutines (/readyz); the worker is the only writer.
	degradedFlag atomic.Bool

	mu     sync.Mutex
	closed bool
	ch     chan *request

	// Worker-owned state below; untouched outside the worker goroutine
	// after start().
	session   *persist.Session
	ops       *persist.Writer
	watermark float64
	failed    *apiError
	degraded  *apiError // non-nil while the tenant is read-only on a sick disk

	done chan struct{}
}

func newTenant(cfg TenantConfig, dir string, limits Limits, m *storeMetrics) *Tenant {
	return &Tenant{
		cfg:    cfg,
		limits: limits,
		dir:    dir,
		fs:     vfs.OrOS(limits.FS),
		m:      m,
		ch:     make(chan *request, limits.QueueDepth),
		done:   make(chan struct{}),
	}
}

// Config returns the tenant's manifest identity.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// start launches the worker goroutine over an opened session + op log.
func (t *Tenant) start(session *persist.Session, ops *persist.Writer, watermark float64) {
	t.session = session
	t.ops = ops
	t.watermark = watermark
	go t.run()
}

// enqueue hands one request to the worker, answering errBusy when the
// bounded queue is full and errDraining when the tenant is shutting down.
// On success the worker owns the request and will send exactly one response
// on req.reply.
func (t *Tenant) enqueue(req *request) *apiError {
	if t.limits.Deadline > 0 {
		req.deadline = time.Now().Add(t.limits.Deadline)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errDraining
	}
	select {
	case t.ch <- req:
		t.m.queueDepth.Add(1)
		return nil
	default:
		t.m.backpressure.Inc()
		return errBusy
	}
}

// close stops intake and waits for the worker to drain the queue, sync, and
// release the files. Safe to call more than once.
func (t *Tenant) close() {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	if !already {
		close(t.ch)
	}
	t.mu.Unlock()
	<-t.done
}

// run is the worker loop: drain up to BatchMax queued requests, process them
// as one group commit, repeat until intake closes, then release everything.
func (t *Tenant) run() {
	defer close(t.done)
	for req := range t.ch {
		batch := []*request{req}
	fill:
		for len(batch) < t.limits.BatchMax {
			select {
			case r, ok := <-t.ch:
				if !ok {
					break fill
				}
				batch = append(batch, r)
			default:
				break fill
			}
		}
		t.m.queueDepth.Add(-float64(len(batch)))
		t.m.batchSize.Observe(float64(len(batch)))
		t.process(batch)
	}
	// Intake closed: the range loop above already drained everything, so
	// only the files remain. Close syncs the WAL; the op log syncs on Close
	// too, so nothing acknowledged — or even admitted — is lost.
	if t.session != nil {
		t.session.Close()
	}
	if t.ops != nil {
		t.ops.Close()
	}
}

// process runs one batch as a group commit, honouring the two-barrier
// durability order: validate and append every mutation's op, fsync the op
// log, apply the mutations to the engine (appending WAL records), fsync the
// WAL, then acknowledge. Transient barrier failures retry with capped
// backoff; a disk that stays sick degrades the tenant to read-only (503 for
// mutations, queries still served) instead of poisoning it — the worker
// probes the disk at every batch and resumes when writes go through again.
func (t *Tenant) process(batch []*request) {
	if t.degraded != nil {
		t.probe()
	}
	now := time.Now()
	type staged struct {
		req  *request
		resp response
	}
	out := make([]staged, 0, len(batch))
	var mutations []int // indices in out, in batch order
	wm0 := t.watermark  // admission rolls back here if barrier 1 fails

	// Phase 1: admission. Validate each mutation against the running
	// watermark and append its op-log record (buffered, not yet synced).
	for _, req := range batch {
		if t.failed != nil {
			out = append(out, staged{req, response{err: t.failed}})
			continue
		}
		if !req.deadline.IsZero() && now.After(req.deadline) {
			t.m.deadlines.Inc()
			out = append(out, staged{req, response{err: errDeadline}})
			continue
		}
		switch req.kind {
		case reqPlace, reqAdvance:
			if t.degraded != nil {
				out = append(out, staged{req, response{err: t.degraded}})
				continue
			}
			var aerr *apiError
			if req.kind == reqPlace {
				if !req.arrivalSet {
					req.arrival = t.watermark
				}
				aerr = t.admitPlace(req)
			} else {
				aerr = t.admitAdvance(req)
			}
			if aerr != nil {
				out = append(out, staged{req, response{err: aerr}})
				continue
			}
			mutations = append(mutations, len(out))
			out = append(out, staged{req, response{}})
		default:
			out = append(out, staged{req, response{}})
		}
	}

	// refuse answers every still-pending mutation with the tenant's current
	// terminal error (failed beats degraded).
	refuse := func() {
		for _, i := range mutations {
			if out[i].resp.err == nil {
				if t.failed != nil {
					out[i].resp.err = t.failed
				} else {
					out[i].resp.err = t.degraded
				}
			}
		}
		mutations = nil
	}

	// Phase 2: first barrier — ops durable before the engine may step. On a
	// recoverable failure the whole batch rolls back (the op-log writer is
	// manual-sync, so nothing leaked) and the tenant degrades; only
	// corruption, or a rollback that itself fails, poisons it.
	if len(mutations) > 0 && t.failed == nil {
		if err := t.retryIO(t.ops.Sync); err != nil {
			if persist.Recoverable(err) {
				if rberr := t.ops.Rollback(); rberr != nil {
					t.fail("op log rollback after failed sync: %v", rberr)
				} else {
					t.watermark = wm0
					t.degrade(err)
				}
			} else {
				t.fail("op log sync: %v", err)
			}
			refuse()
		}
	}

	// Phase 3: apply, in batch order. Queries run here too — degraded mode
	// keeps serving them — and each sees exactly the batch mutations that
	// preceded it.
	for i := range out {
		s := &out[i]
		if s.resp.err != nil {
			continue
		}
		if t.failed != nil {
			s.resp.err = t.failed
			continue
		}
		switch s.req.kind {
		case reqPlace:
			s.resp.place = t.applyPlace(s.req)
		case reqAdvance:
			s.resp.advance = t.applyAdvance(s.req)
		case reqStats:
			s.resp.stats = t.status()
		case reqPlacements:
			s.resp.placements = t.listPlacements(s.req.from)
		}
		if t.failed != nil && s.resp.err == nil {
			s.resp.err = t.failed
		}
	}

	// Phase 4: second barrier — the WAL durable before anyone is told. The
	// engine already stepped these events, so on a recoverable failure they
	// stay applied (item IDs are positional; un-stepping would skew them
	// against the durable op log) but unacknowledged: the records sit in the
	// writer's buffer, the probe re-syncs them, and recovery after a crash
	// regenerates them from the op log. The clients got 503, not an ack, so
	// nothing acknowledged can be lost either way.
	if len(mutations) > 0 && t.failed == nil {
		if err := t.retryIO(t.session.Sync); err != nil {
			if persist.Recoverable(err) {
				t.degrade(err)
			} else {
				t.fail("wal sync: %v", err)
			}
			refuse()
		}
	}

	// Phase 5: acknowledge.
	for _, s := range out {
		s.req.reply <- s.resp
	}

	t.harvest()
}

// retryIO runs op, retrying transient failures with exponential backoff
// (capped) up to Limits.RetryAttempts times. Disk-full, corruption, and
// fatal errors return immediately: waiting will not create space or truth.
func (t *Tenant) retryIO(op func() error) error {
	backoff := t.limits.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || persist.Classify(err) != persist.ClassTransient || attempt >= t.limits.RetryAttempts {
			return err
		}
		t.m.ioRetries.Inc()
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
}

// degrade flips the tenant into read-only mode: mutations answer 503 until a
// probe sees the disk take writes again. Unlike fail, nothing is poisoned —
// on-disk state is honest (behind, never wrong).
func (t *Tenant) degrade(cause error) {
	if t.degraded != nil {
		return
	}
	t.degraded = errf(http.StatusServiceUnavailable, "degraded",
		"tenant %q is read-only, disk unwell (%s): %v", t.cfg.Name, persist.Classify(cause), cause)
	t.degradedFlag.Store(true)
	t.m.degraded.Add(1)
}

// resume lifts degraded mode after a successful probe.
func (t *Tenant) resume() {
	if t.degraded == nil {
		return
	}
	t.degraded = nil
	t.degradedFlag.Store(false)
	t.m.degraded.Add(-1)
}

// probe re-runs both durability barriers against whatever is buffered (after
// a barrier-2 failure that includes the unacknowledged WAL suffix). Both
// clean means the disk recovered; a recoverable failure keeps degraded mode;
// corruption or fatal errors poison.
func (t *Tenant) probe() {
	if err := t.ops.Sync(); err != nil {
		if !persist.Recoverable(err) {
			t.fail("op log sync: %v", err)
		}
		return
	}
	if err := t.session.Sync(); err != nil {
		if !persist.Recoverable(err) {
			t.fail("wal sync: %v", err)
		}
		return
	}
	t.resume()
}

// harvest drains the session's I/O counters into the server metrics after a
// batch, and piggybacks op-log compaction on a just-finished WAL compaction:
// the session compacts its own WAL and snapshots, but only the tenant knows
// the op log, so the two shrink in tandem here.
func (t *Tenant) harvest() {
	st := t.session.TakeIOStats()
	if n := st.SyncFailures + st.CheckpointsSkipped; n > 0 {
		t.m.ioRetries.Add(uint64(n))
	}
	if st.Compactions > 0 {
		t.m.compactions.Add(uint64(st.Compactions))
		t.m.reclaimed.Add(uint64(st.ReclaimedBytes))
		if t.failed == nil && t.degraded == nil && !t.ops.Buffered() {
			t.compactOps()
		}
	}
}

// compactOps rewrites the op log with its advance spam collapsed, swapping
// the worker's writer for one on the rewritten file. Recoverable failures
// skip (the next compaction window retries); only corruption or a lost
// handle poisons.
func (t *Tenant) compactOps() {
	w, reclaimed, err := persist.CompactOpLog(t.fs, filepath.Join(t.dir, opsFile), t.cfg.Name, persist.SyncManual)
	if err != nil {
		if !persist.Recoverable(err) {
			t.fail("op log compaction: %v", err)
		}
		return
	}
	if w == nil {
		return
	}
	t.ops.Discard()
	t.ops = w
	t.m.compactions.Inc()
	t.m.reclaimed.Add(uint64(reclaimed))
}

// fail poisons the tenant: a persistence write failed, so no further
// acknowledgement would be honest. Queued and future requests answer 500.
func (t *Tenant) fail(format string, args ...any) {
	if t.failed == nil {
		t.failed = errf(http.StatusInternalServerError, "tenant_failed",
			"tenant %q persistence failed: %s", t.cfg.Name, fmt.Sprintf(format, args...))
		t.m.tenantFailures.Inc()
	}
}

// admitPlace validates a place request against the watermark and logs it.
func (t *Tenant) admitPlace(req *request) *apiError {
	if req.durationSet {
		req.departure = req.arrival + req.duration
	}
	if req.arrival < t.watermark {
		return errf(http.StatusConflict, "stale_arrival",
			"arrival %g is behind tenant %q watermark %g", req.arrival, t.cfg.Name, t.watermark)
	}
	probe := item.Item{Arrival: req.arrival, Departure: req.departure, Size: req.size}
	if err := probe.Validate(t.cfg.Dim); err != nil {
		return errf(http.StatusBadRequest, "invalid_item", "%v", err)
	}
	if err := t.ops.Append(persist.AppendItemOp(nil, req.arrival, req.departure, req.size)); err != nil {
		t.fail("op log append: %v", err)
		return t.failed
	}
	t.watermark = req.arrival
	return nil
}

// admitAdvance validates an advance request against the watermark and logs it.
func (t *Tenant) admitAdvance(req *request) *apiError {
	if req.to < t.watermark {
		return errf(http.StatusConflict, "stale_advance",
			"advance to %g is behind tenant %q watermark %g", req.to, t.cfg.Name, t.watermark)
	}
	if err := t.ops.Append(persist.AppendAdvanceOp(nil, req.to)); err != nil {
		t.fail("op log append: %v", err)
		return t.failed
	}
	t.watermark = req.to
	return nil
}

// applyPlace admits the item into the engine and steps the session until the
// item's arrival event commits, returning the placement.
func (t *Tenant) applyPlace(req *request) *PlaceResult {
	e := t.session.Engine()
	id, err := e.AppendArrival(req.arrival, req.departure, req.size)
	if err != nil {
		// Cannot happen after admitPlace's checks; treat as fatal skew.
		t.fail("engine rejected an admitted item: %v", err)
		return nil
	}
	for {
		rec, ok, err := t.session.Step()
		if err != nil {
			t.fail("step: %v", err)
			return nil
		}
		if !ok {
			t.fail("stream drained before arrival of item %d committed", id)
			return nil
		}
		t.m.events.Inc()
		if rec.Class == core.EventArrival && rec.ItemID == id {
			t.m.items.Inc()
			return &PlaceResult{Tenant: t.cfg.Name, Item: id, Bin: rec.BinID, Opened: rec.Opened, Time: rec.Time}
		}
	}
}

// applyAdvance steps the session through every event due at or before the
// target time.
func (t *Tenant) applyAdvance(req *request) *AdvanceResult {
	e := t.session.Engine()
	n := 0
	for {
		tt, ok := e.PeekTime()
		if !ok || tt > req.to {
			break
		}
		if _, ok, err := t.session.Step(); err != nil {
			t.fail("step: %v", err)
			return nil
		} else if !ok {
			break
		}
		t.m.events.Inc()
		n++
	}
	return &AdvanceResult{Tenant: t.cfg.Name, To: req.to, Events: n, Served: e.Stats().Served}
}

// status builds the stats view (worker goroutine only). The fragmentation
// fields — stranded_per_dim, stranded_capacity and the deprecated
// stranded_bins — are all derived from one metrics.FragOf recompute over the
// engine's open bins, so the three can never drift apart (or away from the
// fragmentation tracker's definition) under bin close/crash churn.
func (t *Tenant) status() *TenantStatus {
	e := t.session.Engine()
	st := e.Stats()
	fs := metrics.FragOf(t.cfg.Dim, e.AppendOpenBins(nil))
	out := &TenantStatus{
		TenantConfig: t.cfg,
		Watermark:    t.watermark,
		Degraded:     t.degraded != nil,
		EventSeq:     st.EventSeq,
		Clock:        st.Clock,
		Items:        st.Items,
		Served:       st.Served,
		Placements:   st.Placements,
		OpenBins:     fs.OpenBins,
		BinsOpened:   st.BinsOpened,
		Cost:         st.CostAt(t.watermark),
		OpenLoad:     fs.Load,
	}
	out.StrandedPerDim = fs.Stranded
	for _, v := range fs.Stranded {
		out.StrandedCapacity += v
	}
	maxLoad := 0.0
	for _, v := range fs.Load {
		if v > maxLoad {
			maxLoad = v
		}
	}
	out.StrandedBins = float64(fs.OpenBins) - maxLoad
	return out
}

// listPlacements copies the committed placements from index from on
// (worker goroutine only).
func (t *Tenant) listPlacements(from int) *PlacementsResult {
	snap, err := t.session.Engine().Snapshot()
	if err != nil {
		t.fail("snapshot: %v", err)
		return nil
	}
	all := snap.Result.Placements
	if from < 0 {
		from = 0
	}
	if from > len(all) {
		from = len(all)
	}
	out := &PlacementsResult{Tenant: t.cfg.Name, From: from, Total: len(all)}
	for _, p := range all[from:] {
		out.Placements = append(out.Placements, PlacementRecord{Item: p.ItemID, Bin: p.BinID, Time: p.Time})
	}
	return out
}
