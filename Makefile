# Developer entry points. `make ci` is the full gate: formatting, vet,
# the test suite under the race detector, and a short fuzz pass over the
# engine and fault-schedule fuzzers.

GO ?= go
FUZZTIME ?= 5s

.PHONY: ci fmt vet test race build bench fuzz-smoke

ci: fmt vet race fuzz-smoke

# gofmt -l prints offending files; fail when the list is non-empty.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Short differential-fuzz pass: the clean engine, the engine under fault
# injection, and the fault-schedule parsers. Each fuzzer gets FUZZTIME.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzSimulate$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzSimulateFaulty$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/faults
