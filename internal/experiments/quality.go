package experiments

import (
	"context"

	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/lowerbound"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
	"dvbp/internal/workload"
)

// QualityRow aggregates the packing/alignment metrics of one policy across
// instances — the quantified version of the paper's Section 7 discussion
// ("Packing and Alignment").
type QualityRow struct {
	Policy string
	// Utilization is the time-averaged L∞ load of open bins (packing).
	Utilization stats.Summary
	// Straggler is the fraction of bin-time below half the bin's peak load
	// (misalignment).
	Straggler stats.Summary
	// Ratio is the usual cost/LB for context.
	Ratio stats.Summary
}

// RunQuality measures the metrics for the seven standard policies on the
// Figure 4 workload model.
func RunQuality(cfg AblationConfig) ([]QualityRow, error) {
	wcfg := cfg.workloadConfig()
	if err := wcfg.Validate(); err != nil {
		return nil, err
	}
	names := core.PolicyNames()
	type trial struct {
		util, strag, ratio []float64
	}
	if err := cfg.requireUnsharded("quality"); err != nil {
		return nil, err
	}
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) (trial, error) {
		seed := parallel.SeedFor(cfg.Seed, i)
		l, err := workload.Uniform(wcfg, seed)
		if err != nil {
			return trial{}, err
		}
		tr := trial{
			util:  make([]float64, len(names)),
			strag: make([]float64, len(names)),
			ratio: make([]float64, len(names)),
		}
		lb := lowerbound.IntegralBound(l)
		for pi, n := range names {
			p, err := core.NewPolicy(n, seed)
			if err != nil {
				return trial{}, err
			}
			res, err := core.Simulate(l, p, cfg.observerOpts()...)
			if err != nil {
				return trial{}, err
			}
			q, err := analysis.Quality(l, res)
			if err != nil {
				return trial{}, err
			}
			tr.util[pi] = q.AvgUtilization
			tr.strag[pi] = q.StragglerFraction
			tr.ratio[pi] = res.Cost / lb
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]QualityRow, len(names))
	for pi, n := range names {
		var u, s, r stats.Accumulator
		for _, tr := range trials {
			u.Add(tr.util[pi])
			s.Add(tr.strag[pi])
			r.Add(tr.ratio[pi])
		}
		rows[pi] = QualityRow{Policy: n, Utilization: u.Summarize(), Straggler: s.Summarize(), Ratio: r.Summarize()}
	}
	return rows, nil
}

// QualityTable renders the study.
func QualityTable(rows []QualityRow) *report.Table {
	t := &report.Table{
		Title:   "Packing vs alignment (Section 7's explanation, quantified): utilisation = packing quality, straggler = misalignment",
		Headers: []string{"policy", "utilization", "straggler frac", "cost/LB"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, report.F(r.Utilization.Mean), report.F(r.Straggler.Mean), report.F(r.Ratio.Mean))
	}
	return t
}
