package check

import (
	"fmt"
	"math"

	"dvbp/internal/core"
	"dvbp/internal/interval"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/vector"
)

// Tolerance for float comparisons.
const tol = 1e-6

// Result validates res against l and returns the first inconsistency found,
// or nil when everything checks out.
func Result(l *item.List, res *core.Result) error {
	if res == nil {
		return fmt.Errorf("check: nil result")
	}
	if res.Items != l.Len() {
		return fmt.Errorf("check: result for %d items, instance has %d", res.Items, l.Len())
	}
	if len(res.Placements) != l.Len() {
		return fmt.Errorf("check: %d placements for %d items", len(res.Placements), l.Len())
	}

	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}

	// Every item placed exactly once, into a recorded bin.
	binRecs := make(map[int]core.BinUsage, len(res.Bins))
	for _, b := range res.Bins {
		binRecs[b.BinID] = b
	}
	placed := make(map[int]int, l.Len())
	binItems := make(map[int][]item.Item)
	for _, p := range res.Placements {
		it, ok := itemByID[p.ItemID]
		if !ok {
			return fmt.Errorf("check: placement of unknown item %d", p.ItemID)
		}
		if prev, dup := placed[p.ItemID]; dup {
			return fmt.Errorf("check: item %d placed twice (bins %d and %d)", p.ItemID, prev, p.BinID)
		}
		placed[p.ItemID] = p.BinID
		if _, ok := binRecs[p.BinID]; !ok {
			return fmt.Errorf("check: item %d placed into unrecorded bin %d", p.ItemID, p.BinID)
		}
		if math.Abs(p.Time-it.Arrival) > tol {
			return fmt.Errorf("check: item %d placed at %g, arrives at %g", p.ItemID, p.Time, it.Arrival)
		}
		binItems[p.BinID] = append(binItems[p.BinID], it)
	}

	// Feasibility at every arrival instant (load maxima happen there).
	for binID, items := range binItems {
		for _, it := range items {
			load := vector.New(l.Dim)
			for _, o := range items {
				if o.ActiveAt(it.Arrival) {
					load.AddInPlace(o.Size)
				}
			}
			if !load.LeqCapacity() {
				return fmt.Errorf("check: bin %d overloaded at t=%g (load %v)", binID, it.Arrival, load)
			}
		}
	}

	// Per-bin accounting and cost.
	recomputed := 0.0
	for binID, items := range binItems {
		rec := binRecs[binID]
		first, last := math.Inf(1), math.Inf(-1)
		ivs := make(interval.Set, 0, len(items))
		for _, it := range items {
			if it.Arrival < first {
				first = it.Arrival
			}
			if it.Departure > last {
				last = it.Departure
			}
			ivs = append(ivs, it.Interval())
		}
		if math.Abs(rec.OpenedAt-first) > tol {
			return fmt.Errorf("check: bin %d opened at %g, first arrival %g", binID, rec.OpenedAt, first)
		}
		if math.Abs(rec.ClosedAt-last) > tol {
			return fmt.Errorf("check: bin %d closed at %g, last departure %g", binID, rec.ClosedAt, last)
		}
		if rec.Packed != len(items) {
			return fmt.Errorf("check: bin %d records %d items, placements say %d", binID, rec.Packed, len(items))
		}
		// No idle gap: closed bins are never reused.
		if !ivs.Covers(interval.New(first, last)) {
			return fmt.Errorf("check: bin %d has an idle gap inside [%g, %g)", binID, first, last)
		}
		recomputed += ivs.Span()
	}
	if len(binItems) != res.BinsOpened {
		return fmt.Errorf("check: %d bins used, result says %d", len(binItems), res.BinsOpened)
	}
	if math.Abs(recomputed-res.Cost) > tol {
		return fmt.Errorf("check: recomputed cost %g != reported %g", recomputed, res.Cost)
	}

	// Lemma 1: cost dominates every lower bound on OPT.
	lb := lowerbound.Compute(l)
	if res.Cost < lb.Best()-tol {
		return fmt.Errorf("check: cost %g below lower bound %g", res.Cost, lb.Best())
	}
	return nil
}
