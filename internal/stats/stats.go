package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming summary statistics using Welford's
// algorithm, which is numerically stable for long runs. The zero value is
// ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// Merge folds another accumulator into a (parallel reduction). The result is
// identical (up to rounding) to having Added all observations into one
// accumulator.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	n1, n2 := float64(a.n), float64(b.n)
	delta := b.mean - a.mean
	total := n1 + n2
	a.m2 += b.m2 + delta*delta*n1*n2/total
	a.mean += delta * n2 / total
	a.n += b.n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Summary is a frozen snapshot of an Accumulator.
type Summary struct {
	N            int
	Mean, StdDev float64
	Min, Max     float64
}

// Summarize freezes the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.Mean(), StdDev: a.StdDev(), Min: a.min, Max: a.max}
}

// String renders "mean ± stddev (n=..)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d, min=%.4f, max=%.4f)", s.Mean, s.StdDev, s.N, s.Min, s.Max)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or p out
// of range. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs (0 for < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
