package core

import (
	"fmt"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// churnInstance builds the bin-churn worst case: n full-bin items arriving
// together, so n bins are simultaneously open, then departing in reverse
// opening order, so every close used to scan the whole open list. Before
// closeBinAt tracked bin indices, Simulate was Θ(n²) on this family; it is
// now linear in the number of closings, which doubling n in the benchmark
// makes visible (quadratic close cost would quadruple ns/op per doubling).
func churnInstance(n int) *item.List {
	l := item.NewList(1)
	for i := 0; i < n; i++ {
		// Item i departs at 2 + (n-i)·1e-6: the last-opened bin closes
		// first, the worst case for a front-to-back scan.
		l.Add(0, 2+float64(n-i)*1e-6, vector.Of(1.0))
	}
	return l
}

func BenchmarkBinChurnClose(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		l := churnInstance(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := NewNextFit() // O(1) Select, isolating close cost
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Simulate(l, p)
				if err != nil {
					b.Fatal(err)
				}
				if res.BinsOpened != n {
					b.Fatalf("bins opened = %d, want %d", res.BinsOpened, n)
				}
			}
		})
	}
}

// BenchmarkSimulateUniform tracks end-to-end engine throughput on the
// paper's workload model, for before/after comparisons when optimising the
// hot path.
func BenchmarkSimulateUniform(b *testing.B) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 2000, Mu: 100, T: 1000, B: 100}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"FirstFit", "MoveToFront", "BestFit"} {
		b.Run(name, func(b *testing.B) {
			p, err := NewPolicy(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(l, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
