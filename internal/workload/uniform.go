package workload

import (
	"fmt"
	"math/rand"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// UniformConfig is the paper's Table 2 parameterisation.
type UniformConfig struct {
	// D is the number of resource dimensions (paper: 1, 2, 5).
	D int
	// N is the number of items per instance (paper: 1000).
	N int
	// Mu is the maximum (integral) item duration; durations are uniform on
	// [1, Mu] (paper: 1, 2, 5, 10, 100, 200).
	Mu int
	// T is the sequence span; arrivals are uniform integers on [0, T-Mu]
	// (paper: 1000).
	T int
	// B is the integral bin capacity per dimension; item sizes are uniform
	// integers on [1, B], normalised by B (paper: 100).
	B int
}

// Validate checks the configuration is generatable.
func (c UniformConfig) Validate() error {
	switch {
	case c.D < 1:
		return fmt.Errorf("workload: D = %d, want >= 1", c.D)
	case c.N < 1:
		return fmt.Errorf("workload: N = %d, want >= 1", c.N)
	case c.Mu < 1:
		return fmt.Errorf("workload: Mu = %d, want >= 1", c.Mu)
	case c.B < 1:
		return fmt.Errorf("workload: B = %d, want >= 1", c.B)
	case c.T < c.Mu:
		return fmt.Errorf("workload: T = %d < Mu = %d", c.T, c.Mu)
	}
	return nil
}

// PaperDefaults returns Table 2's fixed parameters with the given d and μ.
func PaperDefaults(d, mu int) UniformConfig {
	return UniformConfig{D: d, N: 1000, Mu: mu, T: 1000, B: 100}
}

// Uniform generates one instance of the paper's experimental model.
func Uniform(cfg UniformConfig, seed int64) (*item.List, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(cfg.D)
	for i := 0; i < cfg.N; i++ {
		arrival := float64(r.Intn(cfg.T - cfg.Mu + 1))
		duration := float64(1 + r.Intn(cfg.Mu))
		size := vector.New(cfg.D)
		for j := range size {
			size[j] = float64(1+r.Intn(cfg.B)) / float64(cfg.B)
		}
		l.Add(arrival, arrival+duration, size)
	}
	return l, nil
}
