package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorKnownValues(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.StdDev() != 0 || a.StdErr() != 0 || a.N() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 || a.Min() != 3 || a.Max() != 3 {
		t.Error("single-observation stats wrong")
	}
}

func TestStdErr(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(x)
	}
	want := a.StdDev() / 2 // sqrt(4) = 2
	if math.Abs(a.StdErr()-want) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", a.StdErr(), want)
	}
}

// Property: Merge(a, b) == accumulate everything sequentially.
func TestMergeEquivalentToSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(n1Raw, n2Raw uint8) bool {
		n1, n2 := int(n1Raw%50), int(n2Raw%50)
		var a, b, all Accumulator
		for i := 0; i < n1; i++ {
			x := r.NormFloat64()*10 + 5
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := r.NormFloat64()*2 - 3
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Merge(b) // merge empty: no-op
	if a.N() != 1 || a.Mean() != 1 {
		t.Error("merge with empty changed state")
	}
	var c Accumulator
	c.Merge(a) // empty merges a: adopt
	if c.N() != 1 || c.Mean() != 1 {
		t.Error("empty.Merge(a) should adopt a")
	}
}

func TestSummarize(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(3)
	s := a.Summarize()
	if s.N != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation: median of even-length slice.
	if got := Percentile([]float64{1, 2, 3, 4}, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single = %v", got)
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single != 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if math.Abs(Mean(xs)-5) > 1e-12 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if math.Abs(StdDev(xs)-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
}

// Property: accumulator agrees with the slice helpers.
func TestAccumulatorMatchesSliceHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(nRaw uint8) bool {
		n := int(nRaw%40) + 2
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = r.Float64() * 100
			a.Add(xs[i])
		}
		return math.Abs(a.Mean()-Mean(xs)) < 1e-9 && math.Abs(a.StdDev()-StdDev(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(float64(i % 1000))
	}
}
