package experiments

import (
	"context"
	"fmt"

	"dvbp/internal/core"
	"dvbp/internal/metrics"
	"dvbp/internal/parallel"
)

// ShardSlice selects a slice of a sweep's shard space, for splitting one
// experiment across several processes or machines: an invocation configured
// with {Index: k, Count: m} runs exactly the shards whose global index is
// congruent to k mod m. The zero value selects the whole space. Slices with
// the same Count are disjoint and jointly exhaustive, so m invocations with
// Index 0..m-1 cover every shard exactly once and their outputs merge into
// the same result any single invocation would produce (see MergeSweeps).
type ShardSlice struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// Validate checks the slice designates a sane subset.
func (s ShardSlice) Validate() error {
	if s.Count == 0 && s.Index == 0 {
		return nil // whole space
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("experiments: shard slice %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

// All reports whether the slice selects the whole shard space.
func (s ShardSlice) All() bool { return s.Count <= 1 }

// Selects reports whether global shard index i belongs to the slice.
func (s ShardSlice) Selects(i int) bool { return s.All() || i%s.Count == s.Index }

// String renders "k/m" ("all" for the whole space).
func (s ShardSlice) String() string {
	if s.All() {
		return "all"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// ParseShardSlice parses the CLI "k/m" syntax ("" = whole space).
func ParseShardSlice(s string) (ShardSlice, error) {
	if s == "" {
		return ShardSlice{}, nil
	}
	var sl ShardSlice
	if n, err := fmt.Sscanf(s, "%d/%d", &sl.Index, &sl.Count); err != nil || n != 2 {
		return ShardSlice{}, fmt.Errorf("experiments: bad shard spec %q, want k/m", s)
	}
	if err := sl.Validate(); err != nil {
		return ShardSlice{}, err
	}
	return sl, nil
}

// RunControl bundles the execution knobs shared by every experiment config:
// scheduler parallelism, cancellation, progress reporting, shard selection,
// and engine observability. It is embedded in the experiment configs, so its
// fields are read and written as cfg.Workers, cfg.Ctx, and so on. None of the
// fields affect experiment results — the determinism contract (DESIGN.md §9)
// guarantees bit-identical output for every Workers value and any partition
// of the work into shard slices.
type RunControl struct {
	// Workers bounds scheduler parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Ctx cancels outstanding shards early (e.g. a command -timeout); nil
	// means Background. On cancellation the run returns the context error.
	Ctx context.Context
	// Progress, when non-nil, observes shard completion. It is called from
	// worker goroutines (see parallel.ProgressFunc for the contract).
	Progress parallel.ProgressFunc
	// Shard restricts this invocation to a slice of the sweep's shard space;
	// the zero value runs everything.
	Shard ShardSlice
	// Observer, when non-nil, is attached to every simulation the experiment
	// runs (via core.WithObserver). Shards execute in parallel, so the
	// observer must be safe for concurrent use; a shared metrics.Collector
	// qualifies and aggregates counters across the whole experiment — each
	// simulation gets its own run-scoped view (metrics.RunScoper) so
	// concurrent engines never share per-run observer state. The observer
	// does not affect packing results.
	Observer core.Observer
}

func (rc RunControl) runOptions() parallel.RunOptions {
	return parallel.RunOptions{Workers: rc.Workers, Context: rc.Ctx, OnProgress: rc.Progress}
}

// observerOpts converts the optional shared observer into Simulate options
// for ONE simulation run. Observers that implement metrics.RunScoper (the
// shared metrics.Collector does) are scoped per run, so per-run state such as
// placement-latency timestamps is never shared between concurrent engines.
func (rc RunControl) observerOpts() []core.Option {
	o := rc.Observer
	if o == nil {
		return nil
	}
	if rs, ok := o.(metrics.RunScoper); ok {
		o = rs.ForRun()
	}
	return []core.Option{core.WithObserver(o)}
}

// requireUnsharded rejects slice-restricted configs for experiments whose
// results cannot be reassembled from parts (no mergeable sweep form).
func (rc RunControl) requireUnsharded(experiment string) error {
	if rc.Shard.All() {
		return nil
	}
	return fmt.Errorf("experiments: %s does not support shard slices (only figure4 and table1 do)", experiment)
}

// runShards executes fn over the selected subset of an n-shard sweep through
// the work-stealing scheduler and returns a dense result slice indexed by
// global shard index. Unselected shards keep T's zero value — callers that
// run sharded must only consume selected indices. Results are bit-identical
// for any Workers value; the selected-subset results are bit-identical across
// any ShardSlice partition.
func runShards[T any](rc RunControl, n int, fn func(ctx context.Context, shard int) (T, error)) ([]T, error) {
	if err := rc.Shard.Validate(); err != nil {
		return nil, err
	}
	if rc.Shard.All() {
		return parallel.MapShards(n, fn, rc.runOptions())
	}
	var sel []int
	for i := 0; i < n; i++ {
		if rc.Shard.Selects(i) {
			sel = append(sel, i)
		}
	}
	results := make([]T, n)
	err := parallel.Run(len(sel), func(ctx context.Context, j int) error {
		v, err := fn(ctx, sel[j])
		if err != nil {
			return err
		}
		results[sel[j]] = v
		return nil
	}, rc.runOptions())
	if err != nil {
		return nil, err
	}
	return results, nil
}
