package core

// This file defines the live-migration seam of the engine: periodic
// consolidation passes planned by a pluggable MigrationPlanner, applied move
// by move as first-class engine events (EventMigration), under a hard
// per-pass budget on both the move count and the moved size·remaining-time
// cost. The paper's model makes placements irrevocable; this seam relaxes
// that assumption as a measured extension (DESIGN.md §14) while preserving
// every determinism contract the engine is built on: a migrated run is a pure
// function of (instance, policy, options), snapshot/restore is exact
// mid-pass, and a zero budget is bit-identical to an unmodified run.

import (
	"fmt"
	"math"

	"dvbp/internal/vector"
)

// MigrationMove relocates one active item from one open bin to another.
type MigrationMove struct {
	ItemID int
	From   int
	To     int
}

// MigrationBudget bounds one consolidation pass. MaxMoves is the hard cap on
// the number of moves in the pass; MaxCost, when positive, additionally caps
// the pass's total migration cost Σ MigrationMoveCost (zero or negative means
// the cost is unbounded). A budget with MaxMoves <= 0 disables migration
// entirely: WithMigration then configures nothing, so the engine is the
// unmodified engine — bit-identical events, loads, metrics and snapshots.
type MigrationBudget struct {
	MaxMoves int
	MaxCost  float64
}

// MigrationMoveCost is the exact cost model of one move: the L1 size of the
// moved item times its remaining duration at the pass instant. It is the
// copy-volume a live migration transfers, weighted by how long the item will
// keep occupying its new home — moving a large, long-lived item is expensive,
// moving a small, nearly-departed one is almost free.
func MigrationMoveCost(size vector.Vector, remaining float64) float64 {
	return size.SumNorm() * remaining
}

// MigrationView is the read-only cluster state a planner sees. Bins holds the
// open bins in ascending ID order with no holes; planners must not mutate
// them (the same contract policies operate under). Size and Departure resolve
// item metadata for cost and feasibility reasoning.
type MigrationView struct {
	// Now is the pass instant.
	Now float64
	// Dim is the instance dimension.
	Dim int
	// Bins are the open bins, ascending ID.
	Bins []*Bin
	// Size returns an item's size vector (shared; do not mutate).
	Size func(itemID int) vector.Vector
	// Departure returns an item's departure time.
	Departure func(itemID int) float64
}

// MigrationPlanner plans one consolidation pass. Implementations must be
// deterministic pure functions of the view and budget — no wall clock, no
// global RNG, no state carried between passes — because the engine re-plans
// a pass from the same view during WAL replay and the regenerated moves must
// match the logged ones bit for bit. The returned moves are applied in order,
// one engine event each; the whole plan must respect the budget, and every
// move must be feasible when its turn comes (earlier moves in the same pass
// included). A plan that violates either contract poisons the run with an
// error, never a panic. internal/migrate provides the standard planners.
type MigrationPlanner interface {
	// Name returns a stable identifier, e.g. "drain-emptiest".
	Name() string
	// PlanPass returns the moves of one pass (nil/empty for "nothing to do").
	PlanPass(view MigrationView, budget MigrationBudget) ([]MigrationMove, error)
}

// MigrationObserver is an optional extension of Observer (like
// FailureObserver): when the attached Observer also implements it, the engine
// reports every applied move. ItemMigrated fires after the item has been
// re-packed into to (both bins' loads reflect the move); a move that drains
// its source fires the source's BinClosed callback first.
type MigrationObserver interface {
	// ItemMigrated fires at pass time t after the item moved from from to to.
	// cost is the move's MigrationMoveCost. drained reports that the move
	// emptied (and therefore closed) the source bin.
	ItemMigrated(itemID int, from, to *Bin, t, cost float64, drained bool)
}

// migrateConfig is the engine's migration configuration (nil when disabled).
type migrateConfig struct {
	planner MigrationPlanner
	period  float64
	budget  MigrationBudget
}

// WithMigration enables periodic consolidation passes: every period time
// units (first pass at t = period) the planner is consulted and its moves are
// applied as engine events, subject to the per-pass budget. A pass at time t
// runs after all other events at t (departures, crashes, retries, arrivals)
// and only while the run still has events pending, so migration never
// extends a run's horizon.
//
// A nil planner, non-positive period, or budget with MaxMoves <= 0 configures
// nothing: the engine is then provably identical to one built without this
// option — the budget-0 differential contract (DESIGN.md §14).
func WithMigration(p MigrationPlanner, period float64, budget MigrationBudget) Option {
	return func(c *config) {
		if p == nil || period <= 0 || math.IsNaN(period) || budget.MaxMoves <= 0 {
			return
		}
		c.migrate = &migrateConfig{planner: p, period: period, budget: budget}
	}
}

// migPassTime returns the absolute time of pass n (1-based). Multiplication,
// not repeated addition, so the schedule is a pure function of n and restore
// recomputes it exactly.
func (e *Engine) migPassTime(n int64) float64 {
	return e.cfg.migrate.period * float64(n)
}

// maybePlanMigration runs due consolidation passes strictly before the next
// real event at t. State only changes at events, so consecutive due passes
// see the same view: after one empty plan the remaining due pass numbers are
// skipped wholesale (the planner, a pure function, would return empty again)
// up to the first pass at or after t. The first non-empty plan is validated
// against the budget and staged; its moves then commit one per Step ahead of
// the event at t.
func (e *Engine) maybePlanMigration(t float64) error {
	for e.migPassTime(e.migPass) < t {
		passAt := e.migPassTime(e.migPass)
		e.migPass++
		moves, err := e.planMigrationPass(passAt)
		if err != nil {
			return err
		}
		if len(moves) > 0 {
			e.pendingMoves = moves
			e.passTime = passAt
			return nil
		}
		// Empty plan: fast-forward to the first pass number at or after t.
		// A pass landing exactly on t still runs — after t's events, per the
		// same-instant class order — so it is not skipped here.
		if n := int64(math.Ceil(t / e.cfg.migrate.period)); n > e.migPass {
			for n > e.migPass+1 && e.migPassTime(n-1) >= t {
				n--
			}
			e.migPass = n
		}
	}
	return nil
}

// planMigrationPass consults the planner at passAt and validates the plan
// against the budget and the engine's live state.
func (e *Engine) planMigrationPass(passAt float64) ([]MigrationMove, error) {
	e.compact()
	view := MigrationView{
		Now:  passAt,
		Dim:  e.list.Dim,
		Bins: e.open,
		Size: func(id int) vector.Vector {
			if it, ok := e.itemsByID[id]; ok {
				return it.Size
			}
			return nil
		},
		Departure: func(id int) float64 {
			if it, ok := e.itemsByID[id]; ok {
				return it.Departure
			}
			return math.NaN()
		},
	}
	moves, err := e.cfg.migrate.planner.PlanPass(view, e.cfg.migrate.budget)
	if err != nil {
		return nil, fmt.Errorf("core: migration planner %s: %w", e.cfg.migrate.planner.Name(), err)
	}
	if len(moves) == 0 {
		return nil, nil
	}
	if err := e.checkMigrationPlan(moves, passAt); err != nil {
		return nil, fmt.Errorf("core: migration planner %s: %w", e.cfg.migrate.planner.Name(), err)
	}
	return moves, nil
}

// checkMigrationPlan enforces the budget and structural sanity of a plan
// before any move is applied. Per-move feasibility (the target fits in every
// dimension) is enforced move by move at apply time, against the exact loads.
func (e *Engine) checkMigrationPlan(moves []MigrationMove, passAt float64) error {
	budget := e.cfg.migrate.budget
	if len(moves) > budget.MaxMoves {
		return fmt.Errorf("plan has %d moves, budget allows %d", len(moves), budget.MaxMoves)
	}
	seen := make(map[int]int, len(moves))
	cost := 0.0
	for i, mv := range moves {
		if prev, dup := seen[mv.ItemID]; dup {
			return fmt.Errorf("moves %d and %d both relocate item %d", prev, i, mv.ItemID)
		}
		seen[mv.ItemID] = i
		if mv.From == mv.To {
			return fmt.Errorf("move %d relocates item %d from bin %d to itself", i, mv.ItemID, mv.From)
		}
		from, ok := e.binsByID[mv.From]
		if !ok {
			return fmt.Errorf("move %d names unknown source bin %d", i, mv.From)
		}
		if _, ok := e.binsByID[mv.To]; !ok {
			return fmt.Errorf("move %d names unknown target bin %d", i, mv.To)
		}
		size, active := from.active[mv.ItemID]
		if !active {
			return fmt.Errorf("move %d: item %d is not active in bin %d", i, mv.ItemID, mv.From)
		}
		it := e.itemsByID[mv.ItemID]
		cost += MigrationMoveCost(size, it.Departure-passAt)
	}
	if budget.MaxCost > 0 && cost > budget.MaxCost {
		return fmt.Errorf("plan costs %g, budget allows %g", cost, budget.MaxCost)
	}
	return nil
}

// stepMove commits the next staged migration move as this Step's event.
func (e *Engine) stepMove() (EventRecord, bool, error) {
	e.eventSeq++
	rec := EventRecord{Seq: e.eventSeq, Class: EventMigration, Time: e.passTime, ItemID: -1, BinID: -1}
	var err error
	rec.ItemID, rec.BinID, err = e.commitMove()
	if err != nil {
		e.err = err
		return EventRecord{}, false, err
	}
	e.lastTime = e.passTime
	return rec, true, nil
}

// commitMove applies the next staged move at the pass time and returns its
// event record fields. A move that empties its source bin closes it — the
// whole point of consolidation: the drained bin stops accruing usage-time
// cost now instead of at its last departure.
func (e *Engine) commitMove() (itemID, binID int, err error) {
	mv := e.pendingMoves[0]
	e.pendingMoves = e.pendingMoves[1:]
	if len(e.pendingMoves) == 0 {
		e.pendingMoves = nil
	}
	t := e.passTime
	from, ok := e.binsByID[mv.From]
	if !ok {
		return -1, -1, fmt.Errorf("core: migration move from unknown bin %d", mv.From)
	}
	to, ok := e.binsByID[mv.To]
	if !ok {
		return -1, -1, fmt.Errorf("core: migration move to unknown bin %d", mv.To)
	}
	size, active := from.active[mv.ItemID]
	if !active {
		return -1, -1, fmt.Errorf("core: migration move of item %d not active in bin %d", mv.ItemID, mv.From)
	}
	if !to.Fits(size) {
		return -1, -1, fmt.Errorf("core: migration move of item %d (size %v) overflows bin %d (load %v)", mv.ItemID, size, to.ID, to.load)
	}
	if err := from.remove(mv.ItemID); err != nil {
		return -1, -1, fmt.Errorf("core: %w", err)
	}
	if err := to.pack(mv.ItemID, size); err != nil {
		return -1, -1, fmt.Errorf("core: %w", err)
	}
	if e.cfg.audit != nil {
		from.auditCrossCheckLoad()
		to.auditCrossCheckLoad()
	}
	it := e.itemsByID[mv.ItemID]
	cost := MigrationMoveCost(size, it.Departure-t)
	e.res.Migrations++
	e.res.MigrationCost += cost

	// The item's live departure entry still names the old bin; redirect it.
	// Stale entries from earlier placements carry different attempt bits, so
	// only the live entry matches.
	attempt := 0
	if e.attempts != nil {
		attempt = e.attempts[mv.ItemID]
	}
	if e.redirects == nil {
		e.redirects = make(map[int64]int)
	}
	e.redirects[depSeq(mv.ItemID, attempt)] = to.ID

	if e.idx != nil {
		e.idxUpdate(to, false)
	}
	drained := from.Empty()
	if drained {
		e.res.BinsDrained++
		e.closeBinAt(from, t, false)
	} else if e.idx != nil {
		e.idxUpdate(from, false)
	}
	if e.idx != nil && e.cfg.audit != nil {
		if err := e.idx.Validate(); err != nil {
			return -1, -1, err
		}
	}
	if e.mObs != nil {
		e.mObs.ItemMigrated(mv.ItemID, from, to, t, cost, drained)
	}
	// A drain freed a whole bin slot; even a plain move freed capacity in the
	// source. Either can admit a queued dispatch.
	if err := e.drainQueue(t); err != nil {
		return -1, -1, err
	}
	return mv.ItemID, to.ID, nil
}
