package main

import (
	"testing"
)

func TestParseParams(t *testing.T) {
	got, err := parseParams("2, 8,32")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 8 || got[2] != 32 {
		t.Errorf("parseParams = %v", got)
	}
	for _, bad := range []string{"", "x", "1", "-3", "4,,8"} {
		if _, err := parseParams(bad); err == nil {
			t.Errorf("parseParams(%q): want error", bad)
		}
	}
}

func TestEvenUp(t *testing.T) {
	cases := map[int]int{2: 2, 3: 4, 4: 4, 7: 8}
	for in, want := range cases {
		if got := evenUp(in); got != want {
			t.Errorf("evenUp(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBuildAllConstructions(t *testing.T) {
	for _, c := range []string{"anyfit", "nextfit", "mtf", "bestfit"} {
		in, pol, err := build(c, 2, 4, 5)
		if err != nil {
			t.Errorf("build(%s): %v", c, err)
			continue
		}
		if in == nil || pol == nil {
			t.Errorf("build(%s): nil outputs", c)
		}
		if err := in.List.Validate(); err != nil {
			t.Errorf("build(%s): invalid instance: %v", c, err)
		}
	}
	if _, _, err := build("nope", 2, 4, 5); err == nil {
		t.Error("unknown construction accepted")
	}
}

func TestParamName(t *testing.T) {
	if paramName("mtf") != "n" || paramName("bestfit") != "R" || paramName("anyfit") != "k" {
		t.Error("paramName mapping wrong")
	}
}
