package core

import (
	"fmt"
	"sort"

	"dvbp/internal/vector"
)

// Bin is an open server/bin during simulation. Policies receive bins
// read-only: they may inspect load and metadata but must mutate nothing; all
// packing goes through the engine.
type Bin struct {
	// ID numbers bins by opening order, starting at 0. A smaller ID means an
	// earlier opening time (First Fit's order).
	ID int
	// OpenedAt is the time the bin received its first item.
	OpenedAt float64

	// load caches acc rounded to float64 per dimension; refreshed after
	// every pack/remove so read paths stay plain slice loads.
	load vector.Vector
	// acc holds the exact per-dimension sum of the active item sizes. Its
	// state is a pure function of the active multiset (integer limb sums are
	// order-independent and removal cancels exactly), so load — its rounding
	// — is bit-identical across any pack/depart history reaching the same
	// active set. That is the determinism contract load-driven policies
	// (Best/Worst Fit compare loads with exact float comparisons) rely on,
	// previously bought by re-summing all k active items in canonical order
	// on every event; acc makes each event O(d) instead of O(k·log k + k·d).
	acc    []vector.Acc
	active map[int]vector.Vector // item ID -> size, for departure handling
	packed int                   // total items ever packed into this bin

	// openIdx is the bin's current index in the engine's open slice, kept
	// up to date by the engine so closing a bin needs no linear scan.
	openIdx int
	// probe, when armed by the engine around Policy.Select, counts Fits
	// evaluations for the SelectObserver instrumentation seam.
	probe *fitProbe
}

// fitProbe counts Bin.Fits evaluations while armed. The engine shares one
// probe across all of a run's bins and arms it only for the duration of
// Policy.Select, so the engine's own feasibility re-check inside pack is
// never counted.
type fitProbe struct {
	armed bool
	n     int
}

func newBin(id int, d int, openedAt float64) *Bin {
	return &Bin{
		ID:       id,
		OpenedAt: openedAt,
		load:     vector.New(d),
		acc:      make([]vector.Acc, d),
		active:   make(map[int]vector.Vector),
	}
}

// Load returns the current total size vector of the active items. The
// returned vector is a copy; policies may keep it.
func (b *Bin) Load() vector.Vector { return b.load.Clone() }

// LoadAt returns the bin's load in dimension j without copying — the
// accessor the per-event fragmentation tracker reads through.
func (b *Bin) LoadAt(j int) float64 { return b.load[j] }

// Dim returns the bin's dimension.
func (b *Bin) Dim() int { return len(b.load) }

// LoadNorm returns ‖load‖∞ without allocating.
func (b *Bin) LoadNorm() float64 { return b.load.MaxNorm() }

// LoadSum returns ‖load‖1 without allocating.
func (b *Bin) LoadSum() float64 { return b.load.SumNorm() }

// LoadPNorm returns ‖load‖p without allocating a copy.
func (b *Bin) LoadPNorm(p float64) float64 { return b.load.PNorm(p) }

// Fits reports whether an item of the given size fits in the bin's residual
// capacity in every dimension.
func (b *Bin) Fits(size vector.Vector) bool {
	if b.probe != nil && b.probe.armed {
		b.probe.n++
	}
	return b.load.FitsWithin(size)
}

// ActiveItems returns the number of currently active items.
func (b *Bin) ActiveItems() int { return len(b.active) }

// PackedItems returns the number of items ever packed into the bin.
func (b *Bin) PackedItems() int { return b.packed }

// ActiveItemIDs returns the IDs of the active items in ascending order.
func (b *Bin) ActiveItemIDs() []int {
	return b.appendActiveItemIDs(make([]int, 0, len(b.active)))
}

// appendActiveItemIDs appends the active item IDs to dst in ascending order
// and returns the extended slice. The engine passes a reused scratch slice so
// eviction handling stays allocation-free in steady state.
func (b *Bin) appendActiveItemIDs(dst []int) []int {
	n := len(dst)
	for id := range b.active {
		dst = append(dst, id)
	}
	sort.Ints(dst[n:])
	return dst
}

// Empty reports whether the bin has no active items (and should close).
func (b *Bin) Empty() bool { return len(b.active) == 0 }

func (b *Bin) pack(itemID int, size vector.Vector) error {
	if !b.Fits(size) {
		return fmt.Errorf("bin %d: item %d of size %v does not fit load %v", b.ID, itemID, size, b.load)
	}
	if _, dup := b.active[itemID]; dup {
		return fmt.Errorf("bin %d: item %d already packed", b.ID, itemID)
	}
	b.active[itemID] = size
	b.packed++
	for j := range b.acc {
		b.acc[j].Add(size[j])
		b.load[j] = b.acc[j].Round()
	}
	return nil
}

func (b *Bin) remove(itemID int) error {
	size, ok := b.active[itemID]
	if !ok {
		return fmt.Errorf("bin %d: item %d not active", b.ID, itemID)
	}
	delete(b.active, itemID)
	for j := range b.acc {
		b.acc[j].Sub(size[j])
		b.load[j] = b.acc[j].Round()
	}
	return nil
}

// refreshLoadFromActive rebuilds the accumulators and cached load from the
// active map alone. The naive reference implementations use it after editing
// a bin's active set wholesale: because the accumulator state is a pure
// function of the active multiset, the result is bit-identical to the
// engine's incrementally-maintained load.
func (b *Bin) refreshLoadFromActive() {
	for j := range b.acc {
		b.acc[j].Reset()
	}
	for _, size := range b.active {
		for j := range b.acc {
			b.acc[j].Add(size[j])
		}
	}
	for j := range b.acc {
		b.load[j] = b.acc[j].Round()
	}
}

// canonicalLoad re-sums the active item sizes in ascending item-ID order with
// plain float64 addition — the engine's original (pre-incremental)
// definition of a bin's load. The audit seam uses it as an independent
// cross-check: the exact accumulator must agree with this naive canonical sum
// to within its worst-case rounding error.
func (b *Bin) canonicalLoad() vector.Vector {
	ids := b.ActiveItemIDs()
	load := vector.New(b.load.Dim())
	for _, id := range ids {
		load.AddInPlace(b.active[id])
	}
	return load
}

// auditCrossCheckLoad panics if the cached incremental load drifts from the
// naive canonical recompute by more than the naive sum's own error bound —
// (k+1)·ulp-scale per dimension for k active items of size ≤ 1. It runs only
// under WithAudit, where the engine already pays O(k) per decision for
// snapshots, so the O(k·d) recompute does not change the audit cost class.
func (b *Bin) auditCrossCheckLoad() {
	want := b.canonicalLoad()
	tol := float64(len(b.active)+1) * 1e-15
	for j, got := range b.load {
		if diff := got - want[j]; diff > tol || diff < -tol {
			panic(fmt.Sprintf(
				"bin %d: incremental load[%d]=%g drifted from canonical recompute %g (tol %g, %d active)",
				b.ID, j, got, want[j], tol, len(b.active)))
		}
	}
}

// String renders a compact description for debugging.
func (b *Bin) String() string {
	return fmt.Sprintf("bin{id=%d, opened=%g, load=%v, active=%d}", b.ID, b.OpenedAt, b.load, len(b.active))
}
