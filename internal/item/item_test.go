package item

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

func TestItemBasics(t *testing.T) {
	it := Item{ID: 1, Arrival: 2, Departure: 5, Size: v(0.5)}
	if got := it.Duration(); got != 3 {
		t.Errorf("Duration = %v, want 3", got)
	}
	iv := it.Interval()
	if iv.Lo != 2 || iv.Hi != 5 {
		t.Errorf("Interval = %v", iv)
	}
	if !it.ActiveAt(2) {
		t.Error("active at arrival (half-open)")
	}
	if it.ActiveAt(5) {
		t.Error("not active at departure (half-open)")
	}
	if !it.ActiveAt(4.9) || it.ActiveAt(1.9) {
		t.Error("interior/exterior misclassified")
	}
}

func TestItemValidate(t *testing.T) {
	good := Item{ID: 0, Arrival: 0, Departure: 1, Size: v(0.5, 0.5)}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid item rejected: %v", err)
	}
	cases := []struct {
		name string
		it   Item
		d    int
	}{
		{"nan arrival", Item{Arrival: math.NaN(), Departure: 1, Size: v(0.5)}, 1},
		{"negative arrival", Item{Arrival: -1, Departure: 1, Size: v(0.5)}, 1},
		{"zero duration", Item{Arrival: 1, Departure: 1, Size: v(0.5)}, 1},
		{"inverted", Item{Arrival: 2, Departure: 1, Size: v(0.5)}, 1},
		{"wrong dim", Item{Arrival: 0, Departure: 1, Size: v(0.5)}, 2},
		{"negative size", Item{Arrival: 0, Departure: 1, Size: v(-0.1)}, 1},
		{"oversize", Item{Arrival: 0, Departure: 1, Size: v(1.5)}, 1},
	}
	for _, c := range cases {
		if err := c.it.Validate(c.d); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestListAddAndValidate(t *testing.T) {
	l := NewList(2)
	l.Add(0, 1, v(0.5, 0.5))
	l.Add(0, 2, v(0.25, 0.75))
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.Items[0].ID == l.Items[1].ID {
		t.Error("Add should assign distinct IDs")
	}
	if l.Items[0].SeqNo >= l.Items[1].SeqNo {
		t.Error("SeqNo should increase with insertion order")
	}
}

func TestListValidateErrors(t *testing.T) {
	if err := NewList(0).Validate(); err == nil {
		t.Error("zero dim: want error")
	}
	if err := NewList(1).Validate(); err == nil {
		t.Error("empty list: want error")
	}
	l := NewList(1)
	l.Add(0, 1, v(0.5))
	l.Items = append(l.Items, Item{ID: 0, Arrival: 0, Departure: 1, Size: v(0.5)})
	if err := l.Validate(); err == nil {
		t.Error("duplicate id: want error")
	}
}

func TestNormalize(t *testing.T) {
	l := NewList(1)
	l.Items = []Item{
		{ID: 7, Arrival: 0, Departure: 1, Size: v(0.5)},
		{ID: 3, Arrival: 0, Departure: 1, Size: v(0.5)},
	}
	if err := l.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if l.Items[0].SeqNo != 0 || l.Items[1].SeqNo != 1 {
		t.Errorf("SeqNos = %d,%d", l.Items[0].SeqNo, l.Items[1].SeqNo)
	}
	l.Items[1].ID = 7
	if err := l.Normalize(); err == nil {
		t.Error("duplicate id: want error")
	}
}

func TestDurationStats(t *testing.T) {
	l := NewList(1)
	l.Add(0, 2, v(0.5))  // duration 2
	l.Add(1, 11, v(0.5)) // duration 10
	l.Add(3, 4, v(0.5))  // duration 1
	if got := l.MinDuration(); got != 1 {
		t.Errorf("MinDuration = %v", got)
	}
	if got := l.MaxDuration(); got != 10 {
		t.Errorf("MaxDuration = %v", got)
	}
	if got := l.Mu(); got != 10 {
		t.Errorf("Mu = %v", got)
	}
	empty := NewList(1)
	if empty.Mu() != 0 || empty.MinDuration() != 0 || empty.MaxDuration() != 0 {
		t.Error("empty list stats should be 0")
	}
}

func TestSpanAndHull(t *testing.T) {
	l := NewList(1)
	l.Add(0, 2, v(0.5))
	l.Add(5, 7, v(0.5)) // gap [2,5)
	if got := l.Span(); got != 4 {
		t.Errorf("Span = %v, want 4", got)
	}
	h := l.Hull()
	if h.Lo != 0 || h.Hi != 7 {
		t.Errorf("Hull = %v", h)
	}
}

func TestTotalSizeAndLoadAt(t *testing.T) {
	l := NewList(2)
	l.Add(0, 2, v(0.5, 0.1))
	l.Add(1, 3, v(0.2, 0.6))
	total := l.TotalSize()
	if !total.Equal(v(0.7, 0.7), 1e-12) {
		t.Errorf("TotalSize = %v", total)
	}
	if got := l.LoadAt(0.5); !got.Equal(v(0.5, 0.1), 1e-12) {
		t.Errorf("LoadAt(0.5) = %v", got)
	}
	if got := l.LoadAt(1.5); !got.Equal(v(0.7, 0.7), 1e-12) {
		t.Errorf("LoadAt(1.5) = %v", got)
	}
	if got := l.LoadAt(2.5); !got.Equal(v(0.2, 0.6), 1e-12) {
		t.Errorf("LoadAt(2.5) = %v", got)
	}
	if got := l.LoadAt(10); !got.IsZero() {
		t.Errorf("LoadAt(10) = %v", got)
	}
}

func TestActiveAt(t *testing.T) {
	l := NewList(1)
	l.Add(0, 2, v(0.5))
	l.Add(1, 3, v(0.5))
	got := l.ActiveAt(1.5)
	if len(got) != 2 {
		t.Fatalf("ActiveAt(1.5) = %d items", len(got))
	}
	if got[0].SeqNo > got[1].SeqNo {
		t.Error("ActiveAt not in SeqNo order")
	}
}

func TestSortedByArrival(t *testing.T) {
	l := NewList(1)
	l.Add(5, 6, v(0.1))
	l.Add(0, 1, v(0.2))
	l.Add(0, 2, v(0.3)) // same arrival as previous, later SeqNo
	s := l.SortedByArrival()
	if s[0].Arrival != 0 || s[1].Arrival != 0 || s[2].Arrival != 5 {
		t.Fatalf("sort order wrong: %v", s)
	}
	if s[0].SeqNo > s[1].SeqNo {
		t.Error("ties must break by SeqNo")
	}
	// Original untouched.
	if l.Items[0].Arrival != 5 {
		t.Error("SortedByArrival mutated receiver")
	}
}

func TestClone(t *testing.T) {
	l := NewList(1)
	l.Add(0, 1, v(0.5))
	c := l.Clone()
	c.Items[0].Size[0] = 0.9
	c.Items[0].Arrival = 42
	if l.Items[0].Size[0] != 0.5 || l.Items[0].Arrival != 0 {
		t.Error("Clone shares state with original")
	}
}

func TestScaleDurations(t *testing.T) {
	l := NewList(1)
	l.Add(1, 3, v(0.5)) // duration 2
	l.ScaleDurations(2.5)
	if got := l.Items[0].Departure; got != 6 {
		t.Errorf("Departure = %v, want 6", got)
	}
	if l.Items[0].Arrival != 1 {
		t.Error("ScaleDurations must not move arrivals")
	}
}

func TestTimeSpaceUtilization(t *testing.T) {
	l := NewList(2)
	l.Add(0, 2, v(0.5, 0.25)) // ‖s‖∞=0.5, ℓ=2 -> 1.0
	l.Add(0, 4, v(0.1, 0.3))  // ‖s‖∞=0.3, ℓ=4 -> 1.2
	if got := l.TimeSpaceUtilization(); math.Abs(got-2.2) > 1e-12 {
		t.Errorf("TimeSpaceUtilization = %v, want 2.2", got)
	}
}

// Property: span ≤ hull length, and span ≥ max single duration.
func TestSpanProperties(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		l := NewList(1)
		for i := 0; i < n; i++ {
			a := r.Float64() * 50
			l.Add(a, a+0.1+r.Float64()*10, v(r.Float64()))
		}
		sp := l.Span()
		return sp <= l.Hull().Length()+1e-9 && sp >= l.MaxDuration()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LoadAt(t) summed over sampled times is consistent with activity:
// each component of LoadAt is ≤ TotalSize's component.
func TestLoadAtBounded(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func(nRaw uint8, tRaw uint16) bool {
		n := int(nRaw%20) + 1
		l := NewList(2)
		for i := 0; i < n; i++ {
			a := r.Float64() * 50
			l.Add(a, a+0.1+r.Float64()*10, v(r.Float64(), r.Float64()))
		}
		tt := float64(tRaw) / 1000 * 60
		load := l.LoadAt(tt)
		total := l.TotalSize()
		for j := range load {
			if load[j] > total[j]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
