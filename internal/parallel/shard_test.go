package parallel

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunVisitsEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 1000
		var visits [n]atomic.Int32
		err := Run(n, func(_ context.Context, i int) error {
			visits[i].Add(1)
			return nil
		}, RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if v := visits[i].Load(); v != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, v)
			}
		}
	}
}

func TestRunStealsAcrossUnbalancedBlocks(t *testing.T) {
	// Make the first block's shards vastly more expensive than the rest: with
	// stealing, other workers must take over part of worker 0's block. We can
	// only assert completion + exactly-once here (timing is not observable),
	// but the skew exercises the steal path under -race.
	const n = 256
	var visits [n]atomic.Int32
	err := Run(n, func(_ context.Context, i int) error {
		if i < n/4 {
			// Busy-spin a little so block 0 stays non-empty while others drain.
			for j := 0; j < 10_000; j++ {
				_ = math.Sqrt(float64(j))
			}
		}
		visits[i].Add(1)
		return nil
	}, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if visits[i].Load() != 1 {
			t.Fatalf("shard %d ran %d times", i, visits[i].Load())
		}
	}
}

func TestMapShardsDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int64 {
		out, err := MapShards(512, func(_ context.Context, i int) (int64, error) {
			return Derive(99, int64(i), int64(i*i)), nil
		}, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0), 32} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d differs", w, i)
			}
		}
	}
}

func TestRunCapturesPanics(t *testing.T) {
	err := Run(64, func(_ context.Context, i int) error {
		if i == 17 {
			panic("kaboom")
		}
		return nil
	}, RunOptions{Workers: 4})
	if err == nil {
		t.Fatal("want error from panicking shard")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Shard != 17 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Shard:%d Value:%v stackLen:%d}", pe.Shard, pe.Value, len(pe.Stack))
	}
}

func TestRunPanicDoesNotKillOtherShards(t *testing.T) {
	// A panic must cancel outstanding work and surface as an error — not crash
	// the process or deadlock the pool.
	var completed atomic.Int64
	err := Run(100, func(_ context.Context, i int) error {
		if i == 0 {
			panic("first shard dies")
		}
		completed.Add(1)
		return nil
	}, RunOptions{Workers: 2})
	if err == nil {
		t.Fatal("want error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := Run(1_000_000, func(_ context.Context, i int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		return nil
	}, RunOptions{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() > 100_000 {
		t.Errorf("cancellation did not stop work early (%d calls)", calls.Load())
	}
}

func TestRunShardContextCancelledOnFailure(t *testing.T) {
	// The context handed to shard functions must be cancelled once any shard
	// fails, so long-running shards can bail out.
	boom := errors.New("boom")
	started := make(chan struct{})
	err := Run(2, func(ctx context.Context, i int) error {
		if i == 0 {
			<-started // wait until shard 1 is running
			return boom
		}
		close(started)
		<-ctx.Done() // must unblock when shard 0 fails
		return nil
	}, RunOptions{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunProgressMonotone(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	err := Run(100, func(_ context.Context, i int) error { return nil },
		RunOptions{Workers: 4, OnProgress: func(done, total int) {
			if total != 100 {
				t.Errorf("total = %d, want 100", total)
			}
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 100 {
		t.Fatalf("progress fired %d times, want 100", len(seen))
	}
	// done values are the atomic post-increment, so the multiset must be
	// exactly 1..100 (each value once), though callback order may interleave.
	got := make(map[int]bool, len(seen))
	for _, d := range seen {
		if got[d] {
			t.Fatalf("progress value %d reported twice", d)
		}
		got[d] = true
	}
	for d := 1; d <= 100; d++ {
		if !got[d] {
			t.Fatalf("progress value %d missing", d)
		}
	}
}

func TestRunEdgeCases(t *testing.T) {
	if err := Run(0, func(context.Context, int) error { return nil }, RunOptions{}); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := Run(-1, func(context.Context, int) error { return nil }, RunOptions{}); err == nil {
		t.Error("n=-1: want error")
	}
	// n=0 with a cancelled context surfaces the cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Run(0, func(context.Context, int) error { return nil }, RunOptions{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("n=0 cancelled: err = %v", err)
	}
}

func TestDeriveProperties(t *testing.T) {
	// Pure and label-order sensitive.
	if Derive(1, 2, 3) != Derive(1, 2, 3) {
		t.Error("Derive must be pure")
	}
	if Derive(1, 2, 3) == Derive(1, 3, 2) {
		t.Error("Derive must be order-sensitive")
	}
	if Derive(1) == Derive(2) {
		t.Error("different bases must give different streams")
	}
	// No collisions across a realistic shard grid.
	seen := make(map[int64]bool)
	for cell := int64(0); cell < 20; cell++ {
		for inst := int64(0); inst < 500; inst++ {
			s := Derive(7, cell, inst)
			if seen[s] {
				t.Fatalf("collision at (%d, %d)", cell, inst)
			}
			seen[s] = true
		}
	}
	// Chaining one label at a time equals the variadic form, so hierarchies
	// can derive level by level.
	if Derive(Derive(5, 1), 2) != Derive(5, 1, 2) {
		t.Error("Derive must chain: Derive(Derive(s,a),b) == Derive(s,a,b)")
	}
}

func TestConcurrentRunsShareNothing(t *testing.T) {
	// Several independent Run invocations in flight at once: exercises the
	// scheduler's freedom from package-level state under -race.
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			out, err := MapShards(200, func(_ context.Context, i int) (int64, error) {
				return Derive(int64(r), int64(i)), nil
			}, RunOptions{Workers: 3})
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range out {
				if v != Derive(int64(r), int64(i)) {
					t.Errorf("run %d index %d corrupted", r, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func BenchmarkRunOverhead(b *testing.B) {
	// Scheduling cost per shard with a no-op body.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Run(1024, func(context.Context, int) error { return nil }, RunOptions{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
