package adversary

import (
	"fmt"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// Instance is an adversarial instance plus its certificate.
type Instance struct {
	// Name identifies the construction and its parameters.
	Name string
	// List is the item sequence.
	List *item.List
	// OPTUpper is a constructive upper bound on OPT(List): the cost of an
	// explicit feasible offline packing described in the corresponding proof.
	OPTUpper float64
	// TargetPolicy is the algorithm the construction is designed against
	// ("AnyFit" when it applies to the whole family).
	TargetPolicy string
	// AsymptoticRatio is the competitive-ratio lower bound the construction
	// approaches as its size parameter grows (e.g. (μ+1)d for Theorem 5).
	AsymptoticRatio float64
	// ExpectedBins is the number of bins the proof argues the target
	// algorithm opens (0 when not applicable).
	ExpectedBins int
}

// MeasuredRatio returns cost/OPTUpper — a certified lower bound on the
// algorithm's competitive ratio, since OPTUpper ≥ OPT.
func (in *Instance) MeasuredRatio(cost float64) float64 { return cost / in.OPTUpper }

// arrivalSlack is how long before a departure "just before" arrivals are
// scheduled (the Theorem 5 items of R₁ arrive "just before any items of R₀
// depart").
const arrivalSlack = 1e-3

// Theorem5 builds the adversarial sequence of Theorem 5, against which every
// Any Fit packing algorithm has ratio approaching (μ+1)d as k→∞.
//
// Structure (with ε = 1/(2d²k), ε′ = ε/4, satisfying ε>ε′, d²εk<1, dε>2ε′
// and ε(1+d)<1):
//
//   - R₀: 2dk items at time 0, active [0,1), arriving in index order.
//     Even-indexed items (group G₀) have size (dε−ε′)·1^d. Odd-indexed items
//     in group G_i have size (1−dε) in dimension i and ε elsewhere.
//   - R₁: dk items of size ε′·1^d arriving just before R₀ departs, active
//     for duration μ.
//
// The alternation forces any Any Fit algorithm to open dk bins, each ending
// up loaded at exactly 1 in one dimension once its R₁ item lands, so all dk
// bins stay open for ≈ μ+1. The optimum packs G₀∪R₁ into one bin and the
// group items into k bins: OPT ≤ k + 1 + μ.
func Theorem5(d, k int, mu float64) (*Instance, error) {
	if d < 1 || k < 2 {
		return nil, fmt.Errorf("adversary: Theorem5 needs d >= 1, k >= 2 (got d=%d k=%d)", d, k)
	}
	if mu < 1 {
		return nil, fmt.Errorf("adversary: Theorem5 needs mu >= 1 (got %g)", mu)
	}
	eps := 1.0 / (2 * float64(d*d) * float64(k))
	epsP := eps / 4

	l := item.NewList(d)
	// R₀: labels 1..2dk in arrival order. Odd label 2m-1 belongs to group
	// ⌈m/k⌉; even labels to G₀.
	for label := 1; label <= 2*d*k; label++ {
		var size vector.Vector
		if label%2 == 0 {
			size = vector.Uniform(d, float64(d)*eps-epsP)
		} else {
			m := (label + 1) / 2
			group := (m-1)/k + 1 // 1-based dimension index
			size = vector.Uniform(d, eps)
			size[group-1] = 1 - float64(d)*eps
		}
		l.Add(0, 1, size)
	}
	// R₁: dk fillers arriving just before R₀ departs.
	a := 1 - arrivalSlack
	for i := 0; i < d*k; i++ {
		l.Add(a, a+mu, vector.Uniform(d, epsP))
	}

	return &Instance{
		Name:            fmt.Sprintf("Theorem5(d=%d,k=%d,mu=%g)", d, k, mu),
		List:            l,
		OPTUpper:        float64(k) + 1 + mu,
		TargetPolicy:    "AnyFit",
		AsymptoticRatio: (mu + 1) * float64(d),
		ExpectedBins:    d * k,
	}, nil
}

// Theorem6 builds the Next Fit lower-bound sequence: ratio approaching 2μd
// as k→∞.
//
// With ε′ = 1/(2dk) and ε = ε′/(4d) (so ε′ > 2dε and ε′dk < 1): 2dk items at
// time 0 in index order; even-indexed items (G₀) have size ε′·1^d and active
// interval [0,μ); odd-indexed items in G_i have size (1/2−dε) in dimension i
// and ε elsewhere, active [0,1). Next Fit opens 1+(k−1)d bins, each pinned
// open for μ by an even item; OPT ≤ μ + k/2.
func Theorem6(d, k int, mu float64) (*Instance, error) {
	if d < 1 || k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("adversary: Theorem6 needs d >= 1 and even k >= 2 (got d=%d k=%d)", d, k)
	}
	if mu < 1 {
		return nil, fmt.Errorf("adversary: Theorem6 needs mu >= 1 (got %g)", mu)
	}
	epsP := 1.0 / (2 * float64(d) * float64(k))
	eps := epsP / (4 * float64(d))

	l := item.NewList(d)
	for label := 1; label <= 2*d*k; label++ {
		if label%2 == 0 {
			l.Add(0, mu, vector.Uniform(d, epsP))
			continue
		}
		m := (label + 1) / 2
		group := (m-1)/k + 1
		size := vector.Uniform(d, eps)
		size[group-1] = 0.5 - float64(d)*eps
		l.Add(0, 1, size)
	}

	return &Instance{
		Name:            fmt.Sprintf("Theorem6(d=%d,k=%d,mu=%g)", d, k, mu),
		List:            l,
		OPTUpper:        mu + float64(k)/2,
		TargetPolicy:    "NextFit",
		AsymptoticRatio: 2 * mu * float64(d),
		ExpectedBins:    1 + (k-1)*d,
	}, nil
}

// Theorem8 builds the one-dimensional Move To Front lower-bound sequence:
// ratio approaching 2μ as n→∞.
//
// 4n items at time 0: odd-indexed items have size 1/2 and active interval
// [0,1); even-indexed items have size 1/(2n) and active interval [0,μ). Move
// To Front pairs each odd item with an even item in a fresh bin, opening 2n
// bins each held open for μ; OPT packs the even items into one bin (cost μ)
// and pairs the odd ones into n bins (cost 1 each): OPT ≤ μ + n. The same
// sequence also forces Next Fit to 2μ (Ren et al., Tang et al.).
func Theorem8(n int, mu float64) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("adversary: Theorem8 needs n >= 1 (got %d)", n)
	}
	if mu < 1 {
		return nil, fmt.Errorf("adversary: Theorem8 needs mu >= 1 (got %g)", mu)
	}
	l := item.NewList(1)
	for label := 1; label <= 4*n; label++ {
		if label%2 == 1 {
			l.Add(0, 1, vector.Of(0.5))
		} else {
			l.Add(0, mu, vector.Of(1/(2*float64(n))))
		}
	}
	return &Instance{
		Name:            fmt.Sprintf("Theorem8(n=%d,mu=%g)", n, mu),
		List:            l,
		OPTUpper:        mu + float64(n),
		TargetPolicy:    "MoveToFront",
		AsymptoticRatio: 2 * mu,
		ExpectedBins:    2 * n,
	}, nil
}

// BestFitPillars builds a degradation family for Best Fit (our substitute for
// the Li–Tang–Cai construction cited by Theorem 7; see DESIGN.md §5).
//
// R "pillars" arrive at time 0: pillar i has size 0.55 + (R−i)·(0.2/R) — any
// two exceed capacity, so every algorithm opens R bins — and departs at time
// i. At time i−1/2 a "sliver" of size 0.2/R arrives with duration L. For
// Best Fit the most-loaded fitting bin at that moment is always pillar i's
// bin (the largest remaining pillar), so each sliver is stranded alone in
// its pillar's bin for ≈ L: cost ≈ R·L. First Fit and Move To Front instead
// consolidate the slivers into one bin. The optimum packs all slivers
// together: OPT ≤ (L+R−1) + R(R+1)/2.
//
// With L = R² the Best Fit ratio grows ≈ 2R/3 without bound along the
// family, certifying unbounded degradation and reproducing the qualitative
// Theorem 7 claim (the cited fixed-μ construction is not in this paper).
func BestFitPillars(r int, l float64) (*Instance, error) {
	if r < 2 {
		return nil, fmt.Errorf("adversary: BestFitPillars needs R >= 2 (got %d)", r)
	}
	if l < 1 {
		return nil, fmt.Errorf("adversary: BestFitPillars needs L >= 1 (got %g)", l)
	}
	rf := float64(r)
	tau := 0.2 / rf
	lst := item.NewList(1)
	for i := 1; i <= r; i++ {
		lst.Add(0, float64(i), vector.Of(0.55+float64(r-i)*0.2/rf))
	}
	for i := 1; i <= r; i++ {
		a := float64(i) - 0.5
		lst.Add(a, a+l, vector.Of(tau))
	}
	optUpper := (l + rf - 1) + rf*(rf+1)/2
	// Best Fit strands sliver i in pillar i's bin, so bin i spans
	// [0, i-1/2+L); the exact cost is Σ_{i=1..R} (L+i-1/2) = R·L + R²/2.
	bfCost := rf*l + rf*rf/2
	return &Instance{
		Name:            fmt.Sprintf("BestFitPillars(R=%d,L=%g)", r, l),
		List:            lst,
		OPTUpper:        optUpper,
		TargetPolicy:    "BestFit",
		AsymptoticRatio: bfCost / optUpper,
		ExpectedBins:    r,
	}, nil
}
