package core

import (
	"math"
	"strings"
	"testing"

	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// roundTripPolicies enumerates every constructible policy shape the registry
// can produce: the seven standard policies, the Best/Worst Fit load-measure
// variants (including non-integer and +Inf p), and HarmonicFit sizes.
func roundTripPolicies(seed int64) []Policy {
	ps := StandardPolicies(seed)
	for _, m := range []LoadMeasure{
		SumLoad(), PNormLoad(1), PNormLoad(2), PNormLoad(2.25), PNormLoad(2.2),
		PNormLoad(3), PNormLoad(10.125), PNormLoad(math.Inf(1)),
	} {
		ps = append(ps, NewBestFit(m), NewWorstFit(m))
	}
	for _, k := range []int{1, 3, 8} {
		ps = append(ps, NewHarmonicFit(k))
	}
	ps = append(ps, FragmentationAwarePolicies(seed)...)
	return ps
}

// TestRegistryRoundTrip is the registry property test: for every
// constructible policy p, NewPolicy(p.Name(), seed) must return a policy with
// the same Name() and identical decisions on a fixed sample trace. This is
// what makes Result.Algorithm a faithful serialisation key — a trace replayed
// from an archived result reconstructs the exact policy that produced it.
func TestRegistryRoundTrip(t *testing.T) {
	const seed = 7
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 400, Mu: 50, T: 200, B: 40}, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range roundTripPolicies(seed) {
		name := p.Name()
		if seen[name] {
			continue // e.g. BestFit-Lp+Inf and BestFit both canonicalise to "BestFit"
		}
		seen[name] = true
		rebuilt, err := NewPolicy(name, seed)
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
			continue
		}
		if rebuilt.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, rebuilt.Name())
			continue
		}
		a := mustSimulate(t, l, p)
		b := mustSimulate(t, l, rebuilt)
		resultsEqual(t, "round-trip "+name, a, b)
	}
}

// primePolicy runs a policy through a steady-state prefix: several bins are
// opened and partially loaded via the real OnPack path, so later Select calls
// exercise the primed state (recency lists, class indexes, ...). Returns the
// open slice a Select would receive.
func primePolicy(t *testing.T, p Policy) []*Bin {
	t.Helper()
	p.Reset()
	open := make([]*Bin, 0, 8)
	for i := 0; i < 8; i++ {
		b := newBin(i, 2, 0)
		// Mixed loads so load-driven policies have real argmax/argmin work.
		load := 0.1 + 0.08*float64(i)
		if err := b.pack(1000+i, vector.Of(load, load/2)); err != nil {
			t.Fatal(err)
		}
		b.openIdx = len(open)
		open = append(open, b)
		p.OnPack(Request{ID: 1000 + i, Size: vector.Of(load, load/2)}, b, true)
	}
	return open
}

// TestSelectSteadyStateAllocs pins the hot path: once a run is in steady
// state, Select must not allocate for any of the seven standard policies.
// This is the regression fence for the per-Select map rebuild MoveToFront
// used to do (and for any future policy tempted to build scratch state per
// decision).
func TestSelectSteadyStateAllocs(t *testing.T) {
	for _, p := range StandardPolicies(1) {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			open := primePolicy(t, p)
			req := Request{ID: 5000, Size: vector.Of(0.05, 0.05)}
			// Warm once: lazily-grown internal state (if any) settles here.
			p.Select(req, open)
			allocs := testing.AllocsPerRun(100, func() {
				p.Select(req, open)
			})
			if allocs != 0 {
				t.Errorf("%s.Select allocates %v per call in steady state, want 0", p.Name(), allocs)
			}
		})
	}
}

// TestSimulateSteadyStateEventAllocs pins the engine end to end: on the churn
// family (one pack + one departure per churn item against bins already at k
// active items), the marginal cost of an extra churn item must be
// allocation-free — the whole point of the incremental load accounting and
// scratch reuse. Comparing two run lengths cancels the fixed setup
// allocations (bins, maps, result slices).
func TestSimulateSteadyStateEventAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting run")
	}
	const bins, k = 4, 16
	run := func(churn int, p Policy) float64 {
		l := churnHotPathInstance(2, bins, k, churn)
		return testing.AllocsPerRun(10, func() {
			if _, err := Simulate(l, p); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, name := range []string{"FirstFit", "MoveToFront", "BestFit"} {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		short := run(64, p)
		long := run(192, p)
		// 128 extra churn items = 256 extra steady-state events. Allow the
		// slack of amortised slice growth (placements, departure queue).
		perEvent := (long - short) / 256
		if perEvent > 0.1 {
			t.Errorf("%s: %.2f allocs per steady-state event (short=%v long=%v), want ~0",
				name, perEvent, short, long)
		}
	}
}

// TestPolicySpellingsAllParse pins the -list help text to the parser: every
// spelling advertised by PolicySpellings must be accepted by NewPolicy, and
// the listing must be sorted by canonical name (the CLI contract since the
// registry gained aliases). Parameter placeholders (<p>, <K>) are checked
// with representative values.
func TestPolicySpellingsAllParse(t *testing.T) {
	lines := PolicySpellings()
	var prev string
	for i, line := range lines {
		head := strings.TrimSpace(strings.SplitN(line, "(", 2)[0])
		var names []string
		for _, f := range strings.Split(head, "|") {
			names = append(names, strings.TrimSpace(f))
		}
		// All lines except the parameterised HarmonicFit tail are sorted by
		// canonical (first) spelling.
		if i < len(lines)-1 {
			if prev != "" && names[0] < prev {
				t.Errorf("spellings out of order: %q after %q", names[0], prev)
			}
			prev = names[0]
		}
		for _, n := range names {
			n = strings.ReplaceAll(n, "<p>", "2.5")
			n = strings.ReplaceAll(n, "<K>", "4")
			if _, err := NewPolicy(n, 1); err != nil {
				t.Errorf("advertised spelling %q rejected: %v", n, err)
			}
		}
	}
	// And every parenthesised extra spelling parses too.
	for _, extra := range []string{"BestFit-L1", "BestFit-Lp3", "WorstFit-L1", "WorstFit-Lp1.5", "HarmonicFit-1"} {
		if _, err := NewPolicy(extra, 1); err != nil {
			t.Errorf("documented form %q rejected: %v", extra, err)
		}
	}
}

// TestRegistryRejectsDuplicateSpellings checks the registration-time guard:
// two rows claiming one spelling (any case) must fail index construction
// instead of silently shadowing each other.
func TestRegistryRejectsDuplicateSpellings(t *testing.T) {
	dup := []policySpec{
		{canonical: "AlphaFit", aliases: []string{"af"}, make: func(int64) Policy { return NewFirstFit() }},
		{canonical: "BetaFit", aliases: []string{"AF"}, make: func(int64) Policy { return NewLastFit() }},
	}
	if _, err := buildSpellingIndex(dup); err == nil {
		t.Fatal("duplicate alias spelling accepted")
	}
	dup[1].aliases = nil
	dup[1].canonical = "alphafit"
	if _, err := buildSpellingIndex(dup); err == nil {
		t.Fatal("duplicate canonical spelling accepted")
	}
	if _, err := buildSpellingIndex(policyTable); err != nil {
		t.Fatalf("real table rejected: %v", err)
	}
	// A row may repeat its own spelling (self-alias); that is deduplicated,
	// not an error.
	self := []policySpec{{canonical: "GammaFit", aliases: []string{"gammafit"}, make: func(int64) Policy { return NewFirstFit() }}}
	if _, err := buildSpellingIndex(self); err != nil {
		t.Fatalf("self-alias rejected: %v", err)
	}
}

// TestPolicySpellingsDeduplicated checks the -list contract the CLIs print:
// no spelling appears twice anywhere in the listing (aliases that restate a
// canonical name are dropped), and no two lines share a canonical name.
func TestPolicySpellingsDeduplicated(t *testing.T) {
	seen := map[string]string{}
	for _, line := range PolicySpellings() {
		head := strings.TrimSpace(strings.SplitN(line, "(", 2)[0])
		for _, f := range strings.Split(head, "|") {
			sp := strings.ToLower(strings.TrimSpace(f))
			if sp == "" {
				t.Errorf("empty spelling in line %q", line)
				continue
			}
			if prev, dup := seen[sp]; dup {
				t.Errorf("spelling %q appears in %q and %q", sp, prev, line)
			}
			seen[sp] = line
		}
	}
}
