package workload

import (
	"testing"
)

func spikeCfg() SpikeConfig {
	return SpikeConfig{
		D: 2, Horizon: 200, BaseRate: 0.5,
		Spikes: 4, SpikeWidth: 5, SpikeFactor: 10,
		MeanDuration: 5, MinDuration: 1, MaxDuration: 40,
		MaxSize: 0.5,
	}
}

func TestSpikeValid(t *testing.T) {
	l, err := Spike(spikeCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if l.Len() < 50 {
		t.Errorf("expected substantial trace, got %d items", l.Len())
	}
}

func TestSpikeValidation(t *testing.T) {
	bad := []SpikeConfig{
		{},
		{D: 1, Horizon: 0, BaseRate: 1, MeanDuration: 1, MinDuration: 1, MaxDuration: 2, MaxSize: 0.5},
		{D: 1, Horizon: 10, BaseRate: 0, MeanDuration: 1, MinDuration: 1, MaxDuration: 2, MaxSize: 0.5},
		{D: 1, Horizon: 10, BaseRate: 1, Spikes: 2, SpikeWidth: 0, SpikeFactor: 2, MeanDuration: 1, MinDuration: 1, MaxDuration: 2, MaxSize: 0.5},
		{D: 1, Horizon: 10, BaseRate: 1, Spikes: 2, SpikeWidth: 1, SpikeFactor: 1, MeanDuration: 1, MinDuration: 1, MaxDuration: 2, MaxSize: 0.5},
		{D: 1, Horizon: 10, BaseRate: 1, MeanDuration: 5, MinDuration: 1, MaxDuration: 2, MaxSize: 0.5},
		{D: 1, Horizon: 10, BaseRate: 1, MeanDuration: 1, MinDuration: 1, MaxDuration: 2, MaxSize: 0},
		{D: 1, Horizon: 10, BaseRate: 1, MeanDuration: 1, MinDuration: 1, MaxDuration: 2, MaxSize: 1.5},
	}
	for i, c := range bad {
		if _, err := Spike(c, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSpikeConcentratesArrivals(t *testing.T) {
	cfg := spikeCfg()
	l, err := Spike(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Arrival density inside spike windows should far exceed outside.
	period := cfg.Horizon / float64(cfg.Spikes)
	var inside, outside int
	for _, it := range l.Items {
		off := it.Arrival - float64(int(it.Arrival/period))*period
		if off < cfg.SpikeWidth {
			inside++
		} else {
			outside++
		}
	}
	insideTime := float64(cfg.Spikes) * cfg.SpikeWidth
	outsideTime := cfg.Horizon - insideTime
	densityIn := float64(inside) / insideTime
	densityOut := float64(outside) / outsideTime
	if densityIn < 3*densityOut {
		t.Errorf("spike density %.2f not >> background %.2f", densityIn, densityOut)
	}
}

func TestSpikeDeterminism(t *testing.T) {
	a, _ := Spike(spikeCfg(), 5)
	b, _ := Spike(spikeCfg(), 5)
	if a.Len() != b.Len() {
		t.Fatal("same seed, different length")
	}
	for i := range a.Items {
		if a.Items[i].Arrival != b.Items[i].Arrival {
			t.Fatal("same seed, different arrivals")
		}
	}
}

func TestSpikeNoSpikesIsPoisson(t *testing.T) {
	cfg := spikeCfg()
	cfg.Spikes = 0
	cfg.SpikeWidth = 0
	cfg.SpikeFactor = 0
	l, err := Spike(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~ BaseRate*Horizon = 100 arrivals expected.
	if l.Len() < 50 || l.Len() > 200 {
		t.Errorf("items = %d, want ~100", l.Len())
	}
}

func TestSpikeNeverEmpty(t *testing.T) {
	cfg := spikeCfg()
	cfg.Horizon = 0.0001
	cfg.BaseRate = 0.0001
	l, err := Spike(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() == 0 {
		t.Error("degenerate config produced empty trace")
	}
}
