package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDiskFaultsAbsorbedByteIdentical is the -disk-faults acceptance check:
// a run whose WAL syncs, snapshot writes, and directory fsyncs fail on
// schedule must absorb every planned fault (ride-out, skip, retry-later) and
// still print stdout byte-identical to a clean run — the disk weather is
// reported on stderr, never in the results.
func TestDiskFaultsAbsorbedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildChaos(t)
	base := append([]string{"-policy", "FirstFit", "-json", "-checkpoint-every", "32"}, chaosArgs...)

	clean, _, code := runChaos(t, bin, append(append([]string{}, base...), "-checkpoint-dir", t.TempDir())...)
	if code != 0 {
		t.Fatalf("clean run exited %d", code)
	}

	// Begin consumes the first few operations of each kind (WAL header, the
	// meta barrier, snapshot 0) and is rightly fatal there — a run that can't
	// establish durability must not start. These indices all land at runtime,
	// where the absorb machinery has to ride them out: WAL batch syncs,
	// checkpoint temp writes, snapshot renames' directory syncs.
	plan := "sync:5:eio,sync:6:enospc,syncdir:4:eio,write:8:enospc,sync:10:eio"
	faulty, stderr, code := runChaos(t, bin, append(append([]string{}, base...),
		"-checkpoint-dir", t.TempDir(), "-disk-faults", plan)...)
	if code != 0 {
		t.Fatalf("disk-fault run exited %d\nstderr: %s", code, stderr)
	}
	if faulty != clean {
		t.Fatalf("disk faults changed the results\n--- clean ---\n%s\n--- faulty ---\n%s", clean, faulty)
	}
	if !strings.Contains(stderr, "disk weather:") {
		t.Fatalf("no disk weather report on stderr:\n%s", stderr)
	}

	// A malformed plan is a usage error, not a crash.
	_, stderr, code = runChaos(t, bin, append(append([]string{}, base...),
		"-checkpoint-dir", t.TempDir(), "-disk-faults", "sync:0:eio")...)
	if code == 0 || !strings.Contains(stderr, "occurrence must be a positive integer") {
		t.Fatalf("bad plan: exit %d, stderr: %s", code, stderr)
	}

	// -disk-faults without -checkpoint-dir has nothing to inject into.
	_, stderr, code = runChaos(t, bin, append(append([]string{}, base...), "-disk-faults", "sync:2:eio")...)
	if code == 0 || !strings.Contains(stderr, "-checkpoint-dir") {
		t.Fatalf("disk faults without dir: exit %d, stderr: %s", code, stderr)
	}
}

// TestCompactKeepsResultShrinksWAL: -compact must leave stdout byte-identical
// to an uncompacted persisted run while the on-disk WAL ends up strictly
// smaller (the pre-snapshot prefix is truncated away).
func TestCompactKeepsResultShrinksWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildChaos(t)
	base := append([]string{"-policy", "FirstFit", "-json", "-checkpoint-every", "32"}, chaosArgs...)

	plainDir, compactDir := t.TempDir(), t.TempDir()
	plain, _, code := runChaos(t, bin, append(append([]string{}, base...), "-checkpoint-dir", plainDir)...)
	if code != 0 {
		t.Fatalf("plain run exited %d", code)
	}
	compacted, stderr, code := runChaos(t, bin, append(append([]string{}, base...),
		"-checkpoint-dir", compactDir, "-compact")...)
	if code != 0 {
		t.Fatalf("compacting run exited %d\nstderr: %s", code, stderr)
	}
	if compacted != plain {
		t.Fatalf("compaction changed the results\n--- plain ---\n%s\n--- compacted ---\n%s", plain, compacted)
	}
	if !strings.Contains(stderr, "compactions") {
		t.Fatalf("no compaction summary on stderr:\n%s", stderr)
	}
	pi, err := os.Stat(filepath.Join(plainDir, "wal.dvbp"))
	if err != nil {
		t.Fatal(err)
	}
	ci, err := os.Stat(filepath.Join(compactDir, "wal.dvbp"))
	if err != nil {
		t.Fatal(err)
	}
	if ci.Size() >= pi.Size() {
		t.Fatalf("compacted WAL is %d bytes, plain %d — nothing was reclaimed", ci.Size(), pi.Size())
	}

	// The compacted directory must still restore to the same results.
	restored, stderr, code := runChaos(t, bin, append(append([]string{}, base...),
		"-checkpoint-dir", compactDir, "-restore")...)
	if code != 0 {
		t.Fatalf("restore from compacted dir exited %d\nstderr: %s", code, stderr)
	}
	if restored != plain {
		t.Fatalf("restore from a compacted WAL diverged\n--- plain ---\n%s\n--- restored ---\n%s", plain, restored)
	}
}
