package core

import (
	"math"
	"strconv"
)

// LoadMeasure maps a bin's load vector to a scalar "how full" value. For
// d = 1 all measures coincide with the load itself; for d ≥ 2 the paper
// (Section 2.2) lists max load (L∞), sum of loads (L1) and Lp-norm loads as
// natural choices for Best Fit.
type LoadMeasure struct {
	name string
	eval func(*Bin) float64
}

// Name returns the measure's identifier ("Linf", "L1", "Lp2", "Lp2.25", ...).
func (m LoadMeasure) Name() string { return m.name }

// Eval applies the measure to a bin.
func (m LoadMeasure) Eval(b *Bin) float64 { return m.eval(b) }

// MaxLoad is w(R) = ‖s(R)‖∞ — the measure used in the paper's experiments
// for Best Fit (Section 7).
func MaxLoad() LoadMeasure {
	return LoadMeasure{name: "Linf", eval: (*Bin).LoadNorm}
}

// SumLoad is w(R) = ‖s(R)‖1.
func SumLoad() LoadMeasure {
	return LoadMeasure{name: "L1", eval: (*Bin).LoadSum}
}

// PNormLoad is w(R) = ‖s(R)‖p for finite p ≥ 1 (p = 1 coincides with
// SumLoad up to naming). p = +Inf is the max norm and maps to MaxLoad()
// explicitly, so the returned measure carries the canonical "Linf" name and
// `BestFit-Lp+Inf` round-trips as plain "BestFit". NaN and p < 1 panic.
//
// The name renders p with the shortest representation that parses back to
// the same float64 (strconv 'g', precision -1): PNormLoad(2.25) is "Lp2.25",
// not a truncated "Lp2.2" that would silently rebuild a different policy via
// NewPolicy(measureName).
func PNormLoad(p float64) LoadMeasure {
	if p < 1 || math.IsNaN(p) {
		panic("core: PNormLoad requires p >= 1")
	}
	if math.IsInf(p, 1) {
		return MaxLoad()
	}
	return LoadMeasure{
		name: "Lp" + strconv.FormatFloat(p, 'g', -1, 64),
		eval: func(b *Bin) float64 { return b.LoadPNorm(p) },
	}
}

// BestFit packs an arriving item into the most-loaded open bin that can hold
// it, under a configurable load measure (Section 2.2). Its competitive ratio
// is unbounded even for d = 1 (Theorem 7, citing Li–Tang–Cai), yet its
// average-case behaviour is close to First Fit (Section 7).
type BestFit struct {
	measure LoadMeasure
}

// NewBestFit returns a Best Fit policy with the given load measure; the
// paper's experiments use MaxLoad().
func NewBestFit(m LoadMeasure) *BestFit { return &BestFit{measure: m} }

// Name implements Policy.
func (bf *BestFit) Name() string {
	if bf.measure.name == "Linf" {
		return "BestFit"
	}
	return "BestFit-" + bf.measure.name
}

// Reset implements Policy.
func (*BestFit) Reset() {}

// Select implements Policy: argmax load among fitting bins; ties break toward
// the earliest-opened bin so runs are deterministic.
func (bf *BestFit) Select(req Request, open []*Bin) *Bin {
	var best *Bin
	bestLoad := math.Inf(-1)
	for _, b := range open {
		if !b.Fits(req.Size) {
			continue
		}
		if l := bf.measure.Eval(b); l > bestLoad {
			best, bestLoad = b, l
		}
	}
	return best
}

// OnPack implements Policy.
func (*BestFit) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*BestFit) OnClose(*Bin) {}

// WorstFit packs an arriving item into the least-loaded open bin that can
// hold it (Section 7). It spreads load, which the paper observes gives the
// worst average-case cost of the studied family.
type WorstFit struct {
	measure LoadMeasure
}

// NewWorstFit returns a Worst Fit policy with the given load measure.
func NewWorstFit(m LoadMeasure) *WorstFit { return &WorstFit{measure: m} }

// Name implements Policy.
func (wf *WorstFit) Name() string {
	if wf.measure.name == "Linf" {
		return "WorstFit"
	}
	return "WorstFit-" + wf.measure.name
}

// Reset implements Policy.
func (*WorstFit) Reset() {}

// Select implements Policy: argmin load among fitting bins; ties break toward
// the earliest-opened bin.
func (wf *WorstFit) Select(req Request, open []*Bin) *Bin {
	var worst *Bin
	worstLoad := math.Inf(1)
	for _, b := range open {
		if !b.Fits(req.Size) {
			continue
		}
		if l := wf.measure.Eval(b); l < worstLoad {
			worst, worstLoad = b, l
		}
	}
	return worst
}

// OnPack implements Policy.
func (*WorstFit) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*WorstFit) OnClose(*Bin) {}
