package core

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// seqObserver records every callback as a compact event string, and every
// AfterSelect separately for the SelectObserver seam.
type seqObserver struct {
	events  []string
	selects []string
}

func (o *seqObserver) BeforePack(req Request, open []*Bin) {
	o.events = append(o.events, fmt.Sprintf("before:%d(open=%d)", req.ID, len(open)))
}

func (o *seqObserver) AfterPack(req Request, b *Bin, opened bool) {
	o.events = append(o.events, fmt.Sprintf("after:%d->bin%d(new=%v)", req.ID, b.ID, opened))
}

func (o *seqObserver) BinClosed(b *Bin, t float64) {
	o.events = append(o.events, fmt.Sprintf("closed:bin%d@%g", b.ID, t))
}

func (o *seqObserver) AfterSelect(req Request, chosen *Bin, fitChecks int) {
	c := "nil"
	if chosen != nil {
		c = fmt.Sprintf("bin%d", chosen.ID)
	}
	o.selects = append(o.selects, fmt.Sprintf("select:%d->%s(fits=%d)", req.ID, c, fitChecks))
}

// TestObserverCallbackOrdering pins the exact callback sequence on a
// hand-built instance: BeforePack -> AfterPack per item, with BinClosed
// delivered for departures at or before an arrival instant before that
// arrival's BeforePack, and remaining closes in departure order at drain.
func TestObserverCallbackOrdering(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.6)) // item 0: opens bin 0
	l.Add(0, 5, vector.Of(0.6))  // item 1: opens bin 1, departs first
	l.Add(6, 8, vector.Of(0.5))  // item 2: arrives after bin 1 closed, opens bin 2

	obs := &seqObserver{}
	if _, err := Simulate(l, NewFirstFit(), WithObserver(obs)); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"before:0(open=0)",
		"after:0->bin0(new=true)",
		"before:1(open=1)",
		"after:1->bin1(new=true)",
		"closed:bin1@5", // item 1 departs at 5 <= arrival 6: close precedes BeforePack
		"before:2(open=1)",
		"after:2->bin2(new=true)",
		"closed:bin2@8", // drain closes in departure order
		"closed:bin0@10",
	}
	if !reflect.DeepEqual(obs.events, want) {
		t.Errorf("callback sequence:\ngot  %v\nwant %v", obs.events, want)
	}

	wantSelects := []string{
		"select:0->nil(fits=0)", // no open bins to probe
		"select:1->nil(fits=1)", // bin 0 probed, does not fit
		"select:2->nil(fits=1)", // bin 0 probed (0.6+0.5 > 1)
	}
	if !reflect.DeepEqual(obs.selects, wantSelects) {
		t.Errorf("AfterSelect sequence:\ngot  %v\nwant %v", obs.selects, wantSelects)
	}
}

// TestObserverOrderingInvariants checks the pairing rules on a larger random
// workload: every BeforePack is immediately followed by its AfterPack, and
// close events never interleave a before/after pair.
func TestObserverOrderingInvariants(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 500, Mu: 20, T: 200, B: 100}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range StandardPolicies(9) {
		obs := &seqObserver{}
		res, err := Simulate(l, p, WithObserver(obs))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		var pending string // non-empty between a BeforePack and its AfterPack
		var packs, closes int
		for _, e := range obs.events {
			switch {
			case len(e) > 7 && e[:7] == "before:":
				if pending != "" {
					t.Fatalf("%s: BeforePack %q while %q still pending", p.Name(), e, pending)
				}
				pending = e
			case len(e) > 6 && e[:6] == "after:":
				if pending == "" {
					t.Fatalf("%s: AfterPack %q without BeforePack", p.Name(), e)
				}
				pending = ""
				packs++
			default:
				if pending != "" {
					t.Fatalf("%s: %q interleaved a before/after pair", p.Name(), e)
				}
				closes++
			}
		}
		if packs != l.Len() {
			t.Errorf("%s: %d AfterPack events, want %d", p.Name(), packs, l.Len())
		}
		if closes != res.BinsOpened {
			t.Errorf("%s: %d BinClosed events, want %d", p.Name(), closes, res.BinsOpened)
		}
		if len(obs.selects) != l.Len() {
			t.Errorf("%s: %d AfterSelect events, want %d", p.Name(), len(obs.selects), l.Len())
		}
	}
}

// TestObservedRunResultIdentical asserts that attaching an observer (with or
// without the SelectObserver extension) leaves the Result byte-identical to
// an unobserved run.
func TestObservedRunResultIdentical(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 600, Mu: 50, T: 300, B: 100}, 13)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(r *Result) []byte {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, p := range StandardPolicies(21) {
		plain, err := Simulate(l, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		observed, err := Simulate(l, p, WithObserver(&seqObserver{}))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		baseOnly, err := Simulate(l, p, WithObserver(BaseObserver{}))
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		want := encode(plain)
		if got := encode(observed); string(got) != string(want) {
			t.Errorf("%s: SelectObserver run differs from unobserved run", p.Name())
		}
		if got := encode(baseOnly); string(got) != string(want) {
			t.Errorf("%s: plain Observer run differs from unobserved run", p.Name())
		}
	}
}
