package persist

import (
	"fmt"
)

// CorruptionError describes one detected defect in a persisted file: a torn
// record, a failed checksum, an undecodable payload, or a semantic
// inconsistency (an event out of sequence, a snapshot disagreeing with the
// instance). Recovery returns the defects it tolerated in its report and
// wraps the ones it cannot get past.
type CorruptionError struct {
	// Run identifies whose data was damaged — the tenant/run label supplied
	// in Config.Label ("" when the caller runs a single anonymous run).
	// Multi-tenant recovery logs read it to say which tenant was truncated.
	Run string
	// Path is the offending file ("" for in-memory decodes).
	Path string
	// Offset is the byte offset of the defect within the file, -1 if unknown.
	Offset int64
	// Record is the zero-based record index of the defect, -1 if unknown.
	Record int
	// Reason is a human-readable description of the defect.
	Reason string
	// Err is the underlying cause, when one exists.
	Err error
}

// Error implements error.
func (e *CorruptionError) Error() string {
	s := "persist: corrupt"
	if e.Run != "" {
		s = fmt.Sprintf("persist: run %q: corrupt", e.Run)
	}
	if e.Path != "" {
		s += " " + e.Path
	}
	if e.Record >= 0 {
		s += fmt.Sprintf(" record %d", e.Record)
	}
	if e.Offset >= 0 {
		s += fmt.Sprintf(" at byte %d", e.Offset)
	}
	s += ": " + e.Reason
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptionError) Unwrap() error { return e.Err }

// corrupt builds a CorruptionError with no file position.
func corrupt(reason string, args ...any) *CorruptionError {
	return &CorruptionError{Offset: -1, Record: -1, Reason: fmt.Sprintf(reason, args...)}
}
