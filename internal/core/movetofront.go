package core

// MoveToFront maintains the open bins in most-recently-used order: an
// arriving item is packed into the first bin in that order which can hold it,
// and the receiving bin (new or existing) immediately moves to the front
// (Section 2.2). Theorem 2 bounds its competitive ratio by (2μ+1)d + 1 —
// for d = 1, 2μ+2, nearly settling the Kamali–López-Ortiz conjecture — and
// Theorem 8 bounds it below by max{2μ, (μ+1)d}.
//
// The recency list is an intrusive doubly-linked list threaded through a node
// slice, indexed by bin ID via pos. OnPack promotes in O(1) (the old
// implementation scanned and shifted a slice, O(n) per pack) and OnClose
// unlinks in O(1); Select walks the list directly instead of rebuilding an
// ID→bin map per decision, so steady-state decisions are allocation-free.
type MoveToFront struct {
	nodes []mtfNode
	free  []int       // recycled node indices
	pos   map[int]int // open-bin ID -> node index
	head  int         // most recently used; -1 when no bin is open
}

// mtfNode is one recency-list entry. prev/next are node indices (-1 = none):
// indices into a slice keep the list compact and recyclable, where per-node
// heap allocation would defeat the zero-allocation goal.
type mtfNode struct {
	bin  *Bin
	prev int
	next int
}

// NewMoveToFront returns a Move To Front policy.
func NewMoveToFront() *MoveToFront {
	return &MoveToFront{pos: make(map[int]int), head: -1}
}

// Name implements Policy.
func (*MoveToFront) Name() string { return "MoveToFront" }

// Reset implements Policy.
func (mf *MoveToFront) Reset() {
	mf.nodes = mf.nodes[:0]
	mf.free = mf.free[:0]
	if mf.pos == nil {
		mf.pos = make(map[int]int)
	} else {
		clear(mf.pos)
	}
	mf.head = -1
}

// Select implements Policy: scan bins in recency order; first fit wins. The
// recency list mirrors the open set exactly (OnPack adds, OnClose removes),
// so the open slice is only consulted for its emptiness.
func (mf *MoveToFront) Select(req Request, open []*Bin) *Bin {
	if len(open) == 0 {
		return nil
	}
	for i := mf.head; i != -1; i = mf.nodes[i].next {
		if b := mf.nodes[i].bin; b.Fits(req.Size) {
			return b
		}
	}
	return nil
}

// OnPack implements Policy: the receiving bin becomes the leader (front of
// the recency list).
func (mf *MoveToFront) OnPack(_ Request, b *Bin, opened bool) {
	if i, ok := mf.pos[b.ID]; ok {
		if i == mf.head {
			return
		}
		mf.unlink(i)
		mf.pushFront(i)
		return
	}
	var i int
	if n := len(mf.free); n > 0 {
		i = mf.free[n-1]
		mf.free = mf.free[:n-1]
	} else {
		mf.nodes = append(mf.nodes, mtfNode{})
		i = len(mf.nodes) - 1
	}
	mf.nodes[i].bin = b
	mf.pos[b.ID] = i
	mf.pushFront(i)
}

// OnClose implements Policy: drop the closed bin from the recency list and
// recycle its node.
func (mf *MoveToFront) OnClose(b *Bin) {
	i, ok := mf.pos[b.ID]
	if !ok {
		return
	}
	mf.unlink(i)
	mf.nodes[i].bin = nil // release the bin to the GC
	mf.free = append(mf.free, i)
	delete(mf.pos, b.ID)
}

// LeaderID returns the ID of the current leader bin (front of the list), or
// -1 when no bin is open. Exposed for the decomposition analysis in tests and
// the Theorem 2 instrumentation.
func (mf *MoveToFront) LeaderID() int {
	if mf.head == -1 {
		return -1
	}
	return mf.nodes[mf.head].bin.ID
}

func (mf *MoveToFront) unlink(i int) {
	n := &mf.nodes[i]
	if n.prev != -1 {
		mf.nodes[n.prev].next = n.next
	} else {
		mf.head = n.next
	}
	if n.next != -1 {
		mf.nodes[n.next].prev = n.prev
	}
}

func (mf *MoveToFront) pushFront(i int) {
	mf.nodes[i].prev = -1
	mf.nodes[i].next = mf.head
	if mf.head != -1 {
		mf.nodes[mf.head].prev = i
	}
	mf.head = i
}
