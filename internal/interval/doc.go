// Package interval implements half-open time intervals [Lo, Hi) and interval
// sets, the time-domain substrate of the DVBP system.
//
// The paper (Section 2) models each item's active period as a half-open
// interval I(r) = [a(r), e(r)), and the cost of a packing as the sum over
// bins of span(R_i) — the measure of the union of the active intervals of the
// items placed in the bin. This package provides exactly those operations:
// interval length, intersection, union measure (span), and merged interval
// sets.
package interval
