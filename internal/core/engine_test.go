package core

import (
	"math"
	"math/rand"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

// list builds an item list from (arrival, departure, size...) triples.
func list(t *testing.T, d int, rows ...[]float64) *item.List {
	t.Helper()
	l := item.NewList(d)
	for _, r := range rows {
		if len(r) != 2+d {
			t.Fatalf("row %v has wrong arity for d=%d", r, d)
		}
		l.Add(r[0], r[1], vector.Of(r[2:]...))
	}
	return l
}

func mustSimulate(t *testing.T, l *item.List, p Policy, opts ...Option) *Result {
	t.Helper()
	res, err := Simulate(l, p, opts...)
	if err != nil {
		t.Fatalf("Simulate(%s): %v", p.Name(), err)
	}
	return res
}

func TestSimulateSingleItem(t *testing.T) {
	l := list(t, 1, []float64{0, 5, 0.5})
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 1 {
		t.Errorf("BinsOpened = %d, want 1", res.BinsOpened)
	}
	if res.Cost != 5 {
		t.Errorf("Cost = %v, want 5", res.Cost)
	}
	if res.Span != 5 {
		t.Errorf("Span = %v, want 5", res.Span)
	}
	if len(res.Bins) != 1 || res.Bins[0].OpenedAt != 0 || res.Bins[0].ClosedAt != 5 {
		t.Errorf("Bins = %+v", res.Bins)
	}
}

func TestSimulateTwoItemsShareBin(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 4, 0.5},
		[]float64{1, 3, 0.5},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 1 {
		t.Fatalf("BinsOpened = %d, want 1", res.BinsOpened)
	}
	if res.Cost != 4 {
		t.Errorf("Cost = %v, want 4", res.Cost)
	}
}

func TestSimulateOverflowOpensSecondBin(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 4, 0.6},
		[]float64{1, 3, 0.6},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res.BinsOpened)
	}
	// Bin 0: [0,4), bin 1: [1,3) => cost 4+2=6.
	if res.Cost != 6 {
		t.Errorf("Cost = %v, want 6", res.Cost)
	}
	if res.MaxConcurrentBins != 2 {
		t.Errorf("MaxConcurrentBins = %d, want 2", res.MaxConcurrentBins)
	}
}

func TestHalfOpenIntervalsFreeCapacityAtDeparture(t *testing.T) {
	// Item 0 occupies [0,2); item 1 arrives exactly at t=2 and must reuse the
	// capacity — but bin 0 closed at t=2, so a NEW bin opens (closed bins are
	// never reused).
	l := list(t, 1,
		[]float64{0, 2, 0.9},
		[]float64{2, 4, 0.9},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2 (closed bin must not be reused)", res.BinsOpened)
	}
	if res.Cost != 4 {
		t.Errorf("Cost = %v, want 4", res.Cost)
	}
}

func TestDepartureBeforeArrivalSameBinStaysOpen(t *testing.T) {
	// Bin stays open because item 1 keeps it active; item 2 arrives at the
	// instant item 0 departs and fits in the SAME bin.
	l := list(t, 1,
		[]float64{0, 2, 0.9},
		[]float64{0, 5, 0.1},
		[]float64{2, 4, 0.9},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 1 {
		t.Fatalf("BinsOpened = %d, want 1", res.BinsOpened)
	}
	if res.Cost != 5 {
		t.Errorf("Cost = %v, want 5", res.Cost)
	}
}

func TestSimultaneousArrivalsPackInListOrder(t *testing.T) {
	// Both arrive at t=0. List order: big then small. First Fit packs big
	// into bin 0; small fits bin 0 too.
	l := list(t, 1,
		[]float64{0, 1, 0.7},
		[]float64{0, 1, 0.3},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 1 {
		t.Fatalf("BinsOpened = %d, want 1", res.BinsOpened)
	}
	// Reversed order: small then big - big doesn't fit with small... 0.3+0.7=1.0 fits exactly.
	// Use sizes that only work one way.
	l2 := list(t, 1,
		[]float64{0, 1, 0.6},
		[]float64{0, 1, 0.5},
	)
	res2 := mustSimulate(t, l2, NewFirstFit())
	if res2.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res2.BinsOpened)
	}
	if res2.Placements[0].ItemID != 0 {
		t.Errorf("first placement = item %d, want 0 (list order)", res2.Placements[0].ItemID)
	}
}

func TestMultiDimensionalFeasibility(t *testing.T) {
	// Items conflict only in dimension 2.
	l := list(t, 2,
		[]float64{0, 2, 0.1, 0.9},
		[]float64{0, 2, 0.1, 0.9},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2 (dim-2 conflict)", res.BinsOpened)
	}
}

func TestGapReopensNewBin(t *testing.T) {
	// Two disjoint activity periods: cost counts only active time.
	l := list(t, 1,
		[]float64{0, 1, 0.5},
		[]float64{10, 12, 0.5},
	)
	res := mustSimulate(t, l, NewFirstFit())
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res.BinsOpened)
	}
	if res.Cost != 3 {
		t.Errorf("Cost = %v, want 3", res.Cost)
	}
	if res.Span != 3 {
		t.Errorf("Span = %v, want 3", res.Span)
	}
}

func TestInvalidInputRejected(t *testing.T) {
	if _, err := Simulate(item.NewList(1), NewFirstFit()); err == nil {
		t.Error("empty list: want error")
	}
	l := item.NewList(1)
	l.Add(0, 1, v(1.5)) // oversize
	if _, err := Simulate(l, NewFirstFit()); err == nil {
		t.Error("oversize item: want error")
	}
}

// badPolicy returns a bin that does not fit, to exercise engine defences.
// The embedded *FirstFit promotes IndexedPolicy, so the runs below force
// WithLinearSelect to make the engine consult the overridden Select.
type badPolicy struct{ *FirstFit }

func (badPolicy) Name() string { return "Bad" }
func (badPolicy) Select(req Request, open []*Bin) *Bin {
	if len(open) > 0 {
		return open[0] // regardless of fit
	}
	return nil
}

func TestEngineRejectsUnfitChoice(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 2, 0.9},
		[]float64{1, 2, 0.9},
	)
	if _, err := Simulate(l, badPolicy{NewFirstFit()}, WithLinearSelect()); err == nil {
		t.Error("policy returning unfit bin: want error")
	}
}

// foreignPolicy returns a bin the engine doesn't know.
type foreignPolicy struct{ *FirstFit }

func (foreignPolicy) Name() string { return "Foreign" }
func (foreignPolicy) Select(req Request, open []*Bin) *Bin {
	return newBin(999, req.Size.Dim(), 0)
}

func TestEngineRejectsForeignBin(t *testing.T) {
	l := list(t, 1, []float64{0, 2, 0.5})
	if _, err := Simulate(l, foreignPolicy{NewFirstFit()}, WithLinearSelect()); err == nil {
		t.Error("policy returning foreign bin: want error")
	}
}

func TestClairvoyanceFlag(t *testing.T) {
	l := list(t, 1, []float64{0, 7, 0.5})
	var sawDep bool
	obs := &funcObserver{before: func(req Request, open []*Bin) {
		sawDep = req.HasDeparture && req.Departure == 7
	}}
	mustSimulate(t, l, NewFirstFit(), WithObserver(obs), WithClairvoyance())
	if !sawDep {
		t.Error("WithClairvoyance should expose departures")
	}
	mustSimulate(t, l, NewFirstFit(), WithObserver(&funcObserver{before: func(req Request, open []*Bin) {
		if req.HasDeparture {
			t.Error("non-clairvoyant run leaked departure")
		}
	}}))
}

type funcObserver struct {
	BaseObserver
	before func(Request, []*Bin)
}

func (f *funcObserver) BeforePack(req Request, open []*Bin) {
	if f.before != nil {
		f.before(req, open)
	}
}

func TestResultHelpers(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 2, 0.6},
		[]float64{0, 2, 0.6},
	)
	res := mustSimulate(t, l, NewFirstFit())
	p, ok := res.PlacementOf(1)
	if !ok || p.BinID != 1 {
		t.Errorf("PlacementOf(1) = %+v ok=%v", p, ok)
	}
	if _, ok := res.PlacementOf(99); ok {
		t.Error("PlacementOf(99) should be !ok")
	}
	bi := res.BinItems()
	if len(bi[0]) != 1 || bi[0][0] != 0 {
		t.Errorf("BinItems = %v", bi)
	}
	if got := res.NormalizedCost(2); math.Abs(got-2) > 1e-12 {
		t.Errorf("NormalizedCost = %v", got)
	}
	if res.String() == "" {
		t.Error("String empty")
	}
}

func TestNormalizedCostPanicsOnBadLB(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	(&Result{Cost: 1}).NormalizedCost(0)
}

// randomList builds a reproducible random instance.
func randomList(seed int64, n, d int, maxDur float64) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 100)
		dur := 1 + math.Floor(r.Float64()*maxDur)
		size := vector.New(d)
		for j := range size {
			size[j] = (1 + math.Floor(r.Float64()*100)) / 100
		}
		l.Add(a, a+dur, size)
	}
	return l
}

// TestDeterminism: same inputs, same policy instance reused -> identical results.
func TestDeterminism(t *testing.T) {
	for _, mk := range []func() Policy{
		func() Policy { return NewFirstFit() },
		func() Policy { return NewNextFit() },
		func() Policy { return NewBestFit(MaxLoad()) },
		func() Policy { return NewWorstFit(MaxLoad()) },
		func() Policy { return NewLastFit() },
		func() Policy { return NewRandomFit(42) },
		func() Policy { return NewMoveToFront() },
	} {
		p := mk()
		l := randomList(99, 200, 2, 10)
		r1 := mustSimulate(t, l, p)
		r2 := mustSimulate(t, l, p) // reuse: Reset must restore state
		if r1.Cost != r2.Cost || r1.BinsOpened != r2.BinsOpened {
			t.Errorf("%s: non-deterministic: cost %v vs %v, bins %d vs %d",
				p.Name(), r1.Cost, r2.Cost, r1.BinsOpened, r2.BinsOpened)
		}
		for i := range r1.Placements {
			if r1.Placements[i] != r2.Placements[i] {
				t.Errorf("%s: placement %d differs", p.Name(), i)
				break
			}
		}
	}
}

// TestCostEqualsBinUsageSum: Cost must equal the sum of per-bin usages, and
// every placement must refer to a recorded bin.
func TestCostEqualsBinUsageSum(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		l := randomList(seed, 300, 3, 20)
		for _, p := range StandardPolicies(seed) {
			res := mustSimulate(t, l, p)
			sum := 0.0
			bins := make(map[int]bool)
			for _, b := range res.Bins {
				sum += b.Usage()
				bins[b.BinID] = true
			}
			if math.Abs(sum-res.Cost) > 1e-9 {
				t.Errorf("%s seed=%d: cost %v != Σusage %v", p.Name(), seed, res.Cost, sum)
			}
			if len(res.Bins) != res.BinsOpened {
				t.Errorf("%s seed=%d: %d bin records, %d opened", p.Name(), seed, len(res.Bins), res.BinsOpened)
			}
			for _, pl := range res.Placements {
				if !bins[pl.BinID] {
					t.Errorf("%s seed=%d: placement into unrecorded bin %d", p.Name(), seed, pl.BinID)
				}
			}
			if len(res.Placements) != l.Len() {
				t.Errorf("%s seed=%d: %d placements, want %d", p.Name(), seed, len(res.Placements), l.Len())
			}
		}
	}
}

// TestCostAtLeastSpan: every algorithm's cost is at least span(R)
// (Lemma 1(iii) lower-bounds OPT ≤ cost).
func TestCostAtLeastSpan(t *testing.T) {
	for seed := int64(10); seed < 15; seed++ {
		l := randomList(seed, 200, 2, 50)
		for _, p := range StandardPolicies(seed) {
			res := mustSimulate(t, l, p)
			if res.Cost < res.Span-1e-9 {
				t.Errorf("%s seed=%d: cost %v < span %v", p.Name(), seed, res.Cost, res.Span)
			}
		}
	}
}

func BenchmarkSimulateFirstFit(b *testing.B) {
	l := randomList(1, 1000, 2, 100)
	p := NewFirstFit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(l, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateMoveToFront(b *testing.B) {
	l := randomList(1, 1000, 2, 100)
	p := NewMoveToFront()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(l, p); err != nil {
			b.Fatal(err)
		}
	}
}
