package main

import (
	"os"
	"path/filepath"
	"testing"

	"dvbp/internal/experiments"
)

// readAll returns name -> content for every file in dir.
func readAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

// TestRenderFiguresDeterministic pins the -workers/-shard contract: the same
// four SVGs, byte for byte, whether rendered sequentially, in parallel, or as
// two merged shard slices into separate invocations.
func TestRenderFiguresDeterministic(t *testing.T) {
	seq := t.TempDir()
	if wrote, err := renderFigures(seq, 11, 24, 1, experiments.ShardSlice{}); err != nil || wrote != 4 {
		t.Fatalf("sequential render: wrote=%d err=%v", wrote, err)
	}
	want := readAll(t, seq)
	if len(want) != 4 {
		t.Fatalf("expected 4 figures, got %d", len(want))
	}

	par := t.TempDir()
	if _, err := renderFigures(par, 11, 24, 4, experiments.ShardSlice{}); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, par); len(got) != len(want) {
		t.Fatalf("parallel render produced %d files, want %d", len(got), len(want))
	} else {
		for name, content := range want {
			if got[name] != content {
				t.Errorf("parallel render of %s differs from sequential", name)
			}
		}
	}

	sliced := t.TempDir()
	w0, err := renderFigures(sliced, 11, 24, 2, experiments.ShardSlice{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := renderFigures(sliced, 11, 24, 2, experiments.ShardSlice{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w0+w1 != 4 {
		t.Fatalf("slices wrote %d+%d figures, want 4 total", w0, w1)
	}
	got := readAll(t, sliced)
	if len(got) != len(want) {
		t.Fatalf("sliced render produced %d files, want %d", len(got), len(want))
	}
	for name, content := range want {
		if got[name] != content {
			t.Errorf("sliced render of %s differs from sequential", name)
		}
	}
}
