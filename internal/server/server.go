package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dvbp/internal/metrics"
	"dvbp/internal/vector"
)

// Server is the HTTP front end over a Store. It is an http.Handler; the
// caller owns the listener and its lifecycle (cmd/dvbpserver wires signals,
// timeouts, and exit codes around it).
type Server struct {
	store *Store
	reg   *metrics.Registry
	mux   *http.ServeMux

	draining atomic.Bool

	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// New builds a Server over an opened (hence recovered) store.
func New(store *Store, reg *metrics.Registry) *Server {
	s := &Server{
		store:    store,
		reg:      reg,
		mux:      http.NewServeMux(),
		requests: reg.Counter("dvbp_server_requests_total", "HTTP requests handled"),
		errors:   reg.Counter("dvbp_server_errors_total", "HTTP requests answered with a 4xx/5xx status"),
		latency: reg.Histogram("dvbp_server_request_seconds", "HTTP request latency",
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/tenants", s.handleCreateTenant)
	s.mux.HandleFunc("GET /v1/tenants", s.handleListTenants)
	s.mux.HandleFunc("GET /v1/tenants/{name}", s.handleTenantStatus)
	s.mux.HandleFunc("DELETE /v1/tenants/{name}", s.handleDeleteTenant)
	s.mux.HandleFunc("POST /v1/tenants/{name}/place", s.handlePlace)
	s.mux.HandleFunc("POST /v1/tenants/{name}/advance", s.handleAdvance)
	s.mux.HandleFunc("GET /v1/tenants/{name}/placements", s.handlePlacements)
	return s
}

// ServeHTTP implements http.Handler with request accounting around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.requests.Inc()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	if sw.status >= 400 {
		s.errors.Inc()
	}
	s.latency.Observe(time.Since(start).Seconds())
}

// Drain flips the server into shutdown mode: /readyz turns 503 and every
// mutating endpoint refuses new work, while requests already queued keep
// draining. Call before Store.Close.
func (s *Server) Drain() { s.draining.Store(true) }

// statusWriter records the status code for the accounting wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// errorBody is the structured error every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, aerr *apiError) {
	if aerr.Status == http.StatusTooManyRequests || aerr.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, aerr.Status, errorBody{Error: aerr.Msg, Code: aerr.Code})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness only: the process is up and serving, even while draining.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, errDraining)
		return
	}
	// The store recovered before New was reachable, so reaching this
	// handler at all means every manifest tenant is live again — but a
	// tenant riding out a sick disk in read-only degraded mode makes the
	// server not-ready for writes, and orchestrators should know.
	if degraded := s.store.Degraded(); len(degraded) > 0 {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "degraded", "tenants": len(s.store.List()), "degraded": degraded,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "tenants": len(s.store.List())})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, snap.Prometheus())
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, errDraining)
		return
	}
	var cfg TenantConfig
	if aerr := decodeBody(r, &cfg); aerr != nil {
		writeErr(w, aerr)
		return
	}
	t, aerr := s.store.Create(cfg)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusCreated, t.Config())
}

func (s *Server) handleListTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.store.List()})
}

func (s *Server) handleDeleteTenant(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, errDraining)
		return
	}
	if aerr := s.store.Delete(r.PathValue("name")); aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

// placeBody is the place request: departure may be given absolutely or as a
// duration from arrival; a missing arrival means "now" (the tenant's
// watermark).
type placeBody struct {
	Arrival   *float64  `json:"arrival"`
	Departure *float64  `json:"departure"`
	Duration  *float64  `json:"duration"`
	Size      []float64 `json:"size"`
}

func (s *Server) handlePlace(w http.ResponseWriter, r *http.Request) {
	var body placeBody
	if aerr := decodeBody(r, &body); aerr != nil {
		writeErr(w, aerr)
		return
	}
	req := &request{kind: reqPlace, size: vector.Vector(body.Size)}
	if body.Arrival != nil {
		req.arrival = *body.Arrival
		req.arrivalSet = true
	}
	switch {
	case body.Departure != nil && body.Duration != nil:
		writeErr(w, errf(http.StatusBadRequest, "bad_request", "give departure or duration, not both"))
		return
	case body.Departure != nil:
		req.departure = *body.Departure
	case body.Duration != nil:
		// Resolved against the tenant's watermark by the worker, which is
		// the only goroutine that knows the effective arrival time.
		req.duration = *body.Duration
		req.durationSet = true
	default:
		writeErr(w, errf(http.StatusBadRequest, "bad_request", "departure or duration required"))
		return
	}
	resp, aerr := s.dispatch(r, req)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp.place)
}

type advanceBody struct {
	To float64 `json:"to"`
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var body advanceBody
	if aerr := decodeBody(r, &body); aerr != nil {
		writeErr(w, aerr)
		return
	}
	resp, aerr := s.dispatch(r, &request{kind: reqAdvance, to: body.To})
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp.advance)
}

func (s *Server) handleTenantStatus(w http.ResponseWriter, r *http.Request) {
	resp, aerr := s.dispatchRead(r, &request{kind: reqStats})
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp.stats)
}

func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeErr(w, errf(http.StatusBadRequest, "bad_request", "from must be a non-negative integer"))
			return
		}
		from = n
	}
	resp, aerr := s.dispatchRead(r, &request{kind: reqPlacements, from: from})
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp.placements)
}

// dispatch enqueues a mutating request on the named tenant and waits for the
// group-committed response. Draining refuses up front; the bounded queue and
// request deadline bound everything else.
func (s *Server) dispatch(r *http.Request, req *request) (response, *apiError) {
	if s.draining.Load() {
		return response{}, errDraining
	}
	return s.dispatchRead(r, req)
}

// dispatchRead enqueues a request without the draining gate: reads stay
// available while queued work drains.
func (s *Server) dispatchRead(r *http.Request, req *request) (response, *apiError) {
	t, aerr := s.store.Get(r.PathValue("name"))
	if aerr != nil {
		return response{}, aerr
	}
	req.reply = make(chan response, 1)
	if aerr := t.enqueue(req); aerr != nil {
		return response{}, aerr
	}
	resp := <-req.reply
	if resp.err != nil {
		return response{}, resp.err
	}
	return resp, nil
}

// decodeBody parses a JSON request body strictly (unknown fields rejected so
// typos fail loudly instead of silently defaulting).
func decodeBody(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errf(http.StatusBadRequest, "bad_json", "decoding request body: %v", err)
	}
	return nil
}
