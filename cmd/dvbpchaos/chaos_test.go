package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/metrics"
	"dvbp/internal/workload"
)

var chaosArgs = []string{
	"-d", "2", "-n", "250", "-mu", "8", "-T", "120", "-B", "100", "-seed", "7",
	"-mtbf", "18", "-fault-seed", "4", "-retry", "backoff:0.5:4",
	"-max-servers", "10", "-queue-deadline", "3",
}

// runSelf builds and runs this command with the given arguments, returning
// its combined output.
func runSelf(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command("go", append([]string{"run", "."}, args...)...).CombinedOutput()
	if err != nil {
		t.Fatalf("go run . %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// extractJSONSnapshot parses the JSON section of a -metrics dump.
func extractJSONSnapshot(t *testing.T, out string) metrics.Snapshot {
	t.Helper()
	const begin = "== metrics (json) ==\n"
	const end = "\n== metrics (prometheus)"
	i := strings.Index(out, begin)
	j := strings.Index(out, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("no metrics JSON section in output:\n%s", out)
	}
	var s metrics.Snapshot
	if err := json.Unmarshal([]byte(out[i+len(begin):j]), &s); err != nil {
		t.Fatalf("unmarshal metrics JSON: %v", err)
	}
	return s
}

// TestChaosDeterminism is the replay acceptance check: identical flags must
// produce byte-identical output, including the metrics snapshots.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	args := append([]string{"-all", "-json", "-metrics"}, chaosArgs...)
	a := runSelf(t, args...)
	b := runSelf(t, args...)
	if a != b {
		t.Fatalf("two runs with identical flags differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestChaosMetricsMatchResult is the fixed-seed acceptance check for the
// failure counters: the run JSON, the metrics snapshot the command emits, and
// an identical in-process simulation must all agree exactly on every
// eviction/retry/rejection/queue series.
func TestChaosMetricsMatchResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	out := runSelf(t, append([]string{"-policy", "FirstFit", "-json", "-metrics"}, chaosArgs...)...)

	var got output
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&got); err != nil {
		t.Fatalf("decode run JSON: %v\n%s", err, out)
	}
	if len(got.Runs) != 1 {
		t.Fatalf("expected 1 run, got %d", len(got.Runs))
	}
	r := got.Runs[0]

	// Reproduce the faulty run in-process to obtain the ground truth.
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 250, Mu: 8, T: 120, B: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPolicy("FirstFit", 7)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{
		Injector:   faults.MTBF{Mean: 18, Seed: 4},
		Retry:      faults.Backoff{Base: 0.5, Cap: 4},
		MaxServers: 10, Queue: true, QueueDeadline: 3,
	}
	res, err := core.Simulate(l, p, plan.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 || res.Evictions == 0 || res.QueuedPlaced == 0 {
		t.Fatalf("fixture does not exercise the fault paths: %s", res)
	}

	// Run JSON against the Result.
	if r.Crashes != res.Crashes || r.Evictions != res.Evictions || r.Retries != res.Retries ||
		r.ItemsLost != res.ItemsLost || r.Rejected != res.Rejected || r.TimedOut != res.TimedOut ||
		r.QueuedPlaced != res.QueuedPlaced {
		t.Errorf("run JSON counters %+v disagree with Result %s", r, res)
	}
	if r.FaultyCost != res.Cost || r.QueueDelay != res.QueueDelay || r.LostUsageTime != res.LostUsageTime {
		t.Errorf("run JSON accumulators (%v, %v, %v) disagree with Result (%v, %v, %v)",
			r.FaultyCost, r.QueueDelay, r.LostUsageTime, res.Cost, res.QueueDelay, res.LostUsageTime)
	}

	// Metrics snapshot against the Result.
	s := extractJSONSnapshot(t, out)
	for name, want := range map[string]float64{
		metrics.MetricBinsCrashed:   float64(res.Crashes),
		metrics.MetricItemsEvicted:  float64(res.Evictions),
		metrics.MetricItemsRetried:  float64(res.Retries),
		metrics.MetricItemsLost:     float64(res.ItemsLost),
		metrics.MetricItemsRejected: float64(res.Rejected),
		metrics.MetricItemsTimedOut: float64(res.TimedOut),
		metrics.MetricItemsDequeued: float64(res.QueuedPlaced),
		metrics.MetricQueueDelay:    res.QueueDelay,
		metrics.MetricLostUsage:     res.LostUsageTime,
		metrics.MetricItemsPlaced:   float64(len(res.Placements)),
		metrics.MetricUsageTime:     res.Cost,
	} {
		g, ok := s.Find(name)
		if !ok {
			t.Errorf("metric %s missing from command output", name)
			continue
		}
		if g.Value != want {
			t.Errorf("%s = %v from command, want %v", name, g.Value, want)
		}
	}
}

// TestChaosRequiresFaultPlan: the command refuses to run without any fault or
// admission flag — fault-free comparisons belong to dvbpsim.
func TestChaosRequiresFaultPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	out, err := exec.Command("go", "run", ".", "-n", "50").CombinedOutput()
	if err == nil {
		t.Fatalf("expected failure without a fault plan, got:\n%s", out)
	}
	if !strings.Contains(string(out), "no fault plan configured") {
		t.Errorf("unexpected error output:\n%s", out)
	}
}

// TestChaosTimeoutFlushesPartial: an expired -timeout must still flush the
// completed prefix (here: the header and empty table) and exit with code 2.
func TestChaosTimeoutFlushesPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := filepath.Join(t.TempDir(), "dvbpchaos")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, append([]string{"-all", "-timeout", "1ns"}, chaosArgs...)...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2, got %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "policies completed") {
		t.Errorf("stderr missing partial-results notice: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "faults: mtbf(mean=18,seed=4)") {
		t.Errorf("partial output not flushed:\n%s", stdout.String())
	}
}
