// Package check validates simulation results from first principles — an
// independent re-derivation of cost, feasibility and bin accounting used by
// tools (dvbpsim -check) and integration tests to guard against engine
// regressions.
//
// Everything is recomputed from the instance plus the result's Placements
// alone, never from the engine's incremental bookkeeping:
//
//   - the MinUsageTime cost (equation (1): Σ_bins span of the bin's items);
//   - capacity feasibility at every arrival instant;
//   - per-bin open/close times (first arrival / last departure);
//   - the Lemma 1 lower bounds (cost must dominate each).
package check
