package core

import (
	"math"
	"testing"
)

// auditRun simulates with auditing and returns the audit.
func auditRun(t *testing.T, seed int64, p Policy) (*Result, *Audit) {
	t.Helper()
	l := randomList(seed, 400, 2, 30)
	var a Audit
	res := mustSimulate(t, l, p, WithAudit(&a))
	return res, &a
}

// TestAnyFitInvariant: for every policy with a full open-bin list, a new bin
// is opened only when NO open bin fits. (Next Fit is exempt: its list L holds
// only the current bin, so it legitimately opens while old bins could fit.)
func TestAnyFitInvariant(t *testing.T) {
	policies := []Policy{
		NewFirstFit(), NewBestFit(MaxLoad()), NewWorstFit(MaxLoad()),
		NewLastFit(), NewRandomFit(11), NewMoveToFront(),
	}
	for _, p := range policies {
		for seed := int64(0); seed < 3; seed++ {
			_, a := auditRun(t, seed, p)
			for i, d := range a.Decisions {
				if d.Opened && len(d.FittingBinIDs) > 0 {
					t.Errorf("%s seed=%d decision %d: opened a bin while %v fit item %d",
						p.Name(), seed, i, d.FittingBinIDs, d.Req.ID)
				}
			}
		}
	}
}

// TestFirstFitLowestIndexRule: when First Fit packs into an existing bin, it
// is the minimum-ID fitting bin.
func TestFirstFitLowestIndexRule(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		_, a := auditRun(t, seed, NewFirstFit())
		for i, d := range a.Decisions {
			if d.Opened {
				continue
			}
			if len(d.FittingBinIDs) == 0 {
				t.Fatalf("decision %d: packed existing bin but no fits recorded", i)
			}
			if d.BinID != d.FittingBinIDs[0] {
				t.Errorf("seed=%d decision %d: chose %d, lowest fitting is %d", seed, i, d.BinID, d.FittingBinIDs[0])
			}
		}
	}
}

// TestLastFitHighestIndexRule mirrors the First Fit check.
func TestLastFitHighestIndexRule(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		_, a := auditRun(t, seed, NewLastFit())
		for i, d := range a.Decisions {
			if d.Opened {
				continue
			}
			want := d.FittingBinIDs[len(d.FittingBinIDs)-1]
			if d.BinID != want {
				t.Errorf("seed=%d decision %d: chose %d, highest fitting is %d", seed, i, d.BinID, want)
			}
		}
	}
}

// TestBestWorstFitExtremalRule: Best Fit chooses a fitting bin with maximal
// L∞ load; Worst Fit minimal.
func TestBestWorstFitExtremalRule(t *testing.T) {
	check := func(p Policy, wantMax bool) {
		for seed := int64(0); seed < 3; seed++ {
			_, a := auditRun(t, seed, p)
			for i, d := range a.Decisions {
				if d.Opened {
					continue
				}
				loadOf := func(id int) float64 {
					for k, oid := range d.OpenBinIDs {
						if oid == id {
							return d.LoadsLinf[k]
						}
					}
					panic("bin not in snapshot")
				}
				chosen := loadOf(d.BinID)
				for _, id := range d.FittingBinIDs {
					l := loadOf(id)
					if wantMax && l > chosen+1e-12 {
						t.Errorf("%s seed=%d decision %d: chose load %v but %v available", p.Name(), seed, i, chosen, l)
					}
					if !wantMax && l < chosen-1e-12 {
						t.Errorf("%s seed=%d decision %d: chose load %v but %v available", p.Name(), seed, i, chosen, l)
					}
				}
			}
		}
	}
	check(NewBestFit(MaxLoad()), true)
	check(NewWorstFit(MaxLoad()), false)
}

// TestNextFitSingleTargetRule: all items packed into an existing bin go to
// the bin opened most recently among open ones (the current bin).
func TestNextFitSingleTargetRule(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		_, a := auditRun(t, seed, NewNextFit())
		lastOpened := -1
		for i, d := range a.Decisions {
			if d.Opened {
				lastOpened = d.BinID
				continue
			}
			if d.BinID != lastOpened {
				t.Errorf("seed=%d decision %d: packed bin %d, current is %d", seed, i, d.BinID, lastOpened)
			}
		}
	}
}

// TestMoveToFrontLeaderRule: the bin MTF packs into must be the most recently
// used (leader) among bins that fit. We verify with a shadow recency list.
func TestMoveToFrontLeaderRule(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		p := NewMoveToFront()
		_, a := auditRun(t, seed, p)
		// Shadow: maintain recency from the decision stream.
		var recency []int // front = most recent
		remove := func(id int) {
			for i, x := range recency {
				if x == id {
					recency = append(recency[:i], recency[i+1:]...)
					return
				}
			}
		}
		for i, d := range a.Decisions {
			// Bins may have closed since the last decision: drop vanished IDs.
			openSet := map[int]bool{}
			for _, id := range d.OpenBinIDs {
				openSet[id] = true
			}
			var pruned []int
			for _, id := range recency {
				if openSet[id] {
					pruned = append(pruned, id)
				}
			}
			recency = pruned
			if !d.Opened {
				fits := map[int]bool{}
				for _, id := range d.FittingBinIDs {
					fits[id] = true
				}
				// The chosen bin must be the first fitting bin in recency order.
				for _, id := range recency {
					if fits[id] {
						if id != d.BinID {
							t.Errorf("seed=%d decision %d: chose %d, recency-first fit is %d", seed, i, d.BinID, id)
						}
						break
					}
				}
			}
			remove(d.BinID)
			recency = append([]int{d.BinID}, recency...)
		}
	}
}

// TestNoOverfullBins: after every decision, every open bin's recorded L∞
// load is within capacity. (The engine would error out otherwise, but this
// validates the audit view too.)
func TestNoOverfullBins(t *testing.T) {
	for _, p := range StandardPolicies(17) {
		_, a := auditRun(t, 17, p)
		for i, d := range a.Decisions {
			for k, load := range d.LoadsLinf {
				if load > 1+1e-9 {
					t.Errorf("%s decision %d: bin %d overfull (%v)", p.Name(), i, d.OpenBinIDs[k], load)
				}
			}
		}
	}
}

// TestMoveToFrontMatchesFirstFitWhenOneBin: with capacity for everything in
// one bin, every Any Fit policy produces one bin and identical cost.
func TestAllPoliciesAgreeOnTrivialInstance(t *testing.T) {
	l := list(t, 2,
		[]float64{0, 5, 0.1, 0.1},
		[]float64{1, 4, 0.1, 0.1},
		[]float64{2, 6, 0.1, 0.1},
	)
	for _, p := range StandardPolicies(1) {
		res := mustSimulate(t, l, p)
		if res.BinsOpened != 1 {
			t.Errorf("%s: BinsOpened = %d, want 1", p.Name(), res.BinsOpened)
		}
		if math.Abs(res.Cost-6) > 1e-12 {
			t.Errorf("%s: Cost = %v, want 6", p.Name(), res.Cost)
		}
	}
}

// faultyAuditRun simulates with auditing under a seeded crash schedule, a
// delayed retry policy and a capped fleet with an admission queue — the
// harshest combination the engine supports.
func faultyAuditRun(t *testing.T, seed int64, p Policy) (*Result, *Audit) {
	t.Helper()
	l := randomList(seed, 400, 2, 30)
	var a Audit
	res := mustSimulate(t, l, p, WithAudit(&a),
		WithFaults(hashInj{seed: seed, mean: 10}, fixedRetry{wait: 1}),
		WithMaxBins(6), WithAdmissionQueue(5))
	if res.Crashes == 0 || res.Evictions == 0 {
		t.Fatalf("%s seed=%d: fault paths not exercised (%s)", p.Name(), seed, res)
	}
	return res, &a
}

// TestAnyFitInvariantUnderEviction: the Any Fit rule must survive crashes —
// every re-placement of an evicted item is a fresh decision, and a new bin
// may open only when no open bin fits. (Next Fit exempt as in the fault-free
// test; the fleet-cap rejection path never records a decision, so the audit
// stream stays decision-per-placement.)
func TestAnyFitInvariantUnderEviction(t *testing.T) {
	policies := []Policy{
		NewFirstFit(), NewBestFit(MaxLoad()), NewWorstFit(MaxLoad()),
		NewLastFit(), NewRandomFit(11), NewMoveToFront(),
	}
	for _, p := range policies {
		for seed := int64(0); seed < 3; seed++ {
			res, a := faultyAuditRun(t, seed, p)
			if len(a.Decisions) != len(res.Placements) {
				t.Fatalf("%s seed=%d: %d decisions for %d placements",
					p.Name(), seed, len(a.Decisions), len(res.Placements))
			}
			for i, d := range a.Decisions {
				if d.Opened && len(d.FittingBinIDs) > 0 {
					t.Errorf("%s seed=%d decision %d (attempt %d): opened a bin while %v fit item %d",
						p.Name(), seed, i, d.Req.Attempt, d.FittingBinIDs, d.Req.ID)
				}
			}
		}
	}
}

// TestCapacityInvariantUnderEviction: no audited load snapshot may exceed
// capacity even while evicted items are being re-packed.
func TestCapacityInvariantUnderEviction(t *testing.T) {
	for _, p := range StandardPolicies(17) {
		_, a := faultyAuditRun(t, 17, p)
		for i, d := range a.Decisions {
			for k, load := range d.LoadsLinf {
				if load > 1+1e-9 {
					t.Errorf("%s decision %d: bin %d overfull (%v)", p.Name(), i, d.OpenBinIDs[k], load)
				}
			}
		}
	}
}

// TestIntervalAndOrderInvariantsUnderEviction: crashed and naturally closed
// bins alike must have sane usage intervals, ascending IDs with nondecreasing
// opening times, every placement inside its bin's lifetime, and the fleet cap
// respected at all times.
func TestIntervalAndOrderInvariantsUnderEviction(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for _, p := range StandardPolicies(seed) {
			res, _ := faultyAuditRun(t, seed, p)
			checkFaultStructure(t, p.Name(), res, 6)
			crashed := 0
			for _, b := range res.Bins {
				if b.Crashed {
					crashed++
				}
			}
			if crashed != res.Crashes {
				t.Errorf("%s seed=%d: %d crashed-bin records vs Crashes=%d",
					p.Name(), seed, crashed, res.Crashes)
			}
		}
	}
}

// TestAuditNewBinOpeningsMatchesResult verifies audit bookkeeping.
func TestAuditNewBinOpeningsMatchesResult(t *testing.T) {
	l := randomList(5, 200, 2, 10)
	var a Audit
	res := mustSimulate(t, l, NewFirstFit(), WithAudit(&a))
	if a.NewBinOpenings() != res.BinsOpened {
		t.Errorf("audit openings %d != result bins %d", a.NewBinOpenings(), res.BinsOpened)
	}
	if len(a.Decisions) != l.Len() {
		t.Errorf("decisions %d != items %d", len(a.Decisions), l.Len())
	}
}
