package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"dvbp/internal/core"
	"dvbp/internal/lowerbound"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
	"dvbp/internal/workload"
)

// Figure4Config parameterises the Section 7 experiment. The zero value is not
// valid; use DefaultFigure4 for the paper's Table 2 grid.
type Figure4Config struct {
	// Ds are the dimension panels (paper: 1, 2, 5).
	Ds []int
	// Mus are the maximum-duration sweep values (paper: 1,2,5,10,100,200).
	Mus []int
	// Instances is the number of random instances per (d, μ) cell
	// (paper: 1000).
	Instances int
	// N, T, B are the remaining Table 2 parameters (1000, 1000, 100).
	N, T, B int
	// Policies are the canonical policy names to evaluate (default: the
	// seven from the paper).
	Policies []string
	// Seed derives all per-trial seeds.
	Seed int64
	// RunControl supplies the execution knobs (Workers, Ctx, Progress,
	// Shard, Observer); none of them affect results.
	RunControl
}

// Figure4Grid is the result-affecting part of Figure4Config, serialised into
// sweep documents so merge can reject parts run under different grids.
type Figure4Grid struct {
	Ds        []int    `json:"ds"`
	Mus       []int    `json:"mus"`
	Instances int      `json:"instances"`
	N         int      `json:"n"`
	T         int      `json:"t"`
	B         int      `json:"b"`
	Policies  []string `json:"policies"`
	Seed      int64    `json:"seed"`
}

// Grid extracts the serialisable grid from the config.
func (c Figure4Config) Grid() Figure4Grid {
	return Figure4Grid{Ds: c.Ds, Mus: c.Mus, Instances: c.Instances,
		N: c.N, T: c.T, B: c.B, Policies: c.Policies, Seed: c.Seed}
}

// Config rebuilds an executable config (zero RunControl) from a grid.
func (g Figure4Grid) Config() Figure4Config {
	return Figure4Config{Ds: g.Ds, Mus: g.Mus, Instances: g.Instances,
		N: g.N, T: g.T, B: g.B, Policies: g.Policies, Seed: g.Seed}
}

// DefaultFigure4 returns the paper's exact experimental grid.
func DefaultFigure4() Figure4Config {
	return Figure4Config{
		Ds:        []int{1, 2, 5},
		Mus:       []int{1, 2, 5, 10, 100, 200},
		Instances: 1000,
		N:         1000,
		T:         1000,
		B:         100,
		Policies:  core.PolicyNames(),
		Seed:      1,
	}
}

// Validate checks the configuration.
func (c Figure4Config) Validate() error {
	if len(c.Ds) == 0 || len(c.Mus) == 0 || len(c.Policies) == 0 {
		return fmt.Errorf("experiments: empty sweep in Figure4Config")
	}
	if c.Instances < 1 {
		return fmt.Errorf("experiments: Instances = %d", c.Instances)
	}
	for _, d := range c.Ds {
		for _, mu := range c.Mus {
			if err := (workload.UniformConfig{D: d, N: c.N, Mu: mu, T: c.T, B: c.B}).Validate(); err != nil {
				return err
			}
		}
	}
	for _, p := range c.Policies {
		if _, err := core.NewPolicy(p, 0); err != nil {
			return err
		}
	}
	return nil
}

// Cell identifies one point of the Figure 4 grid.
type Cell struct {
	D      int
	Mu     int
	Policy string
}

// Figure4Result holds, per cell, the summary of cost/LB ratios across
// instances (mean ± stddev, as plotted in the paper with error bars).
type Figure4Result struct {
	Config Figure4Config
	Cells  map[Cell]stats.Summary
}

// figure4Cell is one (d, μ) point of the grid, in Ds × Mus iteration order.
type figure4Cell struct{ d, mu int }

func (c Figure4Config) cellGrid() []figure4Cell {
	cells := make([]figure4Cell, 0, len(c.Ds)*len(c.Mus))
	for _, d := range c.Ds {
		for _, mu := range c.Mus {
			cells = append(cells, figure4Cell{d, mu})
		}
	}
	return cells
}

// Figure 4 shard-index layout: one shard per (cell, instance, policy) triple,
// flattened as ((cellIdx*Instances)+instance)*len(Policies)+policyIdx. Each
// shard regenerates its instance's workload from (cell, instance) alone —
// using the same seed derivation as the historical per-instance trials, so
// recorded experiment outputs for a given root seed stay valid — and runs a
// single policy. The shard value is that policy's cost/LB ratio.

// ShardCount returns the sweep's total shard count.
func (c Figure4Config) ShardCount() int {
	return len(c.Ds) * len(c.Mus) * c.Instances * len(c.Policies)
}

// cellSeed is the historical per-(d, μ) seed base; per-instance seeds are
// parallel.SeedFor(cellSeed, instance).
func (c Figure4Config) cellSeed(d, mu int) int64 {
	return c.Seed ^ (int64(d) << 32) ^ (int64(mu) << 16)
}

// figure4Shard computes one shard: cost/LB of a single policy on a single
// regenerated instance.
func figure4Shard(cfg Figure4Config, cells []figure4Cell, shard int) (float64, error) {
	pi := shard % len(cfg.Policies)
	rest := shard / len(cfg.Policies)
	i := rest % cfg.Instances
	cell := cells[rest/cfg.Instances]

	wcfg := workload.UniformConfig{D: cell.d, N: cfg.N, Mu: cell.mu, T: cfg.T, B: cfg.B}
	seed := parallel.SeedFor(cfg.cellSeed(cell.d, cell.mu), i)
	l, err := workload.Uniform(wcfg, seed)
	if err != nil {
		return 0, err
	}
	lb := lowerbound.IntegralBound(l)
	if lb <= 0 {
		return 0, fmt.Errorf("non-positive lower bound")
	}
	p, err := core.NewPolicy(cfg.Policies[pi], seed)
	if err != nil {
		return 0, err
	}
	r, err := core.Simulate(l, p, cfg.observerOpts()...)
	if err != nil {
		return 0, err
	}
	return r.Cost / lb, nil
}

// RunFigure4Sweep executes the (possibly slice-restricted) sharded sweep and
// returns the raw per-shard ratios as a serialisable sweep document.
func RunFigure4Sweep(cfg Figure4Config) (*Figure4Sweep, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cells := cfg.cellGrid()
	dense, err := runShards(cfg.RunControl, cfg.ShardCount(), func(_ context.Context, s int) (float64, error) {
		return figure4Shard(cfg, cells, s)
	})
	if err != nil {
		return nil, err
	}
	return newSweep("figure4", cfg.Grid(), cfg.Shard, dense)
}

// RunFigure4 executes the experiment. For each (d, μ) it generates Instances
// random instances; each instance is normalised by the Lemma 1(i) lower
// bound and every policy's cost/LB ratio is folded into its cell summary.
// Slice-restricted configs cannot produce summaries — run RunFigure4Sweep per
// slice and merge.
func RunFigure4(cfg Figure4Config) (*Figure4Result, error) {
	sweep, err := RunFigure4Sweep(cfg)
	if err != nil {
		return nil, err
	}
	return Figure4SweepResult(sweep)
}

// Figure4Sweep is the sweep document for Figure 4: one cost/LB ratio per
// (cell, instance, policy) shard.
type Figure4Sweep = Sweep[float64]

// Figure4SweepResult folds a complete sweep into per-cell summaries. Ratios
// are folded in ascending instance order per (cell, policy) — the same order
// as the sequential reference path, so summaries are bit-identical to it for
// any worker count or slice partition.
func Figure4SweepResult(s *Figure4Sweep) (*Figure4Result, error) {
	if s.Experiment != "figure4" {
		return nil, fmt.Errorf("experiments: sweep is %q, not figure4", s.Experiment)
	}
	var grid Figure4Grid
	if err := json.Unmarshal(s.Grid, &grid); err != nil {
		return nil, fmt.Errorf("experiments: decode figure4 grid: %w", err)
	}
	cfg := grid.Config()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if want := cfg.ShardCount(); s.Shards != want {
		return nil, fmt.Errorf("experiments: sweep has %d shards, grid implies %d", s.Shards, want)
	}
	ratios, err := s.Dense()
	if err != nil {
		return nil, err
	}
	cells := cfg.cellGrid()
	res := &Figure4Result{Config: cfg, Cells: make(map[Cell]stats.Summary)}
	nP := len(cfg.Policies)
	for ci, cell := range cells {
		for pi, name := range cfg.Policies {
			var acc stats.Accumulator
			for i := 0; i < cfg.Instances; i++ {
				acc.Add(ratios[(ci*cfg.Instances+i)*nP+pi])
			}
			res.Cells[Cell{D: cell.d, Mu: cell.mu, Policy: name}] = acc.Summarize()
		}
	}
	return res, nil
}

// runFigure4Sequential is the single-goroutine reference implementation the
// differential tests compare the sharded runner against: the plain nested
// loop over cells, instances and policies, folding ratios as it goes.
func runFigure4Sequential(cfg Figure4Config) (*Figure4Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &Figure4Result{Config: cfg, Cells: make(map[Cell]stats.Summary)}
	for _, cell := range cfg.cellGrid() {
		wcfg := workload.UniformConfig{D: cell.d, N: cfg.N, Mu: cell.mu, T: cfg.T, B: cfg.B}
		accs := make([]stats.Accumulator, len(cfg.Policies))
		for i := 0; i < cfg.Instances; i++ {
			seed := parallel.SeedFor(cfg.cellSeed(cell.d, cell.mu), i)
			l, err := workload.Uniform(wcfg, seed)
			if err != nil {
				return nil, err
			}
			lb := lowerbound.IntegralBound(l)
			if lb <= 0 {
				return nil, fmt.Errorf("non-positive lower bound")
			}
			for pi, name := range cfg.Policies {
				p, err := core.NewPolicy(name, seed)
				if err != nil {
					return nil, err
				}
				r, err := core.Simulate(l, p, cfg.observerOpts()...)
				if err != nil {
					return nil, err
				}
				accs[pi].Add(r.Cost / lb)
			}
		}
		for pi, name := range cfg.Policies {
			res.Cells[Cell{D: cell.d, Mu: cell.mu, Policy: name}] = accs[pi].Summarize()
		}
	}
	return res, nil
}

// Table renders the result for one dimension panel as a μ × policy grid of
// "mean ± stddev" cells.
func (r *Figure4Result) Table(d int) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 4 (d=%d): mean cost / Lemma-1(i) lower bound over %d instances", d, r.Config.Instances),
		Headers: append([]string{"mu"}, r.Config.Policies...),
	}
	for _, mu := range r.Config.Mus {
		row := []string{fmt.Sprintf("%d", mu)}
		for _, p := range r.Config.Policies {
			s := r.Cells[Cell{D: d, Mu: mu, Policy: p}]
			row = append(row, fmt.Sprintf("%.4f ± %.4f", s.Mean, s.StdDev))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Chart renders the result for one dimension panel as an SVG line chart
// (ratio vs μ, one series per policy, error bars = stddev) — the shape of
// one Figure 4 panel.
func (r *Figure4Result) Chart(d int) *report.Chart {
	c := &report.Chart{
		Title:  fmt.Sprintf("Average-case performance, d=%d", d),
		XLabel: "mu (max item duration)",
		YLabel: "cost / lower bound",
		LogX:   true,
	}
	for _, p := range r.Config.Policies {
		s := report.Series{Name: p}
		for _, mu := range r.Config.Mus {
			sum := r.Cells[Cell{D: d, Mu: mu, Policy: p}]
			s.X = append(s.X, float64(mu))
			s.Y = append(s.Y, sum.Mean)
			s.YErr = append(s.YErr, sum.StdDev)
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// Ranking returns the policies sorted by mean ratio (best first) for one
// (d, μ) cell.
func (r *Figure4Result) Ranking(d, mu int) []string {
	ps := make([]string, len(r.Config.Policies))
	copy(ps, r.Config.Policies)
	sort.SliceStable(ps, func(i, j int) bool {
		return r.Cells[Cell{D: d, Mu: mu, Policy: ps[i]}].Mean < r.Cells[Cell{D: d, Mu: mu, Policy: ps[j]}].Mean
	})
	return ps
}
