package experiments

import (
	"strings"
	"testing"

	"dvbp/internal/migrate"
)

func TestDefragConfigValidate(t *testing.T) {
	if err := DefaultDefrag().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	mig := DefaultDefrag().Migration
	bad := []DefragConfig{
		{D: 0, Instances: 1, Horizon: 10, Migration: mig},
		{D: 2, Instances: 0, Horizon: 10, Migration: mig},
		{D: 2, Instances: 1, Horizon: 0, Migration: mig},
		{D: 2, Instances: 1, Horizon: 10},                                                                     // migration disabled
		{D: 2, Instances: 1, Horizon: 10, Migration: migrate.Config{Planner: "nope", Period: 5, MaxMoves: 8}}, // unknown planner
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	sharded := DefaultDefrag()
	sharded.Shard = ShardSlice{Index: 0, Count: 2}
	if _, err := RunDefrag(sharded); err == nil {
		t.Error("shard slice accepted (defrag is not mergeable)")
	}
}

// TestRunDefragDeterminism pins the scheduler contract and the study shape:
// identical results for any Workers value, every cell populated, and the
// migrating leg internally consistent (Mig <= MigTotal, move cost only when
// moves happened).
func TestRunDefragDeterminism(t *testing.T) {
	cfg := DefaultDefrag()
	cfg.Instances = 3
	cfg.Horizon = 40
	run := func(workers int) *DefragStudy {
		c := cfg
		c.Workers = workers
		s, err := RunDefrag(c)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(4)
	if len(a.Traces) != 3 || len(a.Policies) != len(FragPolicyNames()) {
		t.Fatalf("study shape: %d traces, %d policies", len(a.Traces), len(a.Policies))
	}
	if a.Migration != cfg.Migration.String() {
		t.Fatalf("study migration %q, want %q", a.Migration, cfg.Migration.String())
	}
	totalMoves := 0.0
	for ti := range a.Traces {
		if a.Offline[ti].N != cfg.Instances || a.Offline[ti].Mean < 1 {
			t.Fatalf("offline bracket on %s implausible: %+v", a.Traces[ti], a.Offline[ti])
		}
		if a.Exact[ti].N != 0 {
			t.Fatalf("exact bracket populated without cfg.Exact: %+v", a.Exact[ti])
		}
		for pi := range a.Policies {
			ca, cb := a.Cells[ti][pi], b.Cells[ti][pi]
			if ca != cb {
				t.Fatalf("workers changed cell (%s, %s):\n%+v\nvs\n%+v", ca.Trace, ca.Policy, ca, cb)
			}
			if ca.Base.N != cfg.Instances || ca.Base.Mean < 1 || ca.Mig.Mean < 1 {
				t.Fatalf("cell (%s, %s) implausible: %+v", ca.Trace, ca.Policy, ca)
			}
			if ca.Mig.Mean > ca.MigTotal.Mean+1e-12 {
				t.Fatalf("cell (%s, %s): Mig %v above MigTotal %v", ca.Trace, ca.Policy, ca.Mig.Mean, ca.MigTotal.Mean)
			}
			if ca.Moves.Mean == 0 && ca.MoveCost.Mean != 0 {
				t.Fatalf("cell (%s, %s): move cost without moves: %+v", ca.Trace, ca.Policy, ca)
			}
			totalMoves += ca.Moves.Mean
		}
	}
	if totalMoves == 0 {
		t.Fatal("no policy migrated anything anywhere; the migrating leg is not wired")
	}
	for _, trace := range a.Traces {
		out := a.Table(trace).Render()
		for _, p := range a.Policies {
			if !strings.Contains(out, p) {
				t.Errorf("%s table missing %s", trace, p)
			}
		}
	}
	if a.Chart().SVG() == "" {
		t.Error("empty chart")
	}
}

// TestRunDefragImprovesOnAzure is the study's acceptance property: with the
// default budgeted configuration, at least one policy's migrating leg
// strictly improves mean usage-time or stranded·time over its irrevocable
// baseline on the Azure-like traces, and the migration cost it paid is
// reported alongside.
func TestRunDefragImprovesOnAzure(t *testing.T) {
	cfg := DefaultDefrag()
	cfg.Instances = 4
	cfg.Horizon = 60
	s, err := RunDefrag(cfg)
	if err != nil {
		t.Fatal(err)
	}
	improved := s.Improved("azure")
	if len(improved) == 0 {
		t.Fatal("no policy improved usage-time or stranded·time on the azure traces under budgeted migration")
	}
	ti := s.traceIndex("azure")
	for _, name := range improved {
		for _, c := range s.Cells[ti] {
			if c.Policy != name {
				continue
			}
			if c.Moves.Mean > 0 && c.MoveCost.Mean <= 0 {
				t.Errorf("%s improved via %v moves but reports no migration cost", name, c.Moves.Mean)
			}
		}
	}
}
