// Package workload generates synthetic MinUsageTime DVBP instances and
// serialises item traces.
//
// The primary generator, Uniform, implements the paper's experimental model
// (Section 7, Table 2): bins of integral capacity B^d, item sizes uniform on
// {1,...,B}^d (normalised by B so bins have unit capacity), integral arrival
// times uniform on [0, T-μ], and integral durations uniform on [1, μ].
//
// Additional generators model the cloud-gaming / VM-placement workloads the
// paper's introduction motivates, exercising the same code paths with more
// realistic arrival processes:
//
//   - Sessions (cloud.go): Poisson arrivals, heavy-tailed or exponential
//     durations, correlated resource dimensions, optional diurnal modulation.
//   - Spike (spike.go): flash crowds — a low background rate punctuated by
//     short bursts during which the arrival rate multiplies.
//
// Traces round-trip through CSV and JSON (trace.go, the formats accepted by
// dvbpsim -trace and produced by dvbptrace), and Describe (describe.go)
// summarises a trace's shape for inspection tooling.
//
// All generators are deterministic functions of their Config and Seed.
package workload
