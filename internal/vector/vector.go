package vector

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Eps is the tolerance used by capacity comparisons. Workload generators
// produce sizes that are small integers divided by a bin capacity B, so exact
// arithmetic would work in theory; in practice repeated float64 additions and
// subtractions accumulate one-ulp errors, and a strict `<= 1` check could
// spuriously reject an item that exactly fills a bin. Eps is far below the
// resolution of any supported workload (minimum size step is 1/B with
// B ≤ 10^6) and far above accumulated rounding error for realistic bin
// populations.
const Eps = 1e-9

// Vector is a point in R^d with non-negative components. The zero-length
// vector is valid and behaves as a 0-dimensional vector.
type Vector []float64

// New returns a zero vector of dimension d. It panics if d is negative.
func New(d int) Vector {
	if d < 0 {
		panic("vector: negative dimension")
	}
	return make(Vector, d)
}

// Uniform returns a d-dimensional vector with every component equal to v.
func Uniform(d int, v float64) Vector {
	u := New(d)
	for i := range u {
		u[i] = v
	}
	return u
}

// Unit returns a d-dimensional vector with component i set to v and all other
// components zero. It panics if i is out of range.
func Unit(d, i int, v float64) Vector {
	u := New(d)
	u[i] = v
	return u
}

// Of returns a vector with the given components.
func Of(vs ...float64) Vector {
	u := make(Vector, len(vs))
	copy(u, vs)
	return u
}

// Dim returns the dimension of v.
func (v Vector) Dim() int { return len(v) }

// Clone returns a copy of v that shares no storage with it.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Add returns v + u as a new vector. It panics if dimensions differ.
func (v Vector) Add(u Vector) Vector {
	v.mustMatch(u)
	w := make(Vector, len(v))
	for i := range v {
		w[i] = v[i] + u[i]
	}
	return w
}

// Sub returns v - u as a new vector. It panics if dimensions differ.
// Components are clamped at zero to absorb floating-point underflow when an
// item's size is removed from a bin load it was previously added to.
func (v Vector) Sub(u Vector) Vector {
	v.mustMatch(u)
	w := make(Vector, len(v))
	for i := range v {
		w[i] = v[i] - u[i]
		if w[i] < 0 {
			w[i] = 0
		}
	}
	return w
}

// AddInPlace sets v = v + u. It panics if dimensions differ.
func (v Vector) AddInPlace(u Vector) {
	v.mustMatch(u)
	for i := range v {
		v[i] += u[i]
	}
}

// SubInPlace sets v = v - u, clamping components at zero (see Sub).
// It panics if dimensions differ.
func (v Vector) SubInPlace(u Vector) {
	v.mustMatch(u)
	for i := range v {
		v[i] -= u[i]
		if v[i] < 0 {
			v[i] = 0
		}
	}
}

// Scale returns c·v as a new vector.
func (v Vector) Scale(c float64) Vector {
	w := make(Vector, len(v))
	for i := range v {
		w[i] = c * v[i]
	}
	return w
}

// MaxNorm returns the L∞ norm max_j v_j. Section 2 of the paper writes this
// as ‖v‖∞; it drives capacity checks and the Lemma 1 bounds. The norm of the
// 0-dimensional vector is 0.
func (v Vector) MaxNorm() float64 {
	m := 0.0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// SumNorm returns the L1 norm Σ_j v_j (used by the "sum of loads" Best Fit
// variant).
func (v Vector) SumNorm() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// PNorm returns the Lp norm (Σ_j v_j^p)^(1/p) for p ≥ 1. PNorm(math.Inf(1))
// returns the L∞ norm. It panics if p < 1.
func (v Vector) PNorm(p float64) float64 {
	if math.IsInf(p, 1) {
		return v.MaxNorm()
	}
	if p < 1 {
		panic("vector: PNorm requires p >= 1")
	}
	if p == 1 {
		return v.SumNorm()
	}
	s := 0.0
	for _, x := range v {
		s += math.Pow(x, p)
	}
	return math.Pow(s, 1/p)
}

// FitsWithin reports whether v + u stays within the unit capacity 1^d in
// every dimension, up to Eps. This is the bin feasibility test: an item of
// size u fits in a bin of load v iff v.FitsWithin(u). It panics if dimensions
// differ.
func (v Vector) FitsWithin(u Vector) bool {
	v.mustMatch(u)
	for i := range v {
		if v[i]+u[i] > 1+Eps {
			return false
		}
	}
	return true
}

// LeqCapacity reports whether every component of v is at most 1 (+Eps): i.e.
// v alone is a feasible bin load.
func (v Vector) LeqCapacity() bool {
	for _, x := range v {
		if x > 1+Eps {
			return false
		}
	}
	return true
}

// Dominates reports whether v_j ≥ u_j for every dimension j.
// It panics if dimensions differ.
func (v Vector) Dominates(u Vector) bool {
	v.mustMatch(u)
	for i := range v {
		if v[i] < u[i] {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same dimension and components within
// tol of each other.
func (v Vector) Equal(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-u[i]) > tol {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is exactly zero.
func (v Vector) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// NonNegative reports whether every component is ≥ 0. Item sizes must be
// non-negative; validation uses this.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// Max returns the component-wise maximum of v and u as a new vector.
// It panics if dimensions differ.
func (v Vector) Max(u Vector) Vector {
	v.mustMatch(u)
	w := make(Vector, len(v))
	for i := range v {
		w[i] = math.Max(v[i], u[i])
	}
	return w
}

// Sum returns the component-wise sum of the given vectors. All vectors must
// share one dimension; Sum of no vectors is the 0-dimensional zero vector.
func Sum(vs ...Vector) Vector {
	if len(vs) == 0 {
		return Vector{}
	}
	s := vs[0].Clone()
	for _, v := range vs[1:] {
		s.AddInPlace(v)
	}
	return s
}

// String renders the vector as "[v0 v1 ...]" with compact float formatting.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	}
	b.WriteByte(']')
	return b.String()
}

// Parse parses the String format (brackets optional, space- or
// comma-separated components).
func Parse(s string) (Vector, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	s = strings.ReplaceAll(s, ",", " ")
	fields := strings.Fields(s)
	v := make(Vector, 0, len(fields))
	for _, f := range fields {
		x, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("vector: parse %q: %w", f, err)
		}
		v = append(v, x)
	}
	if len(v) == 0 {
		return nil, errors.New("vector: empty input")
	}
	return v, nil
}

func (v Vector) mustMatch(u Vector) {
	if len(v) != len(u) {
		panic(fmt.Sprintf("vector: dimension mismatch %d vs %d", len(v), len(u)))
	}
}
