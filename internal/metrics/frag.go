package metrics

import (
	"fmt"
	"math"

	"dvbp/internal/core"
)

// Fragmentation metric names (DESIGN.md §13).
const (
	// MetricStrandedCapacity gauges the current stranded open capacity,
	// summed over dimensions: Σ_bins Σ_d (residual_d − min_j residual_j).
	MetricStrandedCapacity = "dvbp_stranded_capacity"
	// MetricStrandedTime gauges the accrued stranded capacity·time integral,
	// summed over dimensions (simulated units; see FragSummary).
	MetricStrandedTime = "dvbp_stranded_capacity_time_total"
	// MetricResidualImbalance is a histogram of the receiving bin's residual
	// imbalance (max_j residual_j − min_j residual_j) after each placement.
	MetricResidualImbalance = "dvbp_residual_imbalance"
)

// MetricStrandedTimeDim returns the per-dimension stranded capacity·time
// gauge name (the Registry has no label support, so dimensions are suffixed).
func MetricStrandedTimeDim(d int) string {
	return fmt.Sprintf("dvbp_stranded_capacity_time_d%d_total", d)
}

// DefaultImbalanceBuckets are the residual-imbalance histogram bounds:
// residuals live in [0, 1], so imbalance does too.
var DefaultImbalanceBuckets = []float64{0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1}

// FragSnapshot is the instantaneous fragmentation state of an open-bin set.
// It is a pure function of the bins' load vectors (FragOf) — independent of
// the event history that produced them — which is what makes the tracker's
// incrementally maintained copy testable against recomputation and invariant
// under event reorderings that reach the same active set.
//
// Per bin, residual_d = 1 − load_d; the usable headroom is min_j residual_j
// (no item larger than that fits in every dimension at once); the stranded
// capacity in dimension d is residual_d − min_j residual_j — headroom that
// exists in d but cannot be packed because some other dimension is binding.
type FragSnapshot struct {
	// OpenBins is the number of open bins observed.
	OpenBins int
	// Load and Stranded are per-dimension totals over the open bins.
	Load     []float64
	Stranded []float64
	// Imbalance is Σ_bins (max_j residual_j − min_j residual_j).
	Imbalance float64
}

// binFrag computes one bin's contribution: its per-dimension stranded
// capacity written into dst, and its residual imbalance returned.
func binFrag(b *core.Bin, dst []float64) float64 {
	usable, maxR := math.Inf(1), math.Inf(-1)
	d := b.Dim()
	for j := 0; j < d; j++ {
		r := 1 - b.LoadAt(j)
		if r < usable {
			usable = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if usable < 0 {
		usable = 0
	}
	for j := 0; j < d; j++ {
		if r := 1 - b.LoadAt(j); r > usable {
			dst[j] = r - usable
		} else {
			dst[j] = 0
		}
	}
	imb := maxR - usable
	if imb < 0 {
		imb = 0
	}
	return imb
}

// FragOf recomputes the fragmentation snapshot of an open-bin set from
// scratch. Nil entries (holes in the engine's open slice) are skipped.
func FragOf(d int, bins []*core.Bin) FragSnapshot {
	s := FragSnapshot{Load: make([]float64, d), Stranded: make([]float64, d)}
	scratch := make([]float64, d)
	for _, b := range bins {
		if b == nil {
			continue
		}
		s.OpenBins++
		s.Imbalance += binFrag(b, scratch)
		for j := 0; j < d; j++ {
			s.Load[j] += b.LoadAt(j)
			s.Stranded[j] += scratch[j]
		}
	}
	return s
}

// fragBinState is one open bin's current contribution to the tracker's
// aggregates, kept so a bin update can be applied as subtract-old/add-new.
type fragBinState struct {
	load     []float64
	stranded []float64
	imb      float64
}

// FragTracker integrates fragmentation over a single simulation run. Attach
// it with core.WithObserver: it maintains a FragSnapshot incrementally (O(d)
// per event) and accrues the time integrals between event timestamps —
// stranded capacity·time per dimension, used and total bin·time, and
// time-weighted residual imbalance. A tracker observes one run; construct
// one per simulation (it is not safe for concurrent engines).
//
// The integrals are piecewise-constant sums in plain float64 — telemetry,
// not part of any bit-identity contract. The instantaneous snapshot is the
// contract: Current() must always equal FragOf over the engine's open set
// (up to float64 addition drift), which the property tests enforce.
type FragTracker struct {
	core.BaseObserver

	d     int
	reg   *Registry
	lastT float64
	bins  map[int]*fragBinState

	cur FragSnapshot // incrementally maintained

	binTime      float64
	usedTime     []float64
	strandedTime []float64
	imbTime      float64

	strandedCap  *Gauge
	strandedTot  *Gauge
	strandedDims []*Gauge
	imbHist      *Histogram
}

var (
	_ core.Observer          = (*FragTracker)(nil)
	_ core.DepartureObserver = (*FragTracker)(nil)
	_ core.MigrationObserver = (*FragTracker)(nil)
)

// NewFragTracker returns a tracker for d-dimensional runs. reg may be nil;
// when given, the tracker publishes the stranded-capacity gauges and the
// residual-imbalance histogram into it.
func NewFragTracker(d int, reg *Registry) *FragTracker {
	tr := &FragTracker{
		d:    d,
		reg:  reg,
		bins: make(map[int]*fragBinState),
		cur: FragSnapshot{
			Load:     make([]float64, d),
			Stranded: make([]float64, d),
		},
		usedTime:     make([]float64, d),
		strandedTime: make([]float64, d),
	}
	if reg != nil {
		tr.strandedCap = reg.Gauge(MetricStrandedCapacity, "current stranded open capacity, summed over dimensions")
		tr.strandedTot = reg.Gauge(MetricStrandedTime, "accrued stranded capacity·time, summed over dimensions")
		tr.strandedDims = make([]*Gauge, d)
		for j := 0; j < d; j++ {
			tr.strandedDims[j] = reg.Gauge(MetricStrandedTimeDim(j),
				fmt.Sprintf("accrued stranded capacity·time in dimension %d", j))
		}
		tr.imbHist = reg.Histogram(MetricResidualImbalance,
			"receiving bin's residual imbalance after each placement", DefaultImbalanceBuckets...)
	}
	return tr
}

// advance accrues the integrals from the last observed event time to t.
// Event times are nondecreasing within a run, so dt < 0 never happens on the
// engine's callback stream.
func (tr *FragTracker) advance(t float64) {
	dt := t - tr.lastT
	if dt > 0 {
		tr.binTime += float64(tr.cur.OpenBins) * dt
		tr.imbTime += tr.cur.Imbalance * dt
		for j := 0; j < tr.d; j++ {
			tr.usedTime[j] += tr.cur.Load[j] * dt
			tr.strandedTime[j] += tr.cur.Stranded[j] * dt
		}
	}
	tr.lastT = t
}

// upsert installs a bin's fresh contribution, replacing its previous one.
func (tr *FragTracker) upsert(b *core.Bin) float64 {
	st, ok := tr.bins[b.ID]
	if !ok {
		st = &fragBinState{load: make([]float64, tr.d), stranded: make([]float64, tr.d)}
		tr.bins[b.ID] = st
		tr.cur.OpenBins++
	} else {
		tr.cur.Imbalance -= st.imb
		for j := 0; j < tr.d; j++ {
			tr.cur.Load[j] -= st.load[j]
			tr.cur.Stranded[j] -= st.stranded[j]
		}
	}
	st.imb = binFrag(b, st.stranded)
	tr.cur.Imbalance += st.imb
	for j := 0; j < tr.d; j++ {
		st.load[j] = b.LoadAt(j)
		tr.cur.Load[j] += st.load[j]
		tr.cur.Stranded[j] += st.stranded[j]
	}
	tr.publish()
	return st.imb
}

// drop removes a closed bin's contribution.
func (tr *FragTracker) drop(binID int) {
	st, ok := tr.bins[binID]
	if !ok {
		return
	}
	delete(tr.bins, binID)
	tr.cur.OpenBins--
	tr.cur.Imbalance -= st.imb
	for j := 0; j < tr.d; j++ {
		tr.cur.Load[j] -= st.load[j]
		tr.cur.Stranded[j] -= st.stranded[j]
	}
	tr.publish()
}

// publish refreshes the registry gauges, when a registry is attached.
func (tr *FragTracker) publish() {
	if tr.reg == nil {
		return
	}
	cap, tot := 0.0, 0.0
	for j := 0; j < tr.d; j++ {
		cap += tr.cur.Stranded[j]
		tot += tr.strandedTime[j]
		tr.strandedDims[j].Set(tr.strandedTime[j])
	}
	tr.strandedCap.Set(cap)
	tr.strandedTot.Set(tot)
}

// AfterPack implements core.Observer.
func (tr *FragTracker) AfterPack(req core.Request, b *core.Bin, opened bool) {
	tr.advance(req.Arrival)
	imb := tr.upsert(b)
	if tr.imbHist != nil {
		tr.imbHist.Observe(imb)
	}
}

// ItemDeparted implements core.DepartureObserver: a departure that leaves
// the bin open changes its residual shape in place.
func (tr *FragTracker) ItemDeparted(itemID int, b *core.Bin, t float64) {
	tr.advance(t)
	tr.upsert(b)
}

// ItemMigrated implements core.MigrationObserver: a consolidation move
// reshapes both bins at the pass instant. A move that drained its source has
// already dropped it through BinClosed (the engine fires the close first), so
// only a source that stayed open is refreshed.
func (tr *FragTracker) ItemMigrated(itemID int, from, to *core.Bin, t, cost float64, drained bool) {
	tr.advance(t)
	tr.upsert(to)
	if !drained {
		tr.upsert(from)
	}
}

// BinClosed implements core.Observer. Crash closes arrive here too, so the
// tracker needs no FailureObserver methods to keep the open set exact.
func (tr *FragTracker) BinClosed(b *core.Bin, t float64) {
	tr.advance(t)
	tr.drop(b.ID)
}

// Current returns the incrementally maintained instantaneous snapshot (the
// slices are copies).
func (tr *FragTracker) Current() FragSnapshot {
	out := tr.cur
	out.Load = append([]float64(nil), tr.cur.Load...)
	out.Stranded = append([]float64(nil), tr.cur.Stranded...)
	return out
}

// FragSummary is the run-level fragmentation account a FragTracker
// accumulates, in the waste/fragmentation terms of the FARB evaluation:
// capacity·time is the resource actually rented (BinTime per dimension),
// UsedTime the part items occupied, FreeTime the rest, and StrandedTime the
// part of FreeTime locked behind a binding dimension.
type FragSummary struct {
	Dim float64 `json:"dim"`
	// Horizon is the time of the last observed event.
	Horizon float64 `json:"horizon"`
	// BinTime is ∫ openBins dt — equal to the usage-time cost once every
	// bin has closed.
	BinTime float64 `json:"bin_time"`
	// UsedTime, FreeTime and StrandedTime are per-dimension integrals:
	// ∫ Σ_bins load_d dt, BinTime − UsedTime_d, and
	// ∫ Σ_bins stranded_d dt respectively.
	UsedTime     []float64 `json:"used_time"`
	FreeTime     []float64 `json:"free_time"`
	StrandedTime []float64 `json:"stranded_time"`
	// WastePct is the fraction of rented capacity·time no item occupied:
	// 100 · Σ_d FreeTime_d / (d · BinTime).
	WastePct float64 `json:"waste_pct"`
	// FragPct is the fraction of the free capacity·time that was stranded:
	// 100 · Σ_d StrandedTime_d / Σ_d FreeTime_d (0 when nothing was free).
	FragPct float64 `json:"frag_pct"`
	// MeanImbalance is the time-weighted mean residual imbalance per open
	// bin: ∫ Σ_bins imbalance dt / BinTime (0 when no bin·time accrued).
	MeanImbalance float64 `json:"mean_imbalance"`
}

// Summary closes out the integrals and returns the run-level account. Call
// it after the run finishes (every bin closed); calling earlier reports the
// integrals up to the last observed event.
func (tr *FragTracker) Summary() FragSummary {
	s := FragSummary{
		Dim:          float64(tr.d),
		Horizon:      tr.lastT,
		BinTime:      tr.binTime,
		UsedTime:     append([]float64(nil), tr.usedTime...),
		StrandedTime: append([]float64(nil), tr.strandedTime...),
		FreeTime:     make([]float64, tr.d),
	}
	freeSum, strandedSum := 0.0, 0.0
	for j := 0; j < tr.d; j++ {
		s.FreeTime[j] = tr.binTime - tr.usedTime[j]
		freeSum += s.FreeTime[j]
		strandedSum += tr.strandedTime[j]
	}
	if tot := float64(tr.d) * tr.binTime; tot > 0 {
		s.WastePct = 100 * freeSum / tot
	}
	if freeSum > 0 {
		s.FragPct = 100 * strandedSum / freeSum
	}
	if tr.binTime > 0 {
		s.MeanImbalance = tr.imbTime / tr.binTime
	}
	return s
}
