package workload

import (
	"fmt"
	"sort"
	"strings"

	"dvbp/internal/item"
	"dvbp/internal/stats"
)

// Description summarises a trace for inspection tooling: duration and size
// distributions, arrival intensity and concurrency profile.
type Description struct {
	Items int
	Dim   int
	Mu    float64
	Span  float64

	Durations stats.Summary
	// DurationPercentiles holds p50/p90/p99.
	DurationP50, DurationP90, DurationP99 float64

	// SizeMaxNorm summarises ‖s(r)‖∞ across items.
	SizeMaxNorm stats.Summary

	// ArrivalRate is items per unit time over the hull.
	ArrivalRate float64

	// PeakConcurrency is the max number of simultaneously active items;
	// MeanConcurrency the time average over the hull.
	PeakConcurrency int
	MeanConcurrency float64
}

// Describe computes the summary. The list must be valid.
func Describe(l *item.List) (Description, error) {
	if err := l.Validate(); err != nil {
		return Description{}, err
	}
	d := Description{Items: l.Len(), Dim: l.Dim, Mu: l.Mu(), Span: l.Span()}

	durs := make([]float64, 0, l.Len())
	var durAcc, sizeAcc stats.Accumulator
	for _, it := range l.Items {
		durs = append(durs, it.Duration())
		durAcc.Add(it.Duration())
		sizeAcc.Add(it.Size.MaxNorm())
	}
	d.Durations = durAcc.Summarize()
	d.SizeMaxNorm = sizeAcc.Summarize()
	d.DurationP50 = stats.Percentile(durs, 50)
	d.DurationP90 = stats.Percentile(durs, 90)
	d.DurationP99 = stats.Percentile(durs, 99)

	hull := l.Hull()
	if hull.Length() > 0 {
		d.ArrivalRate = float64(l.Len()) / hull.Length()
	}

	// Concurrency sweep.
	type ev struct {
		t     float64
		delta int
	}
	events := make([]ev, 0, 2*l.Len())
	for _, it := range l.Items {
		events = append(events, ev{it.Arrival, +1}, ev{it.Departure, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta
	})
	cur, area := 0, 0.0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			cur += events[i].delta
			i++
		}
		if cur > d.PeakConcurrency {
			d.PeakConcurrency = cur
		}
		if i < len(events) {
			area += float64(cur) * (events[i].t - t)
		}
	}
	if hull.Length() > 0 {
		d.MeanConcurrency = area / hull.Length()
	}
	return d, nil
}

// String renders a multi-line human-readable report.
func (d Description) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "items:        %d (d=%d)\n", d.Items, d.Dim)
	fmt.Fprintf(&b, "span:         %.4g, mu: %.4g\n", d.Span, d.Mu)
	fmt.Fprintf(&b, "durations:    %s\n", d.Durations)
	fmt.Fprintf(&b, "  percentiles p50=%.4g p90=%.4g p99=%.4g\n", d.DurationP50, d.DurationP90, d.DurationP99)
	fmt.Fprintf(&b, "size (Linf):  %s\n", d.SizeMaxNorm)
	fmt.Fprintf(&b, "arrival rate: %.4g items/time\n", d.ArrivalRate)
	fmt.Fprintf(&b, "concurrency:  peak=%d mean=%.4g\n", d.PeakConcurrency, d.MeanConcurrency)
	return b.String()
}
