package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// policySpec is one registry row: a canonical policy name, the extra
// spellings NewPolicy accepts for it, an optional note shown by
// PolicySpellings, and the constructor.
type policySpec struct {
	canonical string
	aliases   []string
	note      string
	make      func(seed int64) Policy
}

// familySpec is a parameterised policy family: a listing row (placeholder
// canonical name plus note) and a prefix parser NewPolicy falls back to when
// no concrete spelling matches.
type familySpec struct {
	display string
	note    string
	parse   func(lower string) (Policy, bool)
}

// policyTable is the policy registry. Rows are appended here once; every
// derived surface — NewPolicy's parser, PolicySpellings, SortedPolicyNames,
// PolicyFlagUsage — is generated from it, so a new policy registers in
// exactly one place and the CLIs cannot drift from the engine's vocabulary.
var policyTable = []policySpec{
	{canonical: "FirstFit", aliases: []string{"ff"},
		make: func(int64) Policy { return NewFirstFit() }},
	{canonical: "NextFit", aliases: []string{"nf"},
		make: func(int64) Policy { return NewNextFit() }},
	{canonical: "BestFit", aliases: []string{"bf", "BestFit-Linf"},
		note: "(also BestFit-L1, BestFit-Lp<p> with p >= 1)",
		make: func(int64) Policy { return NewBestFit(MaxLoad()) }},
	{canonical: "WorstFit", aliases: []string{"wf", "WorstFit-Linf"},
		note: "(also WorstFit-L1, WorstFit-Lp<p> with p >= 1)",
		make: func(int64) Policy { return NewWorstFit(MaxLoad()) }},
	{canonical: "LastFit", aliases: []string{"lf"},
		make: func(int64) Policy { return NewLastFit() }},
	{canonical: "RandomFit", aliases: []string{"rf"},
		note: "(seeded with -seed)",
		make: func(seed int64) Policy { return NewRandomFit(seed) }},
	{canonical: "MoveToFront", aliases: []string{"mtf", "mf"},
		make: func(int64) Policy { return NewMoveToFront() }},
	{canonical: "BestFit-L1",
		make: func(int64) Policy { return NewBestFit(SumLoad()) }},
	{canonical: "WorstFit-L1",
		make: func(int64) Policy { return NewWorstFit(SumLoad()) }},
	{canonical: "DotProduct", aliases: []string{"dot", "dp"},
		note: "(max residual-size alignment, DESIGN.md §13)",
		make: func(int64) Policy { return NewDotProduct() }},
	{canonical: "L2Residual", aliases: []string{"l2"},
		note: "(min post-placement residual norm)",
		make: func(int64) Policy { return NewL2Residual() }},
	{canonical: "FARB", aliases: []string{"balancefit"},
		note: "(balance/fullness/L2 composite score)",
		make: func(int64) Policy { return NewFARB() }},
	{canonical: "AdaptiveHybrid", aliases: []string{"hybrid", "ah"},
		note: "(switches DotProduct/FARB/BestFit on live cluster imbalance)",
		make: func(int64) Policy { return NewAdaptiveHybrid() }},
}

// policyFamilies are the parameterised forms, tried after the spelling index.
var policyFamilies = []familySpec{
	{display: "BestFit-Lp<p>", note: "(Best Fit under the Lp load measure, p >= 1)",
		parse: func(n string) (Policy, bool) {
			if p, ok := strings.CutPrefix(n, "bestfit-lp"); ok {
				if x, err := strconv.ParseFloat(p, 64); err == nil && x >= 1 {
					return NewBestFit(PNormLoad(x)), true
				}
			}
			return nil, false
		}},
	{display: "WorstFit-Lp<p>", note: "(Worst Fit under the Lp load measure, p >= 1)",
		parse: func(n string) (Policy, bool) {
			if p, ok := strings.CutPrefix(n, "worstfit-lp"); ok {
				if x, err := strconv.ParseFloat(p, 64); err == nil && x >= 1 {
					return NewWorstFit(PNormLoad(x)), true
				}
			}
			return nil, false
		}},
	{display: "HarmonicFit-<K>", note: "(classical Harmonic baseline, K >= 1 classes)",
		parse: func(n string) (Policy, bool) {
			if p, ok := strings.CutPrefix(n, "harmonicfit-"); ok {
				if k, err := strconv.Atoi(p); err == nil && k >= 1 {
					return NewHarmonicFit(k), true
				}
			}
			return nil, false
		}},
}

// buildSpellingIndex maps every accepted spelling (lower-cased canonical
// names and aliases) to its registry row, rejecting duplicates: two rows
// claiming one spelling would make NewPolicy's answer depend on table order,
// which is exactly the silent drift the registry exists to prevent.
func buildSpellingIndex(specs []policySpec) (map[string]*policySpec, error) {
	idx := make(map[string]*policySpec, 2*len(specs))
	for i := range specs {
		sp := &specs[i]
		for _, spelling := range append([]string{sp.canonical}, sp.aliases...) {
			key := strings.ToLower(spelling)
			if prev, dup := idx[key]; dup && prev != sp {
				return nil, fmt.Errorf("core: duplicate policy spelling %q claimed by %s and %s",
					spelling, prev.canonical, sp.canonical)
			}
			idx[key] = sp
		}
	}
	return idx, nil
}

var policyBySpelling = func() map[string]*policySpec {
	idx, err := buildSpellingIndex(policyTable)
	if err != nil {
		panic(err)
	}
	return idx
}()

// NewPolicy constructs a policy from any registered spelling
// (case-insensitive; see PolicySpellings for the full vocabulary) or
// parameterised family form. seed only affects RandomFit.
func NewPolicy(name string, seed int64) (Policy, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if sp, ok := policyBySpelling[n]; ok {
		return sp.make(seed), nil
	}
	for _, fam := range policyFamilies {
		if p, ok := fam.parse(n); ok {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: unknown policy %q (known: %s)", name, strings.Join(SortedPolicyNames(), ", "))
}

// PolicyNames returns the canonical names of the seven policies studied in
// the paper's experimental section, in the paper's presentation order.
func PolicyNames() []string {
	return []string{
		"MoveToFront",
		"FirstFit",
		"BestFit",
		"NextFit",
		"LastFit",
		"RandomFit",
		"WorstFit",
	}
}

// StandardPolicies returns fresh instances of all seven experiment policies.
// RandomFit uses the given seed.
func StandardPolicies(seed int64) []Policy {
	ps := make([]Policy, 0, 7)
	for _, n := range PolicyNames() {
		p, err := NewPolicy(n, seed)
		if err != nil {
			panic("core: registry inconsistency: " + err.Error())
		}
		ps = append(ps, p)
	}
	return ps
}

// SortedPolicyNames returns every registered canonical name in lexicographic
// order (case-insensitive), deduplicated.
func SortedPolicyNames() []string {
	out := make([]string, 0, len(policyTable))
	for i := range policyTable {
		out = append(out, policyTable[i].canonical)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i]) < strings.ToLower(out[j])
	})
	return out
}

// PolicySpellings returns one line per registered canonical policy name and
// parameterised family, sorted case-insensitively, listing the aliases and
// notes. Aliases that restate the canonical spelling are deduplicated. CLIs
// print it from -list so the help text and the parser cannot drift apart:
// every spelling shown here is matched by a registry round-trip test.
func PolicySpellings() []string {
	type line struct{ spellings, note string }
	lines := make([]line, 0, len(policyTable)+len(policyFamilies))
	for _, r := range policyTable {
		parts := []string{r.canonical}
		seen := map[string]bool{strings.ToLower(r.canonical): true}
		for _, a := range r.aliases {
			if k := strings.ToLower(a); !seen[k] {
				seen[k] = true
				parts = append(parts, a)
			}
		}
		lines = append(lines, line{spellings: strings.Join(parts, " | "), note: r.note})
	}
	for _, fam := range policyFamilies {
		lines = append(lines, line{spellings: fam.display, note: fam.note})
	}
	sort.Slice(lines, func(i, j int) bool {
		return strings.ToLower(lines[i].spellings) < strings.ToLower(lines[j].spellings)
	})
	width := 0
	for _, l := range lines {
		if l.note != "" && len(l.spellings) > width {
			width = len(l.spellings)
		}
	}
	out := make([]string, 0, len(lines))
	for _, l := range lines {
		if l.note == "" {
			out = append(out, l.spellings)
			continue
		}
		out = append(out, fmt.Sprintf("%-*s %s", width, l.spellings, l.note))
	}
	return out
}

// PolicyFlagUsage is the shared help text for CLI -policy flags: the
// canonical spellings in sorted order, with a pointer to the full alias
// listing.
func PolicyFlagUsage() string {
	return "packing policy: " + strings.Join(SortedPolicyNames(), ", ") +
		", or HarmonicFit-<K>; 'dvbpsim -list' shows aliases and measures"
}
