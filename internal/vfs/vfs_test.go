package vfs

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
	"testing"
)

func write(t *testing.T, f File, data string) {
	t.Helper()
	if _, err := f.Write([]byte(data)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readAll(t *testing.T, m *Mem, path string) string {
	t.Helper()
	data, err := m.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}

// TestMemContentDurability: written bytes are volatile until fsync; a lost
// crash reverts to the synced prefix, a flushed crash keeps everything, a
// torn crash keeps a salt-chosen prefix of the unsynced tail.
func TestMemContentDurability(t *testing.T) {
	build := func(t *testing.T) *Mem {
		m := NewMem()
		if err := m.MkdirAll("d", 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := m.OpenFile("d/a", os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		write(t, f, "durable")
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := m.SyncDir("d"); err != nil {
			t.Fatal(err)
		}
		write(t, f, "-volatile")
		return m
	}

	m := build(t)
	m.CrashNow(CrashLost)
	m.Restart()
	if got := readAll(t, m, "d/a"); got != "durable" {
		t.Fatalf("lost crash kept %q, want %q", got, "durable")
	}

	m = build(t)
	m.CrashNow(CrashFlushed)
	m.Restart()
	if got := readAll(t, m, "d/a"); got != "durable-volatile" {
		t.Fatalf("flushed crash kept %q, want %q", got, "durable-volatile")
	}

	m = build(t)
	m.SetCrashPoint(m.Ops()+1, CrashTorn, 4) // keep 4 bytes of the 9-byte tail
	if err := m.SyncDir("d"); err != ErrCrashed {
		t.Fatalf("armed op returned %v, want ErrCrashed", err)
	}
	m.Restart()
	if got := readAll(t, m, "d/a"); got != "durable-vol" {
		t.Fatalf("torn crash kept %q, want %q", got, "durable-vol")
	}
}

// TestMemDirEntryDurability: a created-and-fsynced file still vanishes in a
// crash if its directory entry was never synced; SyncDir pins it.
func TestMemDirEntryDurability(t *testing.T) {
	m := NewMem()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("d/a", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "x")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.CrashNow(CrashLost)
	m.Restart()
	if _, err := m.ReadFile("d/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("file with unsynced dir entry survived the crash: %v", err)
	}

	m = NewMem()
	m.MkdirAll("d", 0o755)
	f, _ = m.OpenFile("d/a", os.O_RDWR|os.O_CREATE, 0o644)
	write(t, f, "x")
	f.Sync()
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.CrashNow(CrashLost)
	m.Restart()
	if got := readAll(t, m, "d/a"); got != "x" {
		t.Fatalf("synced entry lost: %q", got)
	}
}

// TestMemRenameAtomicity: before the directory sync a crash sees the old
// target; after it, the new one. The displaced inode's content never mixes.
func TestMemRenameAtomicity(t *testing.T) {
	setup := func(t *testing.T) *Mem {
		m := NewMem()
		m.MkdirAll("d", 0o755)
		f, _ := m.OpenFile("d/final", os.O_RDWR|os.O_CREATE, 0o644)
		write(t, f, "old")
		f.Sync()
		m.SyncDir("d")
		tmp, err := m.CreateTemp("d", "final.tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		write(t, tmp, "new")
		tmp.Sync()
		tmp.Close()
		if err := m.Rename(tmp.Name(), "d/final"); err != nil {
			t.Fatal(err)
		}
		return m
	}

	m := setup(t)
	m.CrashNow(CrashLost) // before SyncDir
	m.Restart()
	if got := readAll(t, m, "d/final"); got != "old" {
		t.Fatalf("pre-syncdir crash sees %q, want old", got)
	}

	m = setup(t)
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.CrashNow(CrashLost)
	m.Restart()
	if got := readAll(t, m, "d/final"); got != "new" {
		t.Fatalf("post-syncdir crash sees %q, want new", got)
	}
	// The temp name must be durably gone too.
	entries, err := m.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "final" {
		t.Fatalf("directory after crash: %v", entries)
	}
}

// TestMemHandlesDieAtCrash: handles opened before a power loss fail with
// ErrCrashed afterwards, even after Restart.
func TestMemHandlesDieAtCrash(t *testing.T) {
	m := NewMem()
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile("d/a", os.O_RDWR|os.O_CREATE, 0o644)
	m.CrashNow(CrashLost)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on dead handle: %v", err)
	}
	m.Restart()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle revived after restart: %v", err)
	}
}

// TestInjectorPlanAndSticky: Nth-op faults fire exactly once at the right
// occurrence; sticky errors hold until cleared.
func TestInjectorPlanAndSticky(t *testing.T) {
	mem := NewMem()
	mem.MkdirAll("d", 0o755)
	in := NewInjector(mem, Fault{Kind: FaultWrite, Nth: 2, Err: syscall.EIO})
	f, err := in.OpenFile("d/a", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("1")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("2")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2 = %v, want EIO", err)
	}
	if _, err := f.Write([]byte("3")); err != nil {
		t.Fatalf("write 3 after one-shot fault: %v", err)
	}

	in.SetSticky(syscall.ENOSPC)
	if _, err := f.Write([]byte("4")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sticky write = %v, want ENOSPC", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("sticky sync = %v, want ENOSPC", err)
	}
	if _, err := in.ReadFile("d/a"); err != nil {
		t.Fatalf("reads must pass through a sick disk: %v", err)
	}
	in.ClearSticky()
	if _, err := f.Write([]byte("5")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
}

// TestParsePlan: round trip and rejection.
func TestParsePlan(t *testing.T) {
	plan, err := ParsePlan("write:3:enospc, sync:1:eio")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 || plan[0] != (Fault{FaultWrite, 3, syscall.ENOSPC}) || plan[1] != (Fault{FaultSync, 1, syscall.EIO}) {
		t.Fatalf("plan = %v", plan)
	}
	if got := PlanString(plan); got != "write:3:enospc,sync:1:eio" {
		t.Fatalf("PlanString = %q", got)
	}
	for _, bad := range []string{"write:0:eio", "write:x:eio", "write:1:ebadf", "flush:1:eio", "write:1"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	if plan, err := ParsePlan(""); err != nil || plan != nil {
		t.Fatalf("empty plan: %v %v", plan, err)
	}
}

// TestMemDeterministicTempNames: CreateTemp names derive from a counter, so
// identical op sequences produce identical namespaces.
func TestMemDeterministicTempNames(t *testing.T) {
	names := func() []string {
		m := NewMem()
		m.MkdirAll("d", 0o755)
		var out []string
		for i := 0; i < 3; i++ {
			f, err := m.CreateTemp("d", "snap.tmp-*")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f.Name())
			f.Close()
		}
		return out
	}
	a, b := names(), names()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("temp names diverge: %v vs %v", a, b)
		}
	}
}
