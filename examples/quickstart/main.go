// Quickstart: pack a handful of jobs online, inspect the packing, and
// compare the cost against the Lemma 1 lower bounds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dvbp"
)

func main() {
	// A 2-dimensional instance: each job demands (CPU, memory) fractions of
	// one server. Jobs are (arrival, departure, size).
	l := dvbp.NewList(2)
	l.Add(0, 10, dvbp.Vec(0.5, 0.3)) // long-running service
	l.Add(1, 3, dvbp.Vec(0.4, 0.6))  // short batch job
	l.Add(2, 9, dvbp.Vec(0.3, 0.3))  // medium job
	l.Add(4, 6, dvbp.Vec(0.8, 0.2))  // CPU-heavy spike
	l.Add(5, 12, dvbp.Vec(0.2, 0.5)) // memory-heavy tail

	// Move To Front is the paper's recommended policy: bounded competitive
	// ratio ((2μ+1)d + 1) and the best average-case cost.
	res, err := dvbp.Simulate(l, dvbp.NewMoveToFront())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy:       %s\n", res.Algorithm)
	fmt.Printf("cost:         %.2f server-time units\n", res.Cost)
	fmt.Printf("bins opened:  %d (peak %d concurrent)\n", res.BinsOpened, res.MaxConcurrentBins)
	for _, b := range res.Bins {
		fmt.Printf("  bin %d: open [%.1f, %.1f), %d jobs\n", b.BinID, b.OpenedAt, b.ClosedAt, b.Packed)
	}
	for _, p := range res.Placements {
		fmt.Printf("  job %d -> bin %d at t=%.1f (new bin: %v)\n", p.ItemID, p.BinID, p.Time, p.Opened)
	}

	// How close is that to optimal? Lemma 1 lower-bounds OPT; the offline
	// heuristics upper-bound it.
	lb := dvbp.LowerBounds(l)
	up, err := dvbp.OfflineBestEstimate(l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOPT is in [%.2f, %.2f]; online cost %.2f is within %.2fx of optimal\n",
		lb.Best(), up.Cost, res.Cost, res.Cost/lb.Best())

	// Compare all seven Any Fit policies on the same jobs.
	fmt.Println("\nall policies:")
	for _, p := range dvbp.StandardPolicies(1) {
		r, err := dvbp.Simulate(l, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s cost=%.2f bins=%d\n", p.Name(), r.Cost, r.BinsOpened)
	}
}
