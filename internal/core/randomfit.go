package core

import "math/rand"

// RandomFit packs an arriving item into a bin chosen uniformly at random
// among the open bins that can hold it (Section 7). It is an Any Fit
// algorithm: a new bin is opened only when no open bin fits.
//
// RandomFit is deterministic given its seed; Reset re-seeds so repeated runs
// of the same instance reproduce the same packing.
type RandomFit struct {
	seed int64
	src  countingSource
	rng  *rand.Rand
}

// countingSource wraps the standard PRNG source and counts its draws. Every
// consumption path (Int63 and Uint64 alike) advances the underlying
// generator by exactly one step, so the draw count alone pins the generator
// position: the checkpoint codec serialises (seed, draws) and restore
// fast-forwards a fresh source by that many steps, landing on a
// bit-identical state. The wrapper adds no allocation to the Select path.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src = rand.NewSource(seed).(rand.Source64)
	s.draws = 0
}

// NewRandomFit returns a Random Fit policy driven by the given seed.
func NewRandomFit(seed int64) *RandomFit {
	rf := &RandomFit{seed: seed}
	rf.Reset()
	return rf
}

// Name implements Policy.
func (*RandomFit) Name() string { return "RandomFit" }

// Reset implements Policy: restores the initial RNG state.
func (rf *RandomFit) Reset() {
	rf.src.Seed(rf.seed)
	rf.rng = rand.New(&rf.src)
}

// Select implements Policy using reservoir sampling over the fitting bins, so
// a single pass suffices and each fitting bin is equally likely.
func (rf *RandomFit) Select(req Request, open []*Bin) *Bin {
	var chosen *Bin
	n := 0
	for _, b := range open {
		if !b.Fits(req.Size) {
			continue
		}
		n++
		if rf.rng.Intn(n) == 0 {
			chosen = b
		}
	}
	return chosen
}

// OnPack implements Policy.
func (*RandomFit) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*RandomFit) OnClose(*Bin) {}
