// Command dvbpbench regenerates the paper's evaluation end to end:
//
//	-experiment fig4                 Figure 4 (all three panels or -d one)
//	-experiment table1               Table 1 lower-bound constructions
//	-experiment ubcheck              Table 1 upper-bound validation
//	-experiment trueratio            true ratios via exact OPT
//	-experiment quality              packing-vs-alignment metrics
//	-experiment ablation-bestfit     Best Fit load-measure ablation
//	-experiment ablation-clairvoyant clairvoyant-vs-online ablation
//	-experiment ablation-billing     billing-granularity ablation
//	-experiment all                  everything above
//
// The full paper grid (-instances 1000) reproduces Table 2 exactly; smaller
// -instances values keep the shape with wider error bars. Results print as
// ASCII tables and, with -out DIR, are also written as CSV and SVG.
//
// Observability: -metrics attaches a shared metrics.Collector to every
// simulation the chosen experiments run and dumps aggregate JSON +
// Prometheus-text snapshots at the end (also into -out as metrics.json /
// metrics.prom). -cpuprofile and -memprofile write pprof profiles alongside
// the benchmark numbers, and -pprof ADDR serves net/http/pprof live while
// the run executes (e.g. -pprof localhost:6060).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dvbp/internal/core"
	"dvbp/internal/experiments"
	"dvbp/internal/metrics"
	"dvbp/internal/report"
)

// collector is the run-wide metrics collector (nil without -metrics).
var collector *metrics.Collector

// observer returns the collector as a core.Observer, or a nil interface so
// experiment configs treat it as absent.
func observer() core.Observer {
	if collector == nil {
		return nil
	}
	return collector
}

// cleanup flushes profiles; fatal runs it before exiting so -cpuprofile
// output survives failed runs.
var cleanup = func() {}

// benchCtx carries the -timeout deadline into every experiment; experiments
// thread it to internal/parallel, which cancels outstanding trials.
var benchCtx = context.Background()

// outDirGlobal mirrors -out so fatal can flush partial metrics on timeout.
var outDirGlobal string

func main() {
	var (
		experiment = flag.String("experiment", "fig4", "fig4 | table1 | ubcheck | trueratio | quality | ablation-bestfit | ablation-clairvoyant | ablation-billing | all")
		dFlag      = flag.Int("d", 0, "restrict fig4 to one dimension panel (0 = all of 1,2,5)")
		instances  = flag.Int("instances", 1000, "instances per cell (paper: 1000)")
		mus        = flag.String("mus", "1,2,5,10,100,200", "comma-separated mu sweep")
		seed       = flag.Int64("seed", 1, "master seed")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir     = flag.String("out", "", "directory for CSV/SVG artefacts (optional)")
		metricsF   = flag.Bool("metrics", false, "collect engine metrics across all runs and dump JSON + Prometheus snapshots")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address while running (e.g. localhost:6060)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); on expiry profiles and partial metrics are flushed and the exit code is 2")

		benchJSON     = flag.String("benchjson", "", "convert `go test -bench` output from this file (- = stdin) to JSON and exit; see make bench-json")
		benchJSONBase = flag.String("benchjson-baseline", "", "optional second -bench output embedded as the baseline section")
		benchJSONOut  = flag.String("benchjson-out", "", "destination for -benchjson output (default stdout)")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchJSONBase, *benchJSONOut); err != nil {
			fatal(err)
		}
		return
	}

	outDirGlobal = *outDir
	if *timeout > 0 {
		var cancel context.CancelFunc
		benchCtx, cancel = context.WithTimeout(benchCtx, *timeout)
		defer cancel()
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *metricsF {
		collector = metrics.NewCollector()
	}
	startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	defer runCleanup()

	run := func(name string) {
		switch name {
		case "fig4":
			runFigure4(*dFlag, *instances, *mus, *seed, *workers, *outDir)
		case "table1":
			runTable1(*seed, *outDir)
		case "ubcheck":
			runUBCheck(*instances, *seed, *workers)
		case "ablation-bestfit":
			runAblationBestFit(*instances, *seed, *workers, *outDir)
		case "ablation-clairvoyant":
			runAblationClairvoyant(*instances, *seed, *workers, *outDir)
		case "ablation-billing":
			runAblationBilling(*instances, *seed, *workers, *outDir)
		case "trueratio":
			runTrueRatio(*instances, *seed, *workers, *outDir)
		case "quality":
			runQuality(*instances, *seed, *workers, *outDir)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}
	if *experiment == "all" {
		for _, e := range []string{"fig4", "table1", "ubcheck", "trueratio", "quality", "ablation-bestfit", "ablation-clairvoyant", "ablation-billing"} {
			if err := benchCtx.Err(); err != nil {
				fatal(err)
			}
			run(e)
		}
	} else {
		run(*experiment)
	}

	if collector != nil {
		dumpMetrics(*outDir)
	}
}

// startProfiling wires the requested profiling sinks and installs cleanup.
func startProfiling(cpuProfile, memProfile, pprofAddr string) {
	if pprofAddr != "" {
		go func() {
			// The blank net/http/pprof import registers its handlers on the
			// default mux.
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dvbpbench: pprof server:", err)
			}
		}()
	}
	var cpuFile *os.File
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	cleanup = func() {
		cleanup = func() {}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvbpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvbpbench:", err)
			}
		}
	}
}

func runCleanup() { cleanup() }

// dumpMetrics prints the aggregate snapshot and, with -out, writes
// metrics.json and metrics.prom next to the CSV/SVG artefacts.
func dumpMetrics(outDir string) {
	s := collector.Snapshot()
	if err := report.WriteMetrics(os.Stdout, "", s); err != nil {
		fatal(err)
	}
	if outDir != "" {
		writeFile(outDir, "metrics.json", s.JSON()+"\n")
		writeFile(outDir, "metrics.prom", s.Prometheus())
	}
}

func parseMus(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad mu value %q", f))
		}
		out = append(out, v)
	}
	return out
}

func runFigure4(d, instances int, mus string, seed int64, workers int, outDir string) {
	cfg := experiments.DefaultFigure4()
	cfg.Instances = instances
	cfg.Mus = parseMus(mus)
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	if d != 0 {
		cfg.Ds = []int{d}
	}
	fmt.Printf("== Figure 4: d=%v mu=%v instances=%d (n=%d T=%d B=%d) ==\n",
		cfg.Ds, cfg.Mus, cfg.Instances, cfg.N, cfg.T, cfg.B)
	res, err := experiments.RunFigure4(cfg)
	if err != nil {
		fatal(err)
	}
	for _, dd := range cfg.Ds {
		tbl := res.Table(dd)
		fmt.Print(tbl.Render())
		fmt.Printf("ranking at mu=%d: %s\n\n", cfg.Mus[len(cfg.Mus)-1],
			strings.Join(res.Ranking(dd, cfg.Mus[len(cfg.Mus)-1]), " < "))
		if outDir != "" {
			writeCSV(outDir, fmt.Sprintf("figure4_d%d.csv", dd), tbl)
			writeFile(outDir, fmt.Sprintf("figure4_d%d.svg", dd), res.Chart(dd).SVG())
		}
	}
}

func runTable1(seed int64, outDir string) {
	cfg := experiments.DefaultTable1()
	cfg.Seed = seed
	cfg.Observer = observer()
	fmt.Printf("== Table 1 lower-bound constructions: d=%d mu=%g params=%v ==\n", cfg.D, cfg.Mu, cfg.Params)
	rows, err := experiments.RunTable1(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.AdversarialTable(rows)
	fmt.Print(tbl.Render())
	bad := 0
	for _, r := range rows {
		if !r.Consistent() {
			bad++
		}
	}
	fmt.Printf("consistency: %d/%d rows respect the Table 1 bounds\n\n", len(rows)-bad, len(rows))
	if outDir != "" {
		writeCSV(outDir, "table1_adversarial.csv", tbl)
	}
}

func runUBCheck(instances int, seed int64, workers int) {
	cfg := experiments.DefaultUpperBoundCheck()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	fmt.Printf("== Table 1 upper-bound validation: %d instances of d=%d n=%d mu=%d ==\n",
		cfg.Instances, cfg.D, cfg.N, cfg.Mu)
	viol, checked, err := experiments.RunUpperBoundCheck(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("checked %d (instance, policy) pairs: %d violations\n\n", checked, len(viol))
	for _, v := range viol {
		fmt.Printf("  VIOLATION: %+v\n", v)
	}
}

func ablationCfg(instances int, seed int64, workers int) experiments.AblationConfig {
	cfg := experiments.DefaultAblation()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	return cfg
}

func runAblationBestFit(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	fmt.Printf("== Ablation: Best Fit load measure (d=%d mu=%d, %d instances) ==\n", cfg.D, cfg.Mu, cfg.Instances)
	m, err := experiments.RunBestFitMeasureAblation(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.SummaryTable("Best Fit load measures", []string{"BestFit", "BestFit-L1", "BestFit-Lp2"}, m)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "ablation_bestfit.csv", tbl)
	}
}

func runAblationClairvoyant(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	fmt.Printf("== Ablation: clairvoyant extensions (d=%d mu=%d, %d instances) ==\n", cfg.D, cfg.Mu, cfg.Instances)
	m, err := experiments.RunClairvoyanceAblation(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.SummaryTable("Clairvoyant vs non-clairvoyant",
		[]string{"MoveToFront", "FirstFit", "DurationClassFit", "WindowedClassFit", "AlignedBestFit"}, m)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "ablation_clairvoyant.csv", tbl)
	}
}

func runAblationBilling(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	const quantum = 10.0
	fmt.Printf("== Ablation: billing granularity (quantum=%g, d=%d mu=%d, %d instances) ==\n",
		quantum, cfg.D, cfg.Mu, cfg.Instances)
	rows, err := experiments.RunBillingAblation(cfg, quantum)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.BillingTable(rows, quantum)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "ablation_billing.csv", tbl)
	}
}

func runTrueRatio(instances int, seed int64, workers int, outDir string) {
	cfg := experiments.DefaultTrueRatio()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	fmt.Printf("== True competitive ratios via exact OPT (d=%d n=%d mu=%d, %d instances) ==\n",
		cfg.D, cfg.N, cfg.Mu, cfg.Instances)
	res, err := experiments.RunTrueRatio(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := res.Table()
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "trueratio.csv", tbl)
	}
}

func runQuality(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	fmt.Printf("== Packing vs alignment (d=%d mu=%d, %d instances) ==\n", cfg.D, cfg.Mu, cfg.Instances)
	rows, err := experiments.RunQuality(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.QualityTable(rows)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "quality.csv", tbl)
	}
}

func writeCSV(dir, name string, tbl *report.Table) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		fatal(err)
	}
}

func writeFile(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	cleanup() // flush any open CPU/heap profile before exiting
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// The -timeout budget expired: flush whatever metrics accumulated so
		// the partial run is still inspectable, then exit distinctly.
		if collector != nil {
			dumpMetrics(outDirGlobal)
		}
		fmt.Fprintln(os.Stderr, "dvbpbench: timeout:", err)
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "dvbpbench:", err)
	os.Exit(1)
}
