package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestUniformConfigValidate(t *testing.T) {
	good := PaperDefaults(2, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper defaults invalid: %v", err)
	}
	bad := []UniformConfig{
		{D: 0, N: 1, Mu: 1, T: 10, B: 10},
		{D: 1, N: 0, Mu: 1, T: 10, B: 10},
		{D: 1, N: 1, Mu: 0, T: 10, B: 10},
		{D: 1, N: 1, Mu: 1, T: 10, B: 0},
		{D: 1, N: 1, Mu: 20, T: 10, B: 10}, // T < Mu
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUniformRespectsRanges(t *testing.T) {
	cfg := UniformConfig{D: 3, N: 500, Mu: 7, T: 50, B: 10}
	l, err := Uniform(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != cfg.N {
		t.Fatalf("N = %d, want %d", l.Len(), cfg.N)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("generated list invalid: %v", err)
	}
	for _, it := range l.Items {
		if it.Arrival != math.Trunc(it.Arrival) || it.Arrival < 0 || it.Arrival > float64(cfg.T-cfg.Mu) {
			t.Fatalf("arrival %v out of range", it.Arrival)
		}
		dur := it.Duration()
		if dur != math.Trunc(dur) || dur < 1 || dur > float64(cfg.Mu) {
			t.Fatalf("duration %v out of range", dur)
		}
		for _, s := range it.Size {
			scaled := s * float64(cfg.B)
			if math.Abs(scaled-math.Round(scaled)) > 1e-9 || s <= 0 || s > 1 {
				t.Fatalf("size %v not an integral multiple of 1/B in (0,1]", s)
			}
		}
	}
}

func TestUniformSeedDeterminism(t *testing.T) {
	cfg := PaperDefaults(2, 10)
	a, _ := Uniform(cfg, 7)
	b, _ := Uniform(cfg, 7)
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Items {
		if a.Items[i].Arrival != b.Items[i].Arrival || a.Items[i].Departure != b.Items[i].Departure ||
			!a.Items[i].Size.Equal(b.Items[i].Size, 0) {
			t.Fatalf("item %d differs across same-seed runs", i)
		}
	}
	c, _ := Uniform(cfg, 8)
	same := true
	for i := range a.Items {
		if a.Items[i].Arrival != c.Items[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical arrivals (suspicious)")
	}
}

func TestUniformMuBound(t *testing.T) {
	// Generated μ is at most configured Mu (min duration >= 1, max <= Mu).
	cfg := UniformConfig{D: 1, N: 2000, Mu: 20, T: 100, B: 10}
	l, _ := Uniform(cfg, 3)
	if got := l.Mu(); got > float64(cfg.Mu)+1e-9 {
		t.Errorf("Mu = %v > %d", got, cfg.Mu)
	}
	if got := l.MinDuration(); got < 1 {
		t.Errorf("MinDuration = %v < 1", got)
	}
}

func TestSessionsGeneratesValidTrace(t *testing.T) {
	cfg := SessionConfig{
		D: 3, Horizon: 200, Rate: 2,
		MeanDuration: 10, Alpha: 2.5, MinDuration: 1, MaxDuration: 100,
	}
	l, err := Sessions(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if l.Len() < 100 {
		t.Errorf("expected ~400 sessions, got %d", l.Len())
	}
	for _, it := range l.Items {
		if it.Duration() < cfg.MinDuration-1e-9 || it.Duration() > cfg.MaxDuration+1e-9 {
			t.Fatalf("duration %v outside [%v,%v]", it.Duration(), cfg.MinDuration, cfg.MaxDuration)
		}
	}
}

func TestSessionsValidation(t *testing.T) {
	bad := SessionConfig{D: 0, Horizon: 1, Rate: 1, MeanDuration: 1, Alpha: 2, MinDuration: 1, MaxDuration: 2}
	if _, err := Sessions(bad, 1); err == nil {
		t.Error("D=0 accepted")
	}
	bad2 := SessionConfig{D: 1, Horizon: 1, Rate: 1, MeanDuration: 1, Alpha: 0.5, MinDuration: 1, MaxDuration: 2}
	if _, err := Sessions(bad2, 1); err == nil {
		t.Error("Alpha<=1 accepted")
	}
}

func TestSessionsDeterminism(t *testing.T) {
	cfg := SessionConfig{D: 2, Horizon: 100, Rate: 1, MeanDuration: 5, Alpha: 2, MinDuration: 1, MaxDuration: 50}
	a, _ := Sessions(cfg, 5)
	b, _ := Sessions(cfg, 5)
	if a.Len() != b.Len() {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Items {
		if a.Items[i].Arrival != b.Items[i].Arrival {
			t.Fatal("same seed, different arrivals")
		}
	}
}

func TestSessionsNeverEmpty(t *testing.T) {
	cfg := SessionConfig{D: 1, Horizon: 0.001, Rate: 0.001, MeanDuration: 5, Alpha: 2, MinDuration: 1, MaxDuration: 50}
	l, err := Sessions(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() == 0 {
		t.Error("degenerate config produced empty list")
	}
}

func TestDiurnal(t *testing.T) {
	cfg := DiurnalConfig{
		Session: SessionConfig{D: 2, Horizon: 240, Rate: 1, MeanDuration: 5, Alpha: 2.2, MinDuration: 1, MaxDuration: 40},
		Period:  24, PeakFactor: 3,
	}
	l, err := Diurnal(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if _, err := Diurnal(DiurnalConfig{Session: cfg.Session, Period: 0, PeakFactor: 2}, 1); err == nil {
		t.Error("Period=0 accepted")
	}
	if _, err := Diurnal(DiurnalConfig{Session: cfg.Session, Period: 10, PeakFactor: 0.5}, 1); err == nil {
		t.Error("PeakFactor<1 accepted")
	}
}

func TestDefaultTypesDimensions(t *testing.T) {
	for _, d := range []int{1, 2, 5} {
		for _, tp := range DefaultTypes(d) {
			if tp.Demand.Dim() != d {
				t.Errorf("d=%d type %s has dim %d", d, tp.Name, tp.Demand.Dim())
			}
			if !tp.Demand.LeqCapacity() || !tp.Demand.NonNegative() {
				t.Errorf("d=%d type %s demand %v infeasible", d, tp.Name, tp.Demand)
			}
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l, _ := Uniform(UniformConfig{D: 3, N: 50, Mu: 5, T: 20, B: 10}, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != l.Dim || got.Len() != l.Len() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.Dim, got.Len(), l.Dim, l.Len())
	}
	for i := range l.Items {
		a, b := l.Items[i], got.Items[i]
		if a.ID != b.ID || a.Arrival != b.Arrival || a.Departure != b.Departure || !a.Size.Equal(b.Size, 0) {
			t.Fatalf("item %d: %v != %v", i, a, b)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l, _ := Uniform(UniformConfig{D: 2, N: 30, Mu: 4, T: 20, B: 8}, 2)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != l.Dim || got.Len() != l.Len() {
		t.Fatal("shape mismatch")
	}
	for i := range l.Items {
		if !l.Items[i].Size.Equal(got.Items[i].Size, 0) {
			t.Fatalf("item %d size mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                                                // empty
		"id,arrival,departure,s0\n",                       // header only
		"x,y\n1,2\n",                                      // bad header
		"id,arrival,departure,s0\na,0,1,0.5\n",            // bad id
		"id,arrival,departure,s0\n0,x,1,0.5\n",            // bad arrival
		"id,arrival,departure,s0\n0,0,x,0.5\n",            // bad departure
		"id,arrival,departure,s0\n0,0,1,x\n",              // bad size
		"id,arrival,departure,s0\n0,0,1,1.5\n",            // oversize item
		"id,arrival,departure,s0\n0,0,1,0.5\n0,0,1,0.5\n", // dup id
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated json accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"dim":1,"items":[]}`)); err == nil {
		t.Error("empty item list accepted")
	}
}

// Property: CSV round trip preserves every field for arbitrary valid configs.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed uint16, dRaw, muRaw uint8) bool {
		d := int(dRaw%4) + 1
		mu := int(muRaw%20) + 1
		cfg := UniformConfig{D: d, N: 20, Mu: mu, T: mu + 10, B: 10}
		l, err := Uniform(cfg, int64(seed))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, l); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		for i := range l.Items {
			if l.Items[i].Arrival != got.Items[i].Arrival ||
				l.Items[i].Departure != got.Items[i].Departure ||
				!l.Items[i].Size.Equal(got.Items[i].Size, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUniformPaperInstance(b *testing.B) {
	cfg := PaperDefaults(2, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Uniform(cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
