package clairvoyant

import (
	"math"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
)

func TestWindowedRequiresClairvoyance(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.5))
	defer func() {
		if recover() == nil {
			t.Error("no panic without clairvoyance")
		}
	}()
	_, _ = core.Simulate(l, NewWindowedClassFit(0))
}

func TestWindowedSeparatesClasses(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.1))  // class 0
	l.Add(0, 16, v(0.1)) // class 4
	res, err := core.Simulate(l, NewWindowedClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 2 {
		t.Errorf("BinsOpened = %d, want 2", res.BinsOpened)
	}
}

func TestWindowedRejectsExpiredBins(t *testing.T) {
	// Class-0 items (duration <= 1, window 1). First item opens a bin at 0;
	// an item arriving at 1.5 is outside the window even though the bin is
	// still open (kept open by a chain) and has room.
	l := item.NewList(1)
	l.Add(0, 1, v(0.1))
	l.Add(0.75, 1.75, v(0.1)) // within window (0.75 < 1): same bin, extends life
	l.Add(1.5, 2.5, v(0.1))   // window expired at 1: NEW bin
	res, err := core.Simulate(l, NewWindowedClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res.BinsOpened)
	}
	p2, _ := res.PlacementOf(2)
	p0, _ := res.PlacementOf(0)
	if p2.BinID == p0.BinID {
		t.Error("expired bin accepted a new item")
	}
}

func TestWindowedWithinWindowPacksTogether(t *testing.T) {
	l := item.NewList(1)
	for i := 0; i < 5; i++ {
		a := float64(i) * 0.1
		l.Add(a, a+1, v(0.15))
	}
	res, err := core.Simulate(l, NewWindowedClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 1 {
		t.Errorf("BinsOpened = %d, want 1", res.BinsOpened)
	}
}

// TestWindowedSpanBound: every bin's span is < 2·W_c where c is its class —
// the alignment guarantee the windowing buys.
func TestWindowedSpanBound(t *testing.T) {
	l := mixedDurations(3, 400)
	p := NewWindowedClassFit(0)
	res, err := core.Simulate(l, p, core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct each bin's class from its items (all same class by
	// construction of the policy).
	itemByID := make(map[int]float64, l.Len())
	minD := l.MinDuration()
	for _, it := range l.Items {
		itemByID[it.ID] = it.Duration()
	}
	classOf := func(dur float64) int {
		if dur <= minD {
			return 0
		}
		return int(math.Ceil(math.Log2(dur / minD)))
	}
	binClass := make(map[int]int)
	for _, pl := range res.Placements {
		c := classOf(itemByID[pl.ItemID])
		if prev, ok := binClass[pl.BinID]; ok && prev != c {
			t.Fatalf("bin %d mixes classes %d and %d", pl.BinID, prev, c)
		}
		binClass[pl.BinID] = c
	}
	for _, b := range res.Bins {
		w := math.Ldexp(minD, binClass[b.BinID])
		if b.Usage() >= 2*w+1e-9 {
			t.Errorf("bin %d (class %d): span %v >= 2W = %v", b.BinID, binClass[b.BinID], b.Usage(), 2*w)
		}
	}
}

func TestWindowedRespectsLowerBound(t *testing.T) {
	l := mixedDurations(5, 300)
	res, err := core.Simulate(l, NewWindowedClassFit(0), core.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	lb := lowerbound.Compute(l).Best()
	if res.Cost < lb-1e-6 {
		t.Errorf("cost %v below LB %v", res.Cost, lb)
	}
}

func TestWindowedInRegistryStyleUse(t *testing.T) {
	p := NewWindowedClassFit(2.0)
	if p.Name() != "WindowedClassFit" {
		t.Errorf("Name = %q", p.Name())
	}
	p.Reset()
	if p.window(0) != 2 || p.window(3) != 16 {
		t.Errorf("window scaling wrong: %v, %v", p.window(0), p.window(3))
	}
}
