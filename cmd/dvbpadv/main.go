// Command dvbpadv runs the Section 6 adversarial constructions and prints
// measured competitive-ratio certificates against the theoretical targets.
//
//	dvbpadv -construction anyfit  -d 2 -mu 10 -params 2,8,32,128
//	dvbpadv -construction nextfit -d 3 -mu 5
//	dvbpadv -construction mtf     -mu 20
//	dvbpadv -construction bestfit -params 4,8,16,32
//
// For each parameter value the tool builds the instance, runs the targeted
// policy (and, with -cross, every standard policy), and reports
// cost/OPTUpper — a certified lower bound on the competitive ratio.
//
// With -metrics, a single metrics.Collector is attached to every simulation
// and the aggregate engine telemetry (items placed, bins opened, fit checks,
// placement latency) is dumped after the table in table, JSON and Prometheus
// text form.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"dvbp/internal/adversary"
	"dvbp/internal/core"
	"dvbp/internal/metrics"
	"dvbp/internal/report"
)

func main() {
	var (
		construction = flag.String("construction", "anyfit", "anyfit (Thm 5) | nextfit (Thm 6) | mtf (Thm 8) | bestfit (Thm 7 family)")
		d            = flag.Int("d", 2, "dimensions (anyfit/nextfit)")
		mu           = flag.Float64("mu", 10, "max/min duration ratio")
		params       = flag.String("params", "2,4,8,16,32,64", "comma-separated size parameters (k, n or R)")
		cross        = flag.Bool("cross", false, "also run every standard policy on each instance")
		seed         = flag.Int64("seed", 1, "RandomFit seed for -cross")
		metricsF     = flag.Bool("metrics", false, "collect aggregate engine metrics across all runs and dump JSON + Prometheus snapshots")
	)
	flag.Parse()

	ps, err := parseParams(*params)
	if err != nil {
		fatal(err)
	}

	var collector *metrics.Collector
	var opts []core.Option
	if *metricsF {
		collector = metrics.NewCollector()
		opts = append(opts, core.WithObserver(collector))
	}

	tbl := &report.Table{
		Title:   fmt.Sprintf("Construction %s (d=%d, mu=%g)", *construction, *d, *mu),
		Headers: []string{"param", "policy", "bins", "cost", "OPT<=", "measured CR>=", "target"},
	}
	for _, p := range ps {
		in, target, err := build(*construction, *d, p, *mu)
		if err != nil {
			fatal(err)
		}
		policies := []core.Policy{target}
		if *cross {
			policies = core.StandardPolicies(*seed)
		}
		for _, pol := range policies {
			res, err := core.Simulate(in.List, pol, opts...)
			if err != nil {
				fatal(err)
			}
			tbl.AddRow(strconv.Itoa(p), pol.Name(), strconv.Itoa(res.BinsOpened),
				report.F(res.Cost), report.F(in.OPTUpper),
				report.F(in.MeasuredRatio(res.Cost)), report.F(in.AsymptoticRatio))
		}
	}
	fmt.Print(tbl.Render())

	last := ps[len(ps)-1]
	in, target, err := build(*construction, *d, last, *mu)
	if err != nil {
		fatal(err)
	}
	res, err := core.Simulate(in.List, target, opts...)
	if err != nil {
		fatal(err)
	}
	ratio := in.MeasuredRatio(res.Cost)
	gap := 100 * (1 - ratio/in.AsymptoticRatio)
	if math.IsInf(in.AsymptoticRatio, 1) {
		gap = 0
	}
	fmt.Printf("at %s=%d the measured ratio %.4f is within %.1f%% of the target %.4f\n",
		paramName(*construction), last, ratio, gap, in.AsymptoticRatio)

	if collector != nil {
		// Aggregate across every simulation the command ran, including the
		// final convergence re-run above.
		if err := report.WriteMetrics(os.Stdout, "", collector.Snapshot()); err != nil {
			fatal(err)
		}
	}
}

func paramName(c string) string {
	switch c {
	case "mtf":
		return "n"
	case "bestfit":
		return "R"
	}
	return "k"
}

func build(construction string, d, p int, mu float64) (*adversary.Instance, core.Policy, error) {
	switch construction {
	case "anyfit":
		in, err := adversary.Theorem5(d, evenUp(p), mu)
		return in, core.NewFirstFit(), err
	case "nextfit":
		in, err := adversary.Theorem6(d, evenUp(p), mu)
		return in, core.NewNextFit(), err
	case "mtf":
		in, err := adversary.Theorem8(p, mu)
		return in, core.NewMoveToFront(), err
	case "bestfit":
		in, err := adversary.BestFitPillars(p, float64(p*p))
		return in, core.NewBestFit(core.MaxLoad()), err
	}
	return nil, nil, fmt.Errorf("unknown construction %q", construction)
}

func evenUp(k int) int {
	if k%2 == 1 {
		return k + 1
	}
	return k
}

func parseParams(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad parameter %q (need integers >= 2)", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty parameter list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpadv:", err)
	os.Exit(1)
}
