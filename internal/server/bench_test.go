package server

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"dvbp/internal/metrics"
)

// BenchmarkServerPlaceThroughput measures the full request path — HTTP
// decode, bounded queue, group commit with both fsync barriers, JSON
// acknowledgement — at 1 and 8 concurrent clients, each driving its own
// tenant. Alongside ns/op it reports req/sec and client-observed p50/p99
// latency; bench-json folds all three into BENCH_core.json so the serving
// path's trajectory is tracked like the engine hot paths.
func BenchmarkServerPlaceThroughput(b *testing.B) {
	for _, conc := range []int{1, 8} {
		b.Run(fmt.Sprintf("clients=%d", conc), func(b *testing.B) {
			reg := metrics.NewRegistry()
			store, err := OpenStore(b.TempDir(), Limits{QueueDepth: 1024}, reg)
			if err != nil {
				b.Fatalf("OpenStore: %v", err)
			}
			defer store.Close()
			ts := httptest.NewServer(New(store, reg))
			defer ts.Close()

			for c := 0; c < conc; c++ {
				cfg := TenantConfig{Name: fmt.Sprintf("bench%d", c), Dim: 2, Policy: "FirstFit", CheckpointEvery: 4096}
				if code := call(b, "POST", ts.URL+"/v1/tenants", cfg, nil); code != 201 {
					b.Fatalf("create tenant: status %d", code)
				}
			}

			perClient := b.N/conc + 1
			lat := make([][]time.Duration, conc)
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < conc; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					base := ts.URL + "/v1/tenants/" + fmt.Sprintf("bench%d", c) + "/place"
					lat[c] = make([]time.Duration, 0, perClient)
					for i := 0; i < perClient; i++ {
						arr := float64(i / 4)
						body := placeBody{Arrival: f(arr), Departure: f(arr + 3), Size: []float64{0.1, 0.15}}
						start := time.Now()
						if code := call(b, "POST", base, body, nil); code != 200 {
							b.Errorf("place: status %d", code)
							return
						}
						lat[c] = append(lat[c], time.Since(start))
					}
				}(c)
			}
			wg.Wait()
			elapsed := b.Elapsed()
			b.StopTimer()

			var all []time.Duration
			for _, l := range lat {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			quantile := func(q float64) float64 {
				if len(all) == 0 {
					return 0
				}
				i := int(q * float64(len(all)-1))
				return float64(all[i].Nanoseconds())
			}
			b.ReportMetric(float64(len(all))/elapsed.Seconds(), "req/sec")
			b.ReportMetric(quantile(0.50), "p50-ns")
			b.ReportMetric(quantile(0.99), "p99-ns")
		})
	}
}
