package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: dvbp/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkChurnHotPath/policy=FirstFit/d=2-8         	      30	  19073723 ns/op	    322119 events/s	 4394930 B/op	   18714 allocs/op
BenchmarkChurnHotPath/policy=FirstFit/d=2-8         	      30	  19067915 ns/op	    322218 events/s	 4394928 B/op	   18714 allocs/op
BenchmarkChurnHotPath/policy=BestFit/d=2-8          	      30	  19215328 ns/op	    319746 events/s	 4394930 B/op	   18714 allocs/op
PASS
ok  	dvbp/internal/core	16.496s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "dvbp-bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "dvbp/internal/core" {
		t.Errorf("env header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (repetitions aggregated): %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// Sorted by name: BestFit first.
	ff := rep.Benchmarks[1]
	if ff.Name != "BenchmarkChurnHotPath/policy=FirstFit/d=2" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", ff.Name)
	}
	if ff.Runs != 2 || ff.Iterations != 60 {
		t.Errorf("runs=%d iterations=%d, want 2/60", ff.Runs, ff.Iterations)
	}
	if want := (19073723.0 + 19067915.0) / 2; math.Abs(ff.NsPerOp-want) > 1e-6 {
		t.Errorf("ns_per_op = %v, want %v", ff.NsPerOp, want)
	}
	if ff.AllocsOp != 18714 {
		t.Errorf("allocs_per_op = %v, want 18714", ff.AllocsOp)
	}
	if got := ff.Metrics["events/s"]; math.Abs(got-(322119.0+322218.0)/2) > 1e-6 {
		t.Errorf("events/s = %v", got)
	}
}

func TestParseBenchOutputRejectsEmpty(t *testing.T) {
	if _, err := parseBenchOutput(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestRunBenchJSONWithBaseline(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "cur.txt")
	base := filepath.Join(dir, "base.txt")
	out := filepath.Join(dir, "BENCH_core.json")
	if err := os.WriteFile(cur, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, []byte(sampleBenchOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runBenchJSON(cur, base, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Baseline == nil || len(rep.Baseline.Benchmarks) != 2 {
		t.Fatalf("baseline section missing or wrong: %+v", rep.Baseline)
	}
	if rep.Baseline.Baseline != nil {
		t.Error("baseline must not nest a further baseline")
	}
}
