package faults

import (
	"flag"
	"fmt"
	"strings"

	"dvbp/internal/core"
)

// Plan bundles one complete failure/admission configuration for a run.
// The zero value is the paper's model: no crashes, unbounded fleet.
type Plan struct {
	// Injector schedules bin crashes; nil disables fault injection.
	Injector core.FailureInjector
	// Retry schedules re-dispatch of evicted items; nil means Immediate.
	Retry core.RetryPolicy
	// MaxServers caps the fleet (0 = unbounded).
	MaxServers int
	// Queue enables the admission queue when the fleet is full; otherwise
	// over-capacity dispatches are rejected outright.
	Queue bool
	// QueueDeadline is how long a queued dispatch may wait before timing out.
	QueueDeadline float64
}

// Active reports whether the plan changes anything relative to the paper's
// fault-free, unbounded model.
func (p Plan) Active() bool {
	return p.Injector != nil || p.MaxServers > 0
}

// Options expands the plan into engine options for core.Simulate.
func (p Plan) Options() []core.Option {
	var opts []core.Option
	if p.Injector != nil {
		opts = append(opts, core.WithFaults(p.Injector, p.Retry))
	}
	if p.MaxServers > 0 {
		opts = append(opts, core.WithMaxBins(p.MaxServers))
		if p.Queue {
			opts = append(opts, core.WithAdmissionQueue(p.QueueDeadline))
		}
	}
	return opts
}

// String renders the plan for run headers.
func (p Plan) String() string {
	if !p.Active() {
		return "none"
	}
	var parts []string
	if p.Injector != nil {
		parts = append(parts, fmt.Sprint(p.Injector))
		retry := p.Retry
		if retry == nil {
			retry = Immediate{}
		}
		parts = append(parts, "retry="+retry.Name())
	}
	if p.MaxServers > 0 {
		parts = append(parts, fmt.Sprintf("max-servers=%d", p.MaxServers))
		if p.Queue {
			parts = append(parts, fmt.Sprintf("queue-deadline=%g", p.QueueDeadline))
		} else {
			parts = append(parts, "overflow=reject")
		}
	}
	return strings.Join(parts, " ")
}

// Spec holds the raw command-line fault flags shared by dvbpsim and
// dvbpchaos. Register wires them into a FlagSet; Plan resolves them.
type Spec struct {
	MTBF          float64
	FaultSeed     int64
	Trace         string
	Retry         string
	MaxServers    int
	QueueDeadline float64
}

// Register declares the fault flags on fs with the given prefix (e.g. ""
// yields -mtbf, "faults-" yields -faults-mtbf).
func (s *Spec) Register(fs *flag.FlagSet, prefix string) {
	fs.Float64Var(&s.MTBF, prefix+"mtbf", 0, "mean time between failures per server (0 = no crashes)")
	fs.Int64Var(&s.FaultSeed, prefix+"fault-seed", 1, "seed for the MTBF crash schedule")
	fs.StringVar(&s.Trace, prefix+"crash-trace", "", "explicit crash schedule, e.g. '0@5,2+1.5' (BIN@TIME or BIN+OFFSET; overrides -"+prefix+"mtbf)")
	fs.StringVar(&s.Retry, prefix+"retry", "immediate", "retry policy for evicted items: immediate | fixed:WAIT | backoff:BASE[:CAP[:FACTOR]]")
	fs.IntVar(&s.MaxServers, prefix+"max-servers", 0, "finite fleet cap (0 = unbounded)")
	fs.Float64Var(&s.QueueDeadline, prefix+"queue-deadline", -1, "admission-queue deadline when the fleet is full (<0 = reject instead of queueing)")
}

// Plan resolves the flags into a Plan, validating the combination.
func (s *Spec) Plan() (Plan, error) {
	p := Plan{MaxServers: s.MaxServers}
	switch {
	case s.Trace != "":
		tr, err := ParseTrace(s.Trace)
		if err != nil {
			return Plan{}, err
		}
		p.Injector = tr
	case s.MTBF < 0:
		return Plan{}, fmt.Errorf("faults: -mtbf must be non-negative, got %g", s.MTBF)
	case s.MTBF > 0:
		p.Injector = MTBF{Mean: s.MTBF, Seed: s.FaultSeed}
	}
	if p.Injector != nil {
		rp, err := ParseRetry(s.Retry)
		if err != nil {
			return Plan{}, err
		}
		p.Retry = rp
	}
	if s.MaxServers < 0 {
		return Plan{}, fmt.Errorf("faults: -max-servers must be non-negative, got %d", s.MaxServers)
	}
	if s.QueueDeadline >= 0 {
		if s.MaxServers == 0 {
			return Plan{}, fmt.Errorf("faults: -queue-deadline requires -max-servers")
		}
		p.Queue = true
		p.QueueDeadline = s.QueueDeadline
	}
	return p, nil
}
