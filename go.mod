module dvbp

go 1.22
