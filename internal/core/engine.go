package core

import (
	"fmt"
	"math"

	"dvbp/internal/binindex"
	"dvbp/internal/eventq"
	"dvbp/internal/item"
)

// binRef renders a bin choice for divergence diagnostics.
func binRef(b *Bin) string {
	if b == nil {
		return "a new bin (nil)"
	}
	return fmt.Sprintf("bin %d", b.ID)
}

// Option configures a simulation run.
type Option func(*config)

type config struct {
	clairvoyant  bool
	audit        *Audit
	observer     Observer
	linearSelect bool
	dynamic      bool

	// Failure/recovery configuration (see failure.go).
	injector      FailureInjector
	retry         RetryPolicy
	maxBins       int
	queueWhenFull bool
	queueDeadline float64

	// Live-migration configuration (see migrate.go); nil when disabled.
	migrate *migrateConfig
}

// WithClairvoyance exposes item departure times to the policy (Request.
// HasDeparture = true). This enables the clairvoyant DVBP variant discussed
// as future work in Section 8; the paper's own algorithms never need it.
func WithClairvoyance() Option {
	return func(c *config) { c.clairvoyant = true }
}

// WithAudit records every packing decision into a (caller-owned) Audit for
// invariant checking in tests. Audit mode also arms the index oracle: on the
// indexed Select path every decision is re-derived through the policy's
// linear scan and compared, and the index's structural invariants are
// re-validated after every mutation.
func WithAudit(a *Audit) Option {
	return func(c *config) { c.audit = a }
}

// WithLinearSelect forces the original O(open) linear-scan Select path even
// for policies that implement IndexedPolicy. The scan is the differential
// oracle the indexed path is tested against (DESIGN.md §11); production runs
// have no reason to use this option.
func WithLinearSelect() Option {
	return func(c *config) { c.linearSelect = true }
}

// Observer receives engine lifecycle callbacks; used by instrumentation such
// as the Theorem 2 leading-interval decomposition. Any method may be nil-safe
// no-op via BaseObserver.
type Observer interface {
	// BeforePack fires when an item is about to be dispatched, after all
	// events at or before the dispatch time have been processed. Under
	// admission control (WithMaxBins) the dispatch may fail: the follow-up
	// is then ItemQueued or ItemRejected (FailureObserver) instead of
	// AfterPack.
	BeforePack(req Request, open []*Bin)
	// AfterPack fires after the item is packed.
	AfterPack(req Request, b *Bin, opened bool)
	// BinClosed fires when a bin closes at time t — its last item departed,
	// or fault injection crashed it (in which case BinCrashed follows).
	BinClosed(b *Bin, t float64)
}

// WithObserver attaches an Observer to the run.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// SelectObserver is an optional extension of Observer. When the attached
// Observer also implements SelectObserver, the engine counts the Bin.Fits
// evaluations each Policy.Select performs and reports them after every
// decision — the per-decision accounting the metrics layer records.
//
// chosen is Select's return value: nil means the policy declined every open
// bin and the engine opened a fresh one. fitChecks counts the feasibility
// evaluations the decision performed: on the linear path these are the
// policy's own Bin.Fits calls, on the indexed path the bin store's per-entry
// and subtree-prune evaluations (its O(1) bucket-mask rejections are not
// counted — they evaluate no load vector). The engine's feasibility re-check
// while packing is never included. Runs whose observer does not implement
// SelectObserver pay no counting overhead.
type SelectObserver interface {
	// AfterSelect fires after Policy.Select returns, before the item is
	// packed (and before any new bin is opened).
	AfterSelect(req Request, chosen *Bin, fitChecks int)
}

// DepartureObserver is an optional extension of Observer for instrumentation
// that tracks live per-bin state (the fragmentation integrals in
// internal/metrics). ItemDeparted fires after a normal departure is removed
// from its bin when the bin stays open; a departure that empties the bin
// fires BinClosed instead, and crash evictions fire BinCrashed
// (FailureObserver) after BinClosed. Together the three callbacks cover
// every mutation of the open set at its event time.
type DepartureObserver interface {
	// ItemDeparted fires at time t after the item has been removed from b
	// (b's load already reflects the removal); b remains open.
	ItemDeparted(itemID int, b *Bin, t float64)
}

// BaseObserver is an Observer with no-op methods, for embedding.
type BaseObserver struct{}

// BeforePack implements Observer.
func (BaseObserver) BeforePack(Request, []*Bin) {}

// AfterPack implements Observer.
func (BaseObserver) AfterPack(Request, *Bin, bool) {}

// BinClosed implements Observer.
func (BaseObserver) BinClosed(*Bin, float64) {}

type departure struct {
	itemID int
	binID  int
}

// depSeq is the departure queue's tie-break key: item-ID major, placement
// attempt minor. Item IDs alone are not unique — an item evicted by a crash
// and re-placed has one stale entry per earlier placement sharing its
// departure time — and duplicate (Time, Seq) keys would make delivery order
// depend on heap insertion history rather than on the event multiset,
// breaking snapshot/restore bit-identity. With the attempt in the low bits,
// same-instant departures of distinct items still fire in ascending item-ID
// order (the engine's documented tie-break) and an item's stale entries
// deterministically precede its live one. Item IDs are list indices
// (item.List.Add assigns them), so the shift cannot overflow.
func depSeq(itemID, attempt int) int64 {
	return int64(itemID)<<32 | int64(uint32(attempt))
}

// retryDispatch is a scheduled re-dispatch of an evicted item.
type retryDispatch struct {
	it      item.Item
	attempt int
}

// queuedDispatch is one admission-queue entry, FIFO by enqueue order.
type queuedDispatch struct {
	it       item.Item
	attempt  int
	queuedAt float64
	deadline float64 // absolute drop time (inclusive)
}

// Event classes: when several events share a time instant they are processed
// in this order. Departures free capacity first (half-open intervals);
// crashes evict next, so a same-instant departure completes before the crash;
// re-dispatches of evicted items precede fresh arrivals (they have been
// waiting longer).
const (
	evDeparture = iota
	evCrash
	evRetry
	evArrival
	evMigration
	evNone
)

// EventClass labels one committed engine event in an EventRecord. The values
// mirror the engine's same-instant processing order (departure < crash <
// retry < arrival) and are stable across versions: the write-ahead log
// (internal/persist) stores them on disk.
type EventClass uint8

// The five event classes a Step can commit. EventMigration is last in the
// same-instant order: a consolidation pass at time t observes the state after
// all of t's departures, crashes, retries and arrivals have settled.
const (
	EventDeparture EventClass = evDeparture
	EventCrash     EventClass = evCrash
	EventRetry     EventClass = evRetry
	EventArrival   EventClass = evArrival
	EventMigration EventClass = evMigration
)

// String renders the class name.
func (c EventClass) String() string {
	switch c {
	case EventDeparture:
		return "departure"
	case EventCrash:
		return "crash"
	case EventRetry:
		return "retry"
	case EventArrival:
		return "arrival"
	case EventMigration:
		return "migration"
	}
	return fmt.Sprintf("EventClass(%d)", uint8(c))
}

// EventRecord describes one committed engine event — the unit the
// write-ahead log persists and replay verification compares. Because the
// engine is deterministic, the sequence of EventRecords is a pure function
// of (instance, policy, options); a recovered engine must regenerate the
// logged suffix bit for bit.
type EventRecord struct {
	// Seq is the 1-based index of the event in the run.
	Seq int64
	// Class is the event kind.
	Class EventClass
	// Time is the simulated instant the event was processed at.
	Time float64
	// ItemID identifies the item for departures, arrivals, retries and
	// migration moves; -1 for crashes.
	ItemID int
	// BinID is the affected bin: the departed-from or crashed bin, the bin
	// the dispatch placed into (-1 when the dispatch was queued, rejected,
	// or — for departures under faults — the bin was already gone), or the
	// migration move's target bin (the source follows deterministically
	// from the plan).
	BinID int
	// Placed reports that an arrival/retry dispatch packed its item.
	Placed bool
	// Opened reports that the placement opened a fresh bin.
	Opened bool
}

// Engine is the Any Fit simulation engine (Algorithm 1) in steppable form:
// NewEngine validates and primes a run, each Step commits exactly one event
// (departure, crash, retry re-dispatch, or arrival — including every
// cascading consequence: evictions, admission-queue drains), and Finish
// seals the run into a Result. Simulate wraps the three for callers that
// need no mid-run access.
//
// Stepping exists for the persistence layer: between any two Steps the
// engine's complete state can be captured with Snapshot and later rebuilt
// with RestoreEngine, and the EventRecord stream feeds the write-ahead log.
// An Engine is single-goroutine; it holds its Policy exclusively (the
// concurrent-reuse guard) until Finish or Close releases it.
type Engine struct {
	cfg  config
	p    Policy
	list *item.List

	arrivals []item.Item
	ai       int // next arrival index

	open  []*Bin // opening order (ascending ID); may hold tombstones until compacted
	holes int    // tombstone (nil) count in open

	departures eventq.Queue[departure]
	crashes    eventq.Queue[int] // payload: bin ID
	retries    eventq.Queue[retryDispatch]
	retrySeq   int64
	waitq      []queuedDispatch

	res       *Result
	nextBinID int
	binsByID  map[int]*Bin
	itemsByID map[int]item.Item
	attempts  map[int]int // item ID -> eviction count (allocated on first crash)
	served    int
	eventSeq  int64

	probe  *fitProbe
	selObs SelectObserver
	fObs   FailureObserver
	dObs   DepartureObserver
	mObs   MigrationObserver

	// Migration pass state (see migrate.go; all zero/nil when cfg.migrate
	// is nil).
	// migPass is the 1-based number of the next consolidation pass to
	// attempt (pass n fires at period·n); pendingMoves are the staged moves
	// of the in-progress pass at passTime, committed one per Step; redirects
	// maps a moved item's live departure-queue key (depSeq) to its current
	// bin.
	migPass      int64
	pendingMoves []MigrationMove
	passTime     float64
	redirects    map[int64]int

	// Indexed Select path (nil/unset when the policy is not an
	// IndexedPolicy or WithLinearSelect forces the scan). The engine owns
	// the index: it mirrors the open set on every open, pack, departure and
	// close, and ip queries it in place of Policy.Select.
	idx       *BinIndex
	ip        IndexedPolicy
	ixKey     func(*Bin) (float64, int64)
	ixRecency bool
	ixRekey   func(*BinIndex) error

	evictIDs []int // scratch reused across crashes

	// lastTime is the time of the most recent committed event — the floor
	// below which a dynamic run must not admit new arrivals (AppendArrival).
	// It is not snapshotted: replay re-establishes it event by event, and the
	// dynamic caller owns the authoritative admission watermark (DESIGN.md
	// §12).
	lastTime float64

	err      error // sticky: the engine is poisoned after any Step error
	finished bool  // Finish has sealed the result
	released bool  // the policy guard has been released
}

// NewEngine validates the instance and prepares a run. The returned engine
// owns p until Finish or Close; callers that abandon a run without finishing
// it must Close it to release the policy-reuse guard.
func NewEngine(l *item.List, p Policy, opts ...Option) (*Engine, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateList(l, cfg.dynamic); err != nil {
		return nil, err
	}
	if cfg.injector != nil && cfg.retry == nil {
		cfg.retry = retryNow{}
	}
	if err := acquirePolicy(p); err != nil {
		return nil, err
	}
	p.Reset()
	e := newEngineShell(l, p, cfg)
	e.arrivals = l.SortedByArrival()
	return e, nil
}

// newEngineShell builds the run scaffolding shared by NewEngine and
// RestoreEngine: the policy is already acquired and reset; no events have
// been primed.
func newEngineShell(l *item.List, p Policy, cfg config) *Engine {
	e := &Engine{
		cfg:  cfg,
		p:    p,
		list: l,
		res: &Result{
			Algorithm: p.Name(), Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu(),
			Outcomes: make(map[int]Outcome, l.Len()),
		},
		binsByID:  make(map[int]*Bin),
		itemsByID: make(map[int]item.Item, l.Len()),
	}
	for _, it := range l.Items {
		e.itemsByID[it.ID] = it
	}
	if so, ok := cfg.observer.(SelectObserver); ok {
		e.selObs = so
		e.probe = &fitProbe{}
	}
	if fo, ok := cfg.observer.(FailureObserver); ok {
		e.fObs = fo
	}
	if do, ok := cfg.observer.(DepartureObserver); ok {
		e.dObs = do
	}
	if mo, ok := cfg.observer.(MigrationObserver); ok {
		e.mObs = mo
	}
	if cfg.migrate != nil {
		e.migPass = 1
	}
	if ip, ok := p.(IndexedPolicy); ok && !cfg.linearSelect {
		prof := ip.IndexProfile()
		if prof.Recency == (prof.Key != nil) {
			panic(fmt.Sprintf("core: policy %s declares an IndexProfile with exactly one of Key and Recency unset", p.Name()))
		}
		e.ip = ip
		e.ixKey = prof.Key
		e.ixRecency = prof.Recency
		e.ixRekey = prof.Rekey
		e.idx = binindex.New[*Bin](l.Dim)
	}
	return e
}

// idxInsert mirrors a freshly opened (and just-packed) bin into the index.
func (e *Engine) idxInsert(b *Bin) {
	if e.ixRecency {
		e.idx.InsertFront(b.ID, b.load, b)
		return
	}
	kf, ks := e.ixKey(b)
	e.idx.Insert(kf, ks, b.ID, b.load, b)
}

// idxUpdate refreshes an existing bin's index entry after a load change.
// promote marks a pack under the recency discipline (the bin becomes the
// front); departures refresh the load without re-ordering.
func (e *Engine) idxUpdate(b *Bin, promote bool) {
	if e.ixRecency {
		e.idx.UpdateLoad(b.ID, b.load)
		if promote {
			e.idx.PromoteFront(b.ID)
		}
		return
	}
	kf, ks := e.ixKey(b)
	e.idx.Update(b.ID, kf, ks, b.load)
}

// Close releases the policy-reuse guard. It is idempotent and implied by
// Finish; only abandoned runs need an explicit Close.
func (e *Engine) Close() {
	if !e.released {
		e.released = true
		releasePolicy(e.p)
	}
}

// EventSeq returns the number of events committed so far.
func (e *Engine) EventSeq() int64 { return e.eventSeq }

// AppendOpenBins appends the currently open bins to dst in ascending ID
// order and returns the extended slice. The bins are the engine's own — the
// caller must treat them as read-only, the same contract policies and
// planners operate under. Status endpoints and the fragmentation recompute
// (metrics.FragOf) read the open set through this accessor.
func (e *Engine) AppendOpenBins(dst []*Bin) []*Bin {
	for _, b := range e.open {
		if b != nil {
			dst = append(dst, b)
		}
	}
	return dst
}

// Policy returns the policy driving the run.
func (e *Engine) Policy() Policy { return e.p }

// makeReq shapes the Request a policy sees for a dispatch of it at now.
func (e *Engine) makeReq(it item.Item, now float64, attempt int) Request {
	req := Request{ID: it.ID, SeqNo: it.SeqNo, Arrival: now, Size: it.Size, Attempt: attempt}
	if e.cfg.clairvoyant {
		req.Departure = it.Departure
		req.HasDeparture = true
	}
	return req
}

// closeBinAt closes b at time t. Closing only tombstones the bin's slot —
// O(1), so a burst of closings between two arrivals costs O(burst) instead
// of the O(burst·open) repeated splicing would. The slice is compacted
// (order preserved) before the next dispatch consults the policy.
func (e *Engine) closeBinAt(b *Bin, t float64, crashed bool) {
	e.res.Bins = append(e.res.Bins, BinUsage{BinID: b.ID, OpenedAt: b.OpenedAt, ClosedAt: t, Packed: b.PackedItems(), Crashed: crashed})
	e.res.Cost += t - b.OpenedAt
	e.open[b.openIdx] = nil
	e.holes++
	delete(e.binsByID, b.ID)
	if e.idx != nil {
		e.idx.Remove(b.ID)
	}
	e.p.OnClose(b)
	if e.cfg.observer != nil {
		e.cfg.observer.BinClosed(b, t)
	}
}

func (e *Engine) compact() {
	if e.holes == 0 {
		return
	}
	live := e.open[:0]
	for _, b := range e.open {
		if b != nil {
			b.openIdx = len(live)
			live = append(live, b)
		}
	}
	for i := len(live); i < len(e.open); i++ {
		e.open[i] = nil // release closed bins to the GC
	}
	e.open = live
	e.holes = 0
}

// dispatch runs one packing decision for it at time now. It returns
// placed=false when admission control turned the dispatch away (queued,
// rejected, or — for fromQueue dispatches — left in the queue). binID and
// opened describe the landed placement (binID is -1 when nothing was
// placed).
func (e *Engine) dispatch(it item.Item, attempt int, now float64, fromQueue bool) (placed bool, binID int, opened bool, err error) {
	e.compact()
	req := e.makeReq(it, now, attempt)
	if e.cfg.observer != nil {
		e.cfg.observer.BeforePack(req, e.open)
	}
	if e.probe != nil {
		e.probe.armed, e.probe.n = true, 0
	}
	var b *Bin
	if e.idx != nil {
		e.idx.ResetChecks()
		b = e.ip.SelectIndexed(req, e.idx)
	} else {
		b = e.p.Select(req, e.open)
	}
	if e.probe != nil {
		e.probe.armed = false
		n := e.probe.n
		if e.idx != nil {
			n += e.idx.Checks()
		}
		e.selObs.AfterSelect(req, b, n)
	}
	if e.idx != nil && e.cfg.audit != nil {
		// Per-decision oracle: the linear scan must agree with the index.
		// Random Fit is excluded (its Select consumes RNG draws); the
		// whole-run WithLinearSelect differential covers it instead.
		if _, draws := e.p.(selectDrawsRandomness); !draws {
			if want := e.p.Select(req, e.open); want != b {
				return false, -1, false, fmt.Errorf(
					"core: policy %s: indexed select chose %s, linear scan chose %s (item %d)",
					e.p.Name(), binRef(b), binRef(want), it.ID)
			}
		}
	}
	if b == nil {
		if e.cfg.maxBins > 0 && len(e.open)-e.holes >= e.cfg.maxBins {
			if fromQueue {
				return false, -1, false, nil // stays queued; caller keeps the entry
			}
			if e.cfg.queueWhenFull {
				e.waitq = append(e.waitq, queuedDispatch{it: it, attempt: attempt, queuedAt: now, deadline: now + e.cfg.queueDeadline})
				if e.fObs != nil {
					e.fObs.ItemQueued(req, now)
				}
			} else {
				e.res.Rejected++
				e.res.Outcomes[it.ID] = OutcomeRejected
				if e.fObs != nil {
					e.fObs.ItemRejected(req, now, false)
				}
			}
			return false, -1, false, nil
		}
		b = newBin(e.nextBinID, e.list.Dim, now)
		b.openIdx = len(e.open)
		b.probe = e.probe
		e.nextBinID++
		e.open = append(e.open, b)
		e.binsByID[b.ID] = b
		opened = true
		if e.cfg.injector != nil {
			if at, ok := e.cfg.injector.BinOpened(b.ID, now); ok && !math.IsNaN(at) && at > now {
				e.crashes.PushAt(at, int64(b.ID), b.ID)
			}
		}
	} else if _, known := e.binsByID[b.ID]; !known {
		return false, -1, false, fmt.Errorf("core: policy %s returned closed or foreign bin %d", e.p.Name(), b.ID)
	}
	if e.cfg.audit != nil {
		// Record before packing so loads and fit flags reflect the state
		// the policy actually saw.
		e.cfg.audit.record(req, b, opened, e.open)
	}
	if err := b.pack(it.ID, it.Size); err != nil {
		return false, -1, false, fmt.Errorf("core: policy %s chose unfit bin: %w", e.p.Name(), err)
	}
	if e.cfg.audit != nil {
		// Audit mode cross-checks the incremental load against the
		// original canonical recompute after every mutation.
		b.auditCrossCheckLoad()
	}
	e.p.OnPack(req, b, opened)
	if e.idx != nil {
		if opened {
			e.idxInsert(b)
		} else {
			e.idxUpdate(b, true)
		}
		if e.cfg.audit != nil {
			if err := e.idx.Validate(); err != nil {
				return false, -1, false, err
			}
		}
	}
	if e.cfg.observer != nil {
		e.cfg.observer.AfterPack(req, b, opened)
	}

	e.res.Placements = append(e.res.Placements, Placement{ItemID: it.ID, BinID: b.ID, Opened: opened, Time: now, Attempt: attempt})
	if attempt > 0 {
		e.res.Retries++
	}
	e.departures.PushAt(it.Departure, depSeq(it.ID, attempt), departure{itemID: it.ID, binID: b.ID})
	if live := len(e.open) - e.holes; live > e.res.MaxConcurrentBins {
		e.res.MaxConcurrentBins = live
	}
	return true, b.ID, opened, nil
}

// drainQueue gives every admission-queue entry one placement attempt at
// time t, in FIFO order, dropping expired entries along the way. A single
// pass suffices: capacity only shrinks while the pass places items.
func (e *Engine) drainQueue(t float64) error {
	if len(e.waitq) == 0 {
		return nil
	}
	kept := e.waitq[:0]
	for _, q := range e.waitq {
		if t > q.deadline || t >= q.it.Departure {
			e.res.TimedOut++
			e.res.Outcomes[q.it.ID] = OutcomeTimedOut
			if e.fObs != nil {
				e.fObs.ItemRejected(e.makeReq(q.it, t, q.attempt), t, true)
			}
			continue
		}
		placed, _, _, err := e.dispatch(q.it, q.attempt, t, true)
		if err != nil {
			return err
		}
		if placed {
			e.res.QueuedPlaced++
			e.res.QueueDelay += t - q.queuedAt
			if e.fObs != nil {
				e.fObs.ItemDequeued(e.makeReq(q.it, t, q.attempt), q.queuedAt, t)
			}
			continue
		}
		kept = append(kept, q)
	}
	// Zero the tail so dropped entries don't pin memory.
	tail := e.waitq[len(kept):]
	for i := range tail {
		tail[i] = queuedDispatch{}
	}
	e.waitq = kept
	return nil
}

// handleDeparture processes one departure event. binID reports the bin the
// departure actually mutated (-1 when the event was stale: the bin crashed
// and the item was evicted before its departure fired).
func (e *Engine) handleDeparture(t float64, ev departure) (binID int, err error) {
	b, ok := e.binsByID[ev.binID]
	if !ok {
		if e.cfg.injector != nil {
			return -1, nil // stale: the bin crashed and the item was evicted
		}
		return -1, fmt.Errorf("core: departure from unknown bin %d", ev.binID)
	}
	if err := b.remove(ev.itemID); err != nil {
		return -1, fmt.Errorf("core: %w", err)
	}
	if e.cfg.audit != nil {
		b.auditCrossCheckLoad()
	}
	e.served++
	e.res.Outcomes[ev.itemID] = OutcomeServed
	if b.Empty() {
		e.closeBinAt(b, t, false)
	} else {
		if e.idx != nil {
			e.idxUpdate(b, false)
		}
		if e.dObs != nil {
			e.dObs.ItemDeparted(ev.itemID, b, t)
		}
	}
	return ev.binID, e.drainQueue(t)
}

func (e *Engine) handleCrash(t float64, binID int) error {
	b, ok := e.binsByID[binID]
	if !ok {
		return nil // the bin closed naturally before its crash fired
	}
	// Ascending ID: deterministic eviction order. The scratch slice is
	// reused across crashes so eviction handling does not allocate once
	// it has grown to the largest eviction burst.
	e.evictIDs = b.appendActiveItemIDs(e.evictIDs[:0])
	evicted := e.evictIDs
	e.res.Crashes++
	e.closeBinAt(b, t, true)
	if e.fObs != nil {
		e.fObs.BinCrashed(b, t, len(evicted))
	}
	if e.attempts == nil {
		e.attempts = make(map[int]int)
	}
	for _, id := range evicted {
		it := e.itemsByID[id]
		e.attempts[id]++
		attempt := e.attempts[id]
		e.res.Evictions++
		req := e.makeReq(it, t, attempt)
		delay := e.cfg.retry.Delay(attempt)
		if !(delay > 0) { // also normalises NaN and negative delays
			delay = 0
		}
		retryAt := t + delay
		if retryAt < it.Departure {
			e.res.LostUsageTime += retryAt - t
			e.retrySeq++
			e.retries.PushAt(retryAt, e.retrySeq, retryDispatch{it: it, attempt: attempt})
			if e.fObs != nil {
				e.fObs.ItemEvicted(req, b, t, retryAt)
			}
		} else {
			e.res.ItemsLost++
			e.res.LostUsageTime += it.Departure - t
			e.res.Outcomes[id] = OutcomeLost
			if e.fObs != nil {
				e.fObs.ItemEvicted(req, b, t, it.Departure)
				e.fObs.ItemLost(req, t)
			}
		}
	}
	return e.drainQueue(t)
}

// Step commits the earliest pending event across the four sources, breaking
// time ties by event class (departure < crash < re-dispatch < arrival) and,
// within a class, by each queue's own deterministic sequence. It returns the
// committed event's record; ok=false means no events remain (call Finish).
// An error poisons the engine: every later Step and Finish returns it.
func (e *Engine) Step() (rec EventRecord, ok bool, err error) {
	if e.err != nil {
		return EventRecord{}, false, e.err
	}
	if e.finished {
		return EventRecord{}, false, nil
	}
	if len(e.pendingMoves) > 0 {
		return e.stepMove()
	}
	t, class := math.Inf(1), evNone
	if ev, ok := e.departures.Peek(); ok {
		t, class = ev.Time, evDeparture
	}
	if ev, ok := e.crashes.Peek(); ok && (ev.Time < t || (ev.Time == t && evCrash < class)) {
		t, class = ev.Time, evCrash
	}
	if ev, ok := e.retries.Peek(); ok && (ev.Time < t || (ev.Time == t && evRetry < class)) {
		t, class = ev.Time, evRetry
	}
	if e.ai < len(e.arrivals) && (e.arrivals[e.ai].Arrival < t || (e.arrivals[e.ai].Arrival == t && evArrival < class)) {
		t, class = e.arrivals[e.ai].Arrival, evArrival
	}
	if class == evNone {
		return EventRecord{}, false, nil
	}
	// Consolidation passes due strictly before the next real event run now;
	// a pass scheduled exactly at t waits its turn behind t's events (the
	// same-instant class order — migration is last). Passes only fire while
	// real events remain, so migration never extends the run.
	if e.cfg.migrate != nil && e.migPassTime(e.migPass) < t {
		if err := e.maybePlanMigration(t); err != nil {
			e.err = err
			return EventRecord{}, false, err
		}
		if len(e.pendingMoves) > 0 {
			return e.stepMove()
		}
	}
	e.eventSeq++
	rec = EventRecord{Seq: e.eventSeq, Class: EventClass(class), Time: t, ItemID: -1, BinID: -1}
	switch class {
	case evDeparture:
		ev, _ := e.departures.Pop()
		if len(e.redirects) > 0 {
			// A migrated item's live entry still names its old bin; rewrite
			// and consume the redirect (stale entries from earlier
			// placements carry different attempt bits, so only the live
			// entry matches).
			if nb, hit := e.redirects[ev.Seq]; hit {
				delete(e.redirects, ev.Seq)
				ev.Payload.binID = nb
			}
		}
		rec.ItemID = ev.Payload.itemID
		rec.BinID, err = e.handleDeparture(ev.Time, ev.Payload)
	case evCrash:
		ev, _ := e.crashes.Pop()
		rec.BinID = ev.Payload
		err = e.handleCrash(ev.Time, ev.Payload)
	case evRetry:
		ev, _ := e.retries.Pop()
		rec.ItemID = ev.Payload.it.ID
		rec.Placed, rec.BinID, rec.Opened, err = e.dispatch(ev.Payload.it, ev.Payload.attempt, ev.Time, false)
	case evArrival:
		it := e.arrivals[e.ai]
		e.ai++
		rec.ItemID = it.ID
		rec.Placed, rec.BinID, rec.Opened, err = e.dispatch(it, 0, it.Arrival, false)
	}
	if err != nil {
		e.err = err
		return EventRecord{}, false, err
	}
	e.lastTime = t
	return rec, true, nil
}

// Finish seals the run: it sweeps expired admission-queue entries, verifies
// the engine's internal conservation invariants, releases the policy, and
// returns the Result. Finishing with events still pending is an error (run
// Step until it reports ok=false first).
func (e *Engine) Finish() (*Result, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.finished {
		return e.res, nil
	}
	fail := func(err error) (*Result, error) {
		e.err = err
		e.Close()
		return nil, err
	}
	if _, ok, _ := e.Step(); ok {
		return fail(fmt.Errorf("core: Finish called with events still pending"))
	}

	// Defensive sweep: the final bin close drains the queue with the whole
	// fleet free, so entries can remain only if they were already expired.
	for _, q := range e.waitq {
		e.res.TimedOut++
		e.res.Outcomes[q.it.ID] = OutcomeTimedOut
		if e.fObs != nil {
			t := math.Min(q.deadline, q.it.Departure)
			e.fObs.ItemRejected(e.makeReq(q.it, t, q.attempt), t, true)
		}
	}
	e.waitq = nil

	if len(e.open)-e.holes != 0 {
		return fail(fmt.Errorf("core: internal error: %d bins left open after drain", len(e.open)-e.holes))
	}
	if e.served+e.res.ItemsLost+e.res.Rejected+e.res.TimedOut != e.list.Len() {
		return fail(fmt.Errorf("core: internal error: item conservation violated (%d served, %d lost, %d rejected, %d timed out of %d)",
			e.served, e.res.ItemsLost, e.res.Rejected, e.res.TimedOut, e.list.Len()))
	}

	if e.cfg.dynamic {
		// A dynamic run's instance-shape summary is only known once the
		// stream ends; recompute it so the sealed result is indistinguishable
		// from a static run over the same final list.
		e.res.Span = e.list.Span()
		e.res.Mu = e.list.Mu()
		e.res.Items = e.list.Len()
	}
	e.res.BinsOpened = e.nextBinID
	e.res.sortBins()
	e.finished = true
	e.Close()
	return e.res, nil
}

// Simulate runs the Any Fit skeleton (Algorithm 1) over the item list with
// the given policy and returns the resulting packing and its MinUsageTime
// cost. The list is validated first; the input is not modified.
//
// Event order: items are processed by (arrival, SeqNo). Because active
// intervals are half-open, departures at time t are processed before
// arrivals at time t — an item departing at t has freed its capacity for an
// item arriving at t. (The paper's Theorem 5 construction has new items
// arrive "just before" old ones depart; such instances encode the arrival at
// time t - ε or rely on same-time arrival ordering, both of which this
// engine preserves.) With fault injection, same-instant events run
// departures, then crashes, then re-dispatches of evicted items, then
// arrivals; the admission queue is drained after every capacity-freeing
// event, ahead of same-instant dispatches.
func Simulate(l *item.List, p Policy, opts ...Option) (*Result, error) {
	e, err := NewEngine(l, p, opts...)
	if err != nil {
		return nil, err
	}
	defer e.Close()
	for {
		_, ok, err := e.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return e.Finish()
}
