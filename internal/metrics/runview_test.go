package metrics

import (
	"sync"
	"testing"
	"time"

	"dvbp/internal/core"
)

// TestForRunIsolatesPlacementMatching drives two run views through
// interleaved placements that carry IDENTICAL (ID, SeqNo) pairs — exactly
// what two concurrent simulations of different instances produce. With a
// shared map the BeforePack of run A would be paired with the AfterPack of
// run B, fabricating latencies; per-run views must keep the pairs exact.
func TestForRunIsolatesPlacementMatching(t *testing.T) {
	clock := &Manual{}
	col := NewCollector(WithClock(clock))
	a := col.ForRun()
	b := col.ForRun()

	req := core.Request{ID: 7, SeqNo: 0} // same key in both runs

	// Interleave: A starts at t=0, B starts at t=10ms; B finishes at t=11ms
	// (1ms latency), A finishes at t=30ms (30ms latency). Cross-pairing
	// would instead record 11ms and 20ms.
	a.BeforePack(req, nil)
	clock.Advance(10 * time.Millisecond)
	b.BeforePack(req, nil)
	clock.Advance(1 * time.Millisecond)
	b.AfterPack(req, nil, false)
	clock.Advance(19 * time.Millisecond)
	a.AfterPack(req, nil, false)

	m, ok := col.Snapshot().Find(MetricPlacementSeconds)
	if !ok {
		t.Fatal("placement histogram missing")
	}
	if m.Count != 2 {
		t.Fatalf("placement count = %d, want 2", m.Count)
	}
	if want := 0.001 + 0.030; m.Sum < want-1e-9 || m.Sum > want+1e-9 {
		t.Errorf("placement latency sum = %v, want %v (cross-paired timestamps?)", m.Sum, want)
	}
}

// TestForRunSharedGaugeAndPeak verifies that run views feed the same
// open-bin gauge and that the high-water mark reflects the CONCURRENT
// population across runs, not any single run's.
func TestForRunSharedGaugeAndPeak(t *testing.T) {
	col := NewCollector(WithClock(&Manual{}))
	a := col.ForRun()
	b := col.ForRun()

	open := func(o core.Observer, id int) {
		req := core.Request{ID: id}
		o.BeforePack(req, nil)
		o.AfterPack(req, nil, true)
	}
	open(a, 1)
	open(a, 2)
	open(b, 1) // ids may collide across runs; bins are distinct
	open(b, 2)
	b.BinClosed(&core.Bin{}, 1)
	open(a, 3)

	snap := col.Snapshot()
	if m, _ := snap.Find(MetricOpenBins); m.Value != 4 {
		t.Errorf("open bins = %v, want 4", m.Value)
	}
	if m, _ := snap.Find(MetricOpenBinsPeak); m.Value != 4 {
		t.Errorf("open-bin peak = %v, want 4", m.Value)
	}
	if m, _ := snap.Find(MetricBinsOpened); m.Value != 5 {
		t.Errorf("bins opened = %v, want 5", m.Value)
	}
}

// TestForRunConcurrentStress hammers one collector through many views at
// once; run under -race this pins the freedom from shared mutable state, and
// the counter totals must come out exact.
func TestForRunConcurrentStress(t *testing.T) {
	col := NewCollector()
	const runs, placements = 16, 200

	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := col.ForRun()
			for i := 0; i < placements; i++ {
				req := core.Request{ID: i, SeqNo: i}
				v.BeforePack(req, nil)
				v.AfterPack(req, nil, true)
				v.BinClosed(&core.Bin{}, 1)
			}
		}()
	}
	wg.Wait()

	snap := col.Snapshot()
	if m, _ := snap.Find(MetricItemsPlaced); m.Value != runs*placements {
		t.Errorf("items placed = %v, want %d", m.Value, runs*placements)
	}
	if m, _ := snap.Find(MetricBinsOpened); m.Value != runs*placements {
		t.Errorf("bins opened = %v, want %d", m.Value, runs*placements)
	}
	if m, _ := snap.Find(MetricOpenBins); m.Value != 0 {
		t.Errorf("open bins = %v, want 0 after all closed", m.Value)
	}
	if m, _ := snap.Find(MetricPlacementSeconds); m.Count != runs*placements {
		t.Errorf("placement observations = %d, want %d", m.Count, runs*placements)
	}
	peak, _ := snap.Find(MetricOpenBinsPeak)
	if peak.Value < 1 || peak.Value > runs {
		t.Errorf("open-bin peak = %v, want within [1, %d]", peak.Value, runs)
	}
}
