package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	v := New(3)
	if v.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", v.Dim())
	}
	if !v.IsZero() {
		t.Fatalf("New(3) = %v, want zero vector", v)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestUniformUnitOf(t *testing.T) {
	u := Uniform(3, 0.5)
	for i, x := range u {
		if x != 0.5 {
			t.Errorf("Uniform[%d] = %v, want 0.5", i, x)
		}
	}
	e := Unit(4, 2, 0.7)
	want := Of(0, 0, 0.7, 0)
	if !e.Equal(want, 0) {
		t.Errorf("Unit = %v, want %v", e, want)
	}
	o := Of(1, 2, 3)
	if o.Dim() != 3 || o[1] != 2 {
		t.Errorf("Of = %v", o)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := Of(1, 2)
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatalf("Clone shares storage: v = %v", v)
	}
}

func TestAddSub(t *testing.T) {
	v := Of(0.25, 0.5)
	u := Of(0.5, 0.25)
	sum := v.Add(u)
	if !sum.Equal(Of(0.75, 0.75), 1e-15) {
		t.Errorf("Add = %v", sum)
	}
	diff := sum.Sub(u)
	if !diff.Equal(v, 1e-15) {
		t.Errorf("Sub = %v, want %v", diff, v)
	}
	// Originals untouched.
	if !v.Equal(Of(0.25, 0.5), 0) {
		t.Errorf("Add mutated receiver: %v", v)
	}
}

func TestSubClampsAtZero(t *testing.T) {
	v := Of(0.1)
	u := Of(0.2)
	got := v.Sub(u)
	if got[0] != 0 {
		t.Errorf("Sub clamp: got %v, want 0", got[0])
	}
	v.SubInPlace(u)
	if v[0] != 0 {
		t.Errorf("SubInPlace clamp: got %v, want 0", v[0])
	}
}

func TestInPlaceOps(t *testing.T) {
	v := Of(0.25, 0.5)
	v.AddInPlace(Of(0.25, 0.25))
	if !v.Equal(Of(0.5, 0.75), 1e-15) {
		t.Errorf("AddInPlace = %v", v)
	}
	v.SubInPlace(Of(0.5, 0.5))
	if !v.Equal(Of(0, 0.25), 1e-15) {
		t.Errorf("SubInPlace = %v", v)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	cases := []func(){
		func() { Of(1).Add(Of(1, 2)) },
		func() { Of(1).Sub(Of(1, 2)) },
		func() { Of(1).AddInPlace(Of(1, 2)) },
		func() { Of(1).SubInPlace(Of(1, 2)) },
		func() { Of(1).FitsWithin(Of(1, 2)) },
		func() { Of(1).Dominates(Of(1, 2)) },
		func() { Of(1).Max(Of(1, 2)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on dimension mismatch", i)
				}
			}()
			f()
		}()
	}
}

func TestScale(t *testing.T) {
	v := Of(1, 2, 3)
	got := v.Scale(0.5)
	if !got.Equal(Of(0.5, 1, 1.5), 1e-15) {
		t.Errorf("Scale = %v", got)
	}
}

func TestMaxNorm(t *testing.T) {
	cases := []struct {
		v    Vector
		want float64
	}{
		{Of(), 0},
		{Of(0.3), 0.3},
		{Of(0.1, 0.9, 0.5), 0.9},
		{Of(0, 0, 0), 0},
	}
	for _, c := range cases {
		if got := c.v.MaxNorm(); got != c.want {
			t.Errorf("MaxNorm(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestSumNorm(t *testing.T) {
	if got := Of(0.1, 0.2, 0.3).SumNorm(); math.Abs(got-0.6) > 1e-15 {
		t.Errorf("SumNorm = %v, want 0.6", got)
	}
}

func TestPNorm(t *testing.T) {
	v := Of(3, 4)
	if got := v.PNorm(2); math.Abs(got-5) > 1e-12 {
		t.Errorf("PNorm(2) = %v, want 5", got)
	}
	if got := v.PNorm(1); math.Abs(got-7) > 1e-12 {
		t.Errorf("PNorm(1) = %v, want 7", got)
	}
	if got := v.PNorm(math.Inf(1)); got != 4 {
		t.Errorf("PNorm(inf) = %v, want 4", got)
	}
}

func TestPNormBelowOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PNorm(0.5) did not panic")
		}
	}()
	Of(1).PNorm(0.5)
}

func TestFitsWithin(t *testing.T) {
	cases := []struct {
		load, item Vector
		want       bool
	}{
		{Of(0.5, 0.5), Of(0.5, 0.5), true},           // exact fill
		{Of(0.5, 0.5), Of(0.6, 0.1), false},          // dim 0 overflow
		{Of(0.5, 0.5), Of(0.1, 0.6), false},          // dim 1 overflow
		{Of(0, 0), Of(1, 1), true},                   // full item in empty bin
		{Of(0.9999999999), Of(0.0000000001), true},   // within Eps
		{Of(1), Of(0.1), false},                      // clearly over
		{Of(0.3, 0.3, 0.3), Of(0.7, 0.7, 0.7), true}, // exact in 3-D
		{Of(0.3, 0.3, 0.3), Of(0.7, 0.71, 0.7), false},
	}
	for i, c := range cases {
		if got := c.load.FitsWithin(c.item); got != c.want {
			t.Errorf("case %d: FitsWithin(%v, %v) = %v, want %v", i, c.load, c.item, got, c.want)
		}
	}
}

func TestFitsWithinToleratesAccumulatedRounding(t *testing.T) {
	// Fill a bin with ten items of size 0.1 each: the float sum of 0.1 ten
	// times is not exactly 1, but the tenth item must still fit.
	load := New(1)
	item := Of(0.1)
	for i := 0; i < 10; i++ {
		if !load.FitsWithin(item) {
			t.Fatalf("item %d rejected at load %v", i, load)
		}
		load.AddInPlace(item)
	}
	if load.FitsWithin(Of(0.05)) {
		t.Fatalf("full bin accepted extra item at load %v", load)
	}
}

func TestLeqCapacity(t *testing.T) {
	if !Of(1, 0.5).LeqCapacity() {
		t.Error("LeqCapacity rejected feasible load")
	}
	if Of(1.001, 0.5).LeqCapacity() {
		t.Error("LeqCapacity accepted infeasible load")
	}
}

func TestDominates(t *testing.T) {
	if !Of(0.5, 0.5).Dominates(Of(0.5, 0.4)) {
		t.Error("Dominates false negative")
	}
	if Of(0.5, 0.3).Dominates(Of(0.5, 0.4)) {
		t.Error("Dominates false positive")
	}
}

func TestEqual(t *testing.T) {
	if !Of(1, 2).Equal(Of(1, 2.0000001), 1e-3) {
		t.Error("Equal within tol failed")
	}
	if Of(1, 2).Equal(Of(1), 1) {
		t.Error("Equal across dims")
	}
	if Of(1, 2).Equal(Of(1, 3), 1e-3) {
		t.Error("Equal beyond tol")
	}
}

func TestNonNegative(t *testing.T) {
	if !Of(0, 1).NonNegative() {
		t.Error("NonNegative false negative")
	}
	if Of(-0.1, 1).NonNegative() {
		t.Error("NonNegative accepted negative")
	}
	if Of(math.NaN()).NonNegative() {
		t.Error("NonNegative accepted NaN")
	}
}

func TestMax(t *testing.T) {
	got := Of(1, 5).Max(Of(3, 2))
	if !got.Equal(Of(3, 5), 0) {
		t.Errorf("Max = %v", got)
	}
}

func TestSum(t *testing.T) {
	got := Sum(Of(1, 0), Of(0, 1), Of(1, 1))
	if !got.Equal(Of(2, 2), 1e-15) {
		t.Errorf("Sum = %v", got)
	}
	if Sum().Dim() != 0 {
		t.Error("Sum() should be 0-dimensional")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	cases := []Vector{Of(0.5), Of(0.25, 0.75), Of(1, 0, 0.125)}
	for _, v := range cases {
		got, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", v.String(), err)
		}
		if !got.Equal(v, 0) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseFormats(t *testing.T) {
	for _, s := range []string{"0.5 0.25", "[0.5 0.25]", "0.5,0.25", "[0.5, 0.25]"} {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !v.Equal(Of(0.5, 0.25), 0) {
			t.Errorf("Parse(%q) = %v", s, v)
		}
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse empty: want error")
	}
	if _, err := Parse("abc"); err == nil {
		t.Error("Parse garbage: want error")
	}
}

// randomVectors generates n vectors of dimension d with components in [0,1).
func randomVectors(r *rand.Rand, n, d int) []Vector {
	vs := make([]Vector, n)
	for i := range vs {
		vs[i] = New(d)
		for j := range vs[i] {
			vs[i][j] = r.Float64()
		}
	}
	return vs
}

// TestProposition1 property-tests both inequalities of Proposition 1:
//
//	‖Σ v_i‖∞ ≤ Σ ‖v_i‖∞ ≤ d·‖Σ v_i‖∞
func TestProposition1(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%16) + 1
		d := int(dRaw%8) + 1
		vs := randomVectors(r, n, d)
		sum := Sum(vs...)
		sumOfNorms := 0.0
		for _, v := range vs {
			sumOfNorms += v.MaxNorm()
		}
		normOfSum := sum.MaxNorm()
		const slack = 1e-9
		return normOfSum <= sumOfNorms+slack && sumOfNorms <= float64(d)*normOfSum+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestProposition1Homogeneity property-tests ‖c·v‖∞ = c·‖v‖∞ for c ≥ 0.
func TestProposition1Homogeneity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func(dRaw uint8, cRaw uint16) bool {
		d := int(dRaw%8) + 1
		c := float64(cRaw) / 1000
		v := randomVectors(r, 1, d)[0]
		return math.Abs(v.Scale(c).MaxNorm()-c*v.MaxNorm()) < 1e-9*(1+c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNormOrdering property-tests ‖v‖∞ ≤ ‖v‖p ≤ ‖v‖1 for p ≥ 1.
func TestNormOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(dRaw, pRaw uint8) bool {
		d := int(dRaw%8) + 1
		p := 1 + float64(pRaw%10)
		v := randomVectors(r, 1, d)[0]
		const slack = 1e-9
		return v.MaxNorm() <= v.PNorm(p)+slack && v.PNorm(p) <= v.SumNorm()+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAddSubInverse property-tests that Sub undoes Add up to tolerance.
func TestAddSubInverse(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func(dRaw uint8) bool {
		d := int(dRaw%8) + 1
		vs := randomVectors(r, 2, d)
		back := vs[0].Add(vs[1]).Sub(vs[1])
		return back.Equal(vs[0], 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddInPlace(b *testing.B) {
	v := Uniform(8, 0.25)
	u := Uniform(8, 0.125)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.AddInPlace(u)
		v.SubInPlace(u)
	}
}

func BenchmarkFitsWithin(b *testing.B) {
	v := Uniform(8, 0.5)
	u := Uniform(8, 0.25)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.FitsWithin(u)
	}
}

func BenchmarkMaxNorm(b *testing.B) {
	v := Uniform(16, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = v.MaxNorm()
	}
}
