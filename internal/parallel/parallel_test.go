package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	got, err := Map(100, func(i int) (int, error) { return i * i, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil }, Options{})
	if err != nil || len(got) != 0 {
		t.Errorf("n=0: got %v, %v", got, err)
	}
	if _, err := Map(-1, func(i int) (int, error) { return 0, nil }, Options{}); err == nil {
		t.Error("n=-1: want error")
	}
}

func TestMapWorkerCounts(t *testing.T) {
	for _, w := range []int{0, 1, 2, 7, 64} {
		got, err := Map(50, func(i int) (int, error) { return i, nil }, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: got[%d]=%d", w, i, v)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int64 {
		out, err := Map(64, func(i int) (int64, error) { return SeedFor(7, i), nil }, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d differs between worker counts", i)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(100, func(i int) (int, error) {
		if i == 42 {
			return 0, boom
		}
		return i, nil
	}, Options{Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestMapReturnsSmallestIndexError(t *testing.T) {
	// With one worker the scheduler owns a single sequential block, so index 3
	// is guaranteed to fail first and be the reported error.
	_, err := Map(100, func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	}, Options{Workers: 1})
	if err == nil {
		t.Fatal("want error")
	}
	want := "parallel: shard 3: fail-3"
	if err.Error() != want {
		t.Fatalf("err = %q, want %q", err.Error(), want)
	}
}

func TestMapReportsSmallestObservedFailure(t *testing.T) {
	// Under concurrency the reported index is the smallest among the failures
	// that ran before cancellation — always one of the failing indices.
	_, err := Map(100, func(i int) (int, error) {
		if i%10 == 3 {
			return 0, fmt.Errorf("fail-%d", i)
		}
		return i, nil
	}, Options{Workers: 8})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "fail-") {
		t.Fatalf("err = %q, want a fail-N error", err)
	}
}

func TestMapCancellationStopsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := Map(1_000_000, func(i int) (int, error) {
		if calls.Add(1) == 10 {
			cancel()
		}
		return i, nil
	}, Options{Workers: 2, Context: ctx})
	if err == nil {
		t.Fatal("cancelled run should error")
	}
	if calls.Load() > 100_000 {
		t.Errorf("cancellation did not stop work early (%d calls)", calls.Load())
	}
}

func TestReduce(t *testing.T) {
	sum, err := Reduce(100,
		func(i int) (int, error) { return i, nil },
		func(acc, v int) int { return acc + v },
		0, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Errorf("sum = %d, want 4950", sum)
	}
}

func TestReduceError(t *testing.T) {
	_, err := Reduce(10,
		func(i int) (int, error) { return 0, errors.New("x") },
		func(acc, v int) int { return acc + v },
		0, Options{})
	if err == nil {
		t.Error("want error")
	}
}

func TestSeedForProperties(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 10000; i++ {
		s := SeedFor(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Error("different bases should give different seeds")
	}
	if SeedFor(1, 5) != SeedFor(1, 5) {
		t.Error("SeedFor must be pure")
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Map(64, func(j int) (int, error) { return j, nil }, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
