// Package analysis turns the proof machinery of Sections 3 and 4 of the
// paper into executable instrumentation:
//
//   - MTFDecomposition records, during a Move To Front run, which bin is the
//     *leader* (front of the recency list) at every instant, and decomposes
//     each bin's usage period into leading intervals P_{i,j} and non-leading
//     intervals Q_{i,j} — the decomposition at the heart of the Theorem 2
//     proof. Claim 1 of the paper (the leading intervals partition
//     [0, span(R))) becomes a checkable numeric identity.
//
//   - FFDecomposition splits each First Fit bin's usage interval I_i into
//     P_i ∪ Q_i around t_i = max(I_i⁻, max_{j<i} I_j⁺) as in the Theorem 3
//     proof; Claim 4 (Σ ℓ(Q_i) = span(R)) becomes checkable.
//
// Beyond validating the proofs empirically, the decompositions quantify
// *where* each algorithm's cost comes from (time spent as the active packing
// target vs. time stranded holding residual items), which the ablation
// discussion in EXPERIMENTS.md uses.
package analysis
