package core

import (
	"testing"
	"testing/quick"
)

// resultsEqual compares the externally observable parts of two Results.
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Cost != b.Cost {
		t.Errorf("%s: cost %v vs %v", label, a.Cost, b.Cost)
	}
	if a.BinsOpened != b.BinsOpened {
		t.Errorf("%s: bins %d vs %d", label, a.BinsOpened, b.BinsOpened)
	}
	if a.MaxConcurrentBins != b.MaxConcurrentBins {
		t.Errorf("%s: peak %d vs %d", label, a.MaxConcurrentBins, b.MaxConcurrentBins)
	}
	if len(a.Placements) != len(b.Placements) {
		t.Fatalf("%s: placements %d vs %d", label, len(a.Placements), len(b.Placements))
	}
	for i := range a.Placements {
		if a.Placements[i] != b.Placements[i] {
			t.Errorf("%s: placement %d: %+v vs %+v", label, i, a.Placements[i], b.Placements[i])
			return
		}
	}
	if len(a.Bins) != len(b.Bins) {
		t.Fatalf("%s: bin records %d vs %d", label, len(a.Bins), len(b.Bins))
	}
	for i := range a.Bins {
		if a.Bins[i] != b.Bins[i] {
			t.Errorf("%s: bin record %d: %+v vs %+v", label, i, a.Bins[i], b.Bins[i])
			return
		}
	}
}

// TestReferenceEngineAgreesOnHandCases: targeted scenarios with departures,
// ties and gaps.
func TestReferenceEngineAgreesOnHandCases(t *testing.T) {
	cases := [][][]float64{
		{{0, 5, 0.5}},
		{{0, 4, 0.6}, {1, 3, 0.6}},
		{{0, 2, 0.9}, {2, 4, 0.9}},              // half-open handoff
		{{0, 1, 0.5}, {10, 12, 0.5}},            // gap
		{{0, 1, 0.6}, {0, 1, 0.5}, {0, 1, 0.4}}, // simultaneous arrivals
		{{0, 100, 0.6}, {1, 100, 0.6}, {2, 3, 0.1}, {4, 5, 0.1}},
	}
	for ci, rows := range cases {
		l := list(t, 1, rows...)
		for _, mk := range []func() Policy{
			func() Policy { return NewFirstFit() },
			func() Policy { return NewNextFit() },
			func() Policy { return NewBestFit(MaxLoad()) },
			func() Policy { return NewWorstFit(MaxLoad()) },
			func() Policy { return NewLastFit() },
			func() Policy { return NewMoveToFront() },
		} {
			p := mk()
			fast := mustSimulate(t, l, p)
			ref, err := SimulateReference(l, p)
			if err != nil {
				t.Fatalf("case %d %s: %v", ci, p.Name(), err)
			}
			resultsEqual(t, p.Name(), fast, ref)
		}
	}
}

// TestReferenceEngineAgreesOnRandomInstances: full differential testing over
// random workloads and every deterministic policy. RandomFit is included:
// both engines drive the same seeded RNG through identical Select calls, so
// even it must agree.
func TestReferenceEngineAgreesOnRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		l := randomList(seed, 200, 2, 25)
		for _, p := range StandardPolicies(seed) {
			fast := mustSimulate(t, l, p)
			ref, err := SimulateReference(l, p)
			if err != nil {
				t.Fatalf("%s seed=%d: %v", p.Name(), seed, err)
			}
			resultsEqual(t, p.Name(), fast, ref)
		}
	}
}

// TestReferenceEngineAgreesOnAdversarialShapes: the engines must agree on
// instances with heavy simultaneous-arrival structure (the adversarial
// regime).
func TestReferenceEngineAgreesProperty(t *testing.T) {
	f := func(seedRaw uint16, dRaw uint8) bool {
		d := int(dRaw%3) + 1
		l := randomList(int64(seedRaw), 60, d, 10)
		for _, p := range StandardPolicies(int64(seedRaw)) {
			fast, err := Simulate(l, p)
			if err != nil {
				return false
			}
			ref, err := SimulateReference(l, p)
			if err != nil {
				return false
			}
			if fast.Cost != ref.Cost || fast.BinsOpened != ref.BinsOpened {
				t.Logf("%s seed=%d: %v/%d vs %v/%d", p.Name(), seedRaw, fast.Cost, fast.BinsOpened, ref.Cost, ref.BinsOpened)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReferenceEngineValidation(t *testing.T) {
	if _, err := SimulateReference(list(t, 1), NewFirstFit()); err == nil {
		t.Error("empty list accepted")
	}
	l := list(t, 1, []float64{0, 2, 0.9}, []float64{1, 2, 0.9})
	if _, err := SimulateReference(l, badPolicy{NewFirstFit()}); err == nil {
		t.Error("unfit choice accepted")
	}
}
