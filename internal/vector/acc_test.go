package vector

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// exactSum computes the correctly-rounded float64 sum of values using
// math/big exact rational arithmetic — the oracle for Acc.Round.
func exactSum(values []float64) float64 {
	sum := new(big.Float).SetPrec(4096)
	t := new(big.Float).SetPrec(4096)
	for _, v := range values {
		sum.Add(sum, t.SetFloat64(v))
	}
	f, _ := sum.Float64()
	return f
}

func accOf(values []float64) *Acc {
	var a Acc
	for _, v := range values {
		a.Add(v)
	}
	return &a
}

func TestAccMatchesBigFloat(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1},
		{-1},
		{0.1, 0.2, 0.3},
		{1e300, 1, -1e300},
		{1e300, -1e300, 1e-300},
		{1, 1e-30, -1},
		{math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64},
		{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64},
		{math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64},
		{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
		{1.5, 2.5, -4.0},
		{math.Pi, math.E, -math.Sqrt2, math.Ln2},
		{math.Ldexp(1, -1074), math.Ldexp(1, -1074), math.Ldexp(1, -1074)},
		{math.Ldexp(1, 1023), math.Ldexp(1, -1074)},
		{math.Ldexp(1, 52), 0.5},      // round-to-even boundary
		{math.Ldexp(1, 52), 0.5, 1},   // tie broken by extra term
		{math.Ldexp(1, 53), 1},        // below-ulp addend
		{math.Ldexp(1, 53), 1, 1e-60}, // sticky forces round up
	}
	for _, vals := range cases {
		got := accOf(vals).Round()
		want := exactSum(vals)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("Acc(%v).Round() = %v (%#x), want %v (%#x)",
				vals, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestAccMatchesBigFloatRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 2000; iter++ {
		n := 1 + rng.Intn(40)
		vals := make([]float64, n)
		for i := range vals {
			switch rng.Intn(4) {
			case 0: // bin-load-like sizes in (0, 1]
				vals[i] = float64(1+rng.Intn(1000)) / 1000
			case 1: // wide magnitude range
				vals[i] = math.Ldexp(rng.Float64(), rng.Intn(120)-60)
			case 2: // signed, cancellation-heavy
				vals[i] = (rng.Float64() - 0.5) * 2
			default: // raw random bit patterns (finite only)
				for {
					v := math.Float64frombits(rng.Uint64())
					if !math.IsInf(v, 0) && !math.IsNaN(v) {
						vals[i] = v
						break
					}
				}
			}
		}
		got := accOf(vals).Round()
		want := exactSum(vals)
		if math.Float64bits(got) != math.Float64bits(want) {
			// Subnormal results may legitimately double-round by one ulp;
			// anything else is a bug.
			if want != 0 && math.Abs(want) < math.Ldexp(1, -1022) &&
				math.Abs(got-want) <= math.Ldexp(1, -1074) {
				continue
			}
			t.Fatalf("iter %d: Acc(%v).Round() = %v (%#x), want %v (%#x)",
				iter, vals, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

// TestAccOrderIndependence is the determinism contract: the same multiset of
// values produces a bit-identical accumulator state (and hence Round result)
// regardless of insertion order, and regardless of how many other values were
// added and exactly removed along the way.
func TestAccOrderIndependence(t *testing.T) {
	f := func(raw []uint16, permSeed int64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			// Sizes in (0, 1] with varied mantissas, like real demands.
			vals[i] = float64(r+1) / 65536
		}

		forward := accOf(vals)

		perm := append([]float64(nil), vals...)
		rng := rand.New(rand.NewSource(permSeed))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var shuffled Acc
		// Interleave transient add/remove pairs with the permuted inserts:
		// a different history reaching the same active multiset.
		for i, v := range perm {
			noise := float64(i+1) / 7
			shuffled.Add(noise)
			shuffled.Add(v)
			shuffled.Sub(noise)
		}

		// The limb vector is the canonical state; the lo/hi window is just a
		// conservative bound on touched limbs and may differ across histories.
		return forward.limb == shuffled.limb &&
			math.Float64bits(forward.Round()) == math.Float64bits(shuffled.Round())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAccSubRestoresExactState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a Acc
	base := []float64{0.25, 0.1, 1e-9, 0.7777}
	for _, v := range base {
		a.Add(v)
	}
	snapshot := a.limb
	for iter := 0; iter < 1000; iter++ {
		v := math.Ldexp(rng.Float64(), rng.Intn(80)-40)
		a.Add(v)
		a.Sub(v)
	}
	if a.limb != snapshot {
		t.Fatal("add/remove pairs perturbed the accumulator state")
	}
}

func TestAccNegativeAndZero(t *testing.T) {
	var a Acc
	a.Add(0.3)
	a.Sub(0.7)
	if got, want := a.Round(), exactSum([]float64{0.3, -0.7}); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("negative total: got %v, want %v", got, want)
	}
	// Exact cancellation needs values whose real sum is zero; dyadic
	// fractions qualify (0.3-0.7+0.4 does NOT: the float constants are not
	// the decimals they print as, and the exact residue is 2^-54).
	a.Reset()
	a.Add(0.25)
	a.Add(0.5)
	a.Sub(0.75)
	if !a.IsZero() {
		t.Error("0.25 + 0.5 - 0.75 should be exactly zero")
	}
	if got := a.Round(); got != 0 {
		t.Errorf("Round of exact zero = %v, want 0", got)
	}
	a.Add(0)
	a.Sub(0)
	if !a.IsZero() {
		t.Error("adding zero changed the state")
	}
}

func TestAccReset(t *testing.T) {
	var a Acc
	a.Add(1e300)
	a.Add(1e-300)
	a.Reset()
	var fresh Acc
	if a != fresh {
		t.Error("Reset did not restore the zero state")
	}
	a.Add(0.5)
	if got := a.Round(); got != 0.5 {
		t.Errorf("after Reset: Round = %v, want 0.5", got)
	}
}

func TestAccPanicsOnNonFinite(t *testing.T) {
	for _, x := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", x)
				}
			}()
			var a Acc
			a.Add(x)
		}()
	}
}

func TestAccNoAllocs(t *testing.T) {
	var a Acc
	allocs := testing.AllocsPerRun(100, func() {
		a.Add(0.3)
		_ = a.Round()
		a.Sub(0.3)
	})
	if allocs != 0 {
		t.Errorf("Add/Round/Sub allocated %v times per run, want 0", allocs)
	}
}

func BenchmarkAccAddSub(b *testing.B) {
	var a Acc
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(0.34375)
		a.Sub(0.34375)
	}
}

func BenchmarkAccRound(b *testing.B) {
	var a Acc
	for i := 0; i < 64; i++ {
		a.Add(float64(i+1) / 100)
	}
	b.ReportAllocs()
	var s float64
	for i := 0; i < b.N; i++ {
		s = a.Round()
	}
	_ = s
}
