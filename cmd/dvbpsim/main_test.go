package main

import (
	"os"
	"path/filepath"
	"testing"

	"dvbp/internal/workload"
)

func TestLoadInstanceGenerates(t *testing.T) {
	l, err := loadInstance("", 2, 50, 5, 100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 50 || l.Dim != 2 {
		t.Errorf("shape = %dx%d", l.Dim, l.Len())
	}
}

func TestLoadInstanceFromFiles(t *testing.T) {
	dir := t.TempDir()
	src, err := workload.Uniform(workload.UniformConfig{D: 3, N: 20, Mu: 4, T: 20, B: 10}, 2)
	if err != nil {
		t.Fatal(err)
	}

	csvPath := filepath.Join(dir, "a.csv")
	f, _ := os.Create(csvPath)
	if err := workload.WriteCSV(f, src); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := loadInstance(csvPath, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 || got.Dim != 3 {
		t.Errorf("csv shape = %dx%d", got.Dim, got.Len())
	}

	jsonPath := filepath.Join(dir, "a.json")
	f, _ = os.Create(jsonPath)
	if err := workload.WriteJSON(f, src); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = loadInstance(jsonPath, 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 20 {
		t.Errorf("json items = %d", got.Len())
	}

	if _, err := loadInstance(filepath.Join(dir, "missing.csv"), 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := loadInstance("", 0, 0, 0, 0, 0, 1); err == nil {
		t.Error("invalid generator config accepted")
	}
}
