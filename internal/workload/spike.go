package workload

import (
	"fmt"
	"math/rand"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// SpikeConfig models flash crowds: a low background arrival rate punctuated
// by short bursts during which the rate multiplies — e.g. a game launch or a
// live event in the cloud-gaming setting. Spiky arrivals stress exactly the
// behaviour the competitive analysis punishes: many bins opened at the burst
// whose stragglers then pin servers open.
type SpikeConfig struct {
	// D is the number of resource dimensions.
	D int
	// Horizon is the arrival window length.
	Horizon float64
	// BaseRate is the background Poisson rate.
	BaseRate float64
	// Spikes is the number of bursts, spread evenly across the horizon.
	Spikes int
	// SpikeWidth is each burst's duration.
	SpikeWidth float64
	// SpikeFactor multiplies the rate inside a burst (> 1).
	SpikeFactor float64
	// MeanDuration and MaxDuration bound the exponential-ish session length.
	MeanDuration, MaxDuration float64
	// MinDuration floors it (μ = MaxDuration/MinDuration effectively).
	MinDuration float64
	// MaxSize bounds each uniform size component (0 < MaxSize <= 1).
	MaxSize float64
}

// Validate checks the configuration.
func (c SpikeConfig) Validate() error {
	switch {
	case c.D < 1:
		return fmt.Errorf("workload: spike D = %d", c.D)
	case c.Horizon <= 0:
		return fmt.Errorf("workload: spike Horizon = %g", c.Horizon)
	case c.BaseRate <= 0:
		return fmt.Errorf("workload: spike BaseRate = %g", c.BaseRate)
	case c.Spikes < 0:
		return fmt.Errorf("workload: negative Spikes")
	case c.Spikes > 0 && (c.SpikeWidth <= 0 || c.SpikeFactor <= 1):
		return fmt.Errorf("workload: spike width %g / factor %g invalid", c.SpikeWidth, c.SpikeFactor)
	case c.MinDuration <= 0 || c.MaxDuration < c.MinDuration:
		return fmt.Errorf("workload: spike duration range [%g,%g] invalid", c.MinDuration, c.MaxDuration)
	case c.MeanDuration < c.MinDuration || c.MeanDuration > c.MaxDuration:
		return fmt.Errorf("workload: spike MeanDuration %g out of range", c.MeanDuration)
	case c.MaxSize <= 0 || c.MaxSize > 1:
		return fmt.Errorf("workload: spike MaxSize %g invalid", c.MaxSize)
	}
	return nil
}

// Spike generates a flash-crowd trace, deterministic in (cfg, seed).
func Spike(cfg SpikeConfig, seed int64) (*item.List, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))

	inSpike := func(t float64) bool {
		if cfg.Spikes == 0 {
			return false
		}
		period := cfg.Horizon / float64(cfg.Spikes)
		offset := t - float64(int(t/period))*period
		return offset < cfg.SpikeWidth
	}

	maxRate := cfg.BaseRate * cfg.SpikeFactor
	if cfg.Spikes == 0 {
		maxRate = cfg.BaseRate
	}

	l := item.NewList(cfg.D)
	t := 0.0
	for {
		t += r.ExpFloat64() / maxRate
		if t >= cfg.Horizon {
			break
		}
		rate := cfg.BaseRate
		if inSpike(t) {
			rate = maxRate
		}
		if r.Float64()*maxRate > rate {
			continue // thinning
		}
		dur := cfg.MinDuration + r.ExpFloat64()*(cfg.MeanDuration-cfg.MinDuration+1e-9)
		if dur > cfg.MaxDuration {
			dur = cfg.MaxDuration
		}
		size := vector.New(cfg.D)
		for j := range size {
			size[j] = clamp01(r.Float64() * cfg.MaxSize)
		}
		l.Add(t, t+dur, size)
	}
	if l.Len() == 0 {
		l.Add(0, cfg.MinDuration, vector.Uniform(cfg.D, cfg.MaxSize/2))
	}
	return l, nil
}
