// Command dvbptrace generates, inspects and converts DVBP workload traces.
//
//	dvbptrace gen -model uniform -d 2 -n 1000 -mu 100 -o trace.csv
//	dvbptrace gen -model sessions -d 3 -horizon 500 -rate 2 -o sessions.json
//	dvbptrace gen -model diurnal -d 2 -horizon 240 -o day.csv
//	dvbptrace inspect trace.csv
//	dvbptrace convert trace.csv trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "inspect":
		cmdInspect(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dvbptrace gen|inspect|convert [flags]")
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		model   = fs.String("model", "uniform", "uniform | sessions | diurnal")
		d       = fs.Int("d", 2, "dimensions")
		n       = fs.Int("n", 1000, "items (uniform)")
		mu      = fs.Int("mu", 10, "max duration (uniform)")
		horizon = fs.Float64("horizon", 1000, "span (uniform T / session horizon)")
		binSize = fs.Int("B", 100, "bin granularity (uniform)")
		rate    = fs.Float64("rate", 1, "arrival rate (sessions/diurnal)")
		meanDur = fs.Float64("meandur", 10, "mean session duration")
		maxDur  = fs.Float64("maxdur", 200, "max session duration")
		peak    = fs.Float64("peak", 3, "diurnal peak factor")
		period  = fs.Float64("period", 24, "diurnal period")
		seed    = fs.Int64("seed", 1, "seed")
		out     = fs.String("o", "", "output file (.csv or .json; default stdout CSV)")
	)
	fs.Parse(args)

	var (
		l   *item.List
		err error
	)
	switch *model {
	case "uniform":
		l, err = workload.Uniform(workload.UniformConfig{D: *d, N: *n, Mu: *mu, T: int(*horizon), B: *binSize}, *seed)
	case "sessions":
		l, err = workload.Sessions(workload.SessionConfig{
			D: *d, Horizon: *horizon, Rate: *rate,
			MeanDuration: *meanDur, Alpha: 2.5, MinDuration: 1, MaxDuration: *maxDur,
		}, *seed)
	case "diurnal":
		l, err = workload.Diurnal(workload.DiurnalConfig{
			Session: workload.SessionConfig{
				D: *d, Horizon: *horizon, Rate: *rate,
				MeanDuration: *meanDur, Alpha: 2.5, MinDuration: 1, MaxDuration: *maxDur,
			},
			Period: *period, PeakFactor: *peak,
		}, *seed)
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	if err != nil {
		fatal(err)
	}

	if *out == "" {
		if err := workload.WriteCSV(os.Stdout, l); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".json") {
		err = workload.WriteJSON(f, l)
	} else {
		err = workload.WriteCSV(f, l)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d items to %s\n", l.Len(), *out)
}

func cmdInspect(args []string) {
	if len(args) != 1 {
		fatal(fmt.Errorf("usage: dvbptrace inspect FILE"))
	}
	l, err := read(args[0])
	if err != nil {
		fatal(err)
	}
	lb := lowerbound.Compute(l)
	hull := l.Hull()
	fmt.Printf("file:        %s\n", args[0])
	fmt.Printf("time hull:   [%g, %g)\n", hull.Lo, hull.Hi)
	desc, err := workload.Describe(l)
	if err != nil {
		fatal(err)
	}
	fmt.Print(desc)
	fmt.Printf("total size:  %v\n", l.TotalSize())
	fmt.Printf("LB on OPT:   integral=%.4f utilization=%.4f span=%.4f\n",
		lb.Integral, lb.Utilization, lb.Span)
}

func cmdConvert(args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("usage: dvbptrace convert IN OUT"))
	}
	l, err := read(args[0])
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(args[1])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(args[1], ".json") {
		err = workload.WriteJSON(f, l)
	} else {
		err = workload.WriteCSV(f, l)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "converted %d items: %s -> %s\n", l.Len(), args[0], args[1])
}

func read(path string) (*item.List, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return workload.ReadJSON(f)
	}
	return workload.ReadCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbptrace:", err)
	os.Exit(1)
}
