package metrics

import (
	"testing"

	"dvbp/internal/core"
)

// observeOneEvent drives a Collector through a full steady-state engine
// event: a decision (AfterSelect), a placement (BeforePack/AfterPack into an
// existing bin), and a bin close.
func observeOneEvent(c *Collector, req core.Request, b *core.Bin) {
	c.BeforePack(req, nil)
	c.AfterSelect(req, b, 3)
	c.AfterPack(req, b, false)
	c.BinClosed(b, 1)
}

// TestCollectorHotPathAllocs pins the observer seam to zero steady-state
// allocations: attaching a Collector must not reintroduce per-event garbage
// on the engine hot path the incremental load accounting just cleared.
// (The starts map inserts and deletes the same key per placement, so it
// reaches a fixed size immediately; instruments are atomics.)
func TestCollectorHotPathAllocs(t *testing.T) {
	c := NewCollector(WithClock(&Manual{}))
	req := core.Request{ID: 1, SeqNo: 1}
	b := &core.Bin{ID: 0}
	// Warm-up: let the starts map allocate its first bucket.
	observeOneEvent(c, req, b)
	allocs := testing.AllocsPerRun(200, func() {
		observeOneEvent(c, req, b)
	})
	if allocs != 0 {
		t.Errorf("collector hot path allocates %v per event in steady state, want 0", allocs)
	}
}

func BenchmarkCollectorObserverHotPath(b *testing.B) {
	c := NewCollector(WithClock(&Manual{}))
	req := core.Request{ID: 1, SeqNo: 1}
	bin := &core.Bin{ID: 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		observeOneEvent(c, req, bin)
	}
}
