package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// This file adds datacenter-realistic trace families beside the paper's
// uniform model: heavy-tailed sizes, correlated per-dimension demands (VM
// shapes come in fixed CPU:RAM ratios), and Markov-modulated arrival bursts.
// AzureLike parameterises the VM-serving regime of the Azure traces (few
// shapes, strong correlation, long sessions); GoogleLike the Borg-task
// regime (many tiny tasks, weak correlation, strong bursts).

// InstanceFamily is a demand shape class: per-dimension ratios that a drawn
// size scale multiplies into a demand vector.
type InstanceFamily struct {
	Name string
	// Shape holds per-dimension multipliers in (0, 1]; the family's demand
	// in dimension j is scale·Shape[j].
	Shape vector.Vector
	// Weight is the sampling weight among families.
	Weight float64
}

// DatacenterConfig drives the Datacenter generator. All fields must be
// finite; Validate rejects NaN/Inf up front so degenerate draws cannot leak
// into instances.
type DatacenterConfig struct {
	// D is the number of resource dimensions.
	D int
	// Horizon is the arrival window length; Rate the base Poisson arrival
	// rate outside bursts.
	Horizon float64
	Rate    float64
	// BurstFactor multiplies the rate during bursts (>= 1; 1 disables
	// bursts). BurstOn and BurstOff are the mean burst and gap lengths of
	// the two-state Markov modulation (both > 0 when BurstFactor > 1).
	BurstFactor       float64
	BurstOn, BurstOff float64
	// Durations are bounded-Pareto: mean MeanDuration, tail DurationAlpha
	// (> 1), truncated to [MinDuration, MaxDuration].
	MeanDuration             float64
	DurationAlpha            float64
	MinDuration, MaxDuration float64
	// Size scales are bounded-Pareto with tail SizeAlpha (> 1), mean
	// SizeMean, truncated to [SizeMin, SizeMax].
	SizeAlpha        float64
	SizeMean         float64
	SizeMin, SizeMax float64
	// Corr in [0, 1] blends a shared size scale (perfect cross-dimension
	// correlation) with independent per-dimension scales: 1 reproduces
	// fixed-ratio VM shapes, 0 makes dimensions independent.
	Corr float64
	// Families is the shape catalogue; DefaultFamilies(D) when empty.
	Families []InstanceFamily
}

// DefaultFamilies returns a VM-like shape catalogue over d dimensions:
// compute-optimised, memory-optimised (when d >= 2) and general-purpose,
// rotating the dominant axis like DefaultTypes.
func DefaultFamilies(d int) []InstanceFamily {
	if d < 1 {
		panic("workload: DefaultFamilies needs d >= 1")
	}
	mk := func(name string, dom int, high, low, w float64) InstanceFamily {
		v := vector.Uniform(d, low)
		v[dom%d] = high
		return InstanceFamily{Name: name, Shape: v, Weight: w}
	}
	fams := []InstanceFamily{
		mk("compute-opt", 0, 1.0, 0.35, 3),
		{Name: "general", Shape: vector.Uniform(d, 0.65), Weight: 4},
	}
	if d >= 2 {
		fams = append(fams, mk("memory-opt", 1, 1.0, 0.3, 2))
	}
	return fams
}

// AzureLike returns the VM-serving regime: few fixed shapes with strongly
// correlated dimensions, heavy-tailed sizes up to over half a host, long
// Pareto sessions, and mild arrival bursts. Dimensional imbalance here comes
// from the shape mix — compute-optimised next to memory-optimised VMs strand
// whichever resource the co-located shapes do not stress.
func AzureLike(d int) DatacenterConfig {
	return DatacenterConfig{
		D:           d,
		Horizon:     200,
		Rate:        3,
		BurstFactor: 3, BurstOn: 8, BurstOff: 25,
		MeanDuration: 40, DurationAlpha: 1.8, MinDuration: 2, MaxDuration: 400,
		SizeAlpha: 1.5, SizeMean: 0.16, SizeMin: 0.04, SizeMax: 0.62,
		Corr:     0.85,
		Families: DefaultFamilies(d),
	}
}

// GoogleLike returns the Borg-task regime: swarms of tiny short tasks with
// weakly correlated dimensions and strong arrival bursts, plus a thin heavy
// tail of large tasks.
func GoogleLike(d int) DatacenterConfig {
	return DatacenterConfig{
		D:           d,
		Horizon:     200,
		Rate:        6,
		BurstFactor: 6, BurstOn: 3, BurstOff: 12,
		MeanDuration: 15, DurationAlpha: 1.6, MinDuration: 0.5, MaxDuration: 200,
		SizeAlpha: 2.2, SizeMean: 0.06, SizeMin: 0.01, SizeMax: 0.5,
		Corr:     0.35,
		Families: DefaultFamilies(d),
	}
}

// finite reports x being an ordinary float (not NaN, not ±Inf).
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Validate checks the configuration, rejecting non-finite parameters.
func (c DatacenterConfig) Validate() error {
	for name, x := range map[string]float64{
		"Horizon": c.Horizon, "Rate": c.Rate, "BurstFactor": c.BurstFactor,
		"BurstOn": c.BurstOn, "BurstOff": c.BurstOff,
		"MeanDuration": c.MeanDuration, "DurationAlpha": c.DurationAlpha,
		"MinDuration": c.MinDuration, "MaxDuration": c.MaxDuration,
		"SizeAlpha": c.SizeAlpha, "SizeMean": c.SizeMean,
		"SizeMin": c.SizeMin, "SizeMax": c.SizeMax, "Corr": c.Corr,
	} {
		if !finite(x) {
			return fmt.Errorf("workload: %s = %g is not finite", name, x)
		}
	}
	switch {
	case c.D < 1:
		return fmt.Errorf("workload: D = %d, want >= 1", c.D)
	case c.Horizon <= 0:
		return fmt.Errorf("workload: Horizon = %g, want > 0", c.Horizon)
	case c.Rate <= 0:
		return fmt.Errorf("workload: Rate = %g, want > 0", c.Rate)
	case c.BurstFactor < 1:
		return fmt.Errorf("workload: BurstFactor = %g, want >= 1", c.BurstFactor)
	case c.BurstFactor > 1 && (c.BurstOn <= 0 || c.BurstOff <= 0):
		return fmt.Errorf("workload: burst lengths [%g,%g] invalid with BurstFactor %g", c.BurstOn, c.BurstOff, c.BurstFactor)
	case c.DurationAlpha <= 1 || c.SizeAlpha <= 1:
		return fmt.Errorf("workload: Pareto tails (%g, %g) must exceed 1", c.DurationAlpha, c.SizeAlpha)
	case c.MinDuration <= 0 || c.MaxDuration < c.MinDuration:
		return fmt.Errorf("workload: duration range [%g,%g] invalid", c.MinDuration, c.MaxDuration)
	case c.MeanDuration < c.MinDuration || c.MeanDuration > c.MaxDuration:
		return fmt.Errorf("workload: MeanDuration %g outside [%g,%g]", c.MeanDuration, c.MinDuration, c.MaxDuration)
	case c.SizeMin <= 0 || c.SizeMax < c.SizeMin || c.SizeMax > 1:
		return fmt.Errorf("workload: size range [%g,%g] invalid", c.SizeMin, c.SizeMax)
	case c.SizeMean < c.SizeMin || c.SizeMean > c.SizeMax:
		return fmt.Errorf("workload: SizeMean %g outside [%g,%g]", c.SizeMean, c.SizeMin, c.SizeMax)
	case c.Corr < 0 || c.Corr > 1:
		return fmt.Errorf("workload: Corr = %g, want [0,1]", c.Corr)
	}
	for i, f := range c.Families {
		if f.Shape.Dim() != c.D {
			return fmt.Errorf("workload: family %d dimension %d, want %d", i, f.Shape.Dim(), c.D)
		}
		if f.Weight <= 0 {
			return fmt.Errorf("workload: family %d non-positive weight", i)
		}
		for j, s := range f.Shape {
			if !finite(s) || s <= 0 || s > 1 {
				return fmt.Errorf("workload: family %d shape[%d] = %g, want (0,1]", i, j, s)
			}
		}
	}
	return nil
}

// Datacenter generates a datacenter-style trace: Markov-modulated Poisson
// arrivals, bounded-Pareto durations, and per-family correlated heavy-tailed
// sizes. It is deterministic in (cfg, seed), and every emitted item passes
// the degenerate-draw audit (checkItem) — a sampler producing NaN/Inf or a
// zero-length lifetime aborts with an explicit error instead of emitting a
// silently broken event.
func Datacenter(cfg DatacenterConfig, seed int64) (*item.List, error) {
	if cfg.D >= 1 && cfg.Families == nil {
		cfg.Families = DefaultFamilies(cfg.D)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	totalW := 0.0
	for _, f := range cfg.Families {
		totalW += f.Weight
	}

	l := item.NewList(cfg.D)
	t := 0.0
	bursting := false
	stateEnd := 0.0
	if cfg.BurstFactor > 1 {
		stateEnd = r.ExpFloat64() * cfg.BurstOff
	} else {
		stateEnd = math.Inf(1)
	}
	for {
		rate := cfg.Rate
		if bursting {
			rate *= cfg.BurstFactor
		}
		next := t + r.ExpFloat64()/rate
		if next >= stateEnd {
			// State flip before the next arrival: re-draw from the flip time.
			t = stateEnd
			bursting = !bursting
			mean := cfg.BurstOff
			if bursting {
				mean = cfg.BurstOn
			}
			stateEnd = t + r.ExpFloat64()*mean
			if t >= cfg.Horizon {
				break
			}
			continue
		}
		t = next
		if t >= cfg.Horizon {
			break
		}
		dur := boundedPareto(r, cfg.DurationAlpha, cfg.MinDuration, cfg.MaxDuration, cfg.MeanDuration)
		f := pickFamily(r, cfg.Families, totalW)
		shared := boundedPareto(r, cfg.SizeAlpha, cfg.SizeMin, cfg.SizeMax, cfg.SizeMean)
		size := vector.New(cfg.D)
		for j := range size {
			own := boundedPareto(r, cfg.SizeAlpha, cfg.SizeMin, cfg.SizeMax, cfg.SizeMean)
			size[j] = clamp01(f.Shape[j] * (cfg.Corr*shared + (1-cfg.Corr)*own))
		}
		if err := checkItem(l.Len(), t, dur, size); err != nil {
			return nil, err
		}
		l.Add(t, t+dur, size)
	}
	if l.Len() == 0 {
		// Degenerate draw (tiny horizon·rate); keep downstream code away
		// from empty instances, as Sessions does.
		f := cfg.Families[0]
		size := vector.New(cfg.D)
		for j := range size {
			size[j] = clamp01(f.Shape[j] * cfg.SizeMean)
		}
		l.Add(0, cfg.MinDuration, size)
	}
	return l, nil
}

func pickFamily(r *rand.Rand, fams []InstanceFamily, totalW float64) InstanceFamily {
	x := r.Float64() * totalW
	for _, f := range fams {
		if x < f.Weight {
			return f
		}
		x -= f.Weight
	}
	return fams[len(fams)-1]
}

// checkItem is the degenerate-draw audit every generator runs before
// emitting an item: non-finite arrivals or sizes and zero-or-negative
// durations abort generation with an explicit error naming the item, rather
// than letting a silently bad event poison a simulation.
func checkItem(idx int, arrival, dur float64, size vector.Vector) error {
	if !finite(arrival) || arrival < 0 {
		return fmt.Errorf("workload: item %d has degenerate arrival %g", idx, arrival)
	}
	if !finite(dur) || dur <= 0 {
		return fmt.Errorf("workload: item %d has degenerate duration %g", idx, dur)
	}
	for j, s := range size {
		if !finite(s) || s <= 0 || s > 1 {
			return fmt.Errorf("workload: item %d has degenerate size[%d] = %g", idx, j, s)
		}
	}
	return nil
}
