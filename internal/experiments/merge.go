package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SweepVersion identifies the on-disk sweep envelope format.
const SweepVersion = "dvbp-sweep/v1"

// SweepValue is one shard's result, keyed by its global shard index.
type SweepValue[T any] struct {
	Index int `json:"index"`
	Value T   `json:"value"`
}

// Sweep is the serialisable outcome of one (possibly partial) sharded
// experiment invocation. A full run carries every shard's value; a run
// restricted by a ShardSlice carries only its slice, and MergeSweeps
// reassembles slices into the full sweep. Values are always sorted by shard
// index and grids are canonical JSON, so encoding a sweep is byte-identical
// for any worker count and any partition into slices (the determinism
// contract, DESIGN.md §9).
type Sweep[T any] struct {
	Version    string `json:"version"`
	Experiment string `json:"experiment"`
	// Grid is the canonical JSON of the experiment's result-affecting
	// configuration. Parts must agree on it byte-for-byte to merge.
	Grid json.RawMessage `json:"grid"`
	// Shards is the total shard count of the sweep (not of this slice).
	Shards int             `json:"shards"`
	Slice  ShardSlice      `json:"slice"`
	Values []SweepValue[T] `json:"values"`
}

// newSweep builds a slice-restricted sweep document from a dense result
// vector, keeping only the indices the slice selects.
func newSweep[T any](experiment string, grid any, slice ShardSlice, dense []T) (*Sweep[T], error) {
	g, err := json.Marshal(grid)
	if err != nil {
		return nil, fmt.Errorf("experiments: marshal %s grid: %w", experiment, err)
	}
	s := &Sweep[T]{Version: SweepVersion, Experiment: experiment, Grid: g, Shards: len(dense), Slice: slice}
	for i, v := range dense {
		if slice.Selects(i) {
			s.Values = append(s.Values, SweepValue[T]{Index: i, Value: v})
		}
	}
	return s, nil
}

// validate checks the envelope's internal consistency.
func (s *Sweep[T]) validate() error {
	if s.Version != SweepVersion {
		return fmt.Errorf("experiments: sweep version %q, want %q", s.Version, SweepVersion)
	}
	if err := s.Slice.Validate(); err != nil {
		return err
	}
	for _, v := range s.Values {
		if v.Index < 0 || v.Index >= s.Shards {
			return fmt.Errorf("experiments: sweep value index %d outside [0,%d)", v.Index, s.Shards)
		}
		if !s.Slice.Selects(v.Index) {
			return fmt.Errorf("experiments: sweep value index %d outside slice %s", v.Index, s.Slice)
		}
	}
	return nil
}

// Complete reports whether the sweep covers every shard.
func (s *Sweep[T]) Complete() bool { return len(s.Values) == s.Shards }

// Dense returns the full index-ordered result vector; it fails unless the
// sweep is complete (merge partial slices first).
func (s *Sweep[T]) Dense() ([]T, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("experiments: sweep slice %s covers %d of %d shards; merge all slices first",
			s.Slice, len(s.Values), s.Shards)
	}
	out := make([]T, s.Shards)
	seen := make([]bool, s.Shards)
	for _, v := range s.Values {
		if seen[v.Index] {
			return nil, fmt.Errorf("experiments: duplicate sweep value for shard %d", v.Index)
		}
		seen[v.Index] = true
		out[v.Index] = v.Value
	}
	return out, nil
}

// MergeSweeps reassembles slice parts of one experiment into a single sweep.
// Parts must share version, experiment, grid and shard count; their index
// sets must be disjoint and jointly cover every shard. The merged sweep is
// canonical: whole-space slice, values sorted by index — so its encoding is
// byte-identical no matter how the work was partitioned.
func MergeSweeps[T any](parts ...*Sweep[T]) (*Sweep[T], error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("experiments: no sweep parts to merge")
	}
	first := parts[0]
	if err := first.validate(); err != nil {
		return nil, err
	}
	merged := &Sweep[T]{
		Version:    SweepVersion,
		Experiment: first.Experiment,
		Grid:       first.Grid,
		Shards:     first.Shards,
	}
	seen := make([]bool, first.Shards)
	for pi, p := range parts {
		if err := p.validate(); err != nil {
			return nil, fmt.Errorf("experiments: part %d: %w", pi, err)
		}
		if p.Experiment != first.Experiment {
			return nil, fmt.Errorf("experiments: part %d is %q, part 0 is %q", pi, p.Experiment, first.Experiment)
		}
		if p.Shards != first.Shards {
			return nil, fmt.Errorf("experiments: part %d has %d shards, part 0 has %d", pi, p.Shards, first.Shards)
		}
		if !bytes.Equal(p.Grid, first.Grid) {
			return nil, fmt.Errorf("experiments: part %d was run with a different configuration", pi)
		}
		for _, v := range p.Values {
			if seen[v.Index] {
				return nil, fmt.Errorf("experiments: shard %d appears in more than one part", v.Index)
			}
			seen[v.Index] = true
			merged.Values = append(merged.Values, v)
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("experiments: shard %d missing from every part", i)
		}
	}
	sort.Slice(merged.Values, func(a, b int) bool { return merged.Values[a].Index < merged.Values[b].Index })
	return merged, nil
}

// EncodeJSON writes the sweep as indented JSON with values in index order —
// the canonical byte representation the determinism tests compare.
func (s *Sweep[T]) EncodeJSON(w io.Writer) error {
	sort.Slice(s.Values, func(a, b int) bool { return s.Values[a].Index < s.Values[b].Index })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSweep reads one sweep document, checking the envelope and (when
// experiment is non-empty) the experiment name.
func DecodeSweep[T any](r io.Reader, experiment string) (*Sweep[T], error) {
	var s Sweep[T]
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("experiments: decode sweep: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	if experiment != "" && s.Experiment != experiment {
		return nil, fmt.Errorf("experiments: sweep is %q, want %q", s.Experiment, experiment)
	}
	return &s, nil
}
