package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
)

// The shared exit-code vocabulary. Every dvbp command exits with one of
// these (dvbpchaos additionally uses ExitKilled for its -kill-at crash mode).
const (
	// ExitOK: the run completed.
	ExitOK = 0
	// ExitError: the run failed (bad flags, bad input, internal error).
	ExitError = 1
	// ExitTimeout: the -timeout budget expired; partial results were flushed
	// where the command supports them.
	ExitTimeout = 2
	// ExitKilled: the command killed itself on purpose (dvbpchaos -kill-at),
	// leaving its checkpoint directory in a torn, recoverable state.
	ExitKilled = 3
)

// ExitCode maps an error to the shared convention: nil is success, a context
// deadline or cancellation anywhere in the chain is a timeout, anything else
// is a plain failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ExitTimeout
	default:
		return ExitError
	}
}

// Fatal reports err as "tool: err" on stderr and exits with ExitCode(err).
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitCode(err))
}
