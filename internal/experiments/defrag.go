package experiments

import (
	"context"
	"fmt"

	"dvbp/internal/core"
	"dvbp/internal/exactopt"
	"dvbp/internal/lowerbound"
	"dvbp/internal/metrics"
	"dvbp/internal/migrate"
	"dvbp/internal/offline"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
)

// This file is the budgeted-defragmentation study: every Any Fit policy runs
// each trace model twice — once irrevocable (the paper's model), once with
// periodic budgeted consolidation passes (internal/migrate) — and the study
// reports the usage-time and stranded-capacity·time gains next to the exact
// migration cost paid for them. Costs are normalised by the Lemma 1 integral
// lower bound, and each trace carries its offline upper estimate, so every
// ratio sits inside the same [1, UB/LB] bracket RunFrag uses.

// DefragConfig parameterises the defragmentation study.
type DefragConfig struct {
	// D is the number of resource dimensions.
	D int
	// Instances is the number of independent instances per trace model.
	Instances int
	Seed      int64
	// Horizon is the arrival window of the trace models (see FragConfig).
	Horizon float64
	// Migration is the budgeted consolidation configuration of the migrating
	// leg. It must be enabled (non-empty planner, positive period and budget).
	Migration migrate.Config
	// Exact, when set, additionally brackets each instance against exact OPT
	// (internal/exactopt). Instances whose peak concurrency exceeds
	// exactopt.DefaultMaxActive are skipped — exact OPT is exponential — so
	// the Exact summaries may aggregate fewer instances than the rest.
	Exact bool
	RunControl
}

// DefaultDefrag keeps the study smoke-runnable: a short drain-emptiest
// cadence with a per-pass move cap, no cost cap.
func DefaultDefrag() DefragConfig {
	return DefragConfig{
		D: 2, Instances: 12, Seed: 1, Horizon: 120,
		Migration: migrate.Config{Planner: "drain-emptiest", Period: 5, MaxMoves: 8},
	}
}

// Validate checks the configuration.
func (c DefragConfig) Validate() error {
	switch {
	case c.D < 1:
		return fmt.Errorf("experiments: defrag D = %d, want >= 1", c.D)
	case c.Instances < 1:
		return fmt.Errorf("experiments: defrag Instances = %d, want >= 1", c.Instances)
	case c.Horizon <= 0:
		return fmt.Errorf("experiments: defrag Horizon = %g, want > 0", c.Horizon)
	case !c.Migration.Enabled():
		return fmt.Errorf("experiments: defrag needs an enabled migration config (got %+v)", c.Migration)
	}
	_, err := c.Migration.Option()
	return err
}

// DefragCell aggregates one (trace, policy) pair across instances. Base is
// the irrevocable leg, Mig the budgeted-migration leg of the same instances.
type DefragCell struct {
	Trace  string
	Policy string
	// Base and Mig are usage-time cost / LB; MigTotal adds the migration
	// cost to the numerator, so Mig < MigTotal always and migration is a net
	// win exactly when MigTotal < Base.
	Base     stats.Summary
	Mig      stats.Summary
	MigTotal stats.Summary
	// BaseStranded and MigStranded are the dimension-summed stranded
	// capacity·time integrals of the two legs.
	BaseStranded stats.Summary
	MigStranded  stats.Summary
	// Moves, Drained and MoveCost account the migrating leg: moves applied,
	// bins drained-and-closed by moves, and the summed size·remaining-
	// duration cost of the moves.
	Moves    stats.Summary
	Drained  stats.Summary
	MoveCost stats.Summary
}

// CostGainPct is the mean usage-time improvement of migration net of nothing
// (pure usage-time, the objective) as a percentage of the baseline.
func (c DefragCell) CostGainPct() float64 {
	if c.Base.Mean == 0 {
		return 0
	}
	return (c.Base.Mean - c.Mig.Mean) / c.Base.Mean * 100
}

// StrandedGainPct is the mean stranded-capacity·time improvement as a
// percentage of the baseline.
func (c DefragCell) StrandedGainPct() float64 {
	if c.BaseStranded.Mean == 0 {
		return 0
	}
	return (c.BaseStranded.Mean - c.MigStranded.Mean) / c.BaseStranded.Mean * 100
}

// DefragStudy is the full study result.
type DefragStudy struct {
	// Migration is the display form of the budgeted configuration.
	Migration string
	Traces    []string
	Policies  []string
	// Cells is indexed [trace][policy], matching Traces and Policies.
	Cells [][]DefragCell
	// Offline is the per-trace offline bracket: BestUpperEstimate / LB, so
	// every cell's ratios live in [1, Offline.Mean] up to estimator noise.
	Offline []stats.Summary
	// Exact is the per-trace exact bracket (OPT / LB), populated only when
	// the config enables it; N counts the instances small enough to solve.
	Exact []stats.Summary
}

// RunDefrag executes the study. Results are deterministic in (cfg.Seed,
// cfg.Instances) for any Workers value.
func RunDefrag(cfg DefragConfig) (*DefragStudy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireUnsharded("defrag"); err != nil {
		return nil, err
	}
	migOpt, err := cfg.Migration.Option()
	if err != nil {
		return nil, err
	}
	traces := FragConfig{D: cfg.D, Horizon: cfg.Horizon}.fragTraces()
	names := FragPolicyNames()
	type cell struct {
		base, mig, migTotal, baseStranded, migStranded float64
		moves, drained                                 int
		moveCost                                       float64
	}
	type shardOut struct {
		cells   [][]cell
		offline []float64
		exact   []float64 // NaN-free: -1 marks an infeasible instance
	}
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) (shardOut, error) {
		seed := parallel.SeedFor(cfg.Seed, i)
		out := shardOut{cells: make([][]cell, len(traces))}
		for ti, tr := range traces {
			l, err := tr.Gen(seed)
			if err != nil {
				return shardOut{}, err
			}
			lb := lowerbound.IntegralBound(l)
			up, err := offline.BestUpperEstimate(l)
			if err != nil {
				return shardOut{}, err
			}
			out.offline = append(out.offline, up.Cost/lb)
			exact := -1.0
			if cfg.Exact && exactopt.PeakActive(l) <= exactopt.DefaultMaxActive {
				opt, err := exactopt.Opt(l, exactopt.Options{})
				if err != nil {
					return shardOut{}, err
				}
				exact = opt / lb
			}
			out.exact = append(out.exact, exact)
			out.cells[ti] = make([]cell, len(names))
			for pi, n := range names {
				var c cell
				for _, leg := range []struct {
					migrating bool
				}{{false}, {true}} {
					p, err := core.NewPolicy(n, seed)
					if err != nil {
						return shardOut{}, err
					}
					ft := metrics.NewFragTracker(cfg.D, nil)
					var shared core.Observer
					if cfg.Observer != nil {
						shared = cfg.Observer
						if rs, ok := shared.(metrics.RunScoper); ok {
							shared = rs.ForRun()
						}
					}
					opts := []core.Option{core.WithObserver(fragTee{tr: ft, obs: shared})}
					if leg.migrating {
						opts = append(opts, migOpt)
					}
					res, err := core.Simulate(l, p, opts...)
					if err != nil {
						return shardOut{}, err
					}
					stranded := 0.0
					for _, x := range ft.Summary().StrandedTime {
						stranded += x
					}
					if leg.migrating {
						c.mig = res.Cost / lb
						c.migTotal = (res.Cost + res.MigrationCost) / lb
						c.migStranded = stranded
						c.moves = res.Migrations
						c.drained = res.BinsDrained
						c.moveCost = res.MigrationCost
					} else {
						c.base = res.Cost / lb
						c.baseStranded = stranded
					}
				}
				out.cells[ti][pi] = c
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	study := &DefragStudy{Migration: cfg.Migration.String(), Policies: names}
	for ti, tr := range traces {
		study.Traces = append(study.Traces, tr.Name)
		var off, ex stats.Accumulator
		for _, t := range trials {
			off.Add(t.offline[ti])
			if t.exact[ti] >= 0 {
				ex.Add(t.exact[ti])
			}
		}
		study.Offline = append(study.Offline, off.Summarize())
		study.Exact = append(study.Exact, ex.Summarize())
		row := make([]DefragCell, len(names))
		for pi, n := range names {
			var b, m, mt, bs, ms, mv, dr, mc stats.Accumulator
			for _, t := range trials {
				c := t.cells[ti][pi]
				b.Add(c.base)
				m.Add(c.mig)
				mt.Add(c.migTotal)
				bs.Add(c.baseStranded)
				ms.Add(c.migStranded)
				mv.Add(float64(c.moves))
				dr.Add(float64(c.drained))
				mc.Add(c.moveCost)
			}
			row[pi] = DefragCell{
				Trace: tr.Name, Policy: n,
				Base: b.Summarize(), Mig: m.Summarize(), MigTotal: mt.Summarize(),
				BaseStranded: bs.Summarize(), MigStranded: ms.Summarize(),
				Moves: mv.Summarize(), Drained: dr.Summarize(), MoveCost: mc.Summarize(),
			}
		}
		study.Cells = append(study.Cells, row)
	}
	return study, nil
}

func (s *DefragStudy) traceIndex(trace string) int {
	for i, t := range s.Traces {
		if t == trace {
			return i
		}
	}
	return -1
}

// Improved lists the policies whose migrating leg strictly improves mean
// usage-time cost OR mean stranded·time over the irrevocable baseline on one
// trace model, in policy order.
func (s *DefragStudy) Improved(trace string) []string {
	ti := s.traceIndex(trace)
	if ti < 0 {
		return nil
	}
	var out []string
	for _, c := range s.Cells[ti] {
		if c.Mig.Mean < c.Base.Mean || c.MigStranded.Mean < c.BaseStranded.Mean {
			out = append(out, c.Policy)
		}
	}
	return out
}

// NetWins lists the policies for which migration wins even after paying for
// the moves: mean (cost + migration cost)/LB below the baseline's.
func (s *DefragStudy) NetWins(trace string) []string {
	ti := s.traceIndex(trace)
	if ti < 0 {
		return nil
	}
	var out []string
	for _, c := range s.Cells[ti] {
		if c.MigTotal.Mean < c.Base.Mean {
			out = append(out, c.Policy)
		}
	}
	return out
}

// Table renders one trace model's rows in policy order.
func (s *DefragStudy) Table(trace string) *report.Table {
	ti := s.traceIndex(trace)
	if ti < 0 {
		return &report.Table{Title: "unknown trace " + trace}
	}
	bracket := fmt.Sprintf("OPT in [1, %.4f]·LB", s.Offline[ti].Mean)
	if ti < len(s.Exact) && s.Exact[ti].N > 0 {
		bracket = fmt.Sprintf("%s, exact OPT %.4f·LB on %d instances", bracket, s.Exact[ti].Mean, s.Exact[ti].N)
	}
	t := &report.Table{
		Title: fmt.Sprintf("Budgeted defragmentation on %s traces (%s; mean over instances; %s)",
			trace, s.Migration, bracket),
		Headers: []string{
			"policy", "base cost/LB", "mig cost/LB", "+migcost/LB", "Δcost",
			"base strand·t", "mig strand·t", "Δstrand", "moves", "drained", "move cost",
		},
	}
	for _, c := range s.Cells[ti] {
		t.AddRow(c.Policy,
			fmt.Sprintf("%.4f", c.Base.Mean), fmt.Sprintf("%.4f", c.Mig.Mean),
			fmt.Sprintf("%.4f", c.MigTotal.Mean), fmt.Sprintf("%+.2f%%", -c.CostGainPct()),
			fmt.Sprintf("%.2f", c.BaseStranded.Mean), fmt.Sprintf("%.2f", c.MigStranded.Mean),
			fmt.Sprintf("%+.2f%%", -c.StrandedGainPct()),
			fmt.Sprintf("%.1f", c.Moves.Mean), fmt.Sprintf("%.1f", c.Drained.Mean),
			fmt.Sprintf("%.2f", c.MoveCost.Mean))
	}
	return t
}

// Chart renders the net-of-cost usage-time gain per policy across the trace
// models: (base − (cost + migration cost))/base · 100, per mean ratios. A
// series above zero pays for its own moves.
func (s *DefragStudy) Chart() *report.Chart {
	c := &report.Chart{
		Title:  fmt.Sprintf("Budgeted defragmentation: net usage-time gain (%s)", s.Migration),
		XLabel: fmt.Sprintf("trace model (%s)", traceAxisLegend(s.Traces)),
		YLabel: "net gain over irrevocable baseline (%)",
	}
	for pi, p := range s.Policies {
		series := report.Series{Name: p}
		for ti := range s.Traces {
			cell := s.Cells[ti][pi]
			gain := 0.0
			if cell.Base.Mean != 0 {
				gain = (cell.Base.Mean - cell.MigTotal.Mean) / cell.Base.Mean * 100
			}
			series.X = append(series.X, float64(ti+1))
			series.Y = append(series.Y, gain)
		}
		c.Series = append(c.Series, series)
	}
	return c
}
