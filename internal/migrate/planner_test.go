package migrate

import (
	"fmt"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// smallSize is the long-lived item size of the consolidation workload.
// Deliberately skewed so each leftover bin also strands capacity
// (residual (0.75, 0.95) → 0.2 stranded), giving the Stranded planner
// victims to work on.
var smallSize = vector.Vector{0.25, 0.05}

// fragmentedList builds the canonical consolidation workload: pairs of one
// big short-lived item (0.7, departs at 1.5) and one small long-lived item
// (smallSize, departs at 100) all arriving at t=0. FirstFit packs each pair
// into its own bin, so after the bigs depart at 1.5 the run holds `pairs`
// bins at load smallSize each — pure fragmentation that only migration can
// clean up before t=100.
func fragmentedList(pairs int) *item.List {
	l := item.NewList(2)
	for i := 0; i < pairs; i++ {
		l.Add(0, 1.5, vector.Vector{0.7, 0.7})
		l.Add(0, 100, smallSize)
	}
	return l
}

// moveLog records every migration callback for invariant checks.
type moveLog struct {
	core.BaseObserver
	moves []loggedMove
}

type loggedMove struct {
	itemID   int
	from, to int
	t, cost  float64
	drained  bool
}

func (m *moveLog) ItemMigrated(itemID int, from, to *core.Bin, t, cost float64, drained bool) {
	m.moves = append(m.moves, loggedMove{itemID, from.ID, to.ID, t, cost, drained})
}

func runPlanner(t *testing.T, p core.MigrationPlanner, budget core.MigrationBudget) (*core.Result, *moveLog) {
	t.Helper()
	log := &moveLog{}
	var audit core.Audit
	res, err := core.Simulate(fragmentedList(6), core.NewFirstFit(),
		core.WithMigration(p, 2, budget),
		core.WithObserver(log),
		core.WithAudit(&audit))
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return res, log
}

func TestPlannersConsolidate(t *testing.T) {
	baseline, err := core.Simulate(fragmentedList(6), core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	// 6 bins × [0,100) ≈ 600 usage time with irrevocable placements.
	if baseline.Cost < 590 {
		t.Fatalf("baseline cost = %v, workload construction is off", baseline.Cost)
	}
	budget := core.MigrationBudget{MaxMoves: 16}
	for _, p := range []core.MigrationPlanner{DrainEmptiest{}, FARBScore{}, Stranded{}} {
		t.Run(p.Name(), func(t *testing.T) {
			res, log := runPlanner(t, p, budget)
			if res.Migrations == 0 || len(log.moves) != res.Migrations {
				t.Fatalf("migrations = %d, observer saw %d moves", res.Migrations, len(log.moves))
			}
			if res.BinsDrained == 0 {
				t.Error("no bins drained on a pure-fragmentation workload")
			}
			if res.MigrationCost <= 0 {
				t.Errorf("migration cost = %v, want > 0", res.MigrationCost)
			}
			if res.Cost >= baseline.Cost {
				t.Errorf("cost with migration = %v, baseline = %v: consolidation saved nothing", res.Cost, baseline.Cost)
			}
			// Passes fire at multiples of the period (2), after the bigs
			// depart at 1.5 and strictly before the smalls depart at 100.
			// Each move's cost is the small's L1 size times its remaining
			// duration at the pass instant.
			for _, mv := range log.moves {
				if mv.t < 2 || mv.t >= 100 || mv.t != 2*float64(int(mv.t/2)) {
					t.Errorf("move %+v fired at t=%v, want a multiple of period 2 in [2, 100)", mv, mv.t)
				}
				if want := smallSize.SumNorm() * (100 - mv.t); mv.cost != want {
					t.Errorf("move %+v cost = %v, want %v", mv, mv.cost, want)
				}
			}
			drains := 0
			for _, mv := range log.moves {
				if mv.drained {
					drains++
				}
			}
			if drains != res.BinsDrained {
				t.Errorf("observer saw %d drains, result reports %d", drains, res.BinsDrained)
			}
		})
	}
}

// Every planner must respect MaxMoves and MaxCost per pass.
func TestPlannersRespectBudget(t *testing.T) {
	for _, p := range []core.MigrationPlanner{DrainEmptiest{}, FARBScore{}, Stranded{}} {
		for _, budget := range []core.MigrationBudget{
			{MaxMoves: 1},
			{MaxMoves: 3},
			{MaxMoves: 16, MaxCost: 60}, // ~two first-pass moves at cost 29.4 each
		} {
			t.Run(fmt.Sprintf("%s/moves=%d,cost=%g", p.Name(), budget.MaxMoves, budget.MaxCost), func(t *testing.T) {
				res, log := runPlanner(t, p, budget)
				perPass := map[float64]int{}
				perPassCost := map[float64]float64{}
				for _, mv := range log.moves {
					perPass[mv.t]++
					perPassCost[mv.t] += mv.cost
				}
				for passT, n := range perPass {
					if n > budget.MaxMoves {
						t.Errorf("pass at t=%v made %d moves, budget %d", passT, n, budget.MaxMoves)
					}
					if budget.MaxCost > 0 && perPassCost[passT] > budget.MaxCost {
						t.Errorf("pass at t=%v cost %v, budget %v", passT, perPassCost[passT], budget.MaxCost)
					}
				}
				_ = res
			})
		}
	}
}

// Planners are pure functions of the view: two identical runs must produce
// identical results and identical move logs.
func TestPlannersDeterministic(t *testing.T) {
	budget := core.MigrationBudget{MaxMoves: 16}
	for _, mk := range []func() core.MigrationPlanner{
		func() core.MigrationPlanner { return DrainEmptiest{} },
		func() core.MigrationPlanner { return FARBScore{} },
		func() core.MigrationPlanner { return Stranded{} },
	} {
		p := mk()
		t.Run(p.Name(), func(t *testing.T) {
			res1, log1 := runPlanner(t, mk(), budget)
			res2, log2 := runPlanner(t, mk(), budget)
			if res1.String() != res2.String() {
				t.Errorf("results differ:\n  %v\n  %v", res1, res2)
			}
			if len(log1.moves) != len(log2.moves) {
				t.Fatalf("move counts differ: %d vs %d", len(log1.moves), len(log2.moves))
			}
			for i := range log1.moves {
				if log1.moves[i] != log2.moves[i] {
					t.Errorf("move %d differs: %+v vs %+v", i, log1.moves[i], log2.moves[i])
				}
			}
		})
	}
}

// Planner plans must also satisfy the standalone validator: re-run each
// planner against a captured view and cross-check with ValidatePlan.
func TestPlannerPlansValidate(t *testing.T) {
	for _, p := range []core.MigrationPlanner{DrainEmptiest{}, FARBScore{}, Stranded{}} {
		t.Run(p.Name(), func(t *testing.T) {
			budget := core.MigrationBudget{MaxMoves: 16}
			checker := planCheck{inner: p, t: t, budget: budget}
			if _, err := core.Simulate(fragmentedList(6), core.NewFirstFit(),
				core.WithMigration(&checker, 2, budget)); err != nil {
				t.Fatal(err)
			}
			if checker.passes == 0 {
				t.Fatal("planner was never consulted")
			}
		})
	}
}

// planCheck wraps a planner and asserts every emitted plan passes
// ValidatePlan against the ClusterState rebuilt from the view.
type planCheck struct {
	inner  core.MigrationPlanner
	t      *testing.T
	budget core.MigrationBudget
	passes int
}

func (c *planCheck) Name() string { return c.inner.Name() }

func (c *planCheck) PlanPass(view core.MigrationView, budget core.MigrationBudget) ([]core.MigrationMove, error) {
	c.passes++
	plan, err := c.inner.PlanPass(view, budget)
	if err != nil {
		return nil, err
	}
	st := ClusterState{
		Dim:   view.Dim,
		Load:  make(map[int][]float64, len(view.Bins)),
		Size:  make(map[int][]float64),
		BinOf: make(map[int]int),
	}
	for _, b := range view.Bins {
		l := make([]float64, view.Dim)
		for j := range l {
			l[j] = b.LoadAt(j)
		}
		st.Load[b.ID] = l
		for _, id := range b.ActiveItemIDs() {
			st.Size[id] = view.Size(id)
			st.BinOf[id] = b.ID
		}
	}
	costOf := func(itemID int) float64 {
		return core.MigrationMoveCost(view.Size(itemID), view.Departure(itemID)-view.Now)
	}
	if verr := ValidatePlan(st, plan, budget, costOf); verr != nil {
		c.t.Errorf("%s plan rejected by ValidatePlan: %v", c.inner.Name(), verr)
	}
	return plan, nil
}

// White-box checks of the scoring helpers.
func TestFarbScoreOf(t *testing.T) {
	// Perfectly balanced residual: spread 0, mean r, L2/√d = r.
	load := []float64{0.5, 0.5}
	size := vector.Vector{0.25, 0.25}
	want := 0.3*0.25 + 0.2*0.25
	if got := farbScoreOf(load, size); !almost(got, want) {
		t.Errorf("farbScoreOf = %v, want %v", got, want)
	}
	// Skewed residual scores strictly worse than balanced at equal mean.
	skew := farbScoreOf([]float64{0.8, 0.2}, size)
	if skew <= farbScoreOf(load, size) {
		t.Errorf("skewed residual %v not worse than balanced %v", skew, farbScoreOf(load, size))
	}
}

func TestStrandedAfter(t *testing.T) {
	// Residual (0.25, 0.25): nothing stranded.
	if got := strandedAfter([]float64{0.5, 0.5}, vector.Vector{0.25, 0.25}); got != 0 {
		t.Errorf("balanced residual stranded = %v, want 0", got)
	}
	// Residual (0.7, 0.1): 0.6 stranded in dimension 0.
	if got := strandedAfter([]float64{0.2, 0.8}, vector.Vector{0.1, 0.1}); !almost(got, 0.6) {
		t.Errorf("stranded = %v, want 0.6", got)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}
