package core

import (
	"fmt"
	"math"

	"dvbp/internal/item"
)

// SimulateFaultyReference is a deliberately naive re-implementation of
// Simulate's failure semantics, used as a differential-testing oracle for
// the fault-injection, eviction/retry and admission-control paths. It keeps
// every pending event in a plain slice and scans for the minimum on each
// step — no event queue, no tombstoned open slice — while following the
// same event-ordering contract:
//
//	departures < crashes < retries < arrivals at equal times,
//	ties within a class broken by item ID / bin ID / eviction order / SeqNo.
//
// Policies are driven through identical Select/OnPack/OnClose sequences
// (including failed admission-queue attempts), so even seeded RandomFit must
// agree bit for bit. Observer and audit options are not supported here; only
// clairvoyance and the failure options are honoured.
//
// It intentionally shares no bookkeeping code with Simulate; keep it that
// way, or the oracle stops being independent.
func SimulateFaultyReference(l *item.List, p Policy, opts ...Option) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.injector != nil && cfg.retry == nil {
		cfg.retry = retryNow{}
	}
	p.Reset()

	arrivals := l.SortedByArrival()

	type pendingDeparture struct {
		t      float64
		itemID int
		binID  int
	}
	type pendingRetry struct {
		t       float64
		seq     int64
		it      item.Item
		attempt int
	}
	type pendingQueue struct {
		it       item.Item
		attempt  int
		queuedAt float64
		deadline float64
	}
	type frBin struct {
		bin      *Bin
		closed   bool
		crashAt  float64
		hasCrash bool
	}

	var (
		bins     []*frBin
		deps     []pendingDeparture
		rets     []pendingRetry
		retrySeq int64
		waitq    []pendingQueue
		attempts = make(map[int]int)
		served   int
		res      = &Result{
			Algorithm: p.Name(), Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu(),
			Outcomes: make(map[int]Outcome, l.Len()),
		}
	)

	openBins := func() []*Bin {
		var out []*Bin
		for _, rb := range bins {
			if !rb.closed {
				out = append(out, rb.bin)
			}
		}
		return out
	}

	closeAt := func(rb *frBin, t float64, crashed bool) {
		rb.closed = true
		res.Bins = append(res.Bins, BinUsage{
			BinID: rb.bin.ID, OpenedAt: rb.bin.OpenedAt, ClosedAt: t,
			Packed: rb.bin.packed, Crashed: crashed,
		})
		res.Cost += t - rb.bin.OpenedAt
		p.OnClose(rb.bin)
	}

	makeReq := func(it item.Item, now float64, attempt int) Request {
		req := Request{ID: it.ID, SeqNo: it.SeqNo, Arrival: now, Size: it.Size, Attempt: attempt}
		if cfg.clairvoyant {
			req.Departure = it.Departure
			req.HasDeparture = true
		}
		return req
	}

	dispatch := func(it item.Item, attempt int, now float64, fromQueue bool) (bool, error) {
		open := openBins()
		req := makeReq(it, now, attempt)
		chosen := p.Select(req, open)
		opened := false
		var target *frBin
		if chosen == nil {
			if cfg.maxBins > 0 && len(open) >= cfg.maxBins {
				if fromQueue {
					return false, nil
				}
				if cfg.queueWhenFull {
					waitq = append(waitq, pendingQueue{it: it, attempt: attempt, queuedAt: now, deadline: now + cfg.queueDeadline})
				} else {
					res.Rejected++
					res.Outcomes[it.ID] = OutcomeRejected
				}
				return false, nil
			}
			opened = true
			target = &frBin{bin: newBin(len(bins), l.Dim, now)}
			bins = append(bins, target)
			if cfg.injector != nil {
				if at, ok := cfg.injector.BinOpened(target.bin.ID, now); ok && !math.IsNaN(at) && at > now {
					target.crashAt, target.hasCrash = at, true
				}
			}
		} else {
			for _, rb := range bins {
				if !rb.closed && rb.bin.ID == chosen.ID {
					target = rb
					break
				}
			}
			if target == nil {
				return false, fmt.Errorf("core: faulty reference: policy %s returned unknown bin %d", p.Name(), chosen.ID)
			}
			if !target.bin.Fits(it.Size) {
				return false, fmt.Errorf("core: faulty reference: policy %s chose unfit bin %d", p.Name(), chosen.ID)
			}
		}
		target.bin.active[it.ID] = it.Size
		target.bin.packed++
		// From-scratch rebuild through the exact accumulator: bit-identical
		// to the fast engine's incremental load by order-independence.
		target.bin.refreshLoadFromActive()
		p.OnPack(req, target.bin, opened)

		res.Placements = append(res.Placements, Placement{ItemID: it.ID, BinID: target.bin.ID, Opened: opened, Time: now, Attempt: attempt})
		if attempt > 0 {
			res.Retries++
		}
		deps = append(deps, pendingDeparture{t: it.Departure, itemID: it.ID, binID: target.bin.ID})
		if n := len(openBins()); n > res.MaxConcurrentBins {
			res.MaxConcurrentBins = n
		}
		return true, nil
	}

	drainQueue := func(t float64) error {
		if len(waitq) == 0 {
			return nil
		}
		var kept []pendingQueue
		for _, q := range waitq {
			if t > q.deadline || t >= q.it.Departure {
				res.TimedOut++
				res.Outcomes[q.it.ID] = OutcomeTimedOut
				continue
			}
			placed, err := dispatch(q.it, q.attempt, t, true)
			if err != nil {
				return err
			}
			if placed {
				res.QueuedPlaced++
				res.QueueDelay += t - q.queuedAt
				continue
			}
			kept = append(kept, q)
		}
		waitq = kept
		return nil
	}

	for {
		// Scan all pending events for the earliest (time, class, tiebreak).
		const (
			clsDeparture = iota
			clsCrash
			clsRetry
			clsArrival
			clsNone
		)
		t, cls := math.Inf(1), clsNone
		depIdx := -1
		for i, d := range deps {
			if d.t < t || (d.t == t && (cls > clsDeparture || (cls == clsDeparture && d.itemID < deps[depIdx].itemID))) {
				t, cls, depIdx = d.t, clsDeparture, i
			}
		}
		var crashBin *frBin
		for _, rb := range bins {
			if rb.closed || !rb.hasCrash {
				continue
			}
			if rb.crashAt < t || (rb.crashAt == t && (cls > clsCrash || (cls == clsCrash && rb.bin.ID < crashBin.bin.ID))) {
				t, cls, crashBin = rb.crashAt, clsCrash, rb
				depIdx = -1
			}
		}
		retIdx := -1
		for i, r := range rets {
			if r.t < t || (r.t == t && (cls > clsRetry || (cls == clsRetry && r.seq < rets[retIdx].seq))) {
				t, cls, retIdx = r.t, clsRetry, i
				depIdx, crashBin = -1, nil
			}
		}
		if len(arrivals) > 0 && (arrivals[0].Arrival < t || (arrivals[0].Arrival == t && cls > clsArrival)) {
			t, cls = arrivals[0].Arrival, clsArrival
			depIdx, crashBin, retIdx = -1, nil, -1
		}
		if cls == clsNone {
			break
		}

		switch cls {
		case clsDeparture:
			d := deps[depIdx]
			deps = append(deps[:depIdx], deps[depIdx+1:]...)
			var target *frBin
			for _, rb := range bins {
				if !rb.closed && rb.bin.ID == d.binID {
					target = rb
					break
				}
			}
			if target == nil {
				return nil, fmt.Errorf("core: faulty reference: departure from closed bin %d", d.binID)
			}
			delete(target.bin.active, d.itemID)
			target.bin.refreshLoadFromActive()
			served++
			res.Outcomes[d.itemID] = OutcomeServed
			if len(target.bin.active) == 0 {
				closeAt(target, d.t, false)
			}
			if err := drainQueue(d.t); err != nil {
				return nil, err
			}
		case clsCrash:
			evicted := crashBin.bin.ActiveItemIDs()
			res.Crashes++
			closeAt(crashBin, t, true)
			for _, id := range evicted {
				// Drop the evicted item's pending departure (the fast engine
				// instead skips it as stale when it fires).
				for i, d := range deps {
					if d.itemID == id && d.binID == crashBin.bin.ID {
						deps = append(deps[:i], deps[i+1:]...)
						break
					}
				}
				it := itemByIDSlow(l, id)
				attempts[id]++
				attempt := attempts[id]
				res.Evictions++
				delay := cfg.retry.Delay(attempt)
				if !(delay > 0) {
					delay = 0
				}
				retryAt := t + delay
				if retryAt < it.Departure {
					res.LostUsageTime += retryAt - t
					retrySeq++
					rets = append(rets, pendingRetry{t: retryAt, seq: retrySeq, it: it, attempt: attempt})
				} else {
					res.ItemsLost++
					res.LostUsageTime += it.Departure - t
					res.Outcomes[id] = OutcomeLost
				}
			}
			if err := drainQueue(t); err != nil {
				return nil, err
			}
		case clsRetry:
			r := rets[retIdx]
			rets = append(rets[:retIdx], rets[retIdx+1:]...)
			if _, err := dispatch(r.it, r.attempt, r.t, false); err != nil {
				return nil, err
			}
		case clsArrival:
			it := arrivals[0]
			arrivals = arrivals[1:]
			if _, err := dispatch(it, 0, it.Arrival, false); err != nil {
				return nil, err
			}
		}
	}

	for _, q := range waitq {
		res.TimedOut++
		res.Outcomes[q.it.ID] = OutcomeTimedOut
	}

	if n := len(openBins()); n != 0 {
		return nil, fmt.Errorf("core: faulty reference: %d bins left open after drain", n)
	}
	if served+res.ItemsLost+res.Rejected+res.TimedOut != l.Len() {
		return nil, fmt.Errorf("core: faulty reference: item conservation violated")
	}

	res.BinsOpened = len(bins)
	res.sortBins()
	return res, nil
}

// itemByIDSlow is the oracle's deliberately naive item lookup.
func itemByIDSlow(l *item.List, id int) item.Item {
	for _, it := range l.Items {
		if it.ID == id {
			return it
		}
	}
	panic(fmt.Sprintf("core: faulty reference: unknown item %d", id))
}
