package experiments

import (
	"strings"
	"testing"
)

func TestFragConfigValidate(t *testing.T) {
	if err := DefaultFrag().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []FragConfig{
		{D: 0, Instances: 1, Horizon: 10},
		{D: 2, Instances: 0, Horizon: 10},
		{D: 2, Instances: 1, Horizon: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	sharded := DefaultFrag()
	sharded.Shard = ShardSlice{Index: 0, Count: 2}
	if _, err := RunFrag(sharded); err == nil {
		t.Error("shard slice accepted (frag is not mergeable)")
	}
}

// TestRunFragDeterminism pins the scheduler contract: identical results for
// any Workers value, and every cell populated for every (trace, policy) pair.
func TestRunFragDeterminism(t *testing.T) {
	cfg := DefaultFrag()
	cfg.Instances = 4
	cfg.Horizon = 40
	run := func(workers int) *FragStudy {
		c := cfg
		c.Workers = workers
		s, err := RunFrag(c)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(1), run(4)
	if len(a.Traces) != 3 || len(a.Policies) != len(FragPolicyNames()) {
		t.Fatalf("study shape: %d traces, %d policies", len(a.Traces), len(a.Policies))
	}
	for ti := range a.Traces {
		for pi := range a.Policies {
			ca, cb := a.Cells[ti][pi], b.Cells[ti][pi]
			if ca.Ratio != cb.Ratio || ca.WastePct != cb.WastePct || ca.Stranded != cb.Stranded {
				t.Fatalf("workers changed cell (%s, %s): %+v vs %+v", ca.Trace, ca.Policy, ca, cb)
			}
			if ca.Ratio.N != cfg.Instances || ca.Ratio.Mean < 1 {
				t.Fatalf("cell (%s, %s) implausible: %+v", ca.Trace, ca.Policy, ca.Ratio)
			}
		}
	}
	// Rendering round-trip: every policy appears in every trace table.
	for _, trace := range a.Traces {
		out := a.Table(trace).Render()
		for _, p := range a.Policies {
			if !strings.Contains(out, p) {
				t.Errorf("%s table missing %s", trace, p)
			}
		}
		if got := a.Ranking(trace); len(got) != len(a.Policies) {
			t.Errorf("%s ranking has %d entries", trace, len(got))
		}
	}
	if a.Chart().SVG() == "" {
		t.Error("empty chart")
	}
}

// TestFragFlipsSymmetry checks flip bookkeeping on a crafted study: one pair
// flips, gaps are positive, and the noise gap filters it out when raised.
func TestFragFlipsSymmetry(t *testing.T) {
	s := &FragStudy{
		Traces:   []string{"x", "y"},
		Policies: []string{"P", "Q"},
	}
	mk := func(trace string, rp, rq float64) []FragCell {
		cells := []FragCell{{Trace: trace, Policy: "P"}, {Trace: trace, Policy: "Q"}}
		cells[0].Ratio.Mean = rp
		cells[1].Ratio.Mean = rq
		return cells
	}
	s.Cells = [][]FragCell{mk("x", 1.0, 1.2), mk("y", 1.3, 1.1)}
	flips := s.Flips("x", "y", 0.01)
	if len(flips) != 1 {
		t.Fatalf("flips = %+v, want exactly one", flips)
	}
	fl := flips[0]
	if fl.A != "P" || fl.B != "Q" || fl.GapA <= 0 || fl.GapB <= 0 {
		t.Fatalf("flip %+v, want P over Q with positive gaps", fl)
	}
	if got := s.Flips("x", "y", 0.5); len(got) != 0 {
		t.Fatalf("noise gap 0.5 should filter the flip, got %+v", got)
	}
	if got := s.Flips("x", "nope", 0.01); got != nil {
		t.Fatalf("unknown trace should yield nil, got %+v", got)
	}
}
