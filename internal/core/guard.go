package core

import (
	"fmt"
	"reflect"
	"sync"
)

// activePolicies tracks the Policy instances currently driving a Simulate
// call. Policies are stateful (Move To Front's bin ordering, Next Fit's
// cursor, Random Fit's RNG), so one instance shared by two concurrent
// simulations is a data race that corrupts both runs silently. The engine
// refuses such reuse up front with a diagnosable error instead: each
// concurrent run must construct its own policy (they are cheap, and
// deterministic given the same seed). Sequential reuse of one instance
// remains allowed — Simulate resets the policy on entry.
var activePolicies sync.Map // Policy -> struct{}

// guardable reports whether p has a trackable identity worth guarding.
// Zero-sized policies (First Fit, Last Fit) are excluded on both counts: Go
// gives every allocation of a zero-sized type the same address, so distinct
// instances are indistinguishable — and a type with no fields has no mutable
// state, making concurrent sharing harmless. Non-pointer policies are also
// excluded (copies would compare equal).
func guardable(p Policy) bool {
	v := reflect.ValueOf(p)
	return v.Kind() == reflect.Pointer && !v.IsNil() && v.Elem().Type().Size() > 0
}

// acquirePolicy registers p for the duration of one simulation, failing if p
// is already inside another.
func acquirePolicy(p Policy) error {
	if !guardable(p) {
		return nil
	}
	if _, loaded := activePolicies.LoadOrStore(p, struct{}{}); loaded {
		return fmt.Errorf("core: policy %s is already driving a concurrent simulation; construct one policy instance per run", p.Name())
	}
	return nil
}

// releasePolicy deregisters p after its simulation completes.
func releasePolicy(p Policy) {
	if guardable(p) {
		activePolicies.Delete(p)
	}
}
