package vector

import (
	"fmt"
	"math"
	"math/bits"
)

// Acc is an exact, order-independent accumulator for one dimension of a bin
// load. It supports adding and removing float64 values in O(1) and exposes
// the running sum correctly rounded to float64 via Round.
//
// Why the engine needs it: bin loads drive Best/Worst Fit decisions through
// exact float comparisons, and the engine's documented contract is that two
// different pack/depart histories reaching the same active item set expose
// bit-identical loads. Plain running addition cannot honour that contract —
// float64 addition is neither associative nor exactly invertible, so
// ((a+b)-a) generally differs from b in the last ulp — and the pre-incremental
// engine paid O(k·log k) per event re-summing all k active items in a
// canonical order instead. Compensated (Neumaier) summation narrows the error
// but its compensation term itself rounds, so it is order-dependent too.
//
// Acc sidesteps rounding entirely: it maintains the *exact* sum as a
// fixed-point integer spread over 32-bit limbs ("superaccumulator"), the way
// exact-summation literature (Shewchuk's expansions, Neal's superaccumulators)
// represents float sums. Every float64 is an integer multiple of 2^-1074, so
// each Add/Sub contributes exact integer limb increments; integer addition is
// associative and commutative, and a removed value cancels its own
// contribution exactly. The limb vector is therefore a pure function of the
// multiset of currently-accumulated values — any history reaching the same
// active set yields identical limbs, hence identical Round outputs, which is
// precisely the determinism contract.
//
// Costs: an Acc is ~0.5 KiB; Add/Sub touch three limbs; Round scans only the
// limb window actually in use (a handful of limbs for realistic size
// distributions, ≤ numAccLimbs always). Limb magnitudes grow with the number
// of *active* values (cancelled pairs contribute zero), overflowing int64
// only beyond 2^30 simultaneously-active values per accumulator — far past
// anything a bin can hold.
type Acc struct {
	limb [numAccLimbs]int64
	// lo, hi bound the limb indices written since the last Reset (or ever,
	// for the zero value); used is false while no value has been added, so
	// the zero value is ready to use.
	lo, hi int16
	used   bool
}

// numAccLimbs covers the full finite float64 range: bit p of the fixed-point
// frame (value scaled by 2^1074) lives in limb p>>5, and the highest frame
// bit of the largest finite float64 is 2045+52, so limb 65 is the last one
// ever touched.
const numAccLimbs = 67

// Add accumulates x exactly. It panics on NaN or ±Inf (item sizes and loads
// are validated finite everywhere upstream, so a non-finite value here is a
// programming error).
func (a *Acc) Add(x float64) { a.accumulate(x, 1) }

// Sub removes x exactly: Sub(x) is Add(-x), and after adding and removing
// the same value the accumulator is bit-identical to never having seen it.
func (a *Acc) Sub(x float64) { a.accumulate(x, -1) }

func (a *Acc) accumulate(x float64, sign int64) {
	if x == 0 {
		return
	}
	b := math.Float64bits(x)
	if b>>63 != 0 {
		sign, b = -sign, b&^(1<<63)
	}
	e := int(b >> 52)
	m := b & (1<<52 - 1)
	if e == 0x7FF {
		panic("vector: Acc cannot accumulate Inf or NaN")
	}
	if e == 0 {
		e = 1 // subnormal: same scale as e=1, no implicit bit
	} else {
		m |= 1 << 52
	}
	// x = ±m·2^(e-1075); in the fixed-point frame (scaled by 2^1074) the
	// mantissa starts at bit p = e-1 and spans three 32-bit limbs.
	p := e - 1
	i, off := p>>5, uint(p&31)
	a.limb[i] += sign * int64((m<<off)&0xFFFFFFFF)
	a.limb[i+1] += sign * int64((m>>(32-off))&0xFFFFFFFF)
	a.limb[i+2] += sign * int64(m>>(64-off))
	if !a.used {
		a.lo, a.hi, a.used = int16(i), int16(i+2), true
		return
	}
	if int16(i) < a.lo {
		a.lo = int16(i)
	}
	if int16(i+2) > a.hi {
		a.hi = int16(i + 2)
	}
}

// Round returns the exact accumulated sum rounded to the nearest float64
// (ties to even). The result is a pure function of the accumulated multiset:
// identical active sets give bit-identical results regardless of the
// Add/Sub order that produced them. (In the far subnormal range the value is
// rounded to 53 bits before Ldexp denormalises it, so it may differ from the
// infinitely-precise rounding by one ulp — still deterministically.)
func (a *Acc) Round() float64 {
	if !a.used {
		return 0
	}
	// Carry-propagate the window into canonical base-2^32 digits. digits[j]
	// holds the digit of limb index lo+j; a trailing positive carry extends
	// above the window (at most a few digits).
	var digits [numAccLimbs + 3]uint32
	n, carry := a.propagate(&digits, 1)
	neg := false
	if carry < 0 {
		// The exact value is negative (possible for a general caller even
		// though bin loads never are): canonicalise the magnitude instead.
		neg = true
		n, carry = a.propagate(&digits, -1)
	}
	for carry > 0 {
		d := carry & 0xFFFFFFFF
		digits[n] = uint32(d)
		n++
		carry >>= 32
	}
	h := n - 1
	for h >= 0 && digits[h] == 0 {
		h--
	}
	if h < 0 {
		return 0
	}
	// Assemble the top four digits into a 128-bit window A (the leading digit
	// is non-zero, so A has 97..128 significant bits — enough for a 53-bit
	// mantissa plus round and sticky) and fold everything below into sticky.
	dig := func(j int) uint64 {
		if j < 0 {
			return 0
		}
		return uint64(digits[j])
	}
	hi := dig(h)<<32 | dig(h-1)
	lo := dig(h-2)<<32 | dig(h-3)
	sticky := false
	for j := 0; j <= h-4; j++ {
		if digits[j] != 0 {
			sticky = true
			break
		}
	}
	length := 64 + bits.Len64(hi)
	shift := length - 53
	var mant uint64
	var roundBit, restNonzero bool
	if shift > 64 {
		mant = hi >> (shift - 64)
		rb := shift - 1 - 64
		roundBit = (hi>>rb)&1 == 1
		restNonzero = hi&(1<<rb-1) != 0 || lo != 0
	} else {
		mant = hi<<(64-shift) | lo>>shift
		rb := shift - 1
		roundBit = (lo>>rb)&1 == 1
		restNonzero = lo&(1<<rb-1) != 0
	}
	if roundBit && (restNonzero || sticky || mant&1 == 1) {
		mant++ // mant may reach 2^53; float64(2^53) is still exact
	}
	v := math.Ldexp(float64(mant), 32*(int(a.lo)+h-3)-1074+shift)
	if neg {
		v = -v
	}
	return v
}

// propagate writes sign·limbs as partially-canonical digits (each in
// [0, 2^32)) and returns the digit count and the final carry. A negative
// final carry means sign·value < 0.
func (a *Acc) propagate(digits *[numAccLimbs + 3]uint32, sign int64) (n int, carry int64) {
	for i := a.lo; i <= a.hi; i++ {
		t := sign*a.limb[i] + carry
		d := t & 0xFFFFFFFF
		carry = (t - d) >> 32
		digits[n] = uint32(d)
		n++
	}
	return n, carry
}

// Reset clears the accumulator to zero, touching only the limb window in use.
func (a *Acc) Reset() {
	if !a.used {
		return
	}
	for i := a.lo; i <= a.hi; i++ {
		a.limb[i] = 0
	}
	a.lo, a.hi, a.used = 0, 0, false
}

// accBinaryHeader is the byte size of the non-limb part of the Acc wire
// format: a used flag plus the lo and hi window bounds.
const accBinaryHeader = 1 + 2 + 2

// AppendBinary serialises the accumulator's exact state onto dst and returns
// the extended slice. Only the limb window actually in use is written, so an
// idle accumulator costs one byte and a realistic bin-load accumulator a few
// dozen. The format round-trips bit-exactly through UnmarshalBinary: the
// persistence layer relies on a restored accumulator being indistinguishable
// from the original (same limbs, same Round output).
func (a *Acc) AppendBinary(dst []byte) []byte {
	if !a.used {
		return append(dst, 0)
	}
	dst = append(dst, 1, byte(a.lo), byte(a.lo>>8), byte(a.hi), byte(a.hi>>8))
	for i := a.lo; i <= a.hi; i++ {
		v := uint64(a.limb[i])
		dst = append(dst,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return dst
}

// UnmarshalBinary replaces the accumulator's state with the serialised state
// in data, which must be exactly one AppendBinary payload. Malformed input —
// wrong length, out-of-range window bounds — returns an error and leaves the
// accumulator reset; it never panics, so arbitrary (possibly corrupted)
// checkpoint bytes are safe to feed through it.
func (a *Acc) UnmarshalBinary(data []byte) error {
	a.Reset()
	if len(data) == 1 && data[0] == 0 {
		return nil
	}
	if len(data) < accBinaryHeader || data[0] != 1 {
		return fmt.Errorf("vector: malformed Acc state (%d bytes)", len(data))
	}
	lo := int16(uint16(data[1]) | uint16(data[2])<<8)
	hi := int16(uint16(data[3]) | uint16(data[4])<<8)
	if lo < 0 || hi < lo || hi >= numAccLimbs {
		return fmt.Errorf("vector: Acc limb window [%d, %d] out of range", lo, hi)
	}
	if want := accBinaryHeader + 8*(int(hi)-int(lo)+1); len(data) != want {
		return fmt.Errorf("vector: Acc state is %d bytes, want %d for window [%d, %d]", len(data), want, lo, hi)
	}
	p := data[accBinaryHeader:]
	for i := lo; i <= hi; i++ {
		a.limb[i] = int64(uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56)
		p = p[8:]
	}
	a.lo, a.hi, a.used = lo, hi, true
	return nil
}

// IsZero reports whether the exact accumulated sum is zero. Unlike comparing
// Round() against 0, this is exact even when cancellation leaves a sum too
// small to represent.
func (a *Acc) IsZero() bool {
	if !a.used {
		return true
	}
	for i := a.lo; i <= a.hi; i++ {
		if a.limb[i] != 0 {
			return false
		}
	}
	return true
}
